// Mmsolve reads a square sparse matrix in Matrix Market coordinate
// format and solves A·x = b with the chosen Krylov method, reporting the
// iteration count, final residual, and timing.
//
//	mmsolve -solver bicgstab -tol 1e-8 matrix.mtx
//
// The right-hand side defaults to A·1 (so the exact solution is the
// all-ones vector, making correctness easy to eyeball); -rhs ones uses
// b = 1 instead. For SPD matrices try -solver cg or -solver pcg (Jacobi).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/precond"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
)

func main() {
	solverName := flag.String("solver", "bicgstab", "cg, bicgstab, gmres, minres, bicg, cgs, or pcg")
	tol := flag.Float64("tol", 1e-8, "residual tolerance")
	maxIter := flag.Int("maxiter", 10000, "iteration limit")
	pieces := flag.Int("pieces", 8, "vector pieces")
	rhs := flag.String("rhs", "Aones", "right-hand side: 'Aones' (b = A·1) or 'ones' (b = 1)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mmsolve [flags] matrix.mtx")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmsolve:", err)
		os.Exit(1)
	}
	a, err := sparse.ReadMatrixMarket(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmsolve:", err)
		os.Exit(1)
	}
	rows, cols := sparse.Dims(a)
	if rows != cols {
		fmt.Fprintf(os.Stderr, "mmsolve: matrix is %d x %d, need square\n", rows, cols)
		os.Exit(1)
	}
	n := rows
	fmt.Printf("matrix: %d x %d, %d nonzeros\n", rows, cols, a.NNZ())

	b := make([]float64, n)
	switch *rhs {
	case "Aones":
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		sparse.SpMV(a, b, ones)
	case "ones":
		for i := range b {
			b[i] = 1
		}
	default:
		fmt.Fprintln(os.Stderr, "mmsolve: -rhs must be Aones or ones")
		os.Exit(2)
	}

	x := make([]float64, n)
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
	si := p.AddSolVector(x, index.EqualPartition(index.NewSpace("D", n), *pieces))
	ri := p.AddRHSVector(b, index.EqualPartition(index.NewSpace("R", n), *pieces))
	p.AddOperator(a, si, ri)
	if *solverName == "pcg" {
		p.AddPreconditioner(precond.Jacobi(a), si, ri)
	}
	p.Finalize()

	start := time.Now()
	res := solvers.Solve(solvers.New(*solverName, p), *tol, *maxIter)
	p.Drain()
	elapsed := time.Since(start)

	fmt.Printf("solver: %s\n", *solverName)
	fmt.Printf("converged: %v in %d iterations, residual %.3g\n",
		res.Converged, res.Iterations, res.Residual)
	fmt.Printf("wall time: %v (%.3g s/iteration)\n",
		elapsed, elapsed.Seconds()/math.Max(1, float64(res.Iterations)))
	if *rhs == "Aones" {
		var maxErr float64
		for _, v := range x {
			if e := math.Abs(v - 1); e > maxErr {
				maxErr = e
			}
		}
		fmt.Printf("max |x - 1| (exact solution is all ones): %.3g\n", maxErr)
	}
	if !res.Converged {
		os.Exit(1)
	}
}
