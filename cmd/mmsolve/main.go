// Mmsolve reads a square sparse matrix in Matrix Market coordinate
// format and solves A·x = b with the chosen Krylov method, reporting the
// iteration count, final residual, and timing.
//
//	mmsolve -solver bicgstab -tol 1e-8 matrix.mtx
//
// The matrix argument is either a .mtx file or a generated stencil spec
// like "lap2d:64x64" (a 5-point 2D Laplacian on a 64×64 grid).
//
// The right-hand side defaults to A·1 (so the exact solution is the
// all-ones vector, making correctness easy to eyeball); -rhs ones uses
// b = 1 instead. For SPD matrices try -solver cg or -solver pcg (Jacobi).
//
// -profile records wall-clock spans for every executed task and prints a
// per-iteration telemetry line plus a per-task-name breakdown with the
// schedule's critical path; -trace-out additionally writes the spans as a
// Chrome trace (load it in Perfetto or chrome://tracing).
//
// Fault tolerance (chaos runs): -faults injects a deterministic fault
// plan (e.g. -faults "panic=0.01,seed=1" or "bitflip=0.001,bit=52"),
// -retries enables bounded re-execution of idempotent tasks, -watchdog
// flags stragglers, and -checkpoint-every N switches to the resilient
// driver, which checkpoints the solution every N iterations and rolls
// back on failure, corruption, or divergence (-max-restarts bounds the
// rollbacks).
//
// Silent data corruption: -detect-sdc turns on checksummed kernels
// (ABFT) that alarm on corrupted vector pieces; with the resilient
// driver the alarms drive selective piece restore plus residual
// replacement. -replace-every N rebases the recurrence residual on the
// recomputed b − A·x every N iterations when its drift exceeds
// -drift-tol (resilient driver only). The report always prints the
// host-side true residual next to the recurrence residual, and
// -strict-residual exits non-zero when a solver claims convergence the
// true residual does not back up.
//
// Exit status: 0 on a converged solve (including one that recovered from
// injected or real task failures), 1 on non-convergence, breakdown, or
// unrecovered task failure, 2 on usage errors — including an unknown
// -format or -solver name (the error lists the valid spellings).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/fault"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/obs"
	"kdrsolvers/internal/precond"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
	"kdrsolvers/internal/taskrt"
)

func main() {
	solverName := flag.String("solver", "bicgstab", "cg, pipecg, sstep-cg, bicgstab, gmres, pgmres, gcrodr, minres, bicg, cgs, or pcg")
	tol := flag.Float64("tol", 1e-8, "residual tolerance")
	maxIter := flag.Int("maxiter", 10000, "iteration limit")
	pieces := flag.Int("pieces", 8, "vector pieces")
	format := flag.String("format", "csr", "operator storage: a format name (csr, coo, dia, ...) or 'auto' to tune each row band")
	rhs := flag.String("rhs", "Aones", "right-hand side: 'Aones' (b = A·1) or 'ones' (b = 1)")
	profile := flag.Bool("profile", false, "record task timings; print per-iteration telemetry and a per-task breakdown")
	trace := flag.Bool("trace", true, "memoize dependence analysis of repeated solver iterations (trace replay)")
	traceOut := flag.String("trace-out", "", "write recorded task spans as a Chrome trace to this file (implies -profile)")
	faults := flag.String("faults", "", "fault-injection plan, e.g. 'panic=0.01,seed=1' (see internal/fault)")
	retries := flag.Int("retries", 0, "execution attempts per idempotent task (0 or 1 disables retry)")
	retryBackoff := flag.Duration("retry-backoff", 0, "delay before re-executing a failed task (doubles per attempt)")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint the solution every N iterations and roll back on failure (0 disables the resilient driver)")
	maxRestarts := flag.Int("max-restarts", 3, "checkpoint rollback budget for the resilient driver")
	watchdog := flag.Duration("watchdog", 0, "flag tasks running past this wall-clock budget as stragglers (0 disables)")
	detectSDC := flag.Bool("detect-sdc", false, "enable ABFT checksummed kernels; with the resilient driver, recover from alarms by piece restore + residual replacement")
	replaceEvery := flag.Int("replace-every", 0, "rebase the recurrence residual on the recomputed b - A·x every N iterations (resilient driver only, 0 disables)")
	driftTol := flag.Float64("drift-tol", 0, "relative drift threshold for periodic residual replacement (<= 0 replaces unconditionally)")
	strictRes := flag.Bool("strict-residual", false, "exit non-zero when the solver claims convergence but the true residual misses the tolerance")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mmsolve [flags] matrix.mtx")
		os.Exit(2)
	}
	if *traceOut != "" {
		*profile = true
	}
	plan, err := fault.ParsePlan(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmsolve:", err)
		os.Exit(2)
	}
	if !knownSolver(*solverName) {
		fmt.Fprintf(os.Stderr, "mmsolve: unknown solver %q (valid: %s)\n",
			*solverName, strings.Join(solvers.Names, ", "))
		os.Exit(2)
	}

	a, err := loadMatrix(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmsolve:", err)
		os.Exit(1)
	}
	rows, cols := sparse.Dims(a)
	if rows != cols {
		fmt.Fprintf(os.Stderr, "mmsolve: matrix is %d x %d, need square\n", rows, cols)
		os.Exit(1)
	}
	n := rows
	fmt.Printf("matrix: %d x %d, %d nonzeros\n", rows, cols, a.NNZ())

	b := make([]float64, n)
	switch *rhs {
	case "Aones":
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		sparse.SpMV(a, b, ones)
	case "ones":
		for i := range b {
			b[i] = 1
		}
	default:
		fmt.Fprintln(os.Stderr, "mmsolve: -rhs must be Aones or ones")
		os.Exit(2)
	}

	x := make([]float64, n)
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
	si := p.AddSolVector(x, index.EqualPartition(index.NewSpace("D", n), *pieces))
	ri := p.AddRHSVector(b, index.EqualPartition(index.NewSpace("R", n), *pieces))
	if strings.EqualFold(*format, "auto") {
		tuned := p.AddOperatorAuto(a, si, ri)
		fmt.Printf("format: auto -> %s\n", strings.Join(tuned.SelectedFormats(), " "))
	} else {
		// ConvertNamed resolves the name case-insensitively and returns a
		// named error listing the valid formats — a bad -format is a usage
		// error (exit 2), never a panic.
		m, err := sparse.ConvertNamed(a, *format)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mmsolve:", err)
			os.Exit(2)
		}
		p.AddOperator(m, si, ri)
	}
	if *solverName == "pcg" {
		p.AddPreconditioner(precond.Jacobi(a), si, ri)
	}
	p.Finalize()
	p.SetTracing(*trace)

	var rec *obs.Recorder
	if *profile {
		rec = p.EnableProfiling()
	}
	rt := p.Runtime()
	var injector *fault.Injector
	if plan.Active() {
		injector = fault.NewInjector(plan)
		rt.SetFaultInjector(injector)
		fmt.Printf("fault injection: %s\n", *faults)
	}
	if *retries > 1 {
		rt.SetRetryPolicy(taskrt.RetryPolicy{MaxAttempts: *retries, Backoff: *retryBackoff})
	}
	if *watchdog > 0 {
		rt.SetWatchdog(*watchdog)
	}

	resilient := *ckptEvery > 0
	if *detectSDC && !resilient {
		// Detection without the resilient driver: observe-only. The driver
		// enables it itself (and recovers) on the resilient path.
		p.EnableSDCDetection(0)
	}
	start := time.Now()
	var res solvers.Result
	var rres solvers.ResilientResult
	if resilient {
		mr := *maxRestarts
		if mr <= 0 {
			mr = -1 // solvers.ResilientConfig: negative disables restarts
		}
		rres = solvers.SolveResilient(p, func() solvers.Solver {
			return solvers.New(*solverName, p)
		}, solvers.ResilientConfig{
			Tol: *tol, MaxIter: *maxIter,
			CheckpointEvery: *ckptEvery, MaxRestarts: mr,
			DetectSDC: *detectSDC, ReplaceEvery: *replaceEvery, DriftTol: *driftTol,
			Log: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		res = rres.Result
	} else {
		s := solvers.New(*solverName, p)
		res = solve(s, rt, *tol, *maxIter, *profile)
	}
	p.Drain()
	elapsed := time.Since(start)

	// The honest yardstick for everything below: ‖b − A·x‖ recomputed
	// host-side from the raw matrix and arrays, sharing no code with the
	// solve (so neither a drifted recurrence nor corrupted planner state
	// can flatter it).
	trueRes := hostResidual(a, x, b)

	st := rt.Stats()
	if *trace {
		analyzed, spliced := rt.LaunchTiming()
		fmt.Printf("tracing: %d replayed / %d analyzed launches; instances %d hit / %d miss (%d fallbacks)\n",
			st.TraceReplays, st.Launched-st.TraceReplays, st.TraceHits, st.TraceMisses, st.TraceFallbacks)
		if spliced.Count > 0 {
			fmt.Printf("tracing: launch cost %v analyzed vs %v replayed (mean)\n",
				analyzed.Mean(), spliced.Mean())
		}
	}
	if injector != nil || st.Failed > 0 || st.Retries > 0 || st.Stragglers > 0 {
		fmt.Printf("faults: injected %d; tasks failed %d, retried %d, poisoned %d, stragglers %d\n",
			injectedCount(injector), st.Failed, st.Retries, st.Poisoned, st.Stragglers)
	}
	if resilient {
		fmt.Printf("resilience: %d checkpoint(s), %d restart(s), %d permanent failure(s) absorbed\n",
			rres.Checkpoints, rres.Restarts, rres.RecoveredFailures)
	}
	if *detectSDC {
		if mon := p.SDCMonitor(); mon != nil {
			fmt.Printf("sdc: %d checksum alarm(s)", mon.Count())
			if resilient {
				fmt.Printf("; %d piece restore(s), %d residual replacement(s), max drift %.3g",
					rres.PieceRestores, rres.Replacements, rres.MaxDrift)
			}
			fmt.Println()
		}
	}

	// A converged resilient solve has, by construction, verified the true
	// residual after recovery, so recovered task failures do not fail the
	// run. A plain solve has no recovery path: any task failure is fatal.
	// The exit is deferred past the profile output — a failed chaos run is
	// exactly the one whose trace is worth looking at.
	failed := false
	if err := rt.Err(); err != nil && !(resilient && res.Converged) {
		fmt.Fprintln(os.Stderr, "mmsolve: solve failed:", err)
		failed = true
	}

	fmt.Printf("solver: %s\n", *solverName)
	fmt.Printf("converged: %v in %d iterations, residual %.3g, true residual %.3g\n",
		res.Converged, res.Iterations, res.Residual, trueRes)
	fmt.Printf("wall time: %v (%.3g s/iteration)\n",
		elapsed, elapsed.Seconds()/math.Max(1, float64(res.Iterations)))
	if *rhs == "Aones" && res.Converged && !failed {
		var maxErr float64
		for _, v := range x {
			if e := math.Abs(v - 1); e > maxErr {
				maxErr = e
			}
		}
		fmt.Printf("max |x - 1| (exact solution is all ones): %.3g\n", maxErr)
	}

	if *profile {
		spans := rec.Spans()
		rep := obs.Analyze(spans, rt.Graph().DepLists())
		fmt.Println()
		fmt.Print(rep)
		if *traceOut != "" {
			if err := writeTrace(*traceOut, spans); err != nil {
				fmt.Fprintln(os.Stderr, "mmsolve:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote Chrome trace: %s (%d spans)\n", *traceOut, len(spans))
		}
	}
	if res.Breakdown != nil {
		fmt.Fprintln(os.Stderr, "mmsolve:", res.Breakdown)
	}
	// Strict mode: a convergence claim the true residual does not back up
	// (a drifted recurrence, or silent corruption the run never detected)
	// is a failure, not a success with a footnote. The 5% slack absorbs
	// the recompute's own rounding against the solver's stopping test.
	if *strictRes && res.Converged && trueRes > *tol*1.05 {
		fmt.Fprintf(os.Stderr, "mmsolve: convergence claim not backed by true residual %.3g (tol %.3g)\n",
			trueRes, *tol)
		failed = true
	}
	if failed || !res.Converged {
		os.Exit(1)
	}
}

// hostResidual is ‖b − A·x‖ computed directly from the raw arrays.
func hostResidual(a sparse.Matrix, x, b []float64) float64 {
	ax := make([]float64, len(b))
	sparse.SpMV(a, ax, x)
	var rr float64
	for i := range b {
		d := b[i] - ax[i]
		rr += d * d
	}
	return math.Sqrt(rr)
}

// loadMatrix reads a Matrix Market file, or generates a 5-point 2D
// Laplacian stencil when the argument has the form "lap2d:NXxNY" — handy
// for chaos runs that should not depend on a matrix file being around.
func loadMatrix(arg string) (*sparse.CSR, error) {
	if dims, ok := strings.CutPrefix(arg, "lap2d:"); ok {
		sx, sy, ok := strings.Cut(dims, "x")
		if !ok {
			return nil, fmt.Errorf("bad stencil spec %q, want lap2d:NXxNY", arg)
		}
		nx, err1 := strconv.ParseInt(sx, 10, 64)
		ny, err2 := strconv.ParseInt(sy, 10, 64)
		if err1 != nil || err2 != nil || nx <= 0 || ny <= 0 {
			return nil, fmt.Errorf("bad stencil spec %q, want lap2d:NXxNY", arg)
		}
		return sparse.Laplacian2D(nx, ny), nil
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sparse.ReadMatrixMarket(f)
}

// knownSolver reports whether solvers.New accepts the name: the public
// list plus the unfused ablation variants, which stay usable from the
// CLI for benchmark reproduction.
func knownSolver(name string) bool {
	for _, n := range solvers.Names {
		if name == n {
			return true
		}
	}
	switch name {
	case "cg-unfused", "pcg-unfused", "bicgstab-unfused":
		return true
	}
	return false
}

func injectedCount(in *fault.Injector) int64 {
	if in == nil {
		return 0
	}
	return in.Injected()
}

// solve mirrors solvers.Solve — synchronize on the convergence measure
// each iteration — but emits a telemetry line per iteration when
// profiling: residual, cumulative tasks launched and dependence edges,
// and the graph's critical-path compute cost.
func solve(s solvers.Solver, rt *taskrt.Runtime, tol float64, maxIter int, telemetry bool) solvers.Result {
	report := func(iter int, res float64) {
		st := rt.Stats()
		g := rt.Graph()
		fmt.Printf("iter %4d  residual %.6e  tasks %6d  deps %6d  critpath %.3gs\n",
			iter, res, st.Launched, st.DepEdges, g.CriticalPathCost())
	}
	res := math.Sqrt(s.ConvergenceMeasure().Value())
	if telemetry {
		report(0, res)
	}
	if res <= tol {
		return solvers.Result{Iterations: 0, Residual: res, Converged: true}
	}
	for i := 1; i <= maxIter; i++ {
		s.Step()
		res = math.Sqrt(s.ConvergenceMeasure().Value())
		if telemetry {
			report(i, res)
		}
		if res <= tol || math.IsNaN(res) {
			return solvers.Result{Iterations: i, Residual: res, Converged: res <= tol}
		}
		if bc, ok := s.(solvers.BreakdownChecker); ok {
			if err := bc.Breakdown(); err != nil {
				return solvers.Result{Iterations: i, Residual: res, Breakdown: err}
			}
		}
	}
	return solvers.Result{Iterations: maxIter, Residual: res, Converged: false}
}

func writeTrace(path string, spans []obs.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
