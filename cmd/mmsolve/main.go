// Mmsolve reads a square sparse matrix in Matrix Market coordinate
// format and solves A·x = b with the chosen Krylov method, reporting the
// iteration count, final residual, and timing.
//
//	mmsolve -solver bicgstab -tol 1e-8 matrix.mtx
//
// The right-hand side defaults to A·1 (so the exact solution is the
// all-ones vector, making correctness easy to eyeball); -rhs ones uses
// b = 1 instead. For SPD matrices try -solver cg or -solver pcg (Jacobi).
//
// -profile records wall-clock spans for every executed task and prints a
// per-iteration telemetry line plus a per-task-name breakdown with the
// schedule's critical path; -trace-out additionally writes the spans as a
// Chrome trace (load it in Perfetto or chrome://tracing).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/obs"
	"kdrsolvers/internal/precond"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
	"kdrsolvers/internal/taskrt"
)

func main() {
	solverName := flag.String("solver", "bicgstab", "cg, bicgstab, gmres, minres, bicg, cgs, or pcg")
	tol := flag.Float64("tol", 1e-8, "residual tolerance")
	maxIter := flag.Int("maxiter", 10000, "iteration limit")
	pieces := flag.Int("pieces", 8, "vector pieces")
	rhs := flag.String("rhs", "Aones", "right-hand side: 'Aones' (b = A·1) or 'ones' (b = 1)")
	profile := flag.Bool("profile", false, "record task timings; print per-iteration telemetry and a per-task breakdown")
	traceOut := flag.String("trace-out", "", "write recorded task spans as a Chrome trace to this file (implies -profile)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mmsolve [flags] matrix.mtx")
		os.Exit(2)
	}
	if *traceOut != "" {
		*profile = true
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmsolve:", err)
		os.Exit(1)
	}
	a, err := sparse.ReadMatrixMarket(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmsolve:", err)
		os.Exit(1)
	}
	rows, cols := sparse.Dims(a)
	if rows != cols {
		fmt.Fprintf(os.Stderr, "mmsolve: matrix is %d x %d, need square\n", rows, cols)
		os.Exit(1)
	}
	n := rows
	fmt.Printf("matrix: %d x %d, %d nonzeros\n", rows, cols, a.NNZ())

	b := make([]float64, n)
	switch *rhs {
	case "Aones":
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		sparse.SpMV(a, b, ones)
	case "ones":
		for i := range b {
			b[i] = 1
		}
	default:
		fmt.Fprintln(os.Stderr, "mmsolve: -rhs must be Aones or ones")
		os.Exit(2)
	}

	x := make([]float64, n)
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
	si := p.AddSolVector(x, index.EqualPartition(index.NewSpace("D", n), *pieces))
	ri := p.AddRHSVector(b, index.EqualPartition(index.NewSpace("R", n), *pieces))
	p.AddOperator(a, si, ri)
	if *solverName == "pcg" {
		p.AddPreconditioner(precond.Jacobi(a), si, ri)
	}
	p.Finalize()

	var rec *obs.Recorder
	if *profile {
		rec = p.EnableProfiling()
	}
	rt := p.Runtime()

	start := time.Now()
	s := solvers.New(*solverName, p)
	res := solve(s, rt, *tol, *maxIter, *profile)
	p.Drain()
	elapsed := time.Since(start)

	if err := rt.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "mmsolve: solve failed:", err)
		if st := rt.Stats(); st.Failed > 0 {
			fmt.Fprintf(os.Stderr, "mmsolve: %d task(s) failed\n", st.Failed)
		}
		os.Exit(1)
	}

	fmt.Printf("solver: %s\n", *solverName)
	fmt.Printf("converged: %v in %d iterations, residual %.3g\n",
		res.Converged, res.Iterations, res.Residual)
	fmt.Printf("wall time: %v (%.3g s/iteration)\n",
		elapsed, elapsed.Seconds()/math.Max(1, float64(res.Iterations)))
	if *rhs == "Aones" {
		var maxErr float64
		for _, v := range x {
			if e := math.Abs(v - 1); e > maxErr {
				maxErr = e
			}
		}
		fmt.Printf("max |x - 1| (exact solution is all ones): %.3g\n", maxErr)
	}

	if *profile {
		spans := rec.Spans()
		rep := obs.Analyze(spans, rt.Graph().DepLists())
		fmt.Println()
		fmt.Print(rep)
		if *traceOut != "" {
			if err := writeTrace(*traceOut, spans); err != nil {
				fmt.Fprintln(os.Stderr, "mmsolve:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote Chrome trace: %s (%d spans)\n", *traceOut, len(spans))
		}
	}
	if !res.Converged {
		os.Exit(1)
	}
}

// solve mirrors solvers.Solve — synchronize on the convergence measure
// each iteration — but emits a telemetry line per iteration when
// profiling: residual, cumulative tasks launched and dependence edges,
// and the graph's critical-path compute cost.
func solve(s solvers.Solver, rt *taskrt.Runtime, tol float64, maxIter int, telemetry bool) solvers.Result {
	report := func(iter int, res float64) {
		st := rt.Stats()
		g := rt.Graph()
		fmt.Printf("iter %4d  residual %.6e  tasks %6d  deps %6d  critpath %.3gs\n",
			iter, res, st.Launched, st.DepEdges, g.CriticalPathCost())
	}
	res := math.Sqrt(s.ConvergenceMeasure().Value())
	if telemetry {
		report(0, res)
	}
	if res <= tol {
		return solvers.Result{Iterations: 0, Residual: res, Converged: true}
	}
	for i := 1; i <= maxIter; i++ {
		s.Step()
		res = math.Sqrt(s.ConvergenceMeasure().Value())
		if telemetry {
			report(i, res)
		}
		if res <= tol || math.IsNaN(res) {
			return solvers.Result{Iterations: i, Residual: res, Converged: res <= tol}
		}
	}
	return solvers.Result{Iterations: maxIter, Residual: res, Converged: false}
}

func writeTrace(path string, spans []obs.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
