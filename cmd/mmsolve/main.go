// Mmsolve reads a square sparse matrix in Matrix Market coordinate
// format and solves A·x = b with the chosen Krylov method, reporting the
// iteration count, final residual, and timing.
//
//	mmsolve -solver bicgstab -tol 1e-8 matrix.mtx
//
// The matrix argument is either a .mtx file or a generated stencil spec
// like "lap2d:64x64" (a 5-point 2D Laplacian on a 64×64 grid).
//
// The right-hand side defaults to A·1 (so the exact solution is the
// all-ones vector, making correctness easy to eyeball); -rhs ones uses
// b = 1 instead, and -rhs rand:SEED draws deterministic uniform entries.
// For SPD matrices try -solver cg or -solver pcg (Jacobi).
//
// Mmsolve is the one-shot front end of the same job machinery
// cmd/mmserve serves over HTTP: both validate the identical
// jobspec.Spec (a flag combination rejected here with exit 2 is a
// request body rejected there with 400) and both execute it through
// serve.RunSolve inside a taskrt session.
//
// -profile records wall-clock spans for every executed task and prints a
// per-iteration telemetry line plus a per-task-name breakdown with the
// schedule's critical path; -trace-out additionally writes the spans as a
// Chrome trace (load it in Perfetto or chrome://tracing).
//
// Fault tolerance (chaos runs): -faults injects a deterministic fault
// plan (e.g. -faults "panic=0.01,seed=1" or "bitflip=0.001,bit=52"),
// -retries enables bounded re-execution of idempotent tasks, -watchdog
// flags stragglers, and -checkpoint-every N switches to the resilient
// driver, which checkpoints the solution every N iterations and rolls
// back on failure, corruption, or divergence (-max-restarts bounds the
// rollbacks).
//
// Silent data corruption: -detect-sdc turns on checksummed kernels
// (ABFT) that alarm on corrupted vector pieces; with the resilient
// driver the alarms drive selective piece restore plus residual
// replacement. -replace-every N rebases the recurrence residual on the
// recomputed b − A·x every N iterations when its drift exceeds
// -drift-tol (resilient driver only). The report always prints the
// host-side true residual next to the recurrence residual, and
// -strict-residual exits non-zero when a solver claims convergence the
// true residual does not back up.
//
// Exit status: 0 on a converged solve (including one that recovered from
// injected or real task failures), 1 on non-convergence, breakdown, or
// unrecovered task failure, 2 on usage errors — an unknown -format,
// -solver, or -rhs name, or a nonsensical numeric value (-pieces 0,
// -maxiter -1, -replace-every -5, a non-positive -tol); the error lists
// what was wrong with every offending flag.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"kdrsolvers/internal/jobspec"
	"kdrsolvers/internal/obs"
	"kdrsolvers/internal/serve"
	"kdrsolvers/internal/sparse"
	"kdrsolvers/internal/taskrt"
)

func main() {
	spec := jobspec.Default()
	flag.StringVar(&spec.Solver, "solver", spec.Solver, "cg, pipecg, sstep-cg, bicgstab, gmres, pgmres, gcrodr, minres, bicg, cgs, or pcg")
	flag.Float64Var(&spec.Tol, "tol", spec.Tol, "residual tolerance")
	flag.IntVar(&spec.MaxIter, "maxiter", spec.MaxIter, "iteration limit")
	flag.IntVar(&spec.Pieces, "pieces", spec.Pieces, "vector pieces")
	flag.StringVar(&spec.Format, "format", spec.Format, "operator storage: a format name (csr, coo, dia, ...) or 'auto' to tune each row band")
	flag.StringVar(&spec.RHS, "rhs", spec.RHS, "right-hand side: 'Aones' (b = A·1), 'ones' (b = 1), or 'rand:SEED'")
	profile := flag.Bool("profile", false, "record task timings; print per-iteration telemetry and a per-task breakdown")
	trace := flag.Bool("trace", true, "memoize dependence analysis of repeated solver iterations (trace replay)")
	traceOut := flag.String("trace-out", "", "write recorded task spans as a Chrome trace to this file (implies -profile)")
	flag.StringVar(&spec.Faults, "faults", "", "fault-injection plan, e.g. 'panic=0.01,seed=1' (see internal/fault)")
	flag.IntVar(&spec.Retries, "retries", 0, "execution attempts per idempotent task (0 or 1 disables retry)")
	flag.DurationVar(&spec.RetryBackoff, "retry-backoff", 0, "delay before re-executing a failed task (doubles per attempt)")
	flag.IntVar(&spec.CheckpointEvery, "checkpoint-every", 0, "checkpoint the solution every N iterations and roll back on failure (0 disables the resilient driver)")
	flag.IntVar(&spec.MaxRestarts, "max-restarts", spec.MaxRestarts, "checkpoint rollback budget for the resilient driver")
	flag.DurationVar(&spec.Watchdog, "watchdog", 0, "flag tasks running past this wall-clock budget as stragglers (0 disables)")
	flag.BoolVar(&spec.DetectSDC, "detect-sdc", false, "enable ABFT checksummed kernels; with the resilient driver, recover from alarms by piece restore + residual replacement")
	flag.IntVar(&spec.ReplaceEvery, "replace-every", 0, "rebase the recurrence residual on the recomputed b - A·x every N iterations (resilient driver only, 0 disables)")
	flag.Float64Var(&spec.DriftTol, "drift-tol", 0, "relative drift threshold for periodic residual replacement (<= 0 replaces unconditionally)")
	strictRes := flag.Bool("strict-residual", false, "exit non-zero when the solver claims convergence but the true residual misses the tolerance")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mmsolve [flags] matrix.mtx")
		os.Exit(2)
	}
	spec.Matrix = flag.Arg(0)
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "mmsolve:", err)
		fmt.Fprintln(os.Stderr, "usage: mmsolve [flags] matrix.mtx (run -h for the flag list)")
		os.Exit(2)
	}
	if *traceOut != "" {
		*profile = true
	}

	a, err := jobspec.LoadMatrix(spec.Matrix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmsolve:", err)
		os.Exit(1)
	}
	rows, cols := sparse.Dims(a)
	if rows != cols {
		fmt.Fprintf(os.Stderr, "mmsolve: matrix is %d x %d, need square\n", rows, cols)
		os.Exit(1)
	}
	fmt.Printf("matrix: %d x %d, %d nonzeros\n", rows, cols, a.NNZ())
	if spec.Faults != "" {
		fmt.Printf("fault injection: %s\n", spec.Faults)
	}

	// One-shot mode is the degenerate case of the server: one session on
	// a fresh runtime, driven through the same RunSolve the server
	// multiplexes many of.
	rt := taskrt.New()
	sess := rt.DefaultSession()
	opt := serve.Options{
		Session: sess,
		Tracing: *trace,
		Log: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	var rec *obs.Recorder
	if *profile {
		rec = obs.NewRecorder()
		opt.Recorder = rec
		opt.Telemetry = func(iter int, res float64) {
			st := rt.Stats()
			g := rt.Graph()
			fmt.Printf("iter %4d  residual %.6e  tasks %6d  deps %6d  critpath %.3gs\n",
				iter, res, st.Launched, st.DepEdges, g.CriticalPathCost())
		}
	}

	out := serve.RunSolve(a, spec, opt)

	if len(out.AutoFormats) > 0 {
		fmt.Printf("format: auto -> %s\n", strings.Join(out.AutoFormats, " "))
	}
	st := rt.Stats()
	if *trace {
		analyzed, spliced := rt.LaunchTiming()
		fmt.Printf("tracing: %d replayed / %d analyzed launches; instances %d hit / %d miss (%d fallbacks)\n",
			st.TraceReplays, st.Launched-st.TraceReplays, st.TraceHits, st.TraceMisses, st.TraceFallbacks)
		if spliced.Count > 0 {
			fmt.Printf("tracing: launch cost %v analyzed vs %v replayed (mean)\n",
				analyzed.Mean(), spliced.Mean())
		}
	}
	if spec.Faults != "" || st.Failed > 0 || st.Retries > 0 || st.Stragglers > 0 {
		fmt.Printf("faults: injected %d; tasks failed %d, retried %d, poisoned %d, stragglers %d\n",
			out.Injected, st.Failed, st.Retries, st.Poisoned, st.Stragglers)
	}
	resilient := spec.CheckpointEvery > 0
	if resilient {
		fmt.Printf("resilience: %d checkpoint(s), %d restart(s), %d permanent failure(s) absorbed\n",
			out.Checkpoints, out.Restarts, out.RecoveredFailures)
	}
	if spec.DetectSDC {
		fmt.Printf("sdc: %d checksum alarm(s)", out.SDCAlarms)
		if resilient {
			fmt.Printf("; %d piece restore(s), %d residual replacement(s), max drift %.3g",
				out.PieceRestores, out.Replacements, out.MaxDrift)
		}
		fmt.Println()
	}

	// The exit is deferred past the profile output — a failed chaos run
	// is exactly the one whose trace is worth looking at.
	failed := false
	if out.Err != "" {
		fmt.Fprintln(os.Stderr, "mmsolve: solve failed:", out.Err)
		failed = true
	}

	fmt.Printf("solver: %s\n", spec.Solver)
	fmt.Printf("converged: %v in %d iterations, residual %.3g, true residual %.3g\n",
		out.Converged, out.Iterations, out.Residual, out.TrueResidual)
	fmt.Printf("wall time: %v (%.3g s/iteration)\n",
		out.Elapsed, out.Elapsed.Seconds()/math.Max(1, float64(out.Iterations)))
	if spec.RHS == "Aones" && out.Converged && !failed {
		var maxErr float64
		for _, v := range out.X {
			if e := math.Abs(v - 1); e > maxErr {
				maxErr = e
			}
		}
		fmt.Printf("max |x - 1| (exact solution is all ones): %.3g\n", maxErr)
	}

	if *profile {
		spans := rec.Spans()
		rep := obs.Analyze(spans, rt.Graph().DepLists())
		fmt.Println()
		fmt.Print(rep)
		if *traceOut != "" {
			if err := writeTrace(*traceOut, spans); err != nil {
				fmt.Fprintln(os.Stderr, "mmsolve:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote Chrome trace: %s (%d spans)\n", *traceOut, len(spans))
		}
	}
	if out.Breakdown != "" {
		fmt.Fprintln(os.Stderr, "mmsolve:", out.Breakdown)
	}
	// Strict mode: a convergence claim the true residual does not back up
	// (a drifted recurrence, or silent corruption the run never detected)
	// is a failure, not a success with a footnote. The 5% slack absorbs
	// the recompute's own rounding against the solver's stopping test.
	if *strictRes && out.Converged && out.TrueResidual > spec.Tol*1.05 {
		fmt.Fprintf(os.Stderr, "mmsolve: convergence claim not backed by true residual %.3g (tol %.3g)\n",
			out.TrueResidual, spec.Tol)
		failed = true
	}
	if failed || !out.Converged {
		os.Exit(1)
	}
}

func writeTrace(path string, spans []obs.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
