// Fig9 regenerates the paper's Figure 9: BiCGStab per-iteration time on a
// 5-point Laplacian over a 2^n × 2^n grid, formulated as a
// single-operator system and as a multi-operator system over two
// half-grids, as a function of n.
//
//	fig9                 # n = 8 … 14 quick sweep
//	fig9 -paper          # the paper's sweep up to n = 16 (2^32 unknowns)
package main

import (
	"flag"
	"fmt"

	"kdrsolvers/internal/figures"
	"kdrsolvers/internal/machine"
)

func main() {
	paper := flag.Bool("paper", false, "sweep up to the paper's 2^16 x 2^16 grid")
	nodes := flag.Int("nodes", 64, "simulated node count")
	warm := flag.Int("warmup", 3, "warmup iterations")
	it := flag.Int("it", 10, "timed iterations")
	flag.Parse()

	exps := []int{8, 10, 12, 14}
	if *paper {
		exps = append(exps, 15, 16)
	}
	m := machine.Lassen(*nodes)
	rows := figures.Fig9(m, exps, *warm, *it)

	fmt.Println("log2_side,unknowns,single_s_per_iter,multi_s_per_iter,multi_over_single")
	for _, r := range rows {
		n := int64(1) << uint(2*r.LogN)
		fmt.Printf("%d,%d,%.6g,%.6g,%.4f\n", r.LogN, n, r.Single, r.Multi, r.Multi/r.Single)
	}
	fmt.Println("\nexpected shape (paper, Section 6.2): multi-operator slower below ~10^9")
	fmt.Println("unknowns (task launch overhead), faster above (self-interaction compute")
	fmt.Println("overlaps boundary communication).")
}
