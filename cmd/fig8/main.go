// Fig8 regenerates the paper's Figure 8: the 4 × 3 grid of (stencil,
// solver) subplots comparing per-iteration execution time of the KDR
// implementation, PETSc, and Trilinos across problem sizes, on a
// simulated 16-node (64-GPU) Lassen configuration.
//
//	fig8                # quick scaled-down sweep (CSV)
//	fig8 -paper         # the paper's full 2^24 … 2^32 sweep
//	fig8 -summary       # also print the geometric-mean improvements
package main

import (
	"flag"
	"fmt"
	"os"

	"kdrsolvers/internal/figures"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sparse"
)

func main() {
	paper := flag.Bool("paper", false, "run the paper's full size sweep (2^24..2^32)")
	summary := flag.Bool("summary", true, "print geometric-mean improvements over the 3 largest sizes")
	nodes := flag.Int("nodes", 16, "simulated node count")
	warm := flag.Int("warmup", 5, "warmup iterations")
	it := flag.Int("it", 20, "timed iterations")
	profile := flag.Bool("profile", false, "print a per-task-name breakdown of the largest CG run's simulated schedule")
	traceOut := flag.String("trace-out", "", "write that schedule as a Chrome trace (implies -profile)")
	flag.Parse()
	if *traceOut != "" {
		*profile = true
	}

	sizes := figures.QuickSizes()
	if *paper {
		sizes = figures.PaperSizes()
	}
	m := machine.Lassen(*nodes)
	rows := figures.Fig8(m, sizes, *warm, *it)

	fmt.Println("stencil,solver,n,kdr_s_per_iter,petsc_s_per_iter,trilinos_s_per_iter")
	for _, r := range rows {
		fmt.Printf("%s,%s,%d,%.6g,%.6g,%.6g\n",
			r.Stencil, r.Solver, r.N, r.KDR, r.PETSc, r.Trilinos)
	}
	if *summary {
		s := figures.Summarize(rows, 3)
		fmt.Printf("\ngeomean improvement over the 3 largest sizes per subplot:\n")
		fmt.Printf("  vs PETSc:    %.1f%%  (paper reports 5.4%%)\n", 100*s.VsPETSc)
		fmt.Printf("  vs Trilinos: %.1f%%  (paper reports 9.6%%)\n", 100*s.VsTrilinos)
	}

	if *profile {
		n := sizes[len(sizes)-1]
		fmt.Printf("\nprofile of the simulated schedule: %d nodes, cg, 2D 5-point, n=%d, %d iterations\n",
			*nodes, n, *it)
		sc := figures.CaptureSchedule(m, sparse.Stencil2D5, n, "cg", *it,
			figures.KDROptions{Tracing: true})
		fmt.Print(sc.Report)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err == nil {
				err = sc.WriteTrace(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "fig8:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote Chrome trace: %s (%d spans)\n", *traceOut, len(sc.Result.Spans))
		}
	}
}
