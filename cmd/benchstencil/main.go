// Benchstencil is the reproduction of the paper artifact's
// BenchmarkStencil program: it runs one Krylov solver on one generated
// stencil system and reports execution time per iteration (simulated on
// the modeled cluster, per DESIGN.md).
//
// Flags mirror the artifact's command line: -dim selects the stencil
// (1: 3-point 1D, 2: 5-point 2D, 3: 7-point 3D, 4: 27-point 3D), -solver
// the method (1: CG, 2: BiCGStab, 3: GMRES), -nx/-ny/-nz the grid,
// -vp the number of vector pieces, and -it the iteration count.
//
//	benchstencil -dim 2 -solver 1 -nx 4096 -ny 4096 -vp 64 -it 200
//
// The additional -lib flag ({kdr, petsc, trilinos}) selects the library
// and -nodes the simulated node count (4 GPUs per node, as on Lassen).
package main

import (
	"flag"
	"fmt"
	"os"

	"kdrsolvers/internal/baseline"
	"kdrsolvers/internal/figures"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sparse"
)

func main() {
	dim := flag.Int("dim", 2, "stencil: 1=3pt-1D 2=5pt-2D 3=7pt-3D 4=27pt-3D")
	solver := flag.Int("solver", 1, "solver: 1=CG 2=BiCGStab 3=GMRES")
	nx := flag.Int64("nx", 4096, "grid extent x")
	ny := flag.Int64("ny", 0, "grid extent y (2D/3D)")
	nz := flag.Int64("nz", 0, "grid extent z (3D)")
	vp := flag.Int("vp", 0, "vector pieces (0 = one per GPU)")
	it := flag.Int("it", 200, "timed iterations")
	warm := flag.Int("warmup", 20, "warmup iterations")
	lib := flag.String("lib", "kdr", "library: kdr, petsc, or trilinos")
	nodes := flag.Int("nodes", 16, "simulated node count (4 GPUs each)")
	notrace := flag.Bool("notrace", false, "disable dynamic-trace memoization (kdr only)")
	flag.Parse()

	kinds := map[int]sparse.StencilKind{
		1: sparse.Stencil1D3, 2: sparse.Stencil2D5,
		3: sparse.Stencil3D7, 4: sparse.Stencil3D27,
	}
	kind, ok := kinds[*dim]
	if !ok {
		fmt.Fprintln(os.Stderr, "benchstencil: -dim must be 1..4")
		os.Exit(2)
	}
	solvers := map[int]string{1: "cg", 2: "bicgstab", 3: "gmres"}
	solverName, ok := solvers[*solver]
	if !ok {
		fmt.Fprintln(os.Stderr, "benchstencil: -solver must be 1..3")
		os.Exit(2)
	}

	var grid index.Grid
	switch kind.Rank() {
	case 1:
		grid = index.NewGrid(*nx)
	case 2:
		if *ny == 0 {
			*ny = *nx
		}
		grid = index.NewGrid(*nx, *ny)
	default:
		if *ny == 0 {
			*ny = *nx
		}
		if *nz == 0 {
			*nz = *ny
		}
		grid = index.NewGrid(*nx, *ny, *nz)
	}
	n := grid.Size()
	m := machine.Lassen(*nodes)

	var meas figures.Measurement
	switch *lib {
	case "kdr":
		meas = figures.KDRIterTime(m, kind, n, solverName, *warm, *it,
			figures.KDROptions{Tracing: !*notrace, VP: *vp})
	case "petsc":
		if solverName == "gmres" {
			fmt.Fprintln(os.Stderr, "benchstencil: PETSc is not benchmarked on GMRES (restart policy differs; see the paper)")
			os.Exit(2)
		}
		meas = figures.BaselineIterTime(baseline.PETSc(), m, kind, n, solverName, *warm, *it)
	case "trilinos":
		meas = figures.BaselineIterTime(baseline.Trilinos(), m, kind, n, solverName, *warm, *it)
	default:
		fmt.Fprintln(os.Stderr, "benchstencil: -lib must be kdr, petsc, or trilinos")
		os.Exit(2)
	}

	fmt.Printf("stencil=%s solver=%s n=%d nodes=%d gpus=%d lib=%s\n",
		kind, solverName, n, *nodes, m.NumProcs(), *lib)
	fmt.Printf("time/iteration: %.6g s  (total for %d iterations: %.6g s)\n",
		meas.SecondsPerIter, *it, meas.SecondsPerIter*float64(*it))
	fmt.Printf("tasks/iteration: %.0f  inter-node traffic/iteration: %.3g MB\n",
		meas.TasksPerIter, meas.CommBytesPerIter/1e6)
}
