// Fig3 prints the paper's Figure 3 — the storage-format table — as
// realized by this implementation, and verifies each format live: it
// builds the same matrix in all nine formats, checks that every one
// defines the same linear operator, and runs the universal
// co-partitioning soundness check (the Section 3.1 masking argument) on
// each.
package main

import (
	"fmt"
	"math"
	"os"

	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/sparse"
)

// formatRows mirror the paper's table.
var formatRows = []struct{ format, structural, colRel, rowRel string }{
	{"Dense", "K = R x D", "j = k mod |D| (implicit)", "i = k div |D| (implicit)"},
	{"COO", "(none)", "col: K -> D", "row: K -> R"},
	{"CSR", "K totally ordered", "col: K -> D", "rowptr: R -> [K,K]"},
	{"CSC", "K totally ordered", "colptr: D -> [K,K]", "row: K -> R"},
	{"ELL", "K = R x K0", "col: K -> D", "pi1 (implicit)"},
	{"ELL'", "K = D x K0", "pi1 (implicit)", "row: K -> R"},
	{"DIA", "K = K0 x D, offset: K0 -> Z", "j = k mod |D| (implicit)", "i = j - offset (implicit)"},
	{"BCSR", "K = K0 x BR x BD, K0 ordered", "col: K0 -> D0", "rowptr: R0 -> [K0,K0]"},
	{"BCSC", "K = K0 x BR x BD, K0 ordered", "colptr: D0 -> [K0,K0]", "row: K0 -> R0"},
}

func main() {
	fmt.Printf("%-7s | %-30s | %-26s | %s\n", "Format", "Structural assumptions", "Column relation", "Row relation")
	fmt.Println(repeat('-', 110))
	for _, r := range formatRows {
		fmt.Printf("%-7s | %-30s | %-26s | %s\n", r.format, r.structural, r.colRel, r.rowRel)
	}

	// Live verification on a 2D Laplacian.
	ref := sparse.Laplacian2D(8, 8)
	want := sparse.ToDense(ref)
	n := ref.Domain().Size()
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) / 3)
	}
	fmt.Println("\nlive checks on an 8x8-grid Laplacian:")
	ok := true
	for _, f := range sparse.Formats {
		m := sparse.Convert(ref, f)
		same := equal(sparse.ToDense(m), want)
		sound := coPartitioningSound(m, x)
		fmt.Printf("  %-6s nnz=%4d  operator-equal=%-5v  co-partitioning-sound=%v\n",
			f, m.NNZ(), same, sound)
		ok = ok && same && sound
	}
	if !ok {
		fmt.Println("FAILED")
		os.Exit(1)
	}
	fmt.Println("all formats verified")
}

// coPartitioningSound checks the Section 3.1 property: each range piece
// of y = Ax is computable from the derived kernel piece and input halo
// alone.
func coPartitioningSound(m sparse.Matrix, x []float64) bool {
	rows, cols := sparse.Dims(m)
	want := make([]float64, rows)
	m.MultiplyAdd(want, x)
	rp := index.EqualPartition(m.Range(), 4)
	for c := 0; c < 4; c++ {
		kset := dpart.RowRToK(m.RowRelation(), rp).Piece(c)
		dset := dpart.ColKToD(m.ColRelation(), dpart.RowRToK(m.RowRelation(), rp)).Piece(c)
		masked := make([]float64, cols)
		dset.Each(func(j int64) {
			if j >= 0 && j < cols {
				masked[j] = x[j]
			}
		})
		got := make([]float64, rows)
		m.MultiplyAddPart(got, masked, kset)
		bad := false
		rp.Piece(c).Each(func(i int64) {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				bad = true
			}
		})
		if bad {
			return false
		}
	}
	return true
}

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			return false
		}
	}
	return true
}

func repeat(c byte, n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = c
	}
	return string(s)
}
