// Command benchlaunch runs the runtime-launch and SpMV benchmarks the CI
// bench job tracks and writes the results as JSON (ns/op plus the
// trace-memoization counters that justify them). It exists so benchmark
// numbers land in a machine-readable artifact instead of scrolling away
// in a CI log:
//
//	go run ./cmd/benchlaunch -strict -o BENCH_pr10.json
//
// The report carries performance gates (spliced launch under 1 µs with
// zero allocations, replay faster than analysis, fused CG launching
// ≥30% fewer tasks than unfused, adaptive format selection within 10%
// of the best hand-picked format, checksummed SpMV within 15% of plain,
// periodic residual replacement within 5% of the launch budget,
// WAL-journaled serving with batched fsyncs at ≥85% of WAL-off
// throughput). A violated gate prints a WARNING;
// with -strict — the CI default — it fails the run with exit status 1
// so regressions break the build instead of scrolling away.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/jobspec"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/region"
	"kdrsolvers/internal/serve"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
	"kdrsolvers/internal/taskrt"
)

// launchResult is one runtime-launch configuration's measurement.
type launchResult struct {
	NsPerOp float64 `json:"ns_per_op"`
	// AnalysisScansPerIter is the number of dependence-history entries
	// scanned per CG iteration in steady state (0 when replay is on).
	AnalysisScansPerIter float64 `json:"analysis_scans_per_iter"`
	// TraceHits is the number of fully replayed trace instances during
	// the steady-state counting run.
	TraceHits int64 `json:"trace_hits"`
	// LaunchNsAnalyzed/LaunchNsSpliced are the mean wall costs of one
	// Launch call on each path, from the runtime's own timers.
	LaunchNsAnalyzed float64 `json:"launch_ns_analyzed"`
	LaunchNsSpliced  float64 `json:"launch_ns_spliced,omitempty"`
}

// hotPathResult is the dedicated spliced-launch microbenchmark: a
// quiescent runtime replaying a three-task trace through LaunchBatch
// with detached specs and graph retention off — the launch path with
// nothing else on the clock.
type hotPathResult struct {
	// NsPerLaunch is the mean cost of one spliced launch from the
	// runtime's own launch-path timer.
	NsPerLaunch float64 `json:"ns_per_launch"`
	// AllocsPerLaunch is heap allocations per launch on the replay path
	// (testing.AllocsPerRun over whole iterations, divided by launches).
	AllocsPerLaunch float64 `json:"allocs_per_launch"`
	// IterNsPerLaunch is the full replay iteration wall time — trace
	// scope, batch launch, execution, drain — divided by launches.
	IterNsPerLaunch float64 `json:"iter_ns_per_launch"`
}

type spmvResult struct {
	NsPerOp float64 `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s"`
}

// fusionResult is one solver formulation's launch accounting and step
// cost on lap2d:64x64 with trace replay on.
type fusionResult struct {
	// LaunchesPerIter is the steady-state task-launch count per solver
	// iteration.
	LaunchesPerIter float64 `json:"launches_per_iter"`
	// UsPerStep is the wall cost of one Step (launch + execute, drained).
	UsPerStep float64 `json:"us_per_step"`
}

// reductionResult counts global reduction tasks — the "dot.reduce" and
// "dot.batchreduce" combining tasks that stand in for MPI_Allreduce on a
// distributed machine — per solver iteration in steady state. This is
// the communication-avoidance ledger: classical CG pays two reductions
// per iteration, pipelined CG batches them into one, and s-step CG
// amortizes one block Gram reduction over s iterations.
type reductionResult struct {
	// ReductionsPerIter is reduction tasks divided by iterations (one
	// Step is IterationsPerStep iterations for s-step methods).
	ReductionsPerIter float64 `json:"reductions_per_iter"`
	// IterationsPerStep is s for s-step solvers, 1 otherwise.
	IterationsPerStep int `json:"iterations_per_step"`
}

// autoResult compares adaptive format selection against every
// hand-picked format on one matrix structure.
type autoResult struct {
	// FormatNs is the SpMV cost of each hand-picked format.
	FormatNs map[string]float64 `json:"format_ns"`
	// Best names the fastest hand-picked format.
	Best   string  `json:"best"`
	BestNs float64 `json:"best_ns"`
	// AutoNs is the SpMV cost of the AutoSelect composite; Chosen lists
	// the format it picked per row band.
	AutoNs float64  `json:"auto_ns"`
	Chosen []string `json:"chosen"`
	// Ratio is AutoNs/BestNs; the gate requires ≤ 1.10.
	Ratio float64 `json:"ratio"`
}

// sdcResult is the ABFT cost ledger: the checksummed operator product
// against the plain one, and the launch cost of one residual
// replacement amortized over its ReplaceEvery window.
type sdcResult struct {
	// PlainSpMVNs/ChecksumSpMVNs are the drained costs of one planner
	// Matmul sweep on lap2d with SDC detection off and on — the
	// detection-on sweep verifies the source checksum, cross-checks the
	// product against the column-checksum vector, and refreshes the
	// destination checksum.
	PlainSpMVNs    float64 `json:"plain_spmv_ns"`
	ChecksumSpMVNs float64 `json:"checksum_spmv_ns"`
	// SpMVOverhead is checksum/plain; the gate requires ≤ 1.15.
	SpMVOverhead float64 `json:"spmv_overhead"`
	// CGLaunchesPerIter and ReplaceLaunches are deterministic task
	// counts: one steady-state fused CG iteration, and one forced
	// ReplaceResidual (true-residual recompute, batched drift reduction,
	// rebase of r and the search direction).
	CGLaunchesPerIter float64 `json:"cg_launches_per_iter"`
	ReplaceLaunches   float64 `json:"replace_launches"`
	ReplaceEvery      int     `json:"replace_every"`
	// ReplaceOverhead is ReplaceLaunches/(ReplaceEvery ×
	// CGLaunchesPerIter): the fraction of the launch budget a periodic
	// replacement policy adds. The gate requires ≤ 0.05.
	ReplaceOverhead float64 `json:"replace_overhead"`
}

// serverThroughputResult compares the mmserve serving path against
// sequential one-shot mmsolve on the same job mix: N identical cg
// solves, the service pattern the session layer exists for.
type serverThroughputResult struct {
	// Jobs is the submission count; Matrix and Tol the job parameters.
	Jobs   int     `json:"jobs"`
	Matrix string  `json:"matrix"`
	Tol    float64 `json:"tol"`
	// Baseline names how the sequential one-shot cost was measured:
	// "exec" spawns the built mmsolve binary per job (process start,
	// matrix generation, cold runtime, solve — what a shell loop pays),
	// "in-process" falls back to a fresh runtime + matrix load + solve
	// per job without the process cost.
	Baseline        string  `json:"baseline"`
	OneShotNsPerJob float64 `json:"oneshot_ns_per_job"`
	// ServerNsPerJob is wall time over jobs for the full server
	// configuration (coalescing on); ServerSoloNsPerJob disables
	// coalescing, so every job is its own session — the pure
	// session-multiplexing cost.
	ServerNsPerJob     float64 `json:"server_ns_per_job"`
	ServerSoloNsPerJob float64 `json:"server_solo_ns_per_job"`
	// Speedup is one-shot over server (the ≥4x gate); SoloSpeedup the
	// same without coalescing.
	Speedup     float64 `json:"speedup"`
	SoloSpeedup float64 `json:"solo_speedup"`
	// Batches and CoalescedJobs account the multi-RHS fusing;
	// MaxTrueResidual is the worst per-job host-recomputed ‖b − A·x‖
	// across every served job in both configurations (the at-tolerance
	// gate).
	Batches         int64   `json:"batches"`
	CoalescedJobs   int64   `json:"coalesced_jobs"`
	MaxTrueResidual float64 `json:"max_true_residual"`
}

// walOverheadResult prices crash durability: the same job mix through
// the server with the journal off, with the default batched fsync
// policy, and fsyncing every record. Rounds interleave the three
// configurations so a load spike on a shared box lands on all sides of
// the ratio; the gate is on the median per-round ratio, the same
// discipline the SDC overhead measurement uses.
type walOverheadResult struct {
	Jobs       int    `json:"jobs"`
	Rounds     int    `json:"rounds"`
	Matrix     string `json:"matrix"`
	FsyncEvery int    `json:"fsync_every"`
	// Per-side median job cost: journal off, fsync batched every
	// FsyncEvery records, fsync every record.
	OffNsPerJob     float64 `json:"off_ns_per_job"`
	BatchedNsPerJob float64 `json:"batched_ns_per_job"`
	EveryNsPerJob   float64 `json:"every_ns_per_job"`
	// BatchedThroughput is the median over rounds of (off wall)/(batched
	// wall) — batched jobs/s as a fraction of WAL-off jobs/s. The gate
	// requires ≥ 0.85: durability with batched fsyncs may cost at most
	// 15% of throughput.
	BatchedThroughput float64 `json:"batched_throughput"`
	// EveryThroughput is the same ratio for fsync-every-record —
	// reported for the README's durability table, not gated (it prices
	// the strictest setting honestly).
	EveryThroughput float64 `json:"every_throughput"`
}

func measureWALOverhead() walOverheadResult {
	spec := jobspec.Default()
	spec.Matrix = "lap2d:16x16"
	spec.Solver = "cg"
	res := walOverheadResult{Jobs: 32, Rounds: 7, Matrix: spec.Matrix, FsyncEvery: 16}

	tmp, err := os.MkdirTemp("", "benchlaunch-wal-*")
	if err != nil {
		panic("benchlaunch: wal tmpdir: " + err.Error())
	}
	defer os.RemoveAll(tmp)
	round := func(r int, fsyncEvery int) time.Duration {
		cfg := serve.Config{MaxActive: 1, QueueDepth: res.Jobs * 2, CoalesceMax: 1, Tracing: true}
		if fsyncEvery > 0 {
			// A fresh directory per round: each round pays admission and
			// completion journaling, never a growing replay.
			cfg.WALDir = filepath.Join(tmp, fmt.Sprintf("r%d-f%d", r, fsyncEvery))
			cfg.FsyncEvery = fsyncEvery
		}
		wall, worst, _, _ := serveJobsCfg(spec, res.Jobs, cfg)
		if worst > spec.Tol*1.05 {
			panic(fmt.Sprintf("benchlaunch: wal round residual %g misses tol", worst))
		}
		return wall
	}
	var offNs, batchedNs, everyNs, batchedRatio, everyRatio []float64
	for r := 0; r < res.Rounds; r++ {
		off := round(r, 0)
		batched := round(r, res.FsyncEvery)
		every := round(r, 1)
		offNs = append(offNs, float64(off.Nanoseconds())/float64(res.Jobs))
		batchedNs = append(batchedNs, float64(batched.Nanoseconds())/float64(res.Jobs))
		everyNs = append(everyNs, float64(every.Nanoseconds())/float64(res.Jobs))
		batchedRatio = append(batchedRatio, float64(off.Nanoseconds())/float64(batched.Nanoseconds()))
		everyRatio = append(everyRatio, float64(off.Nanoseconds())/float64(every.Nanoseconds()))
	}
	res.OffNsPerJob = medianOf(offNs)
	res.BatchedNsPerJob = medianOf(batchedNs)
	res.EveryNsPerJob = medianOf(everyNs)
	res.BatchedThroughput = medianOf(batchedRatio)
	res.EveryThroughput = medianOf(everyRatio)
	return res
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// serveJobs pushes the job list through a fresh server and returns
// wall-clock, worst true residual, and the coalescing counters.
func serveJobs(spec jobspec.Spec, jobs int, coalesceMax int) (time.Duration, float64, int64, int64) {
	return serveJobsCfg(spec, jobs, serve.Config{
		MaxActive: 1, QueueDepth: jobs * 2, CoalesceMax: coalesceMax, Tracing: true,
	})
}

// serveJobsCfg is serveJobs with the full server configuration exposed
// (the WAL overhead section varies durability settings).
func serveJobsCfg(spec jobspec.Spec, jobs int, cfg serve.Config) (time.Duration, float64, int64, int64) {
	srv, err := serve.NewServer(cfg)
	if err != nil {
		panic("benchlaunch: start server: " + err.Error())
	}
	start := time.Now()
	handles := make([]*serve.Job, 0, jobs)
	for i := 0; i < jobs; i++ {
		j, err := srv.Submit(spec)
		if err != nil {
			panic("benchlaunch: server rejected job: " + err.Error())
		}
		handles = append(handles, j)
	}
	worst := 0.0
	for _, j := range handles {
		r := j.Result()
		if !r.Converged || r.Err != "" {
			panic(fmt.Sprintf("benchlaunch: served job failed: converged=%v err=%q", r.Converged, r.Err))
		}
		if r.TrueResidual > worst {
			worst = r.TrueResidual
		}
	}
	wall := time.Since(start)
	m := srv.Metrics()
	srv.Drain()
	return wall, worst, m.Batches, m.CoalescedJobs
}

func measureServerThroughput() serverThroughputResult {
	spec := jobspec.Default()
	spec.Matrix = "lap2d:32x32"
	spec.Solver = "cg"
	res := serverThroughputResult{Jobs: 64, Matrix: spec.Matrix, Tol: spec.Tol}

	// Sequential one-shot baseline: the built CLI, spawned per job, like
	// a shell loop over inputs would. Falls back to an in-process loop
	// (fresh runtime + matrix generation per job, no process cost — a
	// strictly harder baseline) if the toolchain is unavailable.
	oneShot := func() time.Duration {
		bin := filepath.Join(os.TempDir(), fmt.Sprintf("benchlaunch-mmsolve-%d", os.Getpid()))
		if err := exec.Command("go", "build", "-o", bin, "./cmd/mmsolve").Run(); err == nil {
			defer os.Remove(bin)
			start := time.Now()
			for i := 0; i < res.Jobs; i++ {
				cmd := exec.Command(bin, "-solver", spec.Solver, "-tol", fmt.Sprint(spec.Tol), spec.Matrix)
				cmd.Stdout = nil
				if err := cmd.Run(); err != nil {
					panic("benchlaunch: one-shot mmsolve failed: " + err.Error())
				}
			}
			res.Baseline = "exec"
			return time.Since(start)
		}
		res.Baseline = "in-process"
		start := time.Now()
		for i := 0; i < res.Jobs; i++ {
			rt := taskrt.New()
			a, err := jobspec.LoadMatrix(spec.Matrix)
			if err != nil {
				panic(err)
			}
			out := serve.RunSolve(a, spec, serve.Options{Session: rt.DefaultSession(), Tracing: true})
			if !out.Converged {
				panic("benchlaunch: one-shot solve failed")
			}
		}
		return time.Since(start)
	}()
	res.OneShotNsPerJob = float64(oneShot.Nanoseconds()) / float64(res.Jobs)

	soloWall, soloWorst, _, _ := serveJobs(spec, res.Jobs, 1)
	res.ServerSoloNsPerJob = float64(soloWall.Nanoseconds()) / float64(res.Jobs)
	res.SoloSpeedup = res.OneShotNsPerJob / res.ServerSoloNsPerJob

	wall, worst, batches, coalesced := serveJobs(spec, res.Jobs, 16)
	res.ServerNsPerJob = float64(wall.Nanoseconds()) / float64(res.Jobs)
	res.Speedup = res.OneShotNsPerJob / res.ServerNsPerJob
	res.Batches = batches
	res.CoalescedJobs = coalesced
	res.MaxTrueResidual = worst
	if soloWorst > res.MaxTrueResidual {
		res.MaxTrueResidual = soloWorst
	}
	return res
}

type report struct {
	RuntimeLaunch map[string]launchResult `json:"runtime_launch"`
	LaunchHotPath hotPathResult           `json:"launch_hot_path"`
	SpMVFormats   map[string]spmvResult   `json:"spmv_formats"`
	// SolverFusion compares fused and per-operation solver formulations,
	// plus pipelined CG, on the same system.
	SolverFusion map[string]fusionResult `json:"solver_fusion"`
	// FormatAuto is the adaptive-selection sweep, one entry per matrix
	// structure.
	FormatAuto map[string]autoResult `json:"format_auto"`
	// ReductionsPerIter is the communication-avoidance ledger: global
	// reductions per iteration for the CG family.
	ReductionsPerIter map[string]reductionResult `json:"reductions_per_iter"`
	// SDCOverhead prices the silent-data-corruption defenses.
	SDCOverhead sdcResult `json:"sdc_overhead"`
	// ServerThroughput compares the long-running job server against
	// sequential one-shot CLI runs.
	ServerThroughput serverThroughputResult `json:"server_throughput"`
	// WALOverhead prices crash durability: served throughput with the
	// journal off vs batched-fsync vs fsync-every-record.
	WALOverhead walOverheadResult `json:"wal_overhead"`
}

// solverPlanner builds a real (non-virtual) planner on lap2d:64x64 and
// the named solver on it.
func solverPlanner(tracing bool, mk func(p *core.Planner) solvers.Solver) (*core.Planner, solvers.Solver) {
	a := sparse.Laplacian2D(64, 64)
	n := a.Domain().Size()
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
	si := p.AddSolVector(make([]float64, n), index.EqualPartition(index.NewSpace("D", n), 4))
	ri := p.AddRHSVector(make([]float64, n), index.EqualPartition(index.NewSpace("R", n), 4))
	p.AddOperator(a, si, ri)
	p.Finalize()
	p.SetTracing(tracing)
	return p, mk(p)
}

// cgPlanner builds the same real (non-virtual) CG setup
// BenchmarkRuntimeLaunch uses.
func cgPlanner(tracing bool) (*core.Planner, solvers.Solver) {
	return solverPlanner(tracing, func(p *core.Planner) solvers.Solver { return solvers.NewCG(p) })
}

func measureLaunch(tracing bool) launchResult {
	// Deterministic counting run: steady-state scans and hits per
	// iteration over a fixed window, after record+calibrate warmup.
	const window = 50
	p, s := cgPlanner(tracing)
	for i := 0; i < 3; i++ {
		s.Step()
	}
	p.Drain()
	before := p.Runtime().Stats()
	for i := 0; i < window; i++ {
		s.Step()
	}
	p.Drain()
	after := p.Runtime().Stats()

	// Timed run, fresh planner so the benchmark harness controls N.
	bres := testing.Benchmark(func(b *testing.B) {
		p, s := cgPlanner(tracing)
		for i := 0; i < 3; i++ {
			s.Step()
		}
		p.Drain()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
		p.Drain()
	})

	analyzed, spliced := p.Runtime().LaunchTiming()
	res := launchResult{
		NsPerOp:              float64(bres.NsPerOp()),
		AnalysisScansPerIter: float64(after.AnalysisScans-before.AnalysisScans) / window,
		TraceHits:            after.TraceHits - before.TraceHits,
		LaunchNsAnalyzed:     float64(analyzed.Mean().Nanoseconds()),
	}
	if spliced.Count > 0 {
		res.LaunchNsSpliced = float64(spliced.Mean().Nanoseconds())
	}
	return res
}

// measureHotPath runs the spliced-launch microbenchmark: three detached
// stable-region tasks per trace instance, graph retention off, pools
// warm — the steady-state replay launch with nothing else on the clock.
func measureHotPath() hotPathResult {
	rt := taskrt.New()
	rt.SetGraphRetention(false)
	sp := index.NewSpace("D", 256)
	a := region.New("hp.a", sp, "x")
	b := region.New("hp.b", sp, "x")
	ref := func(r *region.Region, priv region.Privilege) region.Ref {
		return region.Ref{Region: r.ID(), Field: "x", Subset: index.Span(0, 255), Priv: priv}
	}
	noop := func() float64 { return 0 }
	specs := []taskrt.TaskSpec{
		{Name: "produce", Refs: []region.Ref{ref(a, region.WriteDiscard)}, Run: noop, Detached: true},
		{Name: "transform", Refs: []region.Ref{ref(a, region.ReadOnly), ref(b, region.WriteDiscard)}, Run: noop, Detached: true},
		{Name: "consume", Refs: []region.Ref{ref(b, region.ReadWrite)}, Run: noop, Detached: true},
	}
	iter := func() {
		rt.BeginTrace("hotpath")
		rt.LaunchBatch(specs)
		rt.EndTrace()
		rt.Drain()
	}
	for i := 0; i < 10000; i++ {
		iter()
	}
	allocs := testing.AllocsPerRun(2000, iter) / float64(len(specs))

	const n = 100000
	start := time.Now()
	for i := 0; i < n; i++ {
		iter()
	}
	wall := time.Since(start)
	_, spliced := rt.LaunchTiming()
	return hotPathResult{
		NsPerLaunch:     float64(spliced.Mean().Nanoseconds()),
		AllocsPerLaunch: allocs,
		IterNsPerLaunch: float64(wall.Nanoseconds()) / float64(n*len(specs)),
	}
}

// measureFusion reports launches/iteration and µs/step for one solver
// formulation, tracing on: 3 warmup steps (trace record + calibrate),
// then a fixed counting window for the launch rate and a harness-timed
// run for the step cost.
func measureFusion(mk func(p *core.Planner) solvers.Solver) fusionResult {
	const window = 50
	p, s := solverPlanner(true, mk)
	for i := 0; i < 3; i++ {
		s.Step()
	}
	p.Drain()
	before := p.Runtime().Stats().Launched
	for i := 0; i < window; i++ {
		s.Step()
	}
	p.Drain()
	launches := float64(p.Runtime().Stats().Launched-before) / window

	bres := testing.Benchmark(func(b *testing.B) {
		p, s := solverPlanner(true, mk)
		for i := 0; i < 3; i++ {
			s.Step()
		}
		p.Drain()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
		p.Drain()
	})
	return fusionResult{
		LaunchesPerIter: launches,
		UsPerStep:       float64(bres.NsPerOp()) / 1e3,
	}
}

func measureSolverFusion() map[string]fusionResult {
	return map[string]fusionResult{
		"cg_fused":         measureFusion(func(p *core.Planner) solvers.Solver { return solvers.NewCG(p) }),
		"cg_unfused":       measureFusion(func(p *core.Planner) solvers.Solver { return solvers.NewCGUnfused(p) }),
		"pipecg":           measureFusion(func(p *core.Planner) solvers.Solver { return solvers.NewPipeCG(p) }),
		"bicgstab_fused":   measureFusion(func(p *core.Planner) solvers.Solver { return solvers.NewBiCGStab(p) }),
		"bicgstab_unfused": measureFusion(func(p *core.Planner) solvers.Solver { return solvers.NewBiCGStabUnfused(p) }),
	}
}

// measureReductions counts the reduction tasks one solver launches over
// a steady-state window, with tracing and graph retention on, and
// normalizes by iterations (window × itersPerStep).
func measureReductions(itersPerStep int, mk func(p *core.Planner) solvers.Solver) reductionResult {
	const window = 40
	p, s := solverPlanner(true, mk)
	for i := 0; i < 3; i++ {
		s.Step()
	}
	p.Drain()
	before := p.Runtime().Graph().Len()
	for i := 0; i < window; i++ {
		s.Step()
	}
	p.Drain()
	g := p.Runtime().Graph()
	count := 0
	for _, n := range g.Nodes[before:] {
		if n.Name == "dot.reduce" || n.Name == "dot.batchreduce" {
			count++
		}
	}
	return reductionResult{
		ReductionsPerIter: float64(count) / float64(window*itersPerStep),
		IterationsPerStep: itersPerStep,
	}
}

func measureReductionLedger() map[string]reductionResult {
	return map[string]reductionResult{
		"cg":       measureReductions(1, func(p *core.Planner) solvers.Solver { return solvers.NewCG(p) }),
		"pipecg":   measureReductions(1, func(p *core.Planner) solvers.Solver { return solvers.NewPipeCG(p) }),
		"sstep-cg": measureReductions(4, func(p *core.Planner) solvers.Solver { return solvers.NewSStepCG(p, 4) }),
	}
}

func measureSpMV() map[string]spmvResult {
	csr := sparse.Laplacian2D(64, 64)
	n := csr.Domain().Size()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) + 0.5
	}
	out := make(map[string]spmvResult, len(sparse.Formats)+1)
	bench := func(name string, nnz int64, mul func()) {
		bres := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(nnz * 16)
			for i := 0; i < b.N; i++ {
				mul()
			}
		})
		ns := float64(bres.NsPerOp())
		out[name] = spmvResult{
			NsPerOp: ns,
			MBPerS:  float64(nnz*16) / ns * 1e9 / 1e6,
		}
	}
	for _, f := range sparse.Formats {
		mat := sparse.Convert(csr, f)
		bench(f, mat.NNZ(), func() { mat.MultiplyAdd(y, x) })
	}
	op := sparse.NewStencilOperator(sparse.Stencil2D5, index.NewGrid(64, 64))
	bench("MatrixFree", op.NNZ(), func() { op.MultiplyAdd(y, x) })
	return out
}

// spmvNs times y += A·x with a fixed budget: repeated timed batches,
// best batch mean kept. Cheaper than testing.Benchmark for the 30-cell
// auto sweep, and the min is what a tuner should be judged against.
func spmvNs(m sparse.Matrix, y, x []float64) float64 {
	m.MultiplyAdd(y, x) // warm caches and lazy structures
	best := float64(0)
	for r := 0; r < 5; r++ {
		const batch = 50
		start := time.Now()
		for i := 0; i < batch; i++ {
			m.MultiplyAdd(y, x)
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(batch)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// spmvNsInterleaved times y += A·x for every candidate in lockstep
// rounds (one batch per candidate per round) and returns each
// candidate's best batch mean.
func spmvNsInterleaved(ms []sparse.Matrix, y, x []float64, batch int) []float64 {
	for _, m := range ms {
		m.MultiplyAdd(y, x) // warm caches and lazy structures
	}
	best := make([]float64, len(ms))
	const rounds = 9
	for r := 0; r < rounds; r++ {
		for i, m := range ms {
			start := time.Now()
			for b := 0; b < batch; b++ {
				m.MultiplyAdd(y, x)
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(batch)
			if best[i] == 0 || ns < best[i] {
				best[i] = ns
			}
		}
	}
	return best
}

// autoMatrices are the structures the adaptive tuner is judged on: a
// banded stencil, a scattered random matrix, and a mixed structure whose
// bands genuinely want different formats.
func autoMatrices() map[string]*sparse.CSR {
	r := rand.New(rand.NewSource(42))
	// The scattered matrix is big enough that x far exceeds L2: the
	// kernels are then genuinely gather-bound, which is the regime the
	// tuner's scattered-structure rates model. (A small random matrix
	// whose x fits in L1 measures loop microarchitecture, not structure,
	// and its format ranking flips from process to process with heap
	// layout luck.)
	random := func(rows, cols int64, perRow int) *sparse.CSR {
		seen := map[[2]int64]bool{}
		var coords []sparse.Coord
		add := func(i, j int64, v float64) {
			if !seen[[2]int64{i, j}] {
				seen[[2]int64{i, j}] = true
				coords = append(coords, sparse.Coord{Row: i, Col: j, Val: v})
			}
		}
		for i := int64(0); i < rows; i++ {
			add(i, i%cols, 1)
			for e := 0; e < perRow; e++ {
				add(i, r.Int63n(cols), r.Float64()-0.5)
			}
		}
		return sparse.CSRFromCoords(rows, cols, coords)
	}
	var mixed []sparse.Coord
	const mn = 512
	for i := int64(0); i < 64; i++ { // dense head block
		for j := int64(0); j < 64; j++ {
			mixed = append(mixed, sparse.Coord{Row: i, Col: j, Val: r.Float64() + 0.1})
		}
	}
	for i := int64(64); i < mn; i++ { // tridiagonal tail
		for _, j := range []int64{i - 1, i, i + 1} {
			if j >= 0 && j < mn {
				mixed = append(mixed, sparse.Coord{Row: i, Col: j, Val: r.Float64() + 0.1})
			}
		}
	}
	return map[string]*sparse.CSR{
		"lap2d_64x64":     sparse.Laplacian2D(64, 64),
		"random_32768":    random(32768, 32768, 5),
		"mixed_dense_tri": sparse.CSRFromCoords(mn, mn, mixed),
	}
}

func measureFormatAuto() map[string]autoResult {
	out := make(map[string]autoResult)
	for name, a := range autoMatrices() {
		rows, cols := sparse.Dims(a)
		x := make([]float64, cols)
		y := make([]float64, rows)
		for i := range x {
			x[i] = float64(i%7) + 0.5
		}
		// Time every candidate interleaved, round-robin, across several
		// independently converted instances each, and keep each
		// candidate's overall best. Sequential passes let a system-wide
		// slowdown land entirely on whichever candidate happens to be
		// under the timer, and a single allocation can be 10–20% slower
		// than an identical twin by page-placement luck alone; both
		// effects swing the auto/best ratio far more than any real format
		// difference, so both are averaged out of the comparison.
		// Formats whose storage explodes on this structure (dense arrays
		// of a huge sparse matrix, DIA with one diagonal per entry) are
		// left out of the hand-picked sweep: nobody picks a layout that
		// inflates the matrix by orders of magnitude, and converting it
		// would dominate the benchmark's memory and time.
		prof := sparse.ProfileCSR(a)
		storage := func(f string) float64 {
			switch f {
			case "Dense":
				return 8 * float64(prof.Rows) * float64(prof.Cols)
			case "DIA":
				return 8 * float64(prof.Diags) * float64(prof.Cols)
			case "ELL":
				return 16 * float64(prof.Rows) * float64(prof.MaxRowLen)
			case "ELL'":
				return 16 * float64(prof.Cols) * float64(prof.MaxColLen)
			}
			return 24 * float64(prof.NNZ)
		}
		var formats, skipped []string
		for _, f := range sparse.Formats {
			if storage(f) > 256<<20 {
				skipped = append(skipped, f)
				continue
			}
			formats = append(formats, f)
		}
		if len(skipped) > 0 {
			fmt.Printf("benchlaunch: %s: skipping %s (storage would exceed 256 MiB)\n",
				name, strings.Join(skipped, ", "))
		}
		batch := 50
		if prof.NNZ > 100_000 {
			batch = 5 // keep big-matrix timing slices a few ms each
		}

		const trials = 3
		tuned := sparse.AutoSelect(a, 4)
		var cands []sparse.Matrix
		for t := 0; t < trials; t++ {
			for _, f := range formats {
				cands = append(cands, sparse.Convert(a, f))
			}
			if t == 0 {
				cands = append(cands, tuned)
			} else {
				cands = append(cands, sparse.AutoSelect(a, 4))
			}
		}
		ns := spmvNsInterleaved(cands, y, x, batch)

		res := autoResult{FormatNs: make(map[string]float64, len(formats))}
		stride := len(formats) + 1
		for t := 0; t < trials; t++ {
			for i, f := range formats {
				v := ns[t*stride+i]
				if cur, ok := res.FormatNs[f]; !ok || v < cur {
					res.FormatNs[f] = v
				}
			}
			if v := ns[t*stride+stride-1]; res.AutoNs == 0 || v < res.AutoNs {
				res.AutoNs = v
			}
		}
		for _, f := range formats {
			if res.Best == "" || res.FormatNs[f] < res.BestNs {
				res.Best, res.BestNs = f, res.FormatNs[f]
			}
		}
		res.Chosen = tuned.SelectedFormats()
		res.Ratio = res.AutoNs / res.BestNs
		out[name] = res
	}
	return out
}

// measureSDCOverhead prices the SDC defenses: the checksummed Matmul
// sweep against the plain one (timed best-of-batches, replay on for
// both, like spmvNs), and the deterministic launch count of one forced
// residual replacement against the steady-state CG launch rate.
func measureSDCOverhead() sdcResult {
	type rig struct {
		p        *core.Planner
		dst, src core.VecID
	}
	build := func(detect bool) rig {
		a := sparse.Laplacian2D(128, 128)
		n := a.Domain().Size()
		p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
		si := p.AddSolVector(make([]float64, n), index.EqualPartition(index.NewSpace("D", n), 4))
		ri := p.AddRHSVector(make([]float64, n), index.EqualPartition(index.NewSpace("R", n), 4))
		p.AddOperator(a, si, ri)
		p.Finalize()
		p.SetTracing(true)
		if detect {
			p.EnableSDCDetection(0)
		}
		src := p.AllocateWorkspace(core.SolShape)
		dst := p.AllocateWorkspace(core.RhsShape)
		for i := 0; i < 10; i++ { // trace record + calibrate
			p.Matmul(dst, src)
		}
		p.Drain()
		return rig{p: p, dst: dst, src: src}
	}
	batchNs := func(r rig) float64 {
		const batch = 50
		start := time.Now()
		for i := 0; i < batch; i++ {
			r.p.Matmul(r.dst, r.src)
		}
		r.p.Drain()
		return float64(time.Since(start).Nanoseconds()) / batch
	}
	// Interleave the plain and checksummed batches so a load spike on a
	// shared box hits both sides of the ratio instead of skewing one:
	// adjacent batches are load-matched, so each round's ratio is stable
	// even when absolute times drift. The overhead is the median of the
	// per-round ratios; the ns fields report the per-side medians.
	plain, chk := build(false), build(true)
	var plainNs, chkNs, ratios []float64
	for r := 0; r < 15; r++ {
		pn, cn := batchNs(plain), batchNs(chk)
		plainNs = append(plainNs, pn)
		chkNs = append(chkNs, cn)
		ratios = append(ratios, cn/pn)
	}
	median := func(xs []float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	res := sdcResult{
		PlainSpMVNs:    median(plainNs),
		ChecksumSpMVNs: median(chkNs),
		ReplaceEvery:   50,
	}
	res.SpMVOverhead = median(ratios)

	p, s := cgPlanner(true)
	for i := 0; i < 3; i++ {
		s.Step()
	}
	p.Drain()
	const window = 50
	before := p.Runtime().Stats().Launched
	for i := 0; i < window; i++ {
		s.Step()
	}
	p.Drain()
	res.CGLaunchesPerIter = float64(p.Runtime().Stats().Launched-before) / window
	before = p.Runtime().Stats().Launched
	s.(solvers.ResidualReplacer).ReplaceResidual(0)
	p.Drain()
	res.ReplaceLaunches = float64(p.Runtime().Stats().Launched - before)
	res.ReplaceOverhead = res.ReplaceLaunches / (float64(res.ReplaceEvery) * res.CGLaunchesPerIter)
	return res
}

func main() {
	out := flag.String("o", "BENCH_pr10.json", "output file ('-' for stdout)")
	strict := flag.Bool("strict", false, "exit non-zero when a performance gate fails (CI sets this)")
	flag.Parse()

	// The SDC ratio gate is the tightest (≤ 1.15 on a ~1.10 measurement),
	// so it runs first: the big-matrix sections below leave enough heap
	// behind that GC cycles drain the launch-state pools mid-measurement,
	// taxing the task-heavier checksummed sweep more than the plain one.
	sdc := measureSDCOverhead()

	rep := report{
		RuntimeLaunch: map[string]launchResult{
			"replay_off": measureLaunch(false),
			"replay_on":  measureLaunch(true),
		},
		LaunchHotPath:     measureHotPath(),
		SpMVFormats:       measureSpMV(),
		SolverFusion:      measureSolverFusion(),
		FormatAuto:        measureFormatAuto(),
		ReductionsPerIter: measureReductionLedger(),
		SDCOverhead:       sdc,
		ServerThroughput:  measureServerThroughput(),
		WALOverhead:       measureWALOverhead(),
	}

	var failures []string
	gate := func(ok bool, format string, args ...any) {
		if !ok {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}
	hp := rep.LaunchHotPath
	gate(hp.NsPerLaunch < 1000,
		"spliced launch %.0f ns/launch, gate < 1000 ns", hp.NsPerLaunch)
	gate(hp.AllocsPerLaunch == 0,
		"replay path allocates %.2f allocs/launch, gate == 0", hp.AllocsPerLaunch)
	// Whole-step ns/op is execution-dominated and too noisy to gate on a
	// shared machine; gate the deterministic replay claims instead: replay
	// eliminates analysis scans, and the spliced launch path beats the
	// analyzed one under identical load.
	on := rep.RuntimeLaunch["replay_on"]
	gate(on.AnalysisScansPerIter == 0,
		"replay_on still scans %.0f history entries/iter, gate == 0", on.AnalysisScansPerIter)
	gate(on.LaunchNsSpliced > 0 && on.LaunchNsSpliced < on.LaunchNsAnalyzed,
		"spliced launch (%.0f ns) not cheaper than analyzed (%.0f ns)",
		on.LaunchNsSpliced, on.LaunchNsAnalyzed)
	f, u := rep.SolverFusion["cg_fused"], rep.SolverFusion["cg_unfused"]
	gate(f.LaunchesPerIter <= 0.7*u.LaunchesPerIter,
		"fused CG launches/iter (%.1f) not >=30%% below unfused (%.1f)", f.LaunchesPerIter, u.LaunchesPerIter)
	for name, ar := range rep.FormatAuto {
		gate(ar.Ratio <= 1.10,
			"%s: auto (%.0f ns) is %.2fx the best hand-picked format %s (%.0f ns), gate <= 1.10x",
			name, ar.AutoNs, ar.Ratio, ar.Best, ar.BestNs)
	}
	// Communication-avoidance gates: these counts are deterministic graph
	// structure, not timings, so equality is exact. s-step CG must pay
	// exactly one global reduction per s iterations — the paper-level
	// claim the matrix-powers kernel exists to earn.
	for name, want := range map[string]float64{"cg": 2, "pipecg": 1, "sstep-cg": 0.25} {
		rr := rep.ReductionsPerIter[name]
		gate(rr.ReductionsPerIter == want,
			"%s performs %.3g reductions/iteration, gate == %.3g", name, rr.ReductionsPerIter, want)
	}
	sdc = rep.SDCOverhead
	gate(sdc.SpMVOverhead <= 1.15,
		"checksummed SpMV %.2fx plain (%.0f vs %.0f ns), gate <= 1.15x",
		sdc.SpMVOverhead, sdc.ChecksumSpMVNs, sdc.PlainSpMVNs)
	gate(sdc.ReplaceOverhead <= 0.05,
		"residual replacement adds %.1f%% launches/iter at ReplaceEvery=%d, gate <= 5%%",
		sdc.ReplaceOverhead*100, sdc.ReplaceEvery)
	st := rep.ServerThroughput
	gate(st.Speedup >= 4,
		"server throughput %.2fx sequential one-shot mmsolve (%s baseline), gate >= 4x",
		st.Speedup, st.Baseline)
	gate(st.MaxTrueResidual <= st.Tol*1.05,
		"served job true residual %.3g misses tol %.3g", st.MaxTrueResidual, st.Tol)
	wo := rep.WALOverhead
	gate(wo.BatchedThroughput >= 0.85,
		"WAL with batched fsyncs serves %.2fx the WAL-off throughput (%.0f vs %.0f ns/job), gate >= 0.85x",
		wo.BatchedThroughput, wo.BatchedNsPerJob, wo.OffNsPerJob)
	for _, msg := range failures {
		fmt.Fprintf(os.Stderr, "benchlaunch: WARNING: %s\n", msg)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchlaunch:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchlaunch:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *strict && len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchlaunch: %d gate(s) failed under -strict\n", len(failures))
		os.Exit(1)
	}
}
