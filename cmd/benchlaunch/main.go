// Command benchlaunch runs the runtime-launch and SpMV benchmarks the CI
// bench job tracks and writes the results as JSON (ns/op plus the
// trace-memoization counters that justify them). It exists so benchmark
// numbers land in a machine-readable artifact instead of scrolling away
// in a CI log:
//
//	go run ./cmd/benchlaunch -o BENCH_pr5.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
)

// launchResult is one runtime-launch configuration's measurement.
type launchResult struct {
	NsPerOp float64 `json:"ns_per_op"`
	// AnalysisScansPerIter is the number of dependence-history entries
	// scanned per CG iteration in steady state (0 when replay is on).
	AnalysisScansPerIter float64 `json:"analysis_scans_per_iter"`
	// TraceHits is the number of fully replayed trace instances during
	// the steady-state counting run.
	TraceHits int64 `json:"trace_hits"`
	// LaunchNsAnalyzed/LaunchNsSpliced are the mean wall costs of one
	// Launch call on each path, from the runtime's own timers.
	LaunchNsAnalyzed float64 `json:"launch_ns_analyzed"`
	LaunchNsSpliced  float64 `json:"launch_ns_spliced,omitempty"`
}

type spmvResult struct {
	NsPerOp float64 `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s"`
}

// fusionResult is one solver formulation's launch accounting and step
// cost on lap2d:64x64 with trace replay on.
type fusionResult struct {
	// LaunchesPerIter is the steady-state task-launch count per solver
	// iteration.
	LaunchesPerIter float64 `json:"launches_per_iter"`
	// UsPerStep is the wall cost of one Step (launch + execute, drained).
	UsPerStep float64 `json:"us_per_step"`
}

type report struct {
	RuntimeLaunch map[string]launchResult `json:"runtime_launch"`
	SpMVFormats   map[string]spmvResult   `json:"spmv_formats"`
	// SolverFusion compares fused and per-operation solver formulations,
	// plus pipelined CG, on the same system.
	SolverFusion map[string]fusionResult `json:"solver_fusion"`
}

// solverPlanner builds a real (non-virtual) planner on lap2d:64x64 and
// the named solver on it.
func solverPlanner(tracing bool, mk func(p *core.Planner) solvers.Solver) (*core.Planner, solvers.Solver) {
	a := sparse.Laplacian2D(64, 64)
	n := a.Domain().Size()
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
	si := p.AddSolVector(make([]float64, n), index.EqualPartition(index.NewSpace("D", n), 4))
	ri := p.AddRHSVector(make([]float64, n), index.EqualPartition(index.NewSpace("R", n), 4))
	p.AddOperator(a, si, ri)
	p.Finalize()
	p.SetTracing(tracing)
	return p, mk(p)
}

// cgPlanner builds the same real (non-virtual) CG setup
// BenchmarkRuntimeLaunch uses.
func cgPlanner(tracing bool) (*core.Planner, solvers.Solver) {
	return solverPlanner(tracing, func(p *core.Planner) solvers.Solver { return solvers.NewCG(p) })
}

func measureLaunch(tracing bool) launchResult {
	// Deterministic counting run: steady-state scans and hits per
	// iteration over a fixed window, after record+calibrate warmup.
	const window = 50
	p, s := cgPlanner(tracing)
	for i := 0; i < 3; i++ {
		s.Step()
	}
	p.Drain()
	before := p.Runtime().Stats()
	for i := 0; i < window; i++ {
		s.Step()
	}
	p.Drain()
	after := p.Runtime().Stats()

	// Timed run, fresh planner so the benchmark harness controls N.
	bres := testing.Benchmark(func(b *testing.B) {
		p, s := cgPlanner(tracing)
		for i := 0; i < 3; i++ {
			s.Step()
		}
		p.Drain()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
		p.Drain()
	})

	analyzed, spliced := p.Runtime().LaunchTiming()
	res := launchResult{
		NsPerOp:              float64(bres.NsPerOp()),
		AnalysisScansPerIter: float64(after.AnalysisScans-before.AnalysisScans) / window,
		TraceHits:            after.TraceHits - before.TraceHits,
		LaunchNsAnalyzed:     float64(analyzed.Mean().Nanoseconds()),
	}
	if spliced.Count > 0 {
		res.LaunchNsSpliced = float64(spliced.Mean().Nanoseconds())
	}
	return res
}

// measureFusion reports launches/iteration and µs/step for one solver
// formulation, tracing on: 3 warmup steps (trace record + calibrate),
// then a fixed counting window for the launch rate and a harness-timed
// run for the step cost.
func measureFusion(mk func(p *core.Planner) solvers.Solver) fusionResult {
	const window = 50
	p, s := solverPlanner(true, mk)
	for i := 0; i < 3; i++ {
		s.Step()
	}
	p.Drain()
	before := p.Runtime().Stats().Launched
	for i := 0; i < window; i++ {
		s.Step()
	}
	p.Drain()
	launches := float64(p.Runtime().Stats().Launched-before) / window

	bres := testing.Benchmark(func(b *testing.B) {
		p, s := solverPlanner(true, mk)
		for i := 0; i < 3; i++ {
			s.Step()
		}
		p.Drain()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
		p.Drain()
	})
	return fusionResult{
		LaunchesPerIter: launches,
		UsPerStep:       float64(bres.NsPerOp()) / 1e3,
	}
}

func measureSolverFusion() map[string]fusionResult {
	return map[string]fusionResult{
		"cg_fused":         measureFusion(func(p *core.Planner) solvers.Solver { return solvers.NewCG(p) }),
		"cg_unfused":       measureFusion(func(p *core.Planner) solvers.Solver { return solvers.NewCGUnfused(p) }),
		"pipecg":           measureFusion(func(p *core.Planner) solvers.Solver { return solvers.NewPipeCG(p) }),
		"bicgstab_fused":   measureFusion(func(p *core.Planner) solvers.Solver { return solvers.NewBiCGStab(p) }),
		"bicgstab_unfused": measureFusion(func(p *core.Planner) solvers.Solver { return solvers.NewBiCGStabUnfused(p) }),
	}
}

func measureSpMV() map[string]spmvResult {
	csr := sparse.Laplacian2D(64, 64)
	n := csr.Domain().Size()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) + 0.5
	}
	out := make(map[string]spmvResult, len(sparse.Formats)+1)
	bench := func(name string, nnz int64, mul func()) {
		bres := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(nnz * 16)
			for i := 0; i < b.N; i++ {
				mul()
			}
		})
		ns := float64(bres.NsPerOp())
		out[name] = spmvResult{
			NsPerOp: ns,
			MBPerS:  float64(nnz*16) / ns * 1e9 / 1e6,
		}
	}
	for _, f := range sparse.Formats {
		mat := sparse.Convert(csr, f)
		bench(f, mat.NNZ(), func() { mat.MultiplyAdd(y, x) })
	}
	op := sparse.NewStencilOperator(sparse.Stencil2D5, index.NewGrid(64, 64))
	bench("MatrixFree", op.NNZ(), func() { op.MultiplyAdd(y, x) })
	return out
}

func main() {
	out := flag.String("o", "BENCH_pr5.json", "output file ('-' for stdout)")
	flag.Parse()

	rep := report{
		RuntimeLaunch: map[string]launchResult{
			"replay_off": measureLaunch(false),
			"replay_on":  measureLaunch(true),
		},
		SpMVFormats:  measureSpMV(),
		SolverFusion: measureSolverFusion(),
	}
	if on, off := rep.RuntimeLaunch["replay_on"], rep.RuntimeLaunch["replay_off"]; on.NsPerOp >= off.NsPerOp {
		fmt.Fprintf(os.Stderr, "benchlaunch: WARNING: replay_on (%.0f ns/op) not faster than replay_off (%.0f ns/op)\n",
			on.NsPerOp, off.NsPerOp)
	}
	if f, u := rep.SolverFusion["cg_fused"], rep.SolverFusion["cg_unfused"]; f.LaunchesPerIter > 0.7*u.LaunchesPerIter {
		fmt.Fprintf(os.Stderr, "benchlaunch: WARNING: fused CG launches/iter (%.1f) not >=30%% below unfused (%.1f)\n",
			f.LaunchesPerIter, u.LaunchesPerIter)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchlaunch:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchlaunch:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
