// Fig10 regenerates the paper's Figure 10: per-iteration CG execution
// time under a stochastic background load, with a static tile mapping and
// with the thermodynamic dynamic load balancer of Section 6.3, plus the
// total-time reduction (the paper reports 66%).
//
//	fig10                # paper configuration (2^16 grid, 32 nodes, 500 iters)
//	fig10 -iters 100     # shorter trace
package main

import (
	"flag"
	"fmt"

	"kdrsolvers/internal/figures"
)

func main() {
	cfg := figures.DefaultFig10()
	flag.IntVar(&cfg.GridExp, "grid", cfg.GridExp, "grid is 2^grid x 2^grid")
	flag.IntVar(&cfg.Nodes, "nodes", cfg.Nodes, "simulated CPU node count")
	flag.IntVar(&cfg.Pieces, "pieces", cfg.Pieces, "domain pieces (tiles are pieces x pieces)")
	flag.IntVar(&cfg.Iters, "iters", cfg.Iters, "CG iterations to trace")
	flag.Float64Var(&cfg.Beta, "beta", cfg.Beta, "adaptation rate (1/s)")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed for load and balancer")
	flag.Parse()

	r := figures.Fig10(cfg)
	fmt.Println("iteration,static_s,dynamic_s")
	for i := range r.StaticIterTimes {
		fmt.Printf("%d,%.6g,%.6g\n", i, r.StaticIterTimes[i], r.DynamicIterTimes[i])
	}
	fmt.Printf("\ntotal: static %.4g s, dynamic %.4g s\n", r.StaticTotal, r.DynamicTotal)
	fmt.Printf("reduction from dynamic load balancing: %.1f%%  (paper reports 66%%)\n",
		100*r.Reduction)
	fmt.Printf("tile migrations: %d\n", r.Moves)
}
