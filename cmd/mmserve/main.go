// Mmserve is the solver-as-a-service front end: a long-running HTTP
// server multiplexing many solve jobs over one shared task runtime.
// Each job (the same specification cmd/mmsolve takes as flags, as a
// JSON body) runs in its own runtime session — scoped failure state,
// scoped fault injection, scoped phase labels — while sharing the
// scheduler, the loaded matrices, and the per-operator recycle caches
// with every other tenant. Jobs that name the same matrix with the same
// plain-solve parameters are coalesced into one batched multi-RHS
// solve.
//
//	mmserve -addr :8080 -max-active 4 -queue-depth 64
//
//	curl -d '{"matrix":"lap2d:64x64","solver":"cg"}' localhost:8080/solve?wait=1
//	curl localhost:8080/jobs/job-1
//	curl localhost:8080/metrics
//
// Admission is a bounded FIFO queue: submissions past -queue-depth are
// rejected with 503 + Retry-After rather than growing memory without
// bound. On SIGTERM or SIGINT the server drains gracefully — in-flight
// solves finish, queued jobs complete immediately with a retryable
// rejection, new submissions get 503 — then exits 0.
//
// With -wal-dir the server is crash-durable: every accepted job, every
// verified resilient checkpoint, and every terminal state is journaled
// to a write-ahead log. On startup the journal is replayed — finished
// jobs keep their results, unfinished jobs re-enter the queue, jobs
// with a persisted checkpoint resume from it — and a drain persists
// queued jobs for the next start instead of rejecting them.
//
//	mmserve -addr :8080 -wal-dir /var/lib/mmserve/wal -fsync-every 1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kdrsolvers/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxActive := flag.Int("max-active", 4, "concurrently executing solve sessions")
	queueDepth := flag.Int("queue-depth", 64, "bounded admission queue length")
	coalesceMax := flag.Int("coalesce-max", 8, "max same-operator jobs fused into one multi-RHS solve (1 disables)")
	tracing := flag.Bool("trace", true, "memoize dependence analysis of repeated solver iterations")
	walDir := flag.String("wal-dir", "", "write-ahead-log directory for crash durability (empty disables)")
	fsyncEvery := flag.Int("fsync-every", 16, "fsync the journal every N records (1 = every record)")
	retainDone := flag.Int("retain-done", 256, "completed jobs kept for GET /jobs/{id} before LRU eviction")
	retainTTL := flag.Duration("retain-ttl", 0, "additionally expire completed jobs by age (0 disables)")
	flag.Parse()
	if *maxActive < 1 || *queueDepth < 1 || *coalesceMax < 1 {
		fmt.Fprintln(os.Stderr, "mmserve: -max-active, -queue-depth, and -coalesce-max must be at least 1")
		os.Exit(2)
	}

	logf := func(format string, args ...any) {
		fmt.Printf("mmserve: "+format+"\n", args...)
	}
	srv, err := serve.NewServer(serve.Config{
		MaxActive:   *maxActive,
		QueueDepth:  *queueDepth,
		CoalesceMax: *coalesceMax,
		Tracing:     *tracing,
		WALDir:      *walDir,
		FsyncEvery:  *fsyncEvery,
		RetainDone:  *retainDone,
		RetainTTL:   *retainTTL,
		Log:         logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmserve:", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: *addr, Handler: serve.Handler(srv)}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	drained := make(chan struct{})
	go func() {
		s := <-sig
		if *walDir != "" {
			logf("caught %v, draining (in-flight jobs finish, queued jobs persist to the journal)", s)
		} else {
			logf("caught %v, draining (in-flight jobs finish, queued jobs rejected retryable)", s)
		}
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		close(drained)
	}()

	logf("listening on %s (max-active %d, queue-depth %d, coalesce-max %d)",
		*addr, *maxActive, *queueDepth, *coalesceMax)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mmserve:", err)
		os.Exit(1)
	}
	<-drained
	m := srv.Metrics()
	logf("drained: %d job(s) completed (%d failed), %d coalesced into %d batch(es)",
		m.Completed, m.Failed, m.CoalescedJobs, m.Batches)
}
