// Scaling runs the artifact description's node-count sweep: the same
// stencil problem benchmarked "for each node count, scaling from 1 to 256
// in powers of two", reporting per-iteration time for every library and
// the parallel efficiency of the KDR implementation. -weak switches to
// weak scaling with -n unknowns per GPU.
//
//	scaling -dim 2 -solver cg -n 268435456 -min 1 -max 256
//	scaling -weak -n 4194304
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"kdrsolvers/internal/figures"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sparse"
)

func main() {
	dim := flag.Int("dim", 2, "stencil: 1=3pt-1D 2=5pt-2D 3=7pt-3D 4=27pt-3D")
	solver := flag.String("solver", "cg", "solver: cg, bicgstab, or gmres")
	n := flag.Int64("n", 1<<28, "unknowns")
	minNodes := flag.Int("min", 1, "smallest node count")
	maxNodes := flag.Int("max", 256, "largest node count")
	warm := flag.Int("warmup", 3, "warmup iterations")
	it := flag.Int("it", 10, "timed iterations")
	weak := flag.Bool("weak", false, "weak scaling: treat -n as unknowns per GPU")
	profile := flag.Bool("profile", false, "print a per-task-name breakdown of the simulated schedule at -max nodes")
	traceOut := flag.String("trace-out", "", "write the simulated schedule at -max nodes as a Chrome trace (implies -profile)")
	flag.Parse()
	if *traceOut != "" {
		*profile = true
	}

	kinds := map[int]sparse.StencilKind{
		1: sparse.Stencil1D3, 2: sparse.Stencil2D5,
		3: sparse.Stencil3D7, 4: sparse.Stencil3D27,
	}
	kind, ok := kinds[*dim]
	if !ok {
		fmt.Fprintln(os.Stderr, "scaling: -dim must be 1..4")
		os.Exit(2)
	}

	var rows []figures.ScalingRow
	if *weak {
		rows = figures.WeakScaling(kind, *n, *solver, *minNodes, *maxNodes, *warm, *it)
	} else {
		rows = figures.StrongScaling(kind, *n, *solver, *minNodes, *maxNodes, *warm, *it)
	}
	fmt.Println("nodes,gpus,kdr_s_per_iter,petsc_s_per_iter,trilinos_s_per_iter,kdr_efficiency")
	for _, r := range rows {
		petsc := "NaN"
		if r.PETSc != 0 && !math.IsNaN(r.PETSc) {
			petsc = fmt.Sprintf("%.6g", r.PETSc)
		}
		fmt.Printf("%d,%d,%.6g,%s,%.6g,%.3f\n",
			r.Nodes, r.GPUs, r.KDR, petsc, r.Trilinos, r.KDREfficiency)
	}

	if *profile {
		pn := *n
		if *weak {
			pn *= int64(machine.Lassen(*maxNodes).NumProcs())
		}
		fmt.Printf("\nprofile of the simulated schedule: %d nodes, %s, n=%d, %d iterations\n",
			*maxNodes, *solver, pn, *it)
		sc := figures.CaptureSchedule(machine.Lassen(*maxNodes), kind, pn, *solver, *it,
			figures.KDROptions{Tracing: true})
		fmt.Print(sc.Report)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err == nil {
				err = sc.WriteTrace(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "scaling:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote Chrome trace: %s (%d spans)\n", *traceOut, len(sc.Result.Spans))
		}
	}
}
