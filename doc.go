// Package kdrsolvers is a from-scratch Go reproduction of "KDRSolvers:
// Scalable, Flexible, Task-Oriented Krylov Solvers" (Zhang, Yadav, Aiken,
// Kjolstad, Treichler; SC Workshops '25).
//
// The library implements the paper's two contributions — the KDR
// (kernel/domain/range) representation of sparse matrix storage formats
// with universal dependent-partitioning co-partitioning operators, and
// multi-operator linear systems — together with every substrate they need:
// a Legion-style task runtime with privilege-based interference analysis,
// a discrete-event cluster simulator standing in for the Lassen
// supercomputer, the full Figure 3 format zoo, six Krylov solvers, and
// PETSc/Trilinos-style baseline stacks.
//
// Start with README.md for a tour, DESIGN.md for the system inventory and
// the substitutions made for hardware this reproduction cannot access, and
// EXPERIMENTS.md for paper-versus-measured results. The packages live
// under internal/; runnable entry points are under cmd/ and examples/.
package kdrsolvers
