// Package assemble builds sparse matrices and vectors from concurrent
// coordinate contributions — the "assembling matrix and vector objects to
// define a linear system" challenge the exascale report (and the paper's
// P4) calls out. Finite-element applications generate entries
// element-by-element across threads or ranks; the Builder accepts those
// contributions concurrently, sums duplicates, and produces a CSR matrix
// ready for the planner.
package assemble

import (
	"sync"

	"kdrsolvers/internal/sparse"
)

// Builder accumulates matrix coordinates from many goroutines. Add and
// AddBatch are safe for concurrent use; Finish must be called once, after
// all contributors are done.
type Builder struct {
	rows, cols int64
	shards     []shard
}

type shard struct {
	mu     sync.Mutex
	coords []sparse.Coord
}

// NewBuilder returns a builder for a rows × cols matrix with the given
// contention sharding (one shard per expected concurrent contributor is
// a good default; minimum 1).
func NewBuilder(rows, cols int64, shards int) *Builder {
	if shards < 1 {
		shards = 1
	}
	return &Builder{rows: rows, cols: cols, shards: make([]shard, shards)}
}

// shardFor spreads contributions by row so concurrent writers rarely
// collide.
func (b *Builder) shardFor(row int64) *shard {
	return &b.shards[int(row)%len(b.shards)]
}

// Add contributes one entry; duplicates at the same position are summed
// at Finish, matching the add-insert semantics of FEM assembly.
func (b *Builder) Add(row, col int64, v float64) {
	if row < 0 || row >= b.rows || col < 0 || col >= b.cols {
		panic("assemble: coordinate out of bounds")
	}
	s := b.shardFor(row)
	s.mu.Lock()
	s.coords = append(s.coords, sparse.Coord{Row: row, Col: col, Val: v})
	s.mu.Unlock()
}

// AddBatch contributes a batch of entries (e.g. one element matrix) with
// a single lock acquisition.
func (b *Builder) AddBatch(coords []sparse.Coord) {
	if len(coords) == 0 {
		return
	}
	for _, c := range coords {
		if c.Row < 0 || c.Row >= b.rows || c.Col < 0 || c.Col >= b.cols {
			panic("assemble: coordinate out of bounds")
		}
	}
	s := b.shardFor(coords[0].Row)
	s.mu.Lock()
	s.coords = append(s.coords, coords...)
	s.mu.Unlock()
}

// NNZContributions returns the number of raw contributions received so
// far (before duplicate summing).
func (b *Builder) NNZContributions() int {
	n := 0
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		n += len(s.coords)
		s.mu.Unlock()
	}
	return n
}

// Finish merges all shards into a CSR matrix, summing duplicate
// positions. The builder must not be used afterwards.
func (b *Builder) Finish() *sparse.CSR {
	var all []sparse.Coord
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		all = append(all, s.coords...)
		s.coords = nil
		s.mu.Unlock()
	}
	return sparse.CSRFromCoords(b.rows, b.cols, all)
}

// VectorBuilder accumulates right-hand-side contributions (b[i] += v)
// concurrently, the vector half of FEM assembly.
type VectorBuilder struct {
	mu   sync.Mutex
	data []float64
}

// NewVectorBuilder returns a zeroed n-entry vector builder.
func NewVectorBuilder(n int64) *VectorBuilder {
	return &VectorBuilder{data: make([]float64, n)}
}

// Add contributes v to entry i; contributions sum.
func (vb *VectorBuilder) Add(i int64, v float64) {
	vb.mu.Lock()
	vb.data[i] += v
	vb.mu.Unlock()
}

// Finish returns the assembled vector; the builder must not be used
// afterwards.
func (vb *VectorBuilder) Finish() []float64 {
	vb.mu.Lock()
	defer vb.mu.Unlock()
	d := vb.data
	vb.data = nil
	return d
}
