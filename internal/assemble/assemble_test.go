package assemble

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"kdrsolvers/internal/sparse"
)

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(3, 3, 2)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2.5)
	b.Add(2, 1, -1)
	if b.NNZContributions() != 3 {
		t.Fatalf("contributions = %d", b.NNZContributions())
	}
	a := b.Finish()
	if a.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2 after summing", a.NNZ())
	}
	d := sparse.ToDense(a)
	if d[0] != 3.5 || d[2*3+1] != -1 {
		t.Fatalf("dense = %v", d)
	}
}

func TestBuilderConcurrent(t *testing.T) {
	// Many goroutines assembling overlapping contributions: totals must
	// be exact regardless of interleaving.
	const n = 64
	const workers = 16
	const perWorker = 500
	b := NewBuilder(n, n, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		seed := int64(w)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				b.Add(r.Int63n(n), r.Int63n(n), 1)
			}
		}()
	}
	wg.Wait()
	a := b.Finish()
	// The sum of all entries equals the number of contributions.
	var total float64
	for _, v := range sparse.ToDense(a) {
		total += v
	}
	if total != workers*perWorker {
		t.Fatalf("total mass = %g, want %d", total, workers*perWorker)
	}
}

func TestAddBatch(t *testing.T) {
	b := NewBuilder(4, 4, 1)
	b.AddBatch(nil) // no-op
	b.AddBatch([]sparse.Coord{
		{Row: 1, Col: 1, Val: 2}, {Row: 1, Col: 2, Val: -1}, {Row: 2, Col: 1, Val: -1},
	})
	a := b.Finish()
	if a.NNZ() != 3 {
		t.Fatalf("nnz = %d", a.NNZ())
	}
}

func TestBuilderBounds(t *testing.T) {
	b := NewBuilder(2, 2, 1)
	for _, fn := range []func(){
		func() { b.Add(2, 0, 1) },
		func() { b.Add(0, -1, 1) },
		func() { b.AddBatch([]sparse.Coord{{Row: 0, Col: 5, Val: 1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestVectorBuilder(t *testing.T) {
	vb := NewVectorBuilder(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 8; i++ {
				vb.Add(i, 0.5)
			}
		}()
	}
	wg.Wait()
	v := vb.Finish()
	for i, x := range v {
		if math.Abs(x-4) > 1e-15 {
			t.Fatalf("v[%d] = %g, want 4", i, x)
		}
	}
}

func TestFEMAssemblyMatchesStencil(t *testing.T) {
	// Element-by-element P1 finite-element assembly on a right-triangle
	// mesh of the unit square reproduces the 5-point stencil exactly —
	// the classical identity, assembled concurrently per element row.
	const nx, ny = 6, 6 // interior nodes
	n := int64(nx * ny)
	b := NewBuilder(n, n, 4)
	idx := func(i, j int) int64 { return int64(i*ny + j) }
	// Assemble per interior node via its stencil contributions (the
	// summed element matrices of the 4 incident triangles around each
	// edge give the familiar -1 couplings and +4 diagonal).
	var wg sync.WaitGroup
	for i := 0; i < nx; i++ {
		wg.Add(1)
		i := i
		go func() {
			defer wg.Done()
			for j := 0; j < ny; j++ {
				row := idx(i, j)
				var batch []sparse.Coord
				batch = append(batch, sparse.Coord{Row: row, Col: row, Val: 4})
				if i > 0 {
					batch = append(batch, sparse.Coord{Row: row, Col: idx(i-1, j), Val: -1})
				}
				if i < nx-1 {
					batch = append(batch, sparse.Coord{Row: row, Col: idx(i+1, j), Val: -1})
				}
				if j > 0 {
					batch = append(batch, sparse.Coord{Row: row, Col: idx(i, j-1), Val: -1})
				}
				if j < ny-1 {
					batch = append(batch, sparse.Coord{Row: row, Col: idx(i, j+1), Val: -1})
				}
				b.AddBatch(batch)
			}
		}()
	}
	wg.Wait()
	got := b.Finish()
	want := sparse.Laplacian2D(nx, ny)
	dg, dw := sparse.ToDense(got), sparse.ToDense(want)
	for i := range dg {
		if dg[i] != dw[i] {
			t.Fatalf("assembled matrix differs from stencil at %d: %g vs %g", i, dg[i], dw[i])
		}
	}
}
