package serve

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"kdrsolvers/internal/jobspec"
	"kdrsolvers/internal/obs"
	"kdrsolvers/internal/wal"
)

// Journal record types. The journal is the server's durable job
// history: every accepted job, every verified checkpoint, every
// terminal state. Replay folds the record stream into "who is done,
// who still owes work, and where can the work pick up" — so a restart
// is a replay, not data loss.
const (
	recAccept     = "accept"     // job admitted: id + spec + submission time
	recCheckpoint = "checkpoint" // verified resilient checkpoint: iter + residual + solution
	recResume     = "resume"     // informational: a replayed job was re-enqueued from iter N
	recDone       = "done"       // terminal state: converged, failed, or rejected — replay skips the job
)

// journalRecord is the JSON envelope of every WAL record. Go's JSON
// encoder formats float64 with the shortest round-tripping
// representation, so checkpointed solution vectors survive the disk
// round trip bit-for-bit — the property the resume-conformance rows
// assert.
type journalRecord struct {
	T         string        `json:"t"`
	ID        string        `json:"id"`
	Spec      *jobspec.Spec `json:"spec,omitempty"`
	Submitted time.Time     `json:"submitted,omitempty"`
	Iter      int           `json:"iter,omitempty"`
	Residual  float64       `json:"residual,omitempty"`
	X         []float64     `json:"x,omitempty"`
	Basis     string        `json:"basis,omitempty"`
	Result    *JobResult    `json:"result,omitempty"`
}

// ResumePoint is where a replayed job picks up: the last persisted
// verified checkpoint.
type ResumePoint struct {
	// Iter is the absolute iteration the checkpoint was taken at.
	Iter int
	// Residual is the host-verified true residual at the checkpoint.
	Residual float64
	// X is the full checkpointed solution vector in index order.
	X []float64
	// Basis is the operator fingerprint the job's recycle space was
	// keyed by (gcrodr provenance; the in-memory deflation basis itself
	// dies with the process and is rebuilt).
	Basis string
}

// ReplayedJob is one journaled job a restart owes work on: accepted,
// never journaled done.
type ReplayedJob struct {
	ID        string
	Spec      jobspec.Spec
	Submitted time.Time
	// Resume is the job's last persisted checkpoint, nil when it never
	// checkpointed (replay re-runs it from iteration 0).
	Resume *ResumePoint
}

// JournalReplay is the folded state of one journal: what a restarting
// server reconstructs.
type JournalReplay struct {
	// Pending holds accepted-but-unfinished jobs in acceptance order —
	// the order they re-enter the queue, preserving FIFO fairness across
	// the crash.
	Pending []*ReplayedJob
	// Done maps finished job ids to their journaled results, so job
	// status survives a restart.
	Done map[string]*JobResult
	// DoneOrder lists Done's keys in completion-record order (retention
	// eviction replays in the same order it would have happened live).
	DoneOrder []string
	// MaxID is the highest numeric suffix among journaled "job-N" ids;
	// the server's id counter restarts past it so new submissions never
	// collide with replayed jobs.
	MaxID int64
	// Skipped counts records that passed the WAL checksum but failed to
	// decode — writer version skew, not torn writes (those the WAL
	// truncates). They are skipped, not fatal: an old journal must not
	// brick a new server.
	Skipped int64
}

// Journal is the job journal: typed records over one WAL. All methods
// are safe for concurrent use (the WAL serializes appends; the
// counters are atomic).
type Journal struct {
	log *wal.Log

	checkpoints obs.Counter // checkpoint records persisted
	resumed     obs.Counter // jobs re-enqueued from a checkpoint at replay
}

// OpenJournal opens (creating if needed) the journal in dir and replays
// it. fsyncEvery batches the WAL's fsyncs (1 = sync every record).
func OpenJournal(dir string, fsyncEvery int) (*Journal, *JournalReplay, error) {
	l, err := wal.Open(dir, wal.Options{FsyncEvery: fsyncEvery})
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{log: l}
	rep, err := j.Replay()
	if err != nil {
		l.Close()
		return nil, nil, err
	}
	return j, rep, nil
}

// Replay folds the journal's current record stream into a
// JournalReplay. It is a pure function of the log contents: replaying
// twice — or closing and reopening between replays — yields identical
// state, and a job appears in Pending at most once no matter how many
// times its records were written. Resume records never change the fold
// (they are provenance, not state), which is why re-journaling a
// resumed job cannot make it double-run.
func (j *Journal) Replay() (*JournalReplay, error) {
	rep := &JournalReplay{Done: make(map[string]*JobResult)}
	pending := make(map[string]*ReplayedJob)
	var order []string
	err := j.log.Replay(func(payload []byte) error {
		var r journalRecord
		if err := json.Unmarshal(payload, &r); err != nil || r.ID == "" {
			rep.Skipped++
			return nil
		}
		if n, ok := numericSuffix(r.ID); ok && n > rep.MaxID {
			rep.MaxID = n
		}
		switch r.T {
		case recAccept:
			if r.Spec == nil {
				rep.Skipped++
				return nil
			}
			if _, dup := pending[r.ID]; dup {
				return nil // idempotent: a re-journaled accept is one job
			}
			if _, done := rep.Done[r.ID]; done {
				return nil
			}
			pending[r.ID] = &ReplayedJob{ID: r.ID, Spec: *r.Spec, Submitted: r.Submitted}
			order = append(order, r.ID)
		case recCheckpoint:
			if job := pending[r.ID]; job != nil {
				// Latest checkpoint wins: records are appended in order, so
				// the last one in the log is the furthest verified state.
				job.Resume = &ResumePoint{Iter: r.Iter, Residual: r.Residual, X: r.X, Basis: r.Basis}
			}
		case recDone:
			if _, seen := rep.Done[r.ID]; !seen {
				rep.DoneOrder = append(rep.DoneOrder, r.ID)
			}
			rep.Done[r.ID] = r.Result
			delete(pending, r.ID)
		case recResume:
			// Provenance only; the fold ignores it.
		default:
			rep.Skipped++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		if job := pending[id]; job != nil {
			rep.Pending = append(rep.Pending, job)
		}
	}
	return rep, nil
}

// numericSuffix parses the N of a "job-N" id.
func numericSuffix(id string) (int64, bool) {
	s, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(s, 10, 64)
	return n, err == nil
}

func (j *Journal) append(r *journalRecord) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("serve: journal encode: %w", err)
	}
	return j.log.Append(payload)
}

// Accept journals a job admission. Once the covering fsync runs, a
// crash cannot lose the job.
func (j *Journal) Accept(id string, spec jobspec.Spec, submitted time.Time) error {
	return j.append(&journalRecord{T: recAccept, ID: id, Spec: &spec, Submitted: submitted})
}

// Checkpoint journals one verified checkpoint: iteration, true
// residual, the full solution vector, and the recycle-basis
// fingerprint.
func (j *Journal) Checkpoint(id string, iter int, residual float64, x []float64, basis string) error {
	err := j.append(&journalRecord{T: recCheckpoint, ID: id, Iter: iter, Residual: residual, X: x, Basis: basis})
	if err == nil {
		j.checkpoints.Inc()
	}
	return err
}

// Resume journals that a replayed job was re-enqueued from iteration
// iter — provenance for post-mortems and the crash e2e's "resumed from
// a checkpoint, not iteration 0" assertion. Replay ignores it.
func (j *Journal) Resume(id string, iter int) error {
	err := j.append(&journalRecord{T: recResume, ID: id, Iter: iter})
	if err == nil {
		j.resumed.Inc()
	}
	return err
}

// Done journals a terminal state. Replay skips done jobs, making
// restart idempotent; a done record lost to a crash (batched fsync)
// merely re-runs a deterministic solve.
func (j *Journal) Done(id string, res *JobResult) error {
	return j.append(&journalRecord{T: recDone, ID: id, Result: res})
}

// Sync forces batched records to disk.
func (j *Journal) Sync() error { return j.log.Sync() }

// Close syncs and closes the underlying WAL.
func (j *Journal) Close() error { return j.log.Close() }

// WALMetricsSnapshot is the journal's slice of GET /metrics: the
// underlying WAL's counters plus the journal-level ones.
type WALMetricsSnapshot struct {
	RecordsAppended      int64 `json:"records_appended"`
	RecordsReplayed      int64 `json:"records_replayed"`
	RecordsTruncated     int64 `json:"records_truncated"`
	TruncatedBytes       int64 `json:"truncated_bytes"`
	Fsyncs               int64 `json:"fsyncs"`
	RecoveryNS           int64 `json:"recovery_ns"`
	Segments             int   `json:"segments"`
	CheckpointsPersisted int64 `json:"checkpoints_persisted"`
	JobsResumed          int64 `json:"jobs_resumed"`
}

// Metrics snapshots the journal's counters.
func (j *Journal) Metrics() WALMetricsSnapshot {
	st := j.log.Stats()
	return WALMetricsSnapshot{
		RecordsAppended:      st.RecordsAppended,
		RecordsReplayed:      st.RecordsRecovered,
		RecordsTruncated:     st.Truncations,
		TruncatedBytes:       st.TruncatedBytes,
		Fsyncs:               st.Fsyncs,
		RecoveryNS:           st.RecoveryNS,
		Segments:             j.log.Segments(),
		CheckpointsPersisted: j.checkpoints.Load(),
		JobsResumed:          j.resumed.Load(),
	}
}
