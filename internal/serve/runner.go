// Package serve hosts many solve jobs over one shared task runtime: a
// per-job session layer (RunSolve), an admission-controlled job server
// (Server) with coalescing of same-operator jobs into batched multi-RHS
// solves, and an HTTP front end (Handler). cmd/mmserve is the binary;
// cmd/mmsolve drives RunSolve in one-shot mode.
package serve

import (
	"fmt"
	"math"
	"time"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/fault"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/jobspec"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/obs"
	"kdrsolvers/internal/precond"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
	"kdrsolvers/internal/taskrt"
)

// Options tailor one RunSolve call beyond the job spec.
type Options struct {
	// Session is the taskrt session the solve launches into. Required:
	// every planner RunSolve builds binds to it, so many RunSolve calls
	// can share one runtime without sharing failure state.
	Session *taskrt.Session
	// Cache, when non-nil and the spec's solver is gcrodr, warm-starts
	// the solve from (and publishes the harvested space back to) the
	// shared cross-solve recycle cache.
	Cache *solvers.RecycleCache
	// Telemetry, when non-nil, is called after every iteration of a
	// non-resilient solve with the iteration number and recurrence
	// residual.
	Telemetry func(iter int, res float64)
	// Log, when non-nil, receives the resilient driver's progress lines.
	Log func(format string, args ...any)
	// Tracing controls trace memoization of the solve's iteration loop.
	// Per-session templates make it safe under multi-tenancy; replay
	// still demotes to analysis whenever another session's launches
	// interleave (task IDs are global), so it mostly pays off when a
	// session runs back-to-back iterations alone.
	Tracing bool
	// Recorder, when non-nil, is attached to the session before the
	// solve so every task records wall-clock spans.
	Recorder *obs.Recorder
	// Resume, when non-nil, seeds the solve from a persisted checkpoint:
	// the solution vector starts from Resume.X instead of zero, and a
	// resilient solve (CheckpointEvery > 0) continues its iteration
	// accounting at Resume.Iter — MaxIter still bounds the job's TOTAL
	// iterations across its lifetime.
	Resume *ResumePoint
	// CheckpointSink, when non-nil and the spec selects the resilient
	// driver, receives every verified checkpoint the moment it is taken:
	// the absolute iteration, the host-verified true residual, the full
	// solution vector in index order, and the operator fingerprint the
	// job's recycle space is keyed by. The slice is only valid during
	// the call — persist synchronously.
	CheckpointSink func(iter int, residual float64, x []float64, basis string)
}

// JobResult is the outcome of one solve job, shaped for the server's
// JSON responses and the CLI's report alike.
type JobResult struct {
	Solver       string  `json:"solver"`
	N            int     `json:"n"`
	NNZ          int64   `json:"nnz"`
	Iterations   int     `json:"iterations"`
	Residual     float64 `json:"residual"`
	TrueResidual float64 `json:"true_residual"`
	Converged    bool    `json:"converged"`
	Breakdown    string  `json:"breakdown,omitempty"`

	// Resilient-driver accounting (zero for plain solves).
	Restarts          int     `json:"restarts,omitempty"`
	Checkpoints       int     `json:"checkpoints,omitempty"`
	RecoveredFailures int64   `json:"recovered_failures,omitempty"`
	Replacements      int     `json:"replacements,omitempty"`
	SDCAlarms         int64   `json:"sdc_alarms,omitempty"`
	PieceRestores     int     `json:"piece_restores,omitempty"`
	MaxDrift          float64 `json:"max_drift,omitempty"`

	// Err is the session's joined failure state after the solve ("" when
	// clean or recovered). Retryable marks a rejection the client should
	// simply resubmit (a drain took the job before it started), not a
	// solve failure.
	Err       string `json:"error,omitempty"`
	Retryable bool   `json:"retryable,omitempty"`

	// Injected counts faults the job's injector fired; AutoFormats
	// lists the per-band formats adaptive tuning chose (format "auto"
	// only).
	Injected    int64    `json:"injected,omitempty"`
	AutoFormats []string `json:"auto_formats,omitempty"`

	// Coalesced is the number of jobs fused into the batched multi-RHS
	// solve this result came from (0 or 1 for a solo solve).
	Coalesced int `json:"coalesced,omitempty"`

	// ResumedFrom is the absolute checkpoint iteration a replayed job
	// restarted from (0 for a job that ran from scratch).
	ResumedFrom int `json:"resumed_from_iter,omitempty"`

	Elapsed time.Duration `json:"elapsed_ns"`
	// Session is the per-session launch accounting, the evidence
	// multi-tenant tests use to prove no cross-session serialization.
	Session taskrt.SessionStats `json:"session_stats"`

	// X is the computed solution, for in-process callers (the CLI's
	// exact-solution check); never serialized.
	X []float64 `json:"-"`
}

// RunSolve executes one job against an already loaded matrix, inside
// opt.Session. The planner, fault injector, retry policy, and watchdog
// are all session-scoped, so concurrent RunSolve calls on one runtime
// stay independent: a fault plan in one job never fires in another, and
// one job's permanent failure never pollutes another's error state.
func RunSolve(a *sparse.CSR, spec jobspec.Spec, opt Options) JobResult {
	sess := opt.Session
	logf := opt.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rows, _ := sparse.Dims(a)
	n := int(rows)
	out := JobResult{Solver: spec.Solver, N: n, NNZ: a.NNZ()}

	b := spec.BuildRHS(a, n)
	x := make([]float64, n)
	if opt.Resume != nil {
		if len(opt.Resume.X) != n {
			out.Err = fmt.Sprintf("serve: resume checkpoint has %d entries, system has %d", len(opt.Resume.X), n)
			return out
		}
		copy(x, opt.Resume.X)
		out.ResumedFrom = opt.Resume.Iter
	}
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(1), Session: sess})
	si := p.AddSolVector(x, index.EqualPartition(index.NewSpace("D", rows), spec.Pieces))
	ri := p.AddRHSVector(b, index.EqualPartition(index.NewSpace("R", rows), spec.Pieces))
	if canon, _ := sparse.CanonicalFormat(spec.Format); canon == "Auto" {
		tuned := p.AddOperatorAuto(a, si, ri)
		out.AutoFormats = tuned.SelectedFormats()
	} else {
		m, err := sparse.ConvertNamed(a, spec.Format)
		if err != nil {
			out.Err = err.Error()
			return out
		}
		p.AddOperator(m, si, ri)
	}
	if spec.Solver == "pcg" || spec.Solver == "pcg-unfused" {
		p.AddPreconditioner(precond.Jacobi(a), si, ri)
	}
	p.Finalize()
	p.SetTracing(opt.Tracing)

	var injector *fault.Injector
	if spec.Faults != "" {
		plan, err := fault.ParsePlan(spec.Faults)
		if err != nil {
			out.Err = err.Error()
			return out
		}
		if plan.Active() {
			injector = fault.NewInjector(plan)
			sess.SetFaultInjector(injector)
		}
	}
	if spec.Retries > 1 {
		sess.SetRetryPolicy(taskrt.RetryPolicy{MaxAttempts: spec.Retries, Backoff: spec.RetryBackoff})
	}
	if spec.Watchdog > 0 {
		sess.SetWatchdog(spec.Watchdog)
	}
	if opt.Recorder != nil {
		sess.SetRecorder(opt.Recorder)
	}

	newSolver := func() solvers.Solver {
		if spec.Solver == "gcrodr" && opt.Cache != nil {
			return solvers.NewGCRODR(p, 10, 4, opt.Cache)
		}
		return solvers.New(spec.Solver, p)
	}

	start := time.Now()
	var res solvers.Result
	if spec.CheckpointEvery > 0 {
		mr := spec.MaxRestarts
		if mr <= 0 {
			mr = -1 // solvers.ResilientConfig: negative disables restarts
		}
		rcfg := solvers.ResilientConfig{
			Tol: spec.Tol, MaxIter: spec.MaxIter,
			CheckpointEvery: spec.CheckpointEvery, MaxRestarts: mr,
			DetectSDC:    spec.DetectSDC,
			ReplaceEvery: spec.ReplaceEvery, DriftTol: spec.DriftTol,
			Log: logf,
		}
		if opt.Resume != nil {
			rcfg.StartIteration = opt.Resume.Iter
		}
		if sink := opt.CheckpointSink; sink != nil {
			basis := p.OperatorFingerprint()
			rcfg.CheckpointSink = func(c solvers.Checkpoint) {
				sink(c.Iteration, c.TrueResidual, flattenCheckpoint(c.Sol), basis)
			}
		}
		rres := solvers.SolveResilient(p, newSolver, rcfg)
		res = rres.Result
		out.Restarts = rres.Restarts
		out.Checkpoints = rres.Checkpoints
		out.RecoveredFailures = rres.RecoveredFailures
		out.Replacements = rres.Replacements
		out.SDCAlarms = rres.SDCAlarms
		out.PieceRestores = rres.PieceRestores
		out.MaxDrift = rres.MaxDrift
	} else {
		if spec.DetectSDC {
			p.EnableSDCDetection(0) // observe-only without the resilient driver
		}
		s := newSolver()
		res = stepLoop(s, spec.Tol, spec.MaxIter, opt.Telemetry)
		if g, ok := s.(*solvers.GCRODR); ok && opt.Cache != nil && res.Converged {
			p.Drain()
			g.SaveRecycleSpace()
		}
	}
	p.Drain()
	out.Elapsed = time.Since(start)

	// The honest yardstick: ‖b − A·x‖ recomputed host-side from the raw
	// matrix and arrays, sharing no state with the solve.
	out.TrueResidual = HostResidual(a, x, b)
	out.Iterations = res.Iterations
	out.Residual = res.Residual
	out.Converged = res.Converged
	if res.Breakdown != nil {
		out.Breakdown = res.Breakdown.Error()
	}
	if spec.DetectSDC && spec.CheckpointEvery <= 0 {
		if mon := p.SDCMonitor(); mon != nil {
			out.SDCAlarms = mon.Count()
		}
	}
	if injector != nil {
		out.Injected = injector.Injected()
	}
	// A converged resilient solve has, by construction, verified the
	// true residual after recovery, so recovered task failures do not
	// fail the job. A plain solve has no recovery path: any task failure
	// is fatal.
	if err := sess.Err(); err != nil && !(spec.CheckpointEvery > 0 && res.Converged) {
		out.Err = err.Error()
	}
	out.Session = sess.Stats()
	out.X = x
	return out
}

// stepLoop mirrors solvers.Solve — synchronize on the convergence
// measure each iteration — with an optional per-iteration telemetry
// hook.
func stepLoop(s solvers.Solver, tol float64, maxIter int, telemetry func(int, float64)) solvers.Result {
	res := math.Sqrt(s.ConvergenceMeasure().Value())
	if telemetry != nil {
		telemetry(0, res)
	}
	if res <= tol {
		return solvers.Result{Iterations: 0, Residual: res, Converged: true}
	}
	for i := 1; i <= maxIter; i++ {
		s.Step()
		res = math.Sqrt(s.ConvergenceMeasure().Value())
		if telemetry != nil {
			telemetry(i, res)
		}
		if res <= tol || math.IsNaN(res) {
			return solvers.Result{Iterations: i, Residual: res, Converged: res <= tol}
		}
		if bc, ok := s.(solvers.BreakdownChecker); ok {
			if err := bc.Breakdown(); err != nil {
				return solvers.Result{Iterations: i, Residual: res, Breakdown: err}
			}
		}
	}
	return solvers.Result{Iterations: maxIter, Residual: res, Converged: false}
}

// flattenCheckpoint concatenates a planner checkpoint's per-component
// slices into one index-ordered vector (RunSolve planners have a single
// solution component, so this is usually a copy of that one slice).
func flattenCheckpoint(sol [][]float64) []float64 {
	if len(sol) == 1 {
		return append([]float64(nil), sol[0]...)
	}
	var n int
	for _, s := range sol {
		n += len(s)
	}
	out := make([]float64, 0, n)
	for _, s := range sol {
		out = append(out, s...)
	}
	return out
}

// HostResidual is ‖b − A·x‖ computed directly from the raw arrays.
func HostResidual(a sparse.Matrix, x, b []float64) float64 {
	ax := make([]float64, len(b))
	sparse.SpMV(a, ax, x)
	var rr float64
	for i := range b {
		d := b[i] - ax[i]
		rr += d * d
	}
	return math.Sqrt(rr)
}
