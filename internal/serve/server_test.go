package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"kdrsolvers/internal/jobspec"
)

// mustServer starts a server, failing the test on a journal-open
// error (impossible without WALDir).
func mustServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return s
}

func testSpec(mut func(*jobspec.Spec)) jobspec.Spec {
	s := jobspec.Default()
	s.Matrix = "lap2d:16x16"
	s.Solver = "cg"
	s.Pieces = 4
	if mut != nil {
		mut(&s)
	}
	return s
}

func TestServerSolvesConcurrently(t *testing.T) {
	s := mustServer(t, Config{MaxActive: 4, QueueDepth: 32, CoalesceMax: 1})
	defer s.Drain()
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, err := s.Submit(testSpec(nil))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		r := j.Result()
		if !r.Converged || r.Err != "" {
			t.Fatalf("job %s: converged=%v err=%q", j.ID, r.Converged, r.Err)
		}
		if r.TrueResidual > 1.05e-8 {
			t.Fatalf("job %s: true residual %g", j.ID, r.TrueResidual)
		}
	}
	m := s.Metrics()
	if m.Completed != 8 || m.Failed != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestServerRejectsInvalidSpec(t *testing.T) {
	s := mustServer(t, Config{})
	defer s.Drain()
	_, err := s.Submit(testSpec(func(sp *jobspec.Spec) { sp.Pieces = 0; sp.MaxIter = -1 }))
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
	for _, want := range []string{"pieces must be", "maxiter must be"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if s.Metrics().RejectedInvalid != 1 {
		t.Fatal("rejection not counted")
	}
}

// Queue admission is bounded: with workers wedged on a slow matrix load
// the queue fills, and the next submission gets ErrQueueFull instead of
// unbounded growth.
func TestServerQueueBound(t *testing.T) {
	s := mustServer(t, Config{MaxActive: 1, QueueDepth: 2, CoalesceMax: 1})
	defer s.Drain()
	// A big job to occupy the single worker, then fill the queue.
	if _, err := s.Submit(testSpec(func(sp *jobspec.Spec) { sp.Matrix = "lap2d:64x64" })); err != nil {
		t.Fatal(err)
	}
	// Distinct tols so the queued pair can't be coalesced away even if
	// config changes; they just wait.
	var lastErr error
	full := 0
	for i := 0; i < 8; i++ {
		_, lastErr = s.Submit(testSpec(func(sp *jobspec.Spec) { sp.Tol = 1e-6 / float64(i+1) }))
		if lastErr != nil {
			full++
		}
	}
	if full == 0 {
		t.Fatal("queue never filled")
	}
	if lastErr != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", lastErr)
	}
	if s.Metrics().RejectedFull == 0 {
		t.Fatal("queue-full rejection not counted")
	}
}

// Coalesced same-operator jobs produce the same per-job answers a solo
// run would, and the batch actually forms.
func TestServerCoalescesSameOperatorJobs(t *testing.T) {
	solo := func() JobResult {
		s := mustServer(t, Config{MaxActive: 1, CoalesceMax: 1})
		defer s.Drain()
		j, err := s.Submit(testSpec(nil))
		if err != nil {
			t.Fatal(err)
		}
		return *j.Result()
	}()

	s := mustServer(t, Config{MaxActive: 1, QueueDepth: 32, CoalesceMax: 8})
	defer s.Drain()
	// Wedge the worker so the compatible group queues up behind it.
	blocker, err := s.Submit(testSpec(func(sp *jobspec.Spec) { sp.Matrix = "lap2d:48x48" }))
	if err != nil {
		t.Fatal(err)
	}
	var group []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(testSpec(nil))
		if err != nil {
			t.Fatal(err)
		}
		group = append(group, j)
	}
	blocker.Result()
	for _, j := range group {
		r := j.Result()
		if !r.Converged || r.Err != "" {
			t.Fatalf("coalesced job %s failed: %+v", j.ID, r)
		}
		if r.Coalesced != 4 {
			t.Fatalf("job %s ran in batch of %d, want 4", j.ID, r.Coalesced)
		}
		// Identical spec, identical RHS: the block solve must reproduce
		// the solo solution.
		if r.TrueResidual > 1.05e-8 {
			t.Fatalf("coalesced job %s: true residual %g", j.ID, r.TrueResidual)
		}
		for i, v := range r.X {
			if dv := v - solo.X[i]; dv > 1e-9 || dv < -1e-9 {
				t.Fatalf("coalesced solution diverges from solo at %d: %g vs %g", i, v, solo.X[i])
			}
		}
	}
	m := s.Metrics()
	if m.Batches != 1 || m.CoalescedJobs != 4 {
		t.Fatalf("batches=%d coalesced=%d, want 1/4", m.Batches, m.CoalescedJobs)
	}
}

// A faulted tenant and clean tenants on the SAME server: failure stays
// in its session.
func TestServerContainsFaultedTenant(t *testing.T) {
	s := mustServer(t, Config{MaxActive: 2, CoalesceMax: 1})
	defer s.Drain()
	bad, err := s.Submit(testSpec(func(sp *jobspec.Spec) { sp.Faults = "panic=0.05,seed=3" }))
	if err != nil {
		t.Fatal(err)
	}
	var clean []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(testSpec(nil))
		if err != nil {
			t.Fatal(err)
		}
		clean = append(clean, j)
	}
	if r := bad.Result(); r.Err == "" {
		t.Fatal("faulted job reported no error")
	}
	for _, j := range clean {
		if r := j.Result(); !r.Converged || r.Err != "" || r.Session.Failed != 0 {
			t.Fatalf("clean tenant polluted: %+v", r)
		}
	}
	if m := s.Metrics(); m.Failed != 1 {
		t.Fatalf("Failed = %d, want exactly the faulted job", m.Failed)
	}
}

// Same operator + gcrodr: later jobs warm-start from the shared recycle
// cache and converge in fewer iterations.
func TestServerSharesRecycleCache(t *testing.T) {
	s := mustServer(t, Config{MaxActive: 1, CoalesceMax: 1})
	defer s.Drain()
	spec := testSpec(func(sp *jobspec.Spec) {
		sp.Solver = "gcrodr"
		sp.Matrix = "lap2d:20x20"
		sp.Tol = 1e-8
	})
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	r1 := j1.Result()
	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2 := j2.Result()
	if !r1.Converged || !r2.Converged {
		t.Fatalf("gcrodr jobs failed: %v / %v", r1.Converged, r2.Converged)
	}
	if r2.Iterations > r1.Iterations {
		t.Fatalf("recycled job took %d iterations vs %d cold — shared cache not hit",
			r2.Iterations, r1.Iterations)
	}
}

// Drain: in-flight jobs finish, queued jobs come back retryable, new
// submissions are refused.
func TestServerDrain(t *testing.T) {
	s := mustServer(t, Config{MaxActive: 1, QueueDepth: 16, CoalesceMax: 1})
	inflight, err := s.Submit(testSpec(func(sp *jobspec.Spec) { sp.Matrix = "lap2d:48x48" }))
	if err != nil {
		t.Fatal(err)
	}
	for inflight.Snapshot().State != StateRunning {
		runtime.Gosched() // drain must see it in flight, not queued
	}
	queued, err := s.Submit(testSpec(func(sp *jobspec.Spec) { sp.Tol = 1e-6 }))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); s.Drain() }()
	qr := queued.Result()
	if !qr.Retryable || qr.Err == "" {
		t.Fatalf("queued job at drain = %+v, want retryable rejection", qr)
	}
	ir := inflight.Result()
	if ir.Retryable || !ir.Converged {
		t.Fatalf("in-flight job at drain = %+v, want a finished solve", ir)
	}
	wg.Wait()
	if _, err := s.Submit(testSpec(nil)); err != ErrDraining {
		t.Fatalf("post-drain Submit err = %v, want ErrDraining", err)
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	s := mustServer(t, Config{MaxActive: 2})
	defer s.Drain()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	// Submit with wait: the response carries the finished result.
	resp, err := http.Post(ts.URL+"/solve?wait=1", "application/json",
		strings.NewReader(`{"matrix":"lap2d:16x16","solver":"cg","pieces":4}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.State != StateDone || view.Result == nil || !view.Result.Converged {
		t.Fatalf("view = %+v", view)
	}

	// The job stays queryable.
	resp, err = http.Get(ts.URL + "/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s = %d", view.ID, resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown job: 404.
	resp, _ = http.Get(ts.URL + "/jobs/job-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// The CLI's invalid flag combinations are this API's 400s, with the
	// same validation messages.
	resp, err = http.Post(ts.URL+"/solve", "application/json",
		strings.NewReader(`{"matrix":"lap2d:16x16","pieces":0,"maxiter":-1,"replace_every":-5}`))
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec status = %d", resp.StatusCode)
	}
	for _, want := range []string{"pieces must be", "maxiter must be", "replace-every must not"} {
		if !strings.Contains(string(body[:n]), want) {
			t.Errorf("400 body missing %q: %s", want, body[:n])
		}
	}

	// Metrics is live JSON.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Completed < 1 || m.RejectedInvalid != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}
