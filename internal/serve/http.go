package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"kdrsolvers/internal/jobspec"
)

// Handler exposes the server over HTTP:
//
//	POST /solve       submit a job (jobspec.Spec JSON body; absent fields
//	                  take the mmsolve flag defaults). 202 + job view,
//	                  or 200 + finished job view with ?wait=1.
//	                  400 invalid spec, 503 queue full / draining
//	                  (Retry-After set — resubmit later).
//	GET  /jobs/{id}   job status; result included once done. 404 unknown.
//	GET  /metrics     cumulative counters, gauges, and runtime stats.
//	GET  /healthz     200 while accepting, 503 while draining.
//
// Submission reuses the CLI's validation verbatim: a flag combination
// mmsolve rejects with exit 2 is a body this handler rejects with 400,
// with the same message.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		spec := jobspec.Default()
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		j, err := s.Submit(spec)
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
				w.Header().Set("Retry-After", "1")
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
			case errors.Is(err, ErrJournal):
				// The job was not accepted: the journal could not make it
				// durable, and an acknowledgment would be a lie.
				http.Error(w, err.Error(), http.StatusInternalServerError)
			default:
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
		status := http.StatusAccepted
		if r.URL.Query().Get("wait") != "" {
			<-j.Done()
			status = http.StatusOK
		}
		writeJSON(w, status, j.Snapshot())
	})
	mux.HandleFunc("/jobs/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		id := strings.TrimPrefix(r.URL.Path, "/jobs/")
		j, ok := s.Job(id)
		if !ok {
			http.Error(w, "unknown job "+id, http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, j.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
