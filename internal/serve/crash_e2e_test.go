package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"kdrsolvers/internal/jobspec"
	"kdrsolvers/internal/wal"
)

// TestCrashRecoveryEndToEnd is the tentpole proof: a real mmserve
// process is SIGKILLed mid-batch — jobs done, jobs mid-solve with
// persisted checkpoints, jobs still queued — and a fresh process on
// the same WAL directory completes every accepted job, resuming
// in-flight ones from their last verified checkpoint rather than
// iteration 0.
//
// The timeline is made deterministic, not hoped for: stall fault
// injection stretches every job to seconds of wall time, the kill
// waits for the journal to report at least one completion and then for
// running jobs to accumulate mid-flight checkpoints, and fsync-every=1
// means every acknowledged record survives the kill.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real server processes")
	}

	bin := filepath.Join(t.TempDir(), "mmserve")
	if out, err := exec.Command("go", "build", "-o", bin, "kdrsolvers/cmd/mmserve").CombinedOutput(); err != nil {
		t.Fatalf("build mmserve: %v\n%s", err, out)
	}
	walDir := t.TempDir()

	const tol = 1e-8
	const jobs = 8

	// --- first incarnation -------------------------------------------
	srv1, base1 := startMMServe(t, bin, walDir)

	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		spec := jobspec.Default()
		spec.Matrix = "lap2d:32x32"
		spec.Solver = "cg"
		spec.Tol = tol
		spec.Pieces = 8
		spec.CheckpointEvery = 2
		spec.MaxRestarts = 3
		// ~5% of tasks stall 10ms: tens of milliseconds per iteration,
		// seconds per job — the batch is guaranteed to still be in flight
		// when the kill lands. Stalls never fail tasks, so convergence is
		// untouched.
		spec.Faults = fmt.Sprintf("stall=0.05,stallms=10,seed=%d", i+1)
		body, _ := json.Marshal(spec)
		resp, err := http.Post(base1+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var view JobView
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted || view.ID == "" {
			t.Fatalf("submit %d: status %d, view %+v", i, resp.StatusCode, view)
		}
		ids = append(ids, view.ID)
	}

	// Kill mid-batch: wait until some jobs finished but not all, then
	// give the in-flight ones time to checkpoint past iteration 0.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		m := fetchMetrics(t, base1)
		if m.Completed >= 1 && m.Completed <= jobs-3 && m.WAL != nil && m.WAL.CheckpointsPersisted > 0 {
			break
		}
		if m.Completed > jobs-3 {
			t.Fatalf("jobs finished too fast to kill mid-batch (completed %d) — stalls not stretching the solve?", m.Completed)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no completions before deadline: %+v", m)
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond) // running jobs now hold checkpoints at iter > 0
	preKill := fetchMetrics(t, base1)
	if err := srv1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	srv1.Wait()
	t.Logf("killed with %d/%d completed, %d checkpoints persisted",
		preKill.Completed, jobs, preKill.WAL.CheckpointsPersisted)

	// --- second incarnation ------------------------------------------
	srv2, base2 := startMMServe(t, bin, walDir)
	defer func() {
		srv2.Process.Signal(syscall.SIGTERM)
		srv2.Wait()
	}()

	// Every accepted job completes, and every completion is backed by a
	// host-recomputed true residual at tolerance — journaled pre-crash
	// results and post-crash (re)runs alike.
	resumedJobs := 0
	for _, id := range ids {
		view := waitJobDone(t, base2, id, deadline)
		r := view.Result
		if r == nil || !r.Converged || r.Err != "" {
			t.Fatalf("job %s after restart: %+v", id, r)
		}
		if r.TrueResidual > 1.05*tol {
			t.Fatalf("job %s true residual %g > %g", id, r.TrueResidual, 1.05*tol)
		}
		if r.ResumedFrom > 0 {
			resumedJobs++
			if r.Iterations <= r.ResumedFrom {
				t.Fatalf("job %s: %d total iterations not past its checkpoint at %d",
					id, r.Iterations, r.ResumedFrom)
			}
		}
	}
	if resumedJobs == 0 {
		t.Fatal("no job reports resuming from a checkpoint — the restart re-ran everything from scratch")
	}

	// Independent evidence from the journal itself: the second
	// incarnation wrote resume records at iteration > 0, and replay
	// recovered records the first incarnation wrote.
	m2 := fetchMetrics(t, base2)
	if m2.WAL == nil || m2.WAL.RecordsReplayed == 0 {
		t.Fatalf("second incarnation replayed nothing: %+v", m2.WAL)
	}
	if m2.WAL.JobsResumed == 0 {
		t.Fatalf("second incarnation resumed no jobs from checkpoints: %+v", m2.WAL)
	}
	srv2.Process.Signal(syscall.SIGTERM)
	srv2.Wait()

	resumeRecords := 0
	l, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Replay(func(p []byte) error {
		var rec journalRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			return nil
		}
		if rec.T == recResume && rec.Iter > 0 {
			resumeRecords++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if resumeRecords == 0 {
		t.Fatal("journal holds no resume records at iteration > 0")
	}
	t.Logf("restart: %d job(s) resumed from checkpoints (%d resume records), all %d jobs converged ≤ %g",
		resumedJobs, resumeRecords, jobs, 1.05*tol)
}

// startMMServe launches the built binary against walDir and waits for
// it to serve /healthz.
func startMMServe(t *testing.T, bin, walDir string) (*exec.Cmd, string) {
	t.Helper()
	addr := freeAddr(t)
	cmd := exec.Command(bin,
		"-addr", addr, "-wal-dir", walDir, "-fsync-every", "1",
		"-max-active", "2", "-coalesce-max", "1", "-queue-depth", "64")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start mmserve: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	base := "http://" + addr
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, base
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("mmserve at %s never became healthy", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// freeAddr reserves a localhost port long enough to hand it to the
// child process.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func fetchMetrics(t *testing.T, base string) MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func waitJobDone(t *testing.T, base, id string, deadline time.Time) JobView {
	t.Helper()
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view JobView
		decErr := json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			t.Fatalf("job %s unknown after restart — lost by the journal", id)
		}
		if decErr != nil {
			t.Fatal(decErr)
		}
		if view.State == StateDone {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s at deadline", id, view.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
