package serve

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"kdrsolvers/internal/jobspec"
	"kdrsolvers/internal/sparse"
	"kdrsolvers/internal/taskrt"
)

// Checkpoint-restore conformance under format "auto": for each method
// × matrix row, a solve interrupted at a persisted checkpoint and
// resumed — from the journal on disk, and from the in-memory
// checkpoint it round-tripped — must agree iteration-for-iteration and
// to ≤ 1e-10 in solution and true residual, and converge like the
// uninterrupted reference.
//
// What "agree" can honestly mean here: checkpoints persist the
// verified solution vector, not the full Krylov state, so a resumed
// run rebuilds its Krylov space from the checkpoint and is NOT
// iteration-for-iteration identical to a never-interrupted run (it
// converges at least as fast from the better initial guess). The
// iteration-exact claim is between the two resumed runs: execution is
// bitwise-deterministic (fixed piece-order reduction combines) and the
// journal's JSON round-trips float64 exactly, so resuming from disk
// must be indistinguishable from never having serialized at all.

// resumeSolvers are the methods the rows cover; all SPD-safe (the
// matrices below are SPD).
var resumeSolvers = []string{"cg", "pipecg", "sstep-cg", "gcrodr"}

// randomSPD builds a scattered symmetric diagonally dominant matrix:
// perRow random symmetric couplings per row, diagonal outweighing each
// row's off-diagonal mass. Same scattered structure the adaptive
// tuner's "random" benchmark matrix has, made SPD for the CG family.
func randomSPD(n int64, perRow int, seed int64) *sparse.CSR {
	r := rand.New(rand.NewSource(seed))
	off := make(map[[2]int64]float64)
	for i := int64(0); i < n; i++ {
		for e := 0; e < perRow; e++ {
			j := r.Int63n(n)
			if j == i {
				continue
			}
			v := r.Float64() - 0.5
			off[[2]int64{i, j}] = v
			off[[2]int64{j, i}] = v
		}
	}
	diag := make([]float64, n)
	for ij, v := range off {
		diag[ij[0]] += math.Abs(v)
	}
	coords := make([]sparse.Coord, 0, len(off)+int(n))
	for i := int64(0); i < n; i++ {
		coords = append(coords, sparse.Coord{Row: i, Col: i, Val: diag[i] + 1})
	}
	for ij, v := range off {
		coords = append(coords, sparse.Coord{Row: ij[0], Col: ij[1], Val: v})
	}
	return sparse.CSRFromCoords(n, n, coords)
}

type resumeMatrix struct {
	name  string
	build func() *sparse.CSR
	big   bool
}

var resumeMatrices = []resumeMatrix{
	{"lap2d-32x32", func() *sparse.CSR { return sparse.Laplacian2D(32, 32) }, false},
	{"random-32768", func() *sparse.CSR { return randomSPD(32768, 4, 42) }, true},
}

func TestResumeConformanceAuto(t *testing.T) {
	rt := taskrt.New()
	defer rt.Drain()
	run := func(a *sparse.CSR, spec jobspec.Spec, opt Options) JobResult {
		sess := rt.NewSession("conf")
		defer sess.Close()
		opt.Session = sess
		return RunSolve(a, spec, opt)
	}

	for _, m := range resumeMatrices {
		if m.big && testing.Short() {
			continue
		}
		a := m.build()
		for _, solver := range resumeSolvers {
			t.Run(m.name+"/"+solver, func(t *testing.T) {
				spec := jobspec.Default()
				spec.Matrix = m.name
				spec.Solver = solver
				spec.Format = "auto"
				spec.Pieces = 8
				spec.CheckpointEvery = 2
				spec.MaxRestarts = 3

				// Uninterrupted reference, capturing every verified
				// checkpoint along the way.
				var cks []ResumePoint
				ref := run(a, spec, Options{
					CheckpointSink: func(iter int, residual float64, x []float64, basis string) {
						cks = append(cks, ResumePoint{
							Iter: iter, Residual: residual,
							X: append([]float64(nil), x...), Basis: basis,
						})
					},
				})
				if !ref.Converged || ref.Err != "" {
					t.Fatalf("reference solve: %+v", ref)
				}

				// Interrupt at the first mid-flight checkpoint: past
				// iteration 0, not yet converged.
				var mid *ResumePoint
				for i := range cks {
					if cks[i].Iter > 0 && cks[i].Residual > spec.Tol {
						mid = &cks[i]
						break
					}
				}
				if mid == nil {
					t.Fatalf("%s converged before its second checkpoint (iters %d) — no mid-flight state to resume", solver, ref.Iterations)
				}

				// Persist exactly what a crashed server leaves behind, then
				// reopen: the journaled checkpoint must round-trip
				// bit-for-bit (Go's JSON float64 encoding is shortest
				// round-tripping).
				dir := t.TempDir()
				jn, _, err := OpenJournal(dir, 1)
				if err != nil {
					t.Fatal(err)
				}
				if err := jn.Accept("job-1", spec, time.Now()); err != nil {
					t.Fatal(err)
				}
				if err := jn.Checkpoint("job-1", mid.Iter, mid.Residual, mid.X, mid.Basis); err != nil {
					t.Fatal(err)
				}
				jn.Close()
				jn2, rep, err := OpenJournal(dir, 1)
				if err != nil {
					t.Fatal(err)
				}
				defer jn2.Close()
				if len(rep.Pending) != 1 || rep.Pending[0].Resume == nil {
					t.Fatalf("replay = %+v, want one pending job with a resume point", rep)
				}
				disk := rep.Pending[0].Resume
				if disk.Iter != mid.Iter || disk.Residual != mid.Residual {
					t.Fatalf("checkpoint metadata changed on disk: %d/%g vs %d/%g",
						disk.Iter, disk.Residual, mid.Iter, mid.Residual)
				}
				for i := range mid.X {
					if disk.X[i] != mid.X[i] {
						t.Fatalf("checkpoint X[%d] altered by the disk round trip: %x vs %x",
							i, math.Float64bits(disk.X[i]), math.Float64bits(mid.X[i]))
					}
				}

				// Resume twice — from the replayed journal and from memory.
				// Deterministic execution + exact serialization ⇒ the two
				// runs are the same run.
				fromDisk := run(a, spec, Options{Resume: disk})
				fromMem := run(a, spec, Options{Resume: mid})
				for _, r := range []*JobResult{&fromDisk, &fromMem} {
					if !r.Converged || r.Err != "" {
						t.Fatalf("resumed solve: %+v", r)
					}
					if r.TrueResidual > 1.05*spec.Tol {
						t.Fatalf("resumed true residual %g > %g", r.TrueResidual, 1.05*spec.Tol)
					}
					if r.ResumedFrom != mid.Iter {
						t.Fatalf("ResumedFrom = %d, want %d", r.ResumedFrom, mid.Iter)
					}
					if r.Iterations <= mid.Iter {
						t.Fatalf("resumed run reports %d total iterations, not past the checkpoint at %d",
							r.Iterations, mid.Iter)
					}
				}
				if fromDisk.Iterations != fromMem.Iterations {
					t.Fatalf("disk-resumed took %d iterations, memory-resumed %d",
						fromDisk.Iterations, fromMem.Iterations)
				}
				if d := math.Abs(fromDisk.TrueResidual - fromMem.TrueResidual); d > 1e-10 {
					t.Fatalf("true residuals diverge by %g", d)
				}
				for i := range fromDisk.X {
					if d := math.Abs(fromDisk.X[i] - fromMem.X[i]); d > 1e-10 {
						t.Fatalf("solutions diverge at %d by %g", i, d)
					}
				}
				t.Logf("row %s/%s: ref %d iters; resumed at %d -> %d iters, |Δresid| = %.1e, converged ≤ %g",
					m.name, solver, ref.Iterations, mid.Iter, fromDisk.Iterations,
					math.Abs(fromDisk.TrueResidual-fromMem.TrueResidual), spec.Tol)
			})
		}
	}
}
