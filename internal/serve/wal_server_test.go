package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"testing"
	"time"

	"kdrsolvers/internal/jobspec"
	"kdrsolvers/internal/taskrt"
)

// A drain with a journal persists queued jobs instead of losing them:
// the next server on the same WAL directory replays and runs them.
func TestWALDrainPersistsQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	s := mustServer(t, Config{MaxActive: 1, QueueDepth: 16, CoalesceMax: 1, WALDir: dir, FsyncEvery: 1})
	inflight, err := s.Submit(testSpec(func(sp *jobspec.Spec) { sp.Matrix = "lap2d:48x48" }))
	if err != nil {
		t.Fatal(err)
	}
	for inflight.Snapshot().State != StateRunning {
		runtime.Gosched()
	}
	var queued []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(testSpec(func(sp *jobspec.Spec) { sp.Tol = 1e-6 / float64(i+1) }))
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}
	s.Drain()
	// This incarnation rejected the queued jobs retryable...
	for _, j := range queued {
		if r := j.Result(); !r.Retryable {
			t.Fatalf("queued job %s at drain = %+v, want retryable", j.ID, r)
		}
	}

	// ...and the next incarnation owes them: replay re-enqueues exactly
	// the three queued jobs (the in-flight one finished and journaled
	// done), and they complete for real.
	s2 := mustServer(t, Config{MaxActive: 2, CoalesceMax: 1, WALDir: dir, FsyncEvery: 1})
	defer s2.Drain()
	for _, old := range queued {
		j, ok := s2.Job(old.ID)
		if !ok {
			t.Fatalf("job %s not replayed", old.ID)
		}
		r := j.Result()
		if !r.Converged || r.Err != "" {
			t.Fatalf("replayed job %s: %+v", old.ID, r)
		}
	}
	// The in-flight job's journaled result survived the restart too.
	j, ok := s2.Job(inflight.ID)
	if !ok {
		t.Fatalf("done job %s lost across restart", inflight.ID)
	}
	if r := j.Result(); !r.Converged {
		t.Fatalf("done job %s replayed result = %+v", inflight.ID, r)
	}
	// Replay is idempotent: the done job was not re-run.
	if m := s2.Metrics(); m.Completed != 3 {
		t.Fatalf("second server completed %d jobs, want exactly the 3 replayed", m.Completed)
	}
}

// A job whose process dies mid-solve resumes from its last persisted
// checkpoint, not iteration 0. The crash is simulated in-process: the
// journal holds an accept and checkpoints up to a cutoff iteration,
// and no terminal record — exactly the on-disk state a SIGKILL at that
// moment leaves behind.
func TestWALResumeFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(func(sp *jobspec.Spec) {
		sp.Matrix = "lap2d:24x24"
		sp.CheckpointEvery = 3
		sp.MaxRestarts = 3
	})
	a, err := jobspec.LoadMatrix(spec.Matrix)
	if err != nil {
		t.Fatal(err)
	}

	// "Crashed" run: journal the admission and every checkpoint at or
	// below the cutoff, then stop recording — as if the process died.
	jn, _, err := OpenJournal(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := jn.Accept("job-1", spec, time.Now()); err != nil {
		t.Fatal(err)
	}
	const cutoff = 6
	rt := taskrt.New()
	sess := rt.NewSession("crashed")
	RunSolve(a, spec, Options{
		Session: sess,
		CheckpointSink: func(iter int, residual float64, x []float64, basis string) {
			if iter <= cutoff {
				if err := jn.Checkpoint("job-1", iter, residual, x, basis); err != nil {
					t.Errorf("checkpoint: %v", err)
				}
			}
		},
	})
	sess.Close()
	rt.Drain()
	jn.Close()

	// Restart: the server replays the journal and finishes the job from
	// the checkpoint.
	s := mustServer(t, Config{MaxActive: 1, CoalesceMax: 1, WALDir: dir, FsyncEvery: 1})
	defer s.Drain()
	j, ok := s.Job("job-1")
	if !ok {
		t.Fatal("crashed job not replayed")
	}
	r := j.Result()
	if !r.Converged || r.Err != "" {
		t.Fatalf("resumed job: %+v", r)
	}
	if r.TrueResidual > 1.05*spec.Tol {
		t.Fatalf("resumed job true residual %g > %g", r.TrueResidual, 1.05*spec.Tol)
	}
	if r.ResumedFrom == 0 || r.ResumedFrom > cutoff {
		t.Fatalf("resumed from iteration %d, want in (0, %d]", r.ResumedFrom, cutoff)
	}
	if r.Iterations <= r.ResumedFrom {
		t.Fatalf("total iterations %d not past the checkpoint at %d", r.Iterations, r.ResumedFrom)
	}
}

// Replay is a pure fold of the record stream: replaying again — with
// the extra resume records a restart appends — reconstructs identical
// state, and close/reopen changes nothing.
func TestJournalReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(nil)
	jn, _, err := OpenJournal(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1700000000, 0).UTC()
	// A history with every idempotency hazard: duplicate accepts,
	// checkpoint after done, accept after done, interleaved completions.
	jn.Accept("job-1", spec, now)
	jn.Accept("job-2", spec, now)
	jn.Checkpoint("job-1", 4, 1e-3, []float64{1, 2}, "fp-a")
	jn.Accept("job-1", spec, now) // duplicate accept
	jn.Checkpoint("job-1", 8, 1e-5, []float64{3, 4}, "fp-a")
	jn.Done("job-2", &JobResult{Solver: "cg", Converged: true})
	jn.Accept("job-2", spec, now)               // accept after done: stays done
	jn.Checkpoint("job-2", 2, 1e-2, nil, "fp")  // checkpoint after done: ignored
	jn.Resume("job-1", 8)                       // provenance only
	jn.Accept("job-3", spec, now)

	first, err := jn.Replay()
	if err != nil {
		t.Fatal(err)
	}
	second, err := jn.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same log, different folds:\n%+v\n%+v", first, second)
	}
	// What a restart does: journal resume records, close, reopen.
	for _, p := range first.Pending {
		if p.Resume != nil {
			jn.Resume(p.ID, p.Resume.Iter)
		}
	}
	jn.Close()
	jn2, third, err := OpenJournal(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.Close()
	if !reflect.DeepEqual(first, third) {
		t.Fatalf("fold changed across restart:\n%+v\n%+v", first, third)
	}

	// And the fold itself is right: job-2 done, job-1 pending at its
	// LATEST checkpoint, job-3 pending from scratch, ids past job-3.
	if len(third.Pending) != 2 || third.Pending[0].ID != "job-1" || third.Pending[1].ID != "job-3" {
		t.Fatalf("pending = %+v", third.Pending)
	}
	rp := third.Pending[0].Resume
	if rp == nil || rp.Iter != 8 || !reflect.DeepEqual(rp.X, []float64{3, 4}) {
		t.Fatalf("job-1 resume point = %+v, want latest checkpoint", rp)
	}
	if third.Pending[1].Resume != nil {
		t.Fatalf("job-3 has a resume point from nowhere")
	}
	if len(third.DoneOrder) != 1 || third.DoneOrder[0] != "job-2" || !third.Done["job-2"].Converged {
		t.Fatalf("done = %+v", third.Done)
	}
	if third.MaxID != 3 {
		t.Fatalf("MaxID = %d, want 3", third.MaxID)
	}
}

// The registry is bounded: completed jobs past RetainDone are evicted
// oldest-first, and evicted ids look up as unknown (the HTTP layer
// then 404s).
func TestServerRetainDoneEviction(t *testing.T) {
	s := mustServer(t, Config{MaxActive: 1, CoalesceMax: 1, RetainDone: 2})
	defer s.Drain()
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := s.Submit(testSpec(nil))
		if err != nil {
			t.Fatal(err)
		}
		j.Result()
		ids = append(ids, j.ID)
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Fatalf("oldest completed job %s still in the registry past RetainDone=2", ids[0])
	}
	for _, id := range ids[1:] {
		if _, ok := s.Job(id); !ok {
			t.Fatalf("recent job %s evicted too early", id)
		}
	}
	if got := s.Metrics().EvictedJobs; got != 1 {
		t.Fatalf("EvictedJobs = %d, want 1", got)
	}

	// The HTTP layer maps the eviction to 404, same as never-submitted.
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	for _, id := range []string{ids[0], "job-999"} {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET /jobs/%s = %d, want 404", id, resp.StatusCode)
		}
	}
}

// RetainTTL expires completed jobs by age, independent of count.
func TestServerRetainTTLEviction(t *testing.T) {
	s := mustServer(t, Config{MaxActive: 1, CoalesceMax: 1, RetainTTL: 20 * time.Millisecond})
	defer s.Drain()
	j, err := s.Submit(testSpec(nil))
	if err != nil {
		t.Fatal(err)
	}
	j.Result()
	if _, ok := s.Job(j.ID); !ok {
		t.Fatal("job evicted before its TTL")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := s.Job(j.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job outlived its TTL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Metrics().EvictedJobs; got != 1 {
		t.Fatalf("EvictedJobs = %d, want 1", got)
	}
}

// GET /metrics surfaces the session error-window accounting and the
// WAL counters, and both move when the server does matching work.
func TestHTTPMetricsErrsDroppedAndWAL(t *testing.T) {
	s := mustServer(t, Config{MaxActive: 1, CoalesceMax: 1, WALDir: t.TempDir(), FsyncEvery: 1})
	defer s.Drain()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	fetch := func() map[string]json.RawMessage {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	num := func(m map[string]json.RawMessage, key string) int64 {
		raw, ok := m[key]
		if !ok {
			t.Fatalf("metrics missing %q: %v", key, m)
		}
		var v int64
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("metrics %q: %v", key, err)
		}
		return v
	}
	walCounters := func(m map[string]json.RawMessage) map[string]int64 {
		raw, ok := m["wal"]
		if !ok {
			t.Fatalf("metrics missing \"wal\" with durability on: %v", m)
		}
		var w map[string]int64
		if err := json.Unmarshal(raw, &w); err != nil {
			t.Fatal(err)
		}
		return w
	}

	before := fetch()
	if got := num(before, "errs_dropped"); got != 0 {
		t.Fatalf("errs_dropped = %d before any job", got)
	}
	walBefore := walCounters(before)

	// Overflow one session error window in a single resilient attempt:
	// 128 pieces means the first task wave has well over the window's 64
	// independent root tasks, every one of which panics (rate 1), so the
	// window must evict. The resilient driver then rolls back, the
	// injector's budget runs out, and the job still converges.
	j, err := s.Submit(testSpec(func(sp *jobspec.Spec) {
		sp.Matrix = "lap2d:32x32"
		sp.Pieces = 128
		sp.Faults = "panic=1,max=128,seed=1"
		sp.CheckpointEvery = 1
		sp.MaxRestarts = 200
	}))
	if err != nil {
		t.Fatal(err)
	}
	if r := j.Result(); !r.Converged {
		t.Fatalf("faulted resilient job did not converge: %+v", r)
	}

	after := fetch()
	if got := num(after, "errs_dropped"); got <= 0 {
		t.Fatalf("errs_dropped = %d after >64 failures in one attempt, want > 0", got)
	}
	walAfter := walCounters(after)
	for _, key := range []string{"records_appended", "fsyncs", "checkpoints_persisted"} {
		if walAfter[key] <= walBefore[key] {
			t.Fatalf("wal.%s did not move: %d -> %d", key, walBefore[key], walAfter[key])
		}
	}
	for _, key := range []string{"records_replayed", "records_truncated", "recovery_ns", "segments", "jobs_resumed", "truncated_bytes"} {
		if _, ok := walAfter[key]; !ok {
			t.Fatalf("wal metrics missing %q: %v", key, walAfter)
		}
	}
	if _, ok := after["evicted_jobs"]; !ok {
		t.Fatal("metrics missing evicted_jobs")
	}
}
