package serve

import (
	"sync"
	"testing"

	"kdrsolvers/internal/jobspec"
	"kdrsolvers/internal/taskrt"
)

// The multi-tenancy contract, asserted end to end under the race
// detector: N concurrent solves over ONE shared runtime — mixed
// solvers, mixed storage formats, one session with a seeded fault plan —
// must behave exactly as N solo solves on private runtimes. Same
// iteration counts, same per-session task and dependence-edge counts
// (no cross-session serialization: a shared scheduler that discovered
// edges between tenants would inflate DepEdges), and the seeded
// failure contained to its own session.
func TestConcurrentSessionsMatchSoloBaselines(t *testing.T) {
	mk := func(solver, format string, pieces int) jobspec.Spec {
		s := jobspec.Default()
		s.Matrix = "lap2d:16x16"
		s.Solver = solver
		s.Format = format
		s.Pieces = pieces
		s.Tol = 1e-8
		return s
	}
	specs := []jobspec.Spec{
		mk("cg", "csr", 4),
		mk("bicgstab", "dia", 2),
		mk("minres", "coo", 4),
		mk("gmres", "ell", 2),
		mk("pcg", "csr", 4),
		mk("cgs", "csc", 2),
	}
	// One tenant runs a hostile fault plan with no retries and no
	// resilient driver: it must fail, and no one else may notice.
	faulted := mk("cg", "csr", 4)
	faulted.Faults = "panic=0.05,seed=3"
	specs = append(specs, faulted)
	faultedIdx := len(specs) - 1

	a, err := jobspec.LoadMatrix("lap2d:16x16")
	if err != nil {
		t.Fatal(err)
	}

	// Solo baselines: each spec alone on a private runtime. Tracing off
	// on both sides so the launch accounting is schedule-independent.
	solo := make([]JobResult, len(specs))
	for i, sp := range specs {
		rt := taskrt.New()
		solo[i] = RunSolve(a, sp, Options{Session: rt.DefaultSession()})
	}
	if solo[faultedIdx].Err == "" {
		t.Fatal("seeded-fault solo baseline did not fail; the containment half of this test would be vacuous")
	}
	for i, r := range solo[:faultedIdx] {
		if !r.Converged || r.Err != "" {
			t.Fatalf("solo baseline %s/%s: converged=%v err=%q", specs[i].Solver, specs[i].Format, r.Converged, r.Err)
		}
	}

	// The same specs, concurrently, one shared runtime, one session each.
	rt := taskrt.New()
	shared := make([]JobResult, len(specs))
	var wg sync.WaitGroup
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp jobspec.Spec) {
			defer wg.Done()
			sess := rt.NewSession(sp.Solver + "-" + sp.Format)
			defer sess.Close()
			shared[i] = RunSolve(a, sp, Options{Session: sess})
		}(i, sp)
	}
	wg.Wait()
	rt.Drain()

	for i, sp := range specs {
		got, want := shared[i], solo[i]
		if got.Iterations != want.Iterations {
			t.Errorf("%s/%s: %d iterations shared vs %d solo — tenants perturbed each other's numerics",
				sp.Solver, sp.Format, got.Iterations, want.Iterations)
		}
		if got.Session.Launched != want.Session.Launched {
			t.Errorf("%s/%s: launched %d shared vs %d solo", sp.Solver, sp.Format,
				got.Session.Launched, want.Session.Launched)
		}
		if got.Session.DepEdges != want.Session.DepEdges {
			t.Errorf("%s/%s: dep edges %d shared vs %d solo — cross-session serialization",
				sp.Solver, sp.Format, got.Session.DepEdges, want.Session.DepEdges)
		}
		if i == faultedIdx {
			if got.Err == "" {
				t.Error("seeded-fault session lost its failure in the shared run")
			}
			if got.Session.Failed == 0 {
				t.Error("seeded-fault session reports no failed tasks")
			}
			continue
		}
		if got.Err != "" {
			t.Errorf("%s/%s: clean tenant polluted: %s", sp.Solver, sp.Format, got.Err)
		}
		if !got.Converged {
			t.Errorf("%s/%s: did not converge in shared run", sp.Solver, sp.Format)
		}
		// Bitwise-identical numerics: within a session the task graph
		// fixes all evaluation orders, so tenant interleaving must not
		// move the result at all.
		if got.TrueResidual != want.TrueResidual {
			t.Errorf("%s/%s: true residual %g shared vs %g solo",
				sp.Solver, sp.Format, got.TrueResidual, want.TrueResidual)
		}
		if got.Session.Failed != 0 || got.Session.Poisoned != 0 {
			t.Errorf("%s/%s: clean tenant counted failures %+v", sp.Solver, sp.Format, got.Session)
		}
	}
}
