package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/jobspec"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/obs"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
	"kdrsolvers/internal/taskrt"
)

// Admission errors. ErrQueueFull and ErrDraining are retryable — the
// client should resubmit later (the HTTP front end maps them to 503 with
// a Retry-After); a validation error from Submit is not.
var (
	ErrQueueFull = errors.New("serve: admission queue full, retry later")
	ErrDraining  = errors.New("serve: server draining, retry against a live replica")
)

// ErrJournal wraps a WAL append failure during admission: the job was
// NOT accepted (a job the journal cannot make durable must not be
// acknowledged). The HTTP front end maps it to 500.
var ErrJournal = errors.New("serve: journal append failed")

// Config sizes a Server.
type Config struct {
	// MaxActive bounds concurrently executing solve sessions (batches
	// count once). Default 4.
	MaxActive int
	// QueueDepth bounds the admission queue; a Submit past the bound
	// fails with ErrQueueFull instead of growing memory without limit.
	// Default 64.
	QueueDepth int
	// CoalesceMax caps how many compatible queued jobs are fused into
	// one batched multi-RHS solve (sharing the operator the multirhs
	// pattern aliases). 0 or 1 disables coalescing. Default 8.
	CoalesceMax int
	// Tracing enables per-session trace memoization of solver iteration
	// loops.
	Tracing bool
	// WALDir, when non-empty, makes the server crash-durable: every
	// accepted job, every verified resilient checkpoint, and every
	// terminal state is journaled to a write-ahead log in this
	// directory. NewServer replays the journal — finished jobs keep
	// their results, unfinished jobs re-enter the queue, and jobs with a
	// persisted checkpoint resume from it instead of iteration 0 — and
	// Drain persists queued jobs for the next start instead of
	// rejecting them. Empty disables durability (the PR-9 behavior).
	WALDir string
	// FsyncEvery batches the journal's fsyncs: records are synced to
	// disk every N appends (1 = every record, the strictest setting; a
	// crash can lose at most the newest N−1 acknowledged records).
	// Default 16.
	FsyncEvery int
	// RetainDone bounds how many completed jobs the registry keeps for
	// GET /jobs/{id}: past the bound the oldest-completed are evicted
	// (lookups then 404). Default 256.
	RetainDone int
	// RetainTTL additionally expires completed jobs by age; 0 disables
	// the TTL (eviction is then purely LRU via RetainDone).
	RetainTTL time.Duration
	// Log, when non-nil, receives server progress lines.
	Log func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.MaxActive <= 0 {
		c.MaxActive = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CoalesceMax <= 0 {
		c.CoalesceMax = 8
	}
	if c.FsyncEvery <= 0 {
		c.FsyncEvery = 16
	}
	if c.RetainDone <= 0 {
		c.RetainDone = 256
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
)

// Job is one submitted solve and its lifecycle. Fields other than ID and
// Spec are owned by the server; read them through Snapshot or after Done
// is closed.
type Job struct {
	ID   string
	Spec jobspec.Spec

	// resume, when non-nil, is the persisted checkpoint a replayed job
	// restarts from. Set only during journal replay, before the job is
	// visible to workers.
	resume *ResumePoint

	mu        sync.Mutex
	state     string
	result    *JobResult
	submitted time.Time
	started   time.Time
	finished  time.Time

	// done is closed when the job reaches StateDone.
	done chan struct{}
}

// Done returns a channel closed when the job finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobView is a point-in-time copy of a job's externally visible state,
// shaped for the HTTP layer's JSON responses.
type JobView struct {
	ID        string        `json:"id"`
	State     string        `json:"state"`
	Spec      jobspec.Spec  `json:"spec"`
	Submitted time.Time     `json:"submitted"`
	Started   time.Time     `json:"started,omitempty"`
	Finished  time.Time     `json:"finished,omitempty"`
	QueueWait time.Duration `json:"queue_wait_ns,omitempty"`
	Result    *JobResult    `json:"result,omitempty"`
}

// Snapshot returns the job's current state.
func (j *Job) Snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.ID, State: j.state, Spec: j.Spec,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		Result: j.result,
	}
	if !j.started.IsZero() {
		v.QueueWait = j.started.Sub(j.submitted)
	}
	return v
}

// Result blocks until the job finishes and returns its result.
func (j *Job) Result() *JobResult {
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Metrics are the server's cumulative counters, exported at /metrics.
type Metrics struct {
	Submitted        obs.Counter
	RejectedFull     obs.Counter
	RejectedInvalid  obs.Counter
	RejectedDraining obs.Counter
	Completed        obs.Counter
	Failed           obs.Counter // completed with an error, breakdown, or no convergence
	CoalescedJobs    obs.Counter // jobs that ran inside a shared multi-RHS batch
	Batches          obs.Counter // multi-RHS batches executed
	ErrsDropped      obs.Counter // session error-window evictions, summed over completed jobs
	EvictedJobs      obs.Counter // completed jobs evicted from the registry (TTL/LRU)
	SolveTime        obs.Timer
	QueueTime        obs.Timer
}

// MetricsSnapshot is the JSON shape of one metrics read: the counters
// plus the instantaneous gauges and the shared runtime's own stats.
type MetricsSnapshot struct {
	Submitted        int64 `json:"submitted"`
	RejectedFull     int64 `json:"rejected_queue_full"`
	RejectedInvalid  int64 `json:"rejected_invalid"`
	RejectedDraining int64 `json:"rejected_draining"`
	Completed        int64 `json:"completed"`
	Failed           int64 `json:"failed"`
	CoalescedJobs    int64 `json:"coalesced_jobs"`
	Batches          int64 `json:"batches"`

	// ErrsDropped sums, over completed jobs, the permanent task failures
	// each job's session evicted from its bounded error window
	// (taskrt.SessionStats.ErrsDropped) — visibility into how much
	// failure history the windows have shed.
	ErrsDropped int64 `json:"errs_dropped"`
	// EvictedJobs counts completed jobs the registry evicted (TTL/LRU).
	EvictedJobs int64 `json:"evicted_jobs"`

	Active   int  `json:"active"`
	Queued   int  `json:"queued"`
	Sessions int  `json:"sessions"`
	Draining bool `json:"draining"`

	// WAL is the journal's counters; absent when durability is off.
	WAL *WALMetricsSnapshot `json:"wal,omitempty"`

	SolveTimeNS     int64 `json:"solve_time_ns"`
	MeanSolveNS     int64 `json:"mean_solve_ns"`
	QueueTimeNS     int64 `json:"queue_time_ns"`
	MeanQueueWaitNS int64 `json:"mean_queue_wait_ns"`

	Runtime taskrt.Stats `json:"runtime"`
}

// matrixEntry loads one matrix exactly once and shares the loaded object
// across every job naming the same spec string. The sharing is what
// makes coalescing and recycle-cache hits possible at all:
// Planner.OperatorFingerprint identifies operators by concrete matrix
// object, so tenants must alias one CSR to count as "sharing an
// operator".
type matrixEntry struct {
	once sync.Once
	a    *sparse.CSR
	err  error
}

// Server multiplexes many solve jobs over one shared taskrt.Runtime,
// giving each job (or coalesced batch) its own session: scoped failure
// state, scoped fault injection, scoped phase labels, one shared
// scheduler underneath. Admission is a bounded FIFO queue drained by
// MaxActive workers — fairness is arrival order, with the single
// exception that a worker popping the head also claims any
// coalescible queued jobs so same-operator tenants amortize one
// planner.
type Server struct {
	cfg Config
	rt  *taskrt.Runtime

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []*Job
	jobs      map[string]*Job
	doneOrder []string // completed job ids, oldest first (eviction order)
	active    int
	draining  bool
	nextID    int64

	journal      *Journal // nil when durability is off
	journalClose sync.Once

	matrices map[string]*matrixEntry
	caches   map[string]*solvers.RecycleCache

	workers sync.WaitGroup
	metrics Metrics
}

// NewServer starts a server with cfg.MaxActive workers over one fresh
// shared runtime. With cfg.WALDir set it first replays the journal:
// finished jobs keep their journaled results, unfinished jobs re-enter
// the queue in their original acceptance order, and jobs with a
// persisted checkpoint are marked to resume from it. The only error is
// a journal that cannot be opened (corruption is recovered by
// truncation, never an error).
func NewServer(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	s := &Server{
		cfg:      cfg,
		rt:       taskrt.New(),
		jobs:     make(map[string]*Job),
		matrices: make(map[string]*matrixEntry),
		caches:   make(map[string]*solvers.RecycleCache),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.WALDir != "" {
		if err := s.replayJournal(); err != nil {
			return nil, err
		}
	}
	s.workers.Add(cfg.MaxActive)
	for i := 0; i < cfg.MaxActive; i++ {
		go s.worker(i)
	}
	return s, nil
}

// replayJournal opens the WAL and folds its history back into the
// server: done jobs into the registry, pending jobs into the queue.
// Runs before workers start, so no locking is needed on the maps.
func (s *Server) replayJournal() error {
	jn, rep, err := OpenJournal(s.cfg.WALDir, s.cfg.FsyncEvery)
	if err != nil {
		return fmt.Errorf("serve: open wal journal: %w", err)
	}
	s.journal = jn
	s.nextID = rep.MaxID
	now := time.Now()
	for _, id := range rep.DoneOrder {
		j := &Job{ID: id, state: StateDone, result: rep.Done[id], finished: now,
			done: make(chan struct{})}
		close(j.done)
		s.jobs[id] = j
		s.doneOrder = append(s.doneOrder, id)
	}
	s.evictDoneLocked(now)
	resumed := 0
	for _, rj := range rep.Pending {
		j := &Job{
			ID: rj.ID, Spec: rj.Spec, resume: rj.Resume,
			state: StateQueued, submitted: rj.Submitted,
			done: make(chan struct{}),
		}
		if j.submitted.IsZero() {
			j.submitted = now
		}
		s.jobs[j.ID] = j
		s.queue = append(s.queue, j)
		if rj.Resume != nil {
			resumed++
			// Journal the resumption so the log records that this incarnation
			// picked up at a checkpoint, not iteration 0. Replay ignores
			// resume records, so re-journaling cannot double-run the job.
			if err := jn.Resume(rj.ID, rj.Resume.Iter); err != nil {
				s.cfg.Log("wal: journal resume of %s: %v", rj.ID, err)
			}
		}
	}
	if mt := jn.Metrics(); mt.RecordsReplayed > 0 || mt.RecordsTruncated > 0 {
		s.cfg.Log("wal: replayed %d record(s) in %v (%d truncation(s)): %d done, %d requeued, %d resuming from a checkpoint",
			mt.RecordsReplayed, time.Duration(mt.RecoveryNS), mt.RecordsTruncated,
			len(rep.DoneOrder), len(rep.Pending), resumed)
	}
	if rep.Skipped > 0 {
		s.cfg.Log("wal: skipped %d undecodable record(s) (version skew?)", rep.Skipped)
	}
	return nil
}

// Runtime exposes the shared runtime (tests assert on its stats).
func (s *Server) Runtime() *taskrt.Runtime { return s.rt }

// Submit validates and enqueues one job. It returns the queued job, or
// an error: a validation error (reject with 400/exit 2 — same Validate
// the CLI runs), ErrQueueFull, or ErrDraining (both retryable).
func (s *Server) Submit(spec jobspec.Spec) (*Job, error) {
	s.metrics.Submitted.Inc()
	if err := spec.Validate(); err != nil {
		s.metrics.RejectedInvalid.Inc()
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metrics.RejectedDraining.Inc()
		return nil, ErrDraining
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.metrics.RejectedFull.Inc()
		return nil, ErrQueueFull
	}
	s.nextID++
	j := &Job{
		ID:        fmt.Sprintf("job-%d", s.nextID),
		Spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if s.journal != nil {
		// Journal before acknowledging: a job the log cannot make durable
		// must not be accepted (the client would believe it survives a
		// crash when it wouldn't).
		if err := s.journal.Accept(j.ID, j.Spec, j.submitted); err != nil {
			s.nextID--
			s.mu.Unlock()
			s.cfg.Log("wal: journal accept: %v", err)
			return nil, fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	s.jobs[j.ID] = j
	s.queue = append(s.queue, j)
	s.cond.Signal()
	s.mu.Unlock()
	return j, nil
}

// Job looks up a submitted job by ID. Unknown ids — never submitted,
// or completed and since evicted by the retention policy — report
// false.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictDoneLocked(time.Now())
	j, ok := s.jobs[id]
	return j, ok
}

// evictDoneLocked enforces the completed-job retention policy: drop
// jobs older than RetainTTL (when set), then the oldest-completed past
// the RetainDone bound. Queued and running jobs are never evicted.
// Called with s.mu held.
func (s *Server) evictDoneLocked(now time.Time) {
	evict := func(id string) {
		delete(s.jobs, id)
		s.metrics.EvictedJobs.Inc()
	}
	if ttl := s.cfg.RetainTTL; ttl > 0 {
		keep := s.doneOrder[:0]
		for _, id := range s.doneOrder {
			j := s.jobs[id]
			if j == nil {
				continue
			}
			j.mu.Lock()
			expired := now.Sub(j.finished) > ttl
			j.mu.Unlock()
			if expired {
				evict(id)
			} else {
				keep = append(keep, id)
			}
		}
		for i := len(keep); i < len(s.doneOrder); i++ {
			s.doneOrder[i] = ""
		}
		s.doneOrder = keep
	}
	for len(s.doneOrder) > s.cfg.RetainDone {
		evict(s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

// Metrics returns a point-in-time snapshot of the server's counters and
// gauges.
func (s *Server) Metrics() MetricsSnapshot {
	s.mu.Lock()
	active, queued, draining := s.active, len(s.queue), s.draining
	s.mu.Unlock()
	m := &s.metrics
	snap := MetricsSnapshot{
		Submitted:        m.Submitted.Load(),
		RejectedFull:     m.RejectedFull.Load(),
		RejectedInvalid:  m.RejectedInvalid.Load(),
		RejectedDraining: m.RejectedDraining.Load(),
		Completed:        m.Completed.Load(),
		Failed:           m.Failed.Load(),
		CoalescedJobs:    m.CoalescedJobs.Load(),
		Batches:          m.Batches.Load(),
		ErrsDropped:      m.ErrsDropped.Load(),
		EvictedJobs:      m.EvictedJobs.Load(),
		Active:           active,
		Queued:           queued,
		Sessions:         s.rt.Sessions(),
		Draining:         draining,
		Runtime:          s.rt.Stats(),
	}
	st := m.SolveTime.Snapshot()
	snap.SolveTimeNS = int64(st.Total)
	snap.MeanSolveNS = int64(st.Mean())
	qt := m.QueueTime.Snapshot()
	snap.QueueTimeNS = int64(qt.Total)
	snap.MeanQueueWaitNS = int64(qt.Mean())
	if s.journal != nil {
		wm := s.journal.Metrics()
		snap.WAL = &wm
	}
	return snap
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain shuts the server down gracefully: new submissions are rejected
// with ErrDraining, jobs still queued complete immediately with a
// retryable rejection result, and Drain returns once every in-flight
// solve has finished. With a journal, queued jobs are persisted rather
// than lost: they still finish in-memory with the retryable rejection
// (this process won't run them), but no terminal record is journaled,
// so the next start replays and runs them. Safe to call more than
// once.
func (s *Server) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		rejected := s.queue
		s.queue = nil
		for _, j := range rejected {
			s.finishJob(j, &JobResult{Err: ErrDraining.Error(), Retryable: true}, time.Time{})
			s.metrics.RejectedDraining.Inc()
		}
		if len(rejected) > 0 {
			if s.journal != nil {
				s.cfg.Log("drain: persisted %d queued job(s) to the journal for the next start", len(rejected))
			} else {
				s.cfg.Log("drain: rejected %d queued job(s) as retryable", len(rejected))
			}
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.workers.Wait()
	s.rt.Drain()
	if s.journal != nil {
		s.journalClose.Do(func() {
			if err := s.journal.Close(); err != nil {
				s.cfg.Log("wal: close journal: %v", err)
			}
		})
	}
}

// finishJob moves j to StateDone. Called with s.mu held or before the
// job is visible to workers.
func (s *Server) finishJob(j *Job, res *JobResult, started time.Time) {
	j.mu.Lock()
	j.state = StateDone
	j.result = res
	j.started = started
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// worker drains the queue: pop the head (FIFO), claim coalescible
// followers, run the group in one fresh session, repeat.
func (s *Server) worker(id int) {
	defer s.workers.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.draining {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.draining {
			s.mu.Unlock()
			return
		}
		group := s.claimGroupLocked()
		s.active++
		s.mu.Unlock()

		now := time.Now()
		for _, j := range group {
			j.mu.Lock()
			j.state = StateRunning
			j.started = now
			j.mu.Unlock()
			s.metrics.QueueTime.Observe(now.Sub(j.Snapshot().Submitted))
		}
		s.runGroup(id, group)

		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}
}

// claimGroupLocked pops the queue head plus any compatible followers
// (same operator, same solve parameters, plain solve) up to CoalesceMax.
// Non-matching jobs keep their queue positions — coalescing never
// reorders strangers, so FIFO fairness holds for everyone else.
func (s *Server) claimGroupLocked() []*Job {
	head := s.queue[0]
	s.queue = s.queue[1:]
	group := []*Job{head}
	// A resumed job owns its session outright: its solution vector is
	// pre-seeded from the checkpoint, which the block-diagonal batch
	// layout cannot express. (Specs that checkpoint are non-coalescible
	// anyway — this guards the invariant, not a reachable case.)
	if s.cfg.CoalesceMax <= 1 || !coalescible(head.Spec) || head.resume != nil {
		return group
	}
	key := coalesceKey(head.Spec)
	rest := s.queue[:0]
	for _, j := range s.queue {
		if len(group) < s.cfg.CoalesceMax && coalescible(j.Spec) && coalesceKey(j.Spec) == key {
			group = append(group, j)
		} else {
			rest = append(rest, j)
		}
	}
	// Zero the tail so claimed jobs don't linger in the backing array.
	for i := len(rest); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = rest
	return group
}

// coalescible reports whether a job may share a planner with strangers:
// a plain solve (no fault plan, no resilience, no SDC detection, no
// retry/watchdog knobs) by a method whose joint block-system iteration
// is equivalent to solving each system alone. Preconditioned and
// recycling methods keep their own planner; anything with per-job
// failure-handling semantics must own its session outright.
func coalescible(sp jobspec.Spec) bool {
	switch sp.Solver {
	case "cg", "bicgstab", "minres", "bicg", "cgs":
	default:
		return false
	}
	return sp.Faults == "" && sp.Retries <= 1 && sp.CheckpointEvery == 0 &&
		!sp.DetectSDC && sp.Watchdog == 0 && sp.ReplaceEvery == 0
}

// coalesceKey groups jobs that can share one multi-RHS planner: same
// matrix (hence, through the server's matrix cache, the same object and
// the same operator fingerprint), same method and storage format, same
// stopping rule, same partition.
func coalesceKey(sp jobspec.Spec) string {
	return fmt.Sprintf("%s|%s|%s|%g|%d|%d", sp.Matrix, sp.Solver, sp.Format, sp.Tol, sp.MaxIter, sp.Pieces)
}

// matrix returns the shared loaded matrix for a spec string, loading it
// on first use. Concurrent callers share one load.
func (s *Server) matrix(key string) (*sparse.CSR, error) {
	s.mu.Lock()
	e := s.matrices[key]
	if e == nil {
		e = &matrixEntry{}
		s.matrices[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.a, e.err = jobspec.LoadMatrix(key) })
	return e.a, e.err
}

// recycleCache returns the matrix's shared recycle cache. Jobs solving
// the same operator with gcrodr warm-start from each other's deflation
// spaces; different operators never share (distinct fingerprints would
// miss anyway — this just keeps each cache's LRU pressure local).
func (s *Server) recycleCache(key string) *solvers.RecycleCache {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.caches[key]
	if c == nil {
		c = solvers.NewRecycleCache()
		s.caches[key] = c
	}
	return c
}

// batchNNZBudget caps the storage a coalesced batch may tile: BlockDiag
// owns k× the operator's nonzeros, so chunk width is bounded by
// budget/nnz. Claim time cannot enforce this — the matrix may not be
// loaded yet — so runGroup re-chunks an oversized group.
const batchNNZBudget = 8 << 20

// runGroup executes one claimed group — solo or coalesced — completing
// every member job. Each chunk runs in its own session so a failure in
// one batch cannot pollute the error window of the next.
func (s *Server) runGroup(worker int, group []*Job) {
	spec := group[0].Spec
	a, err := s.matrix(spec.Matrix)
	if err != nil {
		for _, j := range group {
			s.completeJob(j, &JobResult{Solver: j.Spec.Solver, Err: err.Error()})
		}
		return
	}
	maxK := len(group)
	if nnz := a.NNZ(); nnz > 0 && int64(maxK)*nnz > batchNNZBudget {
		maxK = int(batchNNZBudget / nnz)
		if maxK < 1 {
			maxK = 1
		}
	}
	for len(group) > 0 {
		chunk := group
		if len(chunk) > maxK {
			chunk = group[:maxK]
		}
		group = group[len(chunk):]
		sess := s.rt.NewSession(chunk[0].ID)
		start := time.Now()
		if len(chunk) == 1 {
			j := chunk[0]
			opt := Options{
				Session: sess,
				Cache:   s.recycleCache(j.Spec.Matrix),
				Tracing: s.cfg.Tracing,
				Resume:  j.resume,
			}
			if s.journal != nil && j.Spec.CheckpointEvery > 0 {
				id := j.ID
				opt.CheckpointSink = func(iter int, residual float64, x []float64, basis string) {
					if err := s.journal.Checkpoint(id, iter, residual, x, basis); err != nil {
						s.cfg.Log("wal: journal checkpoint for %s: %v", id, err)
					}
				}
			}
			if j.resume != nil {
				s.cfg.Log("resume: %s restarts from verified checkpoint at iteration %d (residual %.3e)",
					j.ID, j.resume.Iter, j.resume.Residual)
			}
			out := RunSolve(a, j.Spec, opt)
			s.metrics.SolveTime.Observe(time.Since(start))
			s.completeJob(j, &out)
		} else {
			s.metrics.Batches.Inc()
			s.metrics.CoalescedJobs.Add(int64(len(chunk)))
			s.cfg.Log("coalesce: %d %s jobs on %s into one block-diagonal multi-RHS solve",
				len(chunk), spec.Solver, spec.Matrix)
			results := runBatch(a, chunk, sess, s.cfg.Tracing)
			s.metrics.SolveTime.ObserveN(time.Since(start), int64(len(chunk)))
			for i, j := range chunk {
				s.completeJob(j, results[i])
			}
		}
		sess.Close()
	}
}

// completeJob finishes one job and updates the outcome counters. With
// a journal, the terminal state is journaled first: once the done
// record is durable, replay skips the job forever. A crash between the
// solve and the done record merely re-runs a deterministic solve.
func (s *Server) completeJob(j *Job, res *JobResult) {
	if s.journal != nil {
		if err := s.journal.Done(j.ID, res); err != nil {
			s.cfg.Log("wal: journal done for %s: %v", j.ID, err)
		}
	}
	s.metrics.Completed.Inc()
	if res.Err != "" || res.Breakdown != "" || !res.Converged {
		s.metrics.Failed.Inc()
	}
	s.metrics.ErrsDropped.Add(res.Session.ErrsDropped)
	started := j.Snapshot().Started
	s.mu.Lock()
	s.finishJob(j, res, started)
	s.doneOrder = append(s.doneOrder, j.ID)
	s.evictDoneLocked(time.Now())
	s.mu.Unlock()
}

// runBatch solves the group's systems jointly as one concatenated
// block-diagonal system: x and b of length k·n over diag(a, …, a), one
// (sol, rhs) region pair partitioned into the spec's piece count. The
// concatenation is what amortizes scheduling, not just planning —
// per-piece task overhead is most of a small solve's wall time, and the
// aliased one-pair-per-RHS layout launches k× the tasks per sweep. Here
// a k-wide batch launches exactly as many tasks per iteration as one
// solo solve, each doing k× the arithmetic; that division of the launch
// budget is where the server's aggregate throughput over sequential
// one-shot runs comes from. The cost is k× operator storage (BlockDiag
// tiles the arrays), which runGroup bounds before forming a batch. The
// joint residual norm reaching tol implies each member's residual did;
// each job still gets its own host-recomputed true residual as
// independent evidence.
func runBatch(a *sparse.CSR, group []*Job, sess *taskrt.Session, tracing bool) []*JobResult {
	spec := group[0].Spec
	rows, _ := sparse.Dims(a)
	n := int(rows)
	k := len(group)

	results := make([]*JobResult, k)
	bigX := make([]float64, k*n)
	bigB := make([]float64, k*n)
	for i, j := range group {
		copy(bigB[i*n:(i+1)*n], j.Spec.BuildRHS(a, n))
	}
	bigA := sparse.BlockDiag(a, k)
	brows := int64(k) * rows

	p := core.NewPlanner(core.Config{Machine: machine.Lassen(1), Session: sess})
	si := p.AddSolVector(bigX, index.EqualPartition(index.NewSpace("D", brows), spec.Pieces))
	ri := p.AddRHSVector(bigB, index.EqualPartition(index.NewSpace("R", brows), spec.Pieces))
	if canon, _ := sparse.CanonicalFormat(spec.Format); canon == "Auto" {
		p.AddOperatorAuto(bigA, si, ri)
	} else {
		m, err := sparse.ConvertNamed(bigA, spec.Format)
		if err != nil {
			for i, jj := range group {
				results[i] = &JobResult{Solver: jj.Spec.Solver, N: n, NNZ: a.NNZ(), Err: err.Error()}
			}
			return results
		}
		p.AddOperator(m, si, ri)
	}
	p.Finalize()
	p.SetTracing(tracing)

	start := time.Now()
	res := solvers.Solve(solvers.New(spec.Solver, p), spec.Tol, spec.MaxIter)
	p.Drain()
	elapsed := time.Since(start)

	var errStr string
	if err := sess.Err(); err != nil {
		errStr = err.Error()
	}
	stats := sess.Stats()
	for i, j := range group {
		x := bigX[i*n : (i+1)*n : (i+1)*n]
		b := bigB[i*n : (i+1)*n : (i+1)*n]
		out := &JobResult{
			Solver: j.Spec.Solver, N: n, NNZ: a.NNZ(),
			Iterations: res.Iterations,
			Residual:   res.Residual, // joint block-system norm
			Converged:  res.Converged,
			Coalesced:  len(group),
			Elapsed:    elapsed,
			Err:        errStr,
			Session:    stats,
			X:          x,
		}
		if res.Breakdown != nil {
			out.Breakdown = res.Breakdown.Error()
		}
		out.TrueResidual = HostResidual(a, x, b)
		// The joint norm over-reports each member's residual; trust the
		// per-system recomputation for the member's own convergence claim.
		if !math.IsNaN(out.TrueResidual) && out.TrueResidual <= spec.Tol {
			out.Converged = true
		}
		results[i] = out
	}
	return results
}
