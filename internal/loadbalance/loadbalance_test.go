package loadbalance

import (
	"math"
	"testing"
)

func twoNodeTiles() []Tile {
	return []Tile{
		{InNode: 0, OutNode: 1, Owner: 0},
		{InNode: 0, OutNode: 1, Owner: 0},
		{InNode: 1, OutNode: 0, Owner: 1},
	}
}

func TestGiveawayProbability(t *testing.T) {
	b := New(1.0, 0.5, twoNodeTiles(), 1)
	if p := b.GiveawayProbability(0.4); p != 0 {
		t.Errorf("faster than reference: p = %g, want 0", p)
	}
	if p := b.GiveawayProbability(0.5); p != 0 {
		t.Errorf("at reference: p = %g, want 0", p)
	}
	p1 := b.GiveawayProbability(1.0)
	p2 := b.GiveawayProbability(5.0)
	if p1 <= 0 || p1 >= 1 {
		t.Errorf("moderate overload: p = %g, want in (0,1)", p1)
	}
	if p2 <= p1 {
		t.Error("probability must grow with overload")
	}
	want := 1 - math.Exp(-0.5)
	if math.Abs(p1-want) > 1e-12 {
		t.Errorf("p(1.0) = %g, want %g", p1, want)
	}
}

func TestRebalanceMovesToOtherCandidate(t *testing.T) {
	tiles := twoNodeTiles()
	b := New(1000, 0.1, tiles, 7) // high beta: overloaded nodes always shed
	// Node 0 hugely overloaded, node 1 fine.
	moved := b.Rebalance([]float64{10, 0.05})
	if moved != 2 {
		t.Fatalf("moved = %d, want the 2 tiles owned by node 0", moved)
	}
	for i, tile := range b.Tiles() {
		if tile.Owner != 1 {
			t.Errorf("tile %d owner = %d, want 1", i, tile.Owner)
		}
	}
	if b.Moves() != 2 {
		t.Errorf("cumulative moves = %d", b.Moves())
	}
	// Ownership always stays within the candidate pair.
	b.Rebalance([]float64{0.05, 10})
	for i, tile := range b.Tiles() {
		if tile.Owner != tile.InNode && tile.Owner != tile.OutNode {
			t.Fatalf("tile %d escaped its candidate pair", i)
		}
	}
}

func TestRebalanceNoMovesWhenFast(t *testing.T) {
	b := New(1, 1.0, twoNodeTiles(), 3)
	if moved := b.Rebalance([]float64{0.5, 0.5}); moved != 0 {
		t.Fatalf("moved = %d under no overload", moved)
	}
}

func TestRebalanceDeterministicBySeed(t *testing.T) {
	times := []float64{2, 0.1}
	a := New(1, 0.5, twoNodeTiles(), 42)
	b := New(1, 0.5, twoNodeTiles(), 42)
	for round := 0; round < 10; round++ {
		if a.Rebalance(times) != b.Rebalance(times) {
			t.Fatal("same seed must give same migration sequence")
		}
	}
}

func TestNewPanicsOnBadOwner(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1, 1, []Tile{{InNode: 0, OutNode: 1, Owner: 5}}, 1)
}

func TestNodeLoad(t *testing.T) {
	l := NewNodeLoad(4, 40, 9)
	for _, k := range l.Occupied {
		if k != 20 {
			t.Fatalf("initial load = %d, want 20", k)
		}
	}
	if s := l.AverageSlowdown(); s != 2 {
		t.Fatalf("average slowdown = %g, want 2", s)
	}
	l.Randomize()
	for _, k := range l.Occupied {
		if k < 0 || k >= 40 {
			t.Fatalf("occupied = %d out of [0,39]", k)
		}
	}
	for i, s := range l.Slowdowns() {
		want := 40.0 / float64(40-l.Occupied[i])
		if s != want {
			t.Fatalf("slowdown[%d] = %g, want %g", i, s, want)
		}
	}
}

func TestNodeLoadVariesAcrossRounds(t *testing.T) {
	l := NewNodeLoad(8, 40, 11)
	l.Randomize()
	first := append([]int{}, l.Occupied...)
	different := false
	for round := 0; round < 5 && !different; round++ {
		l.Randomize()
		for i := range first {
			if l.Occupied[i] != first[i] {
				different = true
			}
		}
	}
	if !different {
		t.Fatal("randomization never changed the load")
	}
}
