// Package loadbalance implements the dynamic load-balancing strategy of
// the paper's Section 6.3: matrix tiles of a multi-operator system
// migrate between their two potential owners in response to per-node
// timing feedback, while a stochastic background load competes for each
// node's cores.
//
// The paper's rule: after every 10th CG iteration, each node i compares
// its execution time T_i to a reference T_0 (the time under an average
// background load) and, when slower, gives each tile it owns away with a
// probability controlled by β. (The probability as printed in the paper,
// min(e^{β(T_i−T_0)}, 1), is identically 1 whenever T_i > T_0, which
// would make β — described as "the rate of adaptation" — inert; this
// implementation uses 1 − e^{−β(T_i−T_0)}, the standard thermodynamic
// acceptance form with the stated limiting behavior. The deviation is
// recorded in DESIGN.md.) A tile's give-away target is its other
// potential owner — the node holding the tile's input or output vector
// piece — so no global communication is involved.
package loadbalance

import (
	"math"
	"math/rand"
)

// Tile is one matrix tile A_{i,j} of the multi-operator system: it may
// live on the node owning the input piece D_j or the node owning the
// output piece D_i.
type Tile struct {
	// InNode owns the input vector piece D_j.
	InNode int
	// OutNode owns the output vector piece D_i.
	OutNode int
	// Owner is the node currently executing the tile's multiply-add;
	// it is always InNode or OutNode.
	Owner int
}

// Balancer holds the tile ownership table and applies the thermodynamic
// giveaway rule.
type Balancer struct {
	// Beta is the adaptation rate in 1/seconds (the paper uses
	// 10⁻³ ms⁻¹ = 1 s⁻¹).
	Beta float64
	// T0 is the reference execution time in seconds (precomputed under
	// an average background load).
	T0 float64

	tiles []Tile
	rng   *rand.Rand
	moves int
}

// New builds a balancer over the given tiles. The tile slice is retained
// and mutated by Rebalance. seed makes runs reproducible.
func New(beta, t0 float64, tiles []Tile, seed int64) *Balancer {
	for i, t := range tiles {
		if t.Owner != t.InNode && t.Owner != t.OutNode {
			panic("loadbalance: tile owner must be one of its two candidates")
		}
		_ = i
	}
	return &Balancer{
		Beta:  beta,
		T0:    t0,
		tiles: tiles,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Owner returns the node currently owning tile op.
func (b *Balancer) Owner(op int) int { return b.tiles[op].Owner }

// Tiles returns the live tile table (not a copy).
func (b *Balancer) Tiles() []Tile { return b.tiles }

// Moves returns the cumulative number of tile migrations.
func (b *Balancer) Moves() int { return b.moves }

// GiveawayProbability returns the probability that a node with execution
// time t gives away one tile.
func (b *Balancer) GiveawayProbability(t float64) float64 {
	if t <= b.T0 {
		return 0
	}
	return 1 - math.Exp(-b.Beta*(t-b.T0))
}

// Rebalance applies one giveaway round: nodeTime[n] is node n's most
// recent per-iteration execution time. Each tile whose owner is slower
// than the reference flips to its other candidate with the giveaway
// probability. It returns the number of tiles moved this round.
func (b *Balancer) Rebalance(nodeTime []float64) int {
	moved := 0
	for i := range b.tiles {
		t := &b.tiles[i]
		owner := t.Owner
		if owner >= len(nodeTime) {
			continue
		}
		p := b.GiveawayProbability(nodeTime[owner])
		if p > 0 && b.rng.Float64() < p {
			if t.Owner == t.InNode {
				t.Owner = t.OutNode
			} else {
				t.Owner = t.InNode
			}
			if t.Owner != owner {
				moved++
			}
		}
	}
	b.moves += moved
	return moved
}

// NodeLoad models the stochastic background load of the experiment: each
// node has cores ∈ [0, Cores-1] occupied by a competing task, re-drawn
// uniformly at a fixed iteration period.
type NodeLoad struct {
	// Cores is the core count per node (40 on Lassen).
	Cores int
	// Occupied[n] is the number of cores the background task holds on
	// node n.
	Occupied []int
	rng      *rand.Rand
}

// NewNodeLoad builds a load generator for nodes nodes, starting from an
// average load (Cores/2 occupied everywhere).
func NewNodeLoad(nodes, cores int, seed int64) *NodeLoad {
	occ := make([]int, nodes)
	for i := range occ {
		occ[i] = cores / 2
	}
	return &NodeLoad{Cores: cores, Occupied: occ, rng: rand.New(rand.NewSource(seed))}
}

// Randomize re-draws every node's occupied cores uniformly in
// [0, Cores-1], the paper's every-100th-iteration perturbation.
func (l *NodeLoad) Randomize() {
	for i := range l.Occupied {
		l.Occupied[i] = l.rng.Intn(l.Cores)
	}
}

// Slowdowns returns the per-node compute multiplier Cores/(Cores−occupied)
// for the simulator's NodeSlowdown option.
func (l *NodeLoad) Slowdowns() []float64 {
	out := make([]float64, len(l.Occupied))
	for i, k := range l.Occupied {
		out[i] = float64(l.Cores) / float64(l.Cores-k)
	}
	return out
}

// AverageSlowdown returns the multiplier under the reference load
// (half the cores occupied), used to precompute T0.
func (l *NodeLoad) AverageSlowdown() float64 {
	return float64(l.Cores) / float64(l.Cores-l.Cores/2)
}
