package solvers

import "kdrsolvers/internal/core"

// Chebyshev is the Chebyshev semi-iteration for SPD systems whose
// spectrum lies in a known interval [λmin, λmax]. Unlike the Krylov
// methods here it needs no inner products at all — its iteration has no
// global synchronization, the extreme case of the communication
// avoidance that the exascale report cited by the paper calls for — at
// the price of requiring eigenvalue bounds up front. The implementation
// follows Saad, "Iterative Methods for Sparse Linear Systems",
// Algorithm 12.1.
//
// Its ConvergenceMeasure does launch a dot product, but only when the
// driver asks; a fixed-iteration run is reduction-free.
type Chebyshev struct {
	p      *core.Planner
	r, z   core.VecID
	d      core.VecID // current update direction
	delta  float64    // (λmax − λmin)/2
	sigma1 float64    // θ/δ with θ = (λmax + λmin)/2
	rho    float64    // recurrence state (host scalar, no data deps)
	k      int
}

// NewChebyshev builds a Chebyshev solver for a spectrum contained in
// [lmin, lmax], 0 < lmin ≤ lmax.
func NewChebyshev(p *core.Planner, lmin, lmax float64) *Chebyshev {
	if !p.IsSquare() {
		panic("solvers: Chebyshev requires a square system")
	}
	if lmin <= 0 || lmax < lmin {
		panic("solvers: Chebyshev requires 0 < lmin <= lmax")
	}
	theta := (lmax + lmin) / 2
	delta := (lmax - lmin) / 2
	if delta == 0 {
		delta = theta / 2 // single-point spectrum: any contraction works
	}
	s := &Chebyshev{
		p: p, delta: delta, sigma1: theta / delta,
		r: p.AllocateWorkspace(core.RhsShape),
		z: p.AllocateWorkspace(core.RhsShape),
		d: p.AllocateWorkspace(core.SolShape),
	}
	s.rho = 1 / s.sigma1
	p.BeginPhase("chebyshev.init")
	residualInit(p, s.r)
	// d₀ = r/θ.
	p.Zero(s.d)
	p.AxpyConst(s.d, 1/theta, s.r)
	return s
}

// Name implements Solver.
func (s *Chebyshev) Name() string { return "Chebyshev" }

// ConvergenceMeasure implements Solver. The dot product is launched on
// demand — the iteration itself is reduction-free.
func (s *Chebyshev) ConvergenceMeasure() *core.Scalar {
	return s.p.Dot(s.r, s.r)
}

// Step implements Solver: x += d, r −= A·d, then the three-term update
// of d. The recurrence coefficients are host constants — no scalar
// tasks, no reductions, no global synchronization.
func (s *Chebyshev) Step() {
	p := s.p
	p.BeginPhase("chebyshev.step")
	defer p.TraceEnd(p.TraceBegin("chebyshev.step"))
	p.AxpyConst(core.SOL, 1, s.d)
	p.Matmul(s.z, s.d)
	p.AxpyConst(s.r, -1, s.z)

	rho1 := 1 / (2*s.sigma1 - s.rho)
	// d ← (ρ₁ρ) d + (2ρ₁/δ) r.
	p.ScalConst(s.d, rho1*s.rho)
	p.AxpyConst(s.d, 2*rho1/s.delta, s.r)
	s.rho = rho1
	s.k++
}
