package solvers

import (
	"math"

	"kdrsolvers/internal/core"
)

// SStepCG is communication-avoiding s-step conjugate gradients
// (Chronopoulos–Gear / Hoemmen): each Step runs one *block* of s CG
// iterations against a single global reduction. The block builds the
// 2s+1 column basis V = [p, Ap, …, Aˢp, r, Ar, …, Aˢ⁻¹r] with two
// matrix-powers sweeps (no communication beyond the depth-s halo
// exchange), folds every inner product of the block into one batched
// Gram reduction G = VᵀV, and then advances the s iterations entirely
// in 2s+1-dimensional coefficient space on the host — every α, β, and
// residual norm of the block is a tiny quadratic form in G. One fused
// vector sweep at block end maps the accumulated coefficients back onto
// x, r, and p.
//
// The monomial basis [p, Ap, A²p, …] loses linear independence in
// floating point as fast as the power method converges; when the Gram
// matrix's conditioning proxy degrades, the solver switches to a Newton
// basis [(A−θ₁)p, (A−θ₂)(A−θ₁)p, …] with Leja-ordered Ritz shifts
// recovered for free from the α/β history via the CG–Lanczos
// correspondence.
type SStepCG struct {
	p     *core.Planner
	s     int
	planP *core.PowersPlan // depth s, builds the p-polynomial block
	planR *core.PowersPlan // depth s−1, builds the r-polynomial block
	pv    core.VecID       // current direction (basis column P₀)
	rv    core.VecID       // current residual (basis column R₀)
	pNext core.VecID
	rNext core.VecID
	pws   []core.VecID // P₁ … P_s
	rws   []core.VecID // R₁ … R_{s−1}
	res   *core.Scalar
	flag  breakdownFlag

	// shifts is nil for the monomial basis; after the Newton switch it
	// holds the s Leja-ordered Ritz shifts (θ₁ … θ_s).
	shifts []float64
	alphas []float64 // coefficient history for Ritz recovery
	betas  []float64
	// switches counts monomial→Newton basis changes (observable by tests
	// and telemetry).
	switches int
}

// monomialCondLimit is the Gram-diagonal growth ratio beyond which the
// monomial basis is declared numerically spent: ‖Aᵏp‖²/‖p‖² grows like
// λ_max^{2k}, and once the ratio eats most of a double's 53 bits the
// coefficient-space recurrences stop resembling CG.
const monomialCondLimit = 1e13

// NewSStepCG builds an s-step CG solver on a finalized SPD system.
// The registry default s = 4 trades one reduction per 4 iterations
// against a 9-column Gram basis.
func NewSStepCG(p *core.Planner, s int) *SStepCG {
	if s < 2 {
		panic("solvers: s-step CG needs a block size of at least 2")
	}
	sv := &SStepCG{
		p: p, s: s,
		planP: core.NewPowersPlan(p, s),
		planR: core.NewPowersPlan(p, s-1),
		pv:    p.AllocateWorkspace(core.RhsShape),
		rv:    p.AllocateWorkspace(core.RhsShape),
		pNext: p.AllocateWorkspace(core.RhsShape),
		rNext: p.AllocateWorkspace(core.RhsShape),
	}
	for i := 0; i < s; i++ {
		sv.pws = append(sv.pws, p.AllocateWorkspace(core.RhsShape))
	}
	for i := 0; i < s-1; i++ {
		sv.rws = append(sv.rws, p.AllocateWorkspace(core.RhsShape))
	}
	p.BeginPhase("sstep.init")
	residualInit(p, sv.rv)
	sv.res = p.Dot(sv.rv, sv.rv)
	p.Copy(sv.pv, sv.rv)
	return sv
}

// Name implements Solver.
func (s *SStepCG) Name() string { return "S-Step CG" }

// ConvergenceMeasure implements Solver: the coefficient-space ‖r‖² after
// the last completed block.
func (s *SStepCG) ConvergenceMeasure() *core.Scalar { return s.res }

// Breakdown implements BreakdownChecker.
func (s *SStepCG) Breakdown() error { return s.flag.get() }

// BasisSwitches reports how many times the solver abandoned the
// monomial basis for a Newton basis.
func (s *SStepCG) BasisSwitches() int { return s.switches }

// Step implements Solver: one s-iteration block — two powers sweeps,
// one Gram reduction, s host-side coefficient iterations, one fused
// basis combination.
func (s *SStepCG) Step() {
	p := s.p
	p.BeginPhase("sstep.basis")
	tr := p.TraceBegin("sstep.block")

	// V = [P₀ … P_s, R₀ … R_{s−1}] with P₀ = p, R₀ = r.
	v := make([]core.VecID, 0, 2*s.s+1)
	v = append(v, s.pv)
	v = append(v, s.pws...)
	v = append(v, s.rv)
	v = append(v, s.rws...)
	var shiftsR []float64
	if s.shifts != nil {
		shiftsR = s.shifts[:s.s-1]
	}
	s.planP.Sweep(s.pws, s.pv, s.shifts)
	s.planR.Sweep(s.rws, s.rv, shiftsR)
	g := p.Gram(v...)

	p.BeginPhase("sstep.update")
	// Pull the Gram matrix (the block's single synchronization) and run
	// the s CG iterations in coefficient space. On virtual planners the
	// values read as zero, the recurrence freezes at zero coefficients,
	// and the launched structure below stays identical to a real run.
	d := 2*s.s + 1
	gm := make([][]float64, d)
	for i := 0; i < d; i++ {
		gm[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			gm[i][j] = g[i][j].Value()
		}
	}
	xc, rc, pc, rr := s.coefficientBlock(gm)

	// One fused sweep maps the block back to vector space:
	// x += Σ xc_k V_k, r' = Σ rc_k V_k, p' = Σ pc_k V_k. Zero
	// coefficients still participate so real and virtual planners record
	// identical graphs.
	p.Zero(s.rNext)
	p.Zero(s.pNext)
	ups := make([]core.VecUpdate, 0, 3*d)
	for k, vk := range v {
		ups = append(ups,
			core.VecUpdate{Kind: core.UpdAxpy, Dst: core.SOL, Alpha: p.Constant(xc[k]), Src: vk},
			core.VecUpdate{Kind: core.UpdAxpy, Dst: s.rNext, Alpha: p.Constant(rc[k]), Src: vk},
			core.VecUpdate{Kind: core.UpdAxpy, Dst: s.pNext, Alpha: p.Constant(pc[k]), Src: vk},
		)
	}
	p.FusedUpdate(ups...)
	s.rv, s.rNext = s.rNext, s.rv
	s.pv, s.pNext = s.pNext, s.pv
	s.res = p.Constant(math.Max(rr, 0))
	p.TraceEnd(tr)
}

// coefficientBlock advances s CG iterations in the 2s+1-dimensional
// coefficient space of the block basis, entirely from the Gram matrix:
// returns the solution-update, residual, and direction coefficient
// vectors and the final ‖r‖².
func (s *SStepCG) coefficientBlock(gm [][]float64) (xc, rc, pc []float64, rr float64) {
	d := 2*s.s + 1
	xc = make([]float64, d)
	pc = make([]float64, d)
	rc = make([]float64, d)
	pc[0] = 1     // p = P₀
	rc[s.s+1] = 1 // r = R₀
	rr = quadForm(gm, rc, rc)
	if !isFinite(rr) || rr <= 0 {
		// Converged (or virtual): the block is a structural no-op — the
		// identity coefficients carry r and p over unchanged.
		return xc, rc, pc, rr
	}
	condFailed := false
	for j := 0; j < s.s; j++ {
		w := s.applyBasisOp(pc)
		den := quadForm(gm, pc, w)
		if !isFinite(den) {
			condFailed = true
			break
		}
		if den == 0 {
			s.flag.report("S-Step CG", "pᵀAp")
			break
		}
		alpha := rr / den
		rrNew := rr
		rcNew := make([]float64, d)
		for k := 0; k < d; k++ {
			rcNew[k] = rc[k] - alpha*w[k]
		}
		rrNew = quadForm(gm, rcNew, rcNew)
		if !isFinite(rrNew) || !isFinite(alpha) {
			condFailed = true
			break
		}
		for k := 0; k < d; k++ {
			xc[k] += alpha * pc[k]
		}
		copy(rc, rcNew)
		if rrNew <= 0 {
			// Exact convergence inside the block.
			s.alphas = append(s.alphas, alpha)
			rr = rrNew
			break
		}
		beta := rrNew / rr
		for k := 0; k < d; k++ {
			pc[k] = rc[k] + beta*pc[k]
		}
		s.alphas = append(s.alphas, alpha)
		s.betas = append(s.betas, beta)
		rr = rrNew
	}
	s.maybeSwitchBasis(gm, condFailed)
	return xc, rc, pc, rr
}

// applyBasisOp multiplies a coefficient vector by the basis-change
// matrix B (the coefficient-space image of A): A·P_k = P_{k+1} + θ_{k+1}
// P_k and likewise for the R block. The degree argument guarantees the
// top columns (P_s, R_{s−1}) carry zero coefficients whenever this is
// called, so the image stays representable.
func (s *SStepCG) applyBasisOp(v []float64) []float64 {
	d := 2*s.s + 1
	w := make([]float64, d)
	shift := func(i int) float64 {
		if s.shifts == nil {
			return 0
		}
		return s.shifts[i]
	}
	for i := 0; i < s.s; i++ { // P block: columns 0..s
		if v[i] != 0 {
			w[i+1] += v[i]
			w[i] += shift(i) * v[i]
		}
	}
	base := s.s + 1
	for i := 0; i < s.s-1; i++ { // R block: columns s+1..2s
		if v[base+i] != 0 {
			w[base+i+1] += v[base+i]
			w[base+i] += shift(i) * v[base+i]
		}
	}
	return w
}

// maybeSwitchBasis abandons the monomial basis when its conditioning
// proxy — the growth of the Gram diagonal across the P block — exceeds
// monomialCondLimit, or when the coefficient recurrences produced
// non-finite values outright. The replacement Newton shifts are the
// Leja-ordered Ritz values recovered from the α/β history; with no
// history yet the switch waits for the next block.
func (s *SStepCG) maybeSwitchBasis(gm [][]float64, condFailed bool) {
	if s.p.Virtual() || s.shifts != nil || len(s.alphas) == 0 {
		return
	}
	if !condFailed {
		lo, hi := math.Inf(1), 0.0
		for k := 0; k <= s.s; k++ {
			dk := gm[k][k]
			if !isFinite(dk) {
				condFailed = true
				break
			}
			if dk < lo {
				lo = dk
			}
			if dk > hi {
				hi = dk
			}
		}
		if !condFailed && (lo <= 0 || hi/lo <= monomialCondLimit) {
			return
		}
	}
	ritz := lejaOrder(ritzFromCG(s.alphas, s.betas))
	if len(ritz) == 0 {
		return
	}
	s.shifts = make([]float64, s.s)
	for i := range s.shifts {
		s.shifts[i] = ritz[i%len(ritz)]
	}
	s.switches++
}

// VerifyConvergence implements ConvergenceVerifier: the block measure is
// a coefficient-space recurrence that can drift from the true residual,
// so before declaring convergence the solver recomputes r = b − Ax,
// restarts its direction from the honest residual, and reports ‖r‖.
func (s *SStepCG) VerifyConvergence() float64 {
	p := s.p
	p.BeginPhase("sstep.verify")
	residualInit(p, s.rv)
	rr := p.Dot(s.rv, s.rv)
	p.Copy(s.pv, s.rv)
	s.res = rr
	return math.Sqrt(math.Max(rr.Value(), 0))
}

// ReplaceResidual implements ResidualReplacer. The s-step block measure
// lives entirely in coefficient space, so there is no recurrence vector
// to compare elementwise: drift is |est − true| between the block's
// coefficient-space estimate and the recomputed ‖b − A·x‖, and
// replacement always rebases (VerifyConvergence already restarts the
// direction from the honest residual, which is exactly the recovery a
// corrupted basis block needs).
func (s *SStepCG) ReplaceResidual(driftTol float64) ReplacementReport {
	est := math.Sqrt(math.Max(s.res.Value(), 0))
	tr := s.VerifyConvergence()
	return ReplacementReport{TrueResidual: tr, Drift: math.Abs(tr - est), Replaced: true}
}

// quadForm evaluates aᵀ G b.
func quadForm(g [][]float64, a, b []float64) float64 {
	var sum float64
	for i := range a {
		if a[i] == 0 {
			continue
		}
		var row float64
		for j := range b {
			if b[j] != 0 {
				row += g[i][j] * b[j]
			}
		}
		sum += a[i] * row
	}
	return sum
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
