package solvers

import "kdrsolvers/internal/core"

// CG is the conjugate gradient method of Hestenes and Stiefel for
// symmetric positive definite systems — the paper's Figure 7 solver,
// generalized to a nonzero initial guess.
type CG struct {
	p        *core.Planner
	pv, q, r core.VecID
	res      *core.Scalar // r·r
}

// NewCG builds a CG solver on a finalized square, unpreconditioned
// system.
func NewCG(p *core.Planner) *CG {
	if !p.IsSquare() {
		panic("solvers: CG requires a square system")
	}
	s := &CG{
		p:  p,
		pv: p.AllocateWorkspace(core.SolShape),
		q:  p.AllocateWorkspace(core.RhsShape),
		r:  p.AllocateWorkspace(core.RhsShape),
	}
	p.BeginPhase("cg.init")
	residualInit(p, s.r)
	p.Copy(s.pv, s.r)
	s.res = p.Dot(s.r, s.r)
	return s
}

// Name implements Solver.
func (s *CG) Name() string { return "CG" }

// ConvergenceMeasure implements Solver.
func (s *CG) ConvergenceMeasure() *core.Scalar { return s.res }

// Step implements Solver: one CG iteration, entirely deferred.
func (s *CG) Step() {
	p := s.p
	p.BeginPhase("cg.step")
	defer p.TraceEnd(p.TraceBegin("cg.step"))
	p.Matmul(s.q, s.pv)            // q = A p
	pq := p.Dot(s.pv, s.q)         // pᵀAp
	alpha := p.Div(s.res, pq)      // α = res / pᵀAp
	p.Axpy(core.SOL, alpha, s.pv)  // x += α p
	p.Axpy(s.r, p.Neg(alpha), s.q) // r -= α q
	newRes := p.Dot(s.r, s.r)
	beta := p.Div(newRes, s.res) // β = res' / res
	p.Xpay(s.pv, beta, s.r)      // p = r + β p
	s.res = newRes
}
