package solvers

import (
	"math"

	"kdrsolvers/internal/core"
)

// CG is the conjugate gradient method of Hestenes and Stiefel for
// symmetric positive definite systems — the paper's Figure 7 solver,
// generalized to a nonzero initial guess.
//
// The iteration runs on the planner's fused kernels: the two solution
// and residual updates and the residual dot product share one piece
// sweep (core.FusedSweep), cutting the launches per iteration by about
// a third against the per-operation formulation while computing bitwise
// identical iterates. NewCGUnfused keeps the per-operation formulation
// for ablation and benchmarks.
type CG struct {
	p        *core.Planner
	pv, q, r core.VecID
	res      *core.Scalar // r·r
	unfused  bool
}

// NewCG builds a CG solver on a finalized square, unpreconditioned
// system.
func NewCG(p *core.Planner) *CG {
	if !p.IsSquare() {
		panic("solvers: CG requires a square system")
	}
	s := &CG{
		p:  p,
		pv: p.AllocateWorkspace(core.SolShape),
		q:  p.AllocateWorkspace(core.RhsShape),
		r:  p.AllocateWorkspace(core.RhsShape),
	}
	p.BeginPhase("cg.init")
	residualInit(p, s.r)
	p.Copy(s.pv, s.r)
	s.res = p.Dot(s.r, s.r)
	return s
}

// NewCGUnfused builds a CG solver whose Step launches one task sweep
// per vector operation — the pre-fusion formulation, kept as the
// baseline the fused step is benchmarked and tested against.
func NewCGUnfused(p *core.Planner) *CG {
	s := NewCG(p)
	s.unfused = true
	return s
}

// Name implements Solver.
func (s *CG) Name() string { return "CG" }

// ConvergenceMeasure implements Solver.
func (s *CG) ConvergenceMeasure() *core.Scalar { return s.res }

// Step implements Solver: one CG iteration, entirely deferred.
func (s *CG) Step() {
	p := s.p
	p.BeginPhase("cg.step")
	defer p.TraceEnd(p.TraceBegin("cg.step"))
	if s.unfused {
		s.stepUnfused()
		return
	}
	p.Matmul(s.q, s.pv)                      // q = A p
	alpha := p.Div(s.res, p.Dot(s.pv, s.q))  // α = res / pᵀAp
	newRes := p.FusedSweep([]core.VecUpdate{ // one sweep:
		{Kind: core.UpdAxpy, Dst: core.SOL, Alpha: alpha, Src: s.pv},      // x += α p
		{Kind: core.UpdAxpy, Dst: s.r, Alpha: alpha, Neg: true, Src: s.q}, // r -= α q
	}, []core.DotPair{{V: s.r, W: s.r}})[0] //                                     res' = r·r
	beta := p.Div(newRes, s.res) // β = res' / res
	p.Xpay(s.pv, beta, s.r)      // p = r + β p
	s.res = newRes
}

// ReplaceResidual implements ResidualReplacer: compute t = b − A·x into
// the q workspace (free between steps), measure the recurrence drift
// ‖r − t‖ via one batched reduction (‖r−t‖² = r·r − 2 r·t + t·t), and
// rebase r ← t when the relative drift exceeds driftTol (always when
// driftTol <= 0). The search direction is reset to the rebased residual:
// a replacement only fires when r moved measurably, and after a large
// move the old p violates rᵀp = rᵀr, making α = rᵀr/pᵀAp no longer a
// line minimizer — keeping p can diverge. The steepest-descent restart
// costs a few iterations of conjugacy; correctness it keeps.
func (s *CG) ReplaceResidual(driftTol float64) ReplacementReport {
	p := s.p
	p.BeginPhase("cg.replace")
	residualInit(p, s.q) // q = b − A·x, the true residual
	d := p.DotBatch(
		core.DotPair{V: s.r, W: s.r},
		core.DotPair{V: s.r, W: s.q},
		core.DotPair{V: s.q, W: s.q})
	rr, rt, tt := d[0].Value(), d[1].Value(), d[2].Value()
	trueRes := math.Sqrt(math.Max(tt, 0))
	drift := math.Sqrt(math.Max(rr-2*rt+tt, 0))
	rep := ReplacementReport{TrueResidual: trueRes, Drift: drift}
	if driftTol > 0 && isFinite(drift) && drift <= driftTol*(trueRes+1) {
		return rep
	}
	p.Copy(s.r, s.q)
	p.Copy(s.pv, s.r)
	s.res = d[2]
	rep.Replaced = true
	return rep
}

// stepUnfused is the per-operation CG iteration.
func (s *CG) stepUnfused() {
	p := s.p
	p.Matmul(s.q, s.pv)            // q = A p
	pq := p.Dot(s.pv, s.q)         // pᵀAp
	alpha := p.Div(s.res, pq)      // α = res / pᵀAp
	p.Axpy(core.SOL, alpha, s.pv)  // x += α p
	p.Axpy(s.r, p.Neg(alpha), s.q) // r -= α q
	newRes := p.Dot(s.r, s.r)
	beta := p.Div(newRes, s.res) // β = res' / res
	p.Xpay(s.pv, beta, s.r)      // p = r + β p
	s.res = newRes
}
