package solvers

import (
	"math"
	"sync"

	"kdrsolvers/internal/core"
)

// GCRO-DR (Parks et al.): GMRES with deflated restarting and subspace
// recycling across solves. The solver maintains k recycle vectors U with
// C = A·U orthonormal; every restart projects the residual onto the
// complement of range(C) (x += U Cᵀr, r −= C Cᵀr), and every Arnoldi
// step deflates A v_j against C, so the Krylov iteration runs on
// (I − CCᵀ)A and never re-discovers the deflated directions. At each
// cycle end the recycle space is refreshed from the Ritz vectors of
// smallest magnitude — the slowly-converging directions worth keeping.
//
// Across solves the space travels through a RecycleCache keyed by the
// planner's operator fingerprint: sequences of systems sharing an
// operator (examples/relatedsystems, examples/multirhs) warm-start each
// solve with the previous one's deflation space.

// maxRecycleEntries bounds the cache: a server recycling across many
// distinct operators keeps the most recently used spaces instead of
// growing without bound (each entry holds k dense vectors).
const maxRecycleEntries = 32

// recycleEntry is one cached space with its last-use tick for LRU
// eviction.
type recycleEntry struct {
	u    [][]float64
	used int64
}

// RecycleCache carries harvested recycle spaces between solves, keyed by
// operator identity. Safe for concurrent use: loads take a read lock and
// deep-copy the space, so a solve reading a warm start can never observe
// a concurrent store mutating it, and concurrent GCRO-DR sessions sharing
// one cache do not race. The cache holds at most maxRecycleEntries
// spaces; storing past the bound evicts the least recently used one.
type RecycleCache struct {
	mu      sync.RWMutex
	entries map[string]*recycleEntry
	clock   int64
}

// NewRecycleCache returns an empty cross-solve recycle store.
func NewRecycleCache() *RecycleCache {
	return &RecycleCache{entries: map[string]*recycleEntry{}}
}

// Len returns the number of cached spaces.
func (c *RecycleCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

func (c *RecycleCache) load(fp string) [][]float64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[fp]
	if e == nil {
		return nil
	}
	c.clock++
	e.used = c.clock
	out := make([][]float64, len(e.u))
	for i := range e.u {
		out[i] = append([]float64(nil), e.u[i]...)
	}
	return out
}

func (c *RecycleCache) store(fp string, u [][]float64) {
	if c == nil {
		return
	}
	cp := make([][]float64, len(u))
	for i := range u {
		cp[i] = append([]float64(nil), u[i]...)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	if e := c.entries[fp]; e != nil {
		e.u = cp
		e.used = c.clock
		return
	}
	if len(c.entries) >= maxRecycleEntries {
		var lruKey string
		lru := int64(math.MaxInt64)
		for k, e := range c.entries {
			if e.used < lru {
				lru = e.used
				lruKey = k
			}
		}
		delete(c.entries, lruKey)
	}
	c.entries[fp] = &recycleEntry{u: cp, used: c.clock}
}

// GCRODR is the recycling solver. A nil cache still performs deflated
// restarting within one solve; a shared cache adds cross-solve recycling.
type GCRODR struct {
	p     *core.Planner
	m, k  int
	cache *RecycleCache
	basis []core.VecID // v₀ … v_m
	w     core.VecID
	uvec  []core.VecID // recycle space U
	cvec  []core.VecID // C = A·U, orthonormal
	nrec  int          // active recycle vectors (0 until first harvest)
	h     [][]*core.Scalar
	bcol  [][]*core.Scalar // deflation coefficients B[j][i] = ⟨A v_j, c_i⟩
	beta  *core.Scalar
	j     int
	res   *core.Scalar
	ls    *givensLS
	tr    bool
}

// NewGCRODR builds a GCRO-DR solver with cycle length m keeping k
// recycle vectors. If cache holds a space for this planner's operator
// fingerprint (real planners only), the solve warm-starts from it.
func NewGCRODR(p *core.Planner, m, k int, cache *RecycleCache) *GCRODR {
	if !p.IsSquare() {
		panic("solvers: GCRO-DR requires a square system")
	}
	if m < 1 || k < 1 || k >= m {
		panic("solvers: GCRO-DR needs 1 ≤ k < m")
	}
	s := &GCRODR{p: p, m: m, k: k, cache: cache, w: p.AllocateWorkspace(core.RhsShape)}
	for i := 0; i <= m; i++ {
		s.basis = append(s.basis, p.AllocateWorkspace(core.RhsShape))
	}
	for i := 0; i < k; i++ {
		s.uvec = append(s.uvec, p.AllocateWorkspace(core.RhsShape))
		s.cvec = append(s.cvec, p.AllocateWorkspace(core.RhsShape))
	}
	if !p.Virtual() {
		if cached := cache.load(p.OperatorFingerprint()); len(cached) == s.k {
			// Nothing is in flight yet, so the cached space can be copied
			// straight into the workspaces' backing storage.
			ok := true
			for i := range cached {
				if len(cached[i]) != len(p.VecData(s.uvec[i], 0)) {
					ok = false
					break
				}
			}
			if ok {
				for i := range cached {
					copy(p.VecData(s.uvec[i], 0), cached[i])
				}
				s.nrec = s.k
				s.refreshC()
			}
		}
	}
	s.restart()
	return s
}

// refreshC recomputes C = A·U and MGS-orthonormalizes the pairs so that
// C stays orthonormal with A·uᵢ = cᵢ (every combination applied to C is
// mirrored on U).
func (s *GCRODR) refreshC() {
	p := s.p
	p.BeginPhase("gcrodr.recycle")
	for i := 0; i < s.nrec; i++ {
		p.Matmul(s.cvec[i], s.uvec[i])
	}
	for i := 0; i < s.nrec; i++ {
		for l := 0; l < i; l++ {
			d := p.Dot(s.cvec[i], s.cvec[l])
			p.Axpy(s.cvec[i], p.Neg(d), s.cvec[l])
			p.Axpy(s.uvec[i], p.Neg(d), s.uvec[l])
		}
		inv := p.Div(p.Constant(1), p.Sqrt(p.Dot(s.cvec[i], s.cvec[i])))
		p.Scal(s.cvec[i], inv)
		p.Scal(s.uvec[i], inv)
	}
}

// restart begins a cycle: recompute the true residual, project it
// against the recycle space (improving x), and normalize v₀.
func (s *GCRODR) restart() {
	p := s.p
	p.BeginPhase("gcrodr.restart")
	r := s.basis[0]
	residualInit(p, r)
	// Optimal correction within range(U): x += U Cᵀr, r −= C Cᵀr. Since
	// A·uᵢ = cᵢ, the residual identity r = b − Ax is preserved exactly.
	for i := 0; i < s.nrec; i++ {
		z := p.Dot(r, s.cvec[i])
		p.Axpy(core.SOL, z, s.uvec[i])
		p.Axpy(r, p.Neg(z), s.cvec[i])
	}
	rr := p.Dot(r, r)
	s.res = rr
	s.beta = p.Sqrt(rr)
	p.Scal(r, p.Div(p.Constant(1), s.beta))
	s.h = make([][]*core.Scalar, 0, s.m)
	s.bcol = make([][]*core.Scalar, 0, s.m)
	s.j = 0
	s.ls = nil
	if !p.Virtual() {
		s.ls = newGivensLS(s.beta.Value(), s.m)
	}
}

// Name implements Solver.
func (s *GCRODR) Name() string { return "GCRO-DR" }

// ConvergenceMeasure implements Solver.
func (s *GCRODR) ConvergenceMeasure() *core.Scalar { return s.res }

// Step implements Solver: one deflated Arnoldi step.
func (s *GCRODR) Step() {
	p := s.p
	p.BeginPhase("gcrodr.arnoldi")
	if s.j == 0 {
		s.tr = p.TraceBegin("gcrodr.cycle")
	}
	j := s.j
	p.Matmul(s.w, s.basis[j])
	// Deflate against the recycle space: w ← (I − CCᵀ) A v_j, recording
	// the C-components as the B coupling block.
	bc := make([]*core.Scalar, s.nrec)
	for i := 0; i < s.nrec; i++ {
		bij := p.Dot(s.w, s.cvec[i])
		bc[i] = bij
		p.Axpy(s.w, p.Neg(bij), s.cvec[i])
	}
	s.bcol = append(s.bcol, bc)
	col := make([]*core.Scalar, j+2)
	for i := 0; i <= j; i++ {
		hij := p.Dot(s.w, s.basis[i])
		col[i] = hij
		p.Axpy(s.w, p.Neg(hij), s.basis[i])
	}
	hlast := p.Sqrt(p.Dot(s.w, s.w))
	col[j+1] = hlast
	s.h = append(s.h, col)
	s.j++

	if !p.Virtual() {
		hv := hlast.Value()
		if hv <= 1e-14*(1+math.Abs(s.beta.Value())) {
			s.finishCycle()
			s.restart()
			p.TraceEnd(s.tr)
			s.tr = false
			return
		}
		vals := make([]float64, j+2)
		for i, sc := range col {
			vals[i] = sc.Value()
		}
		est := s.ls.push(vals)
		s.res = p.Constant(est * est)
	}

	p.Copy(s.basis[j+1], s.w)
	p.Scal(s.basis[j+1], p.Div(p.Constant(1), hlast))

	if s.j == s.m {
		s.finishCycle()
		s.restart()
		p.TraceEnd(s.tr)
		s.tr = false
	}
}

// finishCycle solves the cycle's least-squares problem, applies
// x += V y − U (B y) (the C-block of A·(Vy) is cancelled through U, as
// in GCRO), and harvests the next recycle space from the cycle's
// smallest Ritz vectors.
func (s *GCRODR) finishCycle() {
	p := s.p
	p.BeginPhase("gcrodr.update")
	m := s.j
	h := make([][]float64, m)
	for j := 0; j < m; j++ {
		h[j] = make([]float64, j+2)
		for i, sc := range s.h[j] {
			h[j][i] = sc.Value()
		}
	}
	y, _ := solveHessenberg(h, s.beta.Value())
	for j := 0; j < m; j++ {
		if math.IsNaN(y[j]) {
			continue
		}
		p.AxpyConst(core.SOL, y[j], s.basis[j])
	}
	if s.nrec > 0 {
		by := make([]float64, s.nrec)
		for j := 0; j < m; j++ {
			if math.IsNaN(y[j]) {
				continue
			}
			for i := 0; i < s.nrec; i++ {
				by[i] += s.bcol[j][i].Value() * y[j]
			}
		}
		for i := 0; i < s.nrec; i++ {
			if !math.IsNaN(by[i]) {
				p.AxpyConst(core.SOL, -by[i], s.uvec[i])
			}
		}
	}
	s.harvest(h, m)
}

// harvest replaces the recycle space with the cycle's k Ritz vectors of
// smallest magnitude — U_t = Σ_j y_t[j] v_j, launched in the dataflow
// (the runtime orders the reads before the next cycle overwrites the
// basis) — and relinearizes C = A·U.
func (s *GCRODR) harvest(h [][]float64, m int) {
	if s.p.Virtual() || m <= s.k {
		return
	}
	// Ritz values of the deflated operator from the symmetrized m×m
	// Hessenberg block.
	sym := make([][]float64, m)
	for i := 0; i < m; i++ {
		sym[i] = make([]float64, m)
	}
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			if i < len(h[j]) {
				sym[i][j] = h[j][i]
			}
		}
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			v := (sym[i][j] + sym[j][i]) / 2
			if math.IsNaN(v) {
				return
			}
			sym[i][j], sym[j][i] = v, v
		}
	}
	vals, vecs := jacobiEigen(sym)
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	for a := 0; a < m; a++ { // selection sort by |θ|, smallest first
		best := a
		for b := a + 1; b < m; b++ {
			if math.Abs(vals[order[b]]) < math.Abs(vals[order[best]]) {
				best = b
			}
		}
		order[a], order[best] = order[best], order[a]
	}
	p := s.p
	p.BeginPhase("gcrodr.harvest")
	for t := 0; t < s.k; t++ {
		yt := vecs[order[t]]
		p.Zero(s.uvec[t])
		for j := 0; j < m; j++ {
			if !math.IsNaN(yt[j]) {
				p.AxpyConst(s.uvec[t], yt[j], s.basis[j])
			}
		}
	}
	s.nrec = s.k
	s.refreshC()
}

// VerifyConvergence implements ConvergenceVerifier.
func (s *GCRODR) VerifyConvergence() float64 {
	if s.j > 0 {
		s.finishCycle()
		s.restart()
		s.p.TraceEnd(s.tr)
		s.tr = false
	}
	return math.Sqrt(math.Max(s.res.Value(), 0))
}

// SaveRecycleSpace publishes the current recycle space into the cache
// under this planner's operator fingerprint, so the next solve on the
// same operator warm-starts from it. Call after the planner has drained;
// it reads vector data host-side. No-op without an active space, on
// virtual planners, or with a nil cache.
func (s *GCRODR) SaveRecycleSpace() {
	if s.cache == nil || s.nrec == 0 || s.p.Virtual() {
		return
	}
	u := make([][]float64, s.nrec)
	for i := 0; i < s.nrec; i++ {
		u[i] = append([]float64(nil), s.p.VecData(s.uvec[i], 0)...)
	}
	s.cache.store(s.p.OperatorFingerprint(), u)
}
