package solvers

import (
	"fmt"
	"sync"
	"testing"
)

// TestRecycleCacheDeepCopy verifies the aliasing contract: a loaded
// space is the loader's own storage, so neither mutating it nor a later
// store under the same key can corrupt what another solve reads.
func TestRecycleCacheDeepCopy(t *testing.T) {
	c := NewRecycleCache()
	orig := [][]float64{{1, 2}, {3, 4}}
	c.store("fp", orig)

	// Mutating the caller's slice after store must not reach the cache.
	orig[0][0] = -99
	got := c.load("fp")
	if got[0][0] != 1 {
		t.Errorf("store aliased caller storage: got %g, want 1", got[0][0])
	}

	// Mutating a loaded copy must not reach the cache either.
	got[1][1] = -77
	again := c.load("fp")
	if again[1][1] != 4 {
		t.Errorf("load returned shared storage: got %g, want 4", again[1][1])
	}

	if c.load("missing") != nil {
		t.Error("missing key should load nil")
	}
	if (*RecycleCache)(nil).load("fp") != nil {
		t.Error("nil cache should load nil")
	}
	(*RecycleCache)(nil).store("fp", orig) // must not panic
}

// TestRecycleCacheLRUBound fills the cache past its bound and checks the
// least recently used entry is the one evicted.
func TestRecycleCacheLRUBound(t *testing.T) {
	c := NewRecycleCache()
	for i := 0; i < maxRecycleEntries; i++ {
		c.store(fmt.Sprintf("fp%d", i), [][]float64{{float64(i)}})
	}
	if c.Len() != maxRecycleEntries {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), maxRecycleEntries)
	}
	// Touch fp0 so fp1 becomes the LRU entry, then overflow.
	if c.load("fp0") == nil {
		t.Fatal("fp0 missing before overflow")
	}
	c.store("overflow", [][]float64{{42}})
	if c.Len() != maxRecycleEntries {
		t.Errorf("cache grew past its bound: %d entries", c.Len())
	}
	if c.load("fp1") != nil {
		t.Error("LRU entry fp1 survived eviction")
	}
	if c.load("fp0") == nil {
		t.Error("recently used fp0 was evicted")
	}
	if got := c.load("overflow"); got == nil || got[0][0] != 42 {
		t.Errorf("new entry lost: %v", got)
	}
	// Storing under an existing key replaces in place, no eviction.
	c.store("fp0", [][]float64{{7}})
	if c.Len() != maxRecycleEntries {
		t.Errorf("replacing store changed the entry count to %d", c.Len())
	}
	if got := c.load("fp0"); got[0][0] != 7 {
		t.Errorf("replacing store lost the new value: %v", got)
	}
}

// TestRecycleCacheConcurrent hammers one cache from many goroutines
// under -race: the original unguarded map races here.
func TestRecycleCacheConcurrent(t *testing.T) {
	c := NewRecycleCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fp := fmt.Sprintf("op%d", g%4)
			for i := 0; i < 200; i++ {
				c.store(fp, [][]float64{{float64(g), float64(i)}})
				if u := c.load(fp); u != nil {
					u[0][0]++ // private copy: mutation must be safe
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Error("cache empty after concurrent stores")
	}
}
