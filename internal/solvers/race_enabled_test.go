//go:build race

package solvers

// raceEnabled reports that this build runs under the race detector,
// whose instrumentation allocates on its own and makes
// testing.AllocsPerRun pins meaningless.
const raceEnabled = true
