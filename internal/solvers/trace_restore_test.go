package solvers

import (
	"testing"
)

// CheckpointSol/RestoreSol land host-side writes in the middle of a
// memoized, actively-splicing trace ("cg.step" replays after a few
// iterations). The restore must not desynchronize the template: the
// runtime either keeps replaying (the restore happens on a quiescent
// runtime, so every spliced dependence is already satisfied) or falls
// back to full analysis and re-records — and either way the computed
// iterates are bitwise identical to the untraced run of the same
// checkpoint/restore/replace sequence.
func TestTraceCheckpointRestoreMidSplice(t *testing.T) {
	a, b := sdcProblem()
	run := func(tracing bool) []float64 {
		p := planFor(a, b, 4)
		p.SetTracing(tracing)
		s := NewCG(p)
		RunIterations(s, 6) // enough instances to memoize and replay
		p.Drain()
		ckpt := p.CheckpointSol()
		RunIterations(s, 4)
		p.Drain()
		p.RestoreSol(ckpt) // mid-splice host-side write
		// The restore desynchronized the recurrence (r, p) from x; rebase
		// exactly as a resilient driver would before iterating on.
		s.ReplaceResidual(0)
		RunIterations(s, 6)
		p.Drain()
		if tracing {
			st := p.Runtime().Stats()
			if st.TraceHits == 0 {
				t.Fatal("trace replay never engaged — the mid-splice scenario is vacuous")
			}
		}
		return append([]float64(nil), p.SolData(0)...)
	}
	want := run(false)
	got := run(true)
	if d := maxAbsDiff(want, got); d != 0 {
		t.Fatalf("traced run diverges from untraced run by %g after mid-splice restore", d)
	}
}
