package solvers

import "kdrsolvers/internal/core"

// BiCGStab is van der Vorst's stabilized biconjugate gradient method for
// general (nonsymmetric) square systems.
//
// The fused step batches the tᵀs/tᵀt reductions into one combine, folds
// the final residual dot into the closing update sweep, and fuses the
// direction/solution updates (core.FusedSweep), cutting the launches per
// iteration by over a third against the per-operation formulation while
// computing bitwise identical iterates. NewBiCGStabUnfused keeps the
// per-operation formulation for ablation and benchmarks.
type BiCGStab struct {
	p                 *core.Planner
	r, rhat, pv, v    core.VecID
	t                 core.VecID
	rho, alpha, omega *core.Scalar
	res               *core.Scalar
	bd                breakdownFlag
	unfused           bool
}

// NewBiCGStab builds a BiCGStab solver on a finalized square system.
func NewBiCGStab(p *core.Planner) *BiCGStab {
	if !p.IsSquare() {
		panic("solvers: BiCGStab requires a square system")
	}
	s := &BiCGStab{
		p:    p,
		r:    p.AllocateWorkspace(core.RhsShape),
		rhat: p.AllocateWorkspace(core.RhsShape),
		pv:   p.AllocateWorkspace(core.SolShape),
		v:    p.AllocateWorkspace(core.RhsShape),
		t:    p.AllocateWorkspace(core.RhsShape),
	}
	p.BeginPhase("bicgstab.init")
	residualInit(p, s.r)
	p.Copy(s.rhat, s.r) // r̂₀ fixed shadow residual
	s.rho = p.Constant(1)
	s.alpha = p.Constant(1)
	s.omega = p.Constant(1)
	s.res = p.Dot(s.r, s.r)
	return s
}

// NewBiCGStabUnfused builds a BiCGStab solver on the pre-fusion
// per-operation formulation, kept for ablation and benchmarks.
func NewBiCGStabUnfused(p *core.Planner) *BiCGStab {
	s := NewBiCGStab(p)
	s.unfused = true
	return s
}

// Name implements Solver.
func (s *BiCGStab) Name() string { return "BiCGStab" }

// ConvergenceMeasure implements Solver.
func (s *BiCGStab) ConvergenceMeasure() *core.Scalar { return s.res }

// Breakdown implements BreakdownChecker: it reports a vanished ρ, ω, or
// r̂ᵀv denominator (wrapping ErrBreakdown), or nil.
func (s *BiCGStab) Breakdown() error { return s.bd.get() }

// Step implements Solver: one BiCGStab iteration, entirely deferred.
func (s *BiCGStab) Step() {
	p := s.p
	p.BeginPhase("bicgstab.step")
	defer p.TraceEnd(p.TraceBegin("bicgstab.step"))
	if s.unfused {
		s.stepUnfused()
		return
	}
	rho := p.Dot(s.rhat, s.r)
	// Breakdown-guarded divisions, as in the unfused step.
	beta := p.Mul(guardedDiv(p, &s.bd, "bicgstab", "rho", rho, s.rho),
		guardedDiv(p, &s.bd, "bicgstab", "omega", s.alpha, s.omega))
	// p = r + β(p − ω v), one sweep: the xpay chains on the axpy.
	p.FusedUpdate(
		core.VecUpdate{Kind: core.UpdAxpy, Dst: s.pv, Alpha: s.omega, Neg: true, Src: s.v},
		core.VecUpdate{Kind: core.UpdXpay, Dst: s.pv, Alpha: beta, Src: s.r},
	)
	p.Matmul(s.v, s.pv) // v = A p
	alpha := guardedDiv(p, &s.bd, "bicgstab", "rhat·v", rho, p.Dot(s.rhat, s.v))
	// s (reusing r): r ← r − α v
	p.FusedUpdate(core.VecUpdate{Kind: core.UpdAxpy, Dst: s.r, Alpha: alpha, Neg: true, Src: s.v})
	p.Matmul(s.t, s.r) // t = A s
	d := p.DotBatch(core.DotPair{V: s.t, W: s.r}, core.DotPair{V: s.t, W: s.t})
	omega := guardedDiv(p, &s.bd, "bicgstab", "t·t", d[0], d[1])
	// x += α p + ω s; r ← s − ω t; res = r·r — one sweep, one reduce.
	s.res = p.FusedSweep([]core.VecUpdate{
		{Kind: core.UpdAxpy, Dst: core.SOL, Alpha: alpha, Src: s.pv},
		{Kind: core.UpdAxpy, Dst: core.SOL, Alpha: omega, Src: s.r},
		{Kind: core.UpdAxpy, Dst: s.r, Alpha: omega, Neg: true, Src: s.t},
	}, []core.DotPair{{V: s.r, W: s.r}})[0]
	s.rho, s.alpha, s.omega = rho, alpha, omega
}

// stepUnfused is the per-operation BiCGStab iteration.
func (s *BiCGStab) stepUnfused() {
	p := s.p
	rho := p.Dot(s.rhat, s.r)
	// Breakdown-guarded divisions: ρ/ρ₋₁, α/ω, ρ/r̂ᵀv, and tᵀs/tᵀt all
	// vanish on breakdown (ρ ≈ 0 or ω ≈ 0); the guards zero the
	// coefficients and flag Breakdown instead of NaN-poisoning x and r.
	beta := p.Mul(guardedDiv(p, &s.bd, "bicgstab", "rho", rho, s.rho),
		guardedDiv(p, &s.bd, "bicgstab", "omega", s.alpha, s.omega))
	// p = r + β(p − ω v)
	p.Axpy(s.pv, p.Neg(s.omega), s.v)
	p.Xpay(s.pv, beta, s.r)
	p.Matmul(s.v, s.pv) // v = A p
	alpha := guardedDiv(p, &s.bd, "bicgstab", "rhat·v", rho, p.Dot(s.rhat, s.v))
	// s (reusing r): r ← r − α v
	p.Axpy(s.r, p.Neg(alpha), s.v)
	p.Matmul(s.t, s.r) // t = A s
	omega := guardedDiv(p, &s.bd, "bicgstab", "t·t", p.Dot(s.t, s.r), p.Dot(s.t, s.t))
	// x += α p + ω s
	p.Axpy(core.SOL, alpha, s.pv)
	p.Axpy(core.SOL, omega, s.r)
	// r ← s − ω t
	p.Axpy(s.r, p.Neg(omega), s.t)
	s.rho, s.alpha, s.omega = rho, alpha, omega
	s.res = p.Dot(s.r, s.r)
}
