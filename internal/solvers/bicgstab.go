package solvers

import "kdrsolvers/internal/core"

// BiCGStab is van der Vorst's stabilized biconjugate gradient method for
// general (nonsymmetric) square systems.
type BiCGStab struct {
	p                 *core.Planner
	r, rhat, pv, v    core.VecID
	t                 core.VecID
	rho, alpha, omega *core.Scalar
	res               *core.Scalar
	bd                breakdownFlag
}

// NewBiCGStab builds a BiCGStab solver on a finalized square system.
func NewBiCGStab(p *core.Planner) *BiCGStab {
	if !p.IsSquare() {
		panic("solvers: BiCGStab requires a square system")
	}
	s := &BiCGStab{
		p:    p,
		r:    p.AllocateWorkspace(core.RhsShape),
		rhat: p.AllocateWorkspace(core.RhsShape),
		pv:   p.AllocateWorkspace(core.SolShape),
		v:    p.AllocateWorkspace(core.RhsShape),
		t:    p.AllocateWorkspace(core.RhsShape),
	}
	p.BeginPhase("bicgstab.init")
	residualInit(p, s.r)
	p.Copy(s.rhat, s.r) // r̂₀ fixed shadow residual
	s.rho = p.Constant(1)
	s.alpha = p.Constant(1)
	s.omega = p.Constant(1)
	s.res = p.Dot(s.r, s.r)
	return s
}

// Name implements Solver.
func (s *BiCGStab) Name() string { return "BiCGStab" }

// ConvergenceMeasure implements Solver.
func (s *BiCGStab) ConvergenceMeasure() *core.Scalar { return s.res }

// Breakdown implements BreakdownChecker: it reports a vanished ρ, ω, or
// r̂ᵀv denominator (wrapping ErrBreakdown), or nil.
func (s *BiCGStab) Breakdown() error { return s.bd.get() }

// Step implements Solver: one BiCGStab iteration, entirely deferred.
func (s *BiCGStab) Step() {
	p := s.p
	p.BeginPhase("bicgstab.step")
	defer p.TraceEnd(p.TraceBegin("bicgstab.step"))
	rho := p.Dot(s.rhat, s.r)
	// Breakdown-guarded divisions: ρ/ρ₋₁, α/ω, ρ/r̂ᵀv, and tᵀs/tᵀt all
	// vanish on breakdown (ρ ≈ 0 or ω ≈ 0); the guards zero the
	// coefficients and flag Breakdown instead of NaN-poisoning x and r.
	beta := p.Mul(guardedDiv(p, &s.bd, "bicgstab", "rho", rho, s.rho),
		guardedDiv(p, &s.bd, "bicgstab", "omega", s.alpha, s.omega))
	// p = r + β(p − ω v)
	p.Axpy(s.pv, p.Neg(s.omega), s.v)
	p.Xpay(s.pv, beta, s.r)
	p.Matmul(s.v, s.pv) // v = A p
	alpha := guardedDiv(p, &s.bd, "bicgstab", "rhat·v", rho, p.Dot(s.rhat, s.v))
	// s (reusing r): r ← r − α v
	p.Axpy(s.r, p.Neg(alpha), s.v)
	p.Matmul(s.t, s.r) // t = A s
	omega := guardedDiv(p, &s.bd, "bicgstab", "t·t", p.Dot(s.t, s.r), p.Dot(s.t, s.t))
	// x += α p + ω s
	p.Axpy(core.SOL, alpha, s.pv)
	p.Axpy(core.SOL, omega, s.r)
	// r ← s − ω t
	p.Axpy(s.r, p.Neg(omega), s.t)
	s.rho, s.alpha, s.omega = rho, alpha, omega
	s.res = p.Dot(s.r, s.r)
}
