package solvers

import (
	"math"
	"testing"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/sparse"
)

// tracedPlanFor is planFor with trace memoization enabled.
func tracedPlanFor(a sparse.Matrix, b []float64, pieces int) *core.Planner {
	p := planFor(a, b, pieces)
	p.SetTracing(true)
	return p
}

func TestCGTracedMatchesUntraced(t *testing.T) {
	// Trace-replayed CG must compute exactly the same iterates as
	// analyzed CG: memoization changes how dependences are derived, never
	// what executes.
	a := sparse.Laplacian2D(6, 6)
	b := make([]float64, 36)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	pa := planFor(a, b, 4)
	pt := tracedPlanFor(a, append([]float64(nil), b...), 4)
	sa, st := NewCG(pa), NewCG(pt)
	RunIterations(sa, 30)
	RunIterations(st, 30)
	pa.Drain()
	pt.Drain()
	if d := maxAbsDiff(pa.SolData(0), pt.SolData(0)); d > 1e-12 {
		t.Fatalf("traced CG diverged from untraced: max |Δx| = %g", d)
	}
	st1 := pt.Runtime().Stats()
	if st1.TraceHits == 0 {
		t.Fatalf("traced CG never replayed: %+v", st1)
	}
	if st1.TraceFallbacks != 0 {
		t.Fatalf("traced CG hit %d fallbacks, want 0", st1.TraceFallbacks)
	}
}

func TestCGReplayedIterationsDoZeroAnalysis(t *testing.T) {
	// The acceptance criterion for real memoization: once the cg.step
	// trace replays, further iterations perform zero AnalysisScans.
	a := sparse.Laplacian2D(8, 8)
	b := make([]float64, 64)
	for i := range b {
		b[i] = 1
	}
	p := tracedPlanFor(a, b, 4)
	s := NewCG(p)
	RunIterations(s, 3) // record, calibrate, first replay
	p.Drain()
	before := p.Runtime().Stats()
	RunIterations(s, 5)
	p.Drain()
	after := p.Runtime().Stats()
	if after.AnalysisScans != before.AnalysisScans {
		t.Fatalf("replayed iterations scanned %d history entries, want 0",
			after.AnalysisScans-before.AnalysisScans)
	}
	if got := after.TraceHits - before.TraceHits; got != 5 {
		t.Fatalf("TraceHits grew by %d, want 5", got)
	}
	analyzed, spliced := p.Runtime().LaunchTiming()
	if spliced.Count == 0 || analyzed.Count == 0 {
		t.Fatalf("launch timing not split: analyzed %d, spliced %d",
			analyzed.Count, spliced.Count)
	}
}

func TestGMRESTracedMatchesUntraced(t *testing.T) {
	// GMRES traces whole restart cycles; the host-side least-squares
	// solve and the cycle-tail restart are part of the instance.
	a := convectionDiffusion(40, 0.3)
	b := make([]float64, 40)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	pa := planFor(a, b, 4)
	pt := tracedPlanFor(a, append([]float64(nil), b...), 4)
	sa, st := NewGMRES(pa, 10), NewGMRES(pt, 10)
	RunIterations(sa, 40) // 4 full cycles
	RunIterations(st, 40)
	pa.Drain()
	pt.Drain()
	if d := maxAbsDiff(pa.SolData(0), pt.SolData(0)); d > 1e-12 {
		t.Fatalf("traced GMRES diverged from untraced: max |Δx| = %g", d)
	}
	if hits := pt.Runtime().Stats().TraceHits; hits < 2 {
		// Cycles 1 and 2 record and calibrate; 3 and 4 must replay.
		t.Fatalf("TraceHits = %d, want >= 2", hits)
	}
}

func TestAllSolversTracedMatchUntraced(t *testing.T) {
	// Every registered method must be trace-safe: identical solutions
	// with tracing on and off, no fallbacks required (fallbacks are legal
	// but indicate a mis-scoped trace for these stationary iterations).
	a := convectionDiffusion(32, 0.2)
	spd := sparse.Laplacian1D(32)
	b := make([]float64, 32)
	for i := range b {
		b[i] = float64((i*13)%5) - 2
	}
	for _, name := range Names {
		if name == "pcg" {
			continue // needs a preconditioner; same trace scope as cg
		}
		mat := a
		if name == "cg" || name == "pipecg" || name == "minres" {
			mat = spd
		}
		pa := planFor(mat, append([]float64(nil), b...), 2)
		pt := tracedPlanFor(mat, append([]float64(nil), b...), 2)
		sa, st := New(name, pa), New(name, pt)
		RunIterations(sa, 12)
		RunIterations(st, 12)
		pa.Drain()
		pt.Drain()
		if d := maxAbsDiff(pa.SolData(0), pt.SolData(0)); d > 1e-10 {
			t.Errorf("%s: traced solve diverged from untraced: max |Δx| = %g", name, d)
		}
	}
}

func TestTracedSolveAfterConvergenceMidCycle(t *testing.T) {
	// A GMRES solve that stops mid-cycle leaves its trace scope open; a
	// later solver on the same planner must not trip over it.
	a := sparse.Laplacian1D(16)
	b := make([]float64, 16)
	for i := range b {
		b[i] = 1
	}
	p := tracedPlanFor(a, b, 2)
	g := NewGMRES(p, 10)
	RunIterations(g, 7) // abandon mid-cycle
	p.Drain()
	s := NewCG(p)
	RunIterations(s, 6)
	p.Drain()
	if err := p.Runtime().Err(); err != nil {
		t.Fatalf("mixed traced solve failed: %v", err)
	}
}

func TestTracingOffByDefault(t *testing.T) {
	a := sparse.Laplacian1D(12)
	b := make([]float64, 12)
	p := planFor(a, b, 2)
	RunIterations(NewCG(p), 5)
	p.Drain()
	if st := p.Runtime().Stats(); st.TraceHits+st.TraceMisses != 0 {
		t.Fatalf("tracing ran without SetTracing: %+v", st)
	}
}
