package solvers

import (
	"fmt"
	"math"
	"testing"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/precond"
	"kdrsolvers/internal/sparse"
)

// conformance exercises every registered solver against every operator
// encoding the planner accepts — assembled CSR, converted ELL, and the
// matrix-free stencil operator — with tracing on and off, and in real
// and virtual planner modes. The solver layer never sees the format, so
// every cell of the matrix must behave identically.

const confN = 64

// confOperator names one operator encoding of a 64-unknown system.
type confOperator struct {
	name string
	mat  func(spd bool) sparse.Matrix
}

var confOperators = []confOperator{
	{"csr", func(spd bool) sparse.Matrix { return confBase(spd) }},
	{"ell", func(spd bool) sparse.Matrix { return sparse.Convert(confBase(spd), "ELL") }},
	// The adaptive composite picks a (possibly different) format per row
	// band; solvers must not be able to tell.
	{"auto", func(spd bool) sparse.Matrix { return sparse.Convert(confBase(spd), "Auto") }},
	// The stencil operator is matrix-free and inherently symmetric; the
	// nonsymmetric methods must still converge on it.
	{"stencil", func(bool) sparse.Matrix {
		return sparse.NewStencilOperator(sparse.Stencil2D5, index.NewGrid(8, 8))
	}},
}

// confBase returns the assembled test matrix: an SPD 2D Laplacian or a
// nonsymmetric convection-diffusion operator.
func confBase(spd bool) *sparse.CSR {
	if spd {
		return sparse.Laplacian2D(8, 8)
	}
	return convectionDiffusion(confN, 0.2)
}

// wantsSPD reports whether the named method requires a symmetric
// positive definite operator.
func wantsSPD(name string) bool {
	return name == "cg" || name == "pipecg" || name == "pcg" || name == "minres" ||
		name == "sstep-cg"
}

// restartFamily reports whether the named method restarts on host-side
// scalar values (the GMRES family): exempt from real-vs-virtual launch
// count equality, since virtual scalars read as zero and change the
// cycle branching.
func restartFamily(name string) bool {
	return name == "gmres" || name == "pgmres" || name == "gcrodr"
}

// confPlanner builds a planner over the given operator, with a Jacobi
// preconditioner when withPre is set and virtual storage when virt is
// set.
func confPlanner(mat sparse.Matrix, withPre, virt, traced bool) *core.Planner {
	part := func(tag string) index.Partition {
		return index.EqualPartition(index.NewSpace(tag, confN), 4)
	}
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(2), Virtual: virt})
	var si, ri int
	if virt {
		si = p.AddSolVectorVirtual(confN, part("D"))
		ri = p.AddRHSVectorVirtual(confN, part("R"))
	} else {
		si = p.AddSolVector(make([]float64, confN), part("D"))
		ri = p.AddRHSVector(fusedRHS(confN), part("R"))
	}
	p.AddOperator(mat, si, ri)
	if withPre {
		p.AddPreconditioner(precond.Jacobi(mat), si, ri)
	}
	p.Finalize()
	p.SetTracing(traced)
	return p
}

// trueResidual computes ‖b − A·x‖/‖b‖ host-side from the solved data,
// independent of the solver's residual recurrence.
func trueResidual(mat sparse.Matrix, x, b []float64) float64 {
	ax := make([]float64, len(b))
	sparse.SpMV(mat, ax, x)
	var rr, bb float64
	for i := range b {
		d := b[i] - ax[i]
		rr += d * d
		bb += b[i] * b[i]
	}
	return math.Sqrt(rr / bb)
}

func TestSolverConformanceMatrix(t *testing.T) {
	const tol = 1e-8
	for _, name := range Names {
		for _, op := range confOperators {
			mat := op.mat(wantsSPD(name))
			var iters [2]int
			for ti, traced := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/%s/traced=%v", name, op.name, traced), func(t *testing.T) {
					p := confPlanner(mat, name == "pcg", false, traced)
					sv := New(name, p)
					res := Solve(sv, tol, 500)
					p.Drain()
					if err := p.Runtime().Err(); err != nil {
						t.Fatalf("runtime error: %v", err)
					}
					if !res.Converged {
						t.Fatalf("did not converge: %+v", res)
					}
					// The solver's recurrence said ‖r‖ ≤ tol; verify against
					// the honest residual of the iterate it produced. ‖b‖ > 1
					// here, so the relative measure is the stricter one.
					tr := trueResidual(mat, p.SolData(0), fusedRHS(confN))
					if tr > tol {
						t.Errorf("true residual %g above tolerance %g", tr, tol)
					}
					// True-residual equivalence column: a verifier solver's
					// reported TrueResidual is a recomputed ‖b − Ax‖ and must
					// agree with the host-side computation on the same iterate.
					if _, ok := sv.(ConvergenceVerifier); ok {
						b := fusedRHS(confN)
						var bb float64
						for _, v := range b {
							bb += v * v
						}
						rel := res.TrueResidual / math.Sqrt(bb)
						if math.Abs(rel-tr) > 1e-10 {
							t.Errorf("reported true residual %g (relative) vs host %g", rel, tr)
						}
					}
					iters[ti] = res.Iterations
				})
			}
			if iters[0] != iters[1] {
				t.Errorf("%s/%s: %d iterations untraced vs %d traced",
					name, op.name, iters[0], iters[1])
			}
		}
	}
}

func TestSolverConformanceVirtual(t *testing.T) {
	// Virtual planners record the same task graph with no storage: for
	// every solver × operator × tracing cell, a fixed-step virtual run
	// must finish without runtime errors and launch exactly as many
	// tasks as its real counterpart. The GMRES restart family is exempt
	// from the equality (its cycle logic branches on host-side scalar
	// values, which read as zero in virtual mode); s-step CG is NOT
	// exempt — its coefficient loop is host-side but its launch
	// structure is data-independent by construction.
	const steps = 6
	for _, name := range Names {
		for _, op := range confOperators {
			mat := op.mat(wantsSPD(name))
			for _, traced := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/%s/traced=%v", name, op.name, traced), func(t *testing.T) {
					run := func(virt bool) int64 {
						p := confPlanner(mat, name == "pcg", virt, traced)
						RunIterations(New(name, p), steps)
						p.Drain()
						if err := p.Runtime().Err(); err != nil {
							t.Fatalf("virt=%v runtime error: %v", virt, err)
						}
						return p.Runtime().Stats().Launched
					}
					real, virt := run(false), run(true)
					if virt == 0 {
						t.Fatal("virtual run launched no tasks")
					}
					if !restartFamily(name) && real != virt {
						t.Errorf("launched %d tasks real vs %d virtual", real, virt)
					}
				})
			}
		}
	}
}
