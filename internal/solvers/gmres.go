package solvers

import (
	"math"

	"kdrsolvers/internal/core"
)

// GMRES is the generalized minimal residual method of Saad and Schultz
// with a static restart schedule GMRES(m) — the paper benchmarks m = 10,
// matching Trilinos' static policy (PETSc's dynamic restart is why it is
// excluded from the paper's GMRES comparison).
//
// Each Step produces one Krylov basis vector via modified Gram-Schmidt
// with deferred scalar coefficients. At the end of a cycle the small
// (m+1) × m Hessenberg least-squares problem is solved host-side with
// Givens rotations, which synchronizes — the only blocking point of the
// method.
type GMRES struct {
	p     *core.Planner
	m     int
	basis []core.VecID // v₀ … v_m
	w     core.VecID
	h     [][]*core.Scalar // h[j][i], column j of the Hessenberg matrix
	beta  *core.Scalar     // ‖r₀‖ at cycle start
	j     int              // next column within the cycle
	res   *core.Scalar
	// ls maintains the incremental Givens least-squares estimate of the
	// cycle residual on real planners, so the convergence measure tracks
	// progress every step instead of freezing at the restart value. The
	// estimate is a recurrence and can drift from the true residual across
	// an ill-conditioned cycle; VerifyConvergence recomputes r = b − Ax
	// before convergence is believed.
	ls *givensLS
	// tr is true while a per-cycle trace scope is open. GMRES traces the
	// whole restart cycle (m Arnoldi steps + least-squares update +
	// restart) as one instance: per-step scopes would never replay
	// because each Arnoldi step has a different Gram-Schmidt depth.
	tr bool
}

// NewGMRES builds a GMRES solver with restart length m on a finalized
// square system.
func NewGMRES(p *core.Planner, m int) *GMRES {
	if !p.IsSquare() {
		panic("solvers: GMRES requires a square system")
	}
	if m < 1 {
		panic("solvers: GMRES restart length must be positive")
	}
	s := &GMRES{p: p, m: m, w: p.AllocateWorkspace(core.RhsShape)}
	for i := 0; i <= m; i++ {
		s.basis = append(s.basis, p.AllocateWorkspace(core.RhsShape))
	}
	s.restart()
	return s
}

// restart begins a new cycle: v₀ = r/‖r‖ with r = b − Ax.
func (s *GMRES) restart() {
	p := s.p
	p.BeginPhase("gmres.restart")
	r := s.basis[0]
	residualInit(p, r)
	rr := p.Dot(r, r)
	s.res = rr
	s.beta = p.Sqrt(rr)
	p.Scal(r, p.Div(p.Constant(1), s.beta)) // v₀ = r / β
	s.h = make([][]*core.Scalar, 0, s.m)
	s.j = 0
	s.ls = nil
	if !p.Virtual() {
		s.ls = newGivensLS(s.beta.Value(), s.m)
	}
}

// Name implements Solver.
func (s *GMRES) Name() string { return "GMRES" }

// ConvergenceMeasure implements Solver.
func (s *GMRES) ConvergenceMeasure() *core.Scalar { return s.res }

// Step implements Solver: one Arnoldi step; every m-th step also solves
// the cycle's least-squares problem and updates x.
func (s *GMRES) Step() {
	p := s.p
	p.BeginPhase("gmres.arnoldi")
	if s.j == 0 {
		s.tr = p.TraceBegin("gmres.cycle")
	}
	j := s.j
	// w = A v_j, then modified Gram-Schmidt against v₀ … v_j.
	p.Matmul(s.w, s.basis[j])
	col := make([]*core.Scalar, j+2)
	for i := 0; i <= j; i++ {
		hij := p.Dot(s.w, s.basis[i])
		col[i] = hij
		p.Axpy(s.w, p.Neg(hij), s.basis[i])
	}
	hlast := p.Sqrt(p.Dot(s.w, s.w))
	col[j+1] = hlast
	s.h = append(s.h, col)
	s.j++

	// Happy breakdown: w vanished, so the Krylov space is invariant and
	// the cycle's least-squares solution is exact. Normalizing would
	// divide by zero and poison the basis with NaNs; instead solve the
	// cycle with the columns built so far and restart. The check reads
	// h_{j+1,j} (a per-step synchronization), so it is skipped on virtual
	// planners, where every future resolves to zero and would trigger it
	// spuriously.
	if !p.Virtual() {
		hv := hlast.Value()
		if hv <= 1e-14*(1+math.Abs(s.beta.Value())) {
			s.finishCycle()
			s.restart()
			// A short (happy-breakdown) cycle closes its scope too; the
			// runtime records it as a miss and re-records the template.
			p.TraceEnd(s.tr)
			s.tr = false
			return
		}
		// Fold the new column into the Givens recurrence: |g_{j+1}| is the
		// cycle's least-squares residual, the per-step convergence measure.
		vals := make([]float64, j+2)
		for i, sc := range col {
			vals[i] = sc.Value()
		}
		est := s.ls.push(vals)
		s.res = p.Constant(est * est)
	}

	p.Copy(s.basis[j+1], s.w)
	p.Scal(s.basis[j+1], p.Div(p.Constant(1), hlast))

	if s.j == s.m {
		s.finishCycle()
		s.restart()
		p.TraceEnd(s.tr)
		s.tr = false
	}
}

// finishCycle solves min‖βe₁ − H y‖ by Givens rotations host-side and
// applies x += V y.
func (s *GMRES) finishCycle() {
	p := s.p
	p.BeginPhase("gmres.update")
	m := s.j
	// Pull the Hessenberg entries and β (synchronizes), then solve the
	// small least-squares problem with the shared Givens helper.
	h := make([][]float64, m)
	for j := 0; j < m; j++ {
		h[j] = make([]float64, j+2)
		for i := 0; i <= j+1; i++ {
			h[j][i] = s.h[j][i].Value()
		}
	}
	y, _ := solveHessenberg(h, s.beta.Value())

	// x += Σ y_j v_j. Zero coefficients still launch so that real and
	// virtual planners record identical graphs.
	for j := 0; j < m; j++ {
		if math.IsNaN(y[j]) {
			continue
		}
		p.AxpyConst(core.SOL, y[j], s.basis[j])
	}
}

// VerifyConvergence implements ConvergenceVerifier: the per-step Givens
// estimate is a recurrence over rounded Hessenberg entries and can claim
// convergence while drifting from the truth (the restart-boundary false
// convergence this fixes). Finish the open cycle — which actually
// updates x — restart, and report the honestly recomputed ‖b − Ax‖.
func (s *GMRES) VerifyConvergence() float64 {
	if s.j > 0 {
		s.finishCycle()
		s.restart()
		s.p.TraceEnd(s.tr)
		s.tr = false
	}
	return math.Sqrt(math.Max(s.res.Value(), 0))
}
