package solvers

import (
	"math"

	"kdrsolvers/internal/core"
)

// GMRES is the generalized minimal residual method of Saad and Schultz
// with a static restart schedule GMRES(m) — the paper benchmarks m = 10,
// matching Trilinos' static policy (PETSc's dynamic restart is why it is
// excluded from the paper's GMRES comparison).
//
// Each Step produces one Krylov basis vector via modified Gram-Schmidt
// with deferred scalar coefficients. At the end of a cycle the small
// (m+1) × m Hessenberg least-squares problem is solved host-side with
// Givens rotations, which synchronizes — the only blocking point of the
// method.
type GMRES struct {
	p     *core.Planner
	m     int
	basis []core.VecID // v₀ … v_m
	w     core.VecID
	h     [][]*core.Scalar // h[j][i], column j of the Hessenberg matrix
	beta  *core.Scalar     // ‖r₀‖ at cycle start
	j     int              // next column within the cycle
	res   *core.Scalar
	// tr is true while a per-cycle trace scope is open. GMRES traces the
	// whole restart cycle (m Arnoldi steps + least-squares update +
	// restart) as one instance: per-step scopes would never replay
	// because each Arnoldi step has a different Gram-Schmidt depth.
	tr bool
}

// NewGMRES builds a GMRES solver with restart length m on a finalized
// square system.
func NewGMRES(p *core.Planner, m int) *GMRES {
	if !p.IsSquare() {
		panic("solvers: GMRES requires a square system")
	}
	if m < 1 {
		panic("solvers: GMRES restart length must be positive")
	}
	s := &GMRES{p: p, m: m, w: p.AllocateWorkspace(core.RhsShape)}
	for i := 0; i <= m; i++ {
		s.basis = append(s.basis, p.AllocateWorkspace(core.RhsShape))
	}
	s.restart()
	return s
}

// restart begins a new cycle: v₀ = r/‖r‖ with r = b − Ax.
func (s *GMRES) restart() {
	p := s.p
	p.BeginPhase("gmres.restart")
	r := s.basis[0]
	residualInit(p, r)
	rr := p.Dot(r, r)
	s.res = rr
	s.beta = p.Sqrt(rr)
	p.Scal(r, p.Div(p.Constant(1), s.beta)) // v₀ = r / β
	s.h = make([][]*core.Scalar, 0, s.m)
	s.j = 0
}

// Name implements Solver.
func (s *GMRES) Name() string { return "GMRES" }

// ConvergenceMeasure implements Solver.
func (s *GMRES) ConvergenceMeasure() *core.Scalar { return s.res }

// Step implements Solver: one Arnoldi step; every m-th step also solves
// the cycle's least-squares problem and updates x.
func (s *GMRES) Step() {
	p := s.p
	p.BeginPhase("gmres.arnoldi")
	if s.j == 0 {
		s.tr = p.TraceBegin("gmres.cycle")
	}
	j := s.j
	// w = A v_j, then modified Gram-Schmidt against v₀ … v_j.
	p.Matmul(s.w, s.basis[j])
	col := make([]*core.Scalar, j+2)
	for i := 0; i <= j; i++ {
		hij := p.Dot(s.w, s.basis[i])
		col[i] = hij
		p.Axpy(s.w, p.Neg(hij), s.basis[i])
	}
	hlast := p.Sqrt(p.Dot(s.w, s.w))
	col[j+1] = hlast
	s.h = append(s.h, col)
	s.j++

	// Happy breakdown: w vanished, so the Krylov space is invariant and
	// the cycle's least-squares solution is exact. Normalizing would
	// divide by zero and poison the basis with NaNs; instead solve the
	// cycle with the columns built so far and restart. The check reads
	// h_{j+1,j} (a per-step synchronization), so it is skipped on virtual
	// planners, where every future resolves to zero and would trigger it
	// spuriously.
	if !p.Virtual() {
		hv := hlast.Value()
		if hv <= 1e-14*(1+math.Abs(s.beta.Value())) {
			s.finishCycle()
			s.restart()
			// A short (happy-breakdown) cycle closes its scope too; the
			// runtime records it as a miss and re-records the template.
			p.TraceEnd(s.tr)
			s.tr = false
			return
		}
	}

	p.Copy(s.basis[j+1], s.w)
	p.Scal(s.basis[j+1], p.Div(p.Constant(1), hlast))

	if s.j == s.m {
		s.finishCycle()
		s.restart()
		p.TraceEnd(s.tr)
		s.tr = false
	}
}

// finishCycle solves min‖βe₁ − H y‖ by Givens rotations host-side and
// applies x += V y.
func (s *GMRES) finishCycle() {
	p := s.p
	p.BeginPhase("gmres.update")
	m := s.j
	// Pull the Hessenberg entries and β (synchronizes).
	h := make([][]float64, m) // h[j] has m+1 rows
	for j := 0; j < m; j++ {
		h[j] = make([]float64, m+1)
		for i, sc := range s.h[j] {
			h[j][i] = sc.Value()
		}
	}
	g := make([]float64, m+1)
	g[0] = s.beta.Value()

	// Givens rotations reduce H to upper triangular.
	cs := make([]float64, m)
	sn := make([]float64, m)
	for j := 0; j < m; j++ {
		// Apply earlier rotations to column j.
		for i := 0; i < j; i++ {
			t := cs[i]*h[j][i] + sn[i]*h[j][i+1]
			h[j][i+1] = -sn[i]*h[j][i] + cs[i]*h[j][i+1]
			h[j][i] = t
		}
		d := math.Hypot(h[j][j], h[j][j+1])
		if d == 0 {
			cs[j], sn[j] = 1, 0
		} else {
			cs[j], sn[j] = h[j][j]/d, h[j][j+1]/d
		}
		h[j][j] = d
		h[j][j+1] = 0
		t := cs[j]*g[j] + sn[j]*g[j+1]
		g[j+1] = -sn[j]*g[j] + cs[j]*g[j+1]
		g[j] = t
	}

	// Back substitution for y.
	y := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		t := g[i]
		for k := i + 1; k < m; k++ {
			t -= h[k][i] * y[k]
		}
		if h[i][i] != 0 {
			t /= h[i][i]
		}
		y[i] = t
	}

	// x += Σ y_j v_j. Zero coefficients still launch so that real and
	// virtual planners record identical graphs.
	for j := 0; j < m; j++ {
		if math.IsNaN(y[j]) {
			continue
		}
		p.AxpyConst(core.SOL, y[j], s.basis[j])
	}
}
