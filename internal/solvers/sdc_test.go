package solvers

import (
	"math"
	"testing"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/fault"
	"kdrsolvers/internal/sparse"
)

// drainedResidual computes ‖b − A·x‖ entirely host-side from the raw
// arrays (sstep_test's hostTrueResidual) after draining — independent of
// every planner code path, so it cannot share a bug (or a corrupted
// checksum) with the machinery under test.
func drainedResidual(a sparse.Matrix, p *core.Planner, b []float64) float64 {
	p.Drain()
	return hostTrueResidual(a, p.SolData(0), b)
}

// singleFlipPlan plants exactly one exponent-bit flip in the first fused
// vector-update task (the writer of x and r in all three solvers under
// test), then goes quiet. Decisions are drawn at launch time in program
// order, so the corrupted task and element are deterministic per seed.
func singleFlipPlan(seed int64) fault.Plan {
	return fault.Plan{
		Seed: seed, BitFlipRate: 1, MaxFaults: 1, Bit: 52,
		Names: []string{"fused.update", "fused.updatedot"},
	}
}

// sdcCase is one solver of the acceptance matrix, with a seed pinned so
// the planted flip lands in vector data (not reduction scratch) and the
// undetected run reaches its false convergence claim.
var sdcCases = []struct {
	name string
	seed int64
	mk   func(p *core.Planner) Solver
}{
	{"cg", 11, func(p *core.Planner) Solver { return NewCG(p) }},
	{"pipecg", 3, func(p *core.Planner) Solver { return NewPipeCG(p) }},
	{"sstep-cg", 5, func(p *core.Planner) Solver { return NewSStepCG(p, 4) }},
}

func sdcProblem() (*sparse.CSR, []float64) {
	a := sparse.Laplacian2D(8, 8)
	b := make([]float64, 64)
	for i := range b {
		b[i] = float64(i%5) + 1
	}
	return a, b
}

// runTrusting is the naive driver: step until the solver's own
// recurrence measure claims convergence, believing it blindly — the
// mmsolve loop without true-residual verification.
func runTrusting(s Solver, tol float64, maxSteps int) bool {
	for i := 0; i < maxSteps; i++ {
		s.Step()
		res := math.Sqrt(math.Max(s.ConvergenceMeasure().Value(), 0))
		if res <= tol {
			return true
		}
	}
	return false
}

// The acceptance scenario of the SDC tentpole, per solver: (a) with one
// planted bit flip and no detection, the recurrence claims convergence
// but the true residual is orders of magnitude off — the regression
// witness for why detection exists; (b) the same run with checksummed
// kernels raises an alarm; (c) SolveResilient with detection and
// residual replacement converges to the ACTUAL solution, with
// Result.TrueResidual at tolerance.
func TestSDCSolverAcceptance(t *testing.T) {
	const tol = 1e-8
	a, b := sdcProblem()

	for _, tc := range sdcCases {
		t.Run(tc.name+"/false-convergence", func(t *testing.T) {
			p := planFor(a, b, 4)
			p.Runtime().SetFaultInjector(fault.NewInjector(singleFlipPlan(tc.seed)))
			claimed := runTrusting(tc.mk(p), tol, 500)
			if p.Runtime().Stats().Corrupted == 0 {
				t.Fatal("injection inert — no task was corrupted")
			}
			if !claimed {
				t.Fatal("recurrence never claimed convergence; the witness needs a different seed")
			}
			if tr := drainedResidual(a, p, b); tr <= 100*tol {
				t.Fatalf("true residual %g — the flip did not falsify convergence", tr)
			}
		})

		t.Run(tc.name+"/detection", func(t *testing.T) {
			p := planFor(a, b, 4)
			mon := p.EnableSDCDetection(0)
			p.Runtime().SetFaultInjector(fault.NewInjector(singleFlipPlan(tc.seed)))
			runTrusting(tc.mk(p), tol, 500)
			p.Drain()
			if p.Runtime().Stats().Corrupted == 0 {
				t.Fatal("injection inert — no task was corrupted")
			}
			if mon.Count() == 0 {
				t.Fatal("checksummed kernels raised no alarm on a planted bit flip")
			}
		})

		t.Run(tc.name+"/resilient-recovery", func(t *testing.T) {
			p := planFor(a, b, 4)
			p.Runtime().SetFaultInjector(fault.NewInjector(singleFlipPlan(tc.seed)))
			mk := tc.mk
			res := SolveResilient(p, func() Solver { return mk(p) }, ResilientConfig{
				Tol: tol, MaxIter: 2000, CheckpointEvery: 5, MaxRestarts: 10,
				DetectSDC: true, ReplaceEvery: 25, DriftTol: 1e-6,
			})
			p.Drain()
			if p.Runtime().Stats().Corrupted == 0 {
				t.Fatal("injection inert — no task was corrupted")
			}
			if !res.Converged {
				t.Fatalf("resilient solve did not converge: %+v", res)
			}
			if !(res.TrueResidual <= tol) {
				t.Fatalf("TrueResidual %g past tolerance %g: %+v", res.TrueResidual, tol, res)
			}
			if res.SDCAlarms == 0 {
				t.Fatalf("no SDC alarms counted despite corruption: %+v", res)
			}
			// The solution itself must be good, by arithmetic the planner
			// never touched.
			if tr := drainedResidual(a, p, b); tr > 10*tol {
				t.Fatalf("host-side true residual %g past tolerance", tr)
			}
		})
	}
}

// Selective recovery accounting: an alarm that localizes corruption to a
// solution piece must restore just that piece (PieceRestores), not burn
// a whole-solve restart.
func TestSDCSelectiveRecoveryKeepsHealthyPieces(t *testing.T) {
	const tol = 1e-8
	a, b := sdcProblem()
	p := planFor(a, b, 4)
	mon := p.EnableSDCDetection(0)

	// Solve partway, checkpoint via the driver, then flip a bit in a
	// solution piece directly and let SolveResilient pick up the pieces.
	s := NewCG(p)
	RunIterations(s, 5)
	p.Drain()
	d := p.SolData(0)
	d[20] = fault.FlipBit(d[20], 52) // piece 1 of 4 × 16 entries

	res := SolveResilient(p, func() Solver { return NewCG(p) }, ResilientConfig{
		Tol: tol, MaxIter: 500, CheckpointEvery: 5, MaxRestarts: 5, DetectSDC: true,
	})
	p.Drain()
	if !res.Converged || res.TrueResidual > tol {
		t.Fatalf("recovery failed: %+v (alarms %v)", res, mon.Alarms())
	}
	if res.SDCAlarms == 0 {
		t.Fatalf("planted flip raised no alarm: %+v", res)
	}
	if res.Restarts != 0 {
		t.Fatalf("selective recovery burned %d whole-solve restarts: %+v", res.Restarts, res)
	}
}

// Residual replacement on a clean run: periodic checks must not fire
// spurious replacements when DriftTol is honest, and the result must
// still report the true residual.
func TestSDCReplaceEveryCleanRun(t *testing.T) {
	const tol = 1e-10
	a, b := sdcProblem()
	for _, tc := range sdcCases {
		t.Run(tc.name, func(t *testing.T) {
			p := planFor(a, b, 4)
			mk := tc.mk
			res := SolveResilient(p, func() Solver { return mk(p) }, ResilientConfig{
				Tol: tol, MaxIter: 2000, CheckpointEvery: 10,
				ReplaceEvery: 10, DriftTol: 1e-4,
			})
			p.Drain()
			if !res.Converged || res.TrueResidual > tol {
				t.Fatalf("clean run with periodic replacement: %+v", res)
			}
			// CG and PipeCG carry an explicit recurrence residual whose clean
			// drift is far below 1e-4 relative; a spurious rebase would mean
			// the drift measurement is broken. (The estimate-based s-step
			// solver always replaces by contract.)
			if tc.name != "sstep-cg" && res.Replacements != 0 {
				t.Fatalf("%d spurious replacements on a clean run (max drift %g)",
					res.Replacements, res.MaxDrift)
			}
		})
	}
}

// ReplaceResidual's drift measurement, exercised directly: corrupt the
// recurrence residual of a mid-solve CG, force a replacement, and the
// solver must converge to the true solution afterwards.
func TestSDCReplaceResidualRebases(t *testing.T) {
	const tol = 1e-9
	a, b := sdcProblem()
	p := planFor(a, b, 4)
	s := NewCG(p)
	RunIterations(s, 5)
	p.Drain()

	// Corrupt the maintained residual vector r (workspace index: pv, q, r
	// are allocated in order; use the solver's own state via reflection-free
	// means — corrupt x instead, which desynchronizes r from b − A·x).
	d := p.SolData(0)
	d[3] = fault.FlipBit(d[3], 52)

	rep := s.ReplaceResidual(1e-6)
	if !rep.Replaced {
		t.Fatalf("corrupted iterate did not trigger replacement: %+v", rep)
	}
	if !(rep.Drift > 0) {
		t.Fatalf("replacement reported no drift: %+v", rep)
	}
	res := Solve(s, tol, 500)
	p.Drain()
	if !res.Converged {
		t.Fatalf("post-replacement solve: %+v", res)
	}
	if tr := drainedResidual(a, p, b); tr > 10*tol {
		t.Fatalf("true residual %g after replacement-led solve", tr)
	}
}
