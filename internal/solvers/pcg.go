package solvers

import "kdrsolvers/internal/core"

// PCG is the preconditioned conjugate gradient method: CG accelerated by
// the user-supplied preconditioner P ≈ A⁻¹ applied through the planner's
// PSolve operation. The paper's Section 7 notes that extending classical
// preconditioners to multi-operator systems is future work; package
// precond provides Jacobi and block-Jacobi constructions that PCG
// consumes.
//
// The fused step batches the r·z and r·r reductions into one combine
// (core.DotBatch) and fuses the solution/residual updates into one
// sweep, so an iteration pays two reduction barriers instead of three.
type PCG struct {
	p           *core.Planner
	pv, q, r, z core.VecID
	rz          *core.Scalar
	res         *core.Scalar
	unfused     bool
}

// NewPCG builds a preconditioned CG solver; the planner must have a
// preconditioner.
func NewPCG(p *core.Planner) *PCG {
	if !p.IsSquare() {
		panic("solvers: PCG requires a square system")
	}
	if !p.HasPreconditioner() {
		panic("solvers: PCG requires a preconditioner (use CG instead)")
	}
	s := &PCG{
		p:  p,
		pv: p.AllocateWorkspace(core.SolShape),
		q:  p.AllocateWorkspace(core.RhsShape),
		r:  p.AllocateWorkspace(core.RhsShape),
		z:  p.AllocateWorkspace(core.SolShape),
	}
	p.BeginPhase("pcg.init")
	residualInit(p, s.r)
	p.PSolve(s.z, s.r) // z = P r
	p.Copy(s.pv, s.z)
	s.rz = p.Dot(s.r, s.z)
	s.res = p.Dot(s.r, s.r)
	return s
}

// NewPCGUnfused builds a PCG solver on the pre-fusion per-operation
// formulation, kept for ablation and benchmarks.
func NewPCGUnfused(p *core.Planner) *PCG {
	s := NewPCG(p)
	s.unfused = true
	return s
}

// Name implements Solver.
func (s *PCG) Name() string { return "PCG" }

// ConvergenceMeasure implements Solver.
func (s *PCG) ConvergenceMeasure() *core.Scalar { return s.res }

// Step implements Solver: one PCG iteration, entirely deferred.
func (s *PCG) Step() {
	p := s.p
	p.BeginPhase("pcg.step")
	defer p.TraceEnd(p.TraceBegin("pcg.step"))
	if s.unfused {
		s.stepUnfused()
		return
	}
	p.Matmul(s.q, s.pv)
	alpha := p.Div(s.rz, p.Dot(s.pv, s.q))
	p.FusedUpdate(
		core.VecUpdate{Kind: core.UpdAxpy, Dst: core.SOL, Alpha: alpha, Src: s.pv},
		core.VecUpdate{Kind: core.UpdAxpy, Dst: s.r, Alpha: alpha, Neg: true, Src: s.q},
	)
	p.PSolve(s.z, s.r)
	d := p.DotBatch(core.DotPair{V: s.r, W: s.z}, core.DotPair{V: s.r, W: s.r})
	rzNew := d[0]
	beta := p.Div(rzNew, s.rz)
	p.Xpay(s.pv, beta, s.z)
	s.rz = rzNew
	s.res = d[1]
}

// stepUnfused is the per-operation PCG iteration.
func (s *PCG) stepUnfused() {
	p := s.p
	p.Matmul(s.q, s.pv)
	alpha := p.Div(s.rz, p.Dot(s.pv, s.q))
	p.Axpy(core.SOL, alpha, s.pv)
	p.Axpy(s.r, p.Neg(alpha), s.q)
	p.PSolve(s.z, s.r)
	rzNew := p.Dot(s.r, s.z)
	beta := p.Div(rzNew, s.rz)
	p.Xpay(s.pv, beta, s.z)
	s.rz = rzNew
	s.res = p.Dot(s.r, s.r)
}
