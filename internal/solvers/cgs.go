package solvers

import "kdrsolvers/internal/core"

// CGS is Sonneveld's conjugate gradient squared method for general
// square systems: a transpose-free relative of BiCG that applies the
// contraction polynomial twice per iteration. It often converges in
// fewer iterations than BiCG but with rougher residual behavior;
// BiCGStab (its smoothed descendant) is usually preferred. The
// implementation follows the Templates formulation.
type CGS struct {
	p *core.Planner
	// Workspaces: residual r, shadow residual r̃, and the u/p/q/v/uq
	// vectors of the recurrence (vhat doubles as qhat).
	r, rt    core.VecID
	u, pp, q core.VecID
	vhat, uq core.VecID
	rho      *core.Scalar
	k        int
	res      *core.Scalar
	bd       breakdownFlag
}

// NewCGS builds a CGS solver on a finalized square system.
func NewCGS(p *core.Planner) *CGS {
	if !p.IsSquare() {
		panic("solvers: CGS requires a square system")
	}
	s := &CGS{
		p:    p,
		r:    p.AllocateWorkspace(core.RhsShape),
		rt:   p.AllocateWorkspace(core.RhsShape),
		u:    p.AllocateWorkspace(core.SolShape),
		pp:   p.AllocateWorkspace(core.SolShape),
		q:    p.AllocateWorkspace(core.SolShape),
		vhat: p.AllocateWorkspace(core.RhsShape),
		uq:   p.AllocateWorkspace(core.SolShape),
	}
	p.BeginPhase("cgs.init")
	residualInit(p, s.r)
	p.Copy(s.rt, s.r)
	s.res = p.Dot(s.r, s.r)
	return s
}

// Name implements Solver.
func (s *CGS) Name() string { return "CGS" }

// ConvergenceMeasure implements Solver.
func (s *CGS) ConvergenceMeasure() *core.Scalar { return s.res }

// Breakdown implements BreakdownChecker: it reports a vanished ρ or
// r̃ᵀv̂ denominator (wrapping ErrBreakdown), or nil.
func (s *CGS) Breakdown() error { return s.bd.get() }

// Step implements Solver: one CGS iteration, entirely deferred.
func (s *CGS) Step() {
	p := s.p
	p.BeginPhase("cgs.step")
	defer p.TraceEnd(p.TraceBegin("cgs.step"))
	rho := p.Dot(s.rt, s.r)
	if s.k == 0 {
		p.Copy(s.u, s.r)
		p.Copy(s.pp, s.u)
	} else {
		beta := guardedDiv(p, &s.bd, "cgs", "rho", rho, s.rho)
		// u = r + β q
		p.Copy(s.u, s.r)
		p.Axpy(s.u, beta, s.q)
		// p = u + β (q + β p)
		p.Scal(s.pp, beta)
		p.Axpy(s.pp, p.Constant(1), s.q)
		p.Scal(s.pp, beta)
		p.Axpy(s.pp, p.Constant(1), s.u)
	}
	s.k++
	p.Matmul(s.vhat, s.pp) // v̂ = A p
	alpha := guardedDiv(p, &s.bd, "cgs", "rt·v", rho, p.Dot(s.rt, s.vhat))
	// q = u − α v̂
	p.Copy(s.q, s.u)
	p.Axpy(s.q, p.Neg(alpha), s.vhat)
	// uq = u + q; x += α uq
	p.Copy(s.uq, s.u)
	p.Axpy(s.uq, p.Constant(1), s.q)
	p.Axpy(core.SOL, alpha, s.uq)
	// r −= α A uq (vhat reused as q̂)
	p.Matmul(s.vhat, s.uq)
	p.Axpy(s.r, p.Neg(alpha), s.vhat)
	s.rho = rho
	s.res = p.Dot(s.r, s.r)
}
