package solvers

import "kdrsolvers/internal/core"

// BiCG is the biconjugate gradient method for general square systems. It
// is the one solver here that exercises the adjoint product A^T·v, which
// the planner supports through the same universal co-partitioning
// operators (projected along the column relation instead of the row
// relation).
type BiCG struct {
	p                    *core.Planner
	r, rt, pv, pt, q, qt core.VecID
	rho                  *core.Scalar
	res                  *core.Scalar
	bd                   breakdownFlag
}

// NewBiCG builds a BiCG solver on a finalized square system.
func NewBiCG(p *core.Planner) *BiCG {
	if !p.IsSquare() {
		panic("solvers: BiCG requires a square system")
	}
	s := &BiCG{
		p:  p,
		r:  p.AllocateWorkspace(core.RhsShape),
		rt: p.AllocateWorkspace(core.RhsShape),
		pv: p.AllocateWorkspace(core.SolShape),
		pt: p.AllocateWorkspace(core.SolShape),
		q:  p.AllocateWorkspace(core.RhsShape),
		qt: p.AllocateWorkspace(core.RhsShape),
	}
	p.BeginPhase("bicg.init")
	residualInit(p, s.r)
	p.Copy(s.rt, s.r) // shadow residual r̃₀ = r₀
	p.Copy(s.pv, s.r)
	p.Copy(s.pt, s.rt)
	s.rho = p.Dot(s.rt, s.r)
	s.res = p.Dot(s.r, s.r)
	return s
}

// Name implements Solver.
func (s *BiCG) Name() string { return "BiCG" }

// ConvergenceMeasure implements Solver.
func (s *BiCG) ConvergenceMeasure() *core.Scalar { return s.res }

// Breakdown implements BreakdownChecker: it reports a vanished ρ or
// p̃ᵀAp denominator (wrapping ErrBreakdown), or nil. Both breakdowns are
// classic for BiCG — p̃ᵀAp = 0 happens at the first step on skew-
// symmetric systems.
func (s *BiCG) Breakdown() error { return s.bd.get() }

// Step implements Solver: one BiCG iteration, entirely deferred.
func (s *BiCG) Step() {
	p := s.p
	p.BeginPhase("bicg.step")
	defer p.TraceEnd(p.TraceBegin("bicg.step"))
	p.Matmul(s.q, s.pv)   // q = A p
	p.MatmulT(s.qt, s.pt) // q̃ = Aᵀ p̃
	alpha := guardedDiv(p, &s.bd, "bicg", "pt·Ap", s.rho, p.Dot(s.pt, s.q))
	p.Axpy(core.SOL, alpha, s.pv)
	p.Axpy(s.r, p.Neg(alpha), s.q)
	p.Axpy(s.rt, p.Neg(alpha), s.qt)
	rhoNew := p.Dot(s.rt, s.r)
	beta := guardedDiv(p, &s.bd, "bicg", "rho", rhoNew, s.rho)
	p.Xpay(s.pv, beta, s.r)
	p.Xpay(s.pt, beta, s.rt)
	s.rho = rhoNew
	s.res = p.Dot(s.r, s.r)
}
