package solvers

import "math"

// Host-side small dense linear algebra shared by the GMRES family and
// the s-step methods: the (m+1)×m Hessenberg least-squares solve, a
// Jacobi eigensolver for the tiny symmetric projections (Ritz values for
// Newton shifts, recycling-space harvest), and Leja ordering of shifts.
// Everything here is O(m³) on m ≲ a few dozen — negligible next to one
// SpMV — and runs synchronously on already-pulled scalar values.

// givensLS is the incremental Givens least-squares state for a growing
// Hessenberg system min‖βe₁ − H y‖: the rotations applied so far and the
// rotated right-hand side. After j columns, |g[j]| is the exact residual
// norm of the least-squares problem — the GMRES residual estimate.
type givensLS struct {
	cs, sn []float64
	g      []float64
	r      [][]float64 // rotated upper-triangular columns
}

func newGivensLS(beta float64, m int) *givensLS {
	ls := &givensLS{g: make([]float64, m+1)}
	ls.g[0] = beta
	return ls
}

// push absorbs Hessenberg column j (length j+2: h_{0,j} … h_{j+1,j}) and
// returns the updated residual estimate |g_{j+1}|.
func (ls *givensLS) push(col []float64) float64 {
	j := len(ls.cs)
	h := make([]float64, j+2)
	copy(h, col)
	for i := 0; i < j; i++ {
		t := ls.cs[i]*h[i] + ls.sn[i]*h[i+1]
		h[i+1] = -ls.sn[i]*h[i] + ls.cs[i]*h[i+1]
		h[i] = t
	}
	d := math.Hypot(h[j], h[j+1])
	var c, s float64 = 1, 0
	if d != 0 {
		c, s = h[j]/d, h[j+1]/d
	}
	h[j] = d
	h[j+1] = 0
	ls.cs = append(ls.cs, c)
	ls.sn = append(ls.sn, s)
	t := c*ls.g[j] + s*ls.g[j+1]
	ls.g[j+1] = -s*ls.g[j] + c*ls.g[j+1]
	ls.g[j] = t
	ls.r = append(ls.r, h)
	return math.Abs(ls.g[j+1])
}

// solve back-substitutes for the least-squares coefficients y over the
// columns absorbed so far.
func (ls *givensLS) solve() []float64 {
	m := len(ls.cs)
	y := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		t := ls.g[i]
		for k := i + 1; k < m; k++ {
			t -= ls.r[k][i] * y[k]
		}
		if ls.r[i][i] != 0 {
			t /= ls.r[i][i]
		}
		y[i] = t
	}
	return y
}

// solveHessenberg solves min‖βe₁ − H y‖ for an (m+1)×m Hessenberg matrix
// given as columns h[j] (each of length ≥ j+2), returning the
// coefficients and the least-squares residual norm.
func solveHessenberg(h [][]float64, beta float64) (y []float64, res float64) {
	ls := newGivensLS(beta, len(h))
	res = beta
	for j := range h {
		res = ls.push(h[j][:j+2])
	}
	return ls.solve(), res
}

// jacobiEigen computes the eigendecomposition of a small symmetric
// matrix by cyclic Jacobi rotations. It returns the eigenvalues and the
// matrix of eigenvectors (vecs[k] is the unit eigenvector for vals[k]).
// The input is not modified.
func jacobiEigen(a [][]float64) (vals []float64, vecs [][]float64) {
	n := len(a)
	m := make([][]float64, n)
	vecs = make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]float64, n)
		copy(m[i], a[i])
		vecs[i] = make([]float64, n)
		vecs[i][i] = 1
	}
	for sweep := 0; sweep < 50; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-28 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if m[p][q] == 0 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := vecs[k][p], vecs[k][q]
					vecs[k][p] = c*vkp - s*vkq
					vecs[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i][i]
	}
	// vecs is stored with eigenvector k in column k; transpose so the
	// caller indexes vecs[k][i] as component i of eigenvector k.
	out := make([][]float64, n)
	for k := 0; k < n; k++ {
		out[k] = make([]float64, n)
		for i := 0; i < n; i++ {
			out[k][i] = vecs[i][k]
		}
	}
	return vals, out
}

// lejaOrder reorders shift candidates into Leja order: start from the
// largest magnitude, then greedily pick the candidate maximizing the
// product of distances to those already chosen. Leja ordering keeps the
// Newton basis polynomials from under- or overflowing — applying shifts
// in sorted order degrades as badly as the monomial basis.
func lejaOrder(vals []float64) []float64 {
	n := len(vals)
	if n == 0 {
		return nil
	}
	rest := append([]float64(nil), vals...)
	out := make([]float64, 0, n)
	best := 0
	for i, v := range rest {
		if math.Abs(v) > math.Abs(rest[best]) {
			best = i
		}
	}
	out = append(out, rest[best])
	rest = append(rest[:best], rest[best+1:]...)
	for len(rest) > 0 {
		best = 0
		bestScore := math.Inf(-1)
		for i, v := range rest {
			score := 0.0
			for _, u := range out {
				score += math.Log(math.Max(math.Abs(v-u), 1e-300))
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		out = append(out, rest[best])
		rest = append(rest[:best], rest[best+1:]...)
	}
	return out
}

// ritzFromCG recovers Ritz values of A from CG's α/β coefficient history
// via the classical CG–Lanczos correspondence: the Lanczos tridiagonal
// has diagonal 1/αᵢ + βᵢ₋₁/αᵢ₋₁ and off-diagonal √βᵢ/αᵢ. The Ritz
// values are the eigenvalues of that tridiagonal — the spectral estimates
// the Newton-basis shifts need, obtained with no extra reductions.
func ritzFromCG(alphas, betas []float64) []float64 {
	n := len(alphas)
	if n == 0 {
		return nil
	}
	t := make([][]float64, n)
	for i := range t {
		t[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		t[i][i] = 1 / alphas[i]
		if i > 0 {
			t[i][i] += betas[i-1] / alphas[i-1]
		}
		if i < n-1 {
			od := math.Sqrt(math.Max(betas[i], 0)) / alphas[i]
			t[i][i+1] = od
			t[i+1][i] = od
		}
	}
	vals, _ := jacobiEigen(t)
	return vals
}
