package solvers

import (
	"math"
	"math/rand"
	"testing"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sparse"
)

// denseSolve solves Ax = b by Gaussian elimination with partial pivoting,
// as the ground truth for small systems.
func denseSolve(a sparse.Matrix, b []float64) []float64 {
	rows, cols := sparse.Dims(a)
	if rows != cols {
		panic("denseSolve: square only")
	}
	n := int(rows)
	m := sparse.ToDense(a)
	x := append([]float64{}, b...)
	for k := 0; k < n; k++ {
		// Pivot.
		piv := k
		for i := k + 1; i < n; i++ {
			if math.Abs(m[i*n+k]) > math.Abs(m[piv*n+k]) {
				piv = i
			}
		}
		if piv != k {
			for j := 0; j < n; j++ {
				m[k*n+j], m[piv*n+j] = m[piv*n+j], m[k*n+j]
			}
			x[k], x[piv] = x[piv], x[k]
		}
		for i := k + 1; i < n; i++ {
			f := m[i*n+k] / m[k*n+k]
			for j := k; j < n; j++ {
				m[i*n+j] -= f * m[k*n+j]
			}
			x[i] -= f * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= m[i*n+j] * x[j]
		}
		x[i] /= m[i*n+i]
	}
	return x
}

// planFor builds a single-operator planner for Ax = b with x0 = 0.
func planFor(a sparse.Matrix, b []float64, pieces int) *core.Planner {
	n := int64(len(b))
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(2)})
	si := p.AddSolVector(make([]float64, n), index.EqualPartition(index.NewSpace("D", n), pieces))
	ri := p.AddRHSVector(b, index.EqualPartition(index.NewSpace("R", n), pieces))
	p.AddOperator(a, si, ri)
	p.Finalize()
	return p
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// convectionDiffusion builds a nonsymmetric 1D convection-diffusion
// matrix: tridiagonal with -1-c, 2, -1+c entries.
func convectionDiffusion(n int64, c float64) *sparse.CSR {
	var coords []sparse.Coord
	for i := int64(0); i < n; i++ {
		if i > 0 {
			coords = append(coords, sparse.Coord{Row: i, Col: i - 1, Val: -1 - c})
		}
		coords = append(coords, sparse.Coord{Row: i, Col: i, Val: 2.4})
		if i < n-1 {
			coords = append(coords, sparse.Coord{Row: i, Col: i + 1, Val: -1 + c})
		}
	}
	return sparse.CSRFromCoords(n, n, coords)
}

func TestCGSolvesPoisson(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, pieces := range []int{1, 4} {
		a := sparse.Laplacian2D(6, 6)
		b := make([]float64, 36)
		for i := range b {
			b[i] = r.Float64()
		}
		want := denseSolve(a, b)
		p := planFor(a, b, pieces)
		s := NewCG(p)
		res := Solve(s, 1e-10, 200)
		p.Drain()
		if !res.Converged {
			t.Fatalf("pieces=%d: CG did not converge: %+v", pieces, res)
		}
		if d := maxAbsDiff(p.SolData(0), want); d > 1e-8 {
			t.Errorf("pieces=%d: CG solution off by %g", pieces, d)
		}
	}
}

func TestCGOnAllStencils(t *testing.T) {
	cases := []sparse.Matrix{
		sparse.Laplacian1D(30),
		sparse.Laplacian2D(5, 6),
		sparse.Laplacian3D(3, 3, 3),
		sparse.Laplacian3D27(3, 3, 3),
	}
	for _, a := range cases {
		n, _ := sparse.Dims(a)
		b := make([]float64, n)
		for i := range b {
			b[i] = 1
		}
		want := denseSolve(a, b)
		p := planFor(a, b, 3)
		res := Solve(NewCG(p), 1e-10, 500)
		p.Drain()
		if !res.Converged {
			t.Errorf("%s: CG failed: %+v", a.Format(), res)
			continue
		}
		if d := maxAbsDiff(p.SolData(0), want); d > 1e-7 {
			t.Errorf("%s: solution off by %g", a.Format(), d)
		}
	}
}

func TestCGMatrixFreeOperator(t *testing.T) {
	op := sparse.NewStencilOperator(sparse.Stencil2D5, index.NewGrid(5, 5))
	ref := sparse.Laplacian2D(5, 5)
	b := make([]float64, 25)
	for i := range b {
		b[i] = float64(i%3) + 1
	}
	want := denseSolve(ref, b)
	p := planFor(op, b, 4)
	res := Solve(NewCG(p), 1e-10, 200)
	p.Drain()
	if !res.Converged {
		t.Fatalf("CG on matrix-free operator failed: %+v", res)
	}
	if d := maxAbsDiff(p.SolData(0), want); d > 1e-8 {
		t.Errorf("solution off by %g", d)
	}
}

func TestCGResidualMonotoneInANorm(t *testing.T) {
	// CG property: the A-norm of the error decreases monotonically on SPD
	// systems.
	a := sparse.Laplacian1D(24)
	b := make([]float64, 24)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	want := denseSolve(a, b)
	p := planFor(a, b, 2)
	s := NewCG(p)
	prev := math.Inf(1)
	for it := 0; it < 24; it++ {
		s.Step()
		p.Drain()
		x := p.SolData(0)
		// e_A² = (x-x*)ᵀ A (x-x*).
		e := make([]float64, 24)
		for i := range e {
			e[i] = x[i] - want[i]
		}
		ae := make([]float64, 24)
		sparse.SpMV(a, ae, e)
		var eA float64
		for i := range e {
			eA += e[i] * ae[i]
		}
		if eA > prev*(1+1e-9) {
			t.Fatalf("A-norm error grew at iteration %d: %g > %g", it, eA, prev)
		}
		prev = eA
	}
}

func TestBiCGStabSolvesNonsymmetric(t *testing.T) {
	a := convectionDiffusion(40, 0.4)
	b := make([]float64, 40)
	for i := range b {
		b[i] = 1 + float64(i%5)
	}
	want := denseSolve(a, b)
	p := planFor(a, b, 4)
	res := Solve(NewBiCGStab(p), 1e-10, 300)
	p.Drain()
	if !res.Converged {
		t.Fatalf("BiCGStab failed: %+v", res)
	}
	if d := maxAbsDiff(p.SolData(0), want); d > 1e-7 {
		t.Errorf("solution off by %g", d)
	}
}

func TestGMRESSolvesNonsymmetric(t *testing.T) {
	a := convectionDiffusion(30, 0.3)
	b := make([]float64, 30)
	for i := range b {
		b[i] = float64((i*7)%11) / 3
	}
	want := denseSolve(a, b)
	p := planFor(a, b, 3)
	s := NewGMRES(p, 10)
	// Convergence measure updates at restart boundaries; run whole cycles.
	RunIterations(s, 120)
	p.Drain()
	if d := maxAbsDiff(p.SolData(0), want); d > 1e-6 {
		t.Errorf("GMRES solution off by %g", d)
	}
}

func TestGMRESRestartBoundary(t *testing.T) {
	// The residual measure must shrink across restart cycles.
	a := sparse.Laplacian1D(50)
	b := make([]float64, 50)
	for i := range b {
		b[i] = 1
	}
	p := planFor(a, b, 2)
	s := NewGMRES(p, 5)
	r0 := math.Sqrt(s.ConvergenceMeasure().Value())
	RunIterations(s, 25) // five full cycles
	r1 := math.Sqrt(s.ConvergenceMeasure().Value())
	if r1 >= r0 {
		t.Fatalf("residual did not shrink: %g -> %g", r0, r1)
	}
}

func TestMINRESSolvesSPD(t *testing.T) {
	a := sparse.Laplacian2D(5, 5)
	b := make([]float64, 25)
	for i := range b {
		b[i] = float64(i%4) - 1.5
	}
	want := denseSolve(a, b)
	p := planFor(a, b, 3)
	res := Solve(NewMINRES(p), 1e-9, 300)
	p.Drain()
	if !res.Converged {
		t.Fatalf("MINRES failed: %+v", res)
	}
	if d := maxAbsDiff(p.SolData(0), want); d > 1e-6 {
		t.Errorf("solution off by %g", d)
	}
}

func TestMINRESSolvesIndefinite(t *testing.T) {
	// Symmetric indefinite: diagonal blocks of +2 and −2 coupled weakly —
	// CG would fail here, MINRES must not.
	n := int64(20)
	var coords []sparse.Coord
	for i := int64(0); i < n; i++ {
		v := 2.0
		if i%2 == 1 {
			v = -2.0
		}
		coords = append(coords, sparse.Coord{Row: i, Col: i, Val: v})
		if i+1 < n {
			coords = append(coords, sparse.Coord{Row: i, Col: i + 1, Val: 0.3})
			coords = append(coords, sparse.Coord{Row: i + 1, Col: i, Val: 0.3})
		}
	}
	a := sparse.CSRFromCoords(n, n, coords)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	want := denseSolve(a, b)
	p := planFor(a, b, 2)
	res := Solve(NewMINRES(p), 1e-9, 200)
	p.Drain()
	if !res.Converged {
		t.Fatalf("MINRES on indefinite system failed: %+v", res)
	}
	if d := maxAbsDiff(p.SolData(0), want); d > 1e-6 {
		t.Errorf("solution off by %g", d)
	}
}

func TestBiCGSolvesNonsymmetric(t *testing.T) {
	a := convectionDiffusion(24, 0.2)
	b := make([]float64, 24)
	for i := range b {
		b[i] = float64(i) / 7
	}
	want := denseSolve(a, b)
	p := planFor(a, b, 3)
	res := Solve(NewBiCG(p), 1e-10, 200)
	p.Drain()
	if !res.Converged {
		t.Fatalf("BiCG failed: %+v", res)
	}
	if d := maxAbsDiff(p.SolData(0), want); d > 1e-7 {
		t.Errorf("solution off by %g", d)
	}
}

func TestPCGWithJacobi(t *testing.T) {
	// Badly scaled SPD system: diag(1..n) + Laplacian coupling. Jacobi
	// preconditioning must converge and beat plain CG's iteration count.
	n := int64(40)
	var coords []sparse.Coord
	for i := int64(0); i < n; i++ {
		coords = append(coords, sparse.Coord{Row: i, Col: i, Val: 2 + float64(i)})
		if i+1 < n {
			coords = append(coords, sparse.Coord{Row: i, Col: i + 1, Val: -1})
			coords = append(coords, sparse.Coord{Row: i + 1, Col: i, Val: -1})
		}
	}
	a := sparse.CSRFromCoords(n, n, coords)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	want := denseSolve(a, b)

	plain := planFor(a, b, 2)
	plainRes := Solve(NewCG(plain), 1e-10, 500)
	plain.Drain()

	p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
	si := p.AddSolVector(make([]float64, n), index.EqualPartition(index.NewSpace("D", n), 2))
	ri := p.AddRHSVector(append([]float64{}, b...), index.EqualPartition(index.NewSpace("R", n), 2))
	p.AddOperator(a, si, ri)
	diag := make([]sparse.Coord, n)
	for i := int64(0); i < n; i++ {
		diag[i] = sparse.Coord{Row: i, Col: i, Val: 1 / (2 + float64(i))}
	}
	p.AddPreconditioner(sparse.CSRFromCoords(n, n, diag), si, ri)
	p.Finalize()
	res := Solve(NewPCG(p), 1e-10, 500)
	p.Drain()
	if !res.Converged {
		t.Fatalf("PCG failed: %+v", res)
	}
	if d := maxAbsDiff(p.SolData(0), want); d > 1e-7 {
		t.Errorf("solution off by %g", d)
	}
	if res.Iterations >= plainRes.Iterations {
		t.Errorf("Jacobi PCG (%d iters) should beat CG (%d iters) on this system",
			res.Iterations, plainRes.Iterations)
	}
}

func TestMultiOperatorCGMatchesSingle(t *testing.T) {
	// Solving the Figure 9 split formulation must give the same answer as
	// the assembled system.
	const nx, ny = 8, 4
	n := int64(nx * ny)
	full := sparse.Laplacian2D(nx, ny)
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Cos(float64(i))
	}
	want := denseSolve(full, b)

	half := n / 2
	var blocks [2][2][]sparse.Coord
	for _, c := range sparse.CoordsFromCSR(full) {
		bi, bj := c.Row/half, c.Col/half
		blocks[bi][bj] = append(blocks[bi][bj],
			sparse.Coord{Row: c.Row % half, Col: c.Col % half, Val: c.Val})
	}
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(2)})
	d1 := p.AddSolVector(make([]float64, half), index.EqualPartition(index.NewSpace("D1", half), 2))
	d2 := p.AddSolVector(make([]float64, half), index.EqualPartition(index.NewSpace("D2", half), 2))
	r1 := p.AddRHSVector(append([]float64{}, b[:half]...), index.EqualPartition(index.NewSpace("R1", half), 2))
	r2 := p.AddRHSVector(append([]float64{}, b[half:]...), index.EqualPartition(index.NewSpace("R2", half), 2))
	sols, rhss := []int{d1, d2}, []int{r1, r2}
	for bi := 0; bi < 2; bi++ {
		for bj := 0; bj < 2; bj++ {
			p.AddOperator(sparse.CSRFromCoords(half, half, blocks[bi][bj]), sols[bj], rhss[bi])
		}
	}
	p.Finalize()
	res := Solve(NewCG(p), 1e-10, 300)
	p.Drain()
	if !res.Converged {
		t.Fatalf("multi-operator CG failed: %+v", res)
	}
	got := append(append([]float64{}, p.SolData(0)...), p.SolData(1)...)
	if d := maxAbsDiff(got, want); d > 1e-7 {
		t.Errorf("multi-operator solution off by %g", d)
	}
}

func TestSolverRegistry(t *testing.T) {
	a := sparse.Laplacian1D(10)
	for _, name := range Names {
		b := make([]float64, 10)
		for i := range b {
			b[i] = 1
		}
		p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
		si := p.AddSolVector(make([]float64, 10), index.Partition{})
		ri := p.AddRHSVector(b, index.Partition{})
		p.AddOperator(a, si, ri)
		if name == "pcg" {
			diag := make([]sparse.Coord, 10)
			for i := range diag {
				diag[i] = sparse.Coord{Row: int64(i), Col: int64(i), Val: 0.5}
			}
			p.AddPreconditioner(sparse.CSRFromCoords(10, 10, diag), si, ri)
		}
		p.Finalize()
		s := New(name, p)
		if s.Name() == "" {
			t.Errorf("%s: empty name", name)
		}
		// Few enough steps that Krylov exact convergence (n = 10) is not
		// reached — stepping past it divides 0/0 by design.
		RunIterations(s, 5)
		p.Drain()
		res := math.Sqrt(s.ConvergenceMeasure().Value())
		if math.IsNaN(res) {
			t.Errorf("%s: residual is NaN", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown solver should panic")
		}
	}()
	New("nope", nil)
}

func TestSolverPanicsOnNonSquare(t *testing.T) {
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
	p.AddSolVector(make([]float64, 3), index.Partition{})
	p.AddRHSVector(make([]float64, 5), index.Partition{})
	p.AddOperator(sparse.CSRFromCoords(5, 3, []sparse.Coord{{Row: 0, Col: 0, Val: 1}}), 0, 0)
	p.Finalize()
	for _, mk := range []func(){
		func() { NewCG(p) },
		func() { NewBiCGStab(p) },
		func() { NewGMRES(p, 5) },
		func() { NewMINRES(p) },
		func() { NewBiCG(p) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected non-square panic")
				}
			}()
			mk()
		}()
	}
}

func TestSolveConvergedImmediately(t *testing.T) {
	// b = 0 with x0 = 0 converges in zero iterations.
	a := sparse.Laplacian1D(8)
	p := planFor(a, make([]float64, 8), 1)
	res := Solve(NewCG(p), 1e-12, 10)
	p.Drain()
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("expected immediate convergence, got %+v", res)
	}
}

func TestCGSSolvesNonsymmetric(t *testing.T) {
	a := convectionDiffusion(36, 0.25)
	b := make([]float64, 36)
	for i := range b {
		b[i] = 1 + float64(i%4)
	}
	want := denseSolve(a, b)
	p := planFor(a, b, 3)
	res := Solve(NewCGS(p), 1e-10, 300)
	p.Drain()
	if !res.Converged {
		t.Fatalf("CGS failed: %+v", res)
	}
	if d := maxAbsDiff(p.SolData(0), want); d > 1e-6 {
		t.Errorf("solution off by %g", d)
	}
}

func TestCGSMatchesBiCGStabSolution(t *testing.T) {
	// Different transpose-free methods, same answer.
	a := convectionDiffusion(28, 0.15)
	b := make([]float64, 28)
	for i := range b {
		b[i] = math.Sin(float64(i) / 3)
	}
	p1 := planFor(a, append([]float64{}, b...), 2)
	p2 := planFor(a, append([]float64{}, b...), 2)
	r1 := Solve(NewCGS(p1), 1e-11, 400)
	r2 := Solve(NewBiCGStab(p2), 1e-11, 400)
	p1.Drain()
	p2.Drain()
	if !r1.Converged || !r2.Converged {
		t.Fatalf("convergence: cgs=%+v bicgstab=%+v", r1, r2)
	}
	if d := maxAbsDiff(p1.SolData(0), p2.SolData(0)); d > 1e-7 {
		t.Errorf("solutions differ by %g", d)
	}
}

func TestChebyshevSolvesWithKnownBounds(t *testing.T) {
	// 1D Laplacian eigenvalues are 2 - 2cos(kπ/(n+1)) ∈ (0, 4).
	n := int64(40)
	a := sparse.Laplacian1D(n)
	lmin := 2 - 2*math.Cos(math.Pi/float64(n+1))
	lmax := 2 - 2*math.Cos(float64(n)*math.Pi/float64(n+1))
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i)/5) + 1
	}
	want := denseSolve(a, b)
	p := planFor(a, b, 2)
	s := NewChebyshev(p, lmin, lmax)
	res := Solve(s, 1e-9, 2000)
	p.Drain()
	if !res.Converged {
		t.Fatalf("Chebyshev failed: %+v", res)
	}
	if d := maxAbsDiff(p.SolData(0), want); d > 1e-6 {
		t.Errorf("solution off by %g", d)
	}
}

func TestChebyshevIterationIsReductionFree(t *testing.T) {
	// The headline property: fixed-iteration Chebyshev launches no
	// reduction tasks at all.
	a := sparse.Laplacian1D(32)
	p := planFor(a, make([]float64, 32), 4)
	s := NewChebyshev(p, 0.01, 4)
	before := p.Runtime().Graph().Len()
	RunIterations(s, 10)
	p.Drain()
	g := p.Runtime().Graph()
	for _, nd := range g.Nodes[before:] {
		if nd.Name == "dot.partial" || nd.Name == "dot.reduce" {
			t.Fatalf("Chebyshev iteration launched a reduction: %s", nd.Name)
		}
	}
}

func TestChebyshevValidation(t *testing.T) {
	a := sparse.Laplacian1D(4)
	p := planFor(a, make([]float64, 4), 1)
	for _, fn := range []func(){
		func() { NewChebyshev(p, 0, 1) },
		func() { NewChebyshev(p, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	// Degenerate single-point spectrum converges in a few iterations.
	id := sparse.Identity(6)
	b := []float64{1, 2, 3, 4, 5, 6}
	p2 := planFor(id, b, 2)
	res := Solve(NewChebyshev(p2, 1, 1), 1e-12, 50)
	p2.Drain()
	if !res.Converged {
		t.Fatalf("identity system failed: %+v", res)
	}
}

func TestGMRESHappyBreakdown(t *testing.T) {
	// A diagonal matrix with two distinct eigenvalues: the Krylov space
	// K(A, r0) has dimension 2, so GMRES(10) exhausts it ("happy
	// breakdown") well before the restart boundary. The Arnoldi
	// normalization must not divide by the vanished h_{j+1,j} — doing so
	// NaN-poisons the basis and the reported residual.
	n := int64(6)
	d := make([]float64, n)
	for i := range d {
		if i%2 == 0 {
			d[i] = 5
		} else {
			d[i] = 2
		}
	}
	a := sparse.DiagonalCSR(d)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	want := denseSolve(a, b)
	p := planFor(a, b, 3)
	res := Solve(NewGMRES(p, 10), 1e-10, 50)
	p.Drain()
	if err := p.Runtime().Err(); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Residual) {
		t.Fatalf("residual is NaN after breakdown: %+v", res)
	}
	if !res.Converged {
		t.Fatalf("GMRES did not converge: %+v", res)
	}
	if res.Iterations >= 10 {
		t.Fatalf("converged in %d iterations, want fewer than the restart length", res.Iterations)
	}
	if diff := maxAbsDiff(p.SolData(0), want); diff > 1e-8 {
		t.Errorf("solution off by %g", diff)
	}
}
