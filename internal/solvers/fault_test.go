package solvers

import (
	"errors"
	"math"
	"testing"

	"kdrsolvers/internal/fault"
	"kdrsolvers/internal/sparse"
	"kdrsolvers/internal/taskrt"
)

// skewSymmetric builds a block-diagonal matrix of 2×2 rotation blocks
// [[0, 1], [-1, 0]]: nonsingular but exactly skew-symmetric, so
// (v, Av) = 0 for every v — the textbook BiCG-family breakdown at the
// very first step (p̃ᵀAp vanishes when r̃0 = r0).
func skewSymmetric(blocks int64) *sparse.CSR {
	var coords []sparse.Coord
	for b := int64(0); b < blocks; b++ {
		i := 2 * b
		coords = append(coords,
			sparse.Coord{Row: i, Col: i + 1, Val: 1},
			sparse.Coord{Row: i + 1, Col: i, Val: -1},
		)
	}
	return sparse.CSRFromCoords(2*blocks, 2*blocks, coords)
}

func TestFaultBreakdownGuards(t *testing.T) {
	a := skewSymmetric(4)
	b := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, name := range []string{"bicg", "bicgstab", "cgs"} {
		t.Run(name, func(t *testing.T) {
			p := planFor(a, b, 2)
			s := New(name, p)
			res := Solve(s, 1e-10, 50)
			p.Drain()
			if res.Converged {
				t.Fatalf("%s converged on a skew-symmetric system?! %+v", name, res)
			}
			if res.Breakdown == nil {
				t.Fatalf("%s did not report breakdown: %+v", name, res)
			}
			if !errors.Is(res.Breakdown, ErrBreakdown) {
				t.Fatalf("Breakdown %v does not wrap ErrBreakdown", res.Breakdown)
			}
			// The guard zeroes the vanished quotient, so nothing NaN-poisons
			// the iterate or the residual.
			if math.IsNaN(res.Residual) || math.IsInf(res.Residual, 0) {
				t.Fatalf("%s residual = %g, want finite after guarded breakdown", name, res.Residual)
			}
			for _, v := range p.SolData(0) {
				if math.IsNaN(v) {
					t.Fatalf("%s left NaN in the iterate", name)
				}
			}
			if err := p.Runtime().Err(); err != nil {
				t.Fatalf("%s runtime error: %v", name, err)
			}
		})
	}
}

func TestFaultBreakdownGuardsStayQuietOnHealthySystems(t *testing.T) {
	// The guards must never misfire on a well-conditioned solve.
	a := convectionDiffusion(40, 0.3)
	b := make([]float64, 40)
	for i := range b {
		b[i] = 1
	}
	for _, name := range []string{"bicg", "bicgstab", "cgs"} {
		p := planFor(a, b, 4)
		res := Solve(New(name, p), 1e-9, 300)
		p.Drain()
		if !res.Converged || res.Breakdown != nil {
			t.Fatalf("%s on healthy system: %+v", name, res)
		}
	}
}

func TestFaultCheckpointRestoreRoundtrip(t *testing.T) {
	a := sparse.Laplacian2D(5, 5)
	b := make([]float64, 25)
	for i := range b {
		// A spectrally rich right-hand side: the all-ones vector excites so
		// few eigenmodes on a tiny symmetric Laplacian that CG converges in
		// a handful of steps and the roundtrip check goes vacuous.
		b[i] = float64(i%7) + 0.25*float64(i)
	}
	p := planFor(a, b, 2)
	s := NewCG(p)
	RunIterations(s, 3)
	p.Drain()
	ckpt := p.CheckpointSol()
	saved := append([]float64{}, p.SolData(0)...)

	RunIterations(s, 3)
	p.Drain()
	if maxAbsDiff(saved, p.SolData(0)) == 0 {
		t.Fatal("iterating did not move the solution; roundtrip test is vacuous")
	}
	p.RestoreSol(ckpt)
	if d := maxAbsDiff(saved, p.SolData(0)); d != 0 {
		t.Fatalf("restored solution off by %g", d)
	}
	// The checkpoint is a snapshot, not an alias: later restores are
	// unaffected by solver progress after CheckpointSol.
	if maxAbsDiff(ckpt[0], p.SolData(0)[:len(ckpt[0])]) != 0 {
		t.Fatal("checkpoint does not match restored data")
	}
}

func TestFaultSolveResilientCleanRun(t *testing.T) {
	// Without any faults SolveResilient must behave like Solve: converge,
	// verify, and report zero restarts.
	a := sparse.Laplacian2D(6, 6)
	b := make([]float64, 36)
	for i := range b {
		b[i] = float64(i%5) + 1
	}
	want := denseSolve(a, b)
	p := planFor(a, b, 4)
	res := SolveResilient(p, func() Solver { return NewCG(p) }, ResilientConfig{
		Tol: 1e-10, MaxIter: 300, CheckpointEvery: 10,
	})
	p.Drain()
	if !res.Converged || res.Restarts != 0 || res.RecoveredFailures != 0 {
		t.Fatalf("clean resilient run: %+v", res)
	}
	if res.Checkpoints == 0 {
		t.Fatal("no checkpoints taken")
	}
	if d := maxAbsDiff(p.SolData(0), want); d > 1e-8 {
		t.Fatalf("solution off by %g", d)
	}
}

func TestFaultSolveResilientRecoversFromInjectedPanics(t *testing.T) {
	// The acceptance scenario: CG on an SPD stencil with 1% injected
	// panics. Retries absorb transient faults on idempotent tasks;
	// permanent failures on read-modify-write tasks poison the residual
	// and are recovered by checkpoint rollback.
	a := sparse.Laplacian2D(8, 8)
	b := make([]float64, 64)
	for i := range b {
		b[i] = 1
	}
	p := planFor(a, b, 4)
	rt := p.Runtime()
	rt.SetFaultInjector(fault.NewInjector(fault.Plan{Seed: 1, PanicRate: 0.01}))
	rt.SetRetryPolicy(taskrt.RetryPolicy{MaxAttempts: 3})

	res := SolveResilient(p, func() Solver { return NewCG(p) }, ResilientConfig{
		Tol: 1e-8, MaxIter: 2000, CheckpointEvery: 5, MaxRestarts: 100,
	})
	p.Drain()
	if !res.Converged {
		t.Fatalf("resilient CG did not converge under 1%% panics: %+v (runtime: %v)",
			res, rt.Err())
	}
	// The tolerance was verified against the TRUE residual, so the
	// solution itself must be good regardless of what failed on the way.
	x := p.SolData(0)
	r := make([]float64, len(b))
	sparse.SpMV(a, r, x)
	var rr float64
	for i := range r {
		d := b[i] - r[i]
		rr += d * d
	}
	if tr := math.Sqrt(rr); tr > 1e-8 {
		t.Fatalf("true residual %g past tolerance", tr)
	}
	st := rt.Stats()
	if st.Retries == 0 && res.Restarts == 0 {
		t.Fatalf("no recovery machinery engaged — injection inert? stats %+v, result %+v", st, res)
	}
	t.Logf("recovered: %d retries, %d permanent failures, %d restarts, %d checkpoints",
		st.Retries, res.RecoveredFailures, res.Restarts, res.Checkpoints)
}

func TestFaultSolveWithoutRecoveryAborts(t *testing.T) {
	// The counterpart: the same fault plan with retries and restarts
	// disabled must NOT converge — a permanent failure poisons the
	// residual dataflow and the plain driver stops on NaN.
	a := sparse.Laplacian2D(8, 8)
	b := make([]float64, 64)
	for i := range b {
		b[i] = 1
	}
	p := planFor(a, b, 4)
	rt := p.Runtime()
	rt.SetFaultInjector(fault.NewInjector(fault.Plan{Seed: 1, PanicRate: 0.01}))

	res := Solve(NewCG(p), 1e-8, 2000)
	p.Drain()
	if res.Converged {
		t.Fatalf("unprotected solve converged despite injected faults: %+v", res)
	}
	if rt.Err() == nil {
		t.Fatal("no task failure recorded — injection inert, test is vacuous")
	}
}

func TestFaultSolveResilientNaNCorruption(t *testing.T) {
	// Silent NaN corruption raises no error; detection must come from the
	// resilient driver's residual checks, recovery from rollback.
	a := sparse.Laplacian2D(6, 6)
	b := make([]float64, 36)
	for i := range b {
		b[i] = 1
	}
	p := planFor(a, b, 4)
	rt := p.Runtime()
	// Corrupt only a handful of scalar results, then stop, so the run can
	// finish once the injector's budget is spent.
	rt.SetFaultInjector(fault.NewInjector(fault.Plan{Seed: 3, NaNRate: 0.02, MaxFaults: 5}))

	res := SolveResilient(p, func() Solver { return NewCG(p) }, ResilientConfig{
		Tol: 1e-8, MaxIter: 2000, CheckpointEvery: 5, MaxRestarts: 100,
	})
	p.Drain()
	if !res.Converged {
		t.Fatalf("resilient CG did not converge under NaN corruption: %+v", res)
	}
	if err := rt.Err(); err != nil {
		t.Fatalf("silent corruption must not surface as a task error: %v", err)
	}
}
