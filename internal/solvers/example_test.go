package solvers_test

import (
	"fmt"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
)

// The Figure 7 pattern: a solver is constructed from a planner and
// stepped until the convergence measure passes a threshold. Every solver
// here shares that interface, so they are drop-in replacements.
func ExampleSolve() {
	a := sparse.Laplacian1D(16)
	b := make([]float64, 16)
	for i := range b {
		b[i] = 1
	}
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
	si := p.AddSolVector(make([]float64, 16), index.EqualPartition(index.NewSpace("D", 16), 2))
	ri := p.AddRHSVector(b, index.EqualPartition(index.NewSpace("R", 16), 2))
	p.AddOperator(a, si, ri)
	p.Finalize()

	res := solvers.Solve(solvers.NewCG(p), 1e-10, 100)
	p.Drain()
	fmt.Println("converged:", res.Converged)
	// The exact solution of the 1D Poisson problem with b = 1 is the
	// parabola x_i = (i+1)(n-i)/2; spot-check the midpoint.
	fmt.Printf("x[7] = %.6f (exact %.1f)\n", p.SolData(0)[7], 8.0*9.0/2.0)
	// Output:
	// converged: true
	// x[7] = 36.000000 (exact 36.0)
}

// Solvers are interchangeable by name, as the paper's "libraries of
// interchangeable KSMs" framing requires.
func ExampleNew() {
	for _, name := range []string{"cg", "bicgstab", "gmres"} {
		a := sparse.Laplacian1D(12)
		b := make([]float64, 12)
		b[5] = 1
		p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
		si := p.AddSolVector(make([]float64, 12), index.Partition{})
		ri := p.AddRHSVector(b, index.Partition{})
		p.AddOperator(a, si, ri)
		p.Finalize()
		s := solvers.New(name, p)
		res := solvers.Solve(s, 1e-9, 200)
		p.Drain()
		fmt.Printf("%s converged: %v\n", s.Name(), res.Converged)
	}
	// Output:
	// CG converged: true
	// BiCGStab converged: true
	// GMRES converged: true
}
