package solvers

import (
	"math"

	"kdrsolvers/internal/core"
)

// PGMRES is Ghysels-style pipelined GMRES (p1-GMRES): where classical
// GMRES(m) issues j+2 dependent reduction points per Arnoldi step
// (modified Gram-Schmidt dot after dot, then the norm), PGMRES folds the
// whole step's inner products into ONE DotBatch — ⟨z_j, v_i⟩ for i ≤ j
// plus ⟨z_j, z_j⟩ — and launches the next matrix-vector product
// u = A·z_j immediately after, so the SpMV overlaps the reduction
// in flight, the same overlap idiom PipeCG uses. The auxiliary basis
// z_j = A·v_j is advanced by the same recurrence as v (one extra fused
// axpy sweep, no extra SpMV), and the lost norm is recovered by
// Pythagoras: h_{j+1,j} = √(‖z_j‖² − Σᵢ h²ᵢⱼ). The price is classical
// Gram-Schmidt orthogonalization (slightly less stable than MGS) and
// one extra basis copy per step.
type PGMRES struct {
	p     *core.Planner
	m     int
	basis []core.VecID // v₀ … v_m
	z     []core.VecID // z_j = A v_j
	u     core.VecID
	h     [][]*core.Scalar
	beta  *core.Scalar
	j     int
	res   *core.Scalar
	ls    *givensLS // incremental residual estimate (real planners)
	tr    bool
}

// NewPGMRES builds a pipelined GMRES solver with restart length m.
func NewPGMRES(p *core.Planner, m int) *PGMRES {
	if !p.IsSquare() {
		panic("solvers: PGMRES requires a square system")
	}
	if m < 1 {
		panic("solvers: PGMRES restart length must be positive")
	}
	s := &PGMRES{p: p, m: m, u: p.AllocateWorkspace(core.RhsShape)}
	for i := 0; i <= m; i++ {
		s.basis = append(s.basis, p.AllocateWorkspace(core.RhsShape))
		s.z = append(s.z, p.AllocateWorkspace(core.RhsShape))
	}
	s.restart()
	return s
}

// restart begins a cycle: v₀ = r/‖r‖ with the recomputed true residual
// r = b − Ax, and z₀ = A·v₀. The convergence measure is reset to the
// honest ‖r‖², so a cycle boundary never inherits estimate drift.
func (s *PGMRES) restart() {
	p := s.p
	p.BeginPhase("pgmres.restart")
	r := s.basis[0]
	residualInit(p, r)
	rr := p.Dot(r, r)
	s.res = rr
	s.beta = p.Sqrt(rr)
	p.Scal(r, p.Div(p.Constant(1), s.beta))
	p.Matmul(s.z[0], r)
	s.h = make([][]*core.Scalar, 0, s.m)
	s.j = 0
	s.ls = nil
	if !p.Virtual() {
		s.ls = newGivensLS(s.beta.Value(), s.m)
	}
}

// Name implements Solver.
func (s *PGMRES) Name() string { return "PGMRES" }

// ConvergenceMeasure implements Solver: the squared Givens residual
// estimate, updated every step (true residual at cycle boundaries).
func (s *PGMRES) ConvergenceMeasure() *core.Scalar { return s.res }

// Step implements Solver: one pipelined Arnoldi step.
func (s *PGMRES) Step() {
	p := s.p
	p.BeginPhase("pgmres.arnoldi")
	if s.j == 0 {
		s.tr = p.TraceBegin("pgmres.cycle")
	}
	j := s.j
	zj := s.z[j]

	// The step's single reduction: every Gram-Schmidt coefficient and the
	// Pythagoras norm operand, batched. The next SpMV launches right
	// behind it and overlaps the reduction tree.
	pairs := make([]core.DotPair, j+2)
	for i := 0; i <= j; i++ {
		pairs[i] = core.DotPair{V: zj, W: s.basis[i]}
	}
	pairs[j+1] = core.DotPair{V: zj, W: zj}
	dots := p.DotBatch(pairs...)
	p.Matmul(s.u, zj)

	col := make([]*core.Scalar, j+2)
	copy(col, dots[:j+1])
	col[j+1] = p.ScalarExpr("pgmres.pythag", func(v []float64) float64 {
		t := v[0]
		for _, a := range v[1:] {
			t -= a * a
		}
		return math.Sqrt(math.Max(t, 0))
	}, append([]*core.Scalar{dots[j+1]}, dots[:j+1]...)...)
	s.h = append(s.h, col)
	s.j++

	if !p.Virtual() {
		// Happy breakdown, as in GMRES: the deflated z vanished, the cycle
		// solution is exact; solve and restart instead of dividing by ~0.
		hv := col[j+1].Value()
		if hv <= 1e-14*(1+math.Abs(s.beta.Value())) {
			s.finishCycle()
			s.restart()
			p.TraceEnd(s.tr)
			s.tr = false
			return
		}
		// Per-step residual estimate from the incremental Givens
		// least-squares recurrence (satellite: the estimate alone must
		// never decide convergence — VerifyConvergence recomputes the true
		// residual before Solve may stop).
		vals := make([]float64, j+2)
		for i, sc := range col {
			vals[i] = sc.Value()
		}
		est := s.ls.push(vals)
		s.res = p.Constant(est * est)
	}

	// v_{j+1} = (z_j − Σ h_{ij} v_i)/h_{j+1,j} and the companion
	// recurrence z_{j+1} = (u − Σ h_{ij} z_i)/h_{j+1,j}, one fused sweep.
	p.Copy(s.basis[j+1], zj)
	p.Copy(s.z[j+1], s.u)
	ups := make([]core.VecUpdate, 0, 2*(j+1))
	for i := 0; i <= j; i++ {
		ups = append(ups,
			core.VecUpdate{Kind: core.UpdAxpy, Dst: s.basis[j+1], Alpha: col[i], Neg: true, Src: s.basis[i]},
			core.VecUpdate{Kind: core.UpdAxpy, Dst: s.z[j+1], Alpha: col[i], Neg: true, Src: s.z[i]},
		)
	}
	p.FusedUpdate(ups...)
	inv := p.Div(p.Constant(1), col[j+1])
	p.Scal(s.basis[j+1], inv)
	p.Scal(s.z[j+1], inv)

	if s.j == s.m {
		s.finishCycle()
		s.restart()
		p.TraceEnd(s.tr)
		s.tr = false
	}
}

// finishCycle solves the cycle's Hessenberg least-squares problem and
// applies x += V y.
func (s *PGMRES) finishCycle() {
	p := s.p
	p.BeginPhase("pgmres.update")
	m := s.j
	h := make([][]float64, m)
	for j := 0; j < m; j++ {
		h[j] = make([]float64, j+2)
		for i, sc := range s.h[j] {
			h[j][i] = sc.Value()
		}
	}
	y, _ := solveHessenberg(h, s.beta.Value())
	for j := 0; j < m; j++ {
		if math.IsNaN(y[j]) {
			continue
		}
		p.AxpyConst(core.SOL, y[j], s.basis[j])
	}
}

// VerifyConvergence implements ConvergenceVerifier: finish the open
// cycle (updating x), restart, and report the recomputed true residual.
func (s *PGMRES) VerifyConvergence() float64 {
	if s.j > 0 {
		s.finishCycle()
		s.restart()
		s.p.TraceEnd(s.tr)
		s.tr = false
	}
	return math.Sqrt(math.Max(s.res.Value(), 0))
}

// ReplaceResidual implements ResidualReplacer. PGMRES's measure is the
// Givens least-squares estimate, so drift is |est − true|; replacement
// closes the open cycle (applying its accumulated solution update) and
// restarts, which rebuilds v₀ and z₀ from the honest residual b − A·x —
// a restart IS the method's residual replacement, discarding any
// corrupted basis columns along with the estimate.
func (s *PGMRES) ReplaceResidual(driftTol float64) ReplacementReport {
	est := math.Sqrt(math.Max(s.res.Value(), 0))
	tr := s.VerifyConvergence()
	return ReplacementReport{TrueResidual: tr, Drift: math.Abs(tr - est), Replaced: true}
}
