package solvers

import (
	"math"

	"kdrsolvers/internal/core"
)

// PipeCG is the pipelined conjugate gradient method of Ghysels and
// Vanroose (Parallel Computing 40, 2014) for symmetric positive definite
// systems: a communication-hiding reformulation of CG that needs a
// single global reduction per iteration — computing γ = rᵀr and δ = wᵀr
// in one batched combine — and launches the next SpMV (q = A·w)
// immediately after the reduction's partials, so the reduction's
// combine latency overlaps the matrix product instead of serializing
// the iteration. The price is three auxiliary recurrences (z ≈ A²p,
// s ≈ Ap, and w = Ar maintained by updates rather than recomputed),
// which round differently from classic CG, so iterates agree to
// rounding — not bitwise — and the method is slightly less robust on
// ill-conditioned systems.
//
// All six vector updates of an iteration share one fused sweep, so a
// PipeCG iteration launches roughly half the tasks of the classic
// formulation on top of halving its reduction count.
type PipeCG struct {
	p                    *core.Planner
	r, w, q, z, s, pv    core.VecID
	gamma, alphaOld, res *core.Scalar
	first                bool
}

// NewPipeCG builds a pipelined CG solver on a finalized square,
// unpreconditioned system.
func NewPipeCG(p *core.Planner) *PipeCG {
	if !p.IsSquare() {
		panic("solvers: PipeCG requires a square system")
	}
	s := &PipeCG{
		p:     p,
		r:     p.AllocateWorkspace(core.RhsShape),
		w:     p.AllocateWorkspace(core.RhsShape),
		q:     p.AllocateWorkspace(core.RhsShape),
		z:     p.AllocateWorkspace(core.RhsShape),
		s:     p.AllocateWorkspace(core.RhsShape),
		pv:    p.AllocateWorkspace(core.SolShape),
		first: true,
	}
	p.BeginPhase("pipecg.init")
	residualInit(p, s.r)
	p.Matmul(s.w, s.r) // w = A r
	s.res = p.Dot(s.r, s.r)
	return s
}

// Name implements Solver.
func (s *PipeCG) Name() string { return "PipeCG" }

// ConvergenceMeasure implements Solver: γ = rᵀr of the residual at the
// top of the last Step — the pipelined recurrence's own measure, one
// update behind the classic formulation's.
func (s *PipeCG) ConvergenceMeasure() *core.Scalar { return s.res }

// Step implements Solver: one pipelined CG iteration, entirely
// deferred. The batched γ/δ reduction and the q = A·w product are
// independent in the task graph, so the runtime overlaps them — the
// overlap Ghysels and Vanroose obtain with a non-blocking allreduce.
func (s *PipeCG) Step() {
	p := s.p
	p.BeginPhase("pipecg.step")
	defer p.TraceEnd(p.TraceBegin("pipecg.step"))
	d := p.DotBatch(core.DotPair{V: s.r, W: s.r}, core.DotPair{V: s.w, W: s.r})
	gamma, delta := d[0], d[1]
	p.Matmul(s.q, s.w) // overlaps the reduction combine

	var beta, alpha *core.Scalar
	if s.first {
		s.first = false
		beta = p.Constant(0)
		alpha = p.Div(gamma, delta)
	} else {
		beta = p.Div(gamma, s.gamma)
		// α = γ / (δ − β·γ/α₋₁), the pipelined recurrence for pᵀAp.
		alpha = p.ScalarExpr("pipecg.alpha", func(v []float64) float64 {
			return v[0] / (v[1] - v[2]*v[0]/v[3])
		}, gamma, delta, beta, s.alphaOld)
	}
	p.FusedUpdate(
		core.VecUpdate{Kind: core.UpdXpay, Dst: s.z, Alpha: beta, Src: s.q},             // z = q + β z
		core.VecUpdate{Kind: core.UpdXpay, Dst: s.s, Alpha: beta, Src: s.w},             // s = w + β s
		core.VecUpdate{Kind: core.UpdXpay, Dst: s.pv, Alpha: beta, Src: s.r},            // p = r + β p
		core.VecUpdate{Kind: core.UpdAxpy, Dst: core.SOL, Alpha: alpha, Src: s.pv},      // x += α p
		core.VecUpdate{Kind: core.UpdAxpy, Dst: s.r, Alpha: alpha, Neg: true, Src: s.s}, // r -= α s
		core.VecUpdate{Kind: core.UpdAxpy, Dst: s.w, Alpha: alpha, Neg: true, Src: s.z}, // w -= α z
	)
	s.gamma, s.alphaOld, s.res = gamma, alpha, gamma
}

// ReplaceResidual implements ResidualReplacer. PipeCG's auxiliary
// recurrences (w ≈ Ar, s ≈ Ap, z ≈ A²p) drift fastest of the methods
// here — they are never recomputed in the steady state — so replacement
// rebuilds the whole pipeline: r ← b − A·x, w ← A·r recomputed from the
// operator, and the next step runs in first-iteration mode (β = 0),
// which re-derives p, s, and z from the rebased pair. Drift is measured
// against the recurrence residual r before rebasing, using the free q
// workspace.
func (s *PipeCG) ReplaceResidual(driftTol float64) ReplacementReport {
	p := s.p
	p.BeginPhase("pipecg.replace")
	residualInit(p, s.q) // q = b − A·x, the true residual
	d := p.DotBatch(
		core.DotPair{V: s.r, W: s.r},
		core.DotPair{V: s.r, W: s.q},
		core.DotPair{V: s.q, W: s.q})
	rr, rt, tt := d[0].Value(), d[1].Value(), d[2].Value()
	trueRes := math.Sqrt(math.Max(tt, 0))
	drift := math.Sqrt(math.Max(rr-2*rt+tt, 0))
	rep := ReplacementReport{TrueResidual: trueRes, Drift: drift}
	if driftTol > 0 && isFinite(drift) && drift <= driftTol*(trueRes+1) {
		return rep
	}
	p.Copy(s.r, s.q)
	p.Matmul(s.w, s.r)
	s.res = d[2]
	s.first = true
	rep.Replaced = true
	return rep
}
