package solvers

import (
	"math"

	"kdrsolvers/internal/core"
)

// MINRES is the minimum residual method of Paige and Saunders for
// symmetric (possibly indefinite) systems, built on the Lanczos
// three-term recurrence with on-the-fly Givens rotations, following the
// classic minres.m formulation.
//
// The rotation coefficients need host-side control flow, so MINRES
// synchronizes on two dot products per iteration — the same behavior as
// reference implementations.
type MINRES struct {
	p *core.Planner
	// Lanczos residual history r1, r2, the current vector v, and the A·v
	// scratch y.
	r1, r2, v, y core.VecID
	// Direction vectors for the solution update.
	w, w1, w2 core.VecID

	k           int // completed iterations
	oldb, beta  float64
	dbar, epsln float64
	cs, sn      float64
	phibar      float64
	res         *core.Scalar
}

// NewMINRES builds a MINRES solver on a finalized square system.
func NewMINRES(p *core.Planner) *MINRES {
	if !p.IsSquare() {
		panic("solvers: MINRES requires a square system")
	}
	s := &MINRES{
		p:  p,
		r1: p.AllocateWorkspace(core.RhsShape),
		r2: p.AllocateWorkspace(core.RhsShape),
		v:  p.AllocateWorkspace(core.RhsShape),
		y:  p.AllocateWorkspace(core.RhsShape),
		w:  p.AllocateWorkspace(core.SolShape),
		w1: p.AllocateWorkspace(core.SolShape),
		w2: p.AllocateWorkspace(core.SolShape),
	}
	p.BeginPhase("minres.init")
	residualInit(p, s.r2)
	p.Copy(s.r1, s.r2)
	rr := p.Dot(s.r2, s.r2)
	s.res = rr
	s.beta = math.Sqrt(rr.Value())
	s.phibar = s.beta
	s.cs = -1 // the minres.m convention makes iteration 1 need no special case
	return s
}

// Name implements Solver.
func (s *MINRES) Name() string { return "MINRES" }

// ConvergenceMeasure implements Solver.
func (s *MINRES) ConvergenceMeasure() *core.Scalar { return s.res }

// safeInv returns 1/x, or 0 when x is 0 (only reachable on virtual
// planners or after exact convergence).
func safeInv(x float64) float64 {
	if x == 0 {
		return 0
	}
	return 1 / x
}

// Step implements Solver: one Lanczos step plus the residual-minimizing
// plane rotation and solution update.
func (s *MINRES) Step() {
	p := s.p
	p.BeginPhase("minres.step")
	defer p.TraceEnd(p.TraceBegin("minres.step"))
	s.k++

	// v = r2/β; y = A v.
	p.Copy(s.v, s.r2)
	p.ScalConst(s.v, safeInv(s.beta))
	p.Matmul(s.y, s.v)
	if s.k > 1 {
		p.AxpyConst(s.y, -s.beta*safeInv(s.oldb), s.r1)
	}
	alfa := p.Dot(s.v, s.y).Value()
	p.AxpyConst(s.y, -alfa*safeInv(s.beta), s.r2)
	p.Copy(s.r1, s.r2)
	p.Copy(s.r2, s.y)
	s.oldb = s.beta
	s.beta = math.Sqrt(p.Dot(s.r2, s.r2).Value())

	// Apply the previous rotation and compute the new one.
	oldeps := s.epsln
	delta := s.cs*s.dbar + s.sn*alfa
	gbar := s.sn*s.dbar - s.cs*alfa
	s.epsln = s.sn * s.beta
	s.dbar = -s.cs * s.beta
	gamma := math.Hypot(gbar, s.beta)
	s.cs = gbar * safeInv(gamma)
	s.sn = s.beta * safeInv(gamma)
	phi := s.cs * s.phibar
	s.phibar = s.sn * s.phibar

	// Direction update: w = (v − oldeps·w1 − delta·w2)/γ, rotating the
	// direction history.
	p.Copy(s.w1, s.w2)
	p.Copy(s.w2, s.w)
	p.Copy(s.w, s.v)
	p.AxpyConst(s.w, -oldeps, s.w1)
	p.AxpyConst(s.w, -delta, s.w2)
	p.ScalConst(s.w, safeInv(gamma))
	p.AxpyConst(core.SOL, phi, s.w)

	s.res = p.Constant(s.phibar * s.phibar)
}
