package solvers

import (
	"math"
	"testing"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/precond"
	"kdrsolvers/internal/sparse"
)

// fusedRHS builds a deterministic non-trivial right-hand side.
func fusedRHS(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = float64((i*7)%11)/3 - 1.5
	}
	return b
}

// pcgPlanFor is planFor plus a Jacobi preconditioner on the operator.
func pcgPlanFor(a sparse.Matrix, b []float64, pieces int) *core.Planner {
	n := int64(len(b))
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(2)})
	si := p.AddSolVector(make([]float64, n), index.EqualPartition(index.NewSpace("D", n), pieces))
	ri := p.AddRHSVector(b, index.EqualPartition(index.NewSpace("R", n), pieces))
	p.AddOperator(a, si, ri)
	p.AddPreconditioner(precond.Jacobi(a), si, ri)
	p.Finalize()
	return p
}

// runBitwisePair steps a fused solver and its unfused counterpart in
// lockstep and requires bit-identical iterates: fusion may only change
// how launches are batched, never the arithmetic.
func runBitwisePair(t *testing.T, name string, steps int,
	plan func() *core.Planner, fused, unfused func(p *core.Planner) Solver) {
	t.Helper()
	pf, pu := plan(), plan()
	sf, su := fused(pf), unfused(pu)
	for i := 0; i < steps; i++ {
		sf.Step()
		su.Step()
		pf.Drain()
		pu.Drain()
		xf, xu := pf.SolData(0), pu.SolData(0)
		for j := range xf {
			if xf[j] != xu[j] {
				t.Fatalf("%s: step %d: fused x[%d]=%v != unfused %v",
					name, i+1, j, xf[j], xu[j])
			}
		}
		rf := math.Sqrt(sf.ConvergenceMeasure().Value())
		ru := math.Sqrt(su.ConvergenceMeasure().Value())
		if d := math.Abs(rf - ru); d > 1e-10*(1+ru) {
			t.Fatalf("%s: step %d: residual %g (fused) vs %g (unfused)",
				name, i+1, rf, ru)
		}
	}
}

func TestCGFusedBitwiseMatchesUnfused(t *testing.T) {
	runBitwisePair(t, "cg", 10,
		func() *core.Planner { return planFor(sparse.Laplacian2D(8, 8), fusedRHS(64), 4) },
		func(p *core.Planner) Solver { return NewCG(p) },
		func(p *core.Planner) Solver { return NewCGUnfused(p) })
}

func TestPCGFusedBitwiseMatchesUnfused(t *testing.T) {
	runBitwisePair(t, "pcg", 10,
		func() *core.Planner { return pcgPlanFor(sparse.Laplacian2D(8, 8), fusedRHS(64), 4) },
		func(p *core.Planner) Solver { return NewPCG(p) },
		func(p *core.Planner) Solver { return NewPCGUnfused(p) })
}

func TestBiCGStabFusedBitwiseMatchesUnfused(t *testing.T) {
	runBitwisePair(t, "bicgstab", 10,
		func() *core.Planner { return planFor(convectionDiffusion(64, 0.3), fusedRHS(64), 4) },
		func(p *core.Planner) Solver { return NewBiCGStab(p) },
		func(p *core.Planner) Solver { return NewBiCGStabUnfused(p) })
}

func TestPipeCGAgreesWithCG(t *testing.T) {
	// Pipelined CG computes the same Krylov iterates up to rounding (its
	// auxiliary recurrences reorder the arithmetic), so it must reach the
	// same solution to solver tolerance, not bitwise.
	mat := sparse.Laplacian2D(8, 8)
	b := fusedRHS(64)
	pc := planFor(mat, append([]float64(nil), b...), 4)
	pp := planFor(mat, append([]float64(nil), b...), 4)
	rc := Solve(NewCG(pc), 1e-10, 200)
	rp := Solve(NewPipeCG(pp), 1e-10, 200)
	pc.Drain()
	pp.Drain()
	if !rc.Converged || !rp.Converged {
		t.Fatalf("convergence: cg=%+v pipecg=%+v", rc, rp)
	}
	if d := maxAbsDiff(pc.SolData(0), pp.SolData(0)); d > 1e-8 {
		t.Fatalf("pipecg solution diverged from cg: max |Δx| = %g", d)
	}
	// The pipelined measure lags one update, so it may take an extra
	// iteration or two — but not a different convergence order.
	if rp.Iterations > rc.Iterations+3 {
		t.Errorf("pipecg took %d iterations vs cg's %d", rp.Iterations, rc.Iterations)
	}
}

// launchesPerIter measures steady-state task launches per iteration:
// 3 warmup steps, then a drained 8-step window.
func launchesPerIter(p *core.Planner, s Solver) float64 {
	const warmup, window = 3, 8
	RunIterations(s, warmup)
	p.Drain()
	before := p.Runtime().Stats().Launched
	RunIterations(s, window)
	p.Drain()
	return float64(p.Runtime().Stats().Launched-before) / window
}

func TestFusionLaunchReduction(t *testing.T) {
	// The PR's acceptance criterion: fused CG launches ≥30% fewer tasks
	// per iteration than the per-operation formulation, and pipelined CG
	// fewer still. BiCGStab and PCG ride along with their own floors.
	spd := func() sparse.Matrix { return sparse.Laplacian2D(8, 8) }
	measure := func(plan func() *core.Planner, mk func(p *core.Planner) Solver) float64 {
		p := plan()
		return launchesPerIter(p, mk(p))
	}
	plain := func() *core.Planner { return planFor(spd(), fusedRHS(64), 4) }
	withJacobi := func() *core.Planner { return pcgPlanFor(spd(), fusedRHS(64), 4) }
	nonsym := func() *core.Planner { return planFor(convectionDiffusion(64, 0.3), fusedRHS(64), 4) }
	cases := []struct {
		name    string
		plan    func() *core.Planner
		fused   func(p *core.Planner) Solver
		unfused func(p *core.Planner) Solver
		minDrop float64
	}{
		{"cg", plain,
			func(p *core.Planner) Solver { return NewCG(p) },
			func(p *core.Planner) Solver { return NewCGUnfused(p) }, 0.30},
		{"pcg", withJacobi,
			func(p *core.Planner) Solver { return NewPCG(p) },
			func(p *core.Planner) Solver { return NewPCGUnfused(p) }, 0.25},
		{"bicgstab", nonsym,
			func(p *core.Planner) Solver { return NewBiCGStab(p) },
			func(p *core.Planner) Solver { return NewBiCGStabUnfused(p) }, 0.30},
	}
	for _, c := range cases {
		f := measure(c.plan, c.fused)
		u := measure(c.plan, c.unfused)
		drop := 1 - f/u
		t.Logf("%s: %.1f launches/iter fused vs %.1f unfused (%.1f%% fewer)",
			c.name, f, u, 100*drop)
		if drop < c.minDrop {
			t.Errorf("%s: launch reduction %.1f%% below the %.0f%% floor",
				c.name, 100*drop, 100*c.minDrop)
		}
	}
	// PipeCG must beat even fused CG on launches: one reduction, one
	// fully fused update sweep.
	pipe := measure(plain, func(p *core.Planner) Solver { return NewPipeCG(p) })
	fcg := measure(plain, func(p *core.Planner) Solver { return NewCG(p) })
	t.Logf("pipecg: %.1f launches/iter vs fused cg %.1f", pipe, fcg)
	if pipe >= fcg {
		t.Errorf("pipecg launches/iter %.1f not below fused cg %.1f", pipe, fcg)
	}
}
