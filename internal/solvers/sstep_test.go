package solvers

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"kdrsolvers/internal/sparse"
)

// Tests for the communication-avoiding family: s-step CG basis
// breakdown and Newton fallback, true-residual agreement against the
// classical methods, the GMRES false-convergence regression, and
// cross-solve recycling.

// spdRandom builds a symmetric positive definite matrix with random
// off-diagonal structure: A = S + Sᵀ + diag shift for dominance.
func spdRandom(n int64, seed int64) *sparse.CSR {
	r := rand.New(rand.NewSource(seed))
	var coords []sparse.Coord
	for i := int64(0); i < n; i++ {
		coords = append(coords, sparse.Coord{Row: i, Col: i, Val: 8})
		for k := 0; k < 3; k++ {
			j := int64(r.Intn(int(n)))
			if j == i {
				continue
			}
			v := r.Float64() - 0.5
			coords = append(coords, sparse.Coord{Row: i, Col: j, Val: v})
			coords = append(coords, sparse.Coord{Row: j, Col: i, Val: v})
		}
	}
	return sparse.CSRFromCoords(n, n, coords)
}

// mixedDenseTri builds an SPD matrix with a dense leading block and a
// tridiagonal tail — the shape of benchlaunch's mixed suite entry.
func mixedDenseTri(n int64) *sparse.CSR {
	var coords []sparse.Coord
	dense := n / 4
	for i := int64(0); i < dense; i++ {
		for j := int64(0); j < dense; j++ {
			v := 0.1 / (1 + math.Abs(float64(i-j)))
			if i == j {
				v = 6
			}
			coords = append(coords, sparse.Coord{Row: i, Col: j, Val: v})
		}
	}
	for i := dense; i < n; i++ {
		coords = append(coords, sparse.Coord{Row: i, Col: i, Val: 4})
		if i > dense {
			coords = append(coords, sparse.Coord{Row: i, Col: i - 1, Val: -1})
			coords = append(coords, sparse.Coord{Row: i - 1, Col: i, Val: -1})
		}
	}
	return sparse.CSRFromCoords(n, n, coords)
}

// hostTrueResidual is the absolute residual ‖b − Ax‖ computed host-side.
func hostTrueResidual(mat sparse.Matrix, x, b []float64) float64 {
	ax := make([]float64, len(b))
	sparse.SpMV(mat, ax, x)
	var rr float64
	for i := range b {
		d := b[i] - ax[i]
		rr += d * d
	}
	return math.Sqrt(rr)
}

// TestCommAvoidingTrueResidualAgreement is the acceptance gate: on the
// lap2d/random/mixed suite, the communication-avoiding solvers must
// reach the same true residual as their classical counterparts — the
// recomputed ‖b − Ax‖ of both iterates agrees to 1e-10.
func TestCommAvoidingTrueResidualAgreement(t *testing.T) {
	const tol = 1e-10
	suite := map[string]*sparse.CSR{
		"lap2d":  sparse.Laplacian2D(8, 8),
		"random": spdRandom(64, 7),
		"mixed":  mixedDenseTri(64),
	}
	pairs := [][2]string{{"sstep-cg", "cg"}, {"pgmres", "gmres"}, {"gcrodr", "gmres"}}
	for matName, mat := range suite {
		b := fusedRHS(64)
		for _, pair := range pairs {
			t.Run(fmt.Sprintf("%s/%s-vs-%s", matName, pair[0], pair[1]), func(t *testing.T) {
				trs := make([]float64, 2)
				for i, name := range pair {
					p := planFor(mat, b, 4)
					res := Solve(New(name, p), tol, 2000)
					p.Drain()
					if err := p.Runtime().Err(); err != nil {
						t.Fatalf("%s runtime error: %v", name, err)
					}
					if !res.Converged {
						t.Fatalf("%s did not converge: %+v", name, res)
					}
					trs[i] = hostTrueResidual(mat, p.SolData(0), b)
				}
				if d := math.Abs(trs[0] - trs[1]); d > 1e-10 {
					t.Errorf("true residuals disagree by %g (%s %g, %s %g)",
						d, pair[0], trs[0], pair[1], trs[1])
				}
			})
		}
	}
}

// TestSStepCGBreakdownWrapsErrBreakdown drives the s-step coefficient
// recurrence into a vanished pᵀAp on an indefinite operator and checks
// the clean ErrBreakdown-wrapped stop.
func TestSStepCGBreakdownWrapsErrBreakdown(t *testing.T) {
	const n = 8
	var coords []sparse.Coord
	for i := int64(0); i < n; i++ {
		v := 1.0
		if i%2 == 1 {
			v = -1
		}
		coords = append(coords, sparse.Coord{Row: i, Col: i, Val: v})
	}
	mat := sparse.CSRFromCoords(n, n, coords)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 // r₀ = b ⇒ p₀ᵀA p₀ = Σ ±1 = 0
	}
	p := planFor(mat, b, 2)
	res := Solve(NewSStepCG(p, 4), 1e-10, 50)
	p.Drain()
	if res.Converged {
		t.Fatal("indefinite system must not converge")
	}
	if res.Breakdown == nil {
		t.Fatal("expected a breakdown report")
	}
	if !errors.Is(res.Breakdown, ErrBreakdown) {
		t.Errorf("breakdown %v does not wrap ErrBreakdown", res.Breakdown)
	}
	for _, v := range p.SolData(0) {
		if math.IsNaN(v) {
			t.Fatal("breakdown NaN-poisoned the iterate")
		}
	}
}

// TestSStepCGNewtonBasisSwitch runs a wide-spectrum SPD system where the
// s = 6 monomial basis exhausts double precision: the solver must
// switch to the Newton basis (Leja-ordered Ritz shifts) and still
// converge to the true solution.
func TestSStepCGNewtonBasisSwitch(t *testing.T) {
	const n = 64
	var coords []sparse.Coord
	for i := int64(0); i < n; i++ {
		// Log-spaced spectrum 1 … 300: ‖Aᵏp‖ grows ~300ᵏ, so the s = 6
		// Gram diagonal spans ~300¹² ≈ 5e29 ≫ the 1e13 conditioning limit.
		coords = append(coords, sparse.Coord{Row: i, Col: i,
			Val: math.Pow(300, float64(i)/float64(n-1))})
	}
	mat := sparse.CSRFromCoords(n, n, coords)
	b := fusedRHS(n)
	p := planFor(mat, b, 4)
	sv := NewSStepCG(p, 6)
	res := Solve(sv, 1e-8, 500)
	p.Drain()
	if err := p.Runtime().Err(); err != nil {
		t.Fatalf("runtime error: %v", err)
	}
	if sv.BasisSwitches() == 0 {
		t.Error("monomial basis survived a 1e29 conditioning ratio without switching")
	}
	if !res.Converged {
		t.Fatalf("did not converge after basis switch: %+v", res)
	}
	if tr := hostTrueResidual(mat, p.SolData(0), b); tr > 1e-6 {
		t.Errorf("true residual %g after Newton-basis solve", tr)
	}
}

// TestGMRESMidCycleEstimateNeedsVerification is the restart-drift
// regression: the Givens residual estimate reaches the tolerance
// mid-cycle while x still holds the previous restart's iterate — the
// exact state where trusting the estimate (the pre-fix behavior)
// reports convergence with a residual orders of magnitude above
// tolerance. VerifyConvergence must close the cycle and report the
// honest residual.
func TestGMRESMidCycleEstimateNeedsVerification(t *testing.T) {
	const tol = 1e-8
	mat := sparse.Laplacian2D(8, 8)
	b := fusedRHS(64)
	p := planFor(mat, b, 4)
	s := NewGMRES(p, 10)
	var est float64
	converged := false
	for i := 0; i < 500; i++ {
		s.Step()
		est = math.Sqrt(s.ConvergenceMeasure().Value())
		if est <= tol {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatal("estimate never reached tolerance")
	}
	if s.j == 0 {
		t.Skip("estimate crossed tolerance exactly at a cycle boundary")
	}
	// Pre-fix false convergence: the estimate says converged, the actual
	// iterate — untouched since the last restart — says otherwise.
	p.Drain()
	stale := hostTrueResidual(mat, p.SolData(0), b)
	if stale <= tol {
		t.Fatalf("iterate unexpectedly already converged (%g); regression scenario lost", stale)
	}
	if est > tol {
		t.Fatalf("estimate %g above tol after loop", est)
	}
	// Post-fix: verification closes the cycle and reports the truth.
	tr := s.VerifyConvergence()
	p.Drain()
	if err := p.Runtime().Err(); err != nil {
		t.Fatalf("runtime error: %v", err)
	}
	honest := hostTrueResidual(mat, p.SolData(0), b)
	if math.Abs(tr-honest) > 1e-10 {
		t.Errorf("VerifyConvergence reported %g, host recomputation %g", tr, honest)
	}
	if tr > tol {
		t.Logf("estimate %g vs verified %g: drift caught, solve would continue", est, tr)
	}
}

// TestSolveSetsTrueResidual checks the Result plumbing: verifier solvers
// report a recomputed TrueResidual at or below tolerance, and plain
// solvers mirror their recurrence residual.
func TestSolveSetsTrueResidual(t *testing.T) {
	mat := sparse.Laplacian2D(8, 8)
	b := fusedRHS(64)
	for _, name := range []string{"gmres", "pgmres", "sstep-cg", "gcrodr", "cg"} {
		t.Run(name, func(t *testing.T) {
			p := planFor(mat, b, 4)
			res := Solve(New(name, p), 1e-8, 2000)
			p.Drain()
			if !res.Converged {
				t.Fatalf("did not converge: %+v", res)
			}
			if res.TrueResidual > 1e-8 {
				t.Errorf("TrueResidual %g above tolerance", res.TrueResidual)
			}
			if res.TrueResidual == 0 && res.Residual != 0 {
				t.Error("TrueResidual left unset")
			}
		})
	}
}

// TestGCRODRRecycleAcrossSolves runs two solves of the same operator
// through a shared RecycleCache: the second, warm-started with the
// first solve's deflation space, must not take more iterations, and
// both must reach the tolerance honestly.
func TestGCRODRRecycleAcrossSolves(t *testing.T) {
	const tol = 1e-8
	mat := sparse.Laplacian2D(8, 8)
	cache := NewRecycleCache()
	iters := make([]int, 2)
	for round := 0; round < 2; round++ {
		b := fusedRHS(64)
		p := planFor(mat, b, 4)
		s := NewGCRODR(p, 10, 4, cache)
		res := Solve(s, tol, 500)
		p.Drain()
		if err := p.Runtime().Err(); err != nil {
			t.Fatalf("round %d runtime error: %v", round, err)
		}
		if !res.Converged {
			t.Fatalf("round %d did not converge: %+v", round, res)
		}
		if tr := hostTrueResidual(mat, p.SolData(0), b); tr > tol {
			t.Errorf("round %d true residual %g", round, tr)
		}
		s.SaveRecycleSpace()
		iters[round] = res.Iterations
	}
	if len(cache.entries) == 0 {
		t.Fatal("cache never populated")
	}
	if iters[1] > iters[0] {
		t.Errorf("recycled solve took %d iterations vs %d cold", iters[1], iters[0])
	}
	// A planner over a different matrix must not see this entry.
	other := planFor(sparse.Laplacian2D(8, 8), fusedRHS(64), 4)
	if got := cache.load(other.OperatorFingerprint()); got != nil {
		t.Error("cache entry leaked across distinct operators")
	}
	other.Drain()
}
