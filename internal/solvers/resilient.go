package solvers

import (
	"math"

	"kdrsolvers/internal/core"
)

// ResilientConfig configures SolveResilient.
type ResilientConfig struct {
	// Tol is the residual tolerance.
	Tol float64
	// MaxIter bounds the total number of steps executed, across restarts.
	MaxIter int
	// CheckpointEvery is the number of iterations between checkpoints
	// (default 10). Each checkpoint synchronizes, verifies the true
	// residual is finite, and snapshots the solution vector.
	CheckpointEvery int
	// MaxRestarts is the restart budget (default 3; negative disables
	// restarts). Each restart rolls the solution back to the last
	// verified checkpoint and rebuilds the solver, re-running its
	// residual initialization.
	MaxRestarts int
	// DivergeFactor triggers a restart when the residual exceeds this
	// multiple of the best residual seen (default 1e8).
	DivergeFactor float64
	// DetectSDC enables ABFT checksum detection on the planner
	// (core.EnableSDCDetection) and drives selective recovery from its
	// alarms: solution pieces a checksum localized corruption to are
	// restored from the last verified checkpoint — healthy pieces keep
	// their newer state — and the solver's recurrence is force-rebased on
	// the recomputed true residual. Solvers without residual replacement
	// fall back to a whole-solve rollback on alarm.
	DetectSDC bool
	// ReplaceEvery, when positive and the solver implements
	// ResidualReplacer, runs a residual-replacement check every
	// ReplaceEvery iterations: the true residual b − A·x is recomputed
	// and the recurrence rebased when its drift exceeds DriftTol (van der
	// Vorst & Ye). This bounds the damage of corruption below the
	// detection floor as well as honest rounding drift.
	ReplaceEvery int
	// DriftTol is the relative drift threshold of the periodic
	// replacement check; <= 0 replaces unconditionally at every check.
	DriftTol float64
	// StartIteration offsets the iteration counter: a solve resumed from
	// a persisted checkpoint continues counting from the checkpointed
	// iteration instead of 0. MaxIter keeps bounding the TOTAL iteration
	// count across the job's lifetime, so a resumed solve gets exactly
	// the budget the interrupted one had left. The caller is responsible
	// for having written the checkpointed solution into the planner's
	// solution vector before calling SolveResilient.
	StartIteration int
	// CheckpointSink, when non-nil, receives every verified checkpoint
	// the moment it is taken — including the initial one — so a journal
	// can persist it. The runtime is drained and the true residual
	// verified finite at call time; the Sol slices are the driver's own
	// deep copy and must not be mutated or retained past the call
	// (serialize synchronously).
	CheckpointSink func(Checkpoint)
	// Log, when non-nil, receives progress lines (checkpoints, restarts,
	// recovery decisions).
	Log func(format string, args ...any)
}

// Checkpoint is one verified checkpoint of a resilient solve: the state
// a crashed job can restart from.
type Checkpoint struct {
	// Iteration is the absolute iteration the checkpoint was taken at
	// (cfg.StartIteration-based for resumed solves).
	Iteration int
	// TrueResidual is the host-verified ‖b − A·x‖ at the checkpoint.
	TrueResidual float64
	// Sol is the solution vector, one deep-copied slice per planner
	// component, exactly as core.Planner.CheckpointSol lays it out.
	Sol [][]float64
}

// ResilientResult extends Result with recovery accounting.
type ResilientResult struct {
	Result
	// Restarts is the number of checkpoint rollbacks performed.
	Restarts int
	// Checkpoints is the number of verified checkpoints taken.
	Checkpoints int
	// RecoveredFailures is how many permanent task failures were absorbed
	// by rolling back (runtime-level retries are counted by the runtime's
	// own Stats.Retries, not here).
	RecoveredFailures int64
	// SDCAlarms counts checksum alarms the detection layer raised
	// (DetectSDC only).
	SDCAlarms int64
	// PieceRestores counts solution pieces selectively restored from the
	// last checkpoint after an alarm localized corruption to them.
	PieceRestores int
	// MaxDrift is the largest recurrence-vs-true drift any replacement
	// check observed.
	MaxDrift float64
}

// SolveResilient drives a solver to convergence in the presence of task
// failures, silent data corruption, and divergence. It layers on top of
// the runtime's retry/poison machinery:
//
//   - Every CheckpointEvery iterations it drains the runtime, recomputes
//     the TRUE residual ‖b − Ax‖ (not the recurrence residual, which a
//     corrupted scalar can lie about), and — if finite and not diverged —
//     checkpoints the solution vector through the planner.
//   - With DetectSDC, the planner's checksummed kernels raise alarms the
//     driver polls every iteration. An alarm on a solution piece restores
//     just that piece from the last checkpoint (core.RestoreSolPieces);
//     alarms anywhere else leave the data in place. Either way the
//     recurrence is force-rebased on the recomputed true residual
//     (ResidualReplacer), so corrupted workspaces are rebuilt rather than
//     trusted. The mixed-age solution this produces is a legitimate
//     restart point — the Krylov methods here are stationary in x.
//   - With ReplaceEvery > 0, a periodic residual-replacement check
//     bounds recurrence drift (and sub-floor corruption) between alarms.
//   - When the iteration's residual goes NaN/Inf (a poisoned future or
//     corruption past detection), diverges past DivergeFactor × best, or
//     the method reports a Krylov breakdown — or an alarm fires on a
//     solver without residual replacement — it restores the whole
//     checkpoint and rebuilds the solver with newSolver, a bounded
//     number of times (MaxRestarts).
//
// Any finite intermediate state is a legitimate restart point for the
// Krylov methods here (they are stationary in x), which is why a verified
// checkpoint needs only a finite true residual, not a consistent one.
//
// newSolver must build a fresh solver on p each call; p must be a real
// (non-virtual), finalized planner.
func SolveResilient(p *core.Planner, newSolver func() Solver, cfg ResilientConfig) ResilientResult {
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 10
	}
	if cfg.MaxRestarts < 0 {
		cfg.MaxRestarts = 0
	} else if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 3
	}
	if cfg.DivergeFactor <= 0 {
		cfg.DivergeFactor = 1e8
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sess := p.Session()

	// clearRecovered empties the session's error window once a rollback
	// (or selective restore) has provably recovered — the state just
	// verified against the true residual. Without this, a long-running
	// session keeps reporting failures it already absorbed.
	clearRecovered := func(when string) {
		if n := sess.ClearErrs(); n > 0 {
			logf("resilient: cleared %d recovered task failure(s) at %s", n, when)
		}
	}

	var mon *core.SDCMonitor
	if cfg.DetectSDC {
		mon = p.EnableSDCDetection(0)
		if rec := sess.Recorder(); rec != nil {
			mon.SetRecorder(rec) // alarms show up in profiles as FailureSDC
		}
	}

	// Workspace for true-residual verification, reused across checks.
	verify := p.AllocateWorkspace(core.RhsShape)
	trueResidual := func() float64 {
		p.BeginPhase("resilient.verify")
		residualInit(p, verify)
		rr := p.Dot(verify, verify)
		return math.Sqrt(rr.Value())
	}

	var out ResilientResult
	failedBase := sess.Stats().Failed
	noteDrift := func(rep ReplacementReport) {
		if isFinite(rep.Drift) && rep.Drift > out.MaxDrift {
			out.MaxDrift = rep.Drift
		}
	}

	// Initial checkpoint: x0 as supplied. The evaluation itself can be hit
	// by a fault, and x0 is trivially restorable (nothing has written to
	// it), so a failed attempt is re-run like any other rollback, against
	// the restart budget. Only a genuinely NaN input is unrecoverable.
	p.Drain()
	r0 := trueResidual()
	p.Drain()
	for attempt := 0; (math.IsNaN(r0) || math.IsInf(r0, 0)) && attempt <= cfg.MaxRestarts; attempt++ {
		logf("resilient: initial residual is not finite; re-evaluating (attempt %d/%d)",
			attempt+1, cfg.MaxRestarts+1)
		r0 = trueResidual()
		p.Drain()
	}
	if math.IsNaN(r0) || math.IsInf(r0, 0) {
		out.Residual, out.TrueResidual = r0, r0
		return out
	}
	ckpt := p.CheckpointSol()
	out.Checkpoints++
	if cfg.CheckpointSink != nil {
		cfg.CheckpointSink(Checkpoint{Iteration: cfg.StartIteration, TrueResidual: r0, Sol: ckpt})
	}
	best := r0
	if mon != nil {
		mon.Take() // alarms before the verified x0 checkpoint are moot
	}
	if r0 <= cfg.Tol {
		out.Converged = true
		out.Residual, out.TrueResidual = r0, r0
		out.Iterations = cfg.StartIteration
		return out
	}

	iter := cfg.StartIteration
	for restart := 0; ; restart++ {
		s := newSolver()
		rplc, _ := s.(ResidualReplacer)
		sinceCkpt, sinceReplace := 0, 0
		bad := "" // non-empty when this leg must be abandoned

	leg:
		for iter < cfg.MaxIter {
			s.Step()
			iter++
			sinceCkpt++
			sinceReplace++
			res := math.Sqrt(s.ConvergenceMeasure().Value())

			// Selective SDC recovery, before the bad-residual triage: a
			// detected corruption is repaired in place (piece restore +
			// forced replacement) instead of burning a whole-solve restart.
			if mon != nil {
				alarms := mon.Take()
				if len(alarms) > 0 {
					p.Drain()
					alarms = append(alarms, mon.Take()...) // alarms surfaced by the drain
					out.SDCAlarms += int64(len(alarms))
					if rplc == nil {
						bad = "sdc alarm (solver lacks residual replacement)"
						break leg
					}
					slots := solSlots(alarms)
					if len(slots) > 0 {
						p.RestoreSolPieces(ckpt, slots)
						out.PieceRestores += len(slots)
					}
					rep := rplc.ReplaceResidual(0) // forced rebase on b − A·x
					out.Replacements++
					noteDrift(rep)
					p.Drain()
					// Recovery itself read the pre-rebase state (the corrupt
					// residual, the restored pieces' neighbors); any alarms it
					// raised are self-inflicted and already handled.
					mon.Take()
					logf("resilient: %d sdc alarm(s) at iter %d; restored %d piece(s), rebased residual (true %.3g, drift %.3g)",
						len(alarms), iter, len(slots), rep.TrueResidual, rep.Drift)
					if !isFinite(rep.TrueResidual) {
						bad = "true residual is not finite after sdc recovery"
						break leg
					}
					res = rep.TrueResidual
					sinceReplace = 0
				}
			}

			// Periodic residual replacement (van der Vorst & Ye): rebase the
			// recurrence when it has drifted from b − A·x.
			if rplc != nil && cfg.ReplaceEvery > 0 && sinceReplace >= cfg.ReplaceEvery {
				rep := rplc.ReplaceResidual(cfg.DriftTol)
				noteDrift(rep)
				sinceReplace = 0
				if rep.Replaced {
					out.Replacements++
					logf("resilient: residual replaced at iter %d (true %.3g, drift %.3g)",
						iter, rep.TrueResidual, rep.Drift)
				}
				if !isFinite(rep.TrueResidual) {
					bad = "true residual is not finite at replacement check"
					break leg
				}
				res = rep.TrueResidual
			}

			switch {
			case math.IsNaN(res) || math.IsInf(res, 0):
				bad = "residual is not finite (task failure or corrupted data)"
			case res > cfg.DivergeFactor*best:
				bad = "residual diverged"
			}
			if bad == "" {
				if bc, ok := s.(BreakdownChecker); ok {
					if err := bc.Breakdown(); err != nil {
						bad = err.Error()
					}
				}
			}
			if bad != "" {
				break leg
			}

			if res <= cfg.Tol {
				// Candidate convergence: trust only the true residual,
				// recomputed from A, x, and b after a full drain.
				p.Drain()
				rn := trueResidual()
				p.Drain()
				if rn <= cfg.Tol {
					out.Converged = true
					out.Residual, out.TrueResidual = rn, rn
					out.Iterations = iter
					out.RecoveredFailures = sess.Stats().Failed - failedBase
					if out.RecoveredFailures > 0 {
						clearRecovered("verified convergence")
					}
					return out
				}
				logf("resilient: recurrence residual %.3g but true residual %.3g; continuing", res, rn)
				if math.IsNaN(rn) || math.IsInf(rn, 0) {
					bad = "true residual is not finite"
					break leg
				}
			}

			if sinceCkpt >= cfg.CheckpointEvery {
				p.Drain()
				rn := trueResidual()
				p.Drain()
				if mon != nil && len(mon.Alarms()) > 0 {
					// Verification tripped checksums: handle on the next
					// iteration's recovery pass instead of checkpointing a
					// state known to be corrupt.
					continue
				}
				if math.IsNaN(rn) || math.IsInf(rn, 0) || rn > cfg.DivergeFactor*best {
					bad = "checkpoint verification failed"
					break leg
				}
				ckpt = p.CheckpointSol()
				out.Checkpoints++
				if cfg.CheckpointSink != nil {
					cfg.CheckpointSink(Checkpoint{Iteration: iter, TrueResidual: rn, Sol: ckpt})
				}
				sinceCkpt = 0
				if rn < best {
					best = rn
				}
				clearRecovered("verified checkpoint")
				logf("resilient: checkpoint at iter %d, true residual %.3g", iter, rn)
			}
		}

		out.Iterations = iter
		out.RecoveredFailures = sess.Stats().Failed - failedBase
		if bad == "" { // iteration budget exhausted
			p.Drain()
			tr := trueResidual()
			p.Drain()
			out.Residual, out.TrueResidual = tr, tr
			return out
		}
		if restart >= cfg.MaxRestarts {
			logf("resilient: %s; restart budget (%d) exhausted", bad, cfg.MaxRestarts)
			out.Residual = best
			p.Drain()
			out.TrueResidual = trueResidual()
			p.Drain()
			if bc, ok := s.(BreakdownChecker); ok {
				out.Breakdown = bc.Breakdown()
			}
			return out
		}
		logf("resilient: %s; rolling back to last checkpoint (restart %d/%d)",
			bad, restart+1, cfg.MaxRestarts)
		p.Drain()
		p.RestoreSol(ckpt)
		if mon != nil {
			mon.Take() // rollback discards whatever the alarms indicted
		}
		out.Restarts++
	}
}

// solSlots collects the distinct solution-piece slots the alarms indict.
func solSlots(alarms []core.SDCAlarm) []int {
	var slots []int
	seen := map[int]bool{}
	for _, a := range alarms {
		if a.Vec == core.SOL && !seen[a.Slot] {
			seen[a.Slot] = true
			slots = append(slots, a.Slot)
		}
	}
	return slots
}
