package solvers

import (
	"math"

	"kdrsolvers/internal/core"
)

// ResilientConfig configures SolveResilient.
type ResilientConfig struct {
	// Tol is the residual tolerance.
	Tol float64
	// MaxIter bounds the total number of steps executed, across restarts.
	MaxIter int
	// CheckpointEvery is the number of iterations between checkpoints
	// (default 10). Each checkpoint synchronizes, verifies the true
	// residual is finite, and snapshots the solution vector.
	CheckpointEvery int
	// MaxRestarts is the restart budget (default 3; negative disables
	// restarts). Each restart rolls the solution back to the last
	// verified checkpoint and rebuilds the solver, re-running its
	// residual initialization.
	MaxRestarts int
	// DivergeFactor triggers a restart when the residual exceeds this
	// multiple of the best residual seen (default 1e8).
	DivergeFactor float64
	// Log, when non-nil, receives progress lines (checkpoints, restarts,
	// recovery decisions).
	Log func(format string, args ...any)
}

// ResilientResult extends Result with recovery accounting.
type ResilientResult struct {
	Result
	// Restarts is the number of checkpoint rollbacks performed.
	Restarts int
	// Checkpoints is the number of verified checkpoints taken.
	Checkpoints int
	// RecoveredFailures is how many permanent task failures were absorbed
	// by rolling back (runtime-level retries are counted by the runtime's
	// own Stats.Retries, not here).
	RecoveredFailures int64
}

// SolveResilient drives a solver to convergence in the presence of task
// failures, silent data corruption, and divergence. It layers on top of
// the runtime's retry/poison machinery:
//
//   - Every CheckpointEvery iterations it drains the runtime, recomputes
//     the TRUE residual ‖b − Ax‖ (not the recurrence residual, which a
//     corrupted scalar can lie about), and — if finite and not diverged —
//     checkpoints the solution vector through the planner.
//   - When the iteration's residual goes NaN/Inf (a poisoned future or
//     injected corruption), diverges past DivergeFactor × best, or the
//     method reports a Krylov breakdown, it restores the last checkpoint
//     and rebuilds the solver with newSolver, which re-runs residualInit
//     on the restored state — a bounded number of times (MaxRestarts).
//
// Any finite intermediate state is a legitimate restart point for the
// Krylov methods here (they are stationary in x), which is why a verified
// checkpoint needs only a finite true residual, not a consistent one.
//
// newSolver must build a fresh solver on p each call; p must be a real
// (non-virtual), finalized planner.
func SolveResilient(p *core.Planner, newSolver func() Solver, cfg ResilientConfig) ResilientResult {
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 10
	}
	if cfg.MaxRestarts < 0 {
		cfg.MaxRestarts = 0
	} else if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 3
	}
	if cfg.DivergeFactor <= 0 {
		cfg.DivergeFactor = 1e8
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rt := p.Runtime()

	// Workspace for true-residual verification, reused across checks.
	verify := p.AllocateWorkspace(core.RhsShape)
	trueResidual := func() float64 {
		p.BeginPhase("resilient.verify")
		residualInit(p, verify)
		rr := p.Dot(verify, verify)
		return math.Sqrt(rr.Value())
	}

	var out ResilientResult
	failedBase := rt.Stats().Failed

	// Initial checkpoint: x0 as supplied. The evaluation itself can be hit
	// by a fault, and x0 is trivially restorable (nothing has written to
	// it), so a failed attempt is re-run like any other rollback, against
	// the restart budget. Only a genuinely NaN input is unrecoverable.
	p.Drain()
	r0 := trueResidual()
	p.Drain()
	for attempt := 0; (math.IsNaN(r0) || math.IsInf(r0, 0)) && attempt <= cfg.MaxRestarts; attempt++ {
		logf("resilient: initial residual is not finite; re-evaluating (attempt %d/%d)",
			attempt+1, cfg.MaxRestarts+1)
		r0 = trueResidual()
		p.Drain()
	}
	if math.IsNaN(r0) || math.IsInf(r0, 0) {
		out.Residual = r0
		return out
	}
	ckpt := p.CheckpointSol()
	out.Checkpoints++
	best := r0
	if r0 <= cfg.Tol {
		out.Converged = true
		out.Residual = r0
		return out
	}

	iter := 0
	for restart := 0; ; restart++ {
		s := newSolver()
		sinceCkpt := 0
		bad := "" // non-empty when this leg must be abandoned

	leg:
		for iter < cfg.MaxIter {
			s.Step()
			iter++
			sinceCkpt++
			res := math.Sqrt(s.ConvergenceMeasure().Value())

			switch {
			case math.IsNaN(res) || math.IsInf(res, 0):
				bad = "residual is not finite (task failure or corrupted data)"
			case res > cfg.DivergeFactor*best:
				bad = "residual diverged"
			}
			if bad == "" {
				if bc, ok := s.(BreakdownChecker); ok {
					if err := bc.Breakdown(); err != nil {
						bad = err.Error()
					}
				}
			}
			if bad != "" {
				break leg
			}

			if res <= cfg.Tol {
				// Candidate convergence: trust only the true residual,
				// recomputed from A, x, and b after a full drain.
				p.Drain()
				rn := trueResidual()
				p.Drain()
				if rn <= cfg.Tol {
					out.Converged = true
					out.Residual = rn
					out.Iterations = iter
					out.RecoveredFailures = rt.Stats().Failed - failedBase
					return out
				}
				logf("resilient: recurrence residual %.3g but true residual %.3g; continuing", res, rn)
				if math.IsNaN(rn) || math.IsInf(rn, 0) {
					bad = "true residual is not finite"
					break leg
				}
			}

			if sinceCkpt >= cfg.CheckpointEvery {
				p.Drain()
				rn := trueResidual()
				p.Drain()
				if math.IsNaN(rn) || math.IsInf(rn, 0) || rn > cfg.DivergeFactor*best {
					bad = "checkpoint verification failed"
					break leg
				}
				ckpt = p.CheckpointSol()
				out.Checkpoints++
				sinceCkpt = 0
				if rn < best {
					best = rn
				}
				logf("resilient: checkpoint at iter %d, true residual %.3g", iter, rn)
			}
		}

		out.Iterations = iter
		out.RecoveredFailures = rt.Stats().Failed - failedBase
		if bad == "" { // iteration budget exhausted
			p.Drain()
			out.Residual = trueResidual()
			p.Drain()
			return out
		}
		if restart >= cfg.MaxRestarts {
			logf("resilient: %s; restart budget (%d) exhausted", bad, cfg.MaxRestarts)
			out.Residual = best
			if bc, ok := s.(BreakdownChecker); ok {
				out.Breakdown = bc.Breakdown()
			}
			return out
		}
		logf("resilient: %s; rolling back to last checkpoint (restart %d/%d)",
			bad, restart+1, cfg.MaxRestarts)
		p.Drain()
		p.RestoreSol(ckpt)
		out.Restarts++
	}
}
