package solvers

import (
	"testing"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sparse"
)

// TestFusedCGStepAllocs pins the per-iteration allocation budget of the
// fused CG step under trace replay. The bulk piece tasks launch detached
// through the batch API and splice their dependences from the memoized
// trace, so what remains is the iteration's host-side bookkeeping: the
// handful of result scalars (each a fresh region, by design — scalars
// are values the host reads) and the reduction futures. The pin is a
// regression tripwire: if the hot path regrows per-task allocations the
// count jumps by O(pieces × launches), two orders of magnitude above
// this budget.
func TestFusedCGStepAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the pin only means something without it")
	}
	const n, pieces = 4096, 8
	a := sparse.Laplacian2D(64, 64)
	b := make([]float64, n)
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	sparse.SpMV(a, b, ones)

	p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
	si := p.AddSolVector(make([]float64, n), index.EqualPartition(index.NewSpace("D", n), pieces))
	ri := p.AddRHSVector(b, index.EqualPartition(index.NewSpace("R", n), pieces))
	p.AddOperator(a, si, ri)
	p.Finalize()
	p.SetTracing(true)

	s := New("cg", p)
	s.ConvergenceMeasure().Value()
	// Record, calibrate, and settle every pool before measuring.
	for i := 0; i < 8; i++ {
		s.Step()
	}
	p.Drain()

	rt := p.Runtime()
	before := rt.Stats()
	allocs := testing.AllocsPerRun(20, func() {
		s.Step()
		p.Drain()
	})
	after := rt.Stats()

	// The measurement only means something if the iterations replayed.
	if after.TraceFallbacks != before.TraceFallbacks {
		t.Fatalf("trace fell back to analysis during measurement (%d fallbacks)",
			after.TraceFallbacks-before.TraceFallbacks)
	}
	launchesPerStep := float64(after.Launched-before.Launched) / 21
	if allocs > 330 {
		t.Errorf("fused CG step allocates %.0f objects/iteration (%.0f launches), want <= 330",
			allocs, launchesPerStep)
	}
	t.Logf("fused CG: %.1f allocs/iteration over %.0f launches (%.2f allocs/launch)",
		allocs, launchesPerStep, allocs/launchesPerStep)
}
