// Package solvers implements Krylov subspace methods against the
// KDRSolvers planner interface (Figure 6 of the paper): CG, BiCGStab,
// GMRES(m), MINRES, BiCG, and preconditioned CG.
//
// Solvers never touch storage formats, component structure, partitions, or
// data placement — they see only the planner's vector and scalar
// operations, which is the separation Section 5 describes. All solvers
// share the Step/ConvergenceMeasure interface of the paper's Figure 7, so
// they are drop-in replacements for one another.
//
// Scalar coefficients are deferred (core.Scalar): a solver's Step launches
// its whole iteration without blocking, and the runtime pipelines
// independent work across operations and iterations. Only the driver's
// convergence check — or a solver that genuinely needs host-side scalar
// control flow, like GMRES's restart solve — synchronizes.
package solvers

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"kdrsolvers/internal/core"
)

// Solver is one Krylov subspace method bound to a planner. Step launches
// one iteration's tasks; ConvergenceMeasure returns the squared residual
// norm ‖b − Ax‖² as a deferred scalar.
type Solver interface {
	// Step launches one iteration.
	Step()
	// ConvergenceMeasure returns the current squared residual norm.
	ConvergenceMeasure() *core.Scalar
	// Name returns the method's conventional name.
	Name() string
}

// New constructs the named solver on a planner. Recognized names are
// "cg", "pipecg", "bicgstab", "gmres" (restart 10, as in the paper's
// benchmarks), "minres", "bicg", "pcg", "cgs", and the
// communication-avoiding family: "sstep-cg" (s = 4), "pgmres"
// (pipelined GMRES(10)), and "gcrodr" (GCRO-DR(10, 4), recycling
// disabled without an explicit cache). The ablation names
// "cg-unfused", "pcg-unfused", and "bicgstab-unfused" select the
// pre-fusion per-operation formulations — the paper's measured
// configuration — and are deliberately left out of Names. It panics on
// an unknown name.
func New(name string, p *core.Planner) Solver {
	switch name {
	case "cg":
		return NewCG(p)
	case "cg-unfused":
		return NewCGUnfused(p)
	case "pipecg":
		return NewPipeCG(p)
	case "bicgstab":
		return NewBiCGStab(p)
	case "bicgstab-unfused":
		return NewBiCGStabUnfused(p)
	case "gmres":
		return NewGMRES(p, 10)
	case "minres":
		return NewMINRES(p)
	case "bicg":
		return NewBiCG(p)
	case "pcg":
		return NewPCG(p)
	case "pcg-unfused":
		return NewPCGUnfused(p)
	case "cgs":
		return NewCGS(p)
	case "sstep-cg":
		return NewSStepCG(p, 4)
	case "pgmres":
		return NewPGMRES(p, 10)
	case "gcrodr":
		return NewGCRODR(p, 10, 4, nil)
	}
	panic(fmt.Sprintf("solvers: unknown solver %q", name))
}

// Names lists the recognized solver names.
var Names = []string{"cg", "pipecg", "bicgstab", "gmres", "minres", "bicg", "pcg", "cgs",
	"sstep-cg", "pgmres", "gcrodr"}

// RunIterations executes exactly n steps without convergence checks —
// the paper's benchmark mode (tolerances were set to extreme values to
// prevent early exit).
func RunIterations(s Solver, n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Result reports a converged (or abandoned) solve.
type Result struct {
	// Iterations is the number of steps executed.
	Iterations int
	// Residual is the final residual 2-norm as the solver's own
	// convergence measure reports it (a recurrence for most methods).
	Residual float64
	// TrueResidual is the recomputed ‖b − A·x‖ for solvers implementing
	// ConvergenceVerifier; for the rest it equals Residual (their measure
	// is already an honest inner product of the maintained residual).
	TrueResidual float64
	// Converged reports whether the tolerance was reached.
	Converged bool
	// Replacements counts residual-replacement events: rebasings of the
	// recurrence residual onto the recomputed true residual b − A·x,
	// performed periodically or on a corruption alarm by resilient
	// drivers. Zero for plain Solve.
	Replacements int
	// Breakdown is non-nil when the method hit a Krylov breakdown (a
	// vanished recurrence denominator) and stopped cleanly at the last
	// iterate instead of NaN-poisoning it. It wraps ErrBreakdown.
	Breakdown error
}

// ErrBreakdown is the sentinel wrapped by every breakdown signal: a
// recurrence denominator (ρ, ω, p̃ᵀAp, ...) vanished, so the method
// cannot continue from this Krylov space. The iterate is left at its
// last finite value; callers typically restart or switch methods.
var ErrBreakdown = errors.New("solvers: Krylov breakdown")

// BreakdownChecker is implemented by solvers that detect recurrence
// breakdown (BiCG, BiCGStab, CGS). Breakdown returns nil until a guarded
// denominator vanishes; Solve polls it every iteration and stops cleanly.
type BreakdownChecker interface {
	Breakdown() error
}

// ConvergenceVerifier is implemented by solvers whose convergence
// measure is an estimate that can drift from the truth (the GMRES
// family's Givens recurrence, s-step CG's coefficient-space norm).
// VerifyConvergence recomputes the true residual ‖b − A·x‖ — finishing
// any open restart cycle first, so x is current — and returns its norm.
// Solve calls it before believing the measure; a verifier that
// disagrees sends the solve back to iterating instead of returning a
// falsely converged iterate.
type ConvergenceVerifier interface {
	VerifyConvergence() float64
}

// ReplacementReport describes one residual-replacement decision.
type ReplacementReport struct {
	// TrueResidual is ‖b − A·x‖ recomputed from the current iterate.
	TrueResidual float64
	// Drift is the distance between the recurrence residual and the true
	// residual (‖r_rec − r_true‖ for methods carrying an explicit residual
	// vector; |est − true| for estimate-based methods).
	Drift float64
	// Replaced reports whether the recurrence was rebased onto the true
	// residual.
	Replaced bool
}

// ResidualReplacer is implemented by solvers supporting residual
// replacement (van der Vorst & Ye): ReplaceResidual recomputes the true
// residual b − A·x, measures how far the recurrence residual has
// drifted from it, and — when the relative drift exceeds driftTol, or
// always when driftTol <= 0 (a forced replacement, the corruption-
// recovery path) — rebases the recurrence on the true residual so the
// method converges to the actual solution rather than to its drifted
// recurrence's fiction. Pipelined and s-step methods rebuild their
// auxiliary recurrences (w = Ar, s = Ap, basis blocks) from the rebased
// state; estimate-based methods (PGMRES, s-step CG) finish any open
// cycle first and always replace.
type ResidualReplacer interface {
	ReplaceResidual(driftTol float64) ReplacementReport
}

// breakdownFlag records the first breakdown observed by guarded scalar
// tasks. Guards run inside runtime tasks, so the flag is locked.
type breakdownFlag struct {
	mu  sync.Mutex
	err error
}

// report records the first breakdown cause; later reports are dropped.
func (f *breakdownFlag) report(method, what string) {
	f.mu.Lock()
	if f.err == nil {
		f.err = fmt.Errorf("%w: %s: %s denominator vanished", ErrBreakdown, method, what)
	}
	f.mu.Unlock()
}

// get returns the recorded breakdown, or nil.
func (f *breakdownFlag) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// guardedDiv returns a/b as a deferred scalar, guarding the BiCG-family
// breakdown divisions: when the quotient is not finite (b ≈ 0, or a
// poisoned NaN operand), the task records a breakdown on f and yields 0,
// so the iteration's updates degenerate to no-ops instead of NaN-
// poisoning every downstream vector. Every guard is upstream of the
// residual dataflow within at most one iteration, so Solve's per-step
// synchronization observes the flag on the step it fires or the next one.
func guardedDiv(p *core.Planner, f *breakdownFlag, method, what string, a, b *core.Scalar) *core.Scalar {
	return p.ScalarExpr("div.guard", func(v []float64) float64 {
		q := v[0] / v[1]
		if math.IsNaN(q) || math.IsInf(q, 0) {
			f.report(method, what)
			return 0
		}
		return q
	}, a, b)
}

// Solve steps until the residual norm drops below tol or maxIter steps
// have run. It synchronizes on the convergence measure every iteration,
// like the paper's driver loop.
func Solve(s Solver, tol float64, maxIter int) Result {
	res := math.Sqrt(s.ConvergenceMeasure().Value())
	if res <= tol {
		// The pre-iteration measure is an honest Dot of the initial
		// residual in every solver here; no verification needed.
		return Result{Iterations: 0, Residual: res, TrueResidual: res, Converged: true}
	}
	for i := 1; i <= maxIter; i++ {
		s.Step()
		res = math.Sqrt(s.ConvergenceMeasure().Value())
		if math.IsNaN(res) {
			return Result{Iterations: i, Residual: res, TrueResidual: res, Converged: false}
		}
		if res <= tol {
			// Estimated measures must survive a true-residual recomputation
			// before the solve may stop: a Givens or coefficient-space
			// recurrence claiming convergence is not proof the iterate
			// earned it.
			if v, ok := s.(ConvergenceVerifier); ok {
				tr := v.VerifyConvergence()
				if math.IsNaN(tr) {
					return Result{Iterations: i, Residual: res, TrueResidual: tr, Converged: false}
				}
				if tr > tol {
					res = tr // estimate drifted; keep iterating from the verified state
					continue
				}
				return Result{Iterations: i, Residual: res, TrueResidual: tr, Converged: true}
			}
			return Result{Iterations: i, Residual: res, TrueResidual: res, Converged: true}
		}
		// Breakdown guards zero the step's coefficients, so the iterate is
		// still finite; report the stagnation cleanly instead of spinning
		// on a frozen residual until maxIter.
		if bc, ok := s.(BreakdownChecker); ok {
			if err := bc.Breakdown(); err != nil {
				return Result{Iterations: i, Residual: res, TrueResidual: res, Converged: false, Breakdown: err}
			}
		}
	}
	return Result{Iterations: maxIter, Residual: res, TrueResidual: res, Converged: false}
}

// residualInit launches r ← b − A·x into workspace r, the common
// initialization of every method here. The negate-and-add is one xpay
// sweep (r ← b + (−1)·r), bitwise identical to the scal-then-axpy pair
// it replaces: IEEE negation is exact and addition commutes.
func residualInit(p *core.Planner, r core.VecID) {
	p.Matmul(r, core.SOL)               // r = Ax
	p.Xpay(r, p.Constant(-1), core.RHS) // r = b - Ax
}
