// Package solvers implements Krylov subspace methods against the
// KDRSolvers planner interface (Figure 6 of the paper): CG, BiCGStab,
// GMRES(m), MINRES, BiCG, and preconditioned CG.
//
// Solvers never touch storage formats, component structure, partitions, or
// data placement — they see only the planner's vector and scalar
// operations, which is the separation Section 5 describes. All solvers
// share the Step/ConvergenceMeasure interface of the paper's Figure 7, so
// they are drop-in replacements for one another.
//
// Scalar coefficients are deferred (core.Scalar): a solver's Step launches
// its whole iteration without blocking, and the runtime pipelines
// independent work across operations and iterations. Only the driver's
// convergence check — or a solver that genuinely needs host-side scalar
// control flow, like GMRES's restart solve — synchronizes.
package solvers

import (
	"fmt"
	"math"

	"kdrsolvers/internal/core"
)

// Solver is one Krylov subspace method bound to a planner. Step launches
// one iteration's tasks; ConvergenceMeasure returns the squared residual
// norm ‖b − Ax‖² as a deferred scalar.
type Solver interface {
	// Step launches one iteration.
	Step()
	// ConvergenceMeasure returns the current squared residual norm.
	ConvergenceMeasure() *core.Scalar
	// Name returns the method's conventional name.
	Name() string
}

// New constructs the named solver on a planner. Recognized names are
// "cg", "bicgstab", "gmres" (restart 10, as in the paper's benchmarks),
// "minres", "bicg", "pcg", and "cgs". It panics on an unknown name.
func New(name string, p *core.Planner) Solver {
	switch name {
	case "cg":
		return NewCG(p)
	case "bicgstab":
		return NewBiCGStab(p)
	case "gmres":
		return NewGMRES(p, 10)
	case "minres":
		return NewMINRES(p)
	case "bicg":
		return NewBiCG(p)
	case "pcg":
		return NewPCG(p)
	case "cgs":
		return NewCGS(p)
	}
	panic(fmt.Sprintf("solvers: unknown solver %q", name))
}

// Names lists the recognized solver names.
var Names = []string{"cg", "bicgstab", "gmres", "minres", "bicg", "pcg", "cgs"}

// RunIterations executes exactly n steps without convergence checks —
// the paper's benchmark mode (tolerances were set to extreme values to
// prevent early exit).
func RunIterations(s Solver, n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Result reports a converged (or abandoned) solve.
type Result struct {
	// Iterations is the number of steps executed.
	Iterations int
	// Residual is the final residual 2-norm.
	Residual float64
	// Converged reports whether the tolerance was reached.
	Converged bool
}

// Solve steps until the residual norm drops below tol or maxIter steps
// have run. It synchronizes on the convergence measure every iteration,
// like the paper's driver loop.
func Solve(s Solver, tol float64, maxIter int) Result {
	res := math.Sqrt(s.ConvergenceMeasure().Value())
	if res <= tol {
		return Result{Iterations: 0, Residual: res, Converged: true}
	}
	for i := 1; i <= maxIter; i++ {
		s.Step()
		res = math.Sqrt(s.ConvergenceMeasure().Value())
		if res <= tol || math.IsNaN(res) {
			return Result{Iterations: i, Residual: res, Converged: res <= tol}
		}
	}
	return Result{Iterations: maxIter, Residual: res, Converged: false}
}

// residualInit launches r ← b − A·x into workspace r, the common
// initialization of every method here.
func residualInit(p *core.Planner, r core.VecID) {
	p.Matmul(r, core.SOL)              // r = Ax
	p.Scal(r, p.Constant(-1))          // r = -Ax
	p.Axpy(r, p.Constant(1), core.RHS) // r = b - Ax
}
