//go:build !race

package solvers

const raceEnabled = false
