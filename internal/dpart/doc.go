// Package dpart implements dependent partitioning: relations between index
// spaces and the image/preimage projections of Section 3.1 of the
// KDRSolvers paper.
//
// A Relation is a subset of I × J for two index spaces I and J. Given a
// partition of I, projecting each piece along the relation (Image) yields a
// compatible partition of J, and vice versa (Preimage). The row and column
// relations of a sparse matrix storage format are Relations between the
// kernel space K and the range space R or domain space D; the four
// projection operators
//
//	col[K→D], row[K→R], col[D→K], row[R→K]
//
// are Image and Preimage applied to those relations. Because projections
// only use the Relation interface, co-partitioning is universal: it works
// identically for every storage format, including user-defined ones.
//
// The package provides relation implementations covering every format in
// Figure 3 of the paper: explicit function arrays (COO row/col), segment
// maps (CSR/CSC/BCSR rowptr/colptr), implicit div/mod projections of
// product spaces (Dense, ELL, BCSR block structure), per-diagonal offset
// maps (DIA), plus composition and inversion combinators.
package dpart
