package dpart

import "kdrsolvers/internal/index"

// ImagePartition projects a partition of the relation's left space to a
// partition of its right space, piece by piece (equation 3). The result
// has the same color space; it is complete and disjoint only when the
// relation's structure makes it so.
func ImagePartition(rel Relation, p index.Partition) index.Partition {
	pieces := make([]index.IntervalSet, p.NumColors())
	for c := 0; c < p.NumColors(); c++ {
		pieces[c] = rel.Image(p.Piece(c))
	}
	return index.NewPartition(rel.Right(), pieces)
}

// PreimagePartition projects a partition of the relation's right space to a
// partition of its left space, piece by piece (equation 4).
func PreimagePartition(rel Relation, q index.Partition) index.Partition {
	pieces := make([]index.IntervalSet, q.NumColors())
	for c := 0; c < q.NumColors(); c++ {
		pieces[c] = rel.Preimage(q.Piece(c))
	}
	return index.NewPartition(rel.Left(), pieces)
}

// The four named projection operators of Section 3.1. By the package
// convention, both the row relation (K ↔ R) and the column relation
// (K ↔ D) have the kernel space K on the left.

// ColKToD projects a kernel-space partition along the column relation to a
// domain-space partition: the columns touched by each kernel piece.
func ColKToD(col Relation, p index.Partition) index.Partition {
	return ImagePartition(col, p)
}

// RowKToR projects a kernel-space partition along the row relation to a
// range-space partition: the rows written by each kernel piece.
func RowKToR(row Relation, p index.Partition) index.Partition {
	return ImagePartition(row, p)
}

// ColDToK projects a domain-space partition along the column relation to a
// kernel-space partition: the entries reading each domain piece.
func ColDToK(col Relation, q index.Partition) index.Partition {
	return PreimagePartition(col, q)
}

// RowRToK projects a range-space partition along the row relation to a
// kernel-space partition: the entries writing each range piece.
func RowRToK(row Relation, q index.Partition) index.Partition {
	return PreimagePartition(row, q)
}

// MatVecInputPartition computes, for a given partition of the range space
// R, the finest partition of the domain space D from which each piece y_c
// of y = Ax can be computed independently:
//
//	col[K→D][ row[R→K][P] ]
//
// This is the universal co-partitioning operator the paper motivates: it is
// derived purely from the row and column relations, so it applies to any
// storage format.
func MatVecInputPartition(row, col Relation, rangePart index.Partition) index.Partition {
	return ColKToD(col, RowRToK(row, rangePart))
}

// PowerInputPartition iterates MatVecInputPartition to obtain the finest
// domain partition needed to compute A^power · x (equation 5 computes the
// power = 2 case). power must be at least 1.
func PowerInputPartition(row, col Relation, rangePart index.Partition, power int) index.Partition {
	if power < 1 {
		panic("dpart: power must be >= 1")
	}
	q := rangePart
	for i := 0; i < power; i++ {
		q = MatVecInputPartition(row, col, q)
	}
	return q
}

// PartitionByField builds a partition from an explicit coloring — the
// third dependent-partitioning primitive of Treichler et al. alongside
// image and preimage. colors[i] is the color of point i of a dense space
// [0, len(colors)); negative colors leave the point unassigned. The
// result has nColors pieces and is disjoint by construction (each point
// has one color); it is complete when no color is negative.
//
// This is how applications inject irregular, data-dependent
// distributions (a graph partitioner's output, say) into the framework;
// every derived partition then follows through the projection operators.
func PartitionByField(space index.Space, colors []int64, nColors int) index.Partition {
	if int64(len(colors)) != space.Size() {
		panic("dpart: one color per point required")
	}
	buckets := make([][]int64, nColors)
	for i, c := range colors {
		if c < 0 {
			continue
		}
		if c >= int64(nColors) {
			panic("dpart: color out of range")
		}
		buckets[c] = append(buckets[c], int64(i))
	}
	pieces := make([]index.IntervalSet, nColors)
	for c, pts := range buckets {
		pieces[c] = index.FromPoints(pts)
	}
	return index.NewPartition(space, pieces)
}
