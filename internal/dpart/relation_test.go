package dpart

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kdrsolvers/internal/index"
)

// pair is an explicit (left, right) member of a relation, used as the
// naive ground truth for projection tests.
type pair struct{ i, j int64 }

func naiveImage(pairs []pair, s index.IntervalSet) index.IntervalSet {
	var pts []int64
	for _, p := range pairs {
		if s.Contains(p.i) {
			pts = append(pts, p.j)
		}
	}
	return index.FromPoints(pts)
}

func naivePreimage(pairs []pair, s index.IntervalSet) index.IntervalSet {
	var pts []int64
	for _, p := range pairs {
		if s.Contains(p.j) {
			pts = append(pts, p.i)
		}
	}
	return index.FromPoints(pts)
}

func randomQuery(r *rand.Rand, bound int64) index.IntervalSet {
	var s index.IntervalSet
	n := r.Intn(5)
	for i := 0; i < n; i++ {
		lo := r.Int63n(bound)
		s.AddInterval(index.Interval{Lo: lo, Hi: lo + r.Int63n(bound/4+1)})
	}
	return s
}

// checkAgainstNaive cross-checks rel's Image and Preimage against the
// explicit pair list on several random query sets.
func checkAgainstNaive(t *testing.T, rel Relation, pairs []pair, r *rand.Rand) {
	t.Helper()
	lBound := rel.Left().Set.Bounds().Hi + 1
	rBound := rel.Right().Set.Bounds().Hi + 1
	if lBound <= 0 || rBound <= 0 {
		return
	}
	for trial := 0; trial < 8; trial++ {
		qs := randomQuery(r, lBound)
		got, want := rel.Image(qs), naiveImage(pairs, qs)
		if !got.Equal(want) {
			t.Fatalf("Image(%v) = %v, want %v", qs, got, want)
		}
		qt := randomQuery(r, rBound)
		got, want = rel.Preimage(qt), naivePreimage(pairs, qt)
		if !got.Equal(want) {
			t.Fatalf("Preimage(%v) = %v, want %v", qt, got, want)
		}
	}
}

func TestFnRelationExplicit(t *testing.T) {
	// f maps kernel points to columns of a tiny COO matrix.
	f := []int64{2, 0, 1, 2, 2, 4}
	rel := NewFnRelation("K", f, index.NewSpace("D", 5))
	if rel.Left().Size() != 6 || rel.Right().Size() != 5 {
		t.Fatal("space sizes wrong")
	}
	if got := rel.Image(index.Span(0, 2)); !got.Equal(index.Span(0, 2)) {
		t.Errorf("Image = %v", got)
	}
	if got := rel.Preimage(index.Span(2, 2)); !got.Equal(index.FromPoints([]int64{0, 3, 4})) {
		t.Errorf("Preimage = %v", got)
	}
	// Column 3 has no entries.
	if got := rel.Preimage(index.Span(3, 3)); !got.Empty() {
		t.Errorf("Preimage of empty column = %v", got)
	}
	if rel.At(5) != 4 {
		t.Errorf("At(5) = %d", rel.At(5))
	}
}

func TestQuickFnRelation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Int63n(50) + 1
		m := r.Int63n(30) + 1
		fn := make([]int64, n)
		pairs := make([]pair, n)
		for i := range fn {
			fn[i] = r.Int63n(m)
			pairs[i] = pair{int64(i), fn[i]}
		}
		rel := NewFnRelation("K", fn, index.NewSpace("D", m))
		checkAgainstNaive(t, rel, pairs, r)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRelationExplicit(t *testing.T) {
	// CSR rowptr with an empty row in the middle: rows 0..3 own kernel
	// intervals [0,1], [], [2,4], [5,5].
	ptr := []int64{0, 2, 2, 5, 6}
	rel := NewSegmentRelation("K", ptr, "R")
	if rel.Left().Size() != 6 || rel.Right().Size() != 4 {
		t.Fatal("space sizes wrong")
	}
	if got := rel.Segment(2); got != (index.Interval{Lo: 2, Hi: 4}) {
		t.Errorf("Segment(2) = %v", got)
	}
	// Kernel [1,2] touches rows 0 and 2, skipping empty row 1.
	if got := rel.Image(index.Span(1, 2)); !got.Equal(index.FromPoints([]int64{0, 2})) {
		t.Errorf("Image = %v", got)
	}
	// Preimage of all rows is all of K.
	if got := rel.Preimage(index.Span(0, 3)); !got.Equal(index.Span(0, 5)) {
		t.Errorf("Preimage = %v", got)
	}
	// Preimage of the empty row is empty.
	if got := rel.Preimage(index.Span(1, 1)); !got.Empty() {
		t.Errorf("Preimage(empty row) = %v", got)
	}
}

func TestQuickSegmentRelation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := r.Int63n(20) + 1
		ptr := make([]int64, rows+1)
		for j := int64(1); j <= rows; j++ {
			ptr[j] = ptr[j-1] + r.Int63n(4) // rows of 0-3 entries
		}
		var pairs []pair
		for j := int64(0); j < rows; j++ {
			for k := ptr[j]; k < ptr[j+1]; k++ {
				pairs = append(pairs, pair{k, j})
			}
		}
		rel := NewSegmentRelation("K", ptr, "R")
		if rel.Left().Size() == 0 {
			return true
		}
		checkAgainstNaive(t, rel, pairs, r)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDivRelation(t *testing.T) {
	// Dense 3x4: row = k / 4.
	rel := NewDivRelation("K", 3, 4, "R")
	if got := rel.Image(index.Span(5, 9)); !got.Equal(index.Span(1, 2)) {
		t.Errorf("Image = %v", got)
	}
	if got := rel.Preimage(index.Span(1, 1)); !got.Equal(index.Span(4, 7)) {
		t.Errorf("Preimage = %v", got)
	}
}

func TestQuickDivModRelations(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		blocks := r.Int63n(6) + 1
		q := r.Int63n(6) + 1
		var divPairs, modPairs []pair
		for i := int64(0); i < blocks*q; i++ {
			divPairs = append(divPairs, pair{i, i / q})
			modPairs = append(modPairs, pair{i, i % q})
		}
		div := NewDivRelation("K", blocks, q, "R")
		mod := NewModRelation("K", blocks, q, "D")
		checkAgainstNaive(t, div, divPairs, r)
		checkAgainstNaive(t, mod, modPairs, r)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDiagRelation(t *testing.T) {
	// Tridiagonal 4x4: offsets -1, 0, +1; d = 4 columns.
	offsets := []int64{-1, 0, 1}
	rel := NewDiagRelation("K", offsets, 4, 4, "R")
	if rel.Left().Size() != 12 {
		t.Fatalf("left size = %d", rel.Left().Size())
	}
	// Block 0 (offset -1): kernel (0,i) -> row i+1; column 3 -> row 4 is
	// out of range, so kernel point 3 relates to nothing... rather kernel
	// point k=i with i=3 -> row 3-(-1)=4, clipped.
	if got := rel.Image(index.Span(0, 3)); !got.Equal(index.Span(1, 4-1)) {
		t.Errorf("Image block0 = %v", got)
	}
	// Row 0 is produced by: block1 (offset 0) kernel 4+0, block2
	// (offset 1) kernel 8+1.
	if got := rel.Preimage(index.Span(0, 0)); !got.Equal(index.FromPoints([]int64{4, 9})) {
		t.Errorf("Preimage row0 = %v", got)
	}
}

func TestQuickDiagRelation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := r.Int63n(10) + 1
		rows := r.Int63n(10) + 1
		nDiag := r.Intn(4) + 1
		offsets := make([]int64, nDiag)
		var pairs []pair
		for b := range offsets {
			offsets[b] = r.Int63n(2*d+1) - d
			for i := int64(0); i < d; i++ {
				j := i - offsets[b]
				if j >= 0 && j < rows {
					pairs = append(pairs, pair{int64(b)*d + i, j})
				}
			}
		}
		rel := NewDiagRelation("K", offsets, d, rows, "R")
		checkAgainstNaive(t, rel, pairs, r)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestComposeAndInvert(t *testing.T) {
	// f: K -> D, g: D -> C; compose relates K to C.
	f := []int64{0, 1, 2, 0}
	g := []int64{1, 1, 0}
	rf := NewFnRelation("K", f, index.NewSpace("D", 3))
	rg := NewFnRelation("D", g, index.NewSpace("C", 2))
	comp := Compose(rf, rg)
	if comp.Left().Name != "K" || comp.Right().Name != "C" {
		t.Fatal("composed spaces wrong")
	}
	// K point 2 -> D 2 -> C 0.
	if got := comp.Image(index.Span(2, 2)); !got.Equal(index.Span(0, 0)) {
		t.Errorf("composed Image = %v", got)
	}
	// C 1 <- D {0,1} <- K {0,1,3}.
	if got := comp.Preimage(index.Span(1, 1)); !got.Equal(index.FromPoints([]int64{0, 1, 3})) {
		t.Errorf("composed Preimage = %v", got)
	}

	inv := Invert(rf)
	if inv.Left().Name != "D" || inv.Right().Name != "K" {
		t.Fatal("inverted spaces wrong")
	}
	if got := inv.Image(index.Span(0, 0)); !got.Equal(index.FromPoints([]int64{0, 3})) {
		t.Errorf("inverted Image = %v", got)
	}
	if got := inv.Preimage(index.Span(0, 0)); !got.Equal(index.Span(0, 0)) {
		t.Errorf("inverted Preimage = %v", got)
	}
}

func TestQuickGaloisProperties(t *testing.T) {
	// For functional left-to-right relations (every concrete relation in
	// this package maps each left point to at most one right point):
	//   Image(Preimage(t)) ⊆ t
	//   s ⊆ Preimage(Image(s)) for s within the related left points.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Int63n(40) + 1
		m := r.Int63n(20) + 1
		fn := make([]int64, n)
		for i := range fn {
			fn[i] = r.Int63n(m)
		}
		rel := NewFnRelation("K", fn, index.NewSpace("D", m))
		tset := randomQuery(r, m).Intersect(rel.Right().Set)
		if !tset.ContainsSet(rel.Image(rel.Preimage(tset))) {
			return false
		}
		sset := randomQuery(r, n).Intersect(rel.Left().Set)
		return rel.Preimage(rel.Image(sset)).ContainsSet(sset)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRelation(t *testing.T) {
	block := index.Interval{Lo: 5, Hi: 9}
	rel := NewBlockRelation("K", 10, block, "R", 20)
	if rel.Left().Size() != 10 || rel.Right().Size() != 20 {
		t.Fatal("spaces wrong")
	}
	// Image of anything nonempty is the block.
	if !rel.Image(index.Span(3, 3)).Equal(index.NewIntervalSet(block)) {
		t.Fatal("Image wrong")
	}
	if !rel.Image(index.IntervalSet{}).Empty() {
		t.Fatal("Image of empty set should be empty")
	}
	if !rel.Image(index.Span(50, 60)).Empty() {
		t.Fatal("Image of out-of-space set should be empty")
	}
	// Preimage of anything meeting the block is all of K.
	if !rel.Preimage(index.Span(9, 12)).Equal(index.Span(0, 9)) {
		t.Fatal("Preimage wrong")
	}
	if !rel.Preimage(index.Span(10, 12)).Empty() {
		t.Fatal("Preimage missing the block should be empty")
	}
}

func TestNamedOperatorAliases(t *testing.T) {
	// RowKToR/ColDToK are the remaining two named operators of §3.1.
	row, col := tridiagCSR(6)
	kp := index.EqualPartition(row.Left(), 2)
	rp := RowKToR(row, kp)
	if rp.NumColors() != 2 || rp.Space.Name != "R" {
		t.Fatalf("RowKToR = %v", rp)
	}
	dp := index.EqualPartition(col.Right(), 2)
	kp2 := ColDToK(col, dp)
	if kp2.Space.Name != "K" || !kp2.Complete() {
		t.Fatalf("ColDToK = %v", kp2)
	}
}
