package dpart

import (
	"testing"

	"kdrsolvers/internal/index"
)

// tridiagCSR builds the row and column relations of an n×n tridiagonal
// matrix stored in CSR, returning (row, col).
func tridiagCSR(n int64) (*SegmentRelation, *FnRelation) {
	ptr := make([]int64, n+1)
	var cols []int64
	for i := int64(0); i < n; i++ {
		ptr[i] = int64(len(cols))
		if i > 0 {
			cols = append(cols, i-1)
		}
		cols = append(cols, i)
		if i < n-1 {
			cols = append(cols, i+1)
		}
	}
	ptr[n] = int64(len(cols))
	row := NewSegmentRelation("K", ptr, "R")
	col := NewFnRelation("K", cols, index.NewSpace("D", n))
	return row, col
}

func TestProjectionOperators(t *testing.T) {
	row, col := tridiagCSR(8)
	rangePart := index.EqualPartition(index.NewSpace("R", 8), 2)

	// row[R→K]: kernel entries writing each half of the rows.
	kPart := RowRToK(row, rangePart)
	if kPart.NumColors() != 2 {
		t.Fatalf("colors = %d", kPart.NumColors())
	}
	if !kPart.Complete() || !kPart.Disjoint() {
		t.Error("kernel partition from disjoint rows must be complete and disjoint")
	}

	// col[K→D]: domain points each kernel piece reads. The halves share
	// the boundary columns 3 and 4, so the partition aliases.
	dPart := ColKToD(col, kPart)
	if dPart.Disjoint() {
		t.Error("input partition must alias at the stencil boundary")
	}
	if !dPart.Complete() {
		t.Error("input partition must cover the domain")
	}
	if !dPart.Piece(0).Equal(index.Span(0, 4)) {
		t.Errorf("piece 0 = %v, want [0,4]", dPart.Piece(0))
	}
	if !dPart.Piece(1).Equal(index.Span(3, 7)) {
		t.Errorf("piece 1 = %v, want [3,7]", dPart.Piece(1))
	}
}

func TestMatVecInputPartition(t *testing.T) {
	row, col := tridiagCSR(16)
	rangePart := index.EqualPartition(index.NewSpace("R", 16), 4)
	in := MatVecInputPartition(row, col, rangePart)
	// Each row block [4c, 4c+3] needs domain [4c-1, 4c+4] clipped.
	wants := []index.IntervalSet{
		index.Span(0, 4), index.Span(3, 8), index.Span(7, 12), index.Span(11, 15),
	}
	for c, want := range wants {
		if !in.Piece(c).Equal(want) {
			t.Errorf("piece %d = %v, want %v", c, in.Piece(c), want)
		}
	}
}

func TestPowerInputPartition(t *testing.T) {
	row, col := tridiagCSR(16)
	rangePart := index.EqualPartition(index.NewSpace("R", 16), 4)
	// Equation 5: the halo for A²x is one stencil radius wider than for Ax.
	in2 := PowerInputPartition(row, col, rangePart, 2)
	if !in2.Piece(1).Equal(index.Span(2, 9)) {
		t.Errorf("A² piece 1 = %v, want [2,9]", in2.Piece(1))
	}
	// power=1 must agree with MatVecInputPartition.
	in1 := PowerInputPartition(row, col, rangePart, 1)
	want := MatVecInputPartition(row, col, rangePart)
	for c := 0; c < 4; c++ {
		if !in1.Piece(c).Equal(want.Piece(c)) {
			t.Errorf("power=1 piece %d mismatch", c)
		}
	}
}

func TestPowerInputPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for power < 1")
		}
	}()
	row, col := tridiagCSR(4)
	PowerInputPartition(row, col, index.EqualPartition(index.NewSpace("R", 4), 2), 0)
}

func TestImagePreimagePartitionShapes(t *testing.T) {
	row, _ := tridiagCSR(8)
	kPart := index.EqualPartition(row.Left(), 3)
	rPart := ImagePartition(row, kPart)
	if rPart.NumColors() != 3 || rPart.Space.Name != "R" {
		t.Fatalf("rPart = %v", rPart)
	}
	back := PreimagePartition(row, rPart)
	if back.Space.Name != "K" {
		t.Fatalf("back = %v", back)
	}
	// Round trip can only grow pieces (Galois property per color).
	for c := 0; c < 3; c++ {
		if !back.Piece(c).ContainsSet(kPart.Piece(c)) {
			t.Errorf("round trip lost points in color %d", c)
		}
	}
}

func TestPartitionByField(t *testing.T) {
	sp := index.NewSpace("D", 8)
	colors := []int64{0, 1, 0, 2, 2, 1, 0, -1}
	p := PartitionByField(sp, colors, 3)
	if p.NumColors() != 3 {
		t.Fatalf("colors = %d", p.NumColors())
	}
	if !p.Piece(0).Equal(index.FromPoints([]int64{0, 2, 6})) {
		t.Errorf("piece 0 = %v", p.Piece(0))
	}
	if !p.Piece(2).Equal(index.Span(3, 4)) {
		t.Errorf("piece 2 = %v", p.Piece(2))
	}
	if !p.Disjoint() {
		t.Error("by-field partitions are disjoint by construction")
	}
	if p.Complete() {
		t.Error("point 7 is uncolored; partition must be incomplete")
	}
	// A fully colored space is complete.
	full := PartitionByField(sp, []int64{0, 0, 1, 1, 2, 2, 0, 1}, 3)
	if !full.Complete() {
		t.Error("fully colored partition must be complete")
	}
}

func TestPartitionByFieldValidation(t *testing.T) {
	sp := index.NewSpace("D", 2)
	for _, fn := range []func(){
		func() { PartitionByField(sp, []int64{0}, 1) },
		func() { PartitionByField(sp, []int64{0, 5}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPartitionByFieldDrivesCoPartitioning(t *testing.T) {
	// An irregular user coloring propagates through the projections just
	// like a block partition: co-partitioning soundness is coloring-
	// independent.
	row, col := tridiagCSR(12)
	colors := make([]int64, 12)
	for i := range colors {
		colors[i] = int64((i * 7) % 3) // scrambled assignment
	}
	rp := PartitionByField(index.NewSpace("R", 12), colors, 3)
	kp := RowRToK(row, rp)
	if !kp.Complete() || !kp.Disjoint() {
		t.Fatal("kernel partition from a disjoint complete coloring must stay complete and disjoint")
	}
	dp := ColKToD(col, kp)
	if !dp.Complete() {
		t.Fatal("derived domain partition must cover the domain")
	}
}
