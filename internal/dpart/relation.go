package dpart

import (
	"sort"
	"sync"

	"kdrsolvers/internal/index"
)

// A Relation is a binary relation between two index spaces, Left ⊆ I and
// Right ⊆ J. Image projects subsets of I to subsets of J; Preimage projects
// subsets of J back to subsets of I (equations 3 and 4 of the paper).
//
// Implementations must treat their arguments as read-only and must return
// sets they own.
type Relation interface {
	// Left returns the left-hand index space I.
	Left() index.Space
	// Right returns the right-hand index space J.
	Right() index.Space
	// Image returns { j ∈ J | ∃ i ∈ s : (i, j) ∈ R }.
	Image(s index.IntervalSet) index.IntervalSet
	// Preimage returns { i ∈ I | ∃ j ∈ s : (i, j) ∈ R }.
	Preimage(s index.IntervalSet) index.IntervalSet
}

// FnRelation is a relation given by an explicit function f: I → [0, ...),
// stored as a dense array indexed by the points of a dense left space
// [0, len(f)). It models the col: K → D and row: K → R arrays of the COO
// format and the col array of CSR.
//
// Preimage queries are accelerated by a lazily built inverted index, so a
// FnRelation is safe for concurrent use after construction.
type FnRelation struct {
	left, right index.Space
	f           []int64

	invOnce sync.Once
	// inv holds kernel points sorted by f-value; invStart[v] is the first
	// position in inv whose f-value is >= v.
	inv      []int64
	invStart []int64
}

// NewFnRelation builds a relation from the function array f over the dense
// left space [0, len(f)). Values of f must lie inside right.
// The array is retained, not copied.
func NewFnRelation(leftName string, f []int64, right index.Space) *FnRelation {
	return &FnRelation{
		left:  index.NewSpace(leftName, int64(len(f))),
		right: right,
		f:     f,
	}
}

// Left implements Relation.
func (r *FnRelation) Left() index.Space { return r.left }

// Right implements Relation.
func (r *FnRelation) Right() index.Space { return r.right }

// At returns f(i).
func (r *FnRelation) At(i int64) int64 { return r.f[i] }

// Image implements Relation.
func (r *FnRelation) Image(s index.IntervalSet) index.IntervalSet {
	n := int64(len(r.f))
	vals := make([]int64, 0, s.Size())
	s.EachInterval(func(iv index.Interval) {
		iv = clip(iv, n)
		if !iv.Empty() {
			vals = append(vals, r.f[iv.Lo:iv.Hi+1]...)
		}
	})
	return index.FromPoints(vals)
}

// clip restricts iv to the dense space [0, n).
func clip(iv index.Interval, n int64) index.Interval {
	if iv.Lo < 0 {
		iv.Lo = 0
	}
	if iv.Hi > n-1 {
		iv.Hi = n - 1
	}
	return iv
}

// Preimage implements Relation.
func (r *FnRelation) Preimage(s index.IntervalSet) index.IntervalSet {
	r.buildInverse()
	var pts []int64
	s.EachInterval(func(iv index.Interval) {
		lo, hi := iv.Lo, iv.Hi
		if lo < 0 {
			lo = 0
		}
		if hi > int64(len(r.invStart))-2 {
			hi = int64(len(r.invStart)) - 2
		}
		if lo > hi {
			return
		}
		pts = append(pts, r.inv[r.invStart[lo]:r.invStart[hi+1]]...)
	})
	return index.FromPoints(pts)
}

func (r *FnRelation) buildInverse() {
	r.invOnce.Do(func() {
		bound := r.right.Set.Bounds().Hi + 1
		if bound < 0 {
			bound = 0
		}
		counts := make([]int64, bound+1)
		for _, v := range r.f {
			counts[v]++
		}
		start := make([]int64, bound+2)
		for v := int64(0); v <= bound; v++ {
			start[v+1] = start[v] + counts[v]
		}
		inv := make([]int64, len(r.f))
		next := make([]int64, bound+1)
		copy(next, start[:bound+1])
		for i, v := range r.f {
			inv[next[v]] = int64(i)
			next[v]++
		}
		// Sort each bucket so FromPoints sees ordered runs quickly.
		// Buckets are already in increasing i order by construction.
		r.inv, r.invStart = inv, start
	})
}

// SegmentRelation relates each point j of a dense right space [0, n) to a
// contiguous interval of the left space, as in the rowptr: R → [K, K] map
// of CSR (and colptr of CSC). Segments must be sorted: seg ptr must be
// non-decreasing, which holds for CSR/CSC by construction.
type SegmentRelation struct {
	left, right index.Space
	// ptr has len n+1; point j relates to left interval [ptr[j], ptr[j+1]).
	ptr []int64
}

// NewSegmentRelation builds a segment relation from a CSR-style pointer
// array of length n+1 over the left space [0, ptr[n]). The array is
// retained, not copied.
func NewSegmentRelation(leftName string, ptr []int64, rightName string) *SegmentRelation {
	n := int64(len(ptr) - 1)
	return &SegmentRelation{
		left:  index.NewSpace(leftName, ptr[n]),
		right: index.NewSpace(rightName, n),
		ptr:   ptr,
	}
}

// Left implements Relation.
func (r *SegmentRelation) Left() index.Space { return r.left }

// Right implements Relation.
func (r *SegmentRelation) Right() index.Space { return r.right }

// Segment returns the left interval related to right point j.
func (r *SegmentRelation) Segment(j int64) index.Interval {
	return index.Interval{Lo: r.ptr[j], Hi: r.ptr[j+1] - 1}
}

// Image implements Relation: the set of right points whose segment
// intersects s.
func (r *SegmentRelation) Image(s index.IntervalSet) index.IntervalSet {
	var out index.IntervalSet
	n := int64(len(r.ptr) - 1)
	s.EachInterval(func(iv index.Interval) {
		// First j with ptr[j+1] > iv.Lo, i.e. segment end beyond iv.Lo.
		jLo := int64(sort.Search(int(n), func(j int) bool { return r.ptr[j+1] > iv.Lo }))
		// Last j with ptr[j] <= iv.Hi.
		jHi := int64(sort.Search(int(n), func(j int) bool { return r.ptr[j] > iv.Hi })) - 1
		// Trim empty segments at the boundaries: a j in [jLo, jHi] with an
		// empty segment does not actually relate to any point.
		for jLo <= jHi && r.ptr[jLo] >= r.ptr[jLo+1] {
			jLo++
		}
		for jHi >= jLo && r.ptr[jHi] >= r.ptr[jHi+1] {
			jHi--
		}
		if jLo <= jHi {
			// Interior empty segments are a corner case (empty rows): they
			// must be excluded point by point.
			run := index.Interval{Lo: jLo, Hi: jLo - 1}
			for j := jLo; j <= jHi; j++ {
				if r.ptr[j] < r.ptr[j+1] && r.Segment(j).Overlaps(iv) {
					if run.Empty() {
						run = index.Interval{Lo: j, Hi: j}
					} else if run.Hi == j-1 {
						run.Hi = j
					} else {
						out.AddInterval(run)
						run = index.Interval{Lo: j, Hi: j}
					}
				}
			}
			if !run.Empty() {
				out.AddInterval(run)
			}
		}
	})
	return out
}

// Preimage implements Relation: the union of segments of right points in s.
func (r *SegmentRelation) Preimage(s index.IntervalSet) index.IntervalSet {
	var out index.IntervalSet
	n := int64(len(r.ptr) - 1)
	s.EachInterval(func(iv index.Interval) {
		lo, hi := iv.Lo, iv.Hi
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		if lo > hi {
			return
		}
		// Segments of a contiguous right run are themselves contiguous.
		out.AddInterval(index.Interval{Lo: r.ptr[lo], Hi: r.ptr[hi+1] - 1})
	})
	return out
}

// DivRelation is the implicit projection j = i / q of a linearized product
// space I = J × [0, q). It models π1: R × K0 → R for the ELL format and
// the row relation of Dense (with q = |D|).
type DivRelation struct {
	left, right index.Space
	q           int64
}

// NewDivRelation builds the relation j = i/q with I = [0, nRight*q) and
// J = [0, nRight).
func NewDivRelation(leftName string, nRight, q int64, rightName string) *DivRelation {
	return &DivRelation{
		left:  index.NewSpace(leftName, nRight*q),
		right: index.NewSpace(rightName, nRight),
		q:     q,
	}
}

// Left implements Relation.
func (r *DivRelation) Left() index.Space { return r.left }

// Right implements Relation.
func (r *DivRelation) Right() index.Space { return r.right }

// Image implements Relation.
func (r *DivRelation) Image(s index.IntervalSet) index.IntervalSet {
	var out index.IntervalSet
	n := r.left.Size()
	s.EachInterval(func(iv index.Interval) {
		iv = clip(iv, n)
		if !iv.Empty() {
			out.AddInterval(index.Interval{Lo: iv.Lo / r.q, Hi: iv.Hi / r.q})
		}
	})
	return out
}

// Preimage implements Relation.
func (r *DivRelation) Preimage(s index.IntervalSet) index.IntervalSet {
	var out index.IntervalSet
	n := r.right.Size()
	s.EachInterval(func(iv index.Interval) {
		iv = clip(iv, n)
		if !iv.Empty() {
			out.AddInterval(index.Interval{Lo: iv.Lo * r.q, Hi: (iv.Hi+1)*r.q - 1})
		}
	})
	return out
}

// ModRelation is the implicit projection j = i % q of a linearized product
// space I = [0, blocks) × [0, q). It models π2: R × D → D for the Dense
// format and the column identity of DIA.
type ModRelation struct {
	left, right index.Space
	q, blocks   int64
}

// NewModRelation builds the relation j = i%q with I = [0, blocks*q) and
// J = [0, q).
func NewModRelation(leftName string, blocks, q int64, rightName string) *ModRelation {
	return &ModRelation{
		left:   index.NewSpace(leftName, blocks*q),
		right:  index.NewSpace(rightName, q),
		q:      q,
		blocks: blocks,
	}
}

// Left implements Relation.
func (r *ModRelation) Left() index.Space { return r.left }

// Right implements Relation.
func (r *ModRelation) Right() index.Space { return r.right }

// Image implements Relation.
func (r *ModRelation) Image(s index.IntervalSet) index.IntervalSet {
	var out index.IntervalSet
	n := r.left.Size()
	s.EachInterval(func(iv index.Interval) {
		iv = clip(iv, n)
		if iv.Empty() {
			return
		}
		if iv.Size() >= r.q {
			out.AddInterval(index.Interval{Lo: 0, Hi: r.q - 1})
			return
		}
		lo, hi := iv.Lo%r.q, iv.Hi%r.q
		if lo <= hi {
			out.AddInterval(index.Interval{Lo: lo, Hi: hi})
		} else { // run wraps around a block boundary
			out.AddInterval(index.Interval{Lo: 0, Hi: hi})
			out.AddInterval(index.Interval{Lo: lo, Hi: r.q - 1})
		}
	})
	return out
}

// Preimage implements Relation.
func (r *ModRelation) Preimage(s index.IntervalSet) index.IntervalSet {
	var out index.IntervalSet
	for b := int64(0); b < r.blocks; b++ {
		base := b * r.q
		s.EachInterval(func(iv index.Interval) {
			lo, hi := iv.Lo, iv.Hi
			if lo < 0 {
				lo = 0
			}
			if hi >= r.q {
				hi = r.q - 1
			}
			if lo <= hi {
				out.AddInterval(index.Interval{Lo: base + lo, Hi: base + hi})
			}
		})
	}
	return out
}

// DiagRelation is the implicit row relation of the DIA format: the kernel
// space is K = K0 × [0, d) (one block of d entries per stored diagonal),
// and kernel point (k0, i) relates to row i - offset(k0) when that row lies
// in [0, rows). Entries whose shifted row falls outside the matrix relate
// to nothing (they are padding).
type DiagRelation struct {
	left, right index.Space
	offsets     []int64
	d, rows     int64
}

// NewDiagRelation builds a DIA row relation for a matrix with the given
// diagonal offsets, domain size d, and row count rows. The offsets slice
// is retained, not copied.
func NewDiagRelation(leftName string, offsets []int64, d, rows int64, rightName string) *DiagRelation {
	return &DiagRelation{
		left:    index.NewSpace(leftName, int64(len(offsets))*d),
		right:   index.NewSpace(rightName, rows),
		offsets: offsets,
		d:       d,
		rows:    rows,
	}
}

// Left implements Relation.
func (r *DiagRelation) Left() index.Space { return r.left }

// Right implements Relation.
func (r *DiagRelation) Right() index.Space { return r.right }

// Image implements Relation.
func (r *DiagRelation) Image(s index.IntervalSet) index.IntervalSet {
	var out index.IntervalSet
	n := r.left.Size()
	s.EachInterval(func(iv index.Interval) {
		iv = clip(iv, n)
		if iv.Empty() {
			return
		}
		// Split the run by diagonal block.
		for lo := iv.Lo; lo <= iv.Hi; {
			b := lo / r.d
			blockHi := (b+1)*r.d - 1
			hi := iv.Hi
			if hi > blockHi {
				hi = blockHi
			}
			off := r.offsets[b]
			jLo, jHi := lo%r.d-off, hi%r.d-off
			if jLo < 0 {
				jLo = 0
			}
			if jHi > r.rows-1 {
				jHi = r.rows - 1
			}
			if jLo <= jHi {
				out.AddInterval(index.Interval{Lo: jLo, Hi: jHi})
			}
			lo = hi + 1
		}
	})
	return out
}

// Preimage implements Relation.
func (r *DiagRelation) Preimage(s index.IntervalSet) index.IntervalSet {
	var out index.IntervalSet
	for b, off := range r.offsets {
		base := int64(b) * r.d
		s.EachInterval(func(iv index.Interval) {
			// Row j is produced by kernel point base + (j + off) when
			// 0 <= j+off < d.
			iv = clip(iv, r.rows)
			if iv.Empty() {
				return
			}
			lo, hi := iv.Lo+off, iv.Hi+off
			if lo < 0 {
				lo = 0
			}
			if hi > r.d-1 {
				hi = r.d - 1
			}
			if lo <= hi {
				out.AddInterval(index.Interval{Lo: base + lo, Hi: base + hi})
			}
		})
	}
	return out
}

// BlockRelation is the dense rectangular relation I × T for an interval
// T of the right space: every left point relates to every point of the
// block. It models operators whose kernel touches one contiguous block of
// a vector — the virtual tile matrices of the Section 6.3 load-balancing
// experiment.
type BlockRelation struct {
	left, right index.Space
	block       index.Interval
}

// NewBlockRelation builds the relation I × block with I = [0, nLeft) and
// the right space [0, nRight).
func NewBlockRelation(leftName string, nLeft int64, block index.Interval, rightName string, nRight int64) *BlockRelation {
	return &BlockRelation{
		left:  index.NewSpace(leftName, nLeft),
		right: index.NewSpace(rightName, nRight),
		block: block,
	}
}

// Left implements Relation.
func (r *BlockRelation) Left() index.Space { return r.left }

// Right implements Relation.
func (r *BlockRelation) Right() index.Space { return r.right }

// Image implements Relation: any nonempty left subset maps to the whole
// block.
func (r *BlockRelation) Image(s index.IntervalSet) index.IntervalSet {
	if s.Intersect(r.left.Set).Empty() {
		return index.IntervalSet{}
	}
	return index.NewIntervalSet(r.block)
}

// Preimage implements Relation: any subset meeting the block maps back to
// all of I.
func (r *BlockRelation) Preimage(s index.IntervalSet) index.IntervalSet {
	if !s.Overlaps(index.NewIntervalSet(r.block)) {
		return index.IntervalSet{}
	}
	return r.left.Set.Clone()
}

// Composed is the relational composition B ∘ A of A ⊆ I × J and B ⊆ J × L:
// i relates to l when some j links them. It implements the nested
// projections of equation 5 (e.g. the finest partition of D needed to
// compute A²x).
type Composed struct {
	A, B Relation
}

// Compose returns the composition of a and b; a.Right and b.Left must be
// the same space.
func Compose(a, b Relation) *Composed { return &Composed{A: a, B: b} }

// Left implements Relation.
func (r *Composed) Left() index.Space { return r.A.Left() }

// Right implements Relation.
func (r *Composed) Right() index.Space { return r.B.Right() }

// Image implements Relation.
func (r *Composed) Image(s index.IntervalSet) index.IntervalSet {
	return r.B.Image(r.A.Image(s))
}

// Preimage implements Relation.
func (r *Composed) Preimage(s index.IntervalSet) index.IntervalSet {
	return r.A.Preimage(r.B.Preimage(s))
}

// Inverse swaps the two sides of a relation, exchanging Image and Preimage.
type Inverse struct {
	R Relation
}

// Invert returns the inverse relation.
func Invert(r Relation) *Inverse { return &Inverse{R: r} }

// Left implements Relation.
func (r *Inverse) Left() index.Space { return r.R.Right() }

// Right implements Relation.
func (r *Inverse) Right() index.Space { return r.R.Left() }

// Image implements Relation.
func (r *Inverse) Image(s index.IntervalSet) index.IntervalSet { return r.R.Preimage(s) }

// Preimage implements Relation.
func (r *Inverse) Preimage(s index.IntervalSet) index.IntervalSet { return r.R.Image(s) }
