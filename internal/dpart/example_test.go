package dpart_test

import (
	"fmt"

	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/sparse"
)

// The paper's Figure 2: given a partition of the right-hand side, project
// along the row relation to partition the matrix entries, then along the
// column relation to find the solution-vector halo each piece reads.
func ExampleMatVecInputPartition() {
	a := sparse.Laplacian1D(8) // tridiagonal: each row reads columns i-1..i+1
	rangePart := index.EqualPartition(a.Range(), 2)

	in := dpart.MatVecInputPartition(a.RowRelation(), a.ColRelation(), rangePart)
	fmt.Println("piece 0 reads", in.Piece(0))
	fmt.Println("piece 1 reads", in.Piece(1))
	fmt.Println("aliased at the boundary:", !in.Disjoint())
	// Output:
	// piece 0 reads {[0,4]}
	// piece 1 reads {[3,7]}
	// aliased at the boundary: true
}

// Images and preimages along a relation (equations 3 and 4).
func ExampleFnRelation() {
	// col: K -> D for a tiny COO matrix with entries in columns 2,0,2.
	col := dpart.NewFnRelation("K", []int64{2, 0, 2}, index.NewSpace("D", 3))
	fmt.Println("columns read by entries {0,1}:", col.Image(index.Span(0, 1)))
	fmt.Println("entries reading column 2:  ", col.Preimage(index.Span(2, 2)))
	// Output:
	// columns read by entries {0,1}: {[0,0] [2,2]}
	// entries reading column 2:   {[0,0] [2,2]}
}

// PartitionByField turns an application's own coloring (a graph
// partitioner's output, say) into a partition that the projection
// operators then propagate everywhere.
func ExamplePartitionByField() {
	colors := []int64{0, 0, 1, 1, 0, 1}
	p := dpart.PartitionByField(index.NewSpace("D", 6), colors, 2)
	fmt.Println("color 0:", p.Piece(0))
	fmt.Println("color 1:", p.Piece(1))
	// Output:
	// color 0: {[0,1] [4,4]}
	// color 1: {[2,3] [5,5]}
}
