package sparse

import (
	"math/rand"
	"testing"

	"kdrsolvers/internal/index"
)

// allFormats is every Convert target, the adaptive composite included.
func allFormats() []string {
	return append(append([]string(nil), Formats...), "Auto")
}

// TestDegenerateShapes pushes the shapes that historically break sparse
// conversion code — single rows and columns, odd dimensions (the 2×2
// block formats used to panic here), fully empty matrices, and matrices
// with empty rows — through every storage format, checking SpMV and
// SpMVᵀ against the dense reference and checking that partial kernel
// products (two half-kernel sweeps) sum to the full product.
func TestDegenerateShapes(t *testing.T) {
	cases := []struct {
		name       string
		rows, cols int64
		coords     []Coord
	}{
		{"1x1", 1, 1, []Coord{{Row: 0, Col: 0, Val: 2.5}}},
		{"1x1_zero", 1, 1, nil},
		{"1x7_row_vector", 1, 7, []Coord{
			{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 3, Val: -2}, {Row: 0, Col: 6, Val: 3}}},
		{"7x1_col_vector", 7, 1, []Coord{
			{Row: 0, Col: 0, Val: 1}, {Row: 3, Col: 0, Val: -2}, {Row: 6, Col: 0, Val: 3}}},
		{"7x7_odd_square", 7, 7, []Coord{
			{Row: 0, Col: 0, Val: 4}, {Row: 1, Col: 2, Val: -1}, {Row: 3, Col: 3, Val: 2},
			{Row: 4, Col: 6, Val: 1.5}, {Row: 6, Col: 0, Val: -3}, {Row: 6, Col: 6, Val: 7}}},
		{"5x8_odd_by_even", 5, 8, []Coord{
			{Row: 0, Col: 7, Val: 1}, {Row: 2, Col: 0, Val: 2}, {Row: 2, Col: 4, Val: -1},
			{Row: 4, Col: 3, Val: 0.5}}},
		{"8x5_even_by_odd", 8, 5, []Coord{
			{Row: 0, Col: 0, Val: 1}, {Row: 3, Col: 4, Val: 2}, {Row: 7, Col: 2, Val: -2}}},
		{"6x6_zero_matrix", 6, 6, nil},
		{"8x8_empty_rows", 8, 8, []Coord{
			{Row: 2, Col: 1, Val: 1}, {Row: 2, Col: 5, Val: -1}, {Row: 5, Col: 5, Val: 2}}},
		{"3x9_one_dense_row", 3, 9, []Coord{
			{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 2}, {Row: 1, Col: 2, Val: 3},
			{Row: 1, Col: 3, Val: 4}, {Row: 1, Col: 4, Val: 5}, {Row: 1, Col: 5, Val: 6},
			{Row: 1, Col: 6, Val: 7}, {Row: 1, Col: 7, Val: 8}, {Row: 1, Col: 8, Val: 9}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := CSRFromCoords(tc.rows, tc.cols, tc.coords)
			dense := ToDense(a)
			r := rand.New(rand.NewSource(11 * (tc.rows + tc.cols)))
			x := make([]float64, tc.cols)
			w := make([]float64, tc.rows)
			for i := range x {
				x[i] = r.Float64()*2 - 1
			}
			for i := range w {
				w[i] = r.Float64()*2 - 1
			}
			wantY, wantZ := refProducts(dense, tc.rows, tc.cols, x, w)

			for _, f := range allFormats() {
				t.Run(f, func(t *testing.T) {
					m := Convert(a, f)
					if rows, cols := Dims(m); rows != tc.rows || cols != tc.cols {
						t.Fatalf("dims changed: %dx%d, want %dx%d", rows, cols, tc.rows, tc.cols)
					}
					y := make([]float64, tc.rows)
					z := make([]float64, tc.cols)
					SpMV(m, y, x)
					if d := maxAbs(y, wantY); d > 1e-12 {
						t.Errorf("SpMV off dense reference by %g", d)
					}
					SpMVT(m, z, w)
					if d := maxAbs(z, wantZ); d > 1e-12 {
						t.Errorf("SpMVT off dense reference by %g", d)
					}

					// Partial products must tile: two half-kernel sweeps
					// reproduce the full product.
					klen := m.Kernel().Size()
					if klen == 0 {
						return
					}
					for i := range y {
						y[i] = 0
					}
					for i := range z {
						z[i] = 0
					}
					if mid := klen / 2; mid > 0 && mid < klen {
						m.MultiplyAddPart(y, x, index.Span(0, mid-1))
						m.MultiplyAddPart(y, x, index.Span(mid, klen-1))
						m.MultiplyAddTPart(z, w, index.Span(0, mid-1))
						m.MultiplyAddTPart(z, w, index.Span(mid, klen-1))
					} else {
						m.MultiplyAddPart(y, x, index.Span(0, klen-1))
						m.MultiplyAddTPart(z, w, index.Span(0, klen-1))
					}
					if d := maxAbs(y, wantY); d > 1e-12 {
						t.Errorf("split MultiplyAddPart off dense reference by %g", d)
					}
					if d := maxAbs(z, wantZ); d > 1e-12 {
						t.Errorf("split MultiplyAddTPart off dense reference by %g", d)
					}
				})
			}
		})
	}
}

// TestBlockFormatsOddDims is the direct regression for the conversion
// panic: BCSR/BCSC conversion of odd-dimension matrices used to die on
// "block shape must divide the matrix dimensions".
func TestBlockFormatsOddDims(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, sh := range []struct{ rows, cols int64 }{{7, 7}, {7, 4}, {4, 7}, {1, 1}, {1, 6}, {9, 1}} {
		a := randomCSRMatrix(r, sh.rows, sh.cols, 0.3)
		for _, f := range []string{"BCSR", "BCSC"} {
			m := Convert(a, f) // must not panic
			if d := maxAbs(ToDense(m), ToDense(a)); d != 0 {
				t.Errorf("%s %dx%d changed values by %g", f, sh.rows, sh.cols, d)
			}
		}
	}
}

// TestDuplicateCOOEntries checks the assembly paths against repeated
// coordinates: a COO holding duplicates applies them additively, and
// every coalescing conversion sums them into one stored entry.
func TestDuplicateCOOEntries(t *testing.T) {
	coo := NewCOO(3, 3,
		[]int64{0, 0, 1, 2, 2, 2},
		[]int64{0, 0, 1, 2, 2, 0},
		[]float64{1, 2, 3, 4, -1, 5})
	want := []float64{
		3, 0, 0,
		0, 3, 0,
		5, 0, 3,
	}
	if d := maxAbs(ToDense(coo), want); d != 0 {
		t.Fatalf("duplicate COO product off by %g", d)
	}
	back := CSRFromMatrix(coo)
	if back.NNZ() != 4 {
		t.Errorf("CSRFromMatrix kept %d entries, want 4 coalesced", back.NNZ())
	}
	if d := maxAbs(ToDense(back), want); d != 0 {
		t.Errorf("coalesced round trip changed values by %g", d)
	}

	dup := []Coord{{Row: 1, Col: 1, Val: 2}, {Row: 1, Col: 1, Val: 1}, {Row: 0, Col: 2, Val: 4}}
	if a := CSRFromCoords(3, 3, dup); a.NNZ() != 2 {
		t.Errorf("CSRFromCoords kept %d entries, want 2", a.NNZ())
	}
	if a := CSCFromCoords(3, 3, dup); a.NNZ() != 2 {
		t.Errorf("CSCFromCoords kept %d entries, want 2", a.NNZ())
	}

	// Every format built from the coalesced matrix agrees with the COO.
	x := []float64{0.5, -1, 2}
	wantY := make([]float64, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			wantY[i] += want[i*3+j] * x[j]
		}
	}
	for _, f := range allFormats() {
		y := make([]float64, 3)
		SpMV(Convert(back, f), y, x)
		if d := maxAbs(y, wantY); d > 1e-12 {
			t.Errorf("%s from duplicate-built CSR off by %g", f, d)
		}
	}
}

// TestProfileFeatures pins the structural profile on a hand-built band
// matrix so the tuner's inputs stay trustworthy.
func TestProfileFeatures(t *testing.T) {
	// 4×4 tridiagonal with one empty row (row 2).
	a := CSRFromCoords(4, 4, []Coord{
		{Row: 0, Col: 0, Val: 2}, {Row: 0, Col: 1, Val: -1},
		{Row: 1, Col: 0, Val: -1}, {Row: 1, Col: 1, Val: 2}, {Row: 1, Col: 2, Val: -1},
		{Row: 3, Col: 2, Val: -1}, {Row: 3, Col: 3, Val: 2},
	})
	p := ProfileCSR(a)
	if p.Rows != 4 || p.Cols != 4 || p.NNZ != 7 {
		t.Fatalf("shape features: %+v", p)
	}
	if p.Bandwidth != 1 {
		t.Errorf("Bandwidth = %d, want 1", p.Bandwidth)
	}
	if p.Diags != 3 {
		t.Errorf("Diags = %d, want 3", p.Diags)
	}
	if p.EmptyRows != 1 {
		t.Errorf("EmptyRows = %d, want 1", p.EmptyRows)
	}
	if p.MaxRowLen != 3 {
		t.Errorf("MaxRowLen = %d, want 3", p.MaxRowLen)
	}
	if p.DiagFilled != 3 {
		t.Errorf("DiagFilled = %d, want 3", p.DiagFilled)
	}

	// Empty band: every feature must stay finite and zero-valued.
	if pe := ProfileRows(a, 2, 2); pe.Rows != 0 || pe.NNZ != 0 {
		t.Errorf("empty band profile: %+v", pe)
	}
}

// TestSelectFormatSane checks the tuner returns a convertible format and
// picks the obviously right one on an extreme structure: a large banded
// matrix with fully occupied diagonals is DIA's best case.
func TestSelectFormatSane(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, sh := range []struct{ rows, cols int64 }{{1, 1}, {16, 16}, {7, 31}, {40, 3}} {
		a := randomCSRMatrix(r, sh.rows, sh.cols, 0.2)
		f := SelectFormat(ProfileCSR(a))
		found := false
		for _, g := range Formats {
			found = found || f == g
		}
		if !found {
			t.Errorf("SelectFormat returned unknown format %q", f)
		}
	}

	tri := Laplacian2D(64, 1) // pure tridiagonal, all three diagonals dense
	if f := SelectFormat(ProfileCSR(tri)); f != "DIA" {
		t.Errorf("tridiagonal SelectFormat = %s, want DIA", f)
	}
}

// TestAutoSelectBands checks the composite against its source on a
// structurally mixed matrix: a dense block atop a diagonal tail, with
// band boundaries that do not align with the structure change.
func TestAutoSelectBands(t *testing.T) {
	var coords []Coord
	for i := int64(0); i < 64; i++ { // dense 64×64 head
		for j := int64(0); j < 64; j++ {
			coords = append(coords, Coord{Row: i, Col: j, Val: float64(i*64+j) + 0.5})
		}
	}
	for i := int64(64); i < 512; i++ { // tridiagonal tail
		coords = append(coords, Coord{Row: i, Col: i, Val: 4})
		coords = append(coords, Coord{Row: i, Col: i - 1, Val: -1})
		if i+1 < 512 {
			coords = append(coords, Coord{Row: i, Col: i + 1, Val: -1})
		}
	}
	a := CSRFromCoords(512, 512, coords)
	// Band boundaries deliberately misaligned with the structure change
	// at row 64: the head band must still get a dense-friendly format and
	// the tail bands a banded one, and the tiles' kernel offsets,
	// clipped relations, and split kernels must all line up.
	au := AutoSelectBands(a, []int64{0, 100, 300, 480})
	if got := len(au.SelectedFormats()); got < 2 {
		t.Fatalf("got %d band(s) %v, want a multi-format tiling", got, au.SelectedFormats())
	}
	if au.NNZ() < a.NNZ() {
		t.Errorf("composite NNZ %d < source %d", au.NNZ(), a.NNZ())
	}
	if d := maxAbs(ToDense(au), ToDense(a)); d != 0 {
		t.Errorf("composite differs from source by %g", d)
	}
	// The relations must cover the full kernel space.
	if au.RowRelation().Left().Size() != au.Kernel().Size() {
		t.Errorf("row relation covers %d of %d kernel points",
			au.RowRelation().Left().Size(), au.Kernel().Size())
	}
}
