package sparse

// Sparse matrix algebra used by preconditioner construction: addition,
// scaling, identity, and sparse-times-sparse products (SpGEMM).

// Identity returns the n × n identity in CSR form.
func Identity(n int64) *CSR {
	coords := make([]Coord, n)
	for i := int64(0); i < n; i++ {
		coords[i] = Coord{Row: i, Col: i, Val: 1}
	}
	return CSRFromCoords(n, n, coords)
}

// DiagonalCSR returns diag(d) in CSR form.
func DiagonalCSR(d []float64) *CSR {
	coords := make([]Coord, len(d))
	for i, v := range d {
		coords[i] = Coord{Row: int64(i), Col: int64(i), Val: v}
	}
	return CSRFromCoords(int64(len(d)), int64(len(d)), coords)
}

// Diagonal extracts the main diagonal of any matrix.
func Diagonal(a Matrix) []float64 {
	rows, cols := Dims(a)
	n := rows
	if cols < n {
		n = cols
	}
	// Probe with basis vectors is O(n²); for CSR take the fast path.
	if csr, ok := a.(*CSR); ok {
		d := make([]float64, n)
		for i := int64(0); i < n; i++ {
			for k := csr.rowptr[i]; k < csr.rowptr[i+1]; k++ {
				if csr.colIdx[k] == i {
					d[i] += csr.vals[k]
				}
			}
		}
		return d
	}
	x := make([]float64, cols)
	y := make([]float64, rows)
	d := make([]float64, n)
	for j := int64(0); j < n; j++ {
		x[j] = 1
		SpMV(a, y, x)
		x[j] = 0
		d[j] = y[j]
	}
	return d
}

// BlockDiag returns the k-fold block-diagonal matrix diag(a, …, a) in
// CSR form. Index and value arrays are tiled with per-block offsets, so
// the result owns k× the input's storage — callers batching many systems
// over one operator should bound k·nnz before concatenating.
func BlockDiag(a *CSR, k int) *CSR {
	if k < 1 {
		panic("sparse: BlockDiag needs k >= 1")
	}
	nnz := int64(len(a.vals))
	rowptr := make([]int64, int64(k)*a.rows+1)
	colIdx := make([]int64, int64(k)*nnz)
	vals := make([]float64, int64(k)*nnz)
	for b := int64(0); b < int64(k); b++ {
		ro, co, ko := b*a.rows, b*a.cols, b*nnz
		for i := int64(0); i < a.rows; i++ {
			rowptr[ro+i] = ko + a.rowptr[i]
		}
		for j, c := range a.colIdx {
			colIdx[ko+int64(j)] = co + c
		}
		copy(vals[ko:ko+nnz], a.vals)
	}
	rowptr[int64(k)*a.rows] = int64(k) * nnz
	return NewCSR(int64(k)*a.rows, int64(k)*a.cols, rowptr, colIdx, vals)
}

// Scale returns α·A in CSR form.
func Scale(a *CSR, alpha float64) *CSR {
	coords := CoordsFromCSR(a)
	for i := range coords {
		coords[i].Val *= alpha
	}
	return CSRFromCoords(a.rows, a.cols, coords)
}

// Add returns A + B in CSR form; shapes must match.
func Add(a, b *CSR) *CSR {
	if a.rows != b.rows || a.cols != b.cols {
		panic("sparse: Add shape mismatch")
	}
	coords := append(CoordsFromCSR(a), CoordsFromCSR(b)...)
	return CSRFromCoords(a.rows, a.cols, coords)
}

// MatMul returns the sparse product A·B in CSR form using the classic
// Gustavson row-by-row algorithm. A is rows×k, B is k×cols.
func MatMul(a, b *CSR) *CSR {
	if a.cols != b.rows {
		panic("sparse: MatMul inner dimension mismatch")
	}
	rowptr := make([]int64, a.rows+1)
	var colIdx []int64
	var vals []float64
	// Dense accumulator with a generation counter avoids clearing.
	acc := make([]float64, b.cols)
	gen := make([]int64, b.cols)
	var cur int64
	var touched []int64
	for i := int64(0); i < a.rows; i++ {
		cur++
		touched = touched[:0]
		for ka := a.rowptr[i]; ka < a.rowptr[i+1]; ka++ {
			j := a.colIdx[ka]
			av := a.vals[ka]
			for kb := b.rowptr[j]; kb < b.rowptr[j+1]; kb++ {
				c := b.colIdx[kb]
				if gen[c] != cur {
					gen[c] = cur
					acc[c] = 0
					touched = append(touched, c)
				}
				acc[c] += av * b.vals[kb]
			}
		}
		sortInt64(touched)
		for _, c := range touched {
			colIdx = append(colIdx, c)
			vals = append(vals, acc[c])
		}
		rowptr[i+1] = int64(len(vals))
	}
	return NewCSR(a.rows, b.cols, rowptr, colIdx, vals)
}

// sortInt64 is an insertion sort; SpGEMM rows are short.
func sortInt64(s []int64) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// DropTiny returns A with entries of magnitude below eps removed
// (structural zeros from cancellation bloat polynomial preconditioners).
func DropTiny(a *CSR, eps float64) *CSR {
	var coords []Coord
	for _, c := range CoordsFromCSR(a) {
		if c.Val >= eps || c.Val <= -eps {
			coords = append(coords, c)
		}
	}
	return CSRFromCoords(a.rows, a.cols, coords)
}
