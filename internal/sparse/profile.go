package sparse

import "math"

// Adaptive format selection (MSREP-style profile-driven tuning): a cheap
// structural profile of a matrix (or a row band of one) feeds a
// calibrated bandwidth model that predicts each storage format's SpMV
// time, and the cheapest prediction wins. The profile features are
// exactly the quantities the formats' footprints depend on — bandwidth
// and diagonal fill for DIA, row-length spread for ELL, block density
// for BCSR/BCSC, overall density for Dense.

// Profile summarizes the sparsity structure of a matrix or row band.
type Profile struct {
	// Rows, Cols, NNZ are the band's shape and stored-entry count.
	Rows, Cols, NNZ int64
	// Bandwidth is max |col−row| over the entries (0 when empty).
	Bandwidth int64
	// Diags is the number of distinct occupied diagonals (col−row).
	Diags int64
	// MaxRowLen and MeanRowLen describe the row-length distribution;
	// RowLenVar is its variance. ELL pads every row to MaxRowLen, so the
	// gap between max and mean is ELL's waste.
	MaxRowLen  int64
	MeanRowLen float64
	RowLenVar  float64
	MaxColLen  int64 // longest column (ELL' pads columns to this)
	// MinCol and MaxCol bound the columns the band touches (valid when
	// NNZ > 0): the x traffic of a narrow band is this span, not Cols.
	MinCol, MaxCol int64
	EmptyRows      int64 // rows with no stored entries
	Blocks2x2      int64 // distinct occupied 2×2 blocks (BCSR/BCSC fill unit)
	DiagFilled     int64 // entries with col == row
	Density        float64
	BlockWaste     float64 // padding ratio of 2×2 blocking: 4·Blocks2x2/NNZ
	RowLenSkew     float64 // MaxRowLen / max(MeanRowLen, 1)
	DiagFill       float64 // NNZ / (Diags·min(Rows,Cols)): occupancy of DIA storage
	ColLenSkew     float64 // MaxColLen · Cols / NNZ
	DiagCovered    float64 // DiagFilled / min(Rows, Cols)
}

// ProfileCSR profiles the whole matrix.
func ProfileCSR(a *CSR) Profile { return ProfileRows(a, 0, a.rows) }

// ProfileRows profiles the row band [r0, r1) of a CSR matrix. One O(nnz)
// pass gathers every feature the format model consumes.
func ProfileRows(a *CSR, r0, r1 int64) Profile {
	p := Profile{Rows: r1 - r0, Cols: a.cols}
	if p.Rows <= 0 {
		return p
	}
	diags := make(map[int64]struct{})
	blocks := make(map[int64]struct{})
	colLen := make(map[int64]int64)
	nbc := (a.cols + 1) / 2
	p.MinCol = a.cols
	var sumLen, sumLenSq int64
	for i := r0; i < r1; i++ {
		rl := a.rowptr[i+1] - a.rowptr[i]
		if rl == 0 {
			p.EmptyRows++
		}
		if rl > p.MaxRowLen {
			p.MaxRowLen = rl
		}
		sumLen += rl
		sumLenSq += rl * rl
		li := i - r0 // band-local row
		for k := a.rowptr[i]; k < a.rowptr[i+1]; k++ {
			c := a.colIdx[k]
			if c < p.MinCol {
				p.MinCol = c
			}
			if c > p.MaxCol {
				p.MaxCol = c
			}
			d := c - li
			if d < 0 {
				if -d > p.Bandwidth {
					p.Bandwidth = -d
				}
			} else if d > p.Bandwidth {
				p.Bandwidth = d
			}
			diags[d] = struct{}{}
			blocks[(li/2)*nbc+c/2] = struct{}{}
			colLen[c]++
			if c == li {
				p.DiagFilled++
			}
		}
	}
	p.NNZ = sumLen
	if p.NNZ == 0 {
		p.MinCol = 0
	}
	p.Diags = int64(len(diags))
	p.Blocks2x2 = int64(len(blocks))
	for _, n := range colLen {
		if n > p.MaxColLen {
			p.MaxColLen = n
		}
	}
	p.MeanRowLen = float64(sumLen) / float64(p.Rows)
	p.RowLenVar = float64(sumLenSq)/float64(p.Rows) - p.MeanRowLen*p.MeanRowLen
	if p.Rows > 0 && p.Cols > 0 {
		p.Density = float64(p.NNZ) / (float64(p.Rows) * float64(p.Cols))
	}
	if p.NNZ > 0 {
		p.BlockWaste = 4 * float64(p.Blocks2x2) / float64(p.NNZ)
		minDim := min(p.Rows, p.Cols)
		if p.Diags > 0 && minDim > 0 {
			p.DiagFill = float64(p.NNZ) / (float64(p.Diags) * float64(minDim))
		}
		p.RowLenSkew = float64(p.MaxRowLen) / maxf(p.MeanRowLen, 1)
		p.ColLenSkew = float64(p.MaxColLen) * float64(p.Cols) / float64(p.NNZ)
		if minDim > 0 {
			p.DiagCovered = float64(p.DiagFilled) / float64(minDim)
		}
	}
	return p
}

// formatRate is the calibrated effective SpMV bandwidth of each format in
// bytes per second, measured by cmd/benchlaunch's format sweep on this
// repository's kernels on regular (banded, blocked, low-diagonal-count)
// structures. DIA's rate is against its full footprint including the
// per-diagonal vector re-reads (see formatFootprint), where its pure
// sequential streaming sustains the highest bandwidth of any kernel. The
// absolute numbers only matter relative to one another; the tuner ranks
// footprint/rate quotients.
var formatRate = map[string]float64{
	"Dense": 10.0e9,
	"COO":   8.0e9,
	"CSR":   11.0e9,
	"CSC":   7.0e9,
	"ELL":   11.5e9,
	"ELL'":  6.5e9,
	"DIA":   20.0e9,
	"BCSR":  9.5e9,
	"BCSC":  6.8e9,
}

// gatherRate overrides formatRate on scattered structures (most entries
// on their own diagonal), where SpMV is bound by irregular x gathers
// rather than streaming. There the winner is decided by memory-level
// parallelism: COO's flat entry loop keeps many independent loads in
// flight (and conversion emits entries in row-major order, so its writes
// still stream), while the row-looped formats serialize on short
// variable-length inner loops and measure several-fold slower per byte
// than on regular structures.
var gatherRate = map[string]float64{
	"COO": 14.0e9,
	"CSR": 6.0e9,
	"ELL": 10.0e9,
}

// Scattered reports whether the profiled structure is gather-bound:
// enough entries that the regime matters, with most of them on distinct
// diagonals (a random pattern fills one diagonal per entry; stencils and
// blocks concentrate on a few).
func (p Profile) Scattered() bool {
	return p.Diags > 32 && 4*p.Diags > p.NNZ
}

// formatCost is the model's predicted SpMV time for the profiled
// structure in the given format: bytes streamed over the regime's
// calibrated rate.
func formatCost(p Profile, format string) float64 {
	rate := formatRate[format]
	if p.Scattered() {
		if r, ok := gatherRate[format]; ok {
			rate = r
		}
	}
	return formatFootprint(p, format) / rate
}

// formatFootprint predicts the bytes one SpMV streams through memory for
// the band in the given format: the stored entry arrays (values plus
// whatever indices the format keeps) and the dense vector traffic. A
// format whose padding explodes on this structure gets a correspondingly
// exploded footprint — that, not a heuristic rule, is what rules it out.
func formatFootprint(p Profile, format string) float64 {
	// y write once; x read over the column span the band actually
	// touches — charging a narrow band for all of x would bias the
	// tuner against banding.
	xTouch := p.Cols
	if p.NNZ > 0 {
		if span := p.MaxCol - p.MinCol + 1; span < xTouch {
			xTouch = span
		}
	}
	vec := 8 * float64(p.Rows+xTouch)
	if p.NNZ == 0 {
		// Degenerate empty band: every format stores nothing but its
		// fixed pointers; rank them by that skeleton.
		switch format {
		case "Dense":
			return 8*float64(p.Rows)*float64(p.Cols) + vec
		case "CSR", "BCSR":
			return 8*float64(p.Rows+1) + vec
		case "CSC", "BCSC", "ELL'":
			return 8*float64(p.Cols+1) + vec
		default:
			return vec
		}
	}
	nnz := float64(p.NNZ)
	switch format {
	case "Dense":
		return 8*float64(p.Rows)*float64(p.Cols) + vec
	case "COO":
		return 24*nnz + vec // val + row + col per entry
	case "CSR":
		return 16*nnz + 8*float64(p.Rows+1) + vec
	case "CSC":
		return 16*nnz + 8*float64(p.Cols+1) + vec
	case "ELL":
		return 16*float64(p.Rows)*float64(p.MaxRowLen) + vec
	case "ELL'":
		return 16*float64(p.Cols)*float64(p.MaxColLen) + vec
	case "DIA":
		// The kernel makes one pass over x and y per diagonal, so the
		// vector traffic scales with the diagonal count — omitting that
		// re-read makes DIA look 2× better than it measures on stencils.
		return 8*float64(p.Diags)*float64(p.Cols) +
			16*float64(p.Diags)*float64(p.Rows) + vec
	case "BCSR":
		// 2×2 blocks (1×1 on odd shapes, where blocking degenerates to
		// CSR): 4 values + 1 index per block, one pointer per block row.
		return 8*5*float64(p.Blocks2x2) + 8*float64(p.Rows/2+1) + vec
	case "BCSC":
		return 8*5*float64(p.Blocks2x2) + 8*float64(p.Cols/2+1) + vec
	}
	// An unknown name predicts an infinite footprint, so cost ranking
	// never selects it; a hard panic here turned a bad candidate string
	// (mmsolve's -format path reached this) into a crash.
	return math.Inf(1)
}

// autoCandidates is the tuner's candidate set: the row-order formats
// whose effective bandwidth the two-regime rate tables predict reliably
// (COO qualifies because conversion emits row-major-sorted entries).
// The column-major and block formats (CSC, ELL', BCSR, BCSC) are
// excluded — their measured rate swings several-fold with the nonzero
// pattern (scattered writes, block fill), which makes a footprint/rate
// model confidently pick them where they lose. They remain available as
// explicit choices.
var autoCandidates = []string{"CSR", "COO", "ELL", "DIA", "Dense"}

// SelectFormat returns the format the calibrated model predicts fastest
// for the profiled structure: argmin of formatCost across the candidate
// set.
func SelectFormat(p Profile) string {
	f, _ := selectFormatCost(p)
	return f
}

func selectFormatCost(p Profile) (string, float64) {
	best := "CSR"
	bestCost := formatCost(p, best)
	for _, f := range autoCandidates {
		if f == best {
			continue
		}
		if cost := formatCost(p, f); cost < bestCost {
			best, bestCost = f, cost
		}
	}
	return best, bestCost
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
