package sparse

import (
	"testing"

	"kdrsolvers/internal/index"
)

func TestConstBandMatchesTridiagonal(t *testing.T) {
	// A tridiagonal matrix as a constant band must equal its CSR twin.
	n := int64(9)
	band := ConstBand(n, n, []int64{-1, 0, 1}, []float64{-1, 2, -1})
	ref := Laplacian1D(n)
	if !densesEqual(ToDense(band), ToDense(ref), 0) {
		t.Fatal("ConstBand tridiagonal != Laplacian1D")
	}
	if band.Format() != "Band" || band.NNZ() != 3*n {
		t.Fatalf("metadata: %s %d", band.Format(), band.NNZ())
	}
	if band.Kernel().Size() != 3*n || band.Domain().Size() != n || band.Range().Size() != n {
		t.Fatal("spaces wrong")
	}
}

func TestBandCoefficientFunction(t *testing.T) {
	// coeff can vary along the diagonal.
	n := int64(6)
	band := NewBand(n, n, []int64{0}, func(_ int, j int64) float64 { return float64(j + 1) })
	d := ToDense(band)
	for i := int64(0); i < n; i++ {
		if d[i*n+i] != float64(i+1) {
			t.Fatalf("diag[%d] = %g", i, d[i*n+i])
		}
	}
}

func TestBandNilCoeffIsZero(t *testing.T) {
	band := NewBand(4, 4, []int64{0, 1}, nil)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	band.MultiplyAdd(y, x)
	for _, v := range y {
		if v != 0 {
			t.Fatal("nil coeff must contribute nothing")
		}
	}
	// The relations are still live (structure-only use).
	if band.RowRelation().Preimage(index.Span(0, 3)).Empty() {
		t.Fatal("relations must reflect the band structure")
	}
}

func TestBandAdjointAndParts(t *testing.T) {
	n := int64(8)
	band := ConstBand(n, n, []int64{-2, 1}, []float64{3, -0.5})
	ref := DenseFromMatrix(band)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i) - 3.5
	}
	want := make([]float64, n)
	ref.MultiplyAddT(want, x)
	got := make([]float64, n)
	band.MultiplyAddT(got, x)
	if !densesEqual(got, want, 1e-15) {
		t.Fatal("Band adjoint wrong")
	}
	// Partitioned forms sum to the whole, forward and adjoint.
	kp := index.EqualPartition(band.Kernel(), 3)
	fw := make([]float64, n)
	ad := make([]float64, n)
	for c := 0; c < 3; c++ {
		band.MultiplyAddPart(fw, x, kp.Piece(c))
		band.MultiplyAddTPart(ad, x, kp.Piece(c))
	}
	wantF := make([]float64, n)
	band.MultiplyAdd(wantF, x)
	if !densesEqual(fw, wantF, 1e-15) || !densesEqual(ad, want, 1e-15) {
		t.Fatal("Band partitioned kernels wrong")
	}
}

func TestConstBandValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	ConstBand(4, 4, []int64{0, 1}, []float64{1})
}

func TestVirtualTileStructure(t *testing.T) {
	in := index.Interval{Lo: 10, Hi: 19}
	out := index.Interval{Lo: 30, Hi: 39}
	v := NewVirtualTile(100, 100, 50, in, out)
	if v.NNZ() != 50 || v.Format() != "VirtualTile" {
		t.Fatal("metadata wrong")
	}
	if v.Domain().Size() != 100 || v.Range().Size() != 100 || v.Kernel().Size() != 50 {
		t.Fatal("spaces wrong")
	}
	// The kernel reads exactly the input block and writes exactly the
	// output block.
	full := v.Kernel().Set
	if !v.ColRelation().Image(full).Equal(index.NewIntervalSet(in)) {
		t.Fatal("input block wrong")
	}
	if !v.RowRelation().Image(full).Equal(index.NewIntervalSet(out)) {
		t.Fatal("output block wrong")
	}
	// Preimages: touching the block involves the whole kernel; missing it
	// involves nothing.
	if !v.RowRelation().Preimage(index.Span(35, 35)).Equal(full) {
		t.Fatal("block preimage wrong")
	}
	if !v.ColRelation().Preimage(index.Span(0, 9)).Empty() {
		t.Fatal("outside preimage should be empty")
	}
}

func TestVirtualTileKernelsPanic(t *testing.T) {
	v := NewVirtualTile(4, 4, 2, index.Interval{Lo: 0, Hi: 1}, index.Interval{Lo: 2, Hi: 3})
	y := make([]float64, 4)
	x := make([]float64, 4)
	for _, fn := range []func(){
		func() { v.MultiplyAdd(y, x) },
		func() { v.MultiplyAddT(y, x) },
		func() { v.MultiplyAddPart(y, x, index.Span(0, 1)) },
		func() { v.MultiplyAddTPart(y, x, index.Span(0, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("structure-only kernels must panic")
				}
			}()
			fn()
		}()
	}
}
