package sparse

import (
	"fmt"

	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
)

// Matrix is the KDR representation of a sparse R × D matrix: an entry
// collection over a kernel space K plus the row relation (K ↔ R) and
// column relation (K ↔ D) that place each stored number in the grid.
//
// Vectors are dense []float64 slices indexed by the linearized domain and
// range spaces. All kernels are in-place multiply-adds; use SpMV for the
// assign-form product.
type Matrix interface {
	// Domain returns the domain space D (columns, solution vector).
	Domain() index.Space
	// Range returns the range space R (rows, right-hand side).
	Range() index.Space
	// Kernel returns the kernel space K indexing stored entries.
	Kernel() index.Space
	// RowRelation returns the row relation with K on the left and R on
	// the right.
	RowRelation() dpart.Relation
	// ColRelation returns the column relation with K on the left and D on
	// the right.
	ColRelation() dpart.Relation
	// NNZ returns the number of stored entries (including any padding the
	// format requires).
	NNZ() int64
	// Format returns the storage format name ("CSR", "COO", ...).
	Format() string
	// MultiplyAdd computes y += A·x.
	MultiplyAdd(y, x []float64)
	// MultiplyAddT computes y += Aᵀ·x.
	MultiplyAddT(y, x []float64)
	// MultiplyAddPart computes the contributions of kernel points in kset
	// only: y[row(k)] += A_k · x[col(k)] for k ∈ kset.
	MultiplyAddPart(y, x []float64, kset index.IntervalSet)
	// MultiplyAddTPart is the adjoint restricted form.
	MultiplyAddTPart(y, x []float64, kset index.IntervalSet)
}

// SpMV computes y = A·x, overwriting y.
func SpMV(a Matrix, y, x []float64) {
	for i := range y {
		y[i] = 0
	}
	a.MultiplyAdd(y, x)
}

// SpMVT computes y = Aᵀ·x, overwriting y.
func SpMVT(a Matrix, y, x []float64) {
	for i := range y {
		y[i] = 0
	}
	a.MultiplyAddT(y, x)
}

// Dims returns (rows, cols) of the matrix.
func Dims(a Matrix) (rows, cols int64) {
	return a.Range().Size(), a.Domain().Size()
}

// CheckShapes panics unless y and x have the range and domain sizes of a.
// Kernels call it on entry so shape bugs fail fast with a clear message.
func CheckShapes(a Matrix, y, x []float64) {
	rows, cols := Dims(a)
	if int64(len(y)) != rows || int64(len(x)) != cols {
		panic(fmt.Sprintf("sparse: %s is %d x %d but len(y)=%d, len(x)=%d",
			a.Format(), rows, cols, len(y), len(x)))
	}
}

// checkShapesT is CheckShapes for adjoint products.
func checkShapesT(a Matrix, y, x []float64) {
	rows, cols := Dims(a)
	if int64(len(y)) != cols || int64(len(x)) != rows {
		panic(fmt.Sprintf("sparse: %sᵀ is %d x %d but len(y)=%d, len(x)=%d",
			a.Format(), cols, rows, len(y), len(x)))
	}
}

// ToDense materializes the matrix as a dense row-major rows × cols array.
// Intended for tests and small systems.
func ToDense(a Matrix) []float64 {
	rows, cols := Dims(a)
	out := make([]float64, rows*cols)
	x := make([]float64, cols)
	y := make([]float64, rows)
	for j := int64(0); j < cols; j++ {
		x[j] = 1
		SpMV(a, y, x)
		x[j] = 0
		for i := int64(0); i < rows; i++ {
			out[i*cols+j] = y[i]
		}
	}
	return out
}

// Coord is one explicit nonzero used when assembling matrices.
type Coord struct {
	Row, Col int64
	Val      float64
}
