package sparse

import (
	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
)

// VirtualTile is a structure-only matrix for simulator-scale experiments:
// it declares that nnz stored entries read one contiguous block of its
// domain and write one contiguous block of its range, with no physical
// entries at all. The Section 6.3 load-balancing experiment cuts the
// stencil matrix into 64 × 64 such tiles (a row-strip × column-strip
// decomposition in which every tile is one dense grid block).
//
// VirtualTile can only be used with virtual planners; its compute kernels
// panic.
type VirtualTile struct {
	domain, rangeSz int64
	nnz             int64
	rowRel, colRel  *dpart.BlockRelation
}

// NewVirtualTile builds a tile with the given component sizes, entry
// count, and the input/output blocks it touches.
func NewVirtualTile(domain, rangeSize, nnz int64, inBlock, outBlock index.Interval) *VirtualTile {
	return &VirtualTile{
		domain: domain, rangeSz: rangeSize, nnz: nnz,
		rowRel: dpart.NewBlockRelation("K", nnz, outBlock, "R", rangeSize),
		colRel: dpart.NewBlockRelation("K", nnz, inBlock, "D", domain),
	}
}

// Domain implements Matrix.
func (a *VirtualTile) Domain() index.Space { return a.colRel.Right() }

// Range implements Matrix.
func (a *VirtualTile) Range() index.Space { return a.rowRel.Right() }

// Kernel implements Matrix.
func (a *VirtualTile) Kernel() index.Space { return index.NewSpace("K", a.nnz) }

// RowRelation implements Matrix.
func (a *VirtualTile) RowRelation() dpart.Relation { return a.rowRel }

// ColRelation implements Matrix.
func (a *VirtualTile) ColRelation() dpart.Relation { return a.colRel }

// NNZ implements Matrix.
func (a *VirtualTile) NNZ() int64 { return a.nnz }

// Format implements Matrix.
func (a *VirtualTile) Format() string { return "VirtualTile" }

// MultiplyAdd implements Matrix; VirtualTile has no entries to multiply.
func (a *VirtualTile) MultiplyAdd(y, x []float64) {
	panic("sparse: VirtualTile is structure-only; use a virtual planner")
}

// MultiplyAddT implements Matrix.
func (a *VirtualTile) MultiplyAddT(y, x []float64) {
	panic("sparse: VirtualTile is structure-only; use a virtual planner")
}

// MultiplyAddPart implements Matrix.
func (a *VirtualTile) MultiplyAddPart(y, x []float64, kset index.IntervalSet) {
	panic("sparse: VirtualTile is structure-only; use a virtual planner")
}

// MultiplyAddTPart implements Matrix.
func (a *VirtualTile) MultiplyAddTPart(y, x []float64, kset index.IntervalSet) {
	panic("sparse: VirtualTile is structure-only; use a virtual planner")
}
