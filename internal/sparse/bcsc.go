package sparse

import (
	"sort"
	"sync"

	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
)

// BCSC is the column-major dual of BCSR: dense br × bd blocks ordered by
// block column through colptr: D0 → [K0, K0], with brow: K0 → R0 storing
// block rows.
type BCSC struct {
	rows, cols int64
	br, bd     int64
	colptr     []int64 // len cols/bd + 1, in block units
	brow       []int64 // block row of each block
	vals       []float64

	relOnce        sync.Once
	rowRel, colRel *dpart.FnRelation
}

// NewBCSC wraps block storage (retained, not copied) as a rows × cols
// matrix with br × bd blocks. Blocks are stored row-major internally,
// back to back, in block-column order.
func NewBCSC(rows, cols, br, bd int64, colptr, brow []int64, vals []float64) *BCSC {
	if rows%br != 0 || cols%bd != 0 {
		panic("sparse: BCSC dimensions must be multiples of the block shape")
	}
	if int64(len(colptr)) != cols/bd+1 {
		panic("sparse: BCSC colptr must have cols/bd+1 entries")
	}
	if int64(len(vals)) != int64(len(brow))*br*bd {
		panic("sparse: BCSC vals must have nblocks*br*bd entries")
	}
	return &BCSC{
		rows: rows, cols: cols, br: br, bd: bd,
		colptr: colptr, brow: brow, vals: vals,
	}
}

// BCSCFromCSR converts a CSR matrix to BCSC with the given block shape.
func BCSCFromCSR(a *CSR, br, bd int64) *BCSC {
	if a.rows%br != 0 || a.cols%bd != 0 {
		panic("sparse: BCSC block shape must divide the matrix dimensions")
	}
	nbc := a.cols / bd
	blockRows := make([][]int64, nbc)
	for i := int64(0); i < a.rows; i++ {
		for k := a.rowptr[i]; k < a.rowptr[i+1]; k++ {
			bj := a.colIdx[k] / bd
			blockRows[bj] = append(blockRows[bj], i/br)
		}
	}
	colptr := make([]int64, nbc+1)
	var brow []int64
	for bj := int64(0); bj < nbc; bj++ {
		rs := blockRows[bj]
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		colptr[bj] = int64(len(brow))
		for i, r := range rs {
			if i == 0 || r != rs[i-1] {
				brow = append(brow, r)
			}
		}
	}
	colptr[nbc] = int64(len(brow))
	vals := make([]float64, int64(len(brow))*br*bd)
	for i := int64(0); i < a.rows; i++ {
		bi := i / br
		for k := a.rowptr[i]; k < a.rowptr[i+1]; k++ {
			j := a.colIdx[k]
			bj := j / bd
			lo, hi := colptr[bj], colptr[bj+1]
			b := lo + int64(sort.Search(int(hi-lo), func(t int) bool { return brow[lo+int64(t)] >= bi }))
			vals[b*br*bd+(i%br)*bd+(j%bd)] += a.vals[k]
		}
	}
	return NewBCSC(a.rows, a.cols, br, bd, colptr, brow, vals)
}

// Domain implements Matrix.
func (a *BCSC) Domain() index.Space { return index.NewSpace("D", a.cols) }

// Range implements Matrix.
func (a *BCSC) Range() index.Space { return index.NewSpace("R", a.rows) }

// Kernel implements Matrix.
func (a *BCSC) Kernel() index.Space { return index.NewSpace("K", int64(len(a.vals))) }

func (a *BCSC) buildRelations() {
	a.relOnce.Do(func() {
		n := int64(len(a.vals))
		rowIdx := make([]int64, n)
		colIdx := make([]int64, n)
		bsz := a.br * a.bd
		nbc := a.cols / a.bd
		for bj := int64(0); bj < nbc; bj++ {
			for b := a.colptr[bj]; b < a.colptr[bj+1]; b++ {
				for r := int64(0); r < a.br; r++ {
					for c := int64(0); c < a.bd; c++ {
						k := b*bsz + r*a.bd + c
						rowIdx[k] = a.brow[b]*a.br + r
						colIdx[k] = bj*a.bd + c
					}
				}
			}
		}
		a.rowRel = dpart.NewFnRelation("K", rowIdx, index.NewSpace("R", a.rows))
		a.colRel = dpart.NewFnRelation("K", colIdx, index.NewSpace("D", a.cols))
	})
}

// RowRelation implements Matrix.
func (a *BCSC) RowRelation() dpart.Relation {
	a.buildRelations()
	return a.rowRel
}

// ColRelation implements Matrix.
func (a *BCSC) ColRelation() dpart.Relation {
	a.buildRelations()
	return a.colRel
}

// NNZ implements Matrix.
func (a *BCSC) NNZ() int64 { return int64(len(a.vals)) }

// Format implements Matrix.
func (a *BCSC) Format() string { return "BCSC" }

// BlockShape returns the (br, bd) block dimensions.
func (a *BCSC) BlockShape() (int64, int64) { return a.br, a.bd }

// MultiplyAdd implements Matrix.
func (a *BCSC) MultiplyAdd(y, x []float64) {
	CheckShapes(a, y, x)
	bsz := a.br * a.bd
	nbc := a.cols / a.bd
	for bj := int64(0); bj < nbc; bj++ {
		xo := bj * a.bd
		for b := a.colptr[bj]; b < a.colptr[bj+1]; b++ {
			yo := a.brow[b] * a.br
			for r := int64(0); r < a.br; r++ {
				base := b*bsz + r*a.bd
				var sum float64
				for c := int64(0); c < a.bd; c++ {
					sum += a.vals[base+c] * x[xo+c]
				}
				y[yo+r] += sum
			}
		}
	}
}

// MultiplyAddT implements Matrix.
func (a *BCSC) MultiplyAddT(y, x []float64) {
	checkShapesT(a, y, x)
	bsz := a.br * a.bd
	nbc := a.cols / a.bd
	for bj := int64(0); bj < nbc; bj++ {
		yo := bj * a.bd
		for b := a.colptr[bj]; b < a.colptr[bj+1]; b++ {
			xo := a.brow[b] * a.br
			for r := int64(0); r < a.br; r++ {
				base := b*bsz + r*a.bd
				xi := x[xo+r]
				if xi == 0 {
					continue
				}
				for c := int64(0); c < a.bd; c++ {
					y[yo+c] += a.vals[base+c] * xi
				}
			}
		}
	}
}

// blockColOf returns the block column owning block b.
func (a *BCSC) blockColOf(b int64) int64 {
	nbc := a.cols / a.bd
	return int64(sort.Search(int(nbc), func(j int) bool { return a.colptr[j+1] > b }))
}

// MultiplyAddPart implements Matrix.
func (a *BCSC) MultiplyAddPart(y, x []float64, kset index.IntervalSet) {
	CheckShapes(a, y, x)
	bsz := a.br * a.bd
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			b := k / bsz
			within := k % bsz
			i := a.brow[b]*a.br + within/a.bd
			j := a.blockColOf(b)*a.bd + within%a.bd
			y[i] += a.vals[k] * x[j]
		}
	})
}

// MultiplyAddTPart implements Matrix.
func (a *BCSC) MultiplyAddTPart(y, x []float64, kset index.IntervalSet) {
	checkShapesT(a, y, x)
	bsz := a.br * a.bd
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			b := k / bsz
			within := k % bsz
			i := a.brow[b]*a.br + within/a.bd
			j := a.blockColOf(b)*a.bd + within%a.bd
			y[j] += a.vals[k] * x[i]
		}
	})
}
