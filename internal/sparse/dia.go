package sparse

import (
	"sort"

	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
)

// DIA stores a matrix by diagonals: the kernel space is
// K = [0, nDiag) × [0, cols), and kernel point (b, j) holds the entry at
// row j - offsets[b], column j, when that row exists. Both relations are
// implicit: the column relation is j = k % cols (a ModRelation) and the
// row relation is the per-diagonal shift (a DiagRelation). Out-of-matrix
// slots are padding and must hold zero.
type DIA struct {
	rows, cols int64
	offsets    []int64   // offset of each stored diagonal: col - row
	vals       []float64 // len nDiag*cols, diagonal-major

	rowRel *dpart.DiagRelation
	colRel *dpart.ModRelation
}

// NewDIA wraps diagonal-major value storage (retained, not copied) as a
// rows × cols matrix. vals[b*cols + j] is the entry at column j of the
// diagonal with offset offsets[b] (row j - offsets[b]); slots whose row
// falls outside [0, rows) must be zero.
func NewDIA(rows, cols int64, offsets []int64, vals []float64) *DIA {
	if int64(len(vals)) != int64(len(offsets))*cols {
		panic("sparse: DIA vals must have nDiag*cols entries")
	}
	return &DIA{
		rows: rows, cols: cols,
		offsets: offsets, vals: vals,
		rowRel: dpart.NewDiagRelation("K", offsets, cols, rows, "R"),
		colRel: dpart.NewModRelation("K", int64(len(offsets)), cols, "D"),
	}
}

// DIAFromCSR converts a CSR matrix to DIA, storing every populated
// diagonal.
func DIAFromCSR(a *CSR) *DIA {
	seen := make(map[int64]bool)
	for i := int64(0); i < a.rows; i++ {
		for k := a.rowptr[i]; k < a.rowptr[i+1]; k++ {
			seen[a.colIdx[k]-i] = true
		}
	}
	offsets := make([]int64, 0, len(seen))
	for off := range seen {
		offsets = append(offsets, off)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	slot := make(map[int64]int64, len(offsets))
	for b, off := range offsets {
		slot[off] = int64(b)
	}
	vals := make([]float64, int64(len(offsets))*a.cols)
	for i := int64(0); i < a.rows; i++ {
		for k := a.rowptr[i]; k < a.rowptr[i+1]; k++ {
			j := a.colIdx[k]
			vals[slot[j-i]*a.cols+j] += a.vals[k]
		}
	}
	return NewDIA(a.rows, a.cols, offsets, vals)
}

// Domain implements Matrix.
func (a *DIA) Domain() index.Space { return a.colRel.Right() }

// Range implements Matrix.
func (a *DIA) Range() index.Space { return a.rowRel.Right() }

// Kernel implements Matrix.
func (a *DIA) Kernel() index.Space { return index.NewSpace("K", int64(len(a.vals))) }

// RowRelation implements Matrix.
func (a *DIA) RowRelation() dpart.Relation { return a.rowRel }

// ColRelation implements Matrix.
func (a *DIA) ColRelation() dpart.Relation { return a.colRel }

// NNZ implements Matrix.
func (a *DIA) NNZ() int64 { return int64(len(a.vals)) }

// Format implements Matrix.
func (a *DIA) Format() string { return "DIA" }

// NumDiagonals returns the number of stored diagonals.
func (a *DIA) NumDiagonals() int { return len(a.offsets) }

// MultiplyAdd implements Matrix.
func (a *DIA) MultiplyAdd(y, x []float64) {
	CheckShapes(a, y, x)
	for b, off := range a.offsets {
		base := int64(b) * a.cols
		// Row i = j - off must lie in [0, rows): j in [off, rows+off).
		jLo, jHi := off, a.rows+off-1
		if jLo < 0 {
			jLo = 0
		}
		if jHi > a.cols-1 {
			jHi = a.cols - 1
		}
		for j := jLo; j <= jHi; j++ {
			y[j-off] += a.vals[base+j] * x[j]
		}
	}
}

// MultiplyAddT implements Matrix.
func (a *DIA) MultiplyAddT(y, x []float64) {
	checkShapesT(a, y, x)
	for b, off := range a.offsets {
		base := int64(b) * a.cols
		jLo, jHi := off, a.rows+off-1
		if jLo < 0 {
			jLo = 0
		}
		if jHi > a.cols-1 {
			jHi = a.cols - 1
		}
		for j := jLo; j <= jHi; j++ {
			y[j] += a.vals[base+j] * x[j-off]
		}
	}
}

// MultiplyAddPart implements Matrix.
func (a *DIA) MultiplyAddPart(y, x []float64, kset index.IntervalSet) {
	CheckShapes(a, y, x)
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			b, j := k/a.cols, k%a.cols
			i := j - a.offsets[b]
			if i >= 0 && i < a.rows {
				y[i] += a.vals[k] * x[j]
			}
		}
	})
}

// MultiplyAddTPart implements Matrix.
func (a *DIA) MultiplyAddTPart(y, x []float64, kset index.IntervalSet) {
	checkShapesT(a, y, x)
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			b, j := k/a.cols, k%a.cols
			i := j - a.offsets[b]
			if i >= 0 && i < a.rows {
				y[j] += a.vals[k] * x[i]
			}
		}
	})
}
