package sparse

import (
	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
)

// StencilOperator is a matrix-free stencil Laplacian: it implements the
// Matrix interface without storing any entries, computing coefficients on
// the fly from the grid geometry. Its kernel space is DIA-shaped —
// K = nDiag × n with one block per stencil offset — and both relations
// are implicit, so the universal co-partitioning operators apply to it
// exactly as to stored formats.
//
// StencilOperator demonstrates the paper's P2 claim (user-defined and
// matrix-free operators need no library changes) and, because its memory
// footprint is O(1), lets virtual-mode benchmarks drive the simulator at
// the paper's full problem scale (up to 2^32 unknowns).
type StencilOperator struct {
	kind StencilKind
	grid index.Grid
	n    int64
	// offsets[b] is the linearized column-minus-row offset of diagonal b;
	// coordOff[b] is the same offset in grid coordinates, used to reject
	// the wrap-around slots where a linearized offset crosses a grid
	// boundary.
	offsets  []int64
	coordOff [][3]int64
	diagVal  float64

	rowRel *dpart.DiagRelation
	colRel *dpart.ModRelation
}

// NewStencilOperator builds a matrix-free operator for the given stencil
// on the given grid. The grid's rank must match the stencil's.
func NewStencilOperator(kind StencilKind, grid index.Grid) *StencilOperator {
	if grid.Rank() != kind.Rank() {
		panic("sparse: grid rank does not match stencil")
	}
	op := &StencilOperator{kind: kind, grid: grid, n: grid.Size()}
	var coords [][3]int64
	switch kind {
	case Stencil1D3:
		coords = [][3]int64{{-1}, {0}, {1}}
		op.diagVal = 2
	case Stencil2D5:
		coords = [][3]int64{{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}}
		op.diagVal = 4
	case Stencil3D7:
		coords = [][3]int64{{-1, 0, 0}, {0, -1, 0}, {0, 0, -1}, {0, 0, 0}, {0, 0, 1}, {0, 1, 0}, {1, 0, 0}}
		op.diagVal = 6
	case Stencil3D27:
		for dx := int64(-1); dx <= 1; dx++ {
			for dy := int64(-1); dy <= 1; dy++ {
				for dz := int64(-1); dz <= 1; dz++ {
					coords = append(coords, [3]int64{dx, dy, dz})
				}
			}
		}
		op.diagVal = 26
	default:
		panic("sparse: unknown stencil kind")
	}
	op.coordOff = coords
	op.offsets = make([]int64, len(coords))
	for b, c := range coords {
		off := int64(0)
		for d := 0; d < grid.Rank(); d++ {
			off = off*grid.Dims[d] + c[d]
		}
		op.offsets[b] = off
	}
	op.rowRel = dpart.NewDiagRelation("K", op.offsets, op.n, op.n, "R")
	op.colRel = dpart.NewModRelation("K", int64(len(op.offsets)), op.n, "D")
	return op
}

// Domain implements Matrix.
func (a *StencilOperator) Domain() index.Space { return a.colRel.Right() }

// Range implements Matrix.
func (a *StencilOperator) Range() index.Space { return a.rowRel.Right() }

// Kernel implements Matrix.
func (a *StencilOperator) Kernel() index.Space {
	return index.NewSpace("K", int64(len(a.offsets))*a.n)
}

// RowRelation implements Matrix.
func (a *StencilOperator) RowRelation() dpart.Relation { return a.rowRel }

// ColRelation implements Matrix.
func (a *StencilOperator) ColRelation() dpart.Relation { return a.colRel }

// NNZ implements Matrix. It counts kernel slots (including boundary
// padding), which is what the bandwidth cost model streams.
func (a *StencilOperator) NNZ() int64 { return int64(len(a.offsets)) * a.n }

// Format implements Matrix.
func (a *StencilOperator) Format() string { return "Stencil(" + a.kind.String() + ")" }

// Grid returns the underlying grid.
func (a *StencilOperator) Grid() index.Grid { return a.grid }

// coeff returns the matrix entry for kernel slot (b, j), or 0 for
// padding: the neighbor must exist in the grid (no wrap-around).
func (a *StencilOperator) coeff(b, j int64) float64 {
	c := a.coordOff[b]
	rem := j
	// The entry is A[i, j] with i = j - offsets[b]; validity requires
	// every coordinate of j minus the offset to stay in the grid.
	for d := a.grid.Rank() - 1; d >= 0; d-- {
		cd := rem % a.grid.Dims[d]
		rem /= a.grid.Dims[d]
		id := cd - c[d]
		if id < 0 || id >= a.grid.Dims[d] {
			return 0
		}
	}
	if a.offsets[b] == 0 {
		return a.diagVal
	}
	return -1
}

// MultiplyAdd implements Matrix.
func (a *StencilOperator) MultiplyAdd(y, x []float64) {
	CheckShapes(a, y, x)
	a.MultiplyAddPart(y, x, a.Kernel().Set)
}

// MultiplyAddT implements Matrix.
func (a *StencilOperator) MultiplyAddT(y, x []float64) {
	checkShapesT(a, y, x)
	a.MultiplyAddTPart(y, x, a.Kernel().Set)
}

// MultiplyAddPart implements Matrix.
func (a *StencilOperator) MultiplyAddPart(y, x []float64, kset index.IntervalSet) {
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			b, j := k/a.n, k%a.n
			i := j - a.offsets[b]
			if i < 0 || i >= a.n {
				continue
			}
			if v := a.coeff(b, j); v != 0 {
				y[i] += v * x[j]
			}
		}
	})
}

// MultiplyAddTPart implements Matrix: for each kernel slot in kset
// holding entry (i, j), it adds A[i,j]·x[i] into y[j].
func (a *StencilOperator) MultiplyAddTPart(y, x []float64, kset index.IntervalSet) {
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			b, j := k/a.n, k%a.n
			i := j - a.offsets[b]
			if i < 0 || i >= a.n {
				continue
			}
			if v := a.coeff(b, j); v != 0 {
				y[j] += v * x[i]
			}
		}
	})
}
