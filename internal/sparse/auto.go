package sparse

import (
	"fmt"
	"strings"
	"sync"

	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
)

// Auto is a row-banded composite matrix: each contiguous row band is
// stored in the format the profile model predicts fastest for that
// band's structure ("Bring Your Own Formats": the composite satisfies
// the ordinary Matrix contract, so planners and solvers cannot tell a
// tuned matrix from a hand-picked one). The composite's kernel space
// concatenates the tiles' kernel spaces in band order, and its row and
// column relations delegate to the tiles' own relations shifted into
// global coordinates — partition projection, dependence analysis, and
// the conformance matrix all work unchanged.
type Auto struct {
	rows, cols int64
	tiles      []autoTile
	knnz       int64 // total kernel size across tiles (padding included)
	nnz        int64 // total stored entries

	relOnce sync.Once
	rowRel  *dpart.FnRelation
	colRel  *dpart.FnRelation
}

// autoTile is one row band of an Auto matrix.
type autoTile struct {
	r0, r1 int64 // global row band [r0, r1)
	koff   int64 // global kernel offset of the tile's kernel space
	klen   int64 // tile kernel size
	mat    Matrix
	format string
}

// AutoSelectBands tunes each row band of a to its predicted-fastest
// storage format. starts lists the first row of every band in ascending
// order; a missing leading 0 is implied and degenerate (empty) bands are
// skipped. Matrices with no rows are returned as a single CSR-backed
// band so the result is always a usable Matrix.
func AutoSelectBands(a *CSR, starts []int64) *Auto {
	rows, cols := a.rows, a.cols
	bounds := make([]int64, 0, len(starts)+2)
	bounds = append(bounds, 0)
	for _, s := range starts {
		if s > bounds[len(bounds)-1] && s < rows {
			bounds = append(bounds, s)
		}
	}
	bounds = append(bounds, rows)

	// Pick a format per band, then coalesce adjacent bands that chose the
	// same one: a uniform pick degenerates to a single plain-format tile,
	// so the composite costs nothing when the tuner finds no structure
	// worth splitting over.
	type bandPick struct {
		r0, r1 int64
		f      string
	}
	var picks []bandPick
	var bandedCost float64
	for b := 0; b+1 < len(bounds); b++ {
		r0, r1 := bounds[b], bounds[b+1]
		if r0 >= r1 && rows > 0 {
			continue
		}
		f, cost := selectFormatCost(ProfileRows(a, r0, r1))
		bandedCost += cost
		if n := len(picks); n > 0 && picks[n-1].f == f {
			picks[n-1].r1 = r1
			continue
		}
		picks = append(picks, bandPick{r0: r0, r1: r1, f: f})
	}

	// Banding is not free: a narrow band of a wide matrix pays format
	// overheads the whole matrix amortizes (DIA's per-diagonal arrays
	// span the full column width, ELL pads to the band's own max row
	// length). Compare the composite's total predicted cost against the
	// best single whole-matrix format and keep whichever is cheaper —
	// uniform structure then gets the undivided layout it wants, while
	// genuinely mixed structure keeps its per-band formats.
	if len(picks) > 0 {
		if f, cost := selectFormatCost(ProfileRows(a, 0, rows)); cost < bandedCost {
			picks = []bandPick{{r0: 0, r1: rows, f: f}}
		}
	}

	au := &Auto{rows: rows, cols: cols}
	for _, p := range picks {
		r0, r1, f := p.r0, p.r1, p.f
		mat := Convert(bandCSR(a, r0, r1), f)
		klen := mat.Kernel().Size()
		au.tiles = append(au.tiles, autoTile{
			r0: r0, r1: r1, koff: au.knnz, klen: klen, mat: mat, format: f,
		})
		au.knnz += klen
		au.nnz += mat.NNZ()
	}
	if len(au.tiles) == 0 {
		// Zero-row matrix: keep one empty CSR tile so the relations and
		// kernels are well defined.
		mat := bandCSR(a, 0, rows)
		au.tiles = append(au.tiles, autoTile{mat: mat, format: "CSR"})
	}
	return au
}

// AutoSelect tunes a with nbands equal row bands (clamped to the row
// count). nbands should match the piece count the planner partitions
// the operator's range into, so each piece gets the format its local
// structure wants; AddOperatorAuto derives that automatically.
func AutoSelect(a *CSR, nbands int) *Auto {
	if nbands < 1 {
		nbands = 1
	}
	if int64(nbands) > a.rows && a.rows > 0 {
		nbands = int(a.rows)
	}
	starts := make([]int64, 0, nbands)
	for b := 0; b < nbands; b++ {
		starts = append(starts, a.rows*int64(b)/int64(nbands))
	}
	return AutoSelectBands(a, starts)
}

// bandCSR extracts rows [r0, r1) of a as a standalone CSR matrix over
// the same column space. The column-index and value arrays are shared
// sub-slices (no copy); only the band's row pointers are rebased.
func bandCSR(a *CSR, r0, r1 int64) *CSR {
	lo, hi := a.rowptr[r0], a.rowptr[r1]
	rp := make([]int64, r1-r0+1)
	for i := range rp {
		rp[i] = a.rowptr[r0+int64(i)] - lo
	}
	return NewCSR(r1-r0, a.cols, rp, a.colIdx[lo:hi:hi], a.vals[lo:hi:hi])
}

// SelectedFormats reports the chosen format of every band, in band
// order, as "format[r0:r1)" strings — what mmsolve -format auto prints.
func (a *Auto) SelectedFormats() []string {
	out := make([]string, len(a.tiles))
	for i, t := range a.tiles {
		out[i] = fmt.Sprintf("%s[%d:%d)", t.format, t.r0, t.r1)
	}
	return out
}

// String summarizes the tiling.
func (a *Auto) String() string {
	return "Auto(" + strings.Join(a.SelectedFormats(), " ") + ")"
}

// Domain implements Matrix.
func (a *Auto) Domain() index.Space { return index.NewSpace("D", a.cols) }

// Range implements Matrix.
func (a *Auto) Range() index.Space { return index.NewSpace("R", a.rows) }

// Kernel implements Matrix.
func (a *Auto) Kernel() index.Space { return index.NewSpace("K", a.knnz) }

// NNZ implements Matrix.
func (a *Auto) NNZ() int64 { return a.nnz }

// Format implements Matrix.
func (a *Auto) Format() string { return "Auto" }

// buildRelations materializes the global row and column relations by
// querying each tile's own relations point by point and shifting rows
// into the global space. Padding kernel points whose tile-local image is
// empty (DIA and ELL fill) are clipped to the band's first row — their
// stored value is zero, so the extra conservative dependence is the only
// effect, and the planner's image intersection clips it out of the write
// set anyway.
func (a *Auto) buildRelations() {
	a.relOnce.Do(func() {
		rowArr := make([]int64, a.knnz)
		colArr := make([]int64, a.knnz)
		for _, t := range a.tiles {
			rr, cr := t.mat.RowRelation(), t.mat.ColRelation()
			for k := int64(0); k < t.klen; k++ {
				pt := index.Span(k, k)
				if img := rr.Image(pt); !img.Empty() {
					rowArr[t.koff+k] = t.r0 + img.Bounds().Lo
				} else {
					rowArr[t.koff+k] = t.r0
				}
				if img := cr.Image(pt); !img.Empty() {
					colArr[t.koff+k] = img.Bounds().Lo
				}
			}
		}
		a.rowRel = dpart.NewFnRelation("K", rowArr, index.NewSpace("R", a.rows))
		a.colRel = dpart.NewFnRelation("K", colArr, index.NewSpace("D", a.cols))
	})
}

// RowRelation implements Matrix.
func (a *Auto) RowRelation() dpart.Relation {
	a.buildRelations()
	return a.rowRel
}

// ColRelation implements Matrix.
func (a *Auto) ColRelation() dpart.Relation {
	a.buildRelations()
	return a.colRel
}

// MultiplyAdd implements Matrix.
func (a *Auto) MultiplyAdd(y, x []float64) {
	CheckShapes(a, y, x)
	for _, t := range a.tiles {
		t.mat.MultiplyAdd(y[t.r0:t.r1], x)
	}
}

// MultiplyAddT implements Matrix.
func (a *Auto) MultiplyAddT(y, x []float64) {
	checkShapesT(a, y, x)
	for _, t := range a.tiles {
		t.mat.MultiplyAddT(y, x[t.r0:t.r1])
	}
}

// localKset clips a global kernel set to one tile and rebases it into
// the tile's kernel space.
func (t *autoTile) localKset(kset index.IntervalSet) index.IntervalSet {
	lo, hi := t.koff, t.koff+t.klen-1
	var out index.IntervalSet
	kset.EachInterval(func(iv index.Interval) {
		if iv.Hi < lo || iv.Lo > hi {
			return
		}
		l, h := iv.Lo, iv.Hi
		if l < lo {
			l = lo
		}
		if h > hi {
			h = hi
		}
		out.AddInterval(index.Interval{Lo: l - t.koff, Hi: h - t.koff})
	})
	return out
}

// MultiplyAddPart implements Matrix.
func (a *Auto) MultiplyAddPart(y, x []float64, kset index.IntervalSet) {
	CheckShapes(a, y, x)
	for i := range a.tiles {
		t := &a.tiles[i]
		if local := t.localKset(kset); !local.Empty() {
			t.mat.MultiplyAddPart(y[t.r0:t.r1], x, local)
		}
	}
}

// MultiplyAddTPart implements Matrix.
func (a *Auto) MultiplyAddTPart(y, x []float64, kset index.IntervalSet) {
	checkShapesT(a, y, x)
	for i := range a.tiles {
		t := &a.tiles[i]
		if local := t.localKset(kset); !local.Empty() {
			t.mat.MultiplyAddTPart(y, x[t.r0:t.r1], local)
		}
	}
}
