package sparse

import (
	"fmt"

	"kdrsolvers/internal/index"
)

// StencilKind selects one of the four Laplacian stencil families used in
// the paper's evaluation (Section 6.1). The numeric values match the -dim
// codes of the BenchmarkStencil program in the artifact description.
type StencilKind int

const (
	// Stencil1D3 is the 3-point stencil for the 1D Laplacian.
	Stencil1D3 StencilKind = 1
	// Stencil2D5 is the 5-point stencil for the 2D Laplacian.
	Stencil2D5 StencilKind = 2
	// Stencil3D7 is the 7-point stencil for the 3D Laplacian.
	Stencil3D7 StencilKind = 3
	// Stencil3D27 is the 27-point stencil for the 3D Laplacian.
	Stencil3D27 StencilKind = 4
)

// String returns the paper's name for the stencil.
func (s StencilKind) String() string {
	switch s {
	case Stencil1D3:
		return "3pt-1D"
	case Stencil2D5:
		return "5pt-2D"
	case Stencil3D7:
		return "7pt-3D"
	case Stencil3D27:
		return "27pt-3D"
	}
	return fmt.Sprintf("StencilKind(%d)", int(s))
}

// PointsPerRow returns the maximum nonzeros per matrix row.
func (s StencilKind) PointsPerRow() int64 {
	switch s {
	case Stencil1D3:
		return 3
	case Stencil2D5:
		return 5
	case Stencil3D7:
		return 7
	case Stencil3D27:
		return 27
	}
	panic("sparse: unknown stencil kind")
}

// Rank returns the spatial dimension of the stencil.
func (s StencilKind) Rank() int {
	if s == Stencil1D3 {
		return 1
	}
	if s == Stencil2D5 {
		return 2
	}
	return 3
}

// GridFor builds a grid of roughly n unknowns with the stencil's rank,
// splitting the extent as evenly as possible across dimensions (each
// extent a power of two when n is).
func (s StencilKind) GridFor(n int64) index.Grid {
	switch s.Rank() {
	case 1:
		return index.NewGrid(n)
	case 2:
		nx := int64(1)
		for nx*nx < n {
			nx *= 2
		}
		return index.NewGrid(nx, n/nx)
	default:
		nx := int64(1)
		for nx*nx*nx < n {
			nx *= 2
		}
		ny := int64(1)
		for nx*ny*ny < n {
			ny *= 2
		}
		return index.NewGrid(nx, ny, n/(nx*ny))
	}
}

// Laplacian1D builds the 3-point finite-difference Laplacian on a 1D grid
// of nx points with Dirichlet boundaries, in CSR form. The diagonal is 2
// and off-diagonals are -1, making the matrix symmetric positive definite.
func Laplacian1D(nx int64) *CSR {
	rowptr := make([]int64, nx+1)
	colIdx := make([]int64, 0, 3*nx)
	vals := make([]float64, 0, 3*nx)
	for i := int64(0); i < nx; i++ {
		rowptr[i] = int64(len(vals))
		if i > 0 {
			colIdx = append(colIdx, i-1)
			vals = append(vals, -1)
		}
		colIdx = append(colIdx, i)
		vals = append(vals, 2)
		if i < nx-1 {
			colIdx = append(colIdx, i+1)
			vals = append(vals, -1)
		}
	}
	rowptr[nx] = int64(len(vals))
	return NewCSR(nx, nx, rowptr, colIdx, vals)
}

// Laplacian2D builds the 5-point Laplacian on an nx × ny grid with
// Dirichlet boundaries, in CSR form (diagonal 4, neighbors -1).
func Laplacian2D(nx, ny int64) *CSR {
	g := index.NewGrid(nx, ny)
	n := g.Size()
	rowptr := make([]int64, n+1)
	colIdx := make([]int64, 0, 5*n)
	vals := make([]float64, 0, 5*n)
	add := func(c int64, v float64) {
		colIdx = append(colIdx, c)
		vals = append(vals, v)
	}
	for i := int64(0); i < nx; i++ {
		for j := int64(0); j < ny; j++ {
			row := g.Linearize(i, j)
			rowptr[row] = int64(len(vals))
			if i > 0 {
				add(g.Linearize(i-1, j), -1)
			}
			if j > 0 {
				add(g.Linearize(i, j-1), -1)
			}
			add(row, 4)
			if j < ny-1 {
				add(g.Linearize(i, j+1), -1)
			}
			if i < nx-1 {
				add(g.Linearize(i+1, j), -1)
			}
		}
	}
	rowptr[n] = int64(len(vals))
	return NewCSR(n, n, rowptr, colIdx, vals)
}

// Laplacian3D builds the 7-point Laplacian on an nx × ny × nz grid with
// Dirichlet boundaries, in CSR form (diagonal 6, neighbors -1).
func Laplacian3D(nx, ny, nz int64) *CSR {
	g := index.NewGrid(nx, ny, nz)
	n := g.Size()
	rowptr := make([]int64, n+1)
	colIdx := make([]int64, 0, 7*n)
	vals := make([]float64, 0, 7*n)
	add := func(c int64, v float64) {
		colIdx = append(colIdx, c)
		vals = append(vals, v)
	}
	for i := int64(0); i < nx; i++ {
		for j := int64(0); j < ny; j++ {
			for k := int64(0); k < nz; k++ {
				row := g.Linearize(i, j, k)
				rowptr[row] = int64(len(vals))
				if i > 0 {
					add(g.Linearize(i-1, j, k), -1)
				}
				if j > 0 {
					add(g.Linearize(i, j-1, k), -1)
				}
				if k > 0 {
					add(g.Linearize(i, j, k-1), -1)
				}
				add(row, 6)
				if k < nz-1 {
					add(g.Linearize(i, j, k+1), -1)
				}
				if j < ny-1 {
					add(g.Linearize(i, j+1, k), -1)
				}
				if i < nx-1 {
					add(g.Linearize(i+1, j, k), -1)
				}
			}
		}
	}
	rowptr[n] = int64(len(vals))
	return NewCSR(n, n, rowptr, colIdx, vals)
}

// Laplacian3D27 builds the 27-point Laplacian on an nx × ny × nz grid with
// Dirichlet boundaries, in CSR form (diagonal 26, all neighbors in the
// 3 × 3 × 3 cube -1). The matrix is symmetric and diagonally dominant,
// hence positive semidefinite; interior Dirichlet truncation makes it
// positive definite.
func Laplacian3D27(nx, ny, nz int64) *CSR {
	g := index.NewGrid(nx, ny, nz)
	n := g.Size()
	rowptr := make([]int64, n+1)
	colIdx := make([]int64, 0, 27*n)
	vals := make([]float64, 0, 27*n)
	for i := int64(0); i < nx; i++ {
		for j := int64(0); j < ny; j++ {
			for k := int64(0); k < nz; k++ {
				row := g.Linearize(i, j, k)
				rowptr[row] = int64(len(vals))
				for di := int64(-1); di <= 1; di++ {
					for dj := int64(-1); dj <= 1; dj++ {
						for dk := int64(-1); dk <= 1; dk++ {
							ii, jj, kk := i+di, j+dj, k+dk
							if !g.Contains(ii, jj, kk) {
								continue
							}
							if di == 0 && dj == 0 && dk == 0 {
								colIdx = append(colIdx, row)
								vals = append(vals, 26)
							} else {
								colIdx = append(colIdx, g.Linearize(ii, jj, kk))
								vals = append(vals, -1)
							}
						}
					}
				}
			}
		}
	}
	rowptr[n] = int64(len(vals))
	return NewCSR(n, n, rowptr, colIdx, vals)
}

// Stencil builds the requested stencil matrix on a grid, dispatching on
// kind and the grid's rank. The grid rank must match the stencil.
func Stencil(kind StencilKind, g index.Grid) *CSR {
	switch kind {
	case Stencil1D3:
		return Laplacian1D(g.Dims[0])
	case Stencil2D5:
		return Laplacian2D(g.Dims[0], g.Dims[1])
	case Stencil3D7:
		return Laplacian3D(g.Dims[0], g.Dims[1], g.Dims[2])
	case Stencil3D27:
		return Laplacian3D27(g.Dims[0], g.Dims[1], g.Dims[2])
	}
	panic("sparse: unknown stencil kind")
}
