package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
)

// randomCoords generates a random sparse matrix as coordinates with no
// duplicate positions.
func randomCoords(r *rand.Rand, rows, cols int64) []Coord {
	n := r.Intn(int(rows*cols)/2 + 1)
	seen := make(map[[2]int64]bool)
	var out []Coord
	for i := 0; i < n; i++ {
		pos := [2]int64{r.Int63n(rows), r.Int63n(cols)}
		if seen[pos] {
			continue
		}
		seen[pos] = true
		out = append(out, Coord{Row: pos[0], Col: pos[1], Val: r.NormFloat64()})
	}
	return out
}

// denseFromCoords builds the reference dense array.
func denseFromCoords(rows, cols int64, coords []Coord) []float64 {
	out := make([]float64, rows*cols)
	for _, c := range coords {
		out[c.Row*cols+c.Col] += c.Val
	}
	return out
}

func densesEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// buildAll constructs the same matrix in every storage format.
func buildAll(rows, cols int64, coords []Coord) []Matrix {
	csr := CSRFromCoords(rows, cols, coords)
	ms := []Matrix{
		csr,
		COOFromCoords(rows, cols, coords),
		CSCFromCoords(rows, cols, coords),
		ELLFromCSR(csr),
		ELLPrimeFromCSC(CSCFromCSR(csr)),
		DIAFromCSR(csr),
		DenseFromMatrix(csr),
	}
	if rows%2 == 0 && cols%2 == 0 {
		ms = append(ms, BCSRFromCSR(csr, 2, 2), BCSCFromCSR(csr, 2, 2))
	}
	return ms
}

func TestQuickFormatEquivalence(t *testing.T) {
	// Property (Figure 3): every storage format defines the same linear
	// transformation, for both A·x and Aᵀ·x.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 2 * (r.Int63n(6) + 1)
		cols := 2 * (r.Int63n(6) + 1)
		coords := randomCoords(r, rows, cols)
		want := denseFromCoords(rows, cols, coords)
		x := make([]float64, cols)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		xt := make([]float64, rows)
		for i := range xt {
			xt[i] = r.NormFloat64()
		}
		// Reference products.
		wy := make([]float64, rows)
		wyt := make([]float64, cols)
		for i := int64(0); i < rows; i++ {
			for j := int64(0); j < cols; j++ {
				wy[i] += want[i*cols+j] * x[j]
				wyt[j] += want[i*cols+j] * xt[i]
			}
		}
		for _, m := range buildAll(rows, cols, coords) {
			if !densesEqual(ToDense(m), want, 1e-12) {
				t.Logf("%s dense mismatch (seed %d)", m.Format(), seed)
				return false
			}
			y := make([]float64, rows)
			m.MultiplyAdd(y, x)
			if !densesEqual(y, wy, 1e-12) {
				t.Logf("%s MultiplyAdd mismatch (seed %d)", m.Format(), seed)
				return false
			}
			yt := make([]float64, cols)
			m.MultiplyAddT(yt, xt)
			if !densesEqual(yt, wyt, 1e-12) {
				t.Logf("%s MultiplyAddT mismatch (seed %d)", m.Format(), seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPartitionedMultiplyAdd(t *testing.T) {
	// Property (Section 3.1): splitting the kernel space into any
	// partition and summing the per-piece restricted multiply-adds equals
	// the whole product, for every format.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 2 * (r.Int63n(5) + 1)
		cols := 2 * (r.Int63n(5) + 1)
		coords := randomCoords(r, rows, cols)
		x := make([]float64, cols)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for _, m := range buildAll(rows, cols, coords) {
			if m.Kernel().Size() == 0 {
				continue
			}
			want := make([]float64, rows)
			m.MultiplyAdd(want, x)
			pieces := r.Intn(4) + 1
			kp := index.EqualPartition(m.Kernel(), pieces)
			got := make([]float64, rows)
			for c := 0; c < pieces; c++ {
				m.MultiplyAddPart(got, x, kp.Piece(c))
			}
			if !densesEqual(got, want, 1e-12) {
				t.Logf("%s partitioned MultiplyAdd mismatch (seed %d, %d pieces)",
					m.Format(), seed, pieces)
				return false
			}
			// Adjoint form.
			xt := make([]float64, rows)
			for i := range xt {
				xt[i] = r.NormFloat64()
			}
			wantT := make([]float64, cols)
			m.MultiplyAddT(wantT, xt)
			gotT := make([]float64, cols)
			for c := 0; c < pieces; c++ {
				m.MultiplyAddTPart(gotT, xt, kp.Piece(c))
			}
			if !densesEqual(gotT, wantT, 1e-12) {
				t.Logf("%s partitioned MultiplyAddT mismatch (seed %d)", m.Format(), seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRelationsMatchEntries(t *testing.T) {
	// Property: for every format, the row/col relations agree with where
	// MultiplyAdd actually reads and writes — Image of the full kernel
	// covers exactly the rows/cols with stored entries (padding formats
	// may cover more rows/cols, but never fewer).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 2 * (r.Int63n(5) + 1)
		cols := 2 * (r.Int63n(5) + 1)
		coords := randomCoords(r, rows, cols)
		if len(coords) == 0 {
			return true
		}
		var wantRows, wantCols []int64
		for _, c := range coords {
			wantRows = append(wantRows, c.Row)
			wantCols = append(wantCols, c.Col)
		}
		rset := index.FromPoints(wantRows)
		cset := index.FromPoints(wantCols)
		for _, m := range buildAll(rows, cols, coords) {
			full := m.Kernel().Set
			if !m.RowRelation().Image(full).ContainsSet(rset) {
				t.Logf("%s row relation misses rows (seed %d)", m.Format(), seed)
				return false
			}
			if !m.ColRelation().Image(full).ContainsSet(cset) {
				t.Logf("%s col relation misses cols (seed %d)", m.Format(), seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCoPartitioningSoundness(t *testing.T) {
	// The paper's central soundness claim: given a disjoint partition P of
	// R, each piece y_c of y = Ax is computable from only the kernel piece
	// row[R→K][P](c) and the domain piece col[K→D][row[R→K][P]](c).
	// We verify by masking: zero out x outside the derived domain piece,
	// run the restricted multiply-add, and compare y on P(c).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 2 * (r.Int63n(5) + 1)
		cols := 2 * (r.Int63n(5) + 1)
		coords := randomCoords(r, rows, cols)
		x := make([]float64, cols)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for _, m := range buildAll(rows, cols, coords) {
			want := make([]float64, rows)
			m.MultiplyAdd(want, x)
			pieces := r.Intn(3) + 1
			rp := index.EqualPartition(m.Range(), pieces)
			kp := dpart.RowRToK(m.RowRelation(), rp)
			dp := dpart.ColKToD(m.ColRelation(), kp)
			for c := 0; c < pieces; c++ {
				masked := make([]float64, cols)
				dp.Piece(c).Each(func(j int64) {
					if j >= 0 && j < cols {
						masked[j] = x[j]
					}
				})
				got := make([]float64, rows)
				m.MultiplyAddPart(got, masked, kp.Piece(c))
				ok := true
				rp.Piece(c).Each(func(i int64) {
					if math.Abs(got[i]-want[i]) > 1e-12 {
						ok = false
					}
				})
				if !ok {
					t.Logf("%s co-partitioning unsound (seed %d, color %d)", m.Format(), seed, c)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestShapePanics(t *testing.T) {
	a := Laplacian1D(4)
	for _, fn := range []func(){
		func() { a.MultiplyAdd(make([]float64, 3), make([]float64, 4)) },
		func() { a.MultiplyAddT(make([]float64, 4), make([]float64, 5)) },
		func() { SpMV(a, make([]float64, 5), make([]float64, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected shape panic")
				}
			}()
			fn()
		}()
	}
}
