package sparse

import (
	"math/rand"
	"testing"

	"kdrsolvers/internal/index"
)

// stencilCases pairs each matrix-free operator with its assembled CSR
// reference.
func stencilCases() []struct {
	op  *StencilOperator
	ref *CSR
} {
	return []struct {
		op  *StencilOperator
		ref *CSR
	}{
		{NewStencilOperator(Stencil1D3, index.NewGrid(17)), Laplacian1D(17)},
		{NewStencilOperator(Stencil2D5, index.NewGrid(5, 7)), Laplacian2D(5, 7)},
		{NewStencilOperator(Stencil3D7, index.NewGrid(3, 4, 2)), Laplacian3D(3, 4, 2)},
		{NewStencilOperator(Stencil3D27, index.NewGrid(3, 2, 3)), Laplacian3D27(3, 2, 3)},
	}
}

func TestStencilOperatorMatchesAssembled(t *testing.T) {
	for _, c := range stencilCases() {
		if !densesEqual(ToDense(c.op), ToDense(c.ref), 1e-13) {
			t.Errorf("%s does not match assembled CSR", c.op.Format())
		}
	}
}

func TestStencilOperatorAdjoint(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, c := range stencilCases() {
		n := c.op.n
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		want := make([]float64, n)
		c.ref.MultiplyAddT(want, x)
		got := make([]float64, n)
		c.op.MultiplyAddT(got, x)
		if !densesEqual(got, want, 1e-12) {
			t.Errorf("%s adjoint mismatch", c.op.Format())
		}
	}
}

func TestStencilOperatorPartitioned(t *testing.T) {
	// Restricted multiply-adds over any complete disjoint kernel
	// partition must sum to the full product, forward and adjoint.
	r := rand.New(rand.NewSource(5))
	for _, c := range stencilCases() {
		n := c.op.n
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		want := make([]float64, n)
		c.op.MultiplyAdd(want, x)
		kp := index.EqualPartition(c.op.Kernel(), 5)
		got := make([]float64, n)
		for p := 0; p < 5; p++ {
			c.op.MultiplyAddPart(got, x, kp.Piece(p))
		}
		if !densesEqual(got, want, 1e-12) {
			t.Errorf("%s partitioned forward mismatch", c.op.Format())
		}
		wantT := make([]float64, n)
		c.op.MultiplyAddT(wantT, x)
		gotT := make([]float64, n)
		for p := 0; p < 5; p++ {
			c.op.MultiplyAddTPart(gotT, x, kp.Piece(p))
		}
		if !densesEqual(gotT, wantT, 1e-12) {
			t.Errorf("%s partitioned adjoint mismatch", c.op.Format())
		}
	}
}

func TestStencilOperatorRelationsSound(t *testing.T) {
	// The implicit relations must cover the true dependences: masking x
	// outside the derived input partition must not change the piece.
	for _, c := range stencilCases() {
		n := c.op.n
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i%13) + 1
		}
		want := make([]float64, n)
		c.op.MultiplyAdd(want, x)
		rp := index.EqualPartition(c.op.Range(), 3)
		for p := 0; p < 3; p++ {
			kset := c.op.RowRelation().Preimage(rp.Piece(p))
			dset := c.op.ColRelation().Image(kset)
			masked := make([]float64, n)
			dset.Each(func(j int64) {
				if j >= 0 && j < n {
					masked[j] = x[j]
				}
			})
			got := make([]float64, n)
			c.op.MultiplyAddPart(got, masked, kset)
			ok := true
			rp.Piece(p).Each(func(i int64) {
				if got[i] != want[i] {
					ok = false
				}
			})
			if !ok {
				t.Errorf("%s co-partitioning unsound for piece %d", c.op.Format(), p)
			}
		}
	}
}

func TestStencilOperatorMetadata(t *testing.T) {
	op := NewStencilOperator(Stencil2D5, index.NewGrid(8, 8))
	if op.NNZ() != 5*64 {
		t.Errorf("NNZ = %d", op.NNZ())
	}
	if op.Domain().Size() != 64 || op.Range().Size() != 64 || op.Kernel().Size() != 320 {
		t.Error("space sizes wrong")
	}
	if op.Format() != "Stencil(5pt-2D)" {
		t.Errorf("Format = %q", op.Format())
	}
	if op.Grid().Size() != 64 {
		t.Error("Grid wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("rank mismatch should panic")
		}
	}()
	NewStencilOperator(Stencil1D3, index.NewGrid(4, 4))
}

func TestStencilOperatorScale(t *testing.T) {
	// The whole point of the matrix-free form: metadata and relations at
	// huge scale without allocating entries.
	op := NewStencilOperator(Stencil2D5, index.NewGrid(1<<16, 1<<16))
	if op.NNZ() != 5<<32 {
		t.Fatalf("NNZ = %d", op.NNZ())
	}
	rp := index.EqualPartition(op.Range(), 64)
	kset := op.RowRelation().Preimage(rp.Piece(7))
	if kset.Empty() {
		t.Fatal("projection at scale failed")
	}
	dset := op.ColRelation().Image(kset)
	// The halo of a row block is the block plus one grid row on each side.
	want := rp.Piece(7).Size() + 2<<16
	if got := dset.Size(); got != want {
		t.Fatalf("halo size = %d, want %d", got, want)
	}
}
