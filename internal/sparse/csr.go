package sparse

import (
	"sort"

	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
)

// CSR stores a matrix in compressed sparse row form: the kernel space is
// totally ordered by row, rowptr: R → [K, K] gives each row's contiguous
// kernel interval (a SegmentRelation), and col: K → D is explicit.
type CSR struct {
	rows, cols int64
	rowptr     []int64
	colIdx     []int64
	vals       []float64

	rowRel *dpart.SegmentRelation
	colRel *dpart.FnRelation
}

// NewCSR wraps the given arrays (retained, not copied) as a rows × cols
// matrix. len(rowptr) must be rows+1 with rowptr[rows] == len(vals);
// column indices within each row need not be sorted.
func NewCSR(rows, cols int64, rowptr, colIdx []int64, vals []float64) *CSR {
	if int64(len(rowptr)) != rows+1 {
		panic("sparse: CSR rowptr must have rows+1 entries")
	}
	if len(colIdx) != len(vals) || rowptr[rows] != int64(len(vals)) {
		panic("sparse: CSR arrays inconsistent")
	}
	return &CSR{
		rows: rows, cols: cols,
		rowptr: rowptr, colIdx: colIdx, vals: vals,
		rowRel: dpart.NewSegmentRelation("K", rowptr, "R"),
		colRel: dpart.NewFnRelation("K", colIdx, index.NewSpace("D", cols)),
	}
}

// CSRFromCoords assembles a CSR matrix from explicit coordinates,
// sorting by (row, col) and summing duplicates.
func CSRFromCoords(rows, cols int64, coords []Coord) *CSR {
	cs := make([]Coord, len(coords))
	copy(cs, coords)
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Row != cs[j].Row {
			return cs[i].Row < cs[j].Row
		}
		return cs[i].Col < cs[j].Col
	})
	rowptr := make([]int64, rows+1)
	colIdx := make([]int64, 0, len(cs))
	vals := make([]float64, 0, len(cs))
	for idx := 0; idx < len(cs); {
		r, c, v := cs[idx].Row, cs[idx].Col, cs[idx].Val
		for idx++; idx < len(cs) && cs[idx].Row == r && cs[idx].Col == c; idx++ {
			v += cs[idx].Val
		}
		colIdx = append(colIdx, c)
		vals = append(vals, v)
		rowptr[r+1]++
	}
	for i := int64(0); i < rows; i++ {
		rowptr[i+1] += rowptr[i]
	}
	return NewCSR(rows, cols, rowptr, colIdx, vals)
}

// Domain implements Matrix.
func (a *CSR) Domain() index.Space { return a.colRel.Right() }

// Range implements Matrix.
func (a *CSR) Range() index.Space { return a.rowRel.Right() }

// Kernel implements Matrix.
func (a *CSR) Kernel() index.Space { return index.NewSpace("K", int64(len(a.vals))) }

// RowRelation implements Matrix.
func (a *CSR) RowRelation() dpart.Relation { return a.rowRel }

// ColRelation implements Matrix.
func (a *CSR) ColRelation() dpart.Relation { return a.colRel }

// NNZ implements Matrix.
func (a *CSR) NNZ() int64 { return int64(len(a.vals)) }

// Format implements Matrix.
func (a *CSR) Format() string { return "CSR" }

// RowPtr returns the row pointer array (not to be modified).
func (a *CSR) RowPtr() []int64 { return a.rowptr }

// ColIdx returns the column index array (not to be modified).
func (a *CSR) ColIdx() []int64 { return a.colIdx }

// Vals returns the value array (not to be modified).
func (a *CSR) Vals() []float64 { return a.vals }

// MultiplyAdd implements Matrix.
func (a *CSR) MultiplyAdd(y, x []float64) {
	CheckShapes(a, y, x)
	for i := int64(0); i < a.rows; i++ {
		var sum float64
		for k := a.rowptr[i]; k < a.rowptr[i+1]; k++ {
			sum += a.vals[k] * x[a.colIdx[k]]
		}
		y[i] += sum
	}
}

// MultiplyAddT implements Matrix.
func (a *CSR) MultiplyAddT(y, x []float64) {
	checkShapesT(a, y, x)
	for i := int64(0); i < a.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := a.rowptr[i]; k < a.rowptr[i+1]; k++ {
			y[a.colIdx[k]] += a.vals[k] * xi
		}
	}
}

// rowOf returns the row owning kernel position k.
func (a *CSR) rowOf(k int64) int64 {
	// First row whose segment ends beyond k.
	return int64(sort.Search(int(a.rows), func(i int) bool { return a.rowptr[i+1] > k }))
}

// MultiplyAddPart implements Matrix. Within a kernel interval the row
// index advances monotonically, so one binary search per interval
// suffices.
func (a *CSR) MultiplyAddPart(y, x []float64, kset index.IntervalSet) {
	CheckShapes(a, y, x)
	kset.EachInterval(func(iv index.Interval) {
		i := a.rowOf(iv.Lo)
		for k := iv.Lo; k <= iv.Hi; {
			end := a.rowptr[i+1]
			if end > iv.Hi+1 {
				end = iv.Hi + 1
			}
			var sum float64
			for ; k < end; k++ {
				sum += a.vals[k] * x[a.colIdx[k]]
			}
			y[i] += sum
			i++
		}
	})
}

// MultiplyAddTPart implements Matrix.
func (a *CSR) MultiplyAddTPart(y, x []float64, kset index.IntervalSet) {
	checkShapesT(a, y, x)
	kset.EachInterval(func(iv index.Interval) {
		i := a.rowOf(iv.Lo)
		for k := iv.Lo; k <= iv.Hi; {
			end := a.rowptr[i+1]
			if end > iv.Hi+1 {
				end = iv.Hi + 1
			}
			xi := x[i]
			for ; k < end; k++ {
				y[a.colIdx[k]] += a.vals[k] * xi
			}
			i++
		}
	})
}
