package sparse

import (
	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
)

// COO stores a matrix as parallel coordinate arrays: entry k sits at
// (rowIdx[k], colIdx[k]) with value vals[k]. It has no structural
// assumptions; both relations are explicit function arrays.
type COO struct {
	rows, cols int64
	rowIdx     []int64
	colIdx     []int64
	vals       []float64

	rowRel, colRel *dpart.FnRelation
}

// NewCOO wraps the given coordinate arrays (retained, not copied) as a
// rows × cols matrix. The three slices must have equal length; indices
// must be in range.
func NewCOO(rows, cols int64, rowIdx, colIdx []int64, vals []float64) *COO {
	if len(rowIdx) != len(vals) || len(colIdx) != len(vals) {
		panic("sparse: COO arrays must have equal length")
	}
	return &COO{
		rows: rows, cols: cols,
		rowIdx: rowIdx, colIdx: colIdx, vals: vals,
		rowRel: dpart.NewFnRelation("K", rowIdx, index.NewSpace("R", rows)),
		colRel: dpart.NewFnRelation("K", colIdx, index.NewSpace("D", cols)),
	}
}

// COOFromCoords assembles a COO matrix from explicit coordinates.
func COOFromCoords(rows, cols int64, coords []Coord) *COO {
	ri := make([]int64, len(coords))
	ci := make([]int64, len(coords))
	vs := make([]float64, len(coords))
	for k, c := range coords {
		ri[k], ci[k], vs[k] = c.Row, c.Col, c.Val
	}
	return NewCOO(rows, cols, ri, ci, vs)
}

// Domain implements Matrix.
func (a *COO) Domain() index.Space { return a.colRel.Right() }

// Range implements Matrix.
func (a *COO) Range() index.Space { return a.rowRel.Right() }

// Kernel implements Matrix.
func (a *COO) Kernel() index.Space { return index.NewSpace("K", int64(len(a.vals))) }

// RowRelation implements Matrix.
func (a *COO) RowRelation() dpart.Relation { return a.rowRel }

// ColRelation implements Matrix.
func (a *COO) ColRelation() dpart.Relation { return a.colRel }

// NNZ implements Matrix.
func (a *COO) NNZ() int64 { return int64(len(a.vals)) }

// Format implements Matrix.
func (a *COO) Format() string { return "COO" }

// MultiplyAdd implements Matrix.
func (a *COO) MultiplyAdd(y, x []float64) {
	CheckShapes(a, y, x)
	for k, v := range a.vals {
		y[a.rowIdx[k]] += v * x[a.colIdx[k]]
	}
}

// MultiplyAddT implements Matrix.
func (a *COO) MultiplyAddT(y, x []float64) {
	checkShapesT(a, y, x)
	for k, v := range a.vals {
		y[a.colIdx[k]] += v * x[a.rowIdx[k]]
	}
}

// MultiplyAddPart implements Matrix.
func (a *COO) MultiplyAddPart(y, x []float64, kset index.IntervalSet) {
	CheckShapes(a, y, x)
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			y[a.rowIdx[k]] += a.vals[k] * x[a.colIdx[k]]
		}
	})
}

// MultiplyAddTPart implements Matrix.
func (a *COO) MultiplyAddTPart(y, x []float64, kset index.IntervalSet) {
	checkShapesT(a, y, x)
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			y[a.colIdx[k]] += a.vals[k] * x[a.rowIdx[k]]
		}
	})
}
