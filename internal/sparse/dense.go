package sparse

import (
	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
)

// Dense stores every entry of a rows × cols matrix in row-major order.
// In the KDR framing (Figure 3) its kernel space is the full product
// K = R × D and both relations are the implicit projections π1 (a
// DivRelation) and π2 (a ModRelation), so no relation metadata is stored.
type Dense struct {
	rows, cols int64
	vals       []float64 // row-major, len rows*cols

	rowRel *dpart.DivRelation
	colRel *dpart.ModRelation
}

// NewDense wraps row-major storage (retained, not copied) as a
// rows × cols matrix.
func NewDense(rows, cols int64, vals []float64) *Dense {
	if int64(len(vals)) != rows*cols {
		panic("sparse: Dense vals must have rows*cols entries")
	}
	return &Dense{
		rows: rows, cols: cols, vals: vals,
		rowRel: dpart.NewDivRelation("K", rows, cols, "R"),
		colRel: dpart.NewModRelation("K", rows, cols, "D"),
	}
}

// DenseFromMatrix materializes any matrix as Dense.
func DenseFromMatrix(a Matrix) *Dense {
	rows, cols := Dims(a)
	return NewDense(rows, cols, ToDense(a))
}

// Domain implements Matrix.
func (a *Dense) Domain() index.Space { return a.colRel.Right() }

// Range implements Matrix.
func (a *Dense) Range() index.Space { return a.rowRel.Right() }

// Kernel implements Matrix.
func (a *Dense) Kernel() index.Space { return index.NewSpace("K", a.rows*a.cols) }

// RowRelation implements Matrix.
func (a *Dense) RowRelation() dpart.Relation { return a.rowRel }

// ColRelation implements Matrix.
func (a *Dense) ColRelation() dpart.Relation { return a.colRel }

// NNZ implements Matrix.
func (a *Dense) NNZ() int64 { return a.rows * a.cols }

// Format implements Matrix.
func (a *Dense) Format() string { return "Dense" }

// At returns the entry at (i, j).
func (a *Dense) At(i, j int64) float64 { return a.vals[i*a.cols+j] }

// Set stores v at (i, j).
func (a *Dense) Set(i, j int64, v float64) { a.vals[i*a.cols+j] = v }

// MultiplyAdd implements Matrix.
func (a *Dense) MultiplyAdd(y, x []float64) {
	CheckShapes(a, y, x)
	for i := int64(0); i < a.rows; i++ {
		row := a.vals[i*a.cols : (i+1)*a.cols]
		var sum float64
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] += sum
	}
}

// MultiplyAddT implements Matrix.
func (a *Dense) MultiplyAddT(y, x []float64) {
	checkShapesT(a, y, x)
	for i := int64(0); i < a.rows; i++ {
		row := a.vals[i*a.cols : (i+1)*a.cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			y[j] += v * xi
		}
	}
}

// MultiplyAddPart implements Matrix.
func (a *Dense) MultiplyAddPart(y, x []float64, kset index.IntervalSet) {
	CheckShapes(a, y, x)
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			y[k/a.cols] += a.vals[k] * x[k%a.cols]
		}
	})
}

// MultiplyAddTPart implements Matrix.
func (a *Dense) MultiplyAddTPart(y, x []float64, kset index.IntervalSet) {
	checkShapesT(a, y, x)
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			y[k%a.cols] += a.vals[k] * x[k/a.cols]
		}
	})
}
