package sparse

import (
	"sort"
	"sync"

	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
)

// BCSR stores a matrix in block compressed sparse row form: the kernel
// space is K = K0 × BR × BD where K0 indexes dense br × bd blocks, the
// block-row pointer rowptr: R0 → [K0, K0] orders blocks by block row, and
// bcol: K0 → D0 stores block columns. rows and cols must be multiples of
// the block shape.
//
// The structural assumptions make the within-block coordinates implicit,
// which the kernels exploit; the point-level row/col relations required by
// the Matrix interface are materialized lazily on first use, which keeps
// the universal co-partitioning operators applicable to block formats.
type BCSR struct {
	rows, cols int64
	br, bd     int64   // block shape
	rowptr     []int64 // len rows/br + 1, in block units
	bcol       []int64 // block column of each block
	vals       []float64

	relOnce        sync.Once
	rowRel, colRel *dpart.FnRelation
}

// NewBCSR wraps block storage (retained, not copied) as a rows × cols
// matrix with br × bd blocks. vals holds the blocks row-major,
// back to back.
func NewBCSR(rows, cols, br, bd int64, rowptr, bcol []int64, vals []float64) *BCSR {
	if rows%br != 0 || cols%bd != 0 {
		panic("sparse: BCSR dimensions must be multiples of the block shape")
	}
	if int64(len(rowptr)) != rows/br+1 {
		panic("sparse: BCSR rowptr must have rows/br+1 entries")
	}
	if int64(len(vals)) != int64(len(bcol))*br*bd {
		panic("sparse: BCSR vals must have nblocks*br*bd entries")
	}
	return &BCSR{
		rows: rows, cols: cols, br: br, bd: bd,
		rowptr: rowptr, bcol: bcol, vals: vals,
	}
}

// BCSRFromCSR converts a CSR matrix to BCSR with the given block shape,
// materializing every block that contains at least one nonzero.
func BCSRFromCSR(a *CSR, br, bd int64) *BCSR {
	if a.rows%br != 0 || a.cols%bd != 0 {
		panic("sparse: BCSR block shape must divide the matrix dimensions")
	}
	nbr := a.rows / br
	// Collect the distinct block columns of each block row.
	blockCols := make([][]int64, nbr)
	for i := int64(0); i < a.rows; i++ {
		bi := i / br
		for k := a.rowptr[i]; k < a.rowptr[i+1]; k++ {
			blockCols[bi] = append(blockCols[bi], a.colIdx[k]/bd)
		}
	}
	rowptr := make([]int64, nbr+1)
	var bcol []int64
	for bi := int64(0); bi < nbr; bi++ {
		cs := blockCols[bi]
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		rowptr[bi] = int64(len(bcol))
		for i, c := range cs {
			if i == 0 || c != cs[i-1] {
				bcol = append(bcol, c)
			}
		}
	}
	rowptr[nbr] = int64(len(bcol))
	vals := make([]float64, int64(len(bcol))*br*bd)
	// Fill block values.
	for i := int64(0); i < a.rows; i++ {
		bi := i / br
		for k := a.rowptr[i]; k < a.rowptr[i+1]; k++ {
			j := a.colIdx[k]
			bj := j / bd
			// Find the block (bi, bj) by binary search over this row's blocks.
			lo, hi := rowptr[bi], rowptr[bi+1]
			b := lo + int64(sort.Search(int(hi-lo), func(t int) bool { return bcol[lo+int64(t)] >= bj }))
			vals[b*br*bd+(i%br)*bd+(j%bd)] += a.vals[k]
		}
	}
	return NewBCSR(a.rows, a.cols, br, bd, rowptr, bcol, vals)
}

// Domain implements Matrix.
func (a *BCSR) Domain() index.Space { return index.NewSpace("D", a.cols) }

// Range implements Matrix.
func (a *BCSR) Range() index.Space { return index.NewSpace("R", a.rows) }

// Kernel implements Matrix.
func (a *BCSR) Kernel() index.Space { return index.NewSpace("K", int64(len(a.vals))) }

// buildRelations materializes the point-level row and column relations
// from the block structure.
func (a *BCSR) buildRelations() {
	a.relOnce.Do(func() {
		n := int64(len(a.vals))
		rowIdx := make([]int64, n)
		colIdx := make([]int64, n)
		bsz := a.br * a.bd
		nbr := a.rows / a.br
		for bi := int64(0); bi < nbr; bi++ {
			for b := a.rowptr[bi]; b < a.rowptr[bi+1]; b++ {
				for r := int64(0); r < a.br; r++ {
					for c := int64(0); c < a.bd; c++ {
						k := b*bsz + r*a.bd + c
						rowIdx[k] = bi*a.br + r
						colIdx[k] = a.bcol[b]*a.bd + c
					}
				}
			}
		}
		a.rowRel = dpart.NewFnRelation("K", rowIdx, index.NewSpace("R", a.rows))
		a.colRel = dpart.NewFnRelation("K", colIdx, index.NewSpace("D", a.cols))
	})
}

// RowRelation implements Matrix.
func (a *BCSR) RowRelation() dpart.Relation {
	a.buildRelations()
	return a.rowRel
}

// ColRelation implements Matrix.
func (a *BCSR) ColRelation() dpart.Relation {
	a.buildRelations()
	return a.colRel
}

// NNZ implements Matrix.
func (a *BCSR) NNZ() int64 { return int64(len(a.vals)) }

// Format implements Matrix.
func (a *BCSR) Format() string { return "BCSR" }

// BlockShape returns the (br, bd) block dimensions.
func (a *BCSR) BlockShape() (int64, int64) { return a.br, a.bd }

// MultiplyAdd implements Matrix.
func (a *BCSR) MultiplyAdd(y, x []float64) {
	CheckShapes(a, y, x)
	bsz := a.br * a.bd
	nbr := a.rows / a.br
	for bi := int64(0); bi < nbr; bi++ {
		for b := a.rowptr[bi]; b < a.rowptr[bi+1]; b++ {
			xo := a.bcol[b] * a.bd
			for r := int64(0); r < a.br; r++ {
				base := b*bsz + r*a.bd
				var sum float64
				for c := int64(0); c < a.bd; c++ {
					sum += a.vals[base+c] * x[xo+c]
				}
				y[bi*a.br+r] += sum
			}
		}
	}
}

// MultiplyAddT implements Matrix.
func (a *BCSR) MultiplyAddT(y, x []float64) {
	checkShapesT(a, y, x)
	bsz := a.br * a.bd
	nbr := a.rows / a.br
	for bi := int64(0); bi < nbr; bi++ {
		for b := a.rowptr[bi]; b < a.rowptr[bi+1]; b++ {
			yo := a.bcol[b] * a.bd
			for r := int64(0); r < a.br; r++ {
				base := b*bsz + r*a.bd
				xi := x[bi*a.br+r]
				if xi == 0 {
					continue
				}
				for c := int64(0); c < a.bd; c++ {
					y[yo+c] += a.vals[base+c] * xi
				}
			}
		}
	}
}

// blockRowOf returns the block row owning block b.
func (a *BCSR) blockRowOf(b int64) int64 {
	nbr := a.rows / a.br
	return int64(sort.Search(int(nbr), func(i int) bool { return a.rowptr[i+1] > b }))
}

// MultiplyAddPart implements Matrix.
func (a *BCSR) MultiplyAddPart(y, x []float64, kset index.IntervalSet) {
	CheckShapes(a, y, x)
	bsz := a.br * a.bd
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			b := k / bsz
			within := k % bsz
			i := a.blockRowOf(b)*a.br + within/a.bd
			j := a.bcol[b]*a.bd + within%a.bd
			y[i] += a.vals[k] * x[j]
		}
	})
}

// MultiplyAddTPart implements Matrix.
func (a *BCSR) MultiplyAddTPart(y, x []float64, kset index.IntervalSet) {
	checkShapesT(a, y, x)
	bsz := a.br * a.bd
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			b := k / bsz
			within := k % bsz
			i := a.blockRowOf(b)*a.br + within/a.bd
			j := a.bcol[b]*a.bd + within%a.bd
			y[j] += a.vals[k] * x[i]
		}
	})
}
