package sparse

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestConvertNamedUnknownFormat is the regression for the -format crash:
// an unrecognized name must come back as a named error listing every
// valid spelling, not a panic, and the error must wrap ErrUnknownFormat.
func TestConvertNamedUnknownFormat(t *testing.T) {
	a := Laplacian2D(4, 4)
	m, err := ConvertNamed(a, "hypercube")
	if m != nil || err == nil {
		t.Fatalf("ConvertNamed = (%v, %v), want (nil, error)", m, err)
	}
	if !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("error %v does not wrap ErrUnknownFormat", err)
	}
	for _, f := range Formats {
		if !strings.Contains(err.Error(), f) {
			t.Errorf("error %q does not list format %s", err, f)
		}
	}
	if !strings.Contains(err.Error(), "Auto") {
		t.Errorf("error %q does not list Auto", err)
	}
}

// TestCanonicalFormatResolvesCaseInsensitively checks the user-input
// spellings mmsolve feeds through, including the awkward ELL' quote and
// the Auto pseudo-format.
func TestCanonicalFormatResolvesCaseInsensitively(t *testing.T) {
	cases := map[string]string{
		"csr": "CSR", "CSR": "CSR", "ell'": "ELL'", "bcsr": "BCSR",
		"dense": "Dense", "auto": "Auto", "AUTO": "Auto",
	}
	for in, want := range cases {
		got, ok := CanonicalFormat(in)
		if !ok || got != want {
			t.Errorf("CanonicalFormat(%q) = (%q, %v), want (%q, true)", in, got, ok, want)
		}
	}
	if got, ok := CanonicalFormat("csrr"); ok {
		t.Errorf("CanonicalFormat(\"csrr\") = %q, want a miss", got)
	}
}

// TestConvertNamedMatchesConvert checks the delegation: for every
// canonical format the two entry points produce the same encoding.
func TestConvertNamedMatchesConvert(t *testing.T) {
	a := Laplacian2D(4, 4)
	for _, f := range Formats {
		m, err := ConvertNamed(a, f)
		if err != nil {
			t.Fatalf("ConvertNamed(%s): %v", f, err)
		}
		want := ToDense(Convert(a, f))
		got := ToDense(m)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: ConvertNamed and Convert disagree at %d", f, i)
			}
		}
	}
}

// TestFormatFootprintUnknownIsInfinite: the cost model must rank an
// unknown candidate name last (infinite footprint), not panic — the
// profile path used to crash on one.
func TestFormatFootprintUnknownIsInfinite(t *testing.T) {
	p := ProfileCSR(Laplacian2D(4, 4))
	if fp := formatFootprint(p, "hypercube"); !math.IsInf(fp, 1) {
		t.Errorf("unknown-format footprint = %g, want +Inf", fp)
	}
}
