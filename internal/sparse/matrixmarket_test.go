package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadMatrixMarketGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 4
1 1 2.5
2 3 -1
3 4 7
1 2 0.5
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if r, c := Dims(a); r != 3 || c != 4 {
		t.Fatalf("dims %d x %d", r, c)
	}
	d := ToDense(a)
	if d[0] != 2.5 || d[1] != 0.5 || d[1*4+2] != -1 || d[2*4+3] != 7 {
		t.Fatalf("entries wrong: %v", d)
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 4
2 1 -1
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	d := ToDense(a)
	if d[0] != 4 || d[1] != -1 || d[2] != -1 || d[3] != 0 {
		t.Fatalf("symmetric expansion wrong: %v", d)
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket tensor coordinate real general\n1 1 1\n",
		"%%MatrixMarket matrix array real general\n1 1\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n0 1 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1\n",    // out of range
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",    // count short
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",      // malformed entry
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zero\n", // bad value
		"%%MatrixMarket matrix coordinate real general\nnot a size line\n",
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadMatrixMarketNegativeNNZ(t *testing.T) {
	// A corrupt header with a negative entry count used to reach
	// make([]Coord, 0, nnz) and panic; it must be a clean error.
	in := "%%MatrixMarket matrix coordinate real general\n2 2 -1\n"
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err == nil {
		t.Fatalf("expected error for negative nnz, got matrix %v", a)
	}
	if !strings.Contains(err.Error(), "entry count") {
		t.Fatalf("unhelpful error for negative nnz: %v", err)
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := r.Int63n(10) + 1
		cols := r.Int63n(10) + 1
		a := CSRFromCoords(rows, cols, randomCoords(r, rows, cols))
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, a); err != nil {
			return false
		}
		b, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Log(err)
			return false
		}
		return densesEqual(ToDense(a), ToDense(b), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteMatrixMarketNonCSR(t *testing.T) {
	// Writing goes through the dense probe for non-CSR formats.
	a := COOFromCoords(2, 3, []Coord{{Row: 0, Col: 2, Val: 1.5}, {Row: 1, Col: 0, Val: -2}})
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !densesEqual(ToDense(a), ToDense(b), 0) {
		t.Fatal("round trip through dense probe failed")
	}
}
