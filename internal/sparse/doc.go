// Package sparse implements the KDRSolvers view of sparse matrix storage
// formats (Section 3 of the paper).
//
// A sparse R × D matrix is a collection of numbers indexed by a kernel
// space K together with a column relation col ⊆ K × D and a row relation
// row ⊆ K × R (equation 2). Every storage format in Figure 3 of the paper
// is provided — Dense, COO, CSR, CSC, ELL, ELL′, DIA, BCSR, and BCSC —
// each exposing its row and column relations through the Matrix interface
// so that the universal co-partitioning operators of package dpart apply
// uniformly, including to user-defined formats implemented outside this
// package.
//
// Computational kernels are expressed as in-place multiply-adds
// (y ← Ax + y), the primitive into which Section 4.1 decomposes all
// matrix-vector products on multi-operator systems, with restricted
// variants that process only the kernel points of a partition piece.
//
// The package also provides the stencil matrix generators used throughout
// the paper's evaluation: 3-point 1D, 5-point 2D, 7-point 3D, and 27-point
// 3D Laplacians on Cartesian grids.
package sparse
