package sparse

import (
	"sort"

	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
)

// CSC stores a matrix in compressed sparse column form: the kernel space
// is totally ordered by column, colptr: D → [K, K] gives each column's
// contiguous kernel interval (a SegmentRelation), and row: K → R is
// explicit.
type CSC struct {
	rows, cols int64
	colptr     []int64
	rowIdx     []int64
	vals       []float64

	rowRel *dpart.FnRelation
	colRel *dpart.SegmentRelation
}

// NewCSC wraps the given arrays (retained, not copied) as a rows × cols
// matrix. len(colptr) must be cols+1 with colptr[cols] == len(vals).
func NewCSC(rows, cols int64, colptr, rowIdx []int64, vals []float64) *CSC {
	if int64(len(colptr)) != cols+1 {
		panic("sparse: CSC colptr must have cols+1 entries")
	}
	if len(rowIdx) != len(vals) || colptr[cols] != int64(len(vals)) {
		panic("sparse: CSC arrays inconsistent")
	}
	return &CSC{
		rows: rows, cols: cols,
		colptr: colptr, rowIdx: rowIdx, vals: vals,
		rowRel: dpart.NewFnRelation("K", rowIdx, index.NewSpace("R", rows)),
		colRel: dpart.NewSegmentRelation("K", colptr, "D"),
	}
}

// CSCFromCoords assembles a CSC matrix from explicit coordinates,
// sorting by (col, row) and summing duplicates.
func CSCFromCoords(rows, cols int64, coords []Coord) *CSC {
	cs := make([]Coord, len(coords))
	copy(cs, coords)
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Col != cs[j].Col {
			return cs[i].Col < cs[j].Col
		}
		return cs[i].Row < cs[j].Row
	})
	colptr := make([]int64, cols+1)
	rowIdx := make([]int64, 0, len(cs))
	vals := make([]float64, 0, len(cs))
	for idx := 0; idx < len(cs); {
		r, c, v := cs[idx].Row, cs[idx].Col, cs[idx].Val
		for idx++; idx < len(cs) && cs[idx].Row == r && cs[idx].Col == c; idx++ {
			v += cs[idx].Val
		}
		rowIdx = append(rowIdx, r)
		vals = append(vals, v)
		colptr[c+1]++
	}
	for j := int64(0); j < cols; j++ {
		colptr[j+1] += colptr[j]
	}
	return NewCSC(rows, cols, colptr, rowIdx, vals)
}

// Domain implements Matrix.
func (a *CSC) Domain() index.Space { return a.colRel.Right() }

// Range implements Matrix.
func (a *CSC) Range() index.Space { return a.rowRel.Right() }

// Kernel implements Matrix.
func (a *CSC) Kernel() index.Space { return index.NewSpace("K", int64(len(a.vals))) }

// RowRelation implements Matrix.
func (a *CSC) RowRelation() dpart.Relation { return a.rowRel }

// ColRelation implements Matrix.
func (a *CSC) ColRelation() dpart.Relation { return a.colRel }

// NNZ implements Matrix.
func (a *CSC) NNZ() int64 { return int64(len(a.vals)) }

// Format implements Matrix.
func (a *CSC) Format() string { return "CSC" }

// MultiplyAdd implements Matrix.
func (a *CSC) MultiplyAdd(y, x []float64) {
	CheckShapes(a, y, x)
	for j := int64(0); j < a.cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for k := a.colptr[j]; k < a.colptr[j+1]; k++ {
			y[a.rowIdx[k]] += a.vals[k] * xj
		}
	}
}

// MultiplyAddT implements Matrix.
func (a *CSC) MultiplyAddT(y, x []float64) {
	checkShapesT(a, y, x)
	for j := int64(0); j < a.cols; j++ {
		var sum float64
		for k := a.colptr[j]; k < a.colptr[j+1]; k++ {
			sum += a.vals[k] * x[a.rowIdx[k]]
		}
		y[j] += sum
	}
}

// colOf returns the column owning kernel position k.
func (a *CSC) colOf(k int64) int64 {
	return int64(sort.Search(int(a.cols), func(j int) bool { return a.colptr[j+1] > k }))
}

// MultiplyAddPart implements Matrix.
func (a *CSC) MultiplyAddPart(y, x []float64, kset index.IntervalSet) {
	CheckShapes(a, y, x)
	kset.EachInterval(func(iv index.Interval) {
		j := a.colOf(iv.Lo)
		for k := iv.Lo; k <= iv.Hi; {
			end := a.colptr[j+1]
			if end > iv.Hi+1 {
				end = iv.Hi + 1
			}
			xj := x[j]
			for ; k < end; k++ {
				y[a.rowIdx[k]] += a.vals[k] * xj
			}
			j++
		}
	})
}

// MultiplyAddTPart implements Matrix.
func (a *CSC) MultiplyAddTPart(y, x []float64, kset index.IntervalSet) {
	checkShapesT(a, y, x)
	kset.EachInterval(func(iv index.Interval) {
		j := a.colOf(iv.Lo)
		for k := iv.Lo; k <= iv.Hi; {
			end := a.colptr[j+1]
			if end > iv.Hi+1 {
				end = iv.Hi + 1
			}
			var sum float64
			for ; k < end; k++ {
				sum += a.vals[k] * x[a.rowIdx[k]]
			}
			y[j] += sum
			j++
		}
	})
}
