package sparse

import (
	"errors"
	"fmt"
	"strings"
)

// ErrUnknownFormat is wrapped by every error a format-name lookup
// produces, so callers can branch on it with errors.Is.
var ErrUnknownFormat = errors.New("sparse: unknown format")

// CoordsFromCSR extracts the explicit nonzero coordinates of a CSR matrix.
func CoordsFromCSR(a *CSR) []Coord {
	out := make([]Coord, 0, a.NNZ())
	for i := int64(0); i < a.rows; i++ {
		for k := a.rowptr[i]; k < a.rowptr[i+1]; k++ {
			out = append(out, Coord{Row: i, Col: a.colIdx[k], Val: a.vals[k]})
		}
	}
	return out
}

// COOFromCSR converts a CSR matrix to COO, preserving row-major entry
// order.
func COOFromCSR(a *CSR) *COO {
	n := a.NNZ()
	rowIdx := make([]int64, n)
	colIdx := make([]int64, n)
	vals := make([]float64, n)
	copy(colIdx, a.colIdx)
	copy(vals, a.vals)
	for i := int64(0); i < a.rows; i++ {
		for k := a.rowptr[i]; k < a.rowptr[i+1]; k++ {
			rowIdx[k] = i
		}
	}
	return NewCOO(a.rows, a.cols, rowIdx, colIdx, vals)
}

// CSCFromCSR converts a CSR matrix to CSC.
func CSCFromCSR(a *CSR) *CSC {
	return CSCFromCoords(a.rows, a.cols, CoordsFromCSR(a))
}

// Transpose returns the transpose of a CSR matrix as CSR.
func Transpose(a *CSR) *CSR {
	coords := CoordsFromCSR(a)
	for i := range coords {
		coords[i].Row, coords[i].Col = coords[i].Col, coords[i].Row
	}
	return CSRFromCoords(a.cols, a.rows, coords)
}

// Convert re-encodes a CSR matrix into the named storage format. It is
// the dispatch used by format-sweep benchmarks. Block formats use 2 × 2
// blocks, degrading per axis to width 1 when a dimension is odd, so any
// shape converts without panicking. "Auto" profiles the matrix and
// builds a row-banded composite of predicted-fastest formats. It panics
// on an unknown name; callers handling user input should use
// ConvertNamed, which returns the error instead.
func Convert(a *CSR, format string) Matrix {
	m, err := ConvertNamed(a, format)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// ConvertNamed is Convert with user-input-grade name handling: the
// format name is matched case-insensitively against Formats (plus
// "Auto"), and an unrecognized name returns an error wrapping
// ErrUnknownFormat that lists every valid spelling — no panic.
func ConvertNamed(a *CSR, format string) (Matrix, error) {
	canon, ok := CanonicalFormat(format)
	if !ok {
		return nil, fmt.Errorf("%w %q (valid: %s, Auto)",
			ErrUnknownFormat, format, strings.Join(Formats, ", "))
	}
	switch canon {
	case "CSR":
		return a, nil
	case "COO":
		return COOFromCSR(a), nil
	case "CSC":
		return CSCFromCSR(a), nil
	case "ELL":
		return ELLFromCSR(a), nil
	case "ELL'":
		return ELLPrimeFromCSC(CSCFromCSR(a)), nil
	case "DIA":
		return DIAFromCSR(a), nil
	case "Dense":
		return DenseFromMatrix(a), nil
	case "BCSR":
		br, bd := blockShape(a)
		return BCSRFromCSR(a, br, bd), nil
	case "BCSC":
		br, bd := blockShape(a)
		return BCSCFromCSR(a, br, bd), nil
	}
	// CanonicalFormat admits nothing else, so this is "Auto".
	return AutoSelect(a, defaultAutoBands(a.rows)), nil
}

// CanonicalFormat resolves a case-insensitive user-supplied format name
// ("csr", "ell'", "bcsr", "auto") to its canonical spelling. The second
// return is false when no format matches.
func CanonicalFormat(name string) (string, bool) {
	for _, f := range Formats {
		if strings.EqualFold(name, f) {
			return f, true
		}
	}
	if strings.EqualFold(name, "Auto") {
		return "Auto", true
	}
	return "", false
}

// blockShape picks the block dimensions Convert uses for BCSR/BCSC: 2×2
// when the dimensions allow, shrinking an axis to 1 when it is odd (an
// n×1 or odd-dimension matrix previously panicked here).
func blockShape(a *CSR) (br, bd int64) {
	br, bd = 2, 2
	if a.rows%2 != 0 {
		br = 1
	}
	if a.cols%2 != 0 {
		bd = 1
	}
	return br, bd
}

// defaultAutoBands is the band count Convert's "Auto" case uses when no
// planner partition supplies one: up to 4 bands, never exceeding the row
// count.
func defaultAutoBands(rows int64) int {
	n := int64(4)
	if rows < n {
		n = rows
	}
	if n < 1 {
		n = 1
	}
	return int(n)
}

// Formats lists every storage format Convert understands, in Figure 3
// order.
var Formats = []string{"Dense", "COO", "CSR", "CSC", "ELL", "ELL'", "DIA", "BCSR", "BCSC"}

// CSRFromMatrix re-encodes any Matrix back to CSR by densifying it and
// dropping explicit zeros. It materializes the full rows×cols dense
// form, so it is meant for conformance tests and small matrices, not as
// a production conversion path. Zero-padding introduced by a format
// (ELL fill, block fill in BCSR/BCSC) is discarded, so a round trip
// through any format yields the same nonzero structure the format
// actually represents.
func CSRFromMatrix(m Matrix) *CSR {
	rows, cols := Dims(m)
	d := ToDense(m)
	var coords []Coord
	for i := int64(0); i < rows; i++ {
		for j := int64(0); j < cols; j++ {
			if v := d[i*cols+j]; v != 0 {
				coords = append(coords, Coord{Row: i, Col: j, Val: v})
			}
		}
	}
	return CSRFromCoords(rows, cols, coords)
}
