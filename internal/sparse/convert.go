package sparse

// CoordsFromCSR extracts the explicit nonzero coordinates of a CSR matrix.
func CoordsFromCSR(a *CSR) []Coord {
	out := make([]Coord, 0, a.NNZ())
	for i := int64(0); i < a.rows; i++ {
		for k := a.rowptr[i]; k < a.rowptr[i+1]; k++ {
			out = append(out, Coord{Row: i, Col: a.colIdx[k], Val: a.vals[k]})
		}
	}
	return out
}

// COOFromCSR converts a CSR matrix to COO, preserving row-major entry
// order.
func COOFromCSR(a *CSR) *COO {
	n := a.NNZ()
	rowIdx := make([]int64, n)
	colIdx := make([]int64, n)
	vals := make([]float64, n)
	copy(colIdx, a.colIdx)
	copy(vals, a.vals)
	for i := int64(0); i < a.rows; i++ {
		for k := a.rowptr[i]; k < a.rowptr[i+1]; k++ {
			rowIdx[k] = i
		}
	}
	return NewCOO(a.rows, a.cols, rowIdx, colIdx, vals)
}

// CSCFromCSR converts a CSR matrix to CSC.
func CSCFromCSR(a *CSR) *CSC {
	return CSCFromCoords(a.rows, a.cols, CoordsFromCSR(a))
}

// Transpose returns the transpose of a CSR matrix as CSR.
func Transpose(a *CSR) *CSR {
	coords := CoordsFromCSR(a)
	for i := range coords {
		coords[i].Row, coords[i].Col = coords[i].Col, coords[i].Row
	}
	return CSRFromCoords(a.cols, a.rows, coords)
}

// Convert re-encodes a CSR matrix into the named storage format. It is
// the dispatch used by format-sweep benchmarks; block formats use 2 × 2
// blocks and require even dimensions.
func Convert(a *CSR, format string) Matrix {
	switch format {
	case "CSR":
		return a
	case "COO":
		return COOFromCSR(a)
	case "CSC":
		return CSCFromCSR(a)
	case "ELL":
		return ELLFromCSR(a)
	case "ELL'":
		return ELLPrimeFromCSC(CSCFromCSR(a))
	case "DIA":
		return DIAFromCSR(a)
	case "Dense":
		return DenseFromMatrix(a)
	case "BCSR":
		return BCSRFromCSR(a, 2, 2)
	case "BCSC":
		return BCSCFromCSR(a, 2, 2)
	}
	panic("sparse: unknown format " + format)
}

// Formats lists every storage format Convert understands, in Figure 3
// order.
var Formats = []string{"Dense", "COO", "CSR", "CSC", "ELL", "ELL'", "DIA", "BCSR", "BCSC"}

// CSRFromMatrix re-encodes any Matrix back to CSR by densifying it and
// dropping explicit zeros. It materializes the full rows×cols dense
// form, so it is meant for conformance tests and small matrices, not as
// a production conversion path. Zero-padding introduced by a format
// (ELL fill, block fill in BCSR/BCSC) is discarded, so a round trip
// through any format yields the same nonzero structure the format
// actually represents.
func CSRFromMatrix(m Matrix) *CSR {
	rows, cols := Dims(m)
	d := ToDense(m)
	var coords []Coord
	for i := int64(0); i < rows; i++ {
		for j := int64(0); j < cols; j++ {
			if v := d[i*cols+j]; v != 0 {
				coords = append(coords, Coord{Row: i, Col: j, Val: v})
			}
		}
	}
	return CSRFromCoords(rows, cols, coords)
}
