package sparse

import (
	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
)

// ELL stores a matrix in ELLPACK form: the kernel space is the product
// K = R × [0, width) — every row owns exactly width slots — so the row
// relation is the implicit projection π1 (a DivRelation) and only the
// column indices are stored. Rows with fewer than width entries are
// padded with zero-valued slots whose column index repeats the row's last
// valid column (or 0 for empty rows); padding therefore never changes the
// product.
type ELL struct {
	rows, cols, width int64
	colIdx            []int64 // len rows*width, row-major
	vals              []float64

	rowRel *dpart.DivRelation
	colRel *dpart.FnRelation
}

// NewELL wraps row-major slot arrays (retained, not copied) of length
// rows*width as a rows × cols matrix.
func NewELL(rows, cols, width int64, colIdx []int64, vals []float64) *ELL {
	if int64(len(colIdx)) != rows*width || len(colIdx) != len(vals) {
		panic("sparse: ELL arrays must have rows*width entries")
	}
	return &ELL{
		rows: rows, cols: cols, width: width,
		colIdx: colIdx, vals: vals,
		rowRel: dpart.NewDivRelation("K", rows, width, "R"),
		colRel: dpart.NewFnRelation("K", colIdx, index.NewSpace("D", cols)),
	}
}

// ELLFromCSR converts a CSR matrix to ELL, sizing the width to the
// longest row.
func ELLFromCSR(a *CSR) *ELL {
	width := int64(1)
	for i := int64(0); i < a.rows; i++ {
		if w := a.rowptr[i+1] - a.rowptr[i]; w > width {
			width = w
		}
	}
	colIdx := make([]int64, a.rows*width)
	vals := make([]float64, a.rows*width)
	for i := int64(0); i < a.rows; i++ {
		var pad int64 // last valid column, for padding slots
		s := int64(0)
		for k := a.rowptr[i]; k < a.rowptr[i+1]; k++ {
			colIdx[i*width+s] = a.colIdx[k]
			vals[i*width+s] = a.vals[k]
			pad = a.colIdx[k]
			s++
		}
		for ; s < width; s++ {
			colIdx[i*width+s] = pad
		}
	}
	return NewELL(a.rows, a.cols, width, colIdx, vals)
}

// Domain implements Matrix.
func (a *ELL) Domain() index.Space { return a.colRel.Right() }

// Range implements Matrix.
func (a *ELL) Range() index.Space { return a.rowRel.Right() }

// Kernel implements Matrix.
func (a *ELL) Kernel() index.Space { return index.NewSpace("K", a.rows*a.width) }

// RowRelation implements Matrix.
func (a *ELL) RowRelation() dpart.Relation { return a.rowRel }

// ColRelation implements Matrix.
func (a *ELL) ColRelation() dpart.Relation { return a.colRel }

// NNZ implements Matrix.
func (a *ELL) NNZ() int64 { return a.rows * a.width }

// Format implements Matrix.
func (a *ELL) Format() string { return "ELL" }

// Width returns the fixed number of slots per row.
func (a *ELL) Width() int64 { return a.width }

// MultiplyAdd implements Matrix.
func (a *ELL) MultiplyAdd(y, x []float64) {
	CheckShapes(a, y, x)
	for i := int64(0); i < a.rows; i++ {
		base := i * a.width
		var sum float64
		for s := int64(0); s < a.width; s++ {
			sum += a.vals[base+s] * x[a.colIdx[base+s]]
		}
		y[i] += sum
	}
}

// MultiplyAddT implements Matrix.
func (a *ELL) MultiplyAddT(y, x []float64) {
	checkShapesT(a, y, x)
	for i := int64(0); i < a.rows; i++ {
		base := i * a.width
		xi := x[i]
		if xi == 0 {
			continue
		}
		for s := int64(0); s < a.width; s++ {
			y[a.colIdx[base+s]] += a.vals[base+s] * xi
		}
	}
}

// MultiplyAddPart implements Matrix.
func (a *ELL) MultiplyAddPart(y, x []float64, kset index.IntervalSet) {
	CheckShapes(a, y, x)
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			y[k/a.width] += a.vals[k] * x[a.colIdx[k]]
		}
	})
}

// MultiplyAddTPart implements Matrix.
func (a *ELL) MultiplyAddTPart(y, x []float64, kset index.IntervalSet) {
	checkShapesT(a, y, x)
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			y[a.colIdx[k]] += a.vals[k] * x[k/a.width]
		}
	})
}

// ELLPrime is the column-major dual of ELL (the ELL′ row of Figure 3):
// the kernel space is K = D × [0, width) — every column owns width slots —
// so the column relation is implicit (π1) and only row indices are stored.
type ELLPrime struct {
	rows, cols, width int64
	rowIdx            []int64 // len cols*width, column-major
	vals              []float64

	rowRel *dpart.FnRelation
	colRel *dpart.DivRelation
}

// NewELLPrime wraps column-major slot arrays (retained, not copied) of
// length cols*width as a rows × cols matrix.
func NewELLPrime(rows, cols, width int64, rowIdx []int64, vals []float64) *ELLPrime {
	if int64(len(rowIdx)) != cols*width || len(rowIdx) != len(vals) {
		panic("sparse: ELL' arrays must have cols*width entries")
	}
	return &ELLPrime{
		rows: rows, cols: cols, width: width,
		rowIdx: rowIdx, vals: vals,
		rowRel: dpart.NewFnRelation("K", rowIdx, index.NewSpace("R", rows)),
		colRel: dpart.NewDivRelation("K", cols, width, "D"),
	}
}

// ELLPrimeFromCSC converts a CSC matrix to ELL′, sizing the width to the
// longest column.
func ELLPrimeFromCSC(a *CSC) *ELLPrime {
	width := int64(1)
	for j := int64(0); j < a.cols; j++ {
		if w := a.colptr[j+1] - a.colptr[j]; w > width {
			width = w
		}
	}
	rowIdx := make([]int64, a.cols*width)
	vals := make([]float64, a.cols*width)
	for j := int64(0); j < a.cols; j++ {
		var pad int64
		s := int64(0)
		for k := a.colptr[j]; k < a.colptr[j+1]; k++ {
			rowIdx[j*width+s] = a.rowIdx[k]
			vals[j*width+s] = a.vals[k]
			pad = a.rowIdx[k]
			s++
		}
		for ; s < width; s++ {
			rowIdx[j*width+s] = pad
		}
	}
	return NewELLPrime(a.rows, a.cols, width, rowIdx, vals)
}

// Domain implements Matrix.
func (a *ELLPrime) Domain() index.Space { return a.colRel.Right() }

// Range implements Matrix.
func (a *ELLPrime) Range() index.Space { return a.rowRel.Right() }

// Kernel implements Matrix.
func (a *ELLPrime) Kernel() index.Space { return index.NewSpace("K", a.cols*a.width) }

// RowRelation implements Matrix.
func (a *ELLPrime) RowRelation() dpart.Relation { return a.rowRel }

// ColRelation implements Matrix.
func (a *ELLPrime) ColRelation() dpart.Relation { return a.colRel }

// NNZ implements Matrix.
func (a *ELLPrime) NNZ() int64 { return a.cols * a.width }

// Format implements Matrix.
func (a *ELLPrime) Format() string { return "ELL'" }

// MultiplyAdd implements Matrix.
func (a *ELLPrime) MultiplyAdd(y, x []float64) {
	CheckShapes(a, y, x)
	for j := int64(0); j < a.cols; j++ {
		base := j * a.width
		xj := x[j]
		if xj == 0 {
			continue
		}
		for s := int64(0); s < a.width; s++ {
			y[a.rowIdx[base+s]] += a.vals[base+s] * xj
		}
	}
}

// MultiplyAddT implements Matrix.
func (a *ELLPrime) MultiplyAddT(y, x []float64) {
	checkShapesT(a, y, x)
	for j := int64(0); j < a.cols; j++ {
		base := j * a.width
		var sum float64
		for s := int64(0); s < a.width; s++ {
			sum += a.vals[base+s] * x[a.rowIdx[base+s]]
		}
		y[j] += sum
	}
}

// MultiplyAddPart implements Matrix.
func (a *ELLPrime) MultiplyAddPart(y, x []float64, kset index.IntervalSet) {
	CheckShapes(a, y, x)
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			y[a.rowIdx[k]] += a.vals[k] * x[k/a.width]
		}
	})
}

// MultiplyAddTPart implements Matrix.
func (a *ELLPrime) MultiplyAddTPart(y, x []float64, kset index.IntervalSet) {
	checkShapesT(a, y, x)
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			y[k/a.width] += a.vals[k] * x[a.rowIdx[k]]
		}
	})
}
