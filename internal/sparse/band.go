package sparse

import (
	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
)

// Band is a matrix-free banded matrix: a set of diagonals (col − row
// offsets) with entries given by a coefficient function. Like
// StencilOperator it stores nothing per entry — its kernel space is
// DIA-shaped and both relations are implicit — so it scales to
// paper-sized problems in virtual mode.
//
// Band is the building block for the boundary-interaction matrices of
// the Figure 9 multi-operator experiment: the coupling between two halves
// of a split stencil grid is a single thin diagonal.
type Band struct {
	rows, cols int64
	offsets    []int64
	// coeff returns the entry of diagonal b at column j (row j −
	// offsets[b], already validated to be in range). A nil coeff makes
	// every entry zero, which is fine for virtual-mode experiments that
	// only use sizes and relations.
	coeff func(b int, j int64) float64

	rowRel *dpart.DiagRelation
	colRel *dpart.ModRelation
}

// NewBand builds a banded matrix-free operator. offsets are col − row
// diagonal offsets; coeff may be nil for structure-only (virtual) use.
func NewBand(rows, cols int64, offsets []int64, coeff func(b int, j int64) float64) *Band {
	offs := make([]int64, len(offsets))
	copy(offs, offsets)
	return &Band{
		rows: rows, cols: cols,
		offsets: offs, coeff: coeff,
		rowRel: dpart.NewDiagRelation("K", offs, cols, rows, "R"),
		colRel: dpart.NewModRelation("K", int64(len(offs)), cols, "D"),
	}
}

// ConstBand builds a banded operator whose diagonals each hold one
// constant value; vals[b] is the value of diagonal offsets[b].
func ConstBand(rows, cols int64, offsets []int64, vals []float64) *Band {
	if len(vals) != len(offsets) {
		panic("sparse: ConstBand needs one value per offset")
	}
	vs := make([]float64, len(vals))
	copy(vs, vals)
	return NewBand(rows, cols, offsets, func(b int, _ int64) float64 { return vs[b] })
}

// Domain implements Matrix.
func (a *Band) Domain() index.Space { return a.colRel.Right() }

// Range implements Matrix.
func (a *Band) Range() index.Space { return a.rowRel.Right() }

// Kernel implements Matrix.
func (a *Band) Kernel() index.Space {
	return index.NewSpace("K", int64(len(a.offsets))*a.cols)
}

// RowRelation implements Matrix.
func (a *Band) RowRelation() dpart.Relation { return a.rowRel }

// ColRelation implements Matrix.
func (a *Band) ColRelation() dpart.Relation { return a.colRel }

// NNZ implements Matrix: the kernel slot count, what a DIA-style kernel
// streams.
func (a *Band) NNZ() int64 { return int64(len(a.offsets)) * a.cols }

// Format implements Matrix.
func (a *Band) Format() string { return "Band" }

// at returns the entry for kernel slot (b, j), or 0 when out of range.
func (a *Band) at(b int, j int64) float64 {
	i := j - a.offsets[b]
	if i < 0 || i >= a.rows || a.coeff == nil {
		return 0
	}
	return a.coeff(b, j)
}

// MultiplyAdd implements Matrix.
func (a *Band) MultiplyAdd(y, x []float64) {
	CheckShapes(a, y, x)
	a.MultiplyAddPart(y, x, a.Kernel().Set)
}

// MultiplyAddT implements Matrix.
func (a *Band) MultiplyAddT(y, x []float64) {
	checkShapesT(a, y, x)
	a.MultiplyAddTPart(y, x, a.Kernel().Set)
}

// MultiplyAddPart implements Matrix.
func (a *Band) MultiplyAddPart(y, x []float64, kset index.IntervalSet) {
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			b, j := int(k/a.cols), k%a.cols
			i := j - a.offsets[b]
			if i < 0 || i >= a.rows {
				continue
			}
			if v := a.at(b, j); v != 0 {
				y[i] += v * x[j]
			}
		}
	})
}

// MultiplyAddTPart implements Matrix.
func (a *Band) MultiplyAddTPart(y, x []float64, kset index.IntervalSet) {
	kset.EachInterval(func(iv index.Interval) {
		for k := iv.Lo; k <= iv.Hi; k++ {
			b, j := int(k/a.cols), k%a.cols
			i := j - a.offsets[b]
			if i < 0 || i >= a.rows {
				continue
			}
			if v := a.at(b, j); v != 0 {
				y[j] += v * x[i]
			}
		}
	})
}
