package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MatrixMarket I/O: the coordinate-format subset of the NIST Matrix
// Market exchange format, which covers the sparse matrices distributed by
// the SuiteSparse collection. Supported qualifiers are real/integer ×
// general/symmetric; pattern and complex matrices are rejected with a
// clear error.

// ReadMatrixMarket parses a Matrix Market coordinate stream into CSR.
// Symmetric inputs are expanded to full storage (off-diagonal entries
// mirrored).
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	// Header.
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) != 5 || header[0] != "%%matrixmarket" {
		return nil, fmt.Errorf("sparse: not a MatrixMarket header: %q", sc.Text())
	}
	if header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: only coordinate matrices are supported, got %s %s",
			header[1], header[2])
	}
	field, symmetry := header[3], header[4]
	if field != "real" && field != "integer" {
		return nil, fmt.Errorf("sparse: unsupported field type %q", field)
	}
	symmetric := false
	switch symmetry {
	case "general":
	case "symmetric":
		symmetric = true
	default:
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", symmetry)
	}

	// Size line (after comments).
	var rows, cols, nnz int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %v", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sparse: invalid dimensions %d x %d", rows, cols)
	}
	if nnz < 0 {
		return nil, fmt.Errorf("sparse: invalid entry count %d", nnz)
	}

	coords := make([]Coord, 0, nnz)
	var read int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err1 := strconv.ParseInt(f[0], 10, 64)
		j, err2 := strconv.ParseInt(f[1], 10, 64)
		v, err3 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, j = i-1, j-1 // 1-indexed on disk
		if i < 0 || i >= rows || j < 0 || j >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of bounds", i+1, j+1)
		}
		coords = append(coords, Coord{Row: i, Col: j, Val: v})
		if symmetric && i != j {
			coords = append(coords, Coord{Row: j, Col: i, Val: v})
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: header promised %d entries, found %d", nnz, read)
	}
	return CSRFromCoords(rows, cols, coords), nil
}

// WriteMatrixMarket writes a matrix in general real coordinate format.
func WriteMatrixMarket(w io.Writer, a Matrix) error {
	bw := bufio.NewWriter(w)
	rows, cols := Dims(a)
	var coords []Coord
	if csr, ok := a.(*CSR); ok {
		coords = CoordsFromCSR(csr)
	} else {
		// Materialize through the dense probe; fine for the small
		// matrices this path is meant for.
		d := ToDense(a)
		for i := int64(0); i < rows; i++ {
			for j := int64(0); j < cols; j++ {
				if v := d[i*cols+j]; v != 0 {
					coords = append(coords, Coord{Row: i, Col: j, Val: v})
				}
			}
		}
	}
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		rows, cols, len(coords)); err != nil {
		return err
	}
	for _, c := range coords {
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", c.Row+1, c.Col+1, c.Val); err != nil {
			return err
		}
	}
	return bw.Flush()
}
