package sparse

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomCSRMatrix builds a seeded random sparse matrix with roughly
// density·rows·cols nonzeros plus a guaranteed entry per row (so no
// format degenerates to an empty row structure). Values avoid exact
// cancellation to keep round trips informative.
func randomCSRMatrix(r *rand.Rand, rows, cols int64, density float64) *CSR {
	seen := map[[2]int64]bool{}
	var coords []Coord
	add := func(i, j int64) {
		if seen[[2]int64{i, j}] {
			return
		}
		seen[[2]int64{i, j}] = true
		coords = append(coords, Coord{Row: i, Col: j, Val: r.Float64()*4 - 2 + 0.01})
	}
	for i := int64(0); i < rows; i++ {
		add(i, r.Int63n(cols))
	}
	for k := 0; k < int(density*float64(rows*cols)); k++ {
		add(r.Int63n(rows), r.Int63n(cols))
	}
	return CSRFromCoords(rows, cols, coords)
}

// refProducts computes dense-reference y = Ax and z = Aᵀw.
func refProducts(d []float64, rows, cols int64, x, w []float64) (y, z []float64) {
	y = make([]float64, rows)
	z = make([]float64, cols)
	for i := int64(0); i < rows; i++ {
		for j := int64(0); j < cols; j++ {
			y[i] += d[i*cols+j] * x[j]
			z[j] += d[i*cols+j] * w[i]
		}
	}
	return y, z
}

func maxAbs(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestFormatPairConformance converts seeded random matrices through
// every ordered pair of storage formats — CSR → f1 → CSR → f2 — and
// checks that the f2 encoding's SpMV and SpMVᵀ match the dense
// reference to 1e-12. This is the property the solver stack depends on:
// any format can stand in for any other without changing the operator.
func TestFormatPairConformance(t *testing.T) {
	shapes := []struct{ rows, cols int64 }{
		{16, 16}, // square
		{12, 18}, // wide (even dims for the 2×2 block formats)
		{18, 12}, // tall
	}
	for _, sh := range shapes {
		r := rand.New(rand.NewSource(7*sh.rows + sh.cols))
		a := randomCSRMatrix(r, sh.rows, sh.cols, 0.15)
		dense := ToDense(a)
		x := make([]float64, sh.cols)
		w := make([]float64, sh.rows)
		for i := range x {
			x[i] = r.Float64()*2 - 1
		}
		for i := range w {
			w[i] = r.Float64()*2 - 1
		}
		wantY, wantZ := refProducts(dense, sh.rows, sh.cols, x, w)

		for _, f1 := range allFormats() {
			for _, f2 := range allFormats() {
				t.Run(fmt.Sprintf("%dx%d/%s_to_%s", sh.rows, sh.cols, f1, f2), func(t *testing.T) {
					m1 := Convert(a, f1)
					// Recover CSR from the first format, then encode in the
					// second: exercises both f1's read-out (via its products)
					// and f2's kernels.
					m2 := Convert(CSRFromMatrix(m1), f2)
					if rows, cols := Dims(m2); rows != sh.rows || cols != sh.cols {
						t.Fatalf("dims changed: %dx%d", rows, cols)
					}
					y := make([]float64, sh.rows)
					z := make([]float64, sh.cols)
					SpMV(m2, y, x)
					if d := maxAbs(y, wantY); d > 1e-12 {
						t.Errorf("SpMV off dense reference by %g", d)
					}
					SpMVT(m2, z, w)
					if d := maxAbs(z, wantZ); d > 1e-12 {
						t.Errorf("SpMVT off dense reference by %g", d)
					}
				})
			}
		}
	}
}

// TestCSRFromMatrixDropsPadding checks that recovering CSR from a
// padded format (ELL fill, block fill) keeps only true nonzeros.
func TestCSRFromMatrixDropsPadding(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randomCSRMatrix(r, 16, 16, 0.1)
	for _, f := range []string{"ELL", "BCSR", "BCSC", "Dense"} {
		m := Convert(a, f)
		back := CSRFromMatrix(m)
		if back.NNZ() != a.NNZ() {
			t.Errorf("%s round trip: %d nonzeros, want %d", f, back.NNZ(), a.NNZ())
		}
		if d := maxAbs(ToDense(back), ToDense(a)); d != 0 {
			t.Errorf("%s round trip changed values by %g", f, d)
		}
	}
}
