package sparse

import (
	"math"
	"testing"

	"kdrsolvers/internal/index"
)

func TestLaplacian1DStructure(t *testing.T) {
	a := Laplacian1D(5)
	if r, c := Dims(a); r != 5 || c != 5 {
		t.Fatalf("dims = %d x %d", r, c)
	}
	if a.NNZ() != 3*5-2 {
		t.Fatalf("nnz = %d", a.NNZ())
	}
	d := ToDense(a)
	for i := int64(0); i < 5; i++ {
		for j := int64(0); j < 5; j++ {
			want := 0.0
			switch {
			case i == j:
				want = 2
			case i == j+1 || j == i+1:
				want = -1
			}
			if d[i*5+j] != want {
				t.Errorf("A[%d,%d] = %g, want %g", i, j, d[i*5+j], want)
			}
		}
	}
}

func TestLaplacian2DRowSums(t *testing.T) {
	// Interior rows sum to zero; boundary rows have positive row sums
	// (Dirichlet truncation). The matrix is symmetric.
	a := Laplacian2D(4, 5)
	n := int64(4 * 5)
	d := ToDense(a)
	g := index.NewGrid(4, 5)
	for i := int64(0); i < 4; i++ {
		for j := int64(0); j < 5; j++ {
			row := g.Linearize(i, j)
			var sum float64
			for c := int64(0); c < n; c++ {
				sum += d[row*n+c]
			}
			interior := i > 0 && i < 3 && j > 0 && j < 4
			if interior && sum != 0 {
				t.Errorf("interior row (%d,%d) sum = %g", i, j, sum)
			}
			if !interior && sum <= 0 {
				t.Errorf("boundary row (%d,%d) sum = %g", i, j, sum)
			}
		}
	}
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			if d[i*n+j] != d[j*n+i] {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
}

func TestLaplacianNNZCounts(t *testing.T) {
	cases := []struct {
		m    *CSR
		want int64
	}{
		{Laplacian1D(10), 3*10 - 2},
		{Laplacian2D(4, 4), 5*16 - 2*4 - 2*4},
		{Laplacian3D(3, 3, 3), 7*27 - 2*9*3},
		{Laplacian3D27(2, 2, 2), 8 * 8}, // every pair of cells in a 2x2x2 cube is adjacent
	}
	for i, c := range cases {
		if got := c.m.NNZ(); got != c.want {
			t.Errorf("case %d: nnz = %d, want %d", i, got, c.want)
		}
	}
}

func TestStencilDiagonalDominance(t *testing.T) {
	// All four stencils produce weakly diagonally dominant symmetric
	// matrices (hence SPD up to boundary effects).
	mats := []*CSR{
		Laplacian1D(8),
		Laplacian2D(4, 4),
		Laplacian3D(2, 4, 2),
		Laplacian3D27(2, 2, 4),
	}
	for _, a := range mats {
		rows, cols := Dims(a)
		d := ToDense(a)
		for i := int64(0); i < rows; i++ {
			diag := d[i*cols+i]
			var off float64
			for j := int64(0); j < cols; j++ {
				if j != i {
					off += math.Abs(d[i*cols+j])
				}
			}
			if diag < off {
				t.Errorf("row %d not diagonally dominant: %g < %g", i, diag, off)
			}
		}
	}
}

func TestStencilDispatch(t *testing.T) {
	cases := []struct {
		kind StencilKind
		grid index.Grid
		nnz  int64
	}{
		{Stencil1D3, index.NewGrid(6), 16},
		{Stencil2D5, index.NewGrid(3, 3), 33},
		{Stencil3D7, index.NewGrid(2, 2, 2), 8 * 4},
		{Stencil3D27, index.NewGrid(2, 2, 2), 64},
	}
	for _, c := range cases {
		a := Stencil(c.kind, c.grid)
		if a.NNZ() != c.nnz {
			t.Errorf("%v: nnz = %d, want %d", c.kind, a.NNZ(), c.nnz)
		}
		if r, _ := Dims(a); r != c.grid.Size() {
			t.Errorf("%v: rows = %d, want %d", c.kind, r, c.grid.Size())
		}
	}
}

func TestGridFor(t *testing.T) {
	for _, kind := range []StencilKind{Stencil1D3, Stencil2D5, Stencil3D7, Stencil3D27} {
		for _, n := range []int64{64, 256, 4096} {
			g := kind.GridFor(n)
			if g.Rank() != kind.Rank() {
				t.Errorf("%v GridFor(%d) rank = %d", kind, n, g.Rank())
			}
			if g.Size() != n {
				t.Errorf("%v GridFor(%d) size = %d", kind, n, g.Size())
			}
		}
	}
}

func TestStencilKindStrings(t *testing.T) {
	names := map[StencilKind]string{
		Stencil1D3:  "3pt-1D",
		Stencil2D5:  "5pt-2D",
		Stencil3D7:  "7pt-3D",
		Stencil3D27: "27pt-3D",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	ppr := map[StencilKind]int64{Stencil1D3: 3, Stencil2D5: 5, Stencil3D7: 7, Stencil3D27: 27}
	for k, want := range ppr {
		if k.PointsPerRow() != want {
			t.Errorf("%v.PointsPerRow() = %d", k, k.PointsPerRow())
		}
	}
}

func TestTranspose(t *testing.T) {
	coords := []Coord{{0, 1, 2}, {1, 0, 3}, {2, 2, 4}, {0, 2, 5}}
	a := CSRFromCoords(3, 3, coords)
	at := Transpose(a)
	da, dat := ToDense(a), ToDense(at)
	for i := int64(0); i < 3; i++ {
		for j := int64(0); j < 3; j++ {
			if da[i*3+j] != dat[j*3+i] {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestConvertDispatch(t *testing.T) {
	a := Laplacian2D(4, 4)
	want := ToDense(a)
	for _, f := range Formats {
		m := Convert(a, f)
		if m.Format() != f {
			t.Errorf("Convert(%q).Format() = %q", f, m.Format())
		}
		if !densesEqual(ToDense(m), want, 1e-12) {
			t.Errorf("Convert(%q) changed the matrix", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown format")
		}
	}()
	Convert(a, "XYZ")
}

func TestCSRAccessors(t *testing.T) {
	a := Laplacian1D(4)
	if len(a.RowPtr()) != 5 || len(a.ColIdx()) != int(a.NNZ()) || len(a.Vals()) != int(a.NNZ()) {
		t.Fatal("accessor lengths wrong")
	}
	if a.Kernel().Size() != a.NNZ() {
		t.Fatal("kernel size != nnz")
	}
	if a.Domain().Name != "D" || a.Range().Name != "R" {
		t.Fatal("space names wrong")
	}
}

func TestCoordsSumDuplicates(t *testing.T) {
	coords := []Coord{{1, 1, 2}, {1, 1, 3}, {0, 0, 1}}
	a := CSRFromCoords(2, 2, coords)
	if a.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2 (duplicates summed)", a.NNZ())
	}
	d := ToDense(a)
	if d[1*2+1] != 5 || d[0] != 1 {
		t.Fatalf("dense = %v", d)
	}
	c := CSCFromCoords(2, 2, coords)
	if c.NNZ() != 2 || ToDense(c)[3] != 5 {
		t.Fatal("CSC duplicate merge failed")
	}
}
