// Package jobspec defines the solve-job specification shared by the
// one-shot CLI (cmd/mmsolve) and the job server (cmd/mmserve): the
// parameters of one A·x = b solve, their defaults, and one validation
// routine both front ends apply before any planner is built. A flag
// combination the CLI rejects with exit 2 is exactly a request body the
// server rejects with 400 — same checks, same messages.
package jobspec

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"kdrsolvers/internal/fault"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
)

// Spec is one solve job. The zero value is not valid; start from
// Default.
type Spec struct {
	// Matrix is a Matrix Market path or a generated-stencil spec like
	// "lap2d:64x64".
	Matrix string `json:"matrix"`
	// Solver names the Krylov method (solvers.Names, plus the unfused
	// ablation variants).
	Solver string `json:"solver"`
	// Format is the operator storage format, or "auto" for per-band
	// adaptive selection.
	Format string `json:"format"`
	// RHS selects the right-hand side: "Aones" (b = A·1, exact solution
	// all ones), "ones" (b = 1), or "rand:SEED" (deterministic uniform
	// entries in [-1, 1)).
	RHS string `json:"rhs"`
	// Tol is the residual tolerance; MaxIter the iteration budget;
	// Pieces the vector partition width.
	Tol     float64 `json:"tol"`
	MaxIter int     `json:"maxiter"`
	Pieces  int     `json:"pieces"`

	// Faults is a fault-injection plan (see fault.ParsePlan); empty
	// disables injection.
	Faults string `json:"faults,omitempty"`
	// Retries is execution attempts per idempotent task (0 or 1
	// disables retry); RetryBackoff the delay before re-execution.
	Retries      int           `json:"retries,omitempty"`
	RetryBackoff time.Duration `json:"retry_backoff,omitempty"`
	// CheckpointEvery > 0 selects the resilient driver, checkpointing
	// every N iterations; MaxRestarts bounds its rollbacks (<= 0 maps
	// to the driver's default budget at 0, disabled below 0).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	MaxRestarts     int `json:"max_restarts,omitempty"`
	// DetectSDC enables ABFT checksummed kernels; ReplaceEvery and
	// DriftTol configure periodic residual replacement (resilient
	// driver only).
	DetectSDC    bool    `json:"detect_sdc,omitempty"`
	ReplaceEvery int     `json:"replace_every,omitempty"`
	DriftTol     float64 `json:"drift_tol,omitempty"`
	// Watchdog flags tasks running past this wall-clock budget as
	// stragglers (0 disables).
	Watchdog time.Duration `json:"watchdog,omitempty"`
}

// Default returns the specification both front ends start from — the
// historical mmsolve flag defaults.
func Default() Spec {
	return Spec{
		Solver:      "bicgstab",
		Format:      "csr",
		RHS:         "Aones",
		Tol:         1e-8,
		MaxIter:     10000,
		Pieces:      8,
		MaxRestarts: 3,
	}
}

// KnownSolver reports whether solvers.New accepts the name: the public
// list plus the unfused ablation variants, which stay usable from the
// CLI and the server for benchmark reproduction.
func KnownSolver(name string) bool {
	for _, n := range solvers.Names {
		if name == n {
			return true
		}
	}
	switch name {
	case "cg-unfused", "pcg-unfused", "bicgstab-unfused":
		return true
	}
	return false
}

// Validate checks every parameter against its domain and returns all
// violations joined into one error (errors.Join), or nil. Front ends
// treat a non-nil result as a usage error: exit 2 from the CLI, HTTP
// 400 from the server. Validation is pure — no file access — so a
// matrix path that does not exist fails at load time (a runtime error,
// exit 1), not here; a malformed stencil spec fails here.
func (s *Spec) Validate() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	if s.Matrix == "" {
		fail("matrix is required (a .mtx path or lap2d:NXxNY)")
	} else if spec, ok := strings.CutPrefix(s.Matrix, "lap2d:"); ok {
		if _, _, err := ParseLap2D(spec); err != nil {
			errs = append(errs, err)
		}
	}
	if !KnownSolver(s.Solver) {
		fail("unknown solver %q (valid: %s)", s.Solver, strings.Join(solvers.Names, ", "))
	}
	if _, ok := sparse.CanonicalFormat(s.Format); !ok {
		fail("unknown format %q (valid: %s, auto)", s.Format, strings.Join(sparse.Formats, ", "))
	}
	if err := validRHS(s.RHS); err != nil {
		errs = append(errs, err)
	}
	if !(s.Tol > 0) || math.IsInf(s.Tol, 0) { // rejects NaN, 0, negatives, Inf
		fail("tol must be a positive finite number, got %g", s.Tol)
	}
	if s.MaxIter < 1 {
		fail("maxiter must be at least 1, got %d", s.MaxIter)
	}
	if s.Pieces < 1 {
		fail("pieces must be at least 1, got %d", s.Pieces)
	}
	if s.Faults != "" {
		if _, err := fault.ParsePlan(s.Faults); err != nil {
			errs = append(errs, err)
		}
	}
	if s.Retries < 0 {
		fail("retries must not be negative, got %d", s.Retries)
	}
	if s.RetryBackoff < 0 {
		fail("retry-backoff must not be negative, got %v", s.RetryBackoff)
	}
	if s.CheckpointEvery < 0 {
		fail("checkpoint-every must not be negative, got %d", s.CheckpointEvery)
	}
	if s.ReplaceEvery < 0 {
		fail("replace-every must not be negative, got %d", s.ReplaceEvery)
	}
	if s.ReplaceEvery > 0 && s.CheckpointEvery <= 0 {
		fail("replace-every requires the resilient driver (set checkpoint-every)")
	}
	if math.IsNaN(s.DriftTol) || math.IsInf(s.DriftTol, 0) {
		fail("drift-tol must be finite, got %g", s.DriftTol)
	}
	if s.Watchdog < 0 {
		fail("watchdog must not be negative, got %v", s.Watchdog)
	}
	return errors.Join(errs...)
}

// validRHS checks the right-hand-side selector.
func validRHS(rhs string) error {
	switch rhs {
	case "Aones", "ones":
		return nil
	}
	if seed, ok := strings.CutPrefix(rhs, "rand:"); ok {
		if _, err := strconv.ParseInt(seed, 10, 64); err == nil {
			return nil
		}
		return fmt.Errorf("bad rhs %q: rand wants an integer seed (rand:42)", rhs)
	}
	return fmt.Errorf("rhs must be Aones, ones, or rand:SEED, got %q", rhs)
}

// ParseLap2D parses the dimensions of a "lap2d:NXxNY" stencil spec
// (the part after the colon).
func ParseLap2D(dims string) (nx, ny int64, err error) {
	sx, sy, ok := strings.Cut(dims, "x")
	if ok {
		var e1, e2 error
		nx, e1 = strconv.ParseInt(sx, 10, 64)
		ny, e2 = strconv.ParseInt(sy, 10, 64)
		if e1 == nil && e2 == nil && nx > 0 && ny > 0 {
			return nx, ny, nil
		}
	}
	return 0, 0, fmt.Errorf("bad stencil spec %q, want lap2d:NXxNY", "lap2d:"+dims)
}

// LoadMatrix reads a Matrix Market file, or generates a 5-point 2D
// Laplacian stencil when the argument has the form "lap2d:NXxNY" —
// handy for jobs that should not depend on a matrix file being around.
func LoadMatrix(arg string) (*sparse.CSR, error) {
	if dims, ok := strings.CutPrefix(arg, "lap2d:"); ok {
		nx, ny, err := ParseLap2D(dims)
		if err != nil {
			return nil, err
		}
		return sparse.Laplacian2D(nx, ny), nil
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sparse.ReadMatrixMarket(f)
}

// BuildRHS materializes the spec's right-hand side for an n×n matrix a.
// Call Validate first; an invalid selector panics here.
func (s *Spec) BuildRHS(a sparse.Matrix, n int) []float64 {
	b := make([]float64, n)
	switch {
	case s.RHS == "Aones":
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		sparse.SpMV(a, b, ones)
	case s.RHS == "ones":
		for i := range b {
			b[i] = 1
		}
	case strings.HasPrefix(s.RHS, "rand:"):
		seed, err := strconv.ParseInt(strings.TrimPrefix(s.RHS, "rand:"), 10, 64)
		if err != nil {
			panic(fmt.Sprintf("jobspec: unvalidated rhs %q", s.RHS))
		}
		rng := rand.New(rand.NewSource(seed))
		for i := range b {
			b[i] = 2*rng.Float64() - 1
		}
	default:
		panic(fmt.Sprintf("jobspec: unvalidated rhs %q", s.RHS))
	}
	return b
}
