package jobspec

import (
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	s := Default()
	s.Matrix = "lap2d:8x8"
	if err := s.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
}

// The exact combinations the issue names: -pieces 0, -maxiter -1,
// -replace-every -5 must each be rejected, and all violations must be
// reported together in one pass, not one per invocation.
func TestValidateJoinsAllViolations(t *testing.T) {
	s := Default()
	s.Matrix = "lap2d:8x8"
	s.Pieces = 0
	s.MaxIter = -1
	s.ReplaceEvery = -5
	err := s.Validate()
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
	for _, want := range []string{
		"pieces must be at least 1, got 0",
		"maxiter must be at least 1, got -1",
		"replace-every must not be negative, got -5",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no matrix", func(s *Spec) { s.Matrix = "" }, "matrix is required"},
		{"bad stencil", func(s *Spec) { s.Matrix = "lap2d:8" }, "bad stencil spec"},
		{"zero stencil", func(s *Spec) { s.Matrix = "lap2d:0x8" }, "bad stencil spec"},
		{"unknown solver", func(s *Spec) { s.Solver = "sor" }, "unknown solver"},
		{"unknown format", func(s *Spec) { s.Format = "hyb" }, "unknown format"},
		{"bad rhs", func(s *Spec) { s.RHS = "zeros" }, "rhs must be"},
		{"bad rand seed", func(s *Spec) { s.RHS = "rand:x" }, "integer seed"},
		{"zero tol", func(s *Spec) { s.Tol = 0 }, "tol must be"},
		{"negative tol", func(s *Spec) { s.Tol = -1e-8 }, "tol must be"},
		{"negative retries", func(s *Spec) { s.Retries = -1 }, "retries must not"},
		{"negative backoff", func(s *Spec) { s.RetryBackoff = -1 }, "retry-backoff"},
		{"negative checkpoint", func(s *Spec) { s.CheckpointEvery = -2 }, "checkpoint-every"},
		{"replace without resilient", func(s *Spec) { s.ReplaceEvery = 10 }, "requires the resilient driver"},
		{"negative watchdog", func(s *Spec) { s.Watchdog = -1 }, "watchdog"},
		{"bad fault plan", func(s *Spec) { s.Faults = "explode=1" }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Default()
			s.Matrix = "lap2d:8x8"
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
		})
	}
}

func TestValidateAccepts(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"unfused ablation solver", func(s *Spec) { s.Solver = "cg-unfused" }},
		{"auto format", func(s *Spec) { s.Format = "auto" }},
		{"rand rhs", func(s *Spec) { s.RHS = "rand:42" }},
		{"ones rhs", func(s *Spec) { s.RHS = "ones" }},
		{"mtx path unchecked until load", func(s *Spec) { s.Matrix = "does-not-exist.mtx" }},
		{"resilient with replacement", func(s *Spec) { s.CheckpointEvery = 5; s.ReplaceEvery = 10 }},
		{"fault plan", func(s *Spec) { s.Faults = "panic=0.01,seed=1" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Default()
			s.Matrix = "lap2d:8x8"
			tc.mut(&s)
			if err := s.Validate(); err != nil {
				t.Fatalf("rejected: %v", err)
			}
		})
	}
}

func TestBuildRHSDeterministic(t *testing.T) {
	a, err := LoadMatrix("lap2d:6x6")
	if err != nil {
		t.Fatal(err)
	}
	s := Default()
	s.RHS = "rand:7"
	b1 := s.BuildRHS(a, 36)
	b2 := s.BuildRHS(a, 36)
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("rand rhs not deterministic at %d: %g vs %g", i, b1[i], b2[i])
		}
	}
}
