// Package machine models the hardware that the paper's experiments ran on.
//
// The reproduction has no Lassen supercomputer, no V100 GPUs, and no
// InfiniBand fabric, so per the substitution rule every experiment runs
// against a parametric machine model: a cluster of nodes, each with a
// fixed number of accelerators, connected by a network with finite
// bandwidth and latency. Kernel costs use a roofline (bytes / bandwidth)
// model, which is accurate to first order for Krylov iterations on GPUs —
// they are memory-bandwidth bound — and reproduces the size-scaling shapes
// of Figures 8-10.
package machine

import "fmt"

// Machine describes a cluster. All bandwidths are bytes/second and all
// times are seconds.
type Machine struct {
	// Nodes is the number of compute nodes.
	Nodes int
	// GPUsPerNode is the number of accelerators per node.
	GPUsPerNode int

	// MemBandwidth is the effective accelerator memory bandwidth
	// (bytes/s) that streaming kernels achieve.
	MemBandwidth float64
	// MemCapacity is the accelerator memory capacity in bytes.
	MemCapacity float64

	// IntraBandwidth is the accelerator-to-accelerator bandwidth within
	// one node (NVLink on Lassen).
	IntraBandwidth float64
	// IntraLatency is the latency of an intra-node transfer.
	IntraLatency float64

	// NetBandwidth is the per-node injection bandwidth into the
	// interconnect.
	NetBandwidth float64
	// NetLatency is the end-to-end latency of an inter-node message.
	NetLatency float64

	// KernelLaunch is the fixed cost of starting one compute kernel on an
	// accelerator (CUDA launch on the real machine).
	KernelLaunch float64
}

// Lassen returns a model of the Lassen supercomputer configuration used in
// the paper (Section 6.1): 4 NVIDIA V100 GPUs per node (16 GB HBM2 at
// ~900 GB/s peak, ~780 GB/s effective for streaming kernels), NVLink
// between GPUs, and InfiniBand EDR between nodes.
func Lassen(nodes int) Machine {
	return Machine{
		Nodes:          nodes,
		GPUsPerNode:    4,
		MemBandwidth:   780e9,
		MemCapacity:    16e9,
		IntraBandwidth: 60e9,
		IntraLatency:   2e-6,
		NetBandwidth:   21e9,
		NetLatency:     1.8e-6,
		KernelLaunch:   4e-6,
	}
}

// LassenCPU returns a CPU-only model of Lassen used by the Section 6.3
// load-balancing experiment, which runs on the 40 POWER9 cores per node:
// one rank per node, node-level STREAM bandwidth, negligible kernel
// launch cost.
func LassenCPU(nodes int) Machine {
	return Machine{
		Nodes:          nodes,
		GPUsPerNode:    1,
		MemBandwidth:   135e9,
		MemCapacity:    256e9,
		IntraBandwidth: 60e9,
		IntraLatency:   1e-6,
		NetBandwidth:   21e9,
		NetLatency:     1.8e-6,
		KernelLaunch:   3e-7,
	}
}

// NumProcs returns the total accelerator count.
func (m Machine) NumProcs() int { return m.Nodes * m.GPUsPerNode }

// NodeOf returns the node that hosts processor p.
func (m Machine) NodeOf(p int) int { return p / m.GPUsPerNode }

// TransferTime returns the time to move n bytes from processor src to
// processor dst, excluding any queueing for the link (which the
// discrete-event simulator models separately).
func (m Machine) TransferTime(src, dst int, n int64) float64 {
	if src == dst || n == 0 {
		return 0
	}
	if m.NodeOf(src) == m.NodeOf(dst) {
		return m.IntraLatency + float64(n)/m.IntraBandwidth
	}
	return m.NetLatency + float64(n)/m.NetBandwidth
}

// AllReduceTime returns the time for an allreduce of one scalar across all
// nodes (the dot-product synchronization cost): a binary-tree reduce and
// broadcast.
func (m Machine) AllReduceTime() float64 {
	if m.Nodes <= 1 {
		return m.IntraLatency
	}
	hops := 0
	for n := 1; n < m.Nodes; n *= 2 {
		hops++
	}
	return 2 * float64(hops) * m.NetLatency
}

func (m Machine) String() string {
	return fmt.Sprintf("machine(%d nodes x %d GPUs)", m.Nodes, m.GPUsPerNode)
}

// Bytes-per-element constants for the roofline cost model. Indices are
// stored as 64-bit integers and values as float64, matching the paper's
// double-precision experiments.
const (
	valBytes = 8
	idxBytes = 8
)

// SpMVCost returns the accelerator time for a CSR-style multiply-add over
// nnz stored entries producing rows outputs: stream the values and column
// indices, gather x, and update y. Gathered x reads are counted once per
// entry (worst case, no cache reuse) scaled by a locality factor typical
// of stencil matrices.
func (m Machine) SpMVCost(nnz, rows int64) float64 {
	const gatherReuse = 0.35                    // fraction of x gathers that miss cache for banded matrices
	bytes := float64(nnz)*(valBytes+idxBytes) + // A values + column indices
		float64(nnz)*valBytes*gatherReuse + // x gathers
		float64(rows)*(idxBytes+2*valBytes) // rowptr + y read-modify-write
	return bytes / m.MemBandwidth
}

// Blas1Cost returns the accelerator time for a streaming vector kernel
// touching the given total number of float64 elements (reads plus writes).
func (m Machine) Blas1Cost(elems int64) float64 {
	return float64(elems) * valBytes / m.MemBandwidth
}

// AxpyCost returns the time for y ← y + αx over n elements (2 reads, 1 write).
func (m Machine) AxpyCost(n int64) float64 { return m.Blas1Cost(3 * n) }

// DotCost returns the local time for a dot product over n elements (2 reads).
func (m Machine) DotCost(n int64) float64 { return m.Blas1Cost(2 * n) }

// CopyCost returns the time for dst ← src over n elements (1 read, 1 write).
func (m Machine) CopyCost(n int64) float64 { return m.Blas1Cost(2 * n) }

// ScalCost returns the time for x ← αx over n elements (1 read, 1 write).
func (m Machine) ScalCost(n int64) float64 { return m.Blas1Cost(2 * n) }

// VectorBytes returns the size in bytes of an n-element vector piece,
// used to size halo-exchange transfers.
func VectorBytes(n int64) int64 { return n * valBytes }
