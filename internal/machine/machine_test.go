package machine

import (
	"testing"
	"testing/quick"
)

func TestLassenShape(t *testing.T) {
	m := Lassen(16)
	if m.NumProcs() != 64 {
		t.Fatalf("NumProcs = %d, want 64", m.NumProcs())
	}
	if m.NodeOf(0) != 0 || m.NodeOf(3) != 0 || m.NodeOf(4) != 1 || m.NodeOf(63) != 15 {
		t.Fatal("NodeOf mapping wrong")
	}
	if m.String() == "" {
		t.Fatal("String empty")
	}
}

func TestTransferTime(t *testing.T) {
	m := Lassen(2)
	if got := m.TransferTime(0, 0, 1<<20); got != 0 {
		t.Errorf("same-proc transfer = %g", got)
	}
	if got := m.TransferTime(0, 1, 0); got != 0 {
		t.Errorf("zero-byte transfer = %g", got)
	}
	intra := m.TransferTime(0, 1, 1<<20)
	inter := m.TransferTime(0, 4, 1<<20)
	if intra <= 0 || inter <= 0 {
		t.Fatal("transfers must take time")
	}
	if inter <= intra {
		t.Errorf("inter-node (%g) should be slower than intra-node (%g)", inter, intra)
	}
}

func TestTransferTimeScalesWithBytes(t *testing.T) {
	m := Lassen(2)
	small := m.TransferTime(0, 4, 1<<10)
	big := m.TransferTime(0, 4, 1<<30)
	if big <= small {
		t.Fatal("more bytes must take longer")
	}
	// For large messages the bandwidth term dominates: doubling bytes
	// roughly doubles the time.
	t1 := m.TransferTime(0, 4, 1<<30)
	t2 := m.TransferTime(0, 4, 1<<31)
	if ratio := t2 / t1; ratio < 1.9 || ratio > 2.1 {
		t.Errorf("large-message scaling ratio = %g, want ~2", ratio)
	}
}

func TestAllReduceGrowsWithNodes(t *testing.T) {
	prev := 0.0
	for _, n := range []int{1, 2, 8, 64, 256} {
		cur := Lassen(n).AllReduceTime()
		if cur < prev {
			t.Errorf("allreduce(%d nodes) = %g < previous %g", n, cur, prev)
		}
		prev = cur
	}
}

func TestCostModelMonotonicity(t *testing.T) {
	m := Lassen(1)
	f := func(a, b uint32) bool {
		n1, n2 := int64(a%1e6)+1, int64(b%1e6)+1
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		return m.SpMVCost(3*n1, n1) <= m.SpMVCost(3*n2, n2) &&
			m.AxpyCost(n1) <= m.AxpyCost(n2) &&
			m.DotCost(n1) <= m.DotCost(n2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelRelativeShape(t *testing.T) {
	m := Lassen(1)
	n := int64(1 << 20)
	// SpMV with ~5 nnz/row must cost more than one axpy on the same vector.
	if m.SpMVCost(5*n, n) <= m.AxpyCost(n) {
		t.Error("SpMV should dominate axpy")
	}
	// Dot is cheaper than axpy (2 streams vs 3).
	if m.DotCost(n) >= m.AxpyCost(n) {
		t.Error("dot should be cheaper than axpy")
	}
	// Costs are strictly positive.
	if m.CopyCost(1) <= 0 || m.ScalCost(1) <= 0 || m.Blas1Cost(1) <= 0 {
		t.Error("costs must be positive")
	}
}

func TestVectorBytes(t *testing.T) {
	if VectorBytes(100) != 800 {
		t.Fatalf("VectorBytes(100) = %d", VectorBytes(100))
	}
}
