package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// buildSegment encodes records into raw segment bytes and returns them
// with the end offset of each record — ground truth for corruption
// tests.
func buildSegment(records [][]byte) (raw []byte, ends []int) {
	var buf bytes.Buffer
	for _, r := range records {
		var hdr [headerBytes]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(r)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(r, castagnoli))
		buf.Write(hdr[:])
		buf.Write(r)
		ends = append(ends, buf.Len())
	}
	return buf.Bytes(), ends
}

// FuzzRecover throws arbitrary bytes at recovery as a segment file.
// Whatever the input — truncated tails, torn headers, flipped bits,
// hostile length fields — Open must not panic, must recover only
// checksum-valid records, and must leave a log that accepts appends
// and replays them back intact after a reopen.
func FuzzRecover(f *testing.F) {
	valid, _ := buildSegment([][]byte{[]byte("alpha"), []byte("bravo-bravo"), []byte("")})
	f.Add(valid)                   // intact log
	f.Add(valid[:len(valid)-1])    // torn payload
	f.Add(valid[:len(valid)-12])   // torn mid-record
	f.Add(valid[:3])               // torn header
	f.Add([]byte{})                // empty segment
	f.Add(bytes.Repeat([]byte{0xFF}, 64)) // hostile length fields
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x10 // bit flip inside the first payload
	f.Add(flipped)
	long := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(long[0:4], MaxRecordBytes+7) // length past cap
	f.Add(long)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("recovery returned an error on corrupt input (must truncate instead): %v", err)
		}
		var recovered [][]byte
		if err := l.Replay(func(p []byte) error {
			recovered = append(recovered, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("replay after recovery: %v", err)
		}
		// Every recovered record must checksum-verify against the raw
		// input at its claimed position: recovery may only ever surface a
		// prefix of the original byte stream, bit-for-bit.
		off := 0
		for i, r := range recovered {
			if off+headerBytes+len(r) > len(data) {
				t.Fatalf("record %d extends past the input", i)
			}
			if int(binary.LittleEndian.Uint32(data[off:off+4])) != len(r) {
				t.Fatalf("record %d length disagrees with input bytes", i)
			}
			if !bytes.Equal(data[off+headerBytes:off+headerBytes+len(r)], r) {
				t.Fatalf("record %d payload altered by recovery", i)
			}
			off += headerBytes + len(r)
		}
		// The recovered log must be writable and the write durable.
		post := []byte("post-recovery-record")
		if err := l.Append(post); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		var again [][]byte
		if err := l2.Replay(func(p []byte) error {
			again = append(again, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("second replay: %v", err)
		}
		if len(again) != len(recovered)+1 || !bytes.Equal(again[len(again)-1], post) {
			t.Fatalf("reopen lost records: %d then %d", len(recovered), len(again))
		}
		for i := range recovered {
			if !bytes.Equal(again[i], recovered[i]) {
				t.Fatalf("record %d unstable across reopen", i)
			}
		}
	})
}
