// Package wal implements an append-only, segmented write-ahead log:
// the durability substrate under the job server's journal. Records are
// length-prefixed and CRC32C-checksummed, appends are fsync-batched,
// and Open recovers from a crash by truncating the log at the first
// torn or corrupt record — restart means replay, never a panic and
// never trusting bytes past the tear.
//
// On-disk layout: a directory of numbered segment files
// (wal-00000001.seg, wal-00000002.seg, …). Each record is
//
//	[4B little-endian payload length][4B CRC32C(payload)][payload]
//
// written with a single write call so a crash tears at most the final
// record. Appends go to the highest-numbered segment; when it passes
// Options.SegmentBytes it is synced, sealed, and a new segment begins.
//
// Recovery walks segments in order validating every record. The first
// record that fails — short header, length past the checksum cap or the
// file end, checksum mismatch — ends the log: the containing segment is
// truncated to the last valid byte and every later segment is
// discarded. Anything after a tear is unordered history and cannot be
// trusted (the matrixone tae/wal + replaystore recovery discipline).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

const (
	headerBytes = 8
	// MaxRecordBytes caps one record's payload. A recovered length field
	// past the cap is treated as corruption, bounding how far a flipped
	// length bit can drag the scanner.
	MaxRecordBytes = 256 << 20

	defaultSegmentBytes = 16 << 20
	segPrefix           = "wal-"
	segSuffix           = ".seg"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Options size a Log.
type Options struct {
	// SegmentBytes is the rotation threshold: an append that finds the
	// active segment at or past this size seals it and starts the next.
	// Default 16 MiB.
	SegmentBytes int64
	// FsyncEvery batches fsyncs: the file is synced after every N
	// appended records (and on rotation, Sync, and Close). 1 syncs every
	// record — strictest durability, every acknowledged record survives
	// a crash; N > 1 amortizes the sync at the cost of the newest < N
	// records on power loss. Default 1.
	FsyncEvery int
}

func (o *Options) fillDefaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.FsyncEvery < 1 {
		o.FsyncEvery = 1
	}
}

// Stats are the log's cumulative counters, snapshot via Log.Stats.
type Stats struct {
	// RecordsAppended counts records written through Append this open.
	RecordsAppended int64
	// RecordsRecovered counts valid records found by Open's recovery
	// scan — the records a Replay will deliver before new appends.
	RecordsRecovered int64
	// Truncations counts recovery truncation events: one for a torn or
	// corrupt segment tail cut back to the last valid record, and one
	// per whole later segment discarded. Each event loses an unknowable
	// number of records, so this counts cuts, not records.
	Truncations int64
	// TruncatedBytes is the total bytes those events discarded.
	TruncatedBytes int64
	// Fsyncs counts file syncs issued.
	Fsyncs int64
	// RecoveryNS is the wall-clock nanoseconds Open spent validating and
	// truncating.
	RecoveryNS int64
}

// Log is an open write-ahead log. Append, Sync, Replay, and Stats are
// safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	active    *os.File
	activeSeq uint64
	activeLen int64
	sealed    []uint64 // sealed segment sequence numbers, ascending
	sinceSync int
	stats     Stats
	closed    bool
}

// Open opens (creating if needed) the log in dir, runs recovery, and
// positions the log for appends. Corruption is not an error: a torn or
// corrupt tail is truncated away and counted in Stats; only real I/O
// failures are returned.
func Open(dir string, opts Options) (*Log, error) {
	opts.fillDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	start := time.Now()
	if err := l.recover(); err != nil {
		return nil, err
	}
	l.stats.RecoveryNS = time.Since(start).Nanoseconds()
	return l, nil
}

// segName formats the file name of segment seq.
func segName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix)
}

// listSegments returns the directory's segment sequence numbers in
// ascending order.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		var seq uint64
		if _, err := fmt.Sscanf(name, segPrefix+"%d"+segSuffix, &seq); err == nil &&
			name == segName(seq) {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// recover validates every segment in order, truncates at the first
// corruption, discards later segments, and opens the tail for appends.
func (l *Log) recover() error {
	seqs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	if len(seqs) == 0 {
		seqs = []uint64{1}
		f, err := os.OpenFile(filepath.Join(l.dir, segName(1)), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	tail := len(seqs) - 1
	for i, seq := range seqs {
		path := filepath.Join(l.dir, segName(seq))
		valid, count, scanErr := scanSegment(path, nil)
		l.stats.RecordsRecovered += count
		if scanErr == nil {
			continue
		}
		var ce *corruptionError
		if !errors.As(scanErr, &ce) {
			return scanErr // real I/O failure, not a tear to recover from
		}
		// First tear: cut this segment back to its last valid record and
		// discard everything after it — later segments are history past
		// the tear and cannot be trusted.
		info, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if info.Size() > valid {
			if err := os.Truncate(path, valid); err != nil {
				return fmt.Errorf("wal: truncate torn segment: %w", err)
			}
			l.stats.Truncations++
			l.stats.TruncatedBytes += info.Size() - valid
		}
		for _, later := range seqs[i+1:] {
			lp := filepath.Join(l.dir, segName(later))
			if info, err := os.Stat(lp); err == nil {
				l.stats.TruncatedBytes += info.Size()
			}
			if err := os.Remove(lp); err != nil {
				return fmt.Errorf("wal: discard segment past tear: %w", err)
			}
			l.stats.Truncations++
		}
		tail = i
		break
	}
	l.activeSeq = seqs[tail]
	l.sealed = append([]uint64(nil), seqs[:tail]...)
	path := filepath.Join(l.dir, segName(l.activeSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.active = f
	l.activeLen = info.Size()
	return nil
}

// corruptionError marks a scan stop that recovery handles by truncation
// (as opposed to an I/O error it must surface).
type corruptionError struct{ reason string }

func (e *corruptionError) Error() string { return "wal: " + e.reason }

// scanSegment validates path record by record, invoking fn (when
// non-nil) with each valid payload. It returns the byte offset of the
// end of the last valid record, the valid record count, and a
// *corruptionError when the scan stopped early at a torn or corrupt
// record (a callback error or real I/O error is returned as-is).
func scanSegment(path string, fn func([]byte) error) (validEnd int64, count int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [headerBytes]byte
	for {
		_, err := io.ReadFull(br, hdr[:])
		if err == io.EOF {
			return validEnd, count, nil // clean record boundary
		}
		if err == io.ErrUnexpectedEOF {
			return validEnd, count, &corruptionError{"torn record header"}
		}
		if err != nil {
			return validEnd, count, fmt.Errorf("wal: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxRecordBytes {
			return validEnd, count, &corruptionError{"record length past cap"}
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return validEnd, count, &corruptionError{"torn record payload"}
			}
			return validEnd, count, fmt.Errorf("wal: %w", err)
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return validEnd, count, &corruptionError{"record checksum mismatch"}
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return validEnd, count, err
			}
		}
		validEnd += headerBytes + int64(length)
		count++
	}
}

// Append writes one record. The payload is durable once the batched
// fsync covering it has run (every record when FsyncEvery is 1).
func (l *Log) Append(payload []byte) error {
	if int64(len(payload)) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds cap %d", len(payload), int64(MaxRecordBytes))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.activeLen >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	rec := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	copy(rec[headerBytes:], payload)
	// One write call: a crash mid-append tears at most this record, which
	// recovery truncates away.
	if _, err := l.active.Write(rec); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.activeLen += int64(len(rec))
	l.stats.RecordsAppended++
	l.sinceSync++
	if l.sinceSync >= l.opts.FsyncEvery {
		return l.syncLocked()
	}
	return nil
}

// rotateLocked seals the active segment (synced so sealed history is
// always durable) and opens the next.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.sealed = append(l.sealed, l.activeSeq)
	l.activeSeq++
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.activeSeq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.active = f
	l.activeLen = 0
	return nil
}

func (l *Log) syncLocked() error {
	if l.sinceSync == 0 {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.stats.Fsyncs++
	l.sinceSync = 0
	return nil
}

// Sync forces any batched appends to durable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// Replay delivers every record currently in the log, oldest first, to
// fn. It re-reads and re-validates from disk; a record corrupted
// behind the log's back stops replay with an error. Appends made
// before Replay returns are included; fn must not call back into the
// log.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// Appends are unbuffered writes, so disk is current; no flush needed.
	for _, seq := range append(append([]uint64(nil), l.sealed...), l.activeSeq) {
		if _, _, err := scanSegment(filepath.Join(l.dir, segName(seq)), fn); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Segments returns how many segment files the log currently spans.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sealed) + 1
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close syncs and closes the log. Further operations fail with
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	return err
}
