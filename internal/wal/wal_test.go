package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// replayAll collects every record in the log.
func replayAll(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var recs [][]byte
	if err := l.Replay(func(p []byte) error {
		recs = append(recs, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma-gamma"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got := replayAll(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch: %q vs %q", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery must find every record, no truncation.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st := l2.Stats()
	if st.RecordsRecovered != int64(len(want)) || st.Truncations != 0 {
		t.Fatalf("recovered %d records with %d truncations, want %d and 0",
			st.RecordsRecovered, st.Truncations, len(want))
	}
	got = replayAll(t, l2)
	if len(got) != len(want) || !bytes.Equal(got[3], want[3]) {
		t.Fatalf("post-reopen replay mismatch: %d records", len(got))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, FsyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	rec := bytes.Repeat([]byte{7}, 100)
	const n = 20
	for i := 0; i < n; i++ {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if segs := l.Segments(); segs < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", segs)
	}
	if got := replayAll(t, l); len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}
	l.Close()

	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.RecordsRecovered != n || st.Truncations != 0 {
		t.Fatalf("recovered %d/%d truncations %d", st.RecordsRecovered, n, st.Truncations)
	}
}

func TestFsyncBatching(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FsyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 8; i++ {
		if err := l.Append([]byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Fsyncs != 2 {
		t.Fatalf("8 appends at FsyncEvery=4 issued %d fsyncs, want 2", st.Fsyncs)
	}
	if err := l.Append([]byte("r")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Fsyncs != 3 {
		t.Fatalf("explicit Sync of a pending batch issued %d fsyncs total, want 3", st.Fsyncs)
	}
	// Sync with nothing pending is free.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Fsyncs != 3 {
		t.Fatalf("idle Sync issued an fsync (total %d)", st.Fsyncs)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	huge := make([]byte, MaxRecordBytes+1)
	if err := l.Append(huge); err == nil {
		t.Fatal("append past MaxRecordBytes succeeded")
	}
}

// TestRecoveryTruncatesTornTail cuts a valid log at every possible byte
// length and proves recovery always lands on the longest valid record
// prefix — and that the log accepts appends afterwards.
func TestRecoveryTruncatesTornTail(t *testing.T) {
	records := [][]byte{
		[]byte("first"), []byte("second-record"), []byte(""),
		bytes.Repeat([]byte{0x5C}, 64), []byte("tail"),
	}
	full, ends := buildSegment(records)

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		seg := filepath.Join(dir, segName(1))
		if err := os.WriteFile(seg, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		wantN := 0
		for _, end := range ends {
			if end <= cut {
				wantN++
			}
		}
		got := replayAll(t, l)
		if len(got) != wantN {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(got), wantN)
		}
		for i := 0; i < wantN; i++ {
			if !bytes.Equal(got[i], records[i]) {
				t.Fatalf("cut=%d: record %d corrupted by recovery", cut, i)
			}
		}
		// Partial bytes past the last valid record must be counted.
		if st := l.Stats(); cut > endOf(ends, wantN) && st.Truncations == 0 {
			t.Fatalf("cut=%d: torn tail not counted as truncation", cut)
		}
		// The recovered log must keep working: append, close, reopen.
		if err := l.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		l.Close()
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		got = replayAll(t, l2)
		if len(got) != wantN+1 || !bytes.Equal(got[wantN], []byte("post-recovery")) {
			t.Fatalf("cut=%d: post-recovery append lost (got %d records)", cut, len(got))
		}
		l2.Close()
	}
}

// endOf returns the end offset of the first n records (0 for n == 0).
func endOf(ends []int, n int) int {
	if n == 0 {
		return 0
	}
	return ends[n-1]
}

// TestRecoveryBitFlips flips every bit of a small log, one at a time:
// recovery must always yield exactly the records before the flipped
// one, never panic, and never surface altered payload bytes.
func TestRecoveryBitFlips(t *testing.T) {
	records := [][]byte{[]byte("aaaa"), []byte("bbbbbbbb"), []byte("cc"), []byte("dddddd")}
	full, ends := buildSegment(records)

	for pos := 0; pos < len(full); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), full...)
			mut[pos] ^= 1 << bit
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, segName(1)), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("pos=%d bit=%d: open: %v", pos, bit, err)
			}
			// The record containing the flipped byte and everything after
			// it must be dropped; everything before survives intact.
			wantN := 0
			for _, end := range ends {
				if pos >= end {
					wantN++
				}
			}
			got := replayAll(t, l)
			if len(got) != wantN {
				t.Fatalf("pos=%d bit=%d: recovered %d records, want %d", pos, bit, len(got), wantN)
			}
			for i := 0; i < wantN; i++ {
				if !bytes.Equal(got[i], records[i]) {
					t.Fatalf("pos=%d bit=%d: surviving record %d altered", pos, bit, i)
				}
			}
			if st := l.Stats(); st.Truncations == 0 {
				t.Fatalf("pos=%d bit=%d: bit flip not counted as truncation", pos, bit)
			}
			l.Close()
		}
	}
}

// TestRecoveryDiscardsSegmentsPastTear corrupts a middle segment:
// everything after the first tear — including whole, internally valid
// later segments — is unordered history and must be discarded.
func TestRecoveryDiscardsSegmentsPastTear(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128, FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 12; i++ {
		rec := bytes.Repeat([]byte{byte('a' + i)}, 40)
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Segments()
	if segs < 4 {
		t.Fatalf("need >= 4 segments for the scenario, got %d", segs)
	}
	l.Close()

	// Flip a byte in the middle of segment 2.
	seg2 := filepath.Join(dir, segName(2))
	raw, err := os.ReadFile(seg2)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(seg2, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	// Records from segment 1 plus segment 2's prefix survive; nothing
	// from segments 3+.
	perSeg := 0
	for perSeg*48 < 128 { // 40B payload + 8B header
		perSeg++
	}
	if len(got) >= len(want) || len(got) == 0 {
		t.Fatalf("recovered %d of %d records past a mid-log tear", len(got), len(want))
	}
	for i, r := range got {
		if !bytes.Equal(r, want[i]) {
			t.Fatalf("record %d altered after mid-log tear recovery", i)
		}
	}
	st := l2.Stats()
	if st.Truncations < int64(segs-2) {
		t.Fatalf("discarding %d later segments counted only %d truncations", segs-2, st.Truncations)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(uint64(segs)))); !os.IsNotExist(err) {
		t.Fatalf("segment past the tear still on disk (stat err %v)", err)
	}
	// Appends continue in the truncated segment and survive reopen.
	if err := l2.Append([]byte("afterwards")); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 4096, FsyncEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, each = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := l.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := replayAll(t, l); len(got) != goroutines*each {
		t.Fatalf("replayed %d records, want %d", len(got), goroutines*each)
	}
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.RecordsRecovered != goroutines*each || st.Truncations != 0 {
		t.Fatalf("recovered %d with %d truncations", st.RecordsRecovered, st.Truncations)
	}
}
