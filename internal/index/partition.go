package index

import "fmt"

// A Partition of an index space I is a function from a finite color space
// C = {0, ..., NumColors-1} to subsets of I (Section 3.1). Unlike the
// set-theoretic notion, a Partition need not be complete (cover I) nor
// disjoint (assign each point one color); KDRSolvers projections routinely
// produce aliased partitions.
type Partition struct {
	// Space is the partitioned index space.
	Space Space
	// pieces[c] holds the points assigned color c.
	pieces []IntervalSet
}

// NewPartition assembles a partition from explicit pieces. The pieces
// slice is retained by the partition.
func NewPartition(space Space, pieces []IntervalSet) Partition {
	return Partition{Space: space, pieces: pieces}
}

// EqualPartition splits a space into n pieces of nearly equal size,
// assigning contiguous runs of points to consecutive colors. It is the
// canonical row-block partition when applied to a range space.
func EqualPartition(space Space, n int) Partition {
	if n <= 0 {
		panic("index: EqualPartition requires n > 0")
	}
	total := space.Size()
	pieces := make([]IntervalSet, n)
	// Walk the space's intervals, peeling off quota-sized chunks.
	quota := func(c int) int64 {
		// Colors [0, total%n) receive one extra point.
		q := total / int64(n)
		if int64(c) < total%int64(n) {
			q++
		}
		return q
	}
	c := 0
	remaining := quota(0)
	for _, iv := range space.Set.Intervals() {
		lo := iv.Lo
		for lo <= iv.Hi {
			if remaining == 0 {
				c++
				remaining = quota(c)
				continue
			}
			take := min64(remaining, iv.Hi-lo+1)
			pieces[c].AddInterval(Interval{lo, lo + take - 1})
			lo += take
			remaining -= take
		}
	}
	return Partition{Space: space, pieces: pieces}
}

// NumColors returns the size of the color space.
func (p Partition) NumColors() int { return len(p.pieces) }

// Piece returns the subset assigned color c. The returned set must not be
// modified.
func (p Partition) Piece(c int) IntervalSet {
	return p.pieces[c]
}

// Pieces returns all pieces in color order. The returned slice must not be
// modified.
func (p Partition) Pieces() []IntervalSet { return p.pieces }

// Complete reports whether every point of the space has at least one color.
func (p Partition) Complete() bool {
	var u IntervalSet
	for _, pc := range p.pieces {
		u = u.Union(pc)
	}
	return u.ContainsSet(p.Space.Set)
}

// Disjoint reports whether no point of the space has more than one color.
func (p Partition) Disjoint() bool {
	var u IntervalSet
	for _, pc := range p.pieces {
		if u.Overlaps(pc) {
			return false
		}
		u = u.Union(pc)
	}
	return true
}

// ColorOf returns the lowest color whose piece contains p, or -1 if the
// point is unassigned. Intended for tests and small partitions.
func (p Partition) ColorOf(pt int64) int {
	for c, pc := range p.pieces {
		if pc.Contains(pt) {
			return c
		}
	}
	return -1
}

// Union returns the union of all pieces.
func (p Partition) Union() IntervalSet {
	var u IntervalSet
	for _, pc := range p.pieces {
		u = u.Union(pc)
	}
	return u
}

// Restrict returns a partition with each piece intersected with the
// underlying space, discarding points that projections may have produced
// outside it.
func (p Partition) Restrict() Partition {
	pieces := make([]IntervalSet, len(p.pieces))
	for c, pc := range p.pieces {
		pieces[c] = pc.Intersect(p.Space.Set)
	}
	return Partition{Space: p.Space, pieces: pieces}
}

func (p Partition) String() string {
	return fmt.Sprintf("Partition(%s, %d colors)", p.Space.Name, len(p.pieces))
}
