package index

import (
	"fmt"
	"sort"
	"strings"
)

// Interval is an inclusive range [Lo, Hi] of int64 coordinates.
// An Interval with Lo > Hi is empty.
type Interval struct {
	Lo, Hi int64
}

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Size returns the number of points in the interval.
func (iv Interval) Size() int64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// Contains reports whether p lies in the interval.
func (iv Interval) Contains(p int64) bool { return iv.Lo <= p && p <= iv.Hi }

// Intersect returns the intersection of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{Lo: max64(iv.Lo, o.Lo), Hi: min64(iv.Hi, o.Hi)}
}

// Overlaps reports whether the two intervals share at least one point.
func (iv Interval) Overlaps(o Interval) bool { return !iv.Intersect(o).Empty() }

func (iv Interval) String() string {
	if iv.Empty() {
		return "[]"
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}

// An IntervalSet is a set of int64 coordinates stored as sorted,
// disjoint, non-adjacent intervals. The zero value is the empty set.
//
// IntervalSet is the universal currency of the framework: index spaces,
// partition pieces, and projection results are all IntervalSets. All
// operations leave their operands unmodified unless documented otherwise.
type IntervalSet struct {
	ivs []Interval
}

// NewIntervalSet builds a set from arbitrary (possibly overlapping,
// unordered) intervals.
func NewIntervalSet(ivs ...Interval) IntervalSet {
	var s IntervalSet
	for _, iv := range ivs {
		s.AddInterval(iv)
	}
	return s
}

// Span returns the set containing exactly [lo, hi].
func Span(lo, hi int64) IntervalSet {
	if lo > hi {
		return IntervalSet{}
	}
	return IntervalSet{ivs: []Interval{{lo, hi}}}
}

// FromPoints builds a set from arbitrary points (duplicates allowed).
// The input slice is not modified.
func FromPoints(points []int64) IntervalSet {
	if len(points) == 0 {
		return IntervalSet{}
	}
	ps := make([]int64, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	var s IntervalSet
	lo, hi := ps[0], ps[0]
	for _, p := range ps[1:] {
		if p == hi || p == hi+1 {
			hi = p
			continue
		}
		s.ivs = append(s.ivs, Interval{lo, hi})
		lo, hi = p, p
	}
	s.ivs = append(s.ivs, Interval{lo, hi})
	return s
}

// Empty reports whether the set contains no points.
func (s IntervalSet) Empty() bool { return len(s.ivs) == 0 }

// Size returns the number of points in the set.
func (s IntervalSet) Size() int64 {
	var n int64
	for _, iv := range s.ivs {
		n += iv.Size()
	}
	return n
}

// NumIntervals returns the number of maximal runs in the set.
func (s IntervalSet) NumIntervals() int { return len(s.ivs) }

// Intervals returns the underlying sorted disjoint intervals.
// The returned slice must not be modified.
func (s IntervalSet) Intervals() []Interval { return s.ivs }

// Bounds returns the smallest interval covering the set.
// It returns an empty interval for the empty set.
func (s IntervalSet) Bounds() Interval {
	if s.Empty() {
		return Interval{Lo: 0, Hi: -1}
	}
	return Interval{Lo: s.ivs[0].Lo, Hi: s.ivs[len(s.ivs)-1].Hi}
}

// Contains reports whether p is in the set.
func (s IntervalSet) Contains(p int64) bool {
	// Binary search for the first interval with Hi >= p.
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= p })
	return i < len(s.ivs) && s.ivs[i].Contains(p)
}

// AddInterval inserts [iv.Lo, iv.Hi] into the set in place, merging
// overlapping or adjacent intervals.
func (s *IntervalSet) AddInterval(iv Interval) {
	if iv.Empty() {
		return
	}
	// Fast path: appending past the end.
	if n := len(s.ivs); n == 0 || s.ivs[n-1].Hi+1 < iv.Lo {
		s.ivs = append(s.ivs, iv)
		return
	}
	// Fast path: extending the last interval.
	if n := len(s.ivs); s.ivs[n-1].Lo <= iv.Lo {
		if iv.Hi > s.ivs[n-1].Hi {
			s.ivs[n-1].Hi = iv.Hi
		}
		if iv.Lo >= s.ivs[n-1].Lo {
			return
		}
	}
	// General path: find the run of intervals that merge with iv.
	lo := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi+1 >= iv.Lo })
	hi := lo
	merged := iv
	for hi < len(s.ivs) && s.ivs[hi].Lo <= merged.Hi+1 {
		if s.ivs[hi].Lo < merged.Lo {
			merged.Lo = s.ivs[hi].Lo
		}
		if s.ivs[hi].Hi > merged.Hi {
			merged.Hi = s.ivs[hi].Hi
		}
		hi++
	}
	out := make([]Interval, 0, len(s.ivs)-(hi-lo)+1)
	out = append(out, s.ivs[:lo]...)
	out = append(out, merged)
	out = append(out, s.ivs[hi:]...)
	s.ivs = out
}

// Add inserts a single point into the set in place.
func (s *IntervalSet) Add(p int64) { s.AddInterval(Interval{p, p}) }

// Union returns the union of s and o.
func (s IntervalSet) Union(o IntervalSet) IntervalSet {
	if s.Empty() {
		return o.Clone()
	}
	if o.Empty() {
		return s.Clone()
	}
	out := IntervalSet{ivs: make([]Interval, 0, len(s.ivs)+len(o.ivs))}
	i, j := 0, 0
	for i < len(s.ivs) || j < len(o.ivs) {
		var next Interval
		switch {
		case i == len(s.ivs):
			next, j = o.ivs[j], j+1
		case j == len(o.ivs):
			next, i = s.ivs[i], i+1
		case s.ivs[i].Lo <= o.ivs[j].Lo:
			next, i = s.ivs[i], i+1
		default:
			next, j = o.ivs[j], j+1
		}
		if n := len(out.ivs); n > 0 && out.ivs[n-1].Hi+1 >= next.Lo {
			if next.Hi > out.ivs[n-1].Hi {
				out.ivs[n-1].Hi = next.Hi
			}
		} else {
			out.ivs = append(out.ivs, next)
		}
	}
	return out
}

// Intersect returns the intersection of s and o.
func (s IntervalSet) Intersect(o IntervalSet) IntervalSet {
	var out IntervalSet
	i, j := 0, 0
	for i < len(s.ivs) && j < len(o.ivs) {
		iv := s.ivs[i].Intersect(o.ivs[j])
		if !iv.Empty() {
			out.ivs = append(out.ivs, iv)
		}
		if s.ivs[i].Hi < o.ivs[j].Hi {
			i++
		} else {
			j++
		}
	}
	return out
}

// Subtract returns the set difference s \ o.
func (s IntervalSet) Subtract(o IntervalSet) IntervalSet {
	var out IntervalSet
	j := 0
	for _, iv := range s.ivs {
		lo := iv.Lo
		for j < len(o.ivs) && o.ivs[j].Hi < lo {
			j++
		}
		k := j
		for k < len(o.ivs) && o.ivs[k].Lo <= iv.Hi {
			if o.ivs[k].Lo > lo {
				out.ivs = append(out.ivs, Interval{lo, o.ivs[k].Lo - 1})
			}
			if o.ivs[k].Hi+1 > lo {
				lo = o.ivs[k].Hi + 1
			}
			k++
		}
		if lo <= iv.Hi {
			out.ivs = append(out.ivs, Interval{lo, iv.Hi})
		}
	}
	return out
}

// SubtractInto computes the set difference s \ o like Subtract, but
// appends the result intervals to buf (reset to length zero first)
// instead of allocating, growing buf only when its capacity is too
// small. It returns the result set, whose storage aliases the returned
// buffer; callers own both and must copy the intervals out (or stop
// using the buffer) before the next SubtractInto call with the same
// buffer. s and o are never modified, so s may itself be backed by a
// previous result. This is the hot-path form used by the task runtime's
// writer-shadow updates, which run once per launch reference.
func (s IntervalSet) SubtractInto(o IntervalSet, buf []Interval) (IntervalSet, []Interval) {
	out := buf[:0]
	j := 0
	for _, iv := range s.ivs {
		lo := iv.Lo
		for j < len(o.ivs) && o.ivs[j].Hi < lo {
			j++
		}
		k := j
		for k < len(o.ivs) && o.ivs[k].Lo <= iv.Hi {
			if o.ivs[k].Lo > lo {
				out = append(out, Interval{lo, o.ivs[k].Lo - 1})
			}
			if o.ivs[k].Hi+1 > lo {
				lo = o.ivs[k].Hi + 1
			}
			k++
		}
		if lo <= iv.Hi {
			out = append(out, Interval{lo, iv.Hi})
		}
	}
	if len(out) == 0 {
		return IntervalSet{}, out
	}
	return IntervalSet{ivs: out}, out
}

// WrapIntervals adopts ivs (retained, not copied) as an IntervalSet.
// The intervals must already be sorted, disjoint, non-adjacent, and
// non-empty — the canonical form every IntervalSet operation produces.
// It exists so allocation-conscious callers can re-wrap interval
// storage they manage themselves; general assembly should use
// NewIntervalSet.
func WrapIntervals(ivs []Interval) IntervalSet {
	if len(ivs) == 0 {
		return IntervalSet{}
	}
	return IntervalSet{ivs: ivs}
}

// Overlaps reports whether s and o share at least one point. It is
// equivalent to !s.Intersect(o).Empty() but does not allocate.
func (s IntervalSet) Overlaps(o IntervalSet) bool {
	i, j := 0, 0
	for i < len(s.ivs) && j < len(o.ivs) {
		if s.ivs[i].Overlaps(o.ivs[j]) {
			return true
		}
		if s.ivs[i].Hi < o.ivs[j].Hi {
			i++
		} else {
			j++
		}
	}
	return false
}

// Equal reports whether s and o contain exactly the same points.
func (s IntervalSet) Equal(o IntervalSet) bool {
	if len(s.ivs) != len(o.ivs) {
		return false
	}
	for i, iv := range s.ivs {
		if iv != o.ivs[i] {
			return false
		}
	}
	return true
}

// ContainsSet reports whether every point of o is in s.
func (s IntervalSet) ContainsSet(o IntervalSet) bool {
	return o.Subtract(s).Empty()
}

// Clone returns a deep copy of the set.
func (s IntervalSet) Clone() IntervalSet {
	if s.Empty() {
		return IntervalSet{}
	}
	ivs := make([]Interval, len(s.ivs))
	copy(ivs, s.ivs)
	return IntervalSet{ivs: ivs}
}

// Each calls fn for every point in the set in increasing order.
func (s IntervalSet) Each(fn func(p int64)) {
	for _, iv := range s.ivs {
		for p := iv.Lo; p <= iv.Hi; p++ {
			fn(p)
		}
	}
}

// EachInterval calls fn for every maximal interval in increasing order.
func (s IntervalSet) EachInterval(fn func(iv Interval)) {
	for _, iv := range s.ivs {
		fn(iv)
	}
}

// Points materializes the set as a sorted point slice. Intended for tests
// and small sets.
func (s IntervalSet) Points() []int64 {
	out := make([]int64, 0, s.Size())
	s.Each(func(p int64) { out = append(out, p) })
	return out
}

func (s IntervalSet) String() string {
	if s.Empty() {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, iv := range s.ivs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(iv.String())
	}
	b.WriteByte('}')
	return b.String()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
