package index

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEqualPartition(t *testing.T) {
	sp := NewSpace("I", 10)
	p := EqualPartition(sp, 3)
	if p.NumColors() != 3 {
		t.Fatalf("NumColors = %d", p.NumColors())
	}
	sizes := []int64{4, 3, 3}
	for c, want := range sizes {
		if got := p.Piece(c).Size(); got != want {
			t.Errorf("piece %d size = %d, want %d", c, got, want)
		}
	}
	if !p.Complete() || !p.Disjoint() {
		t.Error("EqualPartition must be complete and disjoint")
	}
	// Pieces must be contiguous and ordered.
	if !p.Piece(0).Equal(Span(0, 3)) || !p.Piece(1).Equal(Span(4, 6)) || !p.Piece(2).Equal(Span(7, 9)) {
		t.Errorf("pieces = %v %v %v", p.Piece(0), p.Piece(1), p.Piece(2))
	}
}

func TestEqualPartitionMoreColorsThanPoints(t *testing.T) {
	sp := NewSpace("I", 2)
	p := EqualPartition(sp, 5)
	if !p.Complete() || !p.Disjoint() {
		t.Fatal("partition must remain complete and disjoint")
	}
	nonEmpty := 0
	for c := 0; c < p.NumColors(); c++ {
		if !p.Piece(c).Empty() {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Fatalf("nonEmpty pieces = %d, want 2", nonEmpty)
	}
}

func TestEqualPartitionSparseSpace(t *testing.T) {
	set := NewIntervalSet(Interval{0, 3}, Interval{10, 13}, Interval{20, 21})
	sp := NewSparseSpace("S", set)
	p := EqualPartition(sp, 4)
	if !p.Complete() || !p.Disjoint() {
		t.Fatal("sparse equal partition must be complete and disjoint")
	}
	var total int64
	for c := 0; c < 4; c++ {
		total += p.Piece(c).Size()
	}
	if total != set.Size() {
		t.Fatalf("total = %d, want %d", total, set.Size())
	}
}

func TestPartitionPredicates(t *testing.T) {
	sp := NewSpace("I", 10)
	// Aliased, incomplete partition.
	p := NewPartition(sp, []IntervalSet{Span(0, 5), Span(4, 8)})
	if p.Complete() {
		t.Error("partition missing point 9 should not be complete")
	}
	if p.Disjoint() {
		t.Error("partition with overlap [4,5] should not be disjoint")
	}
	if got := p.ColorOf(4); got != 0 {
		t.Errorf("ColorOf(4) = %d, want 0 (lowest color)", got)
	}
	if got := p.ColorOf(9); got != -1 {
		t.Errorf("ColorOf(9) = %d, want -1", got)
	}
	if !p.Union().Equal(Span(0, 8)) {
		t.Errorf("Union = %v", p.Union())
	}
}

func TestPartitionRestrict(t *testing.T) {
	sp := NewSparseSpace("S", Span(0, 4))
	p := NewPartition(sp, []IntervalSet{Span(0, 10)})
	r := p.Restrict()
	if !r.Piece(0).Equal(Span(0, 4)) {
		t.Fatalf("Restrict = %v", r.Piece(0))
	}
}

func TestQuickEqualPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Int63n(100) + 1
		colors := r.Intn(10) + 1
		p := EqualPartition(NewSpace("I", n), colors)
		if !p.Complete() || !p.Disjoint() {
			return false
		}
		// Piece sizes differ by at most one.
		minSz, maxSz := int64(1<<62), int64(0)
		for c := 0; c < colors; c++ {
			sz := p.Piece(c).Size()
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		return maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGridLinearize(t *testing.T) {
	g := NewGrid(3, 4, 5)
	if g.Size() != 60 {
		t.Fatalf("Size = %d", g.Size())
	}
	if got := g.Linearize(0, 0, 0); got != 0 {
		t.Errorf("Linearize(0,0,0) = %d", got)
	}
	if got := g.Linearize(2, 3, 4); got != 59 {
		t.Errorf("Linearize(2,3,4) = %d", got)
	}
	if got := g.Linearize(1, 2, 3); got != 1*20+2*5+3 {
		t.Errorf("Linearize(1,2,3) = %d", got)
	}
	c := g.Delinearize(33)
	if c[0] != 1 || c[1] != 2 || c[2] != 3 {
		t.Errorf("Delinearize(33) = %v", c)
	}
}

func TestGridRoundTrip(t *testing.T) {
	g := NewGrid(7, 11)
	for i := int64(0); i < g.Size(); i++ {
		c := g.Delinearize(i)
		if got := g.Linearize(c...); got != i {
			t.Fatalf("round trip %d -> %v -> %d", i, c, got)
		}
	}
}

func TestGridContains(t *testing.T) {
	g := NewGrid(4, 4)
	if !g.Contains(0, 0) || !g.Contains(3, 3) {
		t.Error("corners should be contained")
	}
	if g.Contains(4, 0) || g.Contains(0, -1) || g.Contains(1) {
		t.Error("out-of-range coords contained")
	}
}

func TestTilePartition1D(t *testing.T) {
	g := NewGrid(10)
	p := g.TilePartition("D", 3)
	if !p.Complete() || !p.Disjoint() {
		t.Fatal("1D tiles must be complete and disjoint")
	}
	if !p.Piece(0).Equal(Span(0, 3)) {
		t.Errorf("piece 0 = %v", p.Piece(0))
	}
}

func TestTilePartition2D(t *testing.T) {
	g := NewGrid(4, 6)
	p := g.TilePartition("D", 2, 3)
	if p.NumColors() != 6 {
		t.Fatalf("NumColors = %d", p.NumColors())
	}
	if !p.Complete() || !p.Disjoint() {
		t.Fatal("2D tiles must be complete and disjoint")
	}
	// Tile (0,0) covers rows 0-1, cols 0-1: points {0,1,6,7}.
	want := NewIntervalSet(Interval{0, 1}, Interval{6, 7})
	if !p.Piece(0).Equal(want) {
		t.Errorf("piece 0 = %v, want %v", p.Piece(0), want)
	}
	// Tile (1,2) covers rows 2-3, cols 4-5: points {16,17,22,23}.
	want = NewIntervalSet(Interval{16, 17}, Interval{22, 23})
	if !p.Piece(5).Equal(want) {
		t.Errorf("piece 5 = %v, want %v", p.Piece(5), want)
	}
}

func TestTilePartitionColumnStrips(t *testing.T) {
	// Column strips of a 2D grid are maximally strided.
	g := NewGrid(3, 4)
	p := g.TilePartition("D", 1, 4)
	if !p.Complete() || !p.Disjoint() {
		t.Fatal("column strips must be complete and disjoint")
	}
	want := FromPoints([]int64{1, 5, 9})
	if !p.Piece(1).Equal(want) {
		t.Errorf("piece 1 = %v, want %v", p.Piece(1), want)
	}
}

func TestQuickTilePartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nx := r.Int63n(8) + 1
		ny := r.Int63n(8) + 1
		tx := r.Intn(int(nx)) + 1
		ty := r.Intn(int(ny)) + 1
		p := NewGrid(nx, ny).TilePartition("D", tx, ty)
		return p.Complete() && p.Disjoint() && p.NumColors() == tx*ty
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceBasics(t *testing.T) {
	sp := NewSpace("D", 5)
	if sp.Size() != 5 || !sp.Contains(0) || !sp.Contains(4) || sp.Contains(5) {
		t.Fatalf("space = %v", sp)
	}
	sparse := NewSparseSpace("S", FromPoints([]int64{1, 3}))
	if sparse.Size() != 2 || sparse.Contains(2) {
		t.Fatalf("sparse space = %v", sparse)
	}
	if sp.String() == "" || sparse.String() == "" {
		t.Error("String should be non-empty")
	}
}
