package index

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{3, 7}
	if iv.Empty() {
		t.Fatal("interval [3,7] should not be empty")
	}
	if got := iv.Size(); got != 5 {
		t.Fatalf("Size = %d, want 5", got)
	}
	if !iv.Contains(3) || !iv.Contains(7) || iv.Contains(8) || iv.Contains(2) {
		t.Fatal("Contains endpoints wrong")
	}
	empty := Interval{5, 4}
	if !empty.Empty() || empty.Size() != 0 {
		t.Fatal("reversed interval should be empty")
	}
}

func TestIntervalIntersect(t *testing.T) {
	cases := []struct {
		a, b, want Interval
	}{
		{Interval{0, 10}, Interval{5, 15}, Interval{5, 10}},
		{Interval{0, 4}, Interval{5, 9}, Interval{5, 4}},
		{Interval{0, 9}, Interval{3, 5}, Interval{3, 5}},
		{Interval{3, 3}, Interval{3, 3}, Interval{3, 3}},
	}
	for _, c := range cases {
		got := c.a.Intersect(c.b)
		if got.Empty() != c.want.Empty() {
			t.Errorf("%v ∩ %v emptiness = %v", c.a, c.b, got)
			continue
		}
		if !got.Empty() && got != c.want {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIntervalSetAdd(t *testing.T) {
	var s IntervalSet
	s.AddInterval(Interval{10, 20})
	s.AddInterval(Interval{30, 40})
	if s.NumIntervals() != 2 || s.Size() != 22 {
		t.Fatalf("got %v", s)
	}
	// Adjacent merge.
	s.AddInterval(Interval{21, 29})
	if s.NumIntervals() != 1 || s.Size() != 31 {
		t.Fatalf("adjacent merge failed: %v", s)
	}
	// Overlapping extension on both sides.
	s.AddInterval(Interval{0, 50})
	if s.NumIntervals() != 1 || !s.Equal(Span(0, 50)) {
		t.Fatalf("covering add failed: %v", s)
	}
	// Disjoint insert before.
	s.AddInterval(Interval{-10, -5})
	if s.NumIntervals() != 2 {
		t.Fatalf("prepend failed: %v", s)
	}
	// Empty add is a no-op.
	s.AddInterval(Interval{5, 4})
	if s.Size() != 57 {
		t.Fatalf("empty add changed size: %v", s)
	}
}

func TestIntervalSetAddMergesMany(t *testing.T) {
	var s IntervalSet
	for i := int64(0); i < 10; i++ {
		s.AddInterval(Interval{i * 10, i*10 + 3})
	}
	if s.NumIntervals() != 10 {
		t.Fatalf("setup: %v", s)
	}
	s.AddInterval(Interval{2, 95})
	if s.NumIntervals() != 1 || !s.Equal(Span(0, 95)) {
		t.Fatalf("bridging add failed: %v", s)
	}
}

func TestFromPoints(t *testing.T) {
	s := FromPoints([]int64{5, 1, 2, 3, 9, 9, 0})
	want := NewIntervalSet(Interval{0, 3}, Interval{5, 5}, Interval{9, 9})
	if !s.Equal(want) {
		t.Fatalf("FromPoints = %v, want %v", s, want)
	}
	if !FromPoints(nil).Empty() {
		t.Fatal("FromPoints(nil) should be empty")
	}
}

func TestUnionIntersectSubtract(t *testing.T) {
	a := NewIntervalSet(Interval{0, 9}, Interval{20, 29})
	b := NewIntervalSet(Interval{5, 24})
	if got, want := a.Union(b), Span(0, 29); !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
	wantI := NewIntervalSet(Interval{5, 9}, Interval{20, 24})
	if got := a.Intersect(b); !got.Equal(wantI) {
		t.Errorf("Intersect = %v, want %v", got, wantI)
	}
	wantS := NewIntervalSet(Interval{0, 4}, Interval{25, 29})
	if got := a.Subtract(b); !got.Equal(wantS) {
		t.Errorf("Subtract = %v, want %v", got, wantS)
	}
	if got := b.Subtract(a); !got.Equal(Span(10, 19)) {
		t.Errorf("Subtract rev = %v, want [10,19]", got)
	}
}

func TestContainsBinarySearch(t *testing.T) {
	s := NewIntervalSet(Interval{0, 4}, Interval{10, 14}, Interval{100, 200})
	for _, p := range []int64{0, 4, 10, 14, 100, 200, 150} {
		if !s.Contains(p) {
			t.Errorf("Contains(%d) = false", p)
		}
	}
	for _, p := range []int64{-1, 5, 9, 15, 99, 201} {
		if s.Contains(p) {
			t.Errorf("Contains(%d) = true", p)
		}
	}
}

func TestOverlapsAndContainsSet(t *testing.T) {
	a := NewIntervalSet(Interval{0, 9})
	b := NewIntervalSet(Interval{9, 12})
	c := NewIntervalSet(Interval{10, 12})
	if !a.Overlaps(b) {
		t.Error("a should overlap b")
	}
	if a.Overlaps(c) {
		t.Error("a should not overlap c")
	}
	if !a.ContainsSet(Span(2, 5)) {
		t.Error("a should contain [2,5]")
	}
	if a.ContainsSet(b) {
		t.Error("a should not contain b")
	}
	if !a.ContainsSet(IntervalSet{}) {
		t.Error("everything contains the empty set")
	}
}

func TestEachAndPoints(t *testing.T) {
	s := NewIntervalSet(Interval{1, 2}, Interval{5, 5})
	got := s.Points()
	want := []int64{1, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("Points = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Points = %v, want %v", got, want)
		}
	}
	n := 0
	s.EachInterval(func(Interval) { n++ })
	if n != 2 {
		t.Fatalf("EachInterval visited %d intervals", n)
	}
}

// randomSet builds a reproducible random interval set within [0, 200).
func randomSet(r *rand.Rand) IntervalSet {
	var s IntervalSet
	n := r.Intn(8)
	for i := 0; i < n; i++ {
		lo := r.Int63n(200)
		s.AddInterval(Interval{lo, lo + r.Int63n(20)})
	}
	return s
}

// naiveMembership returns the membership bitmap of s over [0, 256).
func naiveMembership(s IntervalSet) [256]bool {
	var m [256]bool
	s.Each(func(p int64) {
		if p >= 0 && p < 256 {
			m[p] = true
		}
	})
	return m
}

func TestQuickSetAlgebra(t *testing.T) {
	// Property: Union/Intersect/Subtract agree with pointwise bitmaps.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		ma, mb := naiveMembership(a), naiveMembership(b)
		mu := naiveMembership(a.Union(b))
		mi := naiveMembership(a.Intersect(b))
		ms := naiveMembership(a.Subtract(b))
		for p := 0; p < 256; p++ {
			if mu[p] != (ma[p] || mb[p]) {
				return false
			}
			if mi[p] != (ma[p] && mb[p]) {
				return false
			}
			if ms[p] != (ma[p] && !mb[p]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetInvariants(t *testing.T) {
	// Property: every set is sorted, disjoint, non-adjacent; Size and
	// Contains are consistent with Points.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r)
		ivs := s.Intervals()
		for i, iv := range ivs {
			if iv.Empty() {
				return false
			}
			if i > 0 && ivs[i-1].Hi+1 >= iv.Lo {
				return false
			}
		}
		if int64(len(s.Points())) != s.Size() {
			return false
		}
		for _, p := range s.Points() {
			if !s.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// Property: a \ b == a ∩ (U \ b) over a shared universe.
	u := Span(0, 255)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r).Intersect(u)
		b := randomSet(r).Intersect(u)
		lhs := a.Subtract(b)
		rhs := a.Intersect(u.Subtract(b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBounds(t *testing.T) {
	if b := (IntervalSet{}).Bounds(); !b.Empty() {
		t.Fatalf("empty set bounds = %v", b)
	}
	s := NewIntervalSet(Interval{5, 6}, Interval{40, 42})
	if b := s.Bounds(); b != (Interval{5, 42}) {
		t.Fatalf("Bounds = %v", b)
	}
}

func TestClone(t *testing.T) {
	a := NewIntervalSet(Interval{1, 5})
	b := a.Clone()
	b.AddInterval(Interval{10, 12})
	if a.Size() != 5 {
		t.Fatal("Clone aliased underlying storage")
	}
}
