// Package index provides the index-space substrate of the KDRSolvers
// framework.
//
// An index space is a finite set of identifiers (Section 3 of the paper).
// KDRSolvers names three index spaces per sparse matrix: the kernel space K
// indexing stored nonzero entries, the domain space D indexing the solution
// vector, and the range space R indexing the right-hand side.
//
// Index spaces in this package are sets of int64 coordinates represented as
// sorted disjoint interval lists (IntervalSet). Multi-dimensional spaces are
// linearized through a Grid, which also produces the strided interval sets
// that arise when tiling a grid. A Partition maps a color space to subsets
// of an index space and supports the completeness and disjointness
// predicates of Section 3.1.
package index
