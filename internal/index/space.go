package index

import "fmt"

// A Space is a named index space: a finite set of int64 identifiers.
// Spaces name the three fundamental sets of a linear system — the kernel
// space K, domain space D, and range space R — as well as total
// domain/range spaces assembled from multiple components.
type Space struct {
	// Name identifies the space in diagnostics ("K", "D", "R", ...).
	Name string
	// Set holds the points of the space.
	Set IntervalSet
}

// NewSpace returns a dense space [0, n).
func NewSpace(name string, n int64) Space {
	return Space{Name: name, Set: Span(0, n-1)}
}

// NewSparseSpace returns a space over an arbitrary point set.
func NewSparseSpace(name string, set IntervalSet) Space {
	return Space{Name: name, Set: set}
}

// Size returns the number of points in the space.
func (sp Space) Size() int64 { return sp.Set.Size() }

// Contains reports whether p is a point of the space.
func (sp Space) Contains(p int64) bool { return sp.Set.Contains(p) }

func (sp Space) String() string {
	return fmt.Sprintf("%s%s", sp.Name, sp.Set.String())
}
