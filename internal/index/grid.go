package index

import "fmt"

// A Grid describes a dense multi-dimensional rectangular index space and
// its row-major linearization. Grids are how the stencil benchmarks state
// their 1D/2D/3D domain and range spaces; the rest of the framework works
// on the linearized coordinates.
type Grid struct {
	// Dims holds the extent of each dimension, slowest-varying first.
	Dims []int64
}

// NewGrid returns a grid with the given extents (slowest-varying first).
func NewGrid(dims ...int64) Grid {
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("index: grid extent %d must be positive", d))
		}
	}
	ds := make([]int64, len(dims))
	copy(ds, dims)
	return Grid{Dims: ds}
}

// Rank returns the number of dimensions.
func (g Grid) Rank() int { return len(g.Dims) }

// Size returns the total number of grid points.
func (g Grid) Size() int64 {
	n := int64(1)
	for _, d := range g.Dims {
		n *= d
	}
	return n
}

// Linearize maps multi-dimensional coordinates to a row-major linear index.
func (g Grid) Linearize(coords ...int64) int64 {
	if len(coords) != len(g.Dims) {
		panic("index: coordinate rank mismatch")
	}
	var idx int64
	for i, c := range coords {
		if c < 0 || c >= g.Dims[i] {
			panic(fmt.Sprintf("index: coordinate %d out of range [0,%d)", c, g.Dims[i]))
		}
		idx = idx*g.Dims[i] + c
	}
	return idx
}

// Delinearize maps a row-major linear index back to coordinates.
func (g Grid) Delinearize(idx int64) []int64 {
	coords := make([]int64, len(g.Dims))
	for i := len(g.Dims) - 1; i >= 0; i-- {
		coords[i] = idx % g.Dims[i]
		idx /= g.Dims[i]
	}
	return coords
}

// Space returns the linearized index space of the grid.
func (g Grid) Space(name string) Space { return NewSpace(name, g.Size()) }

// Contains reports whether the coordinates lie inside the grid.
func (g Grid) Contains(coords ...int64) bool {
	if len(coords) != len(g.Dims) {
		return false
	}
	for i, c := range coords {
		if c < 0 || c >= g.Dims[i] {
			return false
		}
	}
	return true
}

// TilePartition tiles the grid into a cartesian product of per-dimension
// block counts and returns the resulting partition of the linearized space.
// tiles[i] is the number of tiles along dimension i; color order is
// row-major over tile coordinates. Tiling any dimension other than the
// slowest produces strided (multi-interval) pieces.
func (g Grid) TilePartition(name string, tiles ...int) Partition {
	if len(tiles) != len(g.Dims) {
		panic("index: tile rank mismatch")
	}
	nColors := 1
	for i, t := range tiles {
		if t <= 0 || int64(t) > g.Dims[i] {
			panic(fmt.Sprintf("index: tile count %d invalid for extent %d", t, g.Dims[i]))
		}
		nColors *= t
	}
	pieces := make([]IntervalSet, nColors)
	// Per-dimension block bounds.
	bounds := make([][]Interval, len(g.Dims))
	for i, t := range tiles {
		bounds[i] = blockBounds(g.Dims[i], t)
	}
	// Enumerate tile coordinates in row-major order.
	tc := make([]int, len(g.Dims))
	for c := 0; c < nColors; c++ {
		pieces[c] = g.tileSet(bounds, tc)
		// Increment tile coordinates.
		for i := len(tc) - 1; i >= 0; i-- {
			tc[i]++
			if tc[i] < tiles[i] {
				break
			}
			tc[i] = 0
		}
	}
	return NewPartition(g.Space(name), pieces)
}

// tileSet builds the interval set of one tile given per-dimension bounds
// and tile coordinates.
func (g Grid) tileSet(bounds [][]Interval, tc []int) IntervalSet {
	// The innermost dimension contributes contiguous runs; outer
	// dimensions replicate them at strides.
	rank := len(g.Dims)
	last := rank - 1
	inner := bounds[last][tc[last]]
	// Enumerate the outer coordinates of the tile.
	var set IntervalSet
	outer := make([]int64, rank-1)
	for i := range outer {
		outer[i] = bounds[i][tc[i]].Lo
	}
	for {
		base := int64(0)
		for i := 0; i < rank-1; i++ {
			base = base*g.Dims[i] + outer[i]
		}
		base = base*g.Dims[last] + inner.Lo
		set.AddInterval(Interval{base, base + inner.Size() - 1})
		// Advance outer coordinates within the tile.
		i := rank - 2
		for ; i >= 0; i-- {
			outer[i]++
			if outer[i] <= bounds[i][tc[i]].Hi {
				break
			}
			outer[i] = bounds[i][tc[i]].Lo
		}
		if i < 0 {
			break
		}
	}
	return set
}

// blockBounds splits [0, n) into t nearly equal contiguous blocks.
func blockBounds(n int64, t int) []Interval {
	out := make([]Interval, t)
	lo := int64(0)
	for b := 0; b < t; b++ {
		size := n / int64(t)
		if int64(b) < n%int64(t) {
			size++
		}
		out[b] = Interval{lo, lo + size - 1}
		lo += size
	}
	return out
}
