// Package fault is a deterministic, seedable fault injector for the task
// runtime. A Plan describes which tasks should misbehave and how often; an
// Injector draws a reproducible schedule from the plan, so every failure
// path — panics, silent NaN corruption, stragglers — is exercisable in
// tests and from the CLI with the same schedule for the same seed.
//
// Determinism contract: the Injector consumes one pseudo-random draw per
// *eligible* decision, in call order. The runtime calls Decide once per
// task launch under its launch lock, so a single-threaded launcher (the
// usual solver goroutine) sees an identical fault schedule on every run
// with the same seed, plan, and program.
package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind classifies an injected fault.
type Kind int

const (
	// None means the task runs clean.
	None Kind = iota
	// Panic makes the task body panic before doing any work — the
	// transient-crash model. Because no work has been done the task is
	// always safe to re-execute, but the runtime cannot know that and
	// applies its usual retryability rules.
	Panic
	// NaN runs the task body normally and then silently corrupts its
	// scalar result to NaN — the silent-data-corruption model. No error is
	// raised; detection is the solver's job.
	NaN
	// Stall sleeps for the plan's stall duration before running the body —
	// the straggler model, visible to the runtime watchdog.
	Stall
)

// String returns the kind's conventional name.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Panic:
		return "panic"
	case NaN:
		return "nan"
	case Stall:
		return "stall"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Injection is the fault chosen for one task at launch. The zero value
// means no fault.
type Injection struct {
	// Kind is what happens to the task.
	Kind Kind
	// Sticky faults re-fire on every execution attempt; non-sticky faults
	// fire only on the first attempt, so a retry runs clean (the
	// transient-fault model).
	Sticky bool
	// Stall is how long a Stall fault sleeps.
	Stall time.Duration
}

// Plan describes a fault workload. Rates are per eligible task launch and
// partition a single uniform draw, so PanicRate+NaNRate+StallRate must not
// exceed 1.
type Plan struct {
	// Seed seeds the schedule; equal seeds give equal schedules.
	Seed int64
	// PanicRate, NaNRate, StallRate are the per-launch probabilities of
	// each fault kind.
	PanicRate, NaNRate, StallRate float64
	// StallFor is the injected straggler delay (default 50ms).
	StallFor time.Duration
	// Names restricts injection to the listed task names (empty = all).
	Names []string
	// Phases restricts injection to the listed solver phases (empty = all).
	Phases []string
	// Sticky makes faults re-fire on retry attempts.
	Sticky bool
	// MaxFaults caps the total number of injected faults (0 = unlimited).
	MaxFaults int
}

// Active reports whether the plan can inject anything at all.
func (p Plan) Active() bool {
	return p.PanicRate > 0 || p.NaNRate > 0 || p.StallRate > 0
}

// Injector draws a deterministic fault schedule from a Plan. Methods are
// safe for concurrent use, though determinism additionally requires that
// Decide calls arrive in a deterministic order (see the package comment).
type Injector struct {
	mu      sync.Mutex
	plan    Plan
	rng     *rand.Rand
	names   map[string]bool
	phases  map[string]bool
	decided int64
	counts  map[Kind]int64
}

// NewInjector builds an injector for the plan. It panics when the rates
// sum past 1.
func NewInjector(p Plan) *Injector {
	if p.PanicRate < 0 || p.NaNRate < 0 || p.StallRate < 0 ||
		p.PanicRate+p.NaNRate+p.StallRate > 1 {
		panic("fault: rates must be non-negative and sum to at most 1")
	}
	if p.StallFor <= 0 {
		p.StallFor = 50 * time.Millisecond
	}
	in := &Injector{
		plan:   p,
		rng:    rand.New(rand.NewSource(p.Seed)),
		counts: make(map[Kind]int64),
	}
	if len(p.Names) > 0 {
		in.names = make(map[string]bool, len(p.Names))
		for _, n := range p.Names {
			in.names[n] = true
		}
	}
	if len(p.Phases) > 0 {
		in.phases = make(map[string]bool, len(p.Phases))
		for _, ph := range p.Phases {
			in.phases[ph] = true
		}
	}
	return in
}

// Decide chooses the fault (possibly None) for one task launch. Filtered
// tasks consume no randomness, so adding tasks outside the filter does not
// perturb the schedule of tasks inside it.
func (in *Injector) Decide(name, phase string) Injection {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.names != nil && !in.names[name] {
		return Injection{}
	}
	if in.phases != nil && !in.phases[phase] {
		return Injection{}
	}
	if in.plan.MaxFaults > 0 && in.total() >= int64(in.plan.MaxFaults) {
		return Injection{}
	}
	in.decided++
	u := in.rng.Float64()
	var kind Kind
	switch {
	case u < in.plan.PanicRate:
		kind = Panic
	case u < in.plan.PanicRate+in.plan.NaNRate:
		kind = NaN
	case u < in.plan.PanicRate+in.plan.NaNRate+in.plan.StallRate:
		kind = Stall
	default:
		return Injection{}
	}
	in.counts[kind]++
	return Injection{Kind: kind, Sticky: in.plan.Sticky, Stall: in.plan.StallFor}
}

func (in *Injector) total() int64 {
	var t int64
	for _, c := range in.counts {
		t += c
	}
	return t
}

// Injected returns the total number of faults handed out so far.
func (in *Injector) Injected() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total()
}

// Count returns how many faults of one kind were handed out.
func (in *Injector) Count(k Kind) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[k]
}

// ParsePlan parses the CLI fault-plan syntax: a comma-separated list of
// key=value settings.
//
//	panic=0.01,nan=0.001,seed=1,sticky=true,name=axpy|dot.partial
//
// Keys: panic, nan, stall (rates in [0,1]); seed (int); stallms
// (straggler delay in milliseconds); sticky (bool); max (fault cap);
// name, phase ('|'-separated filter lists).
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return p, fmt.Errorf("fault: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "panic":
			p.PanicRate, err = strconv.ParseFloat(v, 64)
		case "nan":
			p.NaNRate, err = strconv.ParseFloat(v, 64)
		case "stall":
			p.StallRate, err = strconv.ParseFloat(v, 64)
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		case "stallms":
			var ms int64
			ms, err = strconv.ParseInt(v, 10, 64)
			p.StallFor = time.Duration(ms) * time.Millisecond
		case "sticky":
			p.Sticky, err = strconv.ParseBool(v)
		case "max":
			p.MaxFaults, err = strconv.Atoi(v)
		case "name":
			p.Names = strings.Split(v, "|")
		case "phase":
			p.Phases = strings.Split(v, "|")
		default:
			return p, fmt.Errorf("fault: unknown plan key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("fault: bad value for %s: %v", k, err)
		}
	}
	if p.PanicRate < 0 || p.NaNRate < 0 || p.StallRate < 0 ||
		p.PanicRate+p.NaNRate+p.StallRate > 1 {
		return p, fmt.Errorf("fault: rates must be non-negative and sum to at most 1")
	}
	return p, nil
}
