// Package fault is a deterministic, seedable fault injector for the task
// runtime. A Plan describes which tasks should misbehave and how often; an
// Injector draws a reproducible schedule from the plan, so every failure
// path — panics, silent NaN corruption, stragglers, bit flips in region
// data — is exercisable in tests and from the CLI with the same schedule
// for the same seed.
//
// Determinism contract: the Injector consumes one pseudo-random draw per
// *eligible* decision, in call order, plus a bounded number of extra draws
// when a decision lands on a data-corruption kind (to pick the corrupted
// element and, optionally, the bit). The runtime calls Decide once per
// task launch under its launch lock, so a single-threaded launcher (the
// usual solver goroutine) sees an identical fault schedule on every run
// with the same seed, plan, and program.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind classifies an injected fault.
type Kind int

const (
	// None means the task runs clean.
	None Kind = iota
	// Panic makes the task body panic before doing any work — the
	// transient-crash model. Because no work has been done the task is
	// always safe to re-execute, but the runtime cannot know that and
	// applies its usual retryability rules.
	Panic
	// NaN runs the task body normally and then silently corrupts its
	// scalar result to NaN — the silent-data-corruption model. No error is
	// raised; detection is the solver's job.
	NaN
	// Stall sleeps for the plan's stall duration before running the body —
	// the straggler model, visible to the runtime watchdog.
	Stall
	// BitFlip runs the task body normally and then flips one bit of one
	// float64 in the task's output region data (or of its scalar result
	// when the task exposes no region hook) — the soft-error model. No
	// error is raised and no control flow changes; only the data lies.
	BitFlip
	// Scale runs the task body normally and then multiplies one output
	// element by the plan's scale factor — a tunable-magnitude silent
	// corruption for studying detection thresholds.
	Scale
)

// Kinds lists every injectable fault kind, in rate-partition order. The
// rate key accepted by ParsePlan for each kind is exactly Kind.String().
var Kinds = []Kind{Panic, NaN, Stall, BitFlip, Scale}

// String returns the kind's conventional name.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Panic:
		return "panic"
	case NaN:
		return "nan"
	case Stall:
		return "stall"
	case BitFlip:
		return "bitflip"
	case Scale:
		return "scale"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// FlipBit returns v with one bit of its IEEE-754 representation flipped.
// Bits 0–51 are the mantissa (0 least significant), 52–62 the exponent,
// 63 the sign.
func FlipBit(v float64, bit int) float64 {
	if bit < 0 || bit > 63 {
		return v
	}
	return math.Float64frombits(math.Float64bits(v) ^ (1 << uint(bit)))
}

// Injection is the fault chosen for one task at launch. The zero value
// means no fault.
type Injection struct {
	// Kind is what happens to the task.
	Kind Kind
	// Sticky faults re-fire on every execution attempt; non-sticky faults
	// fire only on the first attempt, so a retry runs clean (the
	// transient-fault model).
	Sticky bool
	// Stall is how long a Stall fault sleeps.
	Stall time.Duration
	// Bit is the bit index a BitFlip corrupts (0 = lowest mantissa bit,
	// 52–62 exponent, 63 sign).
	Bit int
	// Factor is the multiplier a Scale corruption applies.
	Factor float64
	// Pos in [0,1) selects which output element is corrupted: the hook
	// maps it over the task's writable points.
	Pos float64
}

// CorruptValue applies a BitFlip or Scale corruption to one float64 and
// returns the corrupted value; other kinds return v unchanged.
func (inj Injection) CorruptValue(v float64) float64 {
	switch inj.Kind {
	case BitFlip:
		return FlipBit(v, inj.Bit)
	case Scale:
		return v * inj.Factor
	}
	return v
}

// Plan describes a fault workload. Rates are per eligible task launch and
// partition a single uniform draw, so the five rates must not exceed 1 in
// sum.
type Plan struct {
	// Seed seeds the schedule; equal seeds give equal schedules.
	Seed int64
	// PanicRate, NaNRate, StallRate, BitFlipRate, ScaleRate are the
	// per-launch probabilities of each fault kind.
	PanicRate, NaNRate, StallRate, BitFlipRate, ScaleRate float64
	// StallFor is the injected straggler delay (default 50ms).
	StallFor time.Duration
	// Bit pins the bit a BitFlip corrupts (0–63; default 0, the lowest
	// mantissa bit — the quietest possible corruption). Ignored when
	// RandomBit is set.
	Bit int
	// RandomBit draws the flipped bit uniformly from 0–63 per fault.
	RandomBit bool
	// ScaleBy is the Scale corruption's multiplier (default 1 + 2⁻¹⁰).
	ScaleBy float64
	// Names restricts injection to the listed task names (empty = all).
	Names []string
	// Phases restricts injection to the listed solver phases (empty = all).
	Phases []string
	// Pieces restricts injection to the listed piece indices (empty =
	// all). Tasks not associated with a piece are never eligible under a
	// piece filter.
	Pieces []int
	// Sticky makes faults re-fire on retry attempts.
	Sticky bool
	// MaxFaults caps the total number of injected faults (0 = unlimited).
	MaxFaults int
}

// Active reports whether the plan can inject anything at all.
func (p Plan) Active() bool {
	return p.PanicRate > 0 || p.NaNRate > 0 || p.StallRate > 0 ||
		p.BitFlipRate > 0 || p.ScaleRate > 0
}

func (p Plan) rateSum() float64 {
	return p.PanicRate + p.NaNRate + p.StallRate + p.BitFlipRate + p.ScaleRate
}

func (p Plan) ratesValid() bool {
	return p.PanicRate >= 0 && p.NaNRate >= 0 && p.StallRate >= 0 &&
		p.BitFlipRate >= 0 && p.ScaleRate >= 0 && p.rateSum() <= 1
}

// Injector draws a deterministic fault schedule from a Plan. Methods are
// safe for concurrent use, though determinism additionally requires that
// Decide calls arrive in a deterministic order (see the package comment).
type Injector struct {
	mu      sync.Mutex
	plan    Plan
	rng     *rand.Rand
	names   map[string]bool
	phases  map[string]bool
	pieces  map[int]bool
	decided int64
	counts  map[Kind]int64
}

// NewInjector builds an injector for the plan. It panics when the rates
// sum past 1 or the pinned bit is out of range.
func NewInjector(p Plan) *Injector {
	if !p.ratesValid() {
		panic("fault: rates must be non-negative and sum to at most 1")
	}
	if p.Bit < 0 || p.Bit > 63 {
		panic("fault: bit must be in 0..63")
	}
	if p.StallFor <= 0 {
		p.StallFor = 50 * time.Millisecond
	}
	if p.ScaleBy == 0 {
		p.ScaleBy = 1 + 1.0/1024
	}
	in := &Injector{
		plan:   p,
		rng:    rand.New(rand.NewSource(p.Seed)),
		counts: make(map[Kind]int64),
	}
	if len(p.Names) > 0 {
		in.names = make(map[string]bool, len(p.Names))
		for _, n := range p.Names {
			in.names[n] = true
		}
	}
	if len(p.Phases) > 0 {
		in.phases = make(map[string]bool, len(p.Phases))
		for _, ph := range p.Phases {
			in.phases[ph] = true
		}
	}
	if len(p.Pieces) > 0 {
		in.pieces = make(map[int]bool, len(p.Pieces))
		for _, pc := range p.Pieces {
			in.pieces[pc] = true
		}
	}
	return in
}

// Decide chooses the fault (possibly None) for one task launch. The piece
// argument is the task's piece index, or a negative value for tasks not
// associated with one piece. Filtered tasks consume no randomness, so
// adding tasks outside the filter does not perturb the schedule of tasks
// inside it.
func (in *Injector) Decide(name, phase string, piece int) Injection {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.names != nil && !in.names[name] {
		return Injection{}
	}
	if in.phases != nil && !in.phases[phase] {
		return Injection{}
	}
	if in.pieces != nil && (piece < 0 || !in.pieces[piece]) {
		return Injection{}
	}
	if in.plan.MaxFaults > 0 && in.total() >= int64(in.plan.MaxFaults) {
		return Injection{}
	}
	in.decided++
	u := in.rng.Float64()
	pr, nr, sr, br := in.plan.PanicRate, in.plan.NaNRate, in.plan.StallRate, in.plan.BitFlipRate
	var kind Kind
	switch {
	case u < pr:
		kind = Panic
	case u < pr+nr:
		kind = NaN
	case u < pr+nr+sr:
		kind = Stall
	case u < pr+nr+sr+br:
		kind = BitFlip
	case u < pr+nr+sr+br+in.plan.ScaleRate:
		kind = Scale
	default:
		return Injection{}
	}
	in.counts[kind]++
	inj := Injection{Kind: kind, Sticky: in.plan.Sticky, Stall: in.plan.StallFor}
	if kind == BitFlip || kind == Scale {
		// Data corruptions draw the target element (and optionally the bit)
		// here, so the corruption site is as reproducible as the schedule.
		inj.Pos = in.rng.Float64()
		inj.Factor = in.plan.ScaleBy
		inj.Bit = in.plan.Bit
		if kind == BitFlip && in.plan.RandomBit {
			inj.Bit = in.rng.Intn(64)
		}
	}
	return inj
}

func (in *Injector) total() int64 {
	var t int64
	for _, c := range in.counts {
		t += c
	}
	return t
}

// Injected returns the total number of faults handed out so far.
func (in *Injector) Injected() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total()
}

// Count returns how many faults of one kind were handed out.
func (in *Injector) Count(k Kind) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[k]
}

// planKeys lists every key ParsePlan accepts, for error messages.
const planKeys = "panic, nan, stall, bitflip, scale, seed, stallms, bit, factor, sticky, max, name, phase, piece"

// ParsePlan parses the CLI fault-plan syntax: a comma-separated list of
// key=value settings.
//
//	panic=0.01,nan=0.001,seed=1,sticky=true,name=axpy|dot.partial
//	bitflip=0.02,bit=52,max=1,seed=3,phase=cg.step
//
// Keys: panic, nan, stall, bitflip, scale (rates in [0,1], keyed by the
// kind names of Kind.String()); seed (int); stallms (straggler delay in
// milliseconds); bit (flipped bit 0–63, or "rand"); factor (scale
// multiplier); sticky (bool); max (fault cap); name, phase ('|'-separated
// filter lists); piece ('|'-separated piece indices).
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return p, fmt.Errorf("fault: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "panic":
			p.PanicRate, err = strconv.ParseFloat(v, 64)
		case "nan":
			p.NaNRate, err = strconv.ParseFloat(v, 64)
		case "stall":
			p.StallRate, err = strconv.ParseFloat(v, 64)
		case "bitflip":
			p.BitFlipRate, err = strconv.ParseFloat(v, 64)
		case "scale":
			p.ScaleRate, err = strconv.ParseFloat(v, 64)
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		case "stallms":
			var ms int64
			ms, err = strconv.ParseInt(v, 10, 64)
			p.StallFor = time.Duration(ms) * time.Millisecond
		case "bit":
			if v == "rand" {
				p.RandomBit = true
			} else {
				p.Bit, err = strconv.Atoi(v)
				if err == nil && (p.Bit < 0 || p.Bit > 63) {
					err = fmt.Errorf("bit %d out of range 0..63", p.Bit)
				}
			}
		case "factor":
			p.ScaleBy, err = strconv.ParseFloat(v, 64)
		case "sticky":
			p.Sticky, err = strconv.ParseBool(v)
		case "max":
			p.MaxFaults, err = strconv.Atoi(v)
		case "name":
			p.Names = strings.Split(v, "|")
		case "phase":
			p.Phases = strings.Split(v, "|")
		case "piece":
			for _, s := range strings.Split(v, "|") {
				var pc int
				pc, err = strconv.Atoi(s)
				if err != nil {
					break
				}
				p.Pieces = append(p.Pieces, pc)
			}
		default:
			return p, fmt.Errorf("fault: unknown plan key %q (valid keys: %s)", k, planKeys)
		}
		if err != nil {
			return p, fmt.Errorf("fault: bad value for %s: %v", k, err)
		}
	}
	if !p.ratesValid() {
		return p, fmt.Errorf("fault: rates must be non-negative and sum to at most 1")
	}
	return p, nil
}
