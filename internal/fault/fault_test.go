package fault

import (
	"testing"
	"time"
)

// schedule draws n decisions and returns the chosen kinds.
func schedule(in *Injector, n int, name, phase string) []Kind {
	out := make([]Kind, n)
	for i := range out {
		out[i] = in.Decide(name, phase).Kind
	}
	return out
}

func TestFaultDeterministicSchedule(t *testing.T) {
	plan := Plan{Seed: 42, PanicRate: 0.2, NaNRate: 0.1, StallRate: 0.05}
	a := schedule(NewInjector(plan), 500, "axpy", "cg.step")
	b := schedule(NewInjector(plan), 500, "axpy", "cg.step")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed must (with overwhelming probability) differ somewhere.
	c := schedule(NewInjector(Plan{Seed: 43, PanicRate: 0.2, NaNRate: 0.1, StallRate: 0.05}), 500, "axpy", "cg.step")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 500-decision schedules")
	}
}

func TestFaultRatesPartitionOneDraw(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, PanicRate: 0.3, NaNRate: 0.3, StallRate: 0.3})
	const n = 10000
	var got [4]int
	for _, k := range schedule(in, n, "t", "") {
		got[k]++
	}
	for k, want := range map[Kind]float64{Panic: 0.3, NaN: 0.3, Stall: 0.3, None: 0.1} {
		frac := float64(got[k]) / n
		if frac < want-0.05 || frac > want+0.05 {
			t.Errorf("%v rate = %.3f, want ≈ %.2f", k, frac, want)
		}
	}
	if in.Injected() != int64(got[Panic]+got[NaN]+got[Stall]) {
		t.Fatalf("Injected = %d, counts say %d", in.Injected(), got[Panic]+got[NaN]+got[Stall])
	}
	if in.Count(Panic) != int64(got[Panic]) {
		t.Fatalf("Count(Panic) = %d, want %d", in.Count(Panic), got[Panic])
	}
}

func TestFaultFiltersConsumeNoRandomness(t *testing.T) {
	plan := Plan{Seed: 7, PanicRate: 0.5, Names: []string{"axpy"}}
	// Schedule A: only eligible decisions.
	a := schedule(NewInjector(plan), 100, "axpy", "")
	// Schedule B: the same eligible decisions interleaved with filtered-out
	// ones. The eligible subsequence must be identical.
	in := NewInjector(plan)
	var b []Kind
	for i := 0; i < 100; i++ {
		if got := in.Decide("dot.partial", ""); got.Kind != None {
			t.Fatal("filtered-out task was injected")
		}
		b = append(b, in.Decide("axpy", "").Kind)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("filtered tasks perturbed the schedule at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFaultPhaseFilter(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, PanicRate: 1, Phases: []string{"cg.step"}})
	if in.Decide("axpy", "resilient.verify").Kind != None {
		t.Fatal("wrong phase was injected")
	}
	if in.Decide("axpy", "cg.step").Kind != Panic {
		t.Fatal("matching phase was not injected at rate 1")
	}
}

func TestFaultMaxFaultsCap(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, PanicRate: 1, MaxFaults: 3})
	for _, k := range schedule(in, 10, "t", "") {
		_ = k
	}
	if in.Injected() != 3 {
		t.Fatalf("Injected = %d, want cap 3", in.Injected())
	}
}

func TestFaultStickyAndStallPropagate(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, StallRate: 1, StallFor: 7 * time.Millisecond, Sticky: true})
	inj := in.Decide("t", "")
	if inj.Kind != Stall || !inj.Sticky || inj.Stall != 7*time.Millisecond {
		t.Fatalf("injection = %+v", inj)
	}
}

func TestFaultDefaultStall(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, StallRate: 1})
	if got := in.Decide("t", "").Stall; got != 50*time.Millisecond {
		t.Fatalf("default stall = %v, want 50ms", got)
	}
}

func TestFaultNewInjectorRejectsBadRates(t *testing.T) {
	for _, p := range []Plan{
		{PanicRate: 0.6, NaNRate: 0.6},
		{PanicRate: -0.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewInjector(%+v) did not panic", p)
				}
			}()
			NewInjector(p)
		}()
	}
}

func TestFaultParsePlan(t *testing.T) {
	p, err := ParsePlan("panic=0.01,nan=0.001,stall=0.002,seed=9,stallms=25,sticky=true,max=4,name=axpy|dot.partial,phase=cg.step")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		Seed: 9, PanicRate: 0.01, NaNRate: 0.001, StallRate: 0.002,
		StallFor: 25 * time.Millisecond, Sticky: true, MaxFaults: 4,
	}
	if p.Seed != want.Seed || p.PanicRate != want.PanicRate || p.NaNRate != want.NaNRate ||
		p.StallRate != want.StallRate || p.StallFor != want.StallFor ||
		p.Sticky != want.Sticky || p.MaxFaults != want.MaxFaults {
		t.Fatalf("ParsePlan = %+v", p)
	}
	if len(p.Names) != 2 || p.Names[0] != "axpy" || p.Names[1] != "dot.partial" {
		t.Fatalf("Names = %v", p.Names)
	}
	if len(p.Phases) != 1 || p.Phases[0] != "cg.step" {
		t.Fatalf("Phases = %v", p.Phases)
	}
	if !p.Active() {
		t.Fatal("parsed plan should be active")
	}
}

func TestFaultParsePlanEmptyAndErrors(t *testing.T) {
	if p, err := ParsePlan("   "); err != nil || p.Active() {
		t.Fatalf("empty spec: plan %+v, err %v", p, err)
	}
	for _, bad := range []string{
		"panic",             // not key=value
		"panic=lots",        // bad float
		"bogus=1",           // unknown key
		"panic=0.9,nan=0.9", // rates sum past 1
		"panic=-0.1",        // negative rate
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) succeeded, want error", bad)
		}
	}
}
