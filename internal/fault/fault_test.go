package fault

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// schedule draws n decisions and returns the chosen kinds.
func schedule(in *Injector, n int, name, phase string) []Kind {
	out := make([]Kind, n)
	for i := range out {
		out[i] = in.Decide(name, phase, -1).Kind
	}
	return out
}

func TestFaultDeterministicSchedule(t *testing.T) {
	plan := Plan{Seed: 42, PanicRate: 0.2, NaNRate: 0.1, StallRate: 0.05}
	a := schedule(NewInjector(plan), 500, "axpy", "cg.step")
	b := schedule(NewInjector(plan), 500, "axpy", "cg.step")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed must (with overwhelming probability) differ somewhere.
	c := schedule(NewInjector(Plan{Seed: 43, PanicRate: 0.2, NaNRate: 0.1, StallRate: 0.05}), 500, "axpy", "cg.step")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 500-decision schedules")
	}
}

func TestFaultRatesPartitionOneDraw(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, PanicRate: 0.3, NaNRate: 0.3, StallRate: 0.3})
	const n = 10000
	var got [8]int
	for _, k := range schedule(in, n, "t", "") {
		got[k]++
	}
	for k, want := range map[Kind]float64{Panic: 0.3, NaN: 0.3, Stall: 0.3, None: 0.1} {
		frac := float64(got[k]) / n
		if frac < want-0.05 || frac > want+0.05 {
			t.Errorf("%v rate = %.3f, want ≈ %.2f", k, frac, want)
		}
	}
	if in.Injected() != int64(got[Panic]+got[NaN]+got[Stall]) {
		t.Fatalf("Injected = %d, counts say %d", in.Injected(), got[Panic]+got[NaN]+got[Stall])
	}
	if in.Count(Panic) != int64(got[Panic]) {
		t.Fatalf("Count(Panic) = %d, want %d", in.Count(Panic), got[Panic])
	}
}

func TestFaultFiltersConsumeNoRandomness(t *testing.T) {
	plan := Plan{Seed: 7, PanicRate: 0.5, Names: []string{"axpy"}}
	// Schedule A: only eligible decisions.
	a := schedule(NewInjector(plan), 100, "axpy", "")
	// Schedule B: the same eligible decisions interleaved with filtered-out
	// ones. The eligible subsequence must be identical.
	in := NewInjector(plan)
	var b []Kind
	for i := 0; i < 100; i++ {
		if got := in.Decide("dot.partial", "", -1); got.Kind != None {
			t.Fatal("filtered-out task was injected")
		}
		b = append(b, in.Decide("axpy", "", -1).Kind)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("filtered tasks perturbed the schedule at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFaultPhaseFilter(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, PanicRate: 1, Phases: []string{"cg.step"}})
	if in.Decide("axpy", "resilient.verify", -1).Kind != None {
		t.Fatal("wrong phase was injected")
	}
	if in.Decide("axpy", "cg.step", -1).Kind != Panic {
		t.Fatal("matching phase was not injected at rate 1")
	}
}

func TestFaultPieceFilter(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, BitFlipRate: 1, Pieces: []int{2}})
	if in.Decide("axpy", "", 0).Kind != None {
		t.Fatal("wrong piece was injected")
	}
	if in.Decide("axpy", "", -1).Kind != None {
		t.Fatal("pieceless task was injected under a piece filter")
	}
	if in.Decide("axpy", "", 2).Kind != BitFlip {
		t.Fatal("matching piece was not injected at rate 1")
	}
	// Filtered pieces consume no randomness: the eligible subsequence is
	// unperturbed by interleaved off-piece decisions.
	plan := Plan{Seed: 11, BitFlipRate: 0.5, Pieces: []int{1}}
	a, b := NewInjector(plan), NewInjector(plan)
	for i := 0; i < 50; i++ {
		b.Decide("axpy", "", 0)
		if a.Decide("axpy", "", 1).Kind != b.Decide("axpy", "", 1).Kind {
			t.Fatalf("off-piece decisions perturbed the schedule at %d", i)
		}
	}
}

func TestFaultMaxFaultsCap(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, PanicRate: 1, MaxFaults: 3})
	for _, k := range schedule(in, 10, "t", "") {
		_ = k
	}
	if in.Injected() != 3 {
		t.Fatalf("Injected = %d, want cap 3", in.Injected())
	}
}

func TestFaultStickyAndStallPropagate(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, StallRate: 1, StallFor: 7 * time.Millisecond, Sticky: true})
	inj := in.Decide("t", "", -1)
	if inj.Kind != Stall || !inj.Sticky || inj.Stall != 7*time.Millisecond {
		t.Fatalf("injection = %+v", inj)
	}
}

func TestFaultDefaultStall(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, StallRate: 1})
	if got := in.Decide("t", "", -1).Stall; got != 50*time.Millisecond {
		t.Fatalf("default stall = %v, want 50ms", got)
	}
}

func TestFaultBitFlipInjectionParams(t *testing.T) {
	in := NewInjector(Plan{Seed: 5, BitFlipRate: 1, Bit: 52})
	inj := in.Decide("t", "", -1)
	if inj.Kind != BitFlip || inj.Bit != 52 {
		t.Fatalf("injection = %+v, want pinned bit 52", inj)
	}
	if inj.Pos < 0 || inj.Pos >= 1 {
		t.Fatalf("Pos = %v, want in [0,1)", inj.Pos)
	}
	// Same seed, same corruption site.
	again := NewInjector(Plan{Seed: 5, BitFlipRate: 1, Bit: 52}).Decide("t", "", -1)
	if again.Pos != inj.Pos || again.Bit != inj.Bit {
		t.Fatalf("corruption params not deterministic: %+v vs %+v", inj, again)
	}
	// Random bit mode stays in range and is deterministic too.
	rb := NewInjector(Plan{Seed: 9, BitFlipRate: 1, RandomBit: true})
	b1 := rb.Decide("t", "", -1).Bit
	b2 := NewInjector(Plan{Seed: 9, BitFlipRate: 1, RandomBit: true}).Decide("t", "", -1).Bit
	if b1 != b2 || b1 < 0 || b1 > 63 {
		t.Fatalf("random bit: %d vs %d", b1, b2)
	}
}

func TestFaultCorruptValue(t *testing.T) {
	if got := FlipBit(1.0, 63); got != -1.0 {
		t.Fatalf("sign flip of 1.0 = %v, want -1", got)
	}
	// 1.5 has biased exponent 1023 (odd), so flipping exponent bit 52
	// clears it to 1022: the value halves.
	if got := FlipBit(1.5, 52); got != 0.75 {
		t.Fatalf("exponent-bit flip of 1.5 = %v, want 0.75", got)
	}
	if got := FlipBit(FlipBit(2.25, 17), 17); got != 2.25 {
		t.Fatalf("double flip not an involution: %v", got)
	}
	inj := Injection{Kind: Scale, Factor: 2}
	if got := inj.CorruptValue(3.0); got != 6.0 {
		t.Fatalf("scale corruption = %v, want 6", got)
	}
	if got := (Injection{Kind: Stall}).CorruptValue(3.0); got != 3.0 {
		t.Fatalf("non-corrupting kind changed the value: %v", got)
	}
	if v := FlipBit(1.0, 64); v != 1.0 {
		t.Fatalf("out-of-range bit changed the value: %v", v)
	}
}

// Every kind's rate key round-trips: ParsePlan("<kind>=1") must yield an
// injector whose decisions stringify back to the same kind name.
func TestFaultKindRoundTrip(t *testing.T) {
	for _, k := range Kinds {
		spec := fmt.Sprintf("%s=1", k)
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		got := NewInjector(p).Decide("t", "", -1).Kind
		if got.String() != k.String() {
			t.Errorf("ParsePlan(%q) → Decide → %q, want %q", spec, got, k)
		}
	}
	if None.String() != "none" {
		t.Errorf("None.String() = %q", None)
	}
}

func TestFaultNewInjectorRejectsBadRates(t *testing.T) {
	for _, p := range []Plan{
		{PanicRate: 0.6, NaNRate: 0.6},
		{PanicRate: -0.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewInjector(%+v) did not panic", p)
				}
			}()
			NewInjector(p)
		}()
	}
}

func TestFaultParsePlan(t *testing.T) {
	p, err := ParsePlan("panic=0.01,nan=0.001,stall=0.002,seed=9,stallms=25,sticky=true,max=4,name=axpy|dot.partial,phase=cg.step")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		Seed: 9, PanicRate: 0.01, NaNRate: 0.001, StallRate: 0.002,
		StallFor: 25 * time.Millisecond, Sticky: true, MaxFaults: 4,
	}
	if p.Seed != want.Seed || p.PanicRate != want.PanicRate || p.NaNRate != want.NaNRate ||
		p.StallRate != want.StallRate || p.StallFor != want.StallFor ||
		p.Sticky != want.Sticky || p.MaxFaults != want.MaxFaults {
		t.Fatalf("ParsePlan = %+v", p)
	}
	if len(p.Names) != 2 || p.Names[0] != "axpy" || p.Names[1] != "dot.partial" {
		t.Fatalf("Names = %v", p.Names)
	}
	if len(p.Phases) != 1 || p.Phases[0] != "cg.step" {
		t.Fatalf("Phases = %v", p.Phases)
	}
	if !p.Active() {
		t.Fatal("parsed plan should be active")
	}
}

func TestFaultParsePlanEmptyAndErrors(t *testing.T) {
	if p, err := ParsePlan("   "); err != nil || p.Active() {
		t.Fatalf("empty spec: plan %+v, err %v", p, err)
	}
	for _, bad := range []string{
		"panic",                 // not key=value
		"panic=lots",            // bad float
		"bogus=1",               // unknown key
		"panic=0.9,nan=0.9",     // rates sum past 1
		"panic=-0.1",            // negative rate
		"bitflip=0.9,scale=0.2", // new rates join the sum check
		"bit=64",                // bit out of range
		"piece=0|x",             // bad piece list
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) succeeded, want error", bad)
		}
	}
	// Unknown keys name every valid key, so a typo'd kind is self-repairing
	// from the error text alone (mirrors sparse.ErrUnknownFormat).
	_, err := ParsePlan("bogus=1")
	if err == nil {
		t.Fatal("unknown key accepted")
	}
	for _, k := range Kinds {
		if !strings.Contains(err.Error(), k.String()) {
			t.Errorf("unknown-key error %q does not list kind %q", err, k)
		}
	}
}

func TestFaultParsePlanCorruptionKeys(t *testing.T) {
	p, err := ParsePlan("bitflip=0.02,scale=0.01,bit=52,factor=1.5,piece=0|3,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if p.BitFlipRate != 0.02 || p.ScaleRate != 0.01 || p.Bit != 52 || p.ScaleBy != 1.5 {
		t.Fatalf("parsed plan = %+v", p)
	}
	if len(p.Pieces) != 2 || p.Pieces[0] != 0 || p.Pieces[1] != 3 {
		t.Fatalf("Pieces = %v", p.Pieces)
	}
	if !p.Active() {
		t.Fatal("corruption-only plan should be active")
	}
	if rp, err := ParsePlan("bitflip=1,bit=rand"); err != nil || !rp.RandomBit {
		t.Fatalf("bit=rand: plan %+v, err %v", rp, err)
	}
}
