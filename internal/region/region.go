// Package region provides logical regions: named, field-structured data
// collections over index spaces, in the style of Legion's region
// abstraction. A logical region pairs an index space with a field space;
// a physical instance holds the actual storage as structure-of-arrays.
//
// The task runtime (package taskrt) performs dependence analysis on
// logical region references — (region, field, subset, privilege) tuples —
// while computational kernels operate directly on the physical storage.
package region

import (
	"fmt"
	"sync/atomic"

	"kdrsolvers/internal/index"
)

// ID uniquely identifies a logical region within a process.
type ID int64

var nextID atomic.Int64

// LastID returns the most recently assigned region ID. IDs are assigned
// from a process-wide monotonic counter, so a region r was created after
// a call to LastID exactly when r.ID() > the returned watermark — the
// property trace memoization uses to tell iteration-scoped scratch
// regions from long-lived ones.
func LastID() ID { return ID(nextID.Load()) }

// A Region is a logical region: an index space paired with a set of named
// float64 fields and a physical structure-of-arrays instance backing them.
type Region struct {
	id    ID
	name  string
	space index.Space
	// fields maps field names to dense storage indexed by the points of
	// the space's bounding interval (the common case is a dense space).
	fields map[string][]float64
	// virtual regions carry no storage; see NewVirtual.
	virtual bool
}

// NewVirtual creates a region with no physical storage. Virtual regions
// participate fully in dependence analysis — which only needs index
// subsets — and let paper-scale problems (up to 2^32 unknowns) run through
// the simulator without allocating vectors. Field panics on a virtual
// region.
func NewVirtual(name string, space index.Space) *Region {
	return &Region{
		id:      ID(nextID.Add(1)),
		name:    name,
		space:   space,
		virtual: true,
	}
}

// Adopt creates a region over the given index space whose single field
// aliases caller-owned storage, implementing the paper's in-place
// ingestion (P4): vector data is consumed where it already lives, with no
// copy into library-specific structures. len(data) must cover the space.
func Adopt(name string, space index.Space, field string, data []float64) *Region {
	if n := space.Set.Bounds().Hi + 1; int64(len(data)) < n {
		panic(fmt.Sprintf("region: Adopt storage too small: %d < %d", len(data), n))
	}
	return &Region{
		id:     ID(nextID.Add(1)),
		name:   name,
		space:  space,
		fields: map[string][]float64{field: data},
	}
}

// New creates a region over the given index space with the named float64
// fields, all zero-initialized.
func New(name string, space index.Space, fieldNames ...string) *Region {
	n := space.Set.Bounds().Hi + 1
	if n < 0 {
		n = 0
	}
	fields := make(map[string][]float64, len(fieldNames))
	for _, f := range fieldNames {
		fields[f] = make([]float64, n)
	}
	return &Region{
		id:     ID(nextID.Add(1)),
		name:   name,
		space:  space,
		fields: fields,
	}
}

// ID returns the region's unique identifier.
func (r *Region) ID() ID { return r.id }

// Name returns the region's diagnostic name.
func (r *Region) Name() string { return r.name }

// Space returns the region's index space.
func (r *Region) Space() index.Space { return r.space }

// Virtual reports whether the region has no physical storage.
func (r *Region) Virtual() bool { return r.virtual }

// Field returns the storage of the named field. It panics if the field
// does not exist or the region is virtual, since both are programming
// errors.
func (r *Region) Field(name string) []float64 {
	if r.virtual {
		panic(fmt.Sprintf("region: %s is virtual and has no storage", r.name))
	}
	f, ok := r.fields[name]
	if !ok {
		panic(fmt.Sprintf("region: %s has no field %q", r.name, name))
	}
	return f
}

// HasField reports whether the region has the named field.
func (r *Region) HasField(name string) bool {
	_, ok := r.fields[name]
	return ok
}

// AddField adds a zero-initialized field, returning its storage.
// It panics if the field already exists.
func (r *Region) AddField(name string) []float64 {
	if r.HasField(name) {
		panic(fmt.Sprintf("region: %s already has field %q", r.name, name))
	}
	n := r.space.Set.Bounds().Hi + 1
	if n < 0 {
		n = 0
	}
	f := make([]float64, n)
	r.fields[name] = f
	return f
}

// Fields returns the field names in unspecified order.
func (r *Region) Fields() []string {
	out := make([]string, 0, len(r.fields))
	for f := range r.fields {
		out = append(out, f)
	}
	return out
}

func (r *Region) String() string {
	return fmt.Sprintf("region %s#%d over %s", r.name, r.id, r.space)
}

// Ref names data touched by a task: a subset of one field of one region
// together with the access privilege. Refs are what the task runtime's
// dependence (interference) analysis operates on.
type Ref struct {
	Region ID
	Field  string
	Subset index.IntervalSet
	Priv   Privilege
}

// Privilege is the access mode a task declares on a region reference,
// mirroring Legion's privilege system.
type Privilege int

const (
	// ReadOnly data is only read; concurrent readers do not conflict.
	ReadOnly Privilege = iota
	// ReadWrite data is read and written; conflicts with everything.
	ReadWrite
	// WriteDiscard data is overwritten without reading; conflicts with
	// everything but needs no data from prior writers.
	WriteDiscard
	// ReduceSum data is updated with a commutative sum; mutually ordered
	// to keep floating-point execution deterministic, but requires no
	// incoming data transfer of the accumulator.
	ReduceSum
)

// String returns the privilege name.
func (p Privilege) String() string {
	switch p {
	case ReadOnly:
		return "RO"
	case ReadWrite:
		return "RW"
	case WriteDiscard:
		return "WD"
	case ReduceSum:
		return "R+"
	}
	return fmt.Sprintf("Privilege(%d)", int(p))
}

// Conflicts reports whether two privileges on overlapping data require an
// ordering edge between their tasks.
func Conflicts(a, b Privilege) bool {
	if a == ReadOnly && b == ReadOnly {
		return false
	}
	return true
}

// Writes reports whether the privilege modifies data.
func (p Privilege) Writes() bool { return p != ReadOnly }

// VectorBytesOf returns the size in bytes of the float64 data covered by
// a subset — the payload a dependence edge over that subset must move.
func VectorBytesOf(s index.IntervalSet) int64 { return 8 * s.Size() }
