package region

import (
	"testing"

	"kdrsolvers/internal/index"
)

func TestRegionFields(t *testing.T) {
	r := New("x", index.NewSpace("D", 10), "val")
	if r.Name() != "x" || r.Space().Size() != 10 {
		t.Fatal("metadata wrong")
	}
	f := r.Field("val")
	if len(f) != 10 {
		t.Fatalf("field len = %d", len(f))
	}
	f[3] = 7
	if r.Field("val")[3] != 7 {
		t.Fatal("field storage not shared")
	}
	if !r.HasField("val") || r.HasField("nope") {
		t.Fatal("HasField wrong")
	}
	g := r.AddField("tmp")
	if len(g) != 10 || len(r.Fields()) != 2 {
		t.Fatal("AddField wrong")
	}
	if r.String() == "" {
		t.Fatal("String empty")
	}
}

func TestRegionUniqueIDs(t *testing.T) {
	a := New("a", index.NewSpace("D", 1), "v")
	b := New("b", index.NewSpace("D", 1), "v")
	if a.ID() == b.ID() {
		t.Fatal("region IDs must be unique")
	}
}

func TestRegionPanics(t *testing.T) {
	r := New("x", index.NewSpace("D", 2), "v")
	for _, fn := range []func(){
		func() { r.Field("missing") },
		func() { r.AddField("v") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEmptyRegion(t *testing.T) {
	r := New("e", index.NewSparseSpace("E", index.IntervalSet{}), "v")
	if len(r.Field("v")) != 0 {
		t.Fatal("empty region should have empty fields")
	}
}

func TestPrivilegeConflicts(t *testing.T) {
	cases := []struct {
		a, b Privilege
		want bool
	}{
		{ReadOnly, ReadOnly, false},
		{ReadOnly, ReadWrite, true},
		{ReadWrite, ReadOnly, true},
		{ReadWrite, ReadWrite, true},
		{WriteDiscard, ReadOnly, true},
		{ReduceSum, ReduceSum, true}, // serialized for determinism
		{ReduceSum, ReadOnly, true},
	}
	for _, c := range cases {
		if got := Conflicts(c.a, c.b); got != c.want {
			t.Errorf("Conflicts(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if ReadOnly.Writes() || !ReadWrite.Writes() || !WriteDiscard.Writes() || !ReduceSum.Writes() {
		t.Error("Writes() wrong")
	}
	for _, p := range []Privilege{ReadOnly, ReadWrite, WriteDiscard, ReduceSum, Privilege(99)} {
		if p.String() == "" {
			t.Error("String empty")
		}
	}
}

func TestVirtualRegion(t *testing.T) {
	r := NewVirtual("v", index.NewSpace("D", 1<<40))
	if !r.Virtual() {
		t.Fatal("Virtual() = false")
	}
	if r.Space().Size() != 1<<40 {
		t.Fatal("virtual regions carry full-size spaces without storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Field on a virtual region must panic")
		}
	}()
	r.Field("x")
}

func TestAdoptAliasesStorage(t *testing.T) {
	data := []float64{1, 2, 3}
	r := Adopt("x", index.NewSpace("D", 3), "v", data)
	if r.Virtual() {
		t.Fatal("adopted region is physical")
	}
	r.Field("v")[1] = 42
	if data[1] != 42 {
		t.Fatal("Adopt must alias, not copy")
	}
}

func TestAdoptTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Adopt("x", index.NewSpace("D", 5), "v", make([]float64, 3))
}

func TestVectorBytesOf(t *testing.T) {
	if VectorBytesOf(index.Span(0, 9)) != 80 {
		t.Fatal("VectorBytesOf wrong")
	}
	if VectorBytesOf(index.IntervalSet{}) != 0 {
		t.Fatal("empty set has no bytes")
	}
}
