package figures

import (
	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sparse"
)

// Fig9Row is one point of the Figure 9 experiment: BiCGStab on a 5-point
// Laplacian over a 2^n × 2^n grid, formulated once as a single-operator
// system and once as a multi-operator system over two half-grids.
type Fig9Row struct {
	// LogN is the grid exponent: the grid is 2^LogN × 2^LogN.
	LogN int
	// Single and Multi are seconds per iteration for the two
	// formulations.
	Single, Multi float64
}

// SplitPlanner builds the Figure 9 multi-operator formulation on a
// virtual planner: the 2^e × 2^e grid split into two half-grids D1, D2
// with self-interaction stencils A11, A22 and single-diagonal
// boundary-interaction bands A12, A21 (Section 6.2). Each component
// carries the full vp-piece canonical partition, exactly as in the paper
// where the same -vp flag applies per domain space: the formulation
// doubles the piece count, which is both its small-size overhead cost and
// its large-size overlap benefit (two half-size multiplies per processor
// let compute hide boundary communication).
func SplitPlanner(m machine.Machine, e int, vp int) *core.Planner {
	nx := int64(1) << e
	half := nx / 2
	n := half * nx // unknowns per half

	p := core.NewPlanner(core.Config{Machine: m, Virtual: true})
	d1 := p.AddSolVectorVirtual(n, index.EqualPartition(index.NewSpace("D1", n), vp))
	d2 := p.AddSolVectorVirtual(n, index.EqualPartition(index.NewSpace("D2", n), vp))
	r1 := p.AddRHSVectorVirtual(n, index.EqualPartition(index.NewSpace("R1", n), vp))
	r2 := p.AddRHSVectorVirtual(n, index.EqualPartition(index.NewSpace("R2", n), vp))

	// Self-interaction: the 5-point stencil restricted to each half.
	a11 := sparse.NewStencilOperator(sparse.Stencil2D5, index.NewGrid(half, nx))
	a22 := sparse.NewStencilOperator(sparse.Stencil2D5, index.NewGrid(half, nx))
	// Boundary interaction: the last grid row of one half couples to the
	// first grid row of the other — a single thin diagonal.
	off := (half - 1) * nx
	a12 := sparse.ConstBand(n, n, []int64{-off}, []float64{-1}) // x2 row 0 → y1 row half-1
	a21 := sparse.ConstBand(n, n, []int64{off}, []float64{-1})  // x1 row half-1 → y2 row 0

	p.AddOperator(a11, d1, r1)
	p.AddOperator(a12, d2, r1)
	p.AddOperator(a21, d1, r2)
	p.AddOperator(a22, d2, r2)
	p.Finalize()
	return p
}

// Fig9 sweeps grid exponents, measuring BiCGStab per-iteration time for
// both formulations. The paper sweeps 2^n × 2^n up to 2^16 × 2^16 = 2^32
// unknowns on 64 GPUs.
func Fig9(m machine.Machine, exps []int, warmup, timed int) []Fig9Row {
	vp := m.NumProcs()
	var rows []Fig9Row
	for _, e := range exps {
		n := int64(1) << uint(2*e)
		single := KDRIterTime(m, sparse.Stencil2D5, n, "bicgstab", warmup, timed,
			KDROptions{Tracing: true, VP: vp})
		multi := MeasurePlanner(SplitPlanner(m, e, vp), "bicgstab", warmup, timed,
			KDROptions{Tracing: true})
		rows = append(rows, Fig9Row{LogN: e, Single: single.SecondsPerIter, Multi: multi.SecondsPerIter})
	}
	return rows
}
