package figures

import (
	"kdrsolvers/internal/baseline"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sparse"
)

// The artifact description repeats every Figure 8 benchmark "for each
// node count (in our case, scaling from 1 to 256 in powers of two)".
// StrongScaling reproduces that protocol: a fixed problem swept across
// machine sizes.

// ScalingRow is one (node count) point of a strong-scaling sweep.
type ScalingRow struct {
	Nodes    int
	GPUs     int
	KDR      float64
	PETSc    float64
	Trilinos float64
	// KDREfficiency is the parallel efficiency of the KDR row relative
	// to the smallest machine in the sweep: t₁·p₁ / (tₚ·p).
	KDREfficiency float64
}

// WeakScaling measures per-iteration time with fixed work per GPU
// (perGPU unknowns) across node counts: flat curves mean perfect weak
// scaling; the upward drift is communication and collective latency.
func WeakScaling(kind sparse.StencilKind, perGPU int64, solver string,
	minNodes, maxNodes, warmup, timed int) []ScalingRow {
	var rows []ScalingRow
	var base float64
	for nodes := minNodes; nodes <= maxNodes; nodes *= 2 {
		m := machine.Lassen(nodes)
		n := perGPU * int64(m.NumProcs())
		row := ScalingRow{Nodes: nodes, GPUs: m.NumProcs()}
		row.KDR = KDRIterTime(m, kind, n, solver, warmup, timed,
			KDROptions{Tracing: true}).SecondsPerIter
		if solver != "gmres" {
			row.PETSc = BaselineIterTime(baseline.PETSc(), m, kind, n, solver,
				warmup, timed).SecondsPerIter
		}
		row.Trilinos = BaselineIterTime(baseline.Trilinos(), m, kind, n, solver,
			warmup, timed).SecondsPerIter
		if base == 0 {
			base = row.KDR
		}
		// Weak-scaling efficiency: base time over current time.
		row.KDREfficiency = base / row.KDR
		rows = append(rows, row)
	}
	return rows
}

// StrongScaling measures per-iteration time for a fixed problem across
// node counts (powers of two from minNodes to maxNodes).
func StrongScaling(kind sparse.StencilKind, n int64, solver string,
	minNodes, maxNodes, warmup, timed int) []ScalingRow {
	var rows []ScalingRow
	var base float64
	var baseGPUs int
	for nodes := minNodes; nodes <= maxNodes; nodes *= 2 {
		m := machine.Lassen(nodes)
		row := ScalingRow{Nodes: nodes, GPUs: m.NumProcs()}
		row.KDR = KDRIterTime(m, kind, n, solver, warmup, timed,
			KDROptions{Tracing: true}).SecondsPerIter
		if solver != "gmres" {
			row.PETSc = BaselineIterTime(baseline.PETSc(), m, kind, n, solver,
				warmup, timed).SecondsPerIter
		}
		row.Trilinos = BaselineIterTime(baseline.Trilinos(), m, kind, n, solver,
			warmup, timed).SecondsPerIter
		if base == 0 {
			base = row.KDR
			baseGPUs = row.GPUs
		}
		row.KDREfficiency = (base * float64(baseGPUs)) / (row.KDR * float64(row.GPUs))
		rows = append(rows, row)
	}
	return rows
}
