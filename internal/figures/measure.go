// Package figures regenerates every figure of the paper's evaluation
// (Section 6): the Figure 8 library comparison grid, the Figure 9
// multi-operator crossover, and the Figure 10 dynamic load-balancing
// trace, plus the ablation studies DESIGN.md calls out.
//
// All measurements follow the paper's protocol — warmup iterations
// followed by timed iterations, reporting time per iteration — with the
// wall clock replaced by the discrete-event simulator per the
// substitution rule. Problem construction uses matrix-free operators and
// virtual planners, so the sweeps reach the paper's full 2^32-unknown
// scale on a laptop.
package figures

import (
	"kdrsolvers/internal/baseline"
	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sim"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
)

// Runtime overhead constants of the KDR (Legion-like) dynamic runtime.
const (
	// KDRTaskOverhead is the per-task cost of dynamic dependence
	// analysis, mapping, and deferred-execution bookkeeping.
	KDRTaskOverhead = 15e-6
	// KDRTracedOverhead replaces KDRTaskOverhead for tasks replayed from
	// a memoized trace (dynamic tracing, Lee et al.).
	KDRTracedOverhead = 4e-6
)

// Measurement is one timed configuration.
type Measurement struct {
	// SecondsPerIter is the simulated time per solver iteration.
	SecondsPerIter float64
	// CommBytesPerIter is the inter-node traffic per iteration.
	CommBytesPerIter float64
	// TasksPerIter is the task count per iteration.
	TasksPerIter float64
}

// KDROptions tunes a KDR-side measurement.
type KDROptions struct {
	// Tracing enables dynamic-trace memoization (the production
	// configuration); disabling it is the tracing ablation.
	Tracing bool
	// VP is the number of vector pieces; 0 means one per processor, the
	// paper's setting (vp = 4 × nodes on Lassen).
	VP int
	// BSP replays the recorded graph under the bulk-synchronous
	// scheduler instead of the overlapping one — the overlap ablation.
	BSP bool
}

// stencilPlanner builds a virtual single-operator planner for a stencil
// problem of n unknowns.
func stencilPlanner(m machine.Machine, kind sparse.StencilKind, n int64, vp int) *core.Planner {
	op := sparse.NewStencilOperator(kind, kind.GridFor(n))
	p := core.NewPlanner(core.Config{Machine: m, Virtual: true})
	si := p.AddSolVectorVirtual(n, index.EqualPartition(index.NewSpace("D", n), vp))
	ri := p.AddRHSVectorVirtual(n, index.EqualPartition(index.NewSpace("R", n), vp))
	p.AddOperator(op, si, ri)
	p.Finalize()
	return p
}

// MeasurePlanner runs warmup then timed iterations of a solver on an
// already-finalized planner and reports marginal per-iteration cost under
// the simulator. With opt.Tracing the solvers bracket their own repeated
// launch sequences (each step, or each GMRES restart cycle) in runtime
// trace scopes, so warmup doubles as trace record-and-calibrate and the
// timed iterations replay memoized dependence analysis.
func MeasurePlanner(p *core.Planner, solverName string, warmup, timed int, opt KDROptions) Measurement {
	p.SetTracing(opt.Tracing)
	s := solvers.New(solverName, p)
	step := func(int) { s.Step() }
	for i := 0; i < warmup; i++ {
		step(i)
	}
	p.Drain()
	simOpts := sim.Options{TaskOverhead: KDRTaskOverhead, TracedOverhead: KDRTracedOverhead}
	simulate := sim.Simulate
	if opt.BSP {
		simulate = sim.SimulateBSP
	}
	warm := simulate(p.Runtime().Graph(), p.Machine(), simOpts)
	warmLen := p.Runtime().Graph().Len()
	for i := 0; i < timed; i++ {
		step(warmup + i)
	}
	p.Drain()
	g := p.Runtime().Graph()
	full := simulate(g, p.Machine(), simOpts)
	return Measurement{
		SecondsPerIter:   (full.Makespan - warm.Makespan) / float64(timed),
		CommBytesPerIter: float64(full.CommBytes-warm.CommBytes) / float64(timed),
		TasksPerIter:     float64(g.Len()-warmLen) / float64(timed),
	}
}

// KDRIterTime measures the KDR implementation on a stencil problem.
func KDRIterTime(m machine.Machine, kind sparse.StencilKind, n int64, solverName string,
	warmup, timed int, opt KDROptions) Measurement {
	vp := opt.VP
	if vp == 0 {
		vp = m.NumProcs()
	}
	p := stencilPlanner(m, kind, n, vp)
	return MeasurePlanner(p, solverName, warmup, timed, opt)
}

// BaselineIterTime measures a baseline library on the same problem: the
// marginal per-iteration makespan between warmup and warmup+timed
// schedules.
func BaselineIterTime(lib baseline.Library, m machine.Machine, kind sparse.StencilKind,
	n int64, solverName string, warmup, timed int) Measurement {
	grid := kind.GridFor(n)
	gWarm := baseline.NewSystem(lib, m, kind, grid).BuildSolver(solverName, warmup)
	gFull := baseline.NewSystem(lib, m, kind, grid).BuildSolver(solverName, warmup+timed)
	warm := sim.Simulate(gWarm, m, sim.Options{})
	full := sim.Simulate(gFull, m, sim.Options{})
	return Measurement{
		SecondsPerIter:   (full.Makespan - warm.Makespan) / float64(timed),
		CommBytesPerIter: float64(full.CommBytes-warm.CommBytes) / float64(timed),
		TasksPerIter:     float64(gFull.Len()-gWarm.Len()) / float64(timed),
	}
}

// Baseline profiles used across the figure runners.
var (
	basePETSc    = baseline.PETSc()
	baseTrilinos = baseline.Trilinos()
)
