package figures

import (
	"math"

	"kdrsolvers/internal/baseline"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sparse"
)

// Fig8Row is one point of the Figure 8 grid: a (stencil, solver, size)
// cell with per-iteration times for the three libraries. PETSc is NaN for
// GMRES (excluded in the paper: its restart policy differs).
type Fig8Row struct {
	Stencil  sparse.StencilKind
	Solver   string
	N        int64
	KDR      float64
	PETSc    float64
	Trilinos float64
}

// Fig8Stencils and Fig8Solvers enumerate the 4 × 3 subplot grid.
var (
	Fig8Stencils = []sparse.StencilKind{
		sparse.Stencil1D3, sparse.Stencil2D5, sparse.Stencil3D7, sparse.Stencil3D27,
	}
	Fig8Solvers = []string{"cg", "bicgstab", "gmres"}
)

// PaperSizes returns the paper's problem-size sweep, 2^24 … 2^32 in
// powers of two.
func PaperSizes() []int64 {
	var out []int64
	for e := 24; e <= 32; e++ {
		out = append(out, 1<<e)
	}
	return out
}

// QuickSizes returns a scaled-down sweep for fast regression runs,
// preserving the small-to-large shape.
func QuickSizes() []int64 {
	return []int64{1 << 20, 1 << 24, 1 << 28}
}

// Fig8 runs the full grid on the paper's 16-node (64-GPU) Lassen
// configuration.
func Fig8(m machine.Machine, sizes []int64, warmup, timed int) []Fig8Row {
	var rows []Fig8Row
	for _, st := range Fig8Stencils {
		for _, sv := range Fig8Solvers {
			for _, n := range sizes {
				row := Fig8Row{Stencil: st, Solver: sv, N: n}
				row.KDR = KDRIterTime(m, st, n, sv, warmup, timed,
					KDROptions{Tracing: true}).SecondsPerIter
				if sv == "gmres" {
					row.PETSc = math.NaN()
				} else {
					row.PETSc = BaselineIterTime(baseline.PETSc(), m, st, n, sv,
						warmup, timed).SecondsPerIter
				}
				row.Trilinos = BaselineIterTime(baseline.Trilinos(), m, st, n, sv,
					warmup, timed).SecondsPerIter
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// Summary is the paper's headline statistic: geometric-mean improvement
// of KDR over each baseline across the three largest problem sizes of
// every subplot (the paper reports 9.6% over Trilinos and 5.4% over
// PETSc).
type Summary struct {
	// VsPETSc and VsTrilinos are fractional improvements (0.05 = 5%
	// less time per iteration than the baseline).
	VsPETSc, VsTrilinos float64
}

// Summarize computes the geometric-mean improvements over the top
// `largest` sizes of each (stencil, solver) cell.
func Summarize(rows []Fig8Row, largest int) Summary {
	type cell struct {
		st sparse.StencilKind
		sv string
	}
	bySubplot := map[cell][]Fig8Row{}
	for _, r := range rows {
		c := cell{r.Stencil, r.Solver}
		bySubplot[c] = append(bySubplot[c], r)
	}
	var logP, logT []float64
	for _, rs := range bySubplot {
		// Rows are appended in increasing size order.
		lo := len(rs) - largest
		if lo < 0 {
			lo = 0
		}
		for _, r := range rs[lo:] {
			if !math.IsNaN(r.PETSc) && r.KDR > 0 {
				logP = append(logP, math.Log(r.PETSc/r.KDR))
			}
			if !math.IsNaN(r.Trilinos) && r.KDR > 0 {
				logT = append(logT, math.Log(r.Trilinos/r.KDR))
			}
		}
	}
	return Summary{
		VsPETSc:    math.Exp(mean(logP)) - 1,
		VsTrilinos: math.Exp(mean(logT)) - 1,
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
