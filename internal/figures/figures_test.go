package figures

import (
	"math"
	"testing"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/region"
	"kdrsolvers/internal/sim"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
	"kdrsolvers/internal/taskrt"
)

// The shape assertions of the paper's evaluation, at reduced iteration
// counts (the simulator is deterministic, so a handful of timed
// iterations measures the same per-iteration cost as the paper's 200).

func TestFig8SmallProblemsFavorBaselines(t *testing.T) {
	// Paper, Section 6.1: "The execution time of LegionSolvers on small
	// problems is dominated by fixed overheads" — the dynamic runtime
	// loses below the crossover. The claim is about the paper's
	// per-operation formulation ("cg-unfused" here); the fused CG cuts
	// per-iteration launches enough that it clears this baseline even at
	// small sizes, which TestFig8FusionBeatsPaperCrossover pins down.
	m := machine.Lassen(16)
	n := int64(1 << 16)
	kdr := KDRIterTime(m, sparse.Stencil2D5, n, "cg-unfused", 3, 5, KDROptions{Tracing: true})
	petsc := BaselineIterTime(basePETSc, m, sparse.Stencil2D5, n, "cg", 3, 5)
	if kdr.SecondsPerIter <= petsc.SecondsPerIter {
		t.Errorf("small problem: KDR (%.3g) should lose to PETSc (%.3g)",
			kdr.SecondsPerIter, petsc.SecondsPerIter)
	}
}

func TestFig8FusionBeatsPaperCrossover(t *testing.T) {
	// Fused kernels cut the dynamic runtime's fixed per-iteration cost by
	// about a third, so the fused CG beats both its own per-operation
	// formulation and the PETSc baseline at the paper's overhead-dominated
	// small size — the crossover of Figure 8 moves left of 2^16.
	m := machine.Lassen(16)
	n := int64(1 << 16)
	fused := KDRIterTime(m, sparse.Stencil2D5, n, "cg", 3, 5, KDROptions{Tracing: true})
	unfused := KDRIterTime(m, sparse.Stencil2D5, n, "cg-unfused", 3, 5, KDROptions{Tracing: true})
	petsc := BaselineIterTime(basePETSc, m, sparse.Stencil2D5, n, "cg", 3, 5)
	if fused.SecondsPerIter >= unfused.SecondsPerIter {
		t.Errorf("fused CG (%.3g) should beat unfused (%.3g) at small sizes",
			fused.SecondsPerIter, unfused.SecondsPerIter)
	}
	if fused.SecondsPerIter >= petsc.SecondsPerIter {
		t.Errorf("fused CG (%.3g) should beat PETSc (%.3g) at the paper's crossover size",
			fused.SecondsPerIter, petsc.SecondsPerIter)
	}
}

func TestFig8LargeProblemsFavorKDR(t *testing.T) {
	// Paper: "On larger problem sizes, LegionSolvers generally pulls
	// ahead" — overheads amortize and overlap plus kernel efficiency win.
	m := machine.Lassen(16)
	n := int64(1 << 30)
	for _, solver := range []string{"cg", "bicgstab"} {
		kdr := KDRIterTime(m, sparse.Stencil2D5, n, solver, 3, 5, KDROptions{Tracing: true})
		petsc := BaselineIterTime(basePETSc, m, sparse.Stencil2D5, n, solver, 3, 5)
		tril := BaselineIterTime(baseTrilinos, m, sparse.Stencil2D5, n, solver, 3, 5)
		if kdr.SecondsPerIter >= petsc.SecondsPerIter {
			t.Errorf("%s large: KDR (%.4g) should beat PETSc (%.4g)",
				solver, kdr.SecondsPerIter, petsc.SecondsPerIter)
		}
		if petsc.SecondsPerIter >= tril.SecondsPerIter {
			t.Errorf("%s large: PETSc (%.4g) should beat Trilinos (%.4g)",
				solver, petsc.SecondsPerIter, tril.SecondsPerIter)
		}
	}
}

func TestFig8TimeScalesWithSize(t *testing.T) {
	m := machine.Lassen(16)
	prev := 0.0
	for _, n := range []int64{1 << 22, 1 << 26, 1 << 30} {
		cur := KDRIterTime(m, sparse.Stencil3D7, n, "cg", 2, 4, KDROptions{Tracing: true}).SecondsPerIter
		if cur <= prev {
			t.Fatalf("per-iteration time must grow with n: %g after %g", cur, prev)
		}
		prev = cur
	}
}

func TestFig8StencilOrdering(t *testing.T) {
	// Denser stencils stream more bytes: at fixed n, 27-point > 7-point >
	// 5-point > 3-point per-iteration time.
	m := machine.Lassen(16)
	n := int64(1 << 28)
	var times []float64
	for _, st := range Fig8Stencils {
		times = append(times, KDRIterTime(m, st, n, "cg", 2, 4, KDROptions{Tracing: true}).SecondsPerIter)
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("stencil %v (%.4g) should cost more than %v (%.4g)",
				Fig8Stencils[i], times[i], Fig8Stencils[i-1], times[i-1])
		}
	}
}

func TestFig8GridAndSummary(t *testing.T) {
	m := machine.Lassen(16)
	rows := Fig8(m, []int64{1 << 20, 1 << 28, 1 << 32}, 2, 4)
	if len(rows) != 4*3*3 {
		t.Fatalf("rows = %d, want 36", len(rows))
	}
	for _, r := range rows {
		if r.KDR <= 0 || r.Trilinos <= 0 {
			t.Fatalf("nonpositive time in %+v", r)
		}
		if (r.Solver == "gmres") != math.IsNaN(r.PETSc) {
			t.Fatalf("PETSc must be NaN exactly for GMRES: %+v", r)
		}
	}
	s := Summarize(rows, 2)
	// The paper's headline: KDR ahead of both baselines at scale, more so
	// vs Trilinos (paper: 5.4% and 9.6%).
	if s.VsPETSc <= 0 || s.VsTrilinos <= 0 {
		t.Errorf("geomean improvements must be positive: %+v", s)
	}
	if s.VsTrilinos <= s.VsPETSc {
		t.Errorf("improvement vs Trilinos (%.3f) should exceed vs PETSc (%.3f)",
			s.VsTrilinos, s.VsPETSc)
	}
	if s.VsTrilinos > 0.30 || s.VsPETSc > 0.25 {
		t.Errorf("improvements implausibly large: %+v", s)
	}
}

func TestFig9Crossover(t *testing.T) {
	// Paper, Section 6.2: "For small problem sizes ... the multi-operator
	// system is slower due to fixed task launch overhead costs ... at
	// larger problem sizes, the multi-operator system becomes faster."
	// The simulator is deterministic, so the thin large-size margin is a
	// stable assertion; the crossover lands near 10^9 unknowns as in the
	// paper's Figure 9.
	m := machine.Lassen(64)
	rows := Fig9(m, []int{8, 16}, 3, 6)
	small, large := rows[0], rows[1]
	if small.Multi <= small.Single {
		t.Errorf("small grid: multi (%.4g) should be slower than single (%.4g)",
			small.Multi, small.Single)
	}
	if large.Multi >= large.Single {
		t.Errorf("large grid: multi (%.4g) should be faster than single (%.4g)",
			large.Multi, large.Single)
	}
}

func TestFig10DynamicBeatsStatic(t *testing.T) {
	cfg := Fig10Config{
		GridExp: 12, Nodes: 8, Pieces: 16, Iters: 120,
		RebalanceEvery: 10, RandomizeEvery: 40, Beta: 300, Seed: 3,
	}
	r := Fig10(cfg)
	if len(r.StaticIterTimes) != cfg.Iters || len(r.DynamicIterTimes) != cfg.Iters {
		t.Fatalf("trace lengths wrong: %d/%d", len(r.StaticIterTimes), len(r.DynamicIterTimes))
	}
	if r.Moves == 0 {
		t.Fatal("the balancer never moved a tile")
	}
	if r.Reduction <= 0.10 {
		t.Errorf("dynamic balancing should cut total time substantially, got %.1f%%",
			100*r.Reduction)
	}
	t.Logf("fig10: reduction = %.1f%%, moves = %d", 100*r.Reduction, r.Moves)
}

func TestAblationTracing(t *testing.T) {
	// Dynamic tracing is what hides the runtime's per-task analysis cost
	// on small problems.
	m := machine.Lassen(16)
	n := int64(1 << 20)
	traced := KDRIterTime(m, sparse.Stencil2D5, n, "cg", 3, 5, KDROptions{Tracing: true})
	untraced := KDRIterTime(m, sparse.Stencil2D5, n, "cg", 3, 5, KDROptions{Tracing: false})
	if traced.SecondsPerIter >= untraced.SecondsPerIter {
		t.Errorf("tracing (%.4g) should beat no tracing (%.4g)",
			traced.SecondsPerIter, untraced.SecondsPerIter)
	}
}

func TestAblationOverlap(t *testing.T) {
	// Replaying the same KDR graph bulk-synchronously must not be faster:
	// overlap is the P1 mechanism.
	m := machine.Lassen(16)
	n := int64(1 << 28)
	task := KDRIterTime(m, sparse.Stencil3D27, n, "cg", 3, 5, KDROptions{Tracing: true})
	bsp := KDRIterTime(m, sparse.Stencil3D27, n, "cg", 3, 5, KDROptions{Tracing: true, BSP: true})
	if task.SecondsPerIter > bsp.SecondsPerIter*1.0001 {
		t.Errorf("task schedule (%.4g) must not lose to BSP (%.4g)",
			task.SecondsPerIter, bsp.SecondsPerIter)
	}
}

func TestAblationPieces(t *testing.T) {
	// More pieces per processor add launch overhead without adding
	// parallelism at fixed machine size.
	m := machine.Lassen(4)
	n := int64(1 << 22)
	one := KDRIterTime(m, sparse.Stencil2D5, n, "cg", 3, 5, KDROptions{Tracing: true, VP: 16})
	four := KDRIterTime(m, sparse.Stencil2D5, n, "cg", 3, 5, KDROptions{Tracing: true, VP: 64})
	if one.SecondsPerIter >= four.SecondsPerIter {
		t.Errorf("vp=procs (%.4g) should beat vp=4x procs (%.4g)",
			one.SecondsPerIter, four.SecondsPerIter)
	}
}

func TestMeasurementAccounting(t *testing.T) {
	m := machine.Lassen(2)
	got := KDRIterTime(m, sparse.Stencil2D5, 1<<20, "cg", 2, 4, KDROptions{Tracing: true})
	if got.SecondsPerIter <= 0 || got.TasksPerIter <= 0 {
		t.Fatalf("measurement empty: %+v", got)
	}
	if got.CommBytesPerIter <= 0 {
		t.Fatal("a multi-node stencil run must communicate")
	}
	if len(PaperSizes()) != 9 || PaperSizes()[0] != 1<<24 {
		t.Fatal("PaperSizes wrong")
	}
	if len(QuickSizes()) == 0 {
		t.Fatal("QuickSizes empty")
	}
}

func TestInterleavedApplicationWork(t *testing.T) {
	// The paper's P1: a task-oriented runtime interleaves application
	// work with the solve, where an MPI library would serialize them.
	// The test self-calibrates: it measures the solver's idle window per
	// iteration (time the busiest processor spends waiting on dot-product
	// round trips), sizes per-iteration application tasks to half that
	// window, and checks that most of their cost disappears into the
	// gaps instead of extending the makespan.
	// A communication-heavy configuration: the 27-point stencil's halo
	// exchanges leave real idle windows under which application work can
	// hide.
	m := machine.Lassen(16)
	n := int64(1 << 28)
	const iters = 10
	const appChunks = 8 // small tasks fit fragmented idle windows
	opts := sim.Options{TaskOverhead: KDRTaskOverhead, TracedOverhead: KDRTracedOverhead}

	run := func(appCost float64) sim.Result {
		p := stencilPlanner(m, sparse.Stencil3D27, n, m.NumProcs())
		s := solvers.New("cg", p)
		appRegion := region.New("app", index.NewSpace("A", int64(m.NumProcs())), "v")
		for i := 0; i < iters; i++ {
			p.Runtime().BeginTrace("iter+app")
			s.Step()
			if appCost > 0 {
				// Independent application work per GPU between solver
				// steps (e.g. a local chemistry update), split into small
				// tasks so they fit the solver's fragmented idle windows —
				// granularity is what makes interleaving work.
				for pr := 0; pr < m.NumProcs(); pr++ {
					for chunk := 0; chunk < appChunks; chunk++ {
						p.Runtime().Launch(taskrt.TaskSpec{
							Name: "app.chemistry", Proc: pr, Cost: appCost,
							Refs: []region.Ref{{
								Region: appRegion.ID(), Field: "v",
								Subset: index.Span(int64(pr), int64(pr)),
								Priv:   region.ReadWrite,
							}},
						})
					}
				}
			}
			p.Runtime().EndTrace()
		}
		p.Drain()
		return sim.Simulate(p.Runtime().Graph(), m, opts)
	}

	base := run(0)
	maxBusy := 0.0
	for _, b := range base.ProcBusy {
		if b > maxBusy {
			maxBusy = b
		}
	}
	idlePerIter := (base.Makespan - maxBusy) / iters
	fixed := KDRTracedOverhead + m.KernelLaunch // app tasks replay inside the trace
	appCost := idlePerIter/2/appChunks - fixed
	if appCost <= 0 {
		t.Skipf("solver leaves no idle window at this configuration (idle/iter = %.3g)", idlePerIter)
	}

	combined := run(appCost)
	appTotal := float64(iters) * appChunks * (appCost + fixed) // serial app phase per GPU
	serialized := base.Makespan + appTotal
	hidden := serialized - combined.Makespan
	if hidden < appTotal*0.5 {
		t.Errorf("interleaving hid only %.3g of %.3g s of app work (solver %.4g, combined %.4g)",
			hidden, appTotal, base.Makespan, combined.Makespan)
	}
	if combined.Makespan < base.Makespan {
		t.Errorf("combined run cannot beat solver-only: %.4g vs %.4g",
			combined.Makespan, base.Makespan)
	}
	t.Logf("idle/iter %.3g s; app work %.3g s, hidden %.3g s (%.0f%%)",
		idlePerIter, appTotal, hidden, 100*hidden/appTotal)
}
