package figures

import (
	"testing"

	"kdrsolvers/internal/sparse"
)

func TestStrongScalingShape(t *testing.T) {
	// A large problem must speed up with more nodes, with efficiency
	// decaying (communication and fixed costs grow relative to the
	// shrinking per-GPU work).
	rows := StrongScaling(sparse.Stencil2D5, 1<<28, "cg", 2, 64, 2, 4)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2..64 nodes)", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].KDR >= rows[i-1].KDR {
			t.Errorf("no speedup from %d to %d nodes: %g -> %g",
				rows[i-1].Nodes, rows[i].Nodes, rows[i-1].KDR, rows[i].KDR)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.KDREfficiency != 1 {
		t.Errorf("base efficiency = %g, want 1", first.KDREfficiency)
	}
	if last.KDREfficiency >= first.KDREfficiency {
		t.Errorf("efficiency should decay with scale: %g -> %g",
			first.KDREfficiency, last.KDREfficiency)
	}
	if last.KDREfficiency <= 0.1 {
		t.Errorf("efficiency implausibly low at 64 nodes: %g", last.KDREfficiency)
	}
}

func TestStrongScalingSmallProblemSaturates(t *testing.T) {
	// A small problem stops scaling: per-iteration time at 64 nodes is
	// no better than at 16 (latency and overhead floor).
	rows := StrongScaling(sparse.Stencil1D3, 1<<20, "cg", 16, 64, 2, 4)
	if rows[len(rows)-1].KDR < rows[0].KDR*0.7 {
		t.Errorf("small problem should not keep scaling: %g -> %g",
			rows[0].KDR, rows[len(rows)-1].KDR)
	}
}

func TestStrongScalingGMRESSkipsPETSc(t *testing.T) {
	rows := StrongScaling(sparse.Stencil2D5, 1<<24, "gmres", 4, 8, 1, 2)
	for _, r := range rows {
		if r.PETSc != 0 {
			t.Fatalf("PETSc should be absent for GMRES: %+v", r)
		}
		if r.KDR <= 0 || r.Trilinos <= 0 {
			t.Fatalf("missing measurement: %+v", r)
		}
	}
}

func TestWeakScalingShape(t *testing.T) {
	// With fixed per-GPU work, per-iteration time grows only mildly with
	// node count (collectives and halos), never shrinks below the base.
	rows := WeakScaling(sparse.Stencil2D5, 1<<22, "cg", 2, 64, 2, 4)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	base := rows[0].KDR
	for _, r := range rows[1:] {
		if r.KDR < base*0.95 {
			t.Errorf("weak scaling cannot speed up: %g at %d nodes vs base %g",
				r.KDR, r.Nodes, base)
		}
		if r.KDR > base*3 {
			t.Errorf("weak scaling overhead implausible: %g at %d nodes vs base %g",
				r.KDR, r.Nodes, base)
		}
	}
	if rows[len(rows)-1].KDREfficiency > 1.01 {
		t.Errorf("efficiency above 1: %g", rows[len(rows)-1].KDREfficiency)
	}
}
