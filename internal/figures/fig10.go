package figures

import (
	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/loadbalance"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sim"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
	"kdrsolvers/internal/taskrt"
)

// Fig10Config describes the Section 6.3 dynamic load-balancing
// experiment. The paper runs CG on a 5-point stencil over a 2^16 × 2^16
// grid on 32 CPU nodes, with the grid in 64 domain pieces and the matrix
// in 64 × 64 tiles; each node's background task re-randomizes its core
// occupancy every 100 iterations, and the balancer migrates tiles every
// 10 iterations with β = 10⁻³ ms⁻¹.
//
// Tile decomposition note (recorded in DESIGN.md): the domain pieces are
// column strips of the grid and the range pieces are row strips, so
// every tile A_{i,j} is the dense grid block at their intersection with
// two genuinely distinct candidate owners — the aliasing row/column
// partitioning KDRSolvers supports and MPI libraries do not (Section
// 2.2). With both cuts row strips, off-tridiagonal tiles would be empty
// and carry no migratable work.
type Fig10Config struct {
	// GridExp: the grid is 2^GridExp × 2^GridExp.
	GridExp int
	// Nodes is the node count (paper: 32).
	Nodes int
	// Pieces is the domain/range piece count (paper: 64, two per node).
	Pieces int
	// Iters is the number of CG iterations to trace.
	Iters int
	// RebalanceEvery and RandomizeEvery are the migration and
	// background-load periods in iterations (paper: 10 and 100).
	RebalanceEvery, RandomizeEvery int
	// Beta is the adaptation rate in 1/seconds (paper: 10⁻³ ms⁻¹).
	Beta float64
	// Seed drives both the background load and the balancer.
	Seed int64
}

// DefaultFig10 returns the paper's configuration.
func DefaultFig10() Fig10Config {
	return Fig10Config{
		GridExp: 16, Nodes: 32, Pieces: 64, Iters: 500,
		RebalanceEvery: 10, RandomizeEvery: 100, Beta: 1.0, Seed: 1,
	}
}

// Fig10Result holds the per-iteration traces and totals.
type Fig10Result struct {
	// StaticIterTimes and DynamicIterTimes are seconds per iteration for
	// the two mappers.
	StaticIterTimes, DynamicIterTimes []float64
	// StaticTotal and DynamicTotal are summed iteration times.
	StaticTotal, DynamicTotal float64
	// Reduction is 1 − dynamic/static, the paper's headline (66%).
	Reduction float64
	// Moves is the number of tile migrations the balancer performed.
	Moves int
}

// fig10Tiles builds the tile candidate table: tile (i, j) may live with
// the input (column strip j) or output (row strip i) owner; the static
// assignment gives node n the tiles of its two output strips.
func fig10Tiles(pieces, nodes int) []loadbalance.Tile {
	perNode := pieces / nodes
	tiles := make([]loadbalance.Tile, 0, pieces*pieces)
	for i := 0; i < pieces; i++ {
		for j := 0; j < pieces; j++ {
			out := i / perNode
			in := j / perNode
			tiles = append(tiles, loadbalance.Tile{InNode: in, OutNode: out, Owner: out})
		}
	}
	return tiles
}

// fig10Planner assembles the 64-component, 64×64-tile virtual system.
// owner(op) maps an operator index to its executing node.
func fig10Planner(cfg Fig10Config, m machine.Machine, owner func(op int) int) *core.Planner {
	pieces := int64(cfg.Pieces)
	side := int64(1) << uint(cfg.GridExp)
	strip := side / pieces     // grid rows (or cols) per strip
	compSize := side * strip   // unknowns per strip
	blockSize := strip * strip // unknowns per tile block
	nnz := 5 * blockSize       // 5-point stencil entries per block
	perNode := cfg.Pieces / cfg.Nodes

	p := core.NewPlanner(core.Config{
		Machine: m,
		Virtual: true,
		Mapper: taskrt.FuncMapper(func(_ string, color int) int {
			return (color % cfg.Pieces) / perNode
		}),
		MatmulProc: func(op, _ int) int { return owner(op) },
	})
	for j := 0; j < cfg.Pieces; j++ {
		p.AddSolVectorVirtual(compSize, index.Partition{})
	}
	for i := 0; i < cfg.Pieces; i++ {
		p.AddRHSVectorVirtual(compSize, index.Partition{})
	}
	// Tile (i, j): reads block i of column strip j, writes block j of row
	// strip i (contiguous in the strip-local layouts chosen in DESIGN.md).
	for i := int64(0); i < pieces; i++ {
		for j := int64(0); j < pieces; j++ {
			inBlock := index.Interval{Lo: i * blockSize, Hi: (i+1)*blockSize - 1}
			outBlock := index.Interval{Lo: j * blockSize, Hi: (j+1)*blockSize - 1}
			tile := sparse.NewVirtualTile(compSize, compSize, nnz, inBlock, outBlock)
			p.AddOperator(tile, int(j), int(i))
		}
	}
	p.Finalize()
	return p
}

// runFig10 executes one mapper variant, returning per-iteration times.
func runFig10(cfg Fig10Config, dynamic bool) ([]float64, int) {
	m := machine.LassenCPU(cfg.Nodes)
	bal := loadbalance.New(cfg.Beta, 0, fig10Tiles(cfg.Pieces, cfg.Nodes), cfg.Seed)
	p := fig10Planner(cfg, m, bal.Owner)
	s := solvers.NewCG(p)
	p.Drain()
	load := loadbalance.NewNodeLoad(cfg.Nodes, 40, cfg.Seed)
	opts := sim.Options{TaskOverhead: KDRTaskOverhead, TracedOverhead: KDRTracedOverhead}

	// Reference time T0: one iteration under the average background load.
	mark := p.Runtime().Graph().Len()
	s.Step()
	p.Drain()
	ref := sim.Window(p.Runtime().Graph(), mark)
	uniform := make([]float64, cfg.Nodes)
	for i := range uniform {
		uniform[i] = load.AverageSlowdown()
	}
	refOpts := opts
	refOpts.NodeSlowdown = uniform
	refRes := sim.Simulate(ref, m, refOpts)
	bal.T0 = mean(refRes.NodeBusy)

	times := make([]float64, 0, cfg.Iters)
	for it := 0; it < cfg.Iters; it++ {
		if it%cfg.RandomizeEvery == 0 {
			load.Randomize()
		}
		mark = p.Runtime().Graph().Len()
		s.Step()
		p.Drain()
		w := sim.Window(p.Runtime().Graph(), mark)
		iterOpts := opts
		iterOpts.NodeSlowdown = load.Slowdowns()
		res := sim.Simulate(w, m, iterOpts)
		times = append(times, res.Makespan)
		if dynamic && (it+1)%cfg.RebalanceEvery == 0 {
			bal.Rebalance(res.NodeBusy)
		}
	}
	return times, bal.Moves()
}

// Fig10 runs the experiment with both the static and the dynamic mapper
// under identical background-load sequences.
func Fig10(cfg Fig10Config) Fig10Result {
	static, _ := runFig10(cfg, false)
	dynamic, moves := runFig10(cfg, true)
	r := Fig10Result{StaticIterTimes: static, DynamicIterTimes: dynamic, Moves: moves}
	for _, t := range static {
		r.StaticTotal += t
	}
	for _, t := range dynamic {
		r.DynamicTotal += t
	}
	if r.StaticTotal > 0 {
		r.Reduction = 1 - r.DynamicTotal/r.StaticTotal
	}
	return r
}
