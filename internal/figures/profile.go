package figures

import (
	"io"

	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/obs"
	"kdrsolvers/internal/sim"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
	"kdrsolvers/internal/taskrt"
)

// Schedule is a profiled simulated run: the recorded task graph, the
// simulator's schedule for it (with per-task spans), and the critical-path
// analysis of that schedule. It backs the -profile/-trace-out flags of the
// figure runners, where the "timeline" is simulated Lassen time rather
// than local wall clock.
type Schedule struct {
	Graph  taskrt.Graph
	Result sim.Result
	Report obs.Report
}

// CaptureSchedule builds the same virtual stencil problem the figure
// sweeps measure, runs iters solver iterations, and simulates the
// recorded graph with span recording on. The returned Schedule can be
// rendered with Report.String() or exported via WriteTrace.
func CaptureSchedule(m machine.Machine, kind sparse.StencilKind, n int64, solverName string,
	iters int, opt KDROptions) Schedule {
	vp := opt.VP
	if vp == 0 {
		vp = m.NumProcs()
	}
	p := stencilPlanner(m, kind, n, vp)
	p.SetTracing(opt.Tracing)
	s := solvers.New(solverName, p)
	for i := 0; i < iters; i++ {
		s.Step()
	}
	p.Drain()
	g := p.Runtime().Graph()
	simOpts := sim.Options{
		TaskOverhead:   KDRTaskOverhead,
		TracedOverhead: KDRTracedOverhead,
		RecordSpans:    true,
	}
	simulate := sim.Simulate
	if opt.BSP {
		simulate = sim.SimulateBSP
	}
	res := simulate(g, p.Machine(), simOpts)
	return Schedule{
		Graph:  g,
		Result: res,
		Report: obs.Analyze(res.Spans, g.DepLists()),
	}
}

// WriteTrace exports the simulated schedule as a Chrome trace.
func (sc Schedule) WriteTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, sc.Result.Spans)
}
