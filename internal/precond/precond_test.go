package precond

import (
	"math"
	"testing"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/solvers"
	"kdrsolvers/internal/sparse"
)

func TestJacobiDiagonal(t *testing.T) {
	a := sparse.Laplacian1D(6) // diagonal all 2
	p := Jacobi(a)
	d := sparse.ToDense(p)
	for i := int64(0); i < 6; i++ {
		for j := int64(0); j < 6; j++ {
			want := 0.0
			if i == j {
				want = 0.5
			}
			if d[i*6+j] != want {
				t.Fatalf("P[%d,%d] = %g, want %g", i, j, d[i*6+j], want)
			}
		}
	}
}

func TestJacobiZeroDiagonal(t *testing.T) {
	a := sparse.CSRFromCoords(2, 2, []sparse.Coord{{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 1, Val: 4}})
	p := Jacobi(a)
	d := sparse.ToDense(p)
	if d[0] != 0 || d[3] != 0.25 {
		t.Fatalf("zero-diagonal handling wrong: %v", d)
	}
}

func TestJacobiForSystem(t *testing.T) {
	// Two aliased copies of A on component (0,0): the summed diagonal is
	// 2·diag(A).
	a := sparse.Laplacian1D(4)
	ps := JacobiForSystem([][]sparse.Matrix{{a, a}})
	d := sparse.ToDense(ps[0])
	if d[0] != 0.25 {
		t.Fatalf("summed diagonal inverse = %g, want 0.25", d[0])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty component should panic")
		}
	}()
	JacobiForSystem([][]sparse.Matrix{{}})
}

func TestBlockJacobiInvertsBlocks(t *testing.T) {
	// For a block-diagonal matrix, BlockJacobi is the exact inverse.
	coords := []sparse.Coord{
		{Row: 0, Col: 0, Val: 2}, {Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 3},
		{Row: 2, Col: 2, Val: 4}, {Row: 2, Col: 3, Val: -1},
		{Row: 3, Col: 2, Val: 0.5}, {Row: 3, Col: 3, Val: 2},
	}
	a := sparse.CSRFromCoords(4, 4, coords)
	p := BlockJacobi(a, 2)
	pa := sparse.MatMul(p, a)
	d := sparse.ToDense(pa)
	for i := int64(0); i < 4; i++ {
		for j := int64(0); j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d[i*4+j]-want) > 1e-12 {
				t.Fatalf("P·A != I at (%d,%d): %g", i, j, d[i*4+j])
			}
		}
	}
}

func TestBlockJacobiPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { BlockJacobi(sparse.Laplacian1D(5), 2) },           // 5 % 2 != 0
		func() { BlockJacobi(sparse.CSRFromCoords(2, 2, nil), 2) }, // singular
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNeumannDegreeZeroIsJacobi(t *testing.T) {
	a := sparse.Laplacian2D(3, 3)
	p0 := NeumannPolynomial(a, 0)
	j := Jacobi(a)
	d0, dj := sparse.ToDense(p0), sparse.ToDense(j)
	for i := range d0 {
		if d0[i] != dj[i] {
			t.Fatal("degree-0 Neumann != Jacobi")
		}
	}
}

// pcgIters runs PCG with the given preconditioner and returns the
// iteration count to 1e-10.
func pcgIters(t *testing.T, a *sparse.CSR, pre *sparse.CSR, b []float64) int {
	t.Helper()
	n := int64(len(b))
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
	si := p.AddSolVector(make([]float64, n), index.EqualPartition(index.NewSpace("D", n), 2))
	ri := p.AddRHSVector(append([]float64{}, b...), index.EqualPartition(index.NewSpace("R", n), 2))
	p.AddOperator(a, si, ri)
	p.AddPreconditioner(pre, si, ri)
	p.Finalize()
	res := solvers.Solve(solvers.NewPCG(p), 1e-10, 2000)
	p.Drain()
	if !res.Converged {
		t.Fatalf("PCG did not converge: %+v", res)
	}
	return res.Iterations
}

func TestNeumannAcceleratesConvergence(t *testing.T) {
	a := sparse.Laplacian2D(12, 12)
	b := make([]float64, 144)
	for i := range b {
		b[i] = math.Sin(float64(i) / 3)
	}
	jac := pcgIters(t, a, Jacobi(a), b)
	neu := pcgIters(t, a, NeumannPolynomial(a, 2), b)
	if neu >= jac {
		t.Errorf("degree-2 Neumann (%d iters) should beat Jacobi (%d iters)", neu, jac)
	}
}

func TestBlockJacobiAcceleratesConvergence(t *testing.T) {
	// Strong 2x2 couplings: block Jacobi must beat point Jacobi.
	n := int64(200)
	var coords []sparse.Coord
	for i := int64(0); i < n; i++ {
		// Diagonal varies so point Jacobi has real work to do; the strong
		// ±3.5 in-block coupling is what only block Jacobi removes.
		coords = append(coords, sparse.Coord{Row: i, Col: i, Val: 6 + float64(i%5)})
		if i%2 == 0 {
			coords = append(coords, sparse.Coord{Row: i, Col: i + 1, Val: 3.5})
			coords = append(coords, sparse.Coord{Row: i + 1, Col: i, Val: 3.5})
		}
		if i+2 < n {
			coords = append(coords, sparse.Coord{Row: i, Col: i + 2, Val: -1})
			coords = append(coords, sparse.Coord{Row: i + 2, Col: i, Val: -1})
		}
	}
	a := sparse.CSRFromCoords(n, n, coords)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	point := pcgIters(t, a, Jacobi(a), b)
	block := pcgIters(t, a, BlockJacobi(a, 2), b)
	if block >= point {
		t.Errorf("block Jacobi (%d iters) should beat point Jacobi (%d iters)", block, point)
	}
}

func TestMatrixAlgebra(t *testing.T) {
	a := sparse.Laplacian1D(4)
	id := sparse.Identity(4)
	// A·I == A and I·A == A.
	for _, m := range []*sparse.CSR{sparse.MatMul(a, id), sparse.MatMul(id, a)} {
		da, dm := sparse.ToDense(a), sparse.ToDense(m)
		for i := range da {
			if math.Abs(da[i]-dm[i]) > 1e-14 {
				t.Fatal("identity product changed the matrix")
			}
		}
	}
	// A + (−1)·A == 0 after dropping cancellation noise.
	z := sparse.DropTiny(sparse.Add(a, sparse.Scale(a, -1)), 1e-14)
	if z.NNZ() != 0 {
		t.Fatalf("A - A has %d nonzeros", z.NNZ())
	}
	// Associativity on small random-ish matrices.
	b := sparse.CSRFromCoords(4, 4, []sparse.Coord{
		{Row: 0, Col: 3, Val: 2}, {Row: 1, Col: 1, Val: -1}, {Row: 3, Col: 0, Val: 5},
	})
	l := sparse.MatMul(sparse.MatMul(a, b), a)
	r := sparse.MatMul(a, sparse.MatMul(b, a))
	dl, dr := sparse.ToDense(l), sparse.ToDense(r)
	for i := range dl {
		if math.Abs(dl[i]-dr[i]) > 1e-12 {
			t.Fatal("MatMul not associative")
		}
	}
}
