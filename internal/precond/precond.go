// Package precond constructs preconditioners for KDRSolvers systems.
//
// The paper's Section 7 lists extending classical preconditioning
// algorithms to multi-operator systems as future work; this package
// implements that extension for the preconditioner classes whose
// application is itself a sparse matrix-vector product — the only form
// the planner's PSolve operation (a multi-operator multiply) can consume:
//
//   - Jacobi: P = diag(A)⁻¹.
//   - Block Jacobi: P = blockdiag(A)⁻¹ with dense per-block inverses.
//   - Neumann polynomial: the truncated series
//     P = (I + N + N² + …)·D⁻¹ with N = I − D⁻¹A, a sparse approximate
//     inverse that mirrors how SOR-like sweeps are adapted to
//     communication-avoiding settings.
//
// For a multi-operator system, the diagonal of A_total is the sum of the
// component diagonals of the operators on matching component pairs, which
// JacobiForSystem assembles without materializing A_total.
package precond

import (
	"kdrsolvers/internal/sparse"
)

// Jacobi returns the Jacobi preconditioner diag(A)⁻¹ in CSR form. Zero
// diagonal entries map to zero (the row is left unpreconditioned).
func Jacobi(a sparse.Matrix) *sparse.CSR {
	d := sparse.Diagonal(a)
	inv := make([]float64, len(d))
	for i, v := range d {
		if v != 0 {
			inv[i] = 1 / v
		}
	}
	return sparse.DiagonalCSR(inv)
}

// JacobiForSystem returns per-component Jacobi preconditioners for a
// multi-operator system without assembling A_total: mats[k] is the list
// of operators relating solution component k to range component k (the
// diagonal blocks), whose diagonals are summed. The k-th result should be
// registered with AddPreconditioner(result[k], k, k).
func JacobiForSystem(mats [][]sparse.Matrix) []*sparse.CSR {
	out := make([]*sparse.CSR, len(mats))
	for k, ops := range mats {
		if len(ops) == 0 {
			panic("precond: component has no diagonal-block operator")
		}
		n, _ := sparse.Dims(ops[0])
		sum := make([]float64, n)
		for _, m := range ops {
			for i, v := range sparse.Diagonal(m) {
				sum[i] += v
			}
		}
		for i, v := range sum {
			if v != 0 {
				sum[i] = 1 / v
			}
		}
		out[k] = sparse.DiagonalCSR(sum)
	}
	return out
}

// BlockJacobi returns blockdiag(A)⁻¹ with dense bs × bs block inverses.
// The matrix dimension must be a multiple of bs; singular blocks panic.
func BlockJacobi(a sparse.Matrix, bs int64) *sparse.CSR {
	rows, cols := sparse.Dims(a)
	if rows != cols || rows%bs != 0 {
		panic("precond: BlockJacobi needs a square matrix with dimension divisible by bs")
	}
	dense := sparse.ToDense(a)
	var coords []sparse.Coord
	blk := make([]float64, bs*bs)
	for b := int64(0); b < rows/bs; b++ {
		o := b * bs
		for i := int64(0); i < bs; i++ {
			for j := int64(0); j < bs; j++ {
				blk[i*bs+j] = dense[(o+i)*cols+(o+j)]
			}
		}
		inv := invertDense(blk, int(bs))
		for i := int64(0); i < bs; i++ {
			for j := int64(0); j < bs; j++ {
				if v := inv[i*bs+j]; v != 0 {
					coords = append(coords, sparse.Coord{Row: o + i, Col: o + j, Val: v})
				}
			}
		}
	}
	return sparse.CSRFromCoords(rows, cols, coords)
}

// invertDense inverts an n × n row-major matrix by Gauss-Jordan with
// partial pivoting, panicking on singularity.
func invertDense(m []float64, n int) []float64 {
	a := make([]float64, n*n)
	copy(a, m)
	inv := make([]float64, n*n)
	for i := 0; i < n; i++ {
		inv[i*n+i] = 1
	}
	for k := 0; k < n; k++ {
		piv := k
		for i := k + 1; i < n; i++ {
			if abs(a[i*n+k]) > abs(a[piv*n+k]) {
				piv = i
			}
		}
		if a[piv*n+k] == 0 {
			panic("precond: singular diagonal block")
		}
		if piv != k {
			for j := 0; j < n; j++ {
				a[k*n+j], a[piv*n+j] = a[piv*n+j], a[k*n+j]
				inv[k*n+j], inv[piv*n+j] = inv[piv*n+j], inv[k*n+j]
			}
		}
		d := a[k*n+k]
		for j := 0; j < n; j++ {
			a[k*n+j] /= d
			inv[k*n+j] /= d
		}
		for i := 0; i < n; i++ {
			if i == k {
				continue
			}
			f := a[i*n+k]
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a[i*n+j] -= f * a[k*n+j]
				inv[i*n+j] -= f * inv[k*n+j]
			}
		}
	}
	return inv
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// NeumannPolynomial returns the degree-d truncated Neumann series
// preconditioner P = (I + N + … + N^d)·D⁻¹ with N = I − D⁻¹A, in CSR
// form. Degree 0 reduces to Jacobi. Entries below 1e-14 are dropped to
// keep the polynomial sparse.
func NeumannPolynomial(a *sparse.CSR, degree int) *sparse.CSR {
	if degree < 0 {
		panic("precond: negative polynomial degree")
	}
	rows, _ := sparse.Dims(a)
	dinv := Jacobi(a) // D⁻¹
	if degree == 0 {
		return dinv
	}
	// N = I − D⁻¹A.
	n := sparse.Add(sparse.Identity(rows), sparse.Scale(sparse.MatMul(dinv, a), -1))
	n = sparse.DropTiny(n, 1e-14)
	// sum = I + N + N² + … + N^d by Horner: sum = I + N·sum.
	sum := sparse.Identity(rows)
	for i := 0; i < degree; i++ {
		sum = sparse.Add(sparse.Identity(rows), sparse.MatMul(n, sum))
		sum = sparse.DropTiny(sum, 1e-14)
	}
	return sparse.DropTiny(sparse.MatMul(sum, dinv), 1e-14)
}
