// Package baseline implements the comparison solver stacks of the paper's
// Section 6.1: a PETSc-like and a Trilinos-like library, each running CG,
// BiCGStab, and GMRES(10) on row-partitioned CSR matrices under the MPI
// execution model.
//
// The real PETSc and Trilinos cannot be linked here, so per the
// substitution rule the baselines are rebuilt from their documented
// execution structure (Section 2.2 of the paper):
//
//   - disjoint row-block partitioning only, one rank per accelerator;
//   - each rank executes its operations in program order (a serial
//     per-rank chain — the defining property of the bulk-synchronous
//     model that the task model relaxes);
//   - sparse matrix-vector products split into a local diagonal-block
//     multiply overlapped with the halo exchange, followed by the
//     off-diagonal multiply (PETSc's VecScatterBegin/End structure);
//   - dot products are blocking allreduces: every rank stalls until the
//     reduction completes;
//   - per-operation host overhead is small (a library call, not a
//     dynamic-runtime analysis), and kernel efficiency is calibrated per
//     library (cuSPARSE/Tpetra kernels vs the paper's tuned kernels —
//     the artifact's Trilinos build even forces CUDA managed memory).
//
// The builders emit the same task Graph format the KDR runtime records,
// so both sides run through the identical discrete-event simulator.
package baseline

import (
	"fmt"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sparse"
	"kdrsolvers/internal/taskrt"
)

// Library is a baseline solver library profile.
type Library struct {
	// Name labels output rows ("PETSc", "Trilinos").
	Name string
	// PerOpOverhead is the host-side cost of issuing one kernel.
	PerOpOverhead float64
	// KernelFactor scales kernel costs relative to the tuned kernels of
	// the KDR implementation (≥ 1).
	KernelFactor float64
	// SplitSpMV overlaps the halo exchange under the diagonal-block
	// multiply, as PETSc and Trilinos both do.
	SplitSpMV bool
}

// PETSc returns the PETSc 3.18 profile (aijcusparse matrices, cuda
// vectors, as configured in the paper's artifact).
func PETSc() Library {
	return Library{Name: "PETSc", PerOpOverhead: 3e-6, KernelFactor: 1.02, SplitSpMV: true}
}

// Trilinos returns the Trilinos 14 (Tpetra/Belos) profile. The artifact
// builds Tpetra with forced CUDA managed memory, which costs additional
// kernel bandwidth.
func Trilinos() Library {
	return Library{Name: "Trilinos", PerOpOverhead: 5e-6, KernelFactor: 1.06, SplitSpMV: true}
}

// System is a stencil linear system row-partitioned across every
// processor of a machine, ready to emit solver task graphs.
type System struct {
	lib  Library
	m    machine.Machine
	op   *sparse.StencilOperator
	part index.Partition

	// Per piece: rows, kernel entries split into diagonal-block and
	// off-diagonal parts, and the halo sources (piece, bytes).
	rows     []int64
	diagK    []int64
	offdK    []int64
	haloSrcs [][]haloSrc

	g          taskrt.Graph
	lastWrite  map[string][]int64 // vector name -> last writer node per piece
	lastOnProc []int64            // program-order chain per rank
	syncNode   []int64            // pending blocking-collective node per rank
}

type haloSrc struct {
	piece int
	bytes int64
}

// NewSystem builds the row-partitioned baseline system for a stencil on a
// grid, with one piece per processor.
func NewSystem(lib Library, m machine.Machine, kind sparse.StencilKind, grid index.Grid) *System {
	op := sparse.NewStencilOperator(kind, grid)
	procs := m.NumProcs()
	part := index.EqualPartition(op.Range(), procs)
	s := &System{
		lib: lib, m: m, op: op, part: part,
		rows:       make([]int64, procs),
		diagK:      make([]int64, procs),
		offdK:      make([]int64, procs),
		haloSrcs:   make([][]haloSrc, procs),
		lastWrite:  make(map[string][]int64),
		lastOnProc: make([]int64, procs),
		syncNode:   make([]int64, procs),
	}
	for p := range s.lastOnProc {
		s.lastOnProc[p] = -1
		s.syncNode[p] = -1
	}
	row, col := op.RowRelation(), op.ColRelation()
	for c := 0; c < procs; c++ {
		own := part.Piece(c)
		s.rows[c] = own.Size()
		kset := row.Preimage(own)
		need := col.Image(kset)
		halo := need.Subtract(own)
		// Off-diagonal kernel entries read the halo.
		offd := kset.Intersect(col.Preimage(halo))
		s.offdK[c] = offd.Size()
		s.diagK[c] = kset.Size() - s.offdK[c]
		for c2 := 0; c2 < procs; c2++ {
			if c2 == c {
				continue
			}
			if b := halo.Intersect(part.Piece(c2)).Size(); b > 0 {
				s.haloSrcs[c] = append(s.haloSrcs[c], haloSrc{piece: c2, bytes: 8 * b})
			}
		}
	}
	return s
}

// task appends a task on rank c's program-order chain.
func (s *System) task(name string, c int, cost float64, deps []int64, depBytes []int64) int64 {
	chain, syncN := s.lastOnProc[c], s.syncNode[c]
	s.syncNode[c] = -1
	if syncN >= 0 && syncN == chain {
		// The rank's previous task is the collective itself (rank 0 runs
		// the reduce): one edge carrying the broadcast payload.
		deps = append(deps, chain)
		depBytes = append(depBytes, 8)
	} else {
		if chain >= 0 {
			deps = append(deps, chain)
			depBytes = append(depBytes, 0)
		}
		if syncN >= 0 {
			deps = append(deps, syncN)
			depBytes = append(depBytes, 8) // broadcast of the reduced scalar
		}
	}
	id := s.g.Add(taskrt.Node{
		Name: name, Proc: c,
		Cost: s.lib.PerOpOverhead + cost*s.lib.KernelFactor,
		Deps: deps, DepBytes: depBytes,
	})
	s.lastOnProc[c] = id
	return id
}

// writers returns (allocating if new) the last-writer table of a vector.
func (s *System) writers(v string) []int64 {
	w, ok := s.lastWrite[v]
	if !ok {
		w = make([]int64, s.part.NumColors())
		for i := range w {
			w[i] = -1
		}
		s.lastWrite[v] = w
	}
	return w
}

// vecOp emits one local elementwise kernel per rank: dst gets written,
// srcs get read (all same-piece, no communication).
func (s *System) vecOp(name string, cost func(n int64) float64, dst string, srcs ...string) {
	dw := s.writers(dst)
	for c := 0; c < s.part.NumColors(); c++ {
		var deps []int64
		var bytes []int64
		for _, src := range srcs {
			if w := s.writers(src)[c]; w >= 0 {
				deps = append(deps, w)
				bytes = append(bytes, 0) // same rank: data is local
			}
		}
		dw[c] = s.task(name, c, cost(s.rows[c]), deps, bytes)
	}
}

// Copy emits dst ← src.
func (s *System) Copy(dst, src string) { s.vecOp("copy", s.m.CopyCost, dst, src) }

// Axpy emits dst ← dst + α·src.
func (s *System) Axpy(dst, src string) { s.vecOp("axpy", s.m.AxpyCost, dst, dst, src) }

// Xpay emits dst ← src + α·dst.
func (s *System) Xpay(dst, src string) { s.vecOp("xpay", s.m.AxpyCost, dst, dst, src) }

// Scal emits dst ← α·dst.
func (s *System) Scal(dst string) { s.vecOp("scal", s.m.ScalCost, dst, dst) }

// Dot emits a blocking allreduce of one or more elementwise products
// sharing a single reduction (libraries merge adjacent dots): per-rank
// partials, a reduce, and a stall of every rank until the result
// arrives.
func (s *System) Dot(pairs ...[2]string) {
	procs := s.part.NumColors()
	partials := make([]int64, procs)
	for c := 0; c < procs; c++ {
		var deps []int64
		var bytes []int64
		seen := map[int64]bool{}
		for _, pr := range pairs {
			for _, v := range pr {
				if w := s.writers(v)[c]; w >= 0 && !seen[w] {
					seen[w] = true
					deps = append(deps, w)
					bytes = append(bytes, 0)
				}
			}
		}
		partials[c] = s.task("dot.partial", c, float64(len(pairs))*s.m.DotCost(s.rows[c]), deps, bytes)
	}
	bytes := make([]int64, procs)
	for i := range bytes {
		bytes[i] = 8 * int64(len(pairs))
	}
	reduce := s.g.Add(taskrt.Node{
		Name: "allreduce", Proc: 0,
		Cost: s.lib.PerOpOverhead + s.m.AllReduceTime(),
		Deps: partials, DepBytes: bytes,
	})
	// The allreduce node continues rank 0's chain and blocks every rank.
	s.lastOnProc[0] = reduce
	for c := 0; c < procs; c++ {
		s.syncNode[c] = reduce
	}
}

// SpMV emits dst ← A·src with the library's halo-exchange structure.
func (s *System) SpMV(dst, src string) {
	dw := s.writers(dst)
	sw := s.writers(src)
	for c := 0; c < s.part.NumColors(); c++ {
		// Halo dependences: the latest writers of the neighbor pieces.
		var hdeps []int64
		var hbytes []int64
		for _, h := range s.haloSrcs[c] {
			if w := sw[h.piece]; w >= 0 {
				hdeps = append(hdeps, w)
				hbytes = append(hbytes, h.bytes)
			}
		}
		var ldeps []int64
		var lbytes []int64
		if w := sw[c]; w >= 0 {
			ldeps = append(ldeps, w)
			lbytes = append(lbytes, 0)
		}
		if s.lib.SplitSpMV {
			// Diagonal block overlaps the halo exchange; the off-diagonal
			// multiply waits for the halo.
			s.task("spmv.diag", c, s.m.SpMVCost(s.diagK[c], s.rows[c]), ldeps, lbytes)
			dw[c] = s.task("spmv.offd", c, s.m.SpMVCost(s.offdK[c], s.rows[c]), hdeps, hbytes)
		} else {
			deps := append(ldeps, hdeps...)
			bytes := append(lbytes, hbytes...)
			dw[c] = s.task("spmv", c, s.m.SpMVCost(s.diagK[c]+s.offdK[c], s.rows[c]), deps, bytes)
		}
	}
}

// Graph returns the accumulated task graph.
func (s *System) Graph() taskrt.Graph { return s.g }

// BuildSolver emits the initialization plus iters iterations of the named
// solver ("cg", "bicgstab", or "gmres") and returns the graph.
func (s *System) BuildSolver(solver string, iters int) taskrt.Graph {
	switch solver {
	case "cg":
		s.buildCG(iters)
	case "bicgstab":
		s.buildBiCGStab(iters)
	case "gmres":
		s.buildGMRES(iters, 10)
	default:
		panic(fmt.Sprintf("baseline: unknown solver %q", solver))
	}
	return s.Graph()
}

// buildCG mirrors the op sequence of the KDR CG solver.
func (s *System) buildCG(iters int) {
	// r = b − Ax; p = r; res = r·r.
	s.SpMV("r", "x")
	s.Scal("r")
	s.Axpy("r", "b")
	s.Copy("p", "r")
	s.Dot([2]string{"r", "r"})
	for i := 0; i < iters; i++ {
		s.SpMV("q", "p")
		s.Dot([2]string{"p", "q"}) // α
		s.Axpy("x", "p")
		s.Axpy("r", "q")
		s.Dot([2]string{"r", "r"}) // β and convergence check
		s.Xpay("p", "r")
	}
}

// buildBiCGStab mirrors the op sequence of the KDR BiCGStab solver.
func (s *System) buildBiCGStab(iters int) {
	s.SpMV("r", "x")
	s.Scal("r")
	s.Axpy("r", "b")
	s.Copy("rhat", "r")
	s.Dot([2]string{"r", "r"})
	for i := 0; i < iters; i++ {
		s.Dot([2]string{"rhat", "r"}) // ρ
		s.Axpy("p", "v")
		s.Xpay("p", "r")
		s.SpMV("v", "p")
		s.Dot([2]string{"rhat", "v"}) // α
		s.Axpy("r", "v")
		s.SpMV("t", "r")
		// ω needs t·r and t·t; libraries fuse them into one allreduce.
		s.Dot([2]string{"t", "r"}, [2]string{"t", "t"})
		s.Axpy("x", "p")
		s.Axpy("x", "r")
		s.Axpy("r", "t")
		s.Dot([2]string{"r", "r"})
	}
}

// buildGMRES mirrors the KDR GMRES(m): modified Gram-Schmidt with one
// allreduce per projection.
func (s *System) buildGMRES(iters, m int) {
	s.SpMV("v0", "x")
	s.Scal("v0")
	s.Axpy("v0", "b")
	s.Dot([2]string{"v0", "v0"})
	s.Scal("v0")
	j := 0
	for i := 0; i < iters; i++ {
		vj := fmt.Sprintf("v%d", j)
		s.SpMV("w", vj)
		for k := 0; k <= j; k++ {
			vk := fmt.Sprintf("v%d", k)
			s.Dot([2]string{"w", vk})
			s.Axpy("w", vk)
		}
		s.Dot([2]string{"w", "w"})
		next := fmt.Sprintf("v%d", j+1)
		s.Copy(next, "w")
		s.Scal(next)
		j++
		if j == m {
			for k := 0; k < m; k++ {
				s.Axpy("x", fmt.Sprintf("v%d", k))
			}
			// Restart: recompute the residual basis vector.
			s.SpMV("v0", "x")
			s.Scal("v0")
			s.Axpy("v0", "b")
			s.Dot([2]string{"v0", "v0"})
			s.Scal("v0")
			j = 0
		}
	}
}
