package baseline

import (
	"testing"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sim"
	"kdrsolvers/internal/sparse"
)

func testSystem(lib Library, nodes int, kind sparse.StencilKind, grid index.Grid) *System {
	return NewSystem(lib, machine.Lassen(nodes), kind, grid)
}

func TestHaloStructure1D(t *testing.T) {
	// A 1D 3-point stencil split across 8 procs: interior pieces have two
	// halo sources of exactly one element (8 bytes) each.
	s := testSystem(PETSc(), 2, sparse.Stencil1D3, index.NewGrid(1024))
	procs := 8
	for c := 0; c < procs; c++ {
		want := 2
		if c == 0 || c == procs-1 {
			want = 1
		}
		if got := len(s.haloSrcs[c]); got != want {
			t.Errorf("piece %d: %d halo sources, want %d", c, got, want)
		}
		for _, h := range s.haloSrcs[c] {
			if h.bytes != 8 {
				t.Errorf("piece %d: halo bytes = %d, want 8", c, h.bytes)
			}
			if h.piece != c-1 && h.piece != c+1 {
				t.Errorf("piece %d: halo from non-neighbor %d", c, h.piece)
			}
		}
	}
}

func TestHaloStructure2D(t *testing.T) {
	// Row blocks of a 2D grid exchange one grid row (ny columns) per side.
	const ny = 64
	s := testSystem(PETSc(), 2, sparse.Stencil2D5, index.NewGrid(256, ny))
	for c := 1; c < 7; c++ {
		var total int64
		for _, h := range s.haloSrcs[c] {
			total += h.bytes
		}
		if total != 2*ny*8 {
			t.Errorf("piece %d: halo bytes = %d, want %d", c, total, 2*ny*8)
		}
	}
}

func TestKernelSplit(t *testing.T) {
	// diag + offd must equal the piece's kernel entries, and offd must be
	// the small part.
	s := testSystem(PETSc(), 2, sparse.Stencil2D5, index.NewGrid(128, 128))
	row := s.op.RowRelation()
	for c := 0; c < s.part.NumColors(); c++ {
		kset := row.Preimage(s.part.Piece(c))
		if s.diagK[c]+s.offdK[c] != kset.Size() {
			t.Fatalf("piece %d: kernel split %d+%d != %d",
				c, s.diagK[c], s.offdK[c], kset.Size())
		}
		if s.offdK[c] >= s.diagK[c] {
			t.Errorf("piece %d: off-diagonal part (%d) should be small vs %d",
				c, s.offdK[c], s.diagK[c])
		}
	}
}

func TestGraphsValidate(t *testing.T) {
	for _, solver := range []string{"cg", "bicgstab", "gmres"} {
		s := testSystem(Trilinos(), 1, sparse.Stencil1D3, index.NewGrid(4096))
		g := s.BuildSolver(solver, 12)
		if err := sim.Validate(g); err != nil {
			t.Errorf("%s: %v", solver, err)
		}
		if g.Len() == 0 {
			t.Errorf("%s: empty graph", solver)
		}
	}
}

func TestUnknownSolverPanics(t *testing.T) {
	s := testSystem(PETSc(), 1, sparse.Stencil1D3, index.NewGrid(64))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.BuildSolver("jacobi", 1)
}

func TestProgramOrderChains(t *testing.T) {
	// Every rank's tasks must be totally ordered: each task (except a
	// rank's first) depends on that rank's previous task.
	s := testSystem(PETSc(), 1, sparse.Stencil1D3, index.NewGrid(256))
	g := s.BuildSolver("cg", 3)
	lastOnProc := map[int]int64{}
	for _, n := range g.Nodes {
		if prev, ok := lastOnProc[n.Proc]; ok {
			found := false
			for _, d := range n.Deps {
				if d == prev {
					found = true
				}
			}
			if !found {
				t.Fatalf("task %d (%s) on rank %d does not follow task %d",
					n.ID, n.Name, n.Proc, prev)
			}
		}
		lastOnProc[n.Proc] = n.ID
	}
}

func TestDotBlocksAllRanks(t *testing.T) {
	// After an allreduce, the next task on every rank must depend on it.
	s := testSystem(PETSc(), 1, sparse.Stencil1D3, index.NewGrid(256))
	g := s.BuildSolver("cg", 1)
	// Find the first allreduce and the next task per proc after it.
	var reduceID int64 = -1
	for _, n := range g.Nodes {
		if n.Name == "allreduce" {
			reduceID = n.ID
			break
		}
	}
	if reduceID < 0 {
		t.Fatal("no allreduce in CG graph")
	}
	seen := map[int]bool{}
	for _, n := range g.Nodes[reduceID+1:] {
		if seen[n.Proc] {
			continue
		}
		seen[n.Proc] = true
		found := false
		for i, d := range n.Deps {
			if d == reduceID {
				found = true
				if n.DepBytes[i] != 8 {
					t.Errorf("broadcast bytes = %d, want 8", n.DepBytes[i])
				}
			}
		}
		if !found && n.Name != "allreduce" {
			t.Errorf("task %d (%s) on rank %d does not wait for the allreduce",
				n.ID, n.Name, n.Proc)
		}
	}
}

func TestSplitSpMVBeatsMonolithic(t *testing.T) {
	// The library-internal overlap (halo under diag compute) must help on
	// a communication-visible problem: a 27-point 3D stencil whose halo
	// planes are megabytes, so the hidden transfer dwarfs the extra
	// kernel launch the split costs.
	m := machine.Lassen(16)
	grid := index.NewGrid(1<<8, 1<<8, 1<<8)
	split := NewSystem(Library{Name: "s", KernelFactor: 1, SplitSpMV: true}, m, sparse.Stencil3D27, grid)
	mono := NewSystem(Library{Name: "m", KernelFactor: 1, SplitSpMV: false}, m, sparse.Stencil3D27, grid)
	gs := split.BuildSolver("cg", 10)
	gm := mono.BuildSolver("cg", 10)
	rs := sim.Simulate(gs, m, sim.Options{})
	rm := sim.Simulate(gm, m, sim.Options{})
	if rs.Makespan >= rm.Makespan {
		t.Errorf("split SpMV (%g) should beat monolithic (%g)", rs.Makespan, rm.Makespan)
	}
}

func TestPETScFasterThanTrilinos(t *testing.T) {
	// Matches the paper's geomean ordering at scale: Trilinos is the
	// slowest of the three.
	m := machine.Lassen(16)
	grid := index.NewGrid(1<<13, 1<<13)
	gp := NewSystem(PETSc(), m, sparse.Stencil2D5, grid).BuildSolver("cg", 10)
	gt := NewSystem(Trilinos(), m, sparse.Stencil2D5, grid).BuildSolver("cg", 10)
	rp := sim.Simulate(gp, m, sim.Options{})
	rt := sim.Simulate(gt, m, sim.Options{})
	if rp.Makespan >= rt.Makespan {
		t.Errorf("PETSc (%g) should beat Trilinos (%g)", rp.Makespan, rt.Makespan)
	}
}

func TestLibraryProfiles(t *testing.T) {
	p, tr := PETSc(), Trilinos()
	if p.Name != "PETSc" || tr.Name != "Trilinos" {
		t.Fatal("names wrong")
	}
	if p.KernelFactor < 1 || tr.KernelFactor < p.KernelFactor {
		t.Fatal("kernel factors must be >= 1 and Trilinos >= PETSc")
	}
}
