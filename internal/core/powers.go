package core

import (
	"fmt"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/region"
	"kdrsolvers/internal/taskrt"
)

// Matrix-powers kernel (communication-avoiding Krylov, "Hardware-Oriented
// Krylov Methods for HPC"): compute the basis [A·x, A²·x, …, Aˢ·x] — or
// its shifted Newton variant [(A−θ₁)x, (A−θ₂)(A−θ₁)x, …] — with ONE task
// per output piece instead of one task per (level, piece). Each piece
// task reads the level-s halo of its piece (the ghost region deep enough
// to cover s applications of the operator) and computes every level
// locally, redundantly recomputing the halo overlap; the payoff is that
// no intermediate level synchronizes or communicates, which is what lets
// an s-step method run s iterations per global reduction.
//
// The level row sets come from the planner's dependent-partitioning
// relations, so every operator format — assembled, matrix-free, or the
// adaptive Auto composite — works under the kernel unchanged: the
// recurrence below is PowerInputPartition unrolled with the intermediate
// sets kept.

// PowersPlan is the reusable per-piece ghost-set analysis for a
// matrix-powers sweep of a fixed maximum depth on one system. Building a
// plan performs the halo recurrence once; Sweep then launches against the
// precomputed sets, so repeated sweeps (one per s-step block) pay no
// partition work.
type PowersPlan struct {
	p      *Planner
	depth  int
	pieces []powersPiece
}

// powersPiece is the launch recipe for one output piece.
type powersPiece struct {
	color int
	proc  int
	piece index.IntervalSet
	// rset[k] is R_k, the rows level k must be computed on, for
	// k = 0..depth: R_depth is the canonical piece itself, and each
	// shallower level adds the halo the next level's kernel reads
	// (R_{k-1} = piece ∪ H_k ⊇ R_k, so the sets nest). rset[0] is the
	// sweep's total input read set.
	rset []index.IntervalSet
	// kset[k-1][op] is the kernel piece of operator op writing R_k.
	kset [][]index.IntervalSet
	// scratch ping-pong fields for the intermediate levels, private to
	// this piece's task (full component length, indexed globally).
	scrA, scrB *region.Region
}

// NewPowersPlan analyses the halo structure for matrix-powers sweeps up
// to the given depth. The system must be finalized, square, and
// single-component (the s-step methods that use the kernel are).
func NewPowersPlan(p *Planner, depth int) *PowersPlan {
	p.mustBeFinalized()
	if depth < 1 {
		panic("core: powers depth must be >= 1")
	}
	if !p.IsSquare() || len(p.sol) != 1 || len(p.rhs) != 1 {
		panic("core: matrix-powers kernel requires a square single-component system")
	}
	if len(p.ops) == 0 {
		panic("core: matrix-powers kernel requires at least one operator")
	}
	out := p.rhs[0]
	pl := &PowersPlan{p: p, depth: depth}
	for color := 0; color < out.part.NumColors(); color++ {
		piece := out.part.Piece(color)
		pc := powersPiece{
			color: color,
			proc:  out.procs[color],
			piece: piece,
			rset:  make([]index.IntervalSet, depth+1),
			kset:  make([][]index.IntervalSet, depth),
		}
		// Downward halo recurrence: R_depth = piece; R_{k-1} = piece ∪ H_k
		// where H_k is the union over operators of the columns read by the
		// kernel entries writing R_k. Image and preimage are monotone, so
		// the sets nest (R_0 ⊇ R_1 ⊇ … ⊇ R_depth) and a level's input —
		// needed on H_k ⊆ R_{k-1} — is always covered by the level below.
		pc.rset[depth] = piece
		for k := depth; k >= 1; k-- {
			ks := make([]index.IntervalSet, len(p.ops))
			var halo index.IntervalSet
			for oi := range p.ops {
				op := &p.ops[oi]
				ks[oi] = op.mat.RowRelation().Preimage(pc.rset[k])
				halo = halo.Union(op.mat.ColRelation().Image(ks[oi]))
			}
			pc.kset[k-1] = ks
			pc.rset[k-1] = piece.Union(halo)
		}
		if depth >= 2 {
			space := out.space
			name := fmt.Sprintf("powscr%d", color)
			if p.virtual {
				pc.scrA = region.NewVirtual(name+".a", space)
				pc.scrB = region.NewVirtual(name+".b", space)
			} else {
				pc.scrA = region.New(name+".a", space, "v")
				pc.scrB = region.New(name+".b", space, "v")
			}
		}
		pl.pieces = append(pl.pieces, pc)
	}
	return pl
}

// Depth returns the maximum sweep depth the plan supports.
func (pl *PowersPlan) Depth() int { return pl.depth }

// Sweep launches the matrix-powers computation: dsts[k] ← (A−shifts[k])·
// dsts[k-1] (with dsts[-1] = src), one task per output piece, each
// computing all len(dsts) levels from its level-deep halo. A nil shifts
// is the monomial basis [Ax, A²x, …]; non-zero shifts give the Newton
// basis. len(dsts) may be at most the plan's depth — a shallower sweep
// reuses the deeper plan's (slightly wider) halo sets. src and the dsts
// must be distinct single-component vectors of the system's size.
func (pl *PowersPlan) Sweep(dsts []VecID, src VecID, shifts []float64) {
	p := pl.p
	levels := len(dsts)
	if levels < 1 || levels > pl.depth {
		panic(fmt.Sprintf("core: powers sweep wants %d levels, plan depth is %d", levels, pl.depth))
	}
	if shifts != nil && len(shifts) != levels {
		panic("core: powers sweep needs one shift per level (or nil)")
	}
	seen := map[VecID]bool{src: true}
	for _, d := range dsts {
		if seen[d] {
			panic("core: powers sweep vectors must be distinct")
		}
		seen[d] = true
	}
	n := p.rhs[0].space.Size()
	for _, id := range append([]VecID{src}, dsts...) {
		if len(p.vecs[id].regs) != 1 || p.vecs[id].regs[0].Space().Size() != n {
			panic("core: powers sweep vectors must match the system's single component")
		}
	}
	offset := pl.depth - levels

	for pi := range pl.pieces {
		pc := &pl.pieces[pi]
		srcReg := p.vecs[src].regs[0]
		readSet := pc.rset[offset]

		refs := make([]region.Ref, 0, levels+3)
		refs = append(refs, pieceRef(srcReg, readSet, region.ReadOnly))
		for _, d := range dsts {
			refs = append(refs, pieceRef(p.vecs[d].regs[0], pc.piece, region.WriteDiscard))
		}
		// Intermediate levels ping-pong through the piece's private
		// scratch; the final level lands directly in its dst (its row set
		// is exactly the piece). Declaring the scratch write-discard also
		// serializes successive sweeps that share the plan, piece by piece.
		if levels >= 2 {
			refs = append(refs, region.Ref{Region: pc.scrA.ID(), Field: "v",
				Subset: pc.rset[offset+1], Priv: region.WriteDiscard})
		}
		if levels >= 3 {
			refs = append(refs, region.Ref{Region: pc.scrB.ID(), Field: "v",
				Subset: pc.rset[offset+2], Priv: region.WriteDiscard})
		}

		var cost float64
		for i := 0; i < levels; i++ {
			rows := pc.rset[offset+i+1]
			for oi := range p.ops {
				cost += p.mach.SpMVCost(pc.kset[offset+i][oi].Size(), rows.Size())
			}
			if shifts != nil && shifts[i] != 0 {
				cost += p.mach.AxpyCost(rows.Size())
			}
			if i < levels-1 {
				cost += p.mach.CopyCost(pc.piece.Size())
			}
		}

		if p.sdcOn() {
			// The sweep fully recomputes each dst piece, so each dst's
			// checksum slot is refreshed from the computed output.
			for _, d := range dsts {
				refs = append(refs, p.chkRef(d, pc.color, region.WriteDiscard))
			}
		}

		var run func() float64
		if !p.virtual {
			run = pl.sweepBody(pc, offset, levels, src, dsts, shifts)
		}
		spec := taskrt.TaskSpec{
			Name: "powers.sweep", Proc: pc.proc, Piece: pc.color + 1,
			Cost: cost, Refs: refs,
			// The body zeroes every row before accumulating and writes only
			// scratch and write-discard outputs: idempotent, so retryable.
			Run: run, Retryable: true,
		}
		if p.faultHooks() {
			targets := make([]corruptTarget, 0, levels)
			for _, d := range dsts {
				targets = append(targets, corruptTarget{p.vecs[d].regs[0].Field("v"), pc.piece})
			}
			spec.Corrupt = corruptHook(targets...)
		}
		p.batch(spec)
	}
	p.flushBatch()
}

// sweepBody builds the real-mode task body of one piece's powers sweep.
func (pl *PowersPlan) sweepBody(pc *powersPiece, offset, levels int, src VecID, dsts []VecID, shifts []float64) func() float64 {
	p := pl.p
	srcData := p.vecs[src].regs[0].Field("v")
	dstData := make([][]float64, levels)
	for i, d := range dsts {
		dstData[i] = p.vecs[d].regs[0].Field("v")
	}
	var scr [2][]float64
	if levels >= 2 {
		scr[0] = pc.scrA.Field("v")
		scr[1] = pc.scrB.Field("v")
	}
	mats := make([]interface {
		MultiplyAddPart(y, x []float64, kset index.IntervalSet)
	}, len(p.ops))
	ksets := make([][]index.IntervalSet, levels)
	rows := make([]index.IntervalSet, levels)
	for i := 0; i < levels; i++ {
		ksets[i] = pc.kset[offset+i]
		rows[i] = pc.rset[offset+i+1]
	}
	for oi := range p.ops {
		mats[oi] = p.ops[oi].mat
	}
	piece := pc.piece
	sdc := p.sdcOn()
	var chks [][]float64
	if sdc {
		chks = make([][]float64, levels)
		for i, d := range dsts {
			chks[i] = p.chkData(d)
		}
	}
	color := pc.color
	return func() float64 {
		cur := srcData
		for i := 0; i < levels; i++ {
			var out []float64
			if i == levels-1 {
				out = dstData[i] // final level's rows are exactly the piece
			} else {
				out = scr[i%2]
			}
			rs := rows[i]
			rs.EachInterval(func(iv index.Interval) {
				for r := iv.Lo; r <= iv.Hi; r++ {
					out[r] = 0
				}
			})
			for oi, m := range mats {
				m.MultiplyAddPart(out, cur, ksets[i][oi])
			}
			if shifts != nil && shifts[i] != 0 {
				th := shifts[i]
				rs.EachInterval(func(iv index.Interval) {
					for r := iv.Lo; r <= iv.Hi; r++ {
						out[r] -= th * cur[r]
					}
				})
			}
			if i < levels-1 {
				piece.EachInterval(func(iv index.Interval) {
					copy(dstData[i][iv.Lo:iv.Hi+1], out[iv.Lo:iv.Hi+1])
				})
			}
			cur = out
		}
		if sdc {
			for i := range chks {
				sum, _ := sumPiece(dstData[i], piece)
				chks[i][color] = sum
			}
		}
		return 0
	}
}

// Gram computes the Gram matrix G[i][j] = vs[i]·vs[j] of a basis with a
// single batched reduction: one partial task per piece computing every
// distinct pair, one combine task total. The s-step methods fold all
// their inner products into this call — the one global synchronization
// of an s-iteration block. The returned matrix is symmetric (the lower
// triangle aliases the upper triangle's scalars).
func (p *Planner) Gram(vs ...VecID) [][]*Scalar {
	if len(vs) == 0 {
		panic("core: Gram of an empty basis")
	}
	pairs := make([]DotPair, 0, len(vs)*(len(vs)+1)/2)
	for i := range vs {
		for j := i; j < len(vs); j++ {
			pairs = append(pairs, DotPair{V: vs[i], W: vs[j]})
		}
	}
	flat := p.DotBatch(pairs...)
	g := make([][]*Scalar, len(vs))
	for i := range g {
		g[i] = make([]*Scalar, len(vs))
	}
	k := 0
	for i := range vs {
		for j := i; j < len(vs); j++ {
			g[i][j] = flat[k]
			g[j][i] = flat[k]
			k++
		}
	}
	return g
}
