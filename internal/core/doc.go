// Package core implements the KDRSolvers planner: the user-facing API for
// describing a multi-operator linear system (Figure 5 of the paper) and
// the solver-facing API of mathematical operations that Krylov subspace
// methods are written against (Figure 6).
//
// A multi-operator system (Section 4) is a logical linear system
// A_total · x_total = b_total whose solution vector is a sequence of
// components over domain spaces D_1 … D_n, whose right-hand side is a
// sequence over range spaces R_1 … R_m, and whose operator is a set of
// quadruples (K_ℓ, A_ℓ, i_ℓ, j_ℓ) — sparse matrices each relating one
// domain component to one range component, with arbitrary aliasing and
// overlap permitted (equation 8 defines the product).
//
// The planner decomposes every logical operation into per-component,
// per-piece tasks launched on the task runtime: vector data is partitioned
// by user-supplied canonical partitions, matrix kernels are co-partitioned
// automatically with the universal projection operators of package dpart,
// and the runtime's interference analysis orders conflicting multiply-adds
// (Section 4.1). Scalars, including dot-product results, live in
// one-element regions so that scalar dataflow appears in the recorded task
// graph and the simulator charges the synchronization cost of every
// reduction.
//
// Solvers (package solvers) are written purely against the planner and
// are therefore independent of storage formats, component structure, and
// data placement — the separation the paper's Section 5 describes.
package core
