package core

import (
	"fmt"
	"math"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/region"
	"kdrsolvers/internal/taskrt"
)

// Fused vector kernels. The per-operation launches of vecops.go pay one
// task per vector op per piece, so a CG iteration sweeps the same pieces
// five times and synchronizes on two separate dot reductions. The fused
// layer collapses both costs ("Hardware-Oriented Krylov Methods for
// HPC"): FusedSweep applies k axpy/xpay updates to a piece in one task
// visit and folds any number of dot products into a single tree
// reduction — one partial task per piece computing every requested dot,
// and one scalar-combine task total instead of one per (dot, piece).
//
// Numerics are preserved exactly where the paper's solvers need them
// preserved: updates execute in argument order inside each piece (the
// same order the unfused launches would impose through their region
// dependences), so fused sweeps are bitwise identical to their unfused
// counterparts; batched dots accumulate per piece and then combine in
// piece order, the same order Dot's reduce task uses.
//
// Fused tasks launch through the ordinary Launch path with ordinary
// region references, so they are traced, memoized, and replayed by the
// runtime's trace templates like any other task.
//
// With SDC detection on, each piece task first verifies the incoming
// checksum of every vector it will update or reduce over (one extra read
// pass per distinct vector), then maintains the dst checksums through the
// update recurrences, and finally writes a per-piece guard slot — the sum
// of the piece's dot partials — that the combine task recomputes
// bitwise-identically, so corruption anywhere in a solver's working set
// or reduction scratch surfaces within one iteration.

// UpdateKind selects the recurrence form of one fused vector update.
type UpdateKind int

const (
	// UpdAxpy is dst ← dst + α·src.
	UpdAxpy UpdateKind = iota
	// UpdXpay is dst ← src + α·dst.
	UpdXpay
)

// VecUpdate is one update of a fused sweep. Neg applies −α without a
// separate negation task (IEEE negation is exact, so the result is
// bitwise identical to an axpy against a negated scalar).
type VecUpdate struct {
	Kind  UpdateKind
	Dst   VecID
	Alpha *Scalar
	Neg   bool
	Src   VecID
}

// DotPair names one inner product v·w of a batched reduction.
type DotPair struct{ V, W VecID }

// FusedUpdate applies the updates in order, visiting each piece once:
// one task per piece performs every update instead of one task per
// (update, piece). Updates may chain — a later update reading a dst an
// earlier one wrote sees the written value, exactly as the equivalent
// sequence of Axpy/Xpay launches would.
func (p *Planner) FusedUpdate(ups ...VecUpdate) {
	p.FusedSweep(ups, nil)
}

// DotBatch computes the inner products of every pair with one partial
// task per piece (computing all the pairs' partials) and one combine
// task total, so k simultaneous dot products pay a single reduction
// barrier. The returned scalars are in pair order.
func (p *Planner) DotBatch(pairs ...DotPair) []*Scalar {
	return p.FusedSweep(nil, pairs)
}

// AxpyDot performs dst ← dst + α·src and returns v·w computed over the
// post-update values in the same piece sweep — the classic fused kernel
// of pipelined Krylov methods (r ← r − αq then ‖r‖² without re-reading
// r from memory).
func (p *Planner) AxpyDot(dst VecID, alpha *Scalar, src, v, w VecID) *Scalar {
	return p.FusedSweep(
		[]VecUpdate{{Kind: UpdAxpy, Dst: dst, Alpha: alpha, Src: src}},
		[]DotPair{{V: v, W: w}})[0]
}

// XpayDot performs dst ← src + α·dst and returns v·w over the
// post-update values in the same sweep.
func (p *Planner) XpayDot(dst VecID, alpha *Scalar, src, v, w VecID) *Scalar {
	return p.FusedSweep(
		[]VecUpdate{{Kind: UpdXpay, Dst: dst, Alpha: alpha, Src: src}},
		[]DotPair{{V: v, W: w}})[0]
}

// sweepVecs classifies the distinct vectors of a sweep: verified vectors
// (update dsts and dot operands — their incoming checksums are checked
// before any update runs) and pure sources (checksums only read for
// recurrence maintenance).
func sweepVecs(ups []VecUpdate, dots []DotPair) (verified []VecID, pureSrc []VecID) {
	inVerified := make(map[VecID]bool)
	for _, u := range ups {
		if !inVerified[u.Dst] {
			inVerified[u.Dst] = true
			verified = append(verified, u.Dst)
		}
	}
	for _, d := range dots {
		for _, id := range []VecID{d.V, d.W} {
			if !inVerified[id] {
				inVerified[id] = true
				verified = append(verified, id)
			}
		}
	}
	seenSrc := make(map[VecID]bool)
	for _, u := range ups {
		if !inVerified[u.Src] && !seenSrc[u.Src] {
			seenSrc[u.Src] = true
			pureSrc = append(pureSrc, u.Src)
		}
	}
	return verified, pureSrc
}

// FusedSweep is the general fused kernel: it applies the updates in
// order and then computes the dot pairs over the updated values, one
// task per piece, followed by a single combine task when dots are
// requested. It returns one deferred scalar per dot pair (nil slice
// when dots is empty). At least one update or dot is required.
//
// All vectors must share the component structure of the first dst (or
// first dot operand); the sweep iterates that vector's canonical
// pieces, as the unfused operations do.
func (p *Planner) FusedSweep(ups []VecUpdate, dots []DotPair) []*Scalar {
	p.mustBeFinalized()
	if len(ups) == 0 && len(dots) == 0 {
		panic("core: FusedSweep needs at least one update or dot pair")
	}
	anchor := p.sweepAnchor(ups, dots)
	comps := p.comps(p.vecs[anchor].shape)
	sdc, hooks := p.sdcOn(), p.faultHooks()

	// One scratch slot per (piece, dot), piece-major, so each partial
	// task writes one contiguous span. With detection on each piece gets
	// one extra guard slot holding the sum of its partials.
	k := len(dots)
	stride := k
	if sdc && k > 0 {
		stride = k + 1
	}
	total := 0
	for _, c := range comps {
		total += c.part.NumColors()
	}
	var scratch *region.Region
	if k > 0 {
		space := index.NewSpace("dotscratch", int64(total*stride))
		if p.virtual {
			scratch = region.NewVirtual("dotscratch", space)
		} else {
			scratch = region.New("dotscratch", space, "s")
		}
	}

	var verified, pureSrc []VecID
	if sdc {
		verified, pureSrc = sweepVecs(ups, dots)
	}

	piece := 0
	eachPiece(comps, func(ci, color int, subset index.IntervalSet, proc int) {
		mySlot := piece
		base := int64(piece * stride)
		piece++
		refs, cost := p.sweepRefs(ci, subset, ups, dots)
		if k > 0 {
			refs = append(refs, region.Ref{
				Region: scratch.ID(), Field: "s",
				Subset: index.Span(base, base+int64(stride)-1), Priv: region.WriteDiscard,
			})
		}
		if sdc {
			for _, id := range verified {
				refs = append(refs, p.chkRef(id, mySlot, region.ReadWrite))
			}
			for _, id := range pureSrc {
				refs = append(refs, p.chkRef(id, mySlot, region.ReadOnly))
			}
		}
		var run func() float64
		if !p.virtual {
			run = p.sweepBody(ci, mySlot, subset, base, scratch, ups, dots, verified)
		}
		name := "fused.update"
		if len(ups) == 0 {
			name = "dot.batch"
		} else if k > 0 {
			name = "fused.updatedot"
		}
		spec := taskrt.TaskSpec{
			Name: name, Proc: proc, Piece: mySlot + 1,
			Cost: cost, Refs: refs, Run: run,
			// A sweep with updates read-modify-writes its dsts, so a
			// partial first attempt would double-apply; a pure dot batch
			// overwrites its scratch slots and is idempotent.
			Retryable: len(ups) == 0,
		}
		if hooks {
			var targets []corruptTarget
			seen := make(map[VecID]bool)
			for _, u := range ups {
				if !seen[u.Dst] {
					seen[u.Dst] = true
					targets = append(targets, corruptTarget{p.vecs[u.Dst].regs[ci].Field("v"), subset})
				}
			}
			if k > 0 {
				targets = append(targets, corruptTarget{scratch.Field("s"), index.Span(base, base+int64(stride)-1)})
			}
			spec.Corrupt = corruptHook(targets...)
		}
		p.batch(spec)
	})
	p.flushBatch()

	if k == 0 {
		return nil
	}
	return p.batchReduce(scratch, total, stride, dots)
}

// sweepAnchor returns the vector whose component structure drives the
// sweep, after validating every participating vector against it.
func (p *Planner) sweepAnchor(ups []VecUpdate, dots []DotPair) VecID {
	var ids []VecID
	for _, u := range ups {
		if u.Alpha == nil {
			panic("core: VecUpdate requires a scalar coefficient")
		}
		ids = append(ids, u.Dst, u.Src)
	}
	for _, d := range dots {
		ids = append(ids, d.V, d.W)
	}
	anchor := ids[0]
	ac := p.comps(p.vecs[anchor].shape)
	for _, id := range ids[1:] {
		c := p.comps(p.vecs[id].shape)
		if len(c) != len(ac) {
			panic("core: fused sweep vectors have different component counts")
		}
		for i := range c {
			if c[i].space.Size() != ac[i].space.Size() {
				panic(fmt.Sprintf("core: fused sweep component %d size mismatch: %d vs %d",
					i, c[i].space.Size(), ac[i].space.Size()))
			}
		}
	}
	return anchor
}

// sweepRefs builds the region references and simulated cost of one
// piece's fused task. References on the same vector region are merged
// (read-write when any participant writes), so a vector appearing as
// both an update dst and a dot operand is declared once.
func (p *Planner) sweepRefs(ci int, subset index.IntervalSet, ups []VecUpdate, dots []DotPair) ([]region.Ref, float64) {
	var refs []region.Ref
	idx := make(map[region.ID]int)
	vecRef := func(id VecID, writes bool) {
		reg := p.vecs[id].regs[ci]
		if i, ok := idx[reg.ID()]; ok {
			if writes && refs[i].Priv == region.ReadOnly {
				refs[i].Priv = region.ReadWrite
			}
			return
		}
		priv := region.ReadOnly
		if writes {
			priv = region.ReadWrite
		}
		idx[reg.ID()] = len(refs)
		refs = append(refs, pieceRef(reg, subset, priv))
	}
	var cost float64
	seen := make(map[*Scalar]bool)
	for _, u := range ups {
		vecRef(u.Dst, true)
		vecRef(u.Src, false)
		if !seen[u.Alpha] {
			seen[u.Alpha] = true
			refs = append(refs, u.Alpha.ref(region.ReadOnly))
		}
		cost += p.mach.AxpyCost(subset.Size())
	}
	for _, d := range dots {
		vecRef(d.V, false)
		vecRef(d.W, false)
		cost += p.mach.DotCost(subset.Size())
	}
	return refs, cost
}

// sweepBody builds the real-mode task body of one piece: the checksum
// verification pre-pass (detection only), the updates in order with
// checksum maintenance, then the dot partials into scratch slots
// base..base+k-1 (and the guard slot at base+k when detection is on).
func (p *Planner) sweepBody(ci, slot int, subset index.IntervalSet, base int64,
	scratch *region.Region, ups []VecUpdate, dots []DotPair, verified []VecID) func() float64 {

	type boundUpdate struct {
		kind   UpdateKind
		neg    bool
		d, s   []float64
		a      []float64
		cd, cs []float64 // checksum slots of dst and src (nil without sdc)
	}
	sdc := p.sdcOn()
	mon, tol := (*SDCMonitor)(nil), 0.0
	if sdc {
		mon, tol = p.sdc.mon, p.sdc.tol
	}
	bu := make([]boundUpdate, len(ups))
	for i, u := range ups {
		bu[i] = boundUpdate{
			kind: u.Kind, neg: u.Neg,
			d: p.vecs[u.Dst].regs[ci].Field("v"),
			s: p.vecs[u.Src].regs[ci].Field("v"),
			a: u.Alpha.reg.Field("s"),
		}
		if sdc {
			bu[i].cd = p.chkData(u.Dst)
			bu[i].cs = p.chkData(u.Src)
		}
	}
	type boundChk struct {
		id  VecID
		d   []float64
		chk []float64
	}
	var bv []boundChk
	for _, id := range verified {
		bv = append(bv, boundChk{id: id, d: p.vecs[id].regs[ci].Field("v"), chk: p.chkData(id)})
	}
	type boundDot struct{ v, w []float64 }
	bd := make([]boundDot, len(dots))
	for j, d := range dots {
		bd[j] = boundDot{
			v: p.vecs[d.V].regs[ci].Field("v"),
			w: p.vecs[d.W].regs[ci].Field("v"),
		}
	}
	var out []float64
	if scratch != nil {
		out = scratch.Field("s")
	}
	guard := sdc && len(dots) > 0
	k := int64(len(dots))
	return func() float64 {
		// Verify every vector this sweep will update or reduce over
		// against its incoming checksum, before touching anything: a
		// corruption planted anywhere in a solver's recurrence set since
		// the last sweep alarms here.
		for _, c := range bv {
			sum, abs := sumPiece(c.d, subset)
			verifySlot(mon, tol, "fused.verify", c.id, slot, c.chk, sum, abs)
		}
		for _, u := range bu {
			av := u.a[0]
			if u.neg {
				av = -av
			}
			d, s := u.d, u.s
			switch u.kind {
			case UpdAxpy:
				subset.EachInterval(func(iv index.Interval) {
					for i := iv.Lo; i <= iv.Hi; i++ {
						d[i] += av * s[i]
					}
				})
				if u.cd != nil {
					u.cd[slot] += av * u.cs[slot]
				}
			case UpdXpay:
				subset.EachInterval(func(iv index.Interval) {
					for i := iv.Lo; i <= iv.Hi; i++ {
						d[i] = s[i] + av*d[i]
					}
				})
				if u.cd != nil {
					u.cd[slot] = u.cs[slot] + av*u.cd[slot]
				}
			}
		}
		var first, gsum float64
		for j, d := range bd {
			var sum float64
			v, w := d.v, d.w
			subset.EachInterval(func(iv index.Interval) {
				for i := iv.Lo; i <= iv.Hi; i++ {
					sum += v[i] * w[i]
				}
			})
			out[base+int64(j)] = sum
			gsum += sum
			if j == 0 {
				first = sum
			}
		}
		if guard {
			out[base+k] = gsum
		}
		return first
	}
}

// batchReduce launches the single combine task of a batched reduction:
// it folds every dot's per-piece partials (in piece order, matching
// Dot's reduce) and writes all k output scalars, paying one allreduce
// instead of k. The returned scalars share the combine task's future;
// each reads its own value from its backing region. With detection on it
// first recomputes each piece's guard sum — partials were written and
// summed in the same order, so any corruption of the reduction scratch
// makes the bitwise comparison fail.
func (p *Planner) batchReduce(scratch *region.Region, pieces, stride int, dots []DotPair) []*Scalar {
	k := len(dots)
	guard := stride > k
	var mon *SDCMonitor
	if guard {
		mon = p.sdc.mon
	}
	outs := make([]*Scalar, k)
	refs := make([]region.Ref, 0, k+1)
	refs = append(refs, region.Ref{
		Region: scratch.ID(), Field: "s",
		Subset: index.Span(0, int64(pieces*stride)-1), Priv: region.ReadOnly,
	})
	for j := range outs {
		outs[j] = p.newScalar("dot", 0)
		refs = append(refs, outs[j].ref(region.WriteDiscard))
	}
	var run func() float64
	if !p.virtual {
		in := scratch.Field("s")
		dsts := make([][]float64, k)
		for j, s := range outs {
			dsts[j] = s.reg.Field("s")
		}
		run = func() float64 {
			if guard {
				for pc := 0; pc < pieces; pc++ {
					var g float64
					for j := 0; j < k; j++ {
						g += in[pc*stride+j]
					}
					if got := in[pc*stride+k]; got != g || math.IsNaN(g) {
						mon.report(SDCAlarm{
							Task: "dot.batchreduce", Vec: -1, Slot: pc,
							Expected: got, Got: g, Scale: math.Abs(g),
						})
					}
				}
			}
			var first float64
			for j := 0; j < k; j++ {
				var sum float64
				for pc := 0; pc < pieces; pc++ {
					sum += in[pc*stride+j]
				}
				dsts[j][0] = sum
				if j == 0 {
					first = sum
				}
			}
			return first
		}
	}
	fut := p.sess.Launch(taskrt.TaskSpec{
		Name: "dot.batchreduce", Proc: 0,
		// One tree reduction regardless of k: the scalars ride the same
		// allreduce message.
		Cost: p.mach.AllReduceTime(),
		Refs: refs,
		Run:  run, Retryable: true,
	})
	for _, s := range outs {
		s.fut = fut
		if !p.virtual {
			val := s.reg.Field("s")
			s.read = func() float64 { return val[0] }
		}
	}
	return outs
}
