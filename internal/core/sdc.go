package core

import (
	"fmt"
	"math"
	"sync"

	"kdrsolvers/internal/fault"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/obs"
	"kdrsolvers/internal/region"
	"kdrsolvers/internal/taskrt"
)

// Algorithm-based fault tolerance (ABFT) for silent data corruption.
//
// Threat model: a soft error flips bits in a vector piece *after* the
// producing task computed it (the injector's bitflip/scale kinds model
// exactly this), so no in-task self-check of the producer can see it —
// only an independent invariant carried alongside the data can.
//
// The invariant is a per-(component, piece) checksum: one float64 slot
// per piece of every planner vector, holding Σᵢ vᵢ over the piece as of
// the last write. Writers maintain the slots through the *operation's
// algebra*, not by re-summing their output:
//
//   - zero:     chk ← 0
//   - copy:     chk_d ← chk_s
//   - scal:     chk ← α·chk
//   - axpy:     chk_d ← chk_d + α·chk_s
//   - xpay:     chk_d ← chk_s + α·chk_d
//   - SpMV:     chk += w·x with w the operator's column-checksum vector
//               (wⱼ = Σ_{i∈piece} Aᵢⱼ, precomputed per (operator, piece))
//
// so a corrupted slot value and a corrupted data value cannot cancel.
// Readers (dot partials, fused-sweep piece tasks, explicit vec.checksum
// tasks) re-sum the data they are streaming anyway, compare against the
// slot within a relative tolerance, raise an SDCAlarm on mismatch, and
// refresh the slot with the measured sum — the refresh bounds the
// rounding drift of the recurrence maintenance to the few operations
// between consecutive verifications.
//
// The forward SpMV additionally self-checks in-task: Σ(y over the write
// set) must equal w·x up to rounding, the classic ABFT checksummed SpMV.
// Fused dot batches carry a per-piece guard slot (the sum of the piece's
// partials, recomputed bitwise-identically by the combine task), so
// corruption of reduction scratch between partial and combine is caught
// exactly.
//
// Everything here is opt-in via EnableSDCDetection; with detection off,
// no extra region references, passes, or allocations exist anywhere.
//
// Detection floor: a flip in the low mantissa bits of one entry changes
// Σv by a relative amount far below any tolerance that survives honest
// rounding drift. Such corruptions are undetectable by summation ABFT —
// and numerically harmless at the same order; residual replacement (the
// recovery layer) bounds their effect on the returned solution.

// SDCAlarm records one detected checksum violation.
type SDCAlarm struct {
	// Task is the name of the task that detected the mismatch.
	Task string
	// Vec is the planner vector whose piece failed verification, and Slot
	// its global piece index (eachPiece order).
	Vec  VecID
	Slot int
	// Expected is the maintained checksum, Got the sum measured from the
	// data, and Scale the magnitude the tolerance was scaled by.
	Expected, Got, Scale float64
}

func (a SDCAlarm) String() string {
	return fmt.Sprintf("sdc: %s vec %d piece %d: checksum %g, data sums to %g (scale %g)",
		a.Task, a.Vec, a.Slot, a.Expected, a.Got, a.Scale)
}

// SDCMonitor collects checksum alarms from concurrently executing tasks.
// All methods are safe for concurrent use.
type SDCMonitor struct {
	mu     sync.Mutex
	alarms []SDCAlarm
	total  int64
	rec    *obs.Recorder
}

// SetRecorder mirrors every subsequent alarm into an obs recorder as a
// FailureSDC record, so corruption events appear in profiles next to
// panics and stragglers.
func (m *SDCMonitor) SetRecorder(rec *obs.Recorder) {
	m.mu.Lock()
	m.rec = rec
	m.mu.Unlock()
}

func (m *SDCMonitor) report(a SDCAlarm) {
	m.mu.Lock()
	m.alarms = append(m.alarms, a)
	m.total++
	rec := m.rec
	m.mu.Unlock()
	if rec != nil {
		rec.RecordFailure(obs.Failure{
			Name: a.Task, Kind: obs.FailureSDC, Msg: a.String(),
		})
	}
}

// Count returns the total number of alarms raised so far (including
// already-taken ones).
func (m *SDCMonitor) Count() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// Alarms returns a copy of the pending (un-taken) alarms.
func (m *SDCMonitor) Alarms() []SDCAlarm {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]SDCAlarm(nil), m.alarms...)
}

// Take drains and returns the pending alarms. Resilient drivers poll it
// once per iteration and recover from whatever it reports.
func (m *SDCMonitor) Take() []SDCAlarm {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.alarms
	m.alarms = nil
	return out
}

// colCheck is one (operator, output piece)'s sparse column-checksum
// vector: Σ over the piece's rows of each matrix column, stored sparse.
type colCheck struct {
	idx []int64
	val []float64
}

// sdcState is the planner's detection bookkeeping.
type sdcState struct {
	mon *SDCMonitor
	tol float64
	// chk[id] is vector id's checksum region ("s" field, one slot per
	// piece in eachPiece order), parallel to Planner.vecs.
	chk []*region.Region
	// colchk[op][color] is the forward product's column checksum.
	colchk [][]colCheck
}

// DefaultSDCTol is the default relative verification tolerance. It rides
// far above the rounding drift the recurrence maintenance accumulates
// between verifications, and far below any exponent- or high-mantissa-bit
// corruption of a well-scaled entry.
const DefaultSDCTol = 1e-7

// EnableSDCDetection turns on checksummed kernels for this planner and
// returns the alarm monitor. Every existing vector gets a checksum region
// seeded from its current data, and every operator gets per-piece column
// checksums for the ABFT SpMV; workspaces allocated later join
// automatically. tol <= 0 selects DefaultSDCTol. The call requires a
// finalized real-mode planner and a quiescent runtime; calling it again
// returns the same monitor. Detection is observation-only — alarms are
// recorded, never acted on — recovery policy lives in the solver layer.
func (p *Planner) EnableSDCDetection(tol float64) *SDCMonitor {
	p.mustBeFinalized()
	if p.virtual {
		panic("core: SDC detection requires a real planner")
	}
	if p.sdc != nil {
		return p.sdc.mon
	}
	if tol <= 0 {
		tol = DefaultSDCTol
	}
	s := &sdcState{mon: &SDCMonitor{}, tol: tol}
	p.sdc = s
	for id := range p.vecs {
		p.sdcAddVec(VecID(id))
	}
	s.colchk = make([][]colCheck, len(p.ops))
	for oi := range p.ops {
		s.colchk[oi] = p.buildColChecks(&p.ops[oi])
	}
	return s.mon
}

// SDCMonitor returns the planner's alarm monitor, or nil when detection
// is off.
func (p *Planner) SDCMonitor() *SDCMonitor {
	if p.sdc == nil {
		return nil
	}
	return p.sdc.mon
}

// sdcOn reports whether checksummed kernels are active.
func (p *Planner) sdcOn() bool { return p.sdc != nil && !p.virtual }

// shapePieces returns the total piece count of a shape.
func (p *Planner) shapePieces(shape Shape) int {
	total := 0
	for _, c := range p.comps(shape) {
		total += c.part.NumColors()
	}
	return total
}

// slotOf returns the global checksum slot of (component ci, color) for a
// vector of the given shape: the eachPiece visit order.
func (p *Planner) slotOf(shape Shape, ci, color int) int {
	slot := color
	for _, c := range p.comps(shape)[:ci] {
		slot += c.part.NumColors()
	}
	return slot
}

// sdcAddVec creates (and seeds) the checksum region of one vector.
func (p *Planner) sdcAddVec(id VecID) {
	s := p.sdc
	for len(s.chk) <= int(id) {
		s.chk = append(s.chk, nil)
	}
	v := p.vecs[id]
	total := p.shapePieces(v.shape)
	reg := region.New(fmt.Sprintf("chk%d", id), index.NewSpace(fmt.Sprintf("chk%d", id), int64(total)), "s")
	s.chk[id] = reg
	p.seedChecksum(id)
}

// seedChecksum recomputes a vector's checksum slots host-side from its
// current data. The runtime must be quiescent.
func (p *Planner) seedChecksum(id VecID) {
	v, comps := p.vecComps(id)
	out := p.sdc.chk[id].Field("s")
	slot := 0
	eachPiece(comps, func(ci, color int, subset index.IntervalSet, proc int) {
		d := v.regs[ci].Field("v")
		var sum float64
		subset.EachInterval(func(iv index.Interval) {
			for i := iv.Lo; i <= iv.Hi; i++ {
				sum += d[i]
			}
		})
		out[slot] = sum
		slot++
	})
}

// buildColChecks computes the forward column-checksum vectors of one
// operator: for each output piece, w = Aᵀ·1 over the piece's write set,
// sparsified. w·x then predicts Σ of the piece's SpMV contribution.
func (p *Planner) buildColChecks(op *opEntry) []colCheck {
	outPart := p.rhs[op.rhsIdx].part
	domain := p.sol[op.solIdx].space.Size()
	rng := p.rhs[op.rhsIdx].space.Size()
	out := make([]colCheck, outPart.NumColors())
	ind := make([]float64, rng)
	w := make([]float64, domain)
	for color := range out {
		kset := op.kpart.Piece(color)
		outSet := op.outImage.Piece(color)
		if kset.Empty() || outSet.Empty() {
			continue
		}
		outSet.EachInterval(func(iv index.Interval) {
			for i := iv.Lo; i <= iv.Hi; i++ {
				ind[i] = 1
			}
		})
		for j := range w {
			w[j] = 0
		}
		op.mat.MultiplyAddTPart(w, ind, kset)
		var cc colCheck
		for j, wj := range w {
			if wj != 0 {
				cc.idx = append(cc.idx, int64(j))
				cc.val = append(cc.val, wj)
			}
		}
		out[color] = cc
		outSet.EachInterval(func(iv index.Interval) {
			for i := iv.Lo; i <= iv.Hi; i++ {
				ind[i] = 0
			}
		})
	}
	return out
}

// chkRef builds the region reference for one checksum slot.
func (p *Planner) chkRef(id VecID, slot int, priv region.Privilege) region.Ref {
	return region.Ref{
		Region: p.sdc.chk[id].ID(), Field: "s",
		Subset: index.Span(int64(slot), int64(slot)), Priv: priv,
	}
}

// chkData returns a vector's checksum slot storage.
func (p *Planner) chkData(id VecID) []float64 { return p.sdc.chk[id].Field("s") }

// verifySlot compares a measured piece sum against the maintained
// checksum, raises an alarm on mismatch, and refreshes the slot with the
// measured value (bounding recurrence drift to the span between
// verifications). abs is Σ|vᵢ|, the magnitude the tolerance scales by.
func verifySlot(mon *SDCMonitor, tol float64, task string, id VecID, slot int, chk []float64, sum, abs float64) {
	expected := chk[slot]
	scale := abs + math.Abs(expected) + 1
	if diff := math.Abs(expected - sum); diff > tol*scale || diff != diff {
		mon.report(SDCAlarm{Task: task, Vec: id, Slot: slot, Expected: expected, Got: sum, Scale: scale})
	}
	chk[slot] = sum
}

// sumPiece computes Σv and Σ|v| of one piece.
func sumPiece(d []float64, subset index.IntervalSet) (sum, abs float64) {
	subset.EachInterval(func(iv index.Interval) {
		for i := iv.Lo; i <= iv.Hi; i++ {
			sum += d[i]
			abs += math.Abs(d[i])
		}
	})
	return sum, abs
}

// LaunchChecksumCheck launches the cheap per-piece vec.checksum tasks for
// the given vectors: each verifies one piece's data against its
// maintained checksum and reports mismatches to the monitor. The tasks
// are detached and read-mostly, so a resilient driver can schedule them
// off the critical path every few iterations. No-op when detection is
// off.
func (p *Planner) LaunchChecksumCheck(ids ...VecID) {
	if !p.sdcOn() {
		return
	}
	mon, tol := p.sdc.mon, p.sdc.tol
	for _, id := range ids {
		v, comps := p.vecComps(id)
		chk := p.chkData(id)
		slot := 0
		eachPiece(comps, func(ci, color int, subset index.IntervalSet, proc int) {
			mySlot := slot
			slot++
			d := v.regs[ci].Field("v")
			vid := id
			p.batch(taskrt.TaskSpec{
				Name: "vec.checksum", Proc: proc,
				Cost:  p.mach.DotCost(subset.Size()),
				Piece: mySlot + 1,
				Refs: []region.Ref{
					pieceRef(v.regs[ci], subset, region.ReadOnly),
					p.chkRef(vid, mySlot, region.ReadWrite),
				},
				Run: func() float64 {
					sum, abs := sumPiece(d, subset)
					verifySlot(mon, tol, "vec.checksum", vid, mySlot, chk, sum, abs)
					return sum
				},
				Retryable: true,
			})
		})
	}
	p.flushBatch()
}

// VerifyChecksums runs LaunchChecksumCheck and drains, returning the
// number of NEW alarms the scan raised. Convenience for tests and
// host-side drivers.
func (p *Planner) VerifyChecksums(ids ...VecID) int {
	if !p.sdcOn() {
		return 0
	}
	before := p.sdc.mon.Count()
	p.LaunchChecksumCheck(ids...)
	p.Drain()
	return int(p.sdc.mon.Count() - before)
}

// ChecksumSpMV is the ABFT-checksummed product dst ← A_total·src: each
// piece task also computes the column-checksum prediction w·x of its
// contribution, self-checks Σy against it in-task, and maintains dst's
// piece checksums. It is exactly Matmul with detection enabled — the
// explicit name exists for callers (and benchmarks) that want the
// checksummed path regardless of solver policy.
func (p *Planner) ChecksumSpMV(dst, src VecID) {
	if p.sdc == nil {
		panic("core: ChecksumSpMV requires EnableSDCDetection")
	}
	p.Matmul(dst, src)
}

// nthPoint returns the k-th point (0-based) of an interval set.
func nthPoint(s index.IntervalSet, k int64) int64 {
	var out int64 = -1
	var seen int64
	s.EachInterval(func(iv index.Interval) {
		if out >= 0 {
			return
		}
		n := iv.Hi - iv.Lo + 1
		if k < seen+n {
			out = iv.Lo + (k - seen)
		}
		seen += n
	})
	return out
}

// corruptTarget is one writable (data, subset) pair of a task, exposed to
// the fault injector's data-corruption hook.
type corruptTarget struct {
	data   []float64
	subset index.IntervalSet
}

// corruptHook builds a TaskSpec.Corrupt callback over the task's writable
// points: the injection's Pos picks one element across the concatenated
// targets and CorruptValue mangles it in place. The hook runs after the
// task body, inside the task's declared write privileges.
func corruptHook(targets ...corruptTarget) func(fault.Injection) {
	return func(inj fault.Injection) {
		var total int64
		for _, t := range targets {
			total += t.subset.Size()
		}
		if total == 0 {
			return
		}
		k := int64(inj.Pos * float64(total))
		if k >= total {
			k = total - 1
		}
		for _, t := range targets {
			sz := t.subset.Size()
			if k < sz {
				i := nthPoint(t.subset, k)
				t.data[i] = inj.CorruptValue(t.data[i])
				return
			}
			k -= sz
		}
	}
}

// faultHooks reports whether per-launch corruption hooks should be built:
// only when an injector is installed, so clean runs pay nothing.
func (p *Planner) faultHooks() bool {
	return !p.virtual && p.sess.FaultsActive()
}

// RestoreSolPieces selectively restores the listed solution pieces
// (global eachPiece slots) from a checkpoint, leaving every other piece's
// state intact — the recovery half of piece-level SDC containment. The
// restored pieces' checksums are reseeded. Host-side; the runtime must be
// quiescent. Real planners only.
func (p *Planner) RestoreSolPieces(ckpt [][]float64, slots []int) {
	if p.virtual {
		panic("core: checkpointing requires a real planner")
	}
	if len(ckpt) != len(p.vecs[SOL].regs) {
		panic("core: checkpoint component count mismatch")
	}
	for _, want := range slots {
		slot := 0
		eachPiece(p.sol, func(ci, color int, subset index.IntervalSet, proc int) {
			if slot == want {
				dst := p.vecs[SOL].regs[ci].Field("v")
				src := ckpt[ci]
				subset.EachInterval(func(iv index.Interval) {
					copy(dst[iv.Lo:iv.Hi+1], src[iv.Lo:iv.Hi+1])
				})
			}
			slot++
		})
	}
	if p.sdcOn() {
		p.seedChecksum(SOL)
	}
}
