package core

import (
	"math"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/region"
	"kdrsolvers/internal/taskrt"
)

// Matmul computes dst ← A_total · src (Section 4.1): for every operator
// quadruple (K_ℓ, A_ℓ, i_ℓ, j_ℓ) a multiply-add y_{j_ℓ} ← A_ℓ x_{i_ℓ} +
// y_{j_ℓ} is launched per output piece. The first task writing each
// output piece takes write-discard privilege and zeroes the piece inline
// (no separate zero pass costs bandwidth); later tasks into the same
// piece carry reduction privileges, so the runtime's interference
// analysis serializes exactly the conflicting pairs and everything else
// overlaps. Output pieces no operator touches are zeroed explicitly
// (the empty sum of equation 8).
//
// With SDC detection on this is the checksummed SpMV: each forward
// multiply-add also evaluates its precomputed column-checksum prediction
// w·x, compares it against the contribution it actually wrote (the ABFT
// invariant Σ(A x)|piece = (Aᵀ1)·x), and maintains the dst piece
// checksums. Adjoint and preconditioner products maintain the checksums
// from their computed output without the independent w·x cross-check.
// Source-halo pieces are not re-verified here — solver sources are
// recurrence vectors whose checksums the fused sweeps verify each
// iteration.
//
// dst must be range-shaped-compatible and src domain-shaped-compatible
// with the system (interchangeable for square systems).
func (p *Planner) Matmul(dst, src VecID) {
	p.mustBeFinalized()
	p.checkMatmulShapes(p.vecs[dst], p.vecs[src])
	p.runMultiOp(p.ops, dst, src, false, false)
}

// MatmulT computes dst ← A_totalᵀ · src: the adjoint product, partitioned
// by the domain components' canonical partitions.
func (p *Planner) MatmulT(dst, src VecID) {
	p.mustBeFinalized()
	p.checkMatmulTShapes(p.vecs[dst], p.vecs[src])
	p.runMultiOp(p.ops, dst, src, true, false)
}

// PSolve computes dst ← P_total · src, applying the user-supplied
// preconditioner components. It panics when no preconditioner was added.
func (p *Planner) PSolve(dst, src VecID) {
	p.mustBeFinalized()
	if !p.HasPreconditioner() {
		panic("core: PSolve without a preconditioner")
	}
	p.runMultiOp(p.pre, dst, src, false, true)
}

// opTarget describes where one operator writes and reads for a forward or
// adjoint pass.
func opTarget(op *opEntry, adjoint, pre bool) (outIdx, inIdx int, kpart, inHalo, outImage index.Partition) {
	switch {
	case pre:
		return op.solIdx, op.rhsIdx, op.kpart, op.inHalo, op.outImage
	case adjoint:
		return op.solIdx, op.rhsIdx, op.kpartT, op.inHaloT, op.outImageT
	default:
		return op.rhsIdx, op.solIdx, op.kpart, op.inHalo, op.outImage
	}
}

// runMultiOp launches the decomposed product over an operator set. Every
// point of the output vector is zeroed exactly once before any
// multiply-add touches it: the operator that first reaches a point zeroes
// it inline (write-discard when its whole write set is fresh), and points
// no operator writes get explicit zero tasks (the empty sum of
// equation 8).
func (p *Planner) runMultiOp(ops []opEntry, dst, src VecID, adjoint, pre bool) {
	dv, sv := p.vecs[dst], p.vecs[src]
	outComps := p.rhs
	if adjoint || pre {
		outComps = p.sol
	}
	// covered[comp][color] accumulates the points already written in this
	// product; wrote tracks whether any task (checksum-wise, the slot
	// writer) reached the piece yet.
	covered := make([][]index.IntervalSet, len(outComps))
	wrote := make([][]bool, len(outComps))
	compOff := make([]int, len(outComps))
	off := 0
	for i, c := range outComps {
		covered[i] = make([]index.IntervalSet, c.part.NumColors())
		wrote[i] = make([]bool, c.part.NumColors())
		compOff[i] = off
		off += c.part.NumColors()
	}
	name := "matmul"
	if adjoint {
		name = "matmulT"
	} else if pre {
		name = "psolve"
	}
	sdc := p.sdcOn()
	for oi := range ops {
		op := &ops[oi]
		outIdx, inIdx, kpart, inHalo, outImage := opTarget(op, adjoint, pre)
		outComp := outComps[outIdx]
		outReg, inReg := dv.regs[outIdx], sv.regs[inIdx]
		for color := 0; color < outComp.part.NumColors(); color++ {
			kset := kpart.Piece(color)
			outSet := outImage.Piece(color)
			if kset.Empty() || outSet.Empty() {
				continue
			}
			fresh := outSet.Subtract(covered[outIdx][color])
			covered[outIdx][color] = covered[outIdx][color].Union(outSet)
			var cc *colCheck
			if sdc && !adjoint && !pre {
				if cols := p.sdc.colchk[oi]; color < len(cols) && cols[color].idx != nil {
					cc = &cols[color]
				}
			}
			p.launchMultiplyAdd(name, oi, color, op, outReg, inReg,
				outComp, kset, inHalo.Piece(color), outSet, fresh, adjoint, pre,
				dst, compOff[outIdx]+color, !wrote[outIdx][color], cc)
			wrote[outIdx][color] = true
		}
	}
	// Zero whatever no operator wrote.
	for ci, c := range outComps {
		for color := 0; color < c.part.NumColors(); color++ {
			rest := c.part.Piece(color).Subtract(covered[ci][color])
			if !rest.Empty() {
				p.zeroPiece(dv.regs[ci], rest, c.procs[color],
					dst, compOff[ci]+color, !wrote[ci][color])
				wrote[ci][color] = true
			}
		}
	}
	// The whole product — every operator's multiply-adds plus the
	// explicit zero fills — submits as one fused batch.
	p.flushBatch()
}

// launchMultiplyAdd launches one multiply-add task for one output piece of
// one operator. outSet is the task's true write set; fresh is the part of
// it no earlier operator wrote, which the task zeroes inline before
// accumulating. A fully fresh write set takes write-discard privilege;
// any overlap with earlier writers takes reduction privilege, which the
// runtime orders. first marks the checksum-slot initializer of the piece
// in this product; cc, when non-nil, is the forward product's
// column-checksum vector for the ABFT cross-check.
func (p *Planner) launchMultiplyAdd(name string, opIdx, color int, op *opEntry,
	outReg, inReg *region.Region, outComp component,
	kset, inSet, outSet, fresh index.IntervalSet, adjoint, pre bool,
	dst VecID, slot int, first bool, cc *colCheck) {

	proc := outComp.procs[color]
	if !pre && p.mmProc != nil {
		if q := p.mmProc(opIdx, color); q >= 0 {
			proc = q
		}
	}
	priv := region.ReduceSum
	if fresh.Equal(outSet) {
		priv = region.WriteDiscard
	}
	sdc, hooks := p.sdcOn(), p.faultHooks()
	var chk []float64
	var mon *SDCMonitor
	var tol float64
	if sdc {
		chk = p.chkData(dst)
		mon, tol = p.sdc.mon, p.sdc.tol
	}
	var run func() float64
	if !p.virtual {
		y := outReg.Field("v")
		x := inReg.Field("v")
		mat := op.mat
		ks, fr, os := kset, fresh, outSet
		wd := priv == region.WriteDiscard
		run = func() float64 {
			var before float64
			if sdc && !wd {
				// A reduction task folds into earlier writers' data; its own
				// contribution is the sum delta over its write set.
				before, _ = sumPiece(y, os)
			}
			fr.EachInterval(func(iv index.Interval) {
				for i := iv.Lo; i <= iv.Hi; i++ {
					y[i] = 0
				}
			})
			if adjoint {
				mat.MultiplyAddTPart(y, x, ks)
			} else {
				mat.MultiplyAddPart(y, x, ks)
			}
			if sdc {
				after, abs := sumPiece(y, os)
				contrib := after - before
				if cc != nil {
					// The checksummed SpMV invariant: the contribution this
					// task wrote must match the column-checksum prediction
					// w·x computed from independent data.
					var wx float64
					for t, j := range cc.idx {
						wx += cc.val[t] * x[j]
					}
					scale := abs + math.Abs(wx) + 1
					if diff := math.Abs(wx - contrib); diff > tol*scale || diff != diff {
						mon.report(SDCAlarm{
							Task: "matmul.abft", Vec: dst, Slot: slot,
							Expected: wx, Got: contrib, Scale: scale,
						})
					}
				}
				if first {
					chk[slot] = contrib
				} else {
					chk[slot] += contrib
				}
			}
			return 0
		}
	}
	spec := taskrt.TaskSpec{
		Name: name, Proc: proc, Piece: slot + 1,
		Cost: p.mach.SpMVCost(kset.Size(), outSet.Size()),
		Refs: []region.Ref{
			pieceRef(outReg, outSet, priv),
			pieceRef(inReg, inSet, region.ReadOnly),
		},
		Run: run,
		// A write-discard multiply-add zeroes its whole write set before
		// accumulating, so re-execution is safe; a reduction into data
		// earlier operators wrote is not, and neither is a checksum-slot
		// accumulation (chk[slot] += contrib would double-apply).
		Retryable: priv == region.WriteDiscard && (!sdc || first),
	}
	if sdc {
		chkPriv := region.ReadWrite
		if first {
			chkPriv = region.WriteDiscard
		}
		spec.Refs = append(spec.Refs, p.chkRef(dst, slot, chkPriv))
	}
	if hooks {
		spec.Corrupt = corruptHook(corruptTarget{outReg.Field("v"), outSet})
	}
	p.batch(spec)
}

// zeroPiece launches a zero-fill of one piece (or the remainder of one).
// When it is the piece's first checksum writer in a product — no operator
// touched the piece at all — it also zeroes the checksum slot.
func (p *Planner) zeroPiece(reg *region.Region, subset index.IntervalSet, proc int,
	dst VecID, slot int, first bool) {

	sdc, hooks := p.sdcOn(), p.faultHooks()
	var chk []float64
	if sdc {
		chk = p.chkData(dst)
	}
	var run func() float64
	if !p.virtual {
		d := reg.Field("v")
		run = func() float64 {
			subset.EachInterval(func(iv index.Interval) {
				for i := iv.Lo; i <= iv.Hi; i++ {
					d[i] = 0
				}
			})
			if sdc && first {
				chk[slot] = 0
			}
			return 0
		}
	}
	spec := taskrt.TaskSpec{
		Name: "zero", Proc: proc, Piece: slot + 1,
		Cost: p.mach.Blas1Cost(subset.Size()),
		Refs: []region.Ref{pieceRef(reg, subset, region.WriteDiscard)},
		Run:  run, Retryable: true,
	}
	if sdc && first {
		spec.Refs = append(spec.Refs, p.chkRef(dst, slot, region.WriteDiscard))
	}
	if hooks {
		spec.Corrupt = corruptHook(corruptTarget{reg.Field("v"), subset})
	}
	p.batch(spec)
}

// checkMatmulShapes panics unless dst matches the range components and
// src the domain components.
func (p *Planner) checkMatmulShapes(dv, sv vec) {
	if len(dv.regs) != len(p.rhs) || len(sv.regs) != len(p.sol) {
		panic("core: Matmul vector component counts do not match the system")
	}
	for j, c := range p.rhs {
		if dv.regs[j].Space().Size() != c.space.Size() {
			panic("core: Matmul destination shape mismatch")
		}
	}
	for i, c := range p.sol {
		if sv.regs[i].Space().Size() != c.space.Size() {
			panic("core: Matmul source shape mismatch")
		}
	}
}

// checkMatmulTShapes panics unless dst matches the domain components and
// src the range components.
func (p *Planner) checkMatmulTShapes(dv, sv vec) {
	if len(dv.regs) != len(p.sol) || len(sv.regs) != len(p.rhs) {
		panic("core: MatmulT vector component counts do not match the system")
	}
	for i, c := range p.sol {
		if dv.regs[i].Space().Size() != c.space.Size() {
			panic("core: MatmulT destination shape mismatch")
		}
	}
	for j, c := range p.rhs {
		if sv.regs[j].Space().Size() != c.space.Size() {
			panic("core: MatmulT source shape mismatch")
		}
	}
}
