package core

import (
	"fmt"
	"math"
	"testing"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sparse"
)

// powersTestPlanner builds a single-component square system over the
// given operator(s) with deterministic non-trivial source data.
func powersTestPlanner(n int64, pieces int, virt bool, mats ...sparse.Matrix) *Planner {
	p := NewPlanner(Config{Machine: machine.Lassen(2), Virtual: virt})
	var si, ri int
	if virt {
		si = p.AddSolVectorVirtual(n, index.EqualPartition(index.NewSpace("D", n), pieces))
		ri = p.AddRHSVectorVirtual(n, index.EqualPartition(index.NewSpace("R", n), pieces))
	} else {
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = float64((i*7)%23)/11 - 0.4
		}
		si = p.AddSolVector(make([]float64, n), index.EqualPartition(index.NewSpace("D", n), pieces))
		ri = p.AddRHSVector(rhs, index.EqualPartition(index.NewSpace("R", n), pieces))
	}
	for _, m := range mats {
		p.AddOperator(m, si, ri)
	}
	p.Finalize()
	return p
}

// hostPowers computes the reference basis [(A−θ₁)x, (A−θ₂)(A−θ₁)x, …]
// with plain full-matrix SpMVs, A being the sum of the operators.
func hostPowers(mats []sparse.Matrix, x []float64, levels int, shifts []float64) [][]float64 {
	out := make([][]float64, levels)
	cur := x
	tmp := make([]float64, len(x))
	for k := 0; k < levels; k++ {
		out[k] = make([]float64, len(x))
		for _, m := range mats {
			sparse.SpMV(m, tmp, cur)
			for i := range tmp {
				out[k][i] += tmp[i]
			}
		}
		if shifts != nil && shifts[k] != 0 {
			for i := range cur {
				out[k][i] -= shifts[k] * cur[i]
			}
		}
		cur = out[k]
	}
	return out
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// powersTestOperators is the format sweep the kernel must be agnostic
// to: assembled CSR, ELL, the adaptive composite, and the matrix-free
// stencil operator.
func powersTestOperators() map[string]sparse.Matrix {
	lap := sparse.Laplacian2D(8, 8)
	return map[string]sparse.Matrix{
		"csr":     lap,
		"ell":     sparse.Convert(lap, "ELL"),
		"auto":    sparse.Convert(lap, "Auto"),
		"stencil": sparse.NewStencilOperator(sparse.Stencil2D5, index.NewGrid(8, 8)),
	}
}

func TestPowersSweepMatchesRepeatedSpMV(t *testing.T) {
	const n, pieces, depth = 64, 4, 4
	for name, mat := range powersTestOperators() {
		for _, shifts := range [][]float64{nil, {0.5, -0.25, 1.5, 0}} {
			t.Run(fmt.Sprintf("%s/newton=%v", name, shifts != nil), func(t *testing.T) {
				p := powersTestPlanner(n, pieces, false, mat)
				plan := NewPowersPlan(p, depth)
				dsts := make([]VecID, depth)
				for i := range dsts {
					dsts[i] = p.AllocateWorkspace(RhsShape)
				}
				plan.Sweep(dsts, RHS, shifts)
				p.Drain()
				if err := p.Runtime().Err(); err != nil {
					t.Fatalf("runtime error: %v", err)
				}
				want := hostPowers([]sparse.Matrix{mat}, p.VecData(RHS, 0), depth, shifts)
				for k := range dsts {
					if d := maxAbsDiff(p.VecData(dsts[k], 0), want[k]); d > 1e-12 {
						t.Errorf("level %d: max deviation %g from host powers", k+1, d)
					}
				}
			})
		}
	}
}

func TestPowersSweepMultiOperatorSums(t *testing.T) {
	// Two operators on one system act as their sum; the powers kernel
	// must apply the summed operator at every level, not each operator's
	// powers separately.
	const n, pieces, depth = 64, 4, 3
	lap := sparse.Laplacian2D(8, 8)
	tri := convTestMatrix(n)
	p := powersTestPlanner(n, pieces, false, lap, tri)
	plan := NewPowersPlan(p, depth)
	dsts := make([]VecID, depth)
	for i := range dsts {
		dsts[i] = p.AllocateWorkspace(RhsShape)
	}
	plan.Sweep(dsts, RHS, nil)
	p.Drain()
	if err := p.Runtime().Err(); err != nil {
		t.Fatalf("runtime error: %v", err)
	}
	want := hostPowers([]sparse.Matrix{lap, tri}, p.VecData(RHS, 0), depth, nil)
	for k := range dsts {
		if d := maxAbsDiff(p.VecData(dsts[k], 0), want[k]); d > 1e-12 {
			t.Errorf("level %d: max deviation %g from host (A+B) powers", k+1, d)
		}
	}
}

// convTestMatrix builds a nonsymmetric tridiagonal operator.
func convTestMatrix(n int64) *sparse.CSR {
	var cs []sparse.Coord
	for i := int64(0); i < n; i++ {
		cs = append(cs, sparse.Coord{Row: i, Col: i, Val: 3})
		if i > 0 {
			cs = append(cs, sparse.Coord{Row: i, Col: i - 1, Val: -1.5})
		}
		if i < n-1 {
			cs = append(cs, sparse.Coord{Row: i, Col: i + 1, Val: -0.5})
		}
	}
	return sparse.CSRFromCoords(n, n, cs)
}

func TestPowersSweepShallowerThanPlan(t *testing.T) {
	// A depth-4 plan serving a 2-level sweep uses the deeper (wider) halo
	// sets; the answer must still be exact.
	const n, pieces = 64, 4
	lap := sparse.Laplacian2D(8, 8)
	p := powersTestPlanner(n, pieces, false, lap)
	plan := NewPowersPlan(p, 4)
	dsts := []VecID{p.AllocateWorkspace(RhsShape), p.AllocateWorkspace(RhsShape)}
	plan.Sweep(dsts, RHS, nil)
	p.Drain()
	if err := p.Runtime().Err(); err != nil {
		t.Fatalf("runtime error: %v", err)
	}
	want := hostPowers([]sparse.Matrix{lap}, p.VecData(RHS, 0), 2, nil)
	for k := range dsts {
		if d := maxAbsDiff(p.VecData(dsts[k], 0), want[k]); d > 1e-12 {
			t.Errorf("level %d: max deviation %g", k+1, d)
		}
	}
}

func TestPowersSweepVirtualLaunchParity(t *testing.T) {
	// The kernel's launch structure is data-independent: a virtual
	// planner must record exactly the real planner's task count, for the
	// sweep alone and for a sweep plus its Gram reduction.
	const n, pieces, depth = 64, 4, 3
	for name, mat := range powersTestOperators() {
		t.Run(name, func(t *testing.T) {
			run := func(virt bool) int64 {
				p := powersTestPlanner(n, pieces, virt, mat)
				plan := NewPowersPlan(p, depth)
				dsts := make([]VecID, depth)
				for i := range dsts {
					dsts[i] = p.AllocateWorkspace(RhsShape)
				}
				plan.Sweep(dsts, RHS, nil)
				p.Gram(append([]VecID{RHS}, dsts...)...)
				p.Drain()
				if err := p.Runtime().Err(); err != nil {
					t.Fatalf("virt=%v runtime error: %v", virt, err)
				}
				return p.Runtime().Stats().Launched
			}
			if real, virt := run(false), run(true); real != virt {
				t.Errorf("launched %d tasks real vs %d virtual", real, virt)
			}
		})
	}
}

func TestGramMatchesIndividualDots(t *testing.T) {
	const n, pieces = 96, 3
	lap := sparse.Laplacian2D(12, 8)
	p := powersTestPlanner(n, pieces, false, lap)
	a := p.AllocateWorkspace(RhsShape)
	b := p.AllocateWorkspace(RhsShape)
	p.Copy(a, RHS)
	p.Matmul(b, RHS)
	vs := []VecID{RHS, a, b}
	g := p.Gram(vs...)
	want := make([][]*Scalar, len(vs))
	for i := range vs {
		want[i] = make([]*Scalar, len(vs))
		for j := range vs {
			want[i][j] = p.Dot(vs[i], vs[j])
		}
	}
	p.Drain()
	for i := range vs {
		for j := range vs {
			if g[i][j].Value() != want[i][j].Value() {
				t.Errorf("G[%d][%d] = %g, individual dot %g", i, j,
					g[i][j].Value(), want[i][j].Value())
			}
			if g[i][j] != g[j][i] {
				t.Errorf("G[%d][%d] and G[%d][%d] are distinct scalars", i, j, j, i)
			}
		}
	}
}
