package core_test

import (
	"fmt"

	"kdrsolvers/internal/core"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sparse"
)

// The Figure 5 workflow: describe a system, then drive the Figure 6
// operations directly.
func ExamplePlanner() {
	a := sparse.Laplacian1D(8)
	x := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	b := make([]float64, 8)

	p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
	si := p.AddSolVector(x, index.EqualPartition(index.NewSpace("D", 8), 2))
	ri := p.AddRHSVector(b, index.EqualPartition(index.NewSpace("R", 8), 2))
	p.AddOperator(a, si, ri)
	p.Finalize()

	// y = A·x for the all-ones vector: interior rows sum to 0, boundary
	// rows to 1.
	y := p.AllocateWorkspace(core.RhsShape)
	p.Matmul(y, core.SOL)
	sum := p.Dot(y, core.SOL) // Σ (A·1) = 2 boundary rows
	fmt.Printf("1ᵀA1 = %g\n", sum.Value())
	p.Drain()
	// Output:
	// 1ᵀA1 = 2
}

// Multi-operator systems sum every operator on a component pair
// (equation 8); adding the same matrix twice doubles the product without
// duplicating storage.
func ExamplePlanner_AddOperator() {
	a := sparse.Identity(4)
	x := []float64{1, 2, 3, 4}
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
	si := p.AddSolVector(x, index.Partition{})
	ri := p.AddRHSVector(make([]float64, 4), index.Partition{})
	p.AddOperator(a, si, ri)
	p.AddOperator(a, si, ri) // aliased: same physical matrix
	p.Finalize()
	y := p.AllocateWorkspace(core.RhsShape)
	p.Matmul(y, core.SOL)
	p.Drain()
	fmt.Println(p.VecData(y, 0))
	// Output:
	// [2 4 6 8]
}

// Scalars are deferred futures backed by one-element regions: arithmetic
// on them launches tasks, and Value blocks only when asked.
func ExamplePlanner_Dot() {
	p := core.NewPlanner(core.Config{Machine: machine.Lassen(1)})
	si := p.AddSolVector([]float64{3, 4}, index.Partition{})
	ri := p.AddRHSVector([]float64{1, 1}, index.Partition{})
	p.AddOperator(sparse.Identity(2), si, ri)
	p.Finalize()

	norm2 := p.Dot(core.SOL, core.SOL) // 9 + 16
	norm := p.Sqrt(norm2)              // deferred sqrt
	half := p.Div(norm, p.Constant(2)) // deferred division
	fmt.Println(norm.Value(), half.Value())
	p.Drain()
	// Output:
	// 5 2.5
}
