package core

import (
	"math"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/region"
	"kdrsolvers/internal/taskrt"
)

// The solver-facing vector operations of Figure 6. Each logical operation
// becomes one task per component piece (an index launch over the
// canonical partition), placed on the piece's owning processor. Real
// planners perform the arithmetic; virtual planners record only costs.
//
// Tasks whose bodies are idempotent — they fully overwrite their outputs
// and read nothing they write (zero, copy, dot) — are marked Retryable so
// the runtime may re-execute them after a transient failure. Read-modify-
// write bodies (scal, axpy, xpay, reductions) are not: a partial first
// attempt would double-apply, so their failures escalate to the solver's
// checkpoint/restart layer instead.
//
// With SDC detection on (see sdc.go) every operation also maintains the
// per-piece checksum slots of the vectors it writes and verifies the
// checksums of the vectors it reads — the sums fold into the passes the
// kernels already make, so the checksummed forms read the same memory and
// add only O(pieces) slot traffic.

// pieceRef builds a region reference for one piece of one vector
// component.
func pieceRef(reg *region.Region, subset index.IntervalSet, priv region.Privilege) region.Ref {
	return region.Ref{Region: reg.ID(), Field: "v", Subset: subset, Priv: priv}
}

// eachPiece iterates the canonical pieces of the dst components.
func eachPiece(comps []component, fn func(ci, color int, subset index.IntervalSet, proc int)) {
	for ci, c := range comps {
		for color := 0; color < c.part.NumColors(); color++ {
			fn(ci, color, c.part.Piece(color), c.procs[color])
		}
	}
}

// Zero sets dst to the zero vector.
func (p *Planner) Zero(dst VecID) {
	p.mustBeFinalized()
	dv, dc := p.vecComps(dst)
	sdc, hooks := p.sdcOn(), p.faultHooks()
	var chk []float64
	if sdc {
		chk = p.chkData(dst)
	}
	slot := 0
	eachPiece(dc, func(ci, color int, subset index.IntervalSet, proc int) {
		mySlot := slot
		slot++
		var run func() float64
		if !p.virtual {
			d := dv.regs[ci].Field("v")
			run = func() float64 {
				subset.EachInterval(func(iv index.Interval) {
					for i := iv.Lo; i <= iv.Hi; i++ {
						d[i] = 0
					}
				})
				if sdc {
					chk[mySlot] = 0
				}
				return 0
			}
		}
		spec := taskrt.TaskSpec{
			Name: "zero", Proc: proc, Piece: mySlot + 1,
			Cost: p.mach.Blas1Cost(subset.Size()),
			Refs: []region.Ref{pieceRef(dv.regs[ci], subset, region.WriteDiscard)},
			Run:  run, Retryable: true,
		}
		if sdc {
			spec.Refs = append(spec.Refs, p.chkRef(dst, mySlot, region.WriteDiscard))
		}
		if hooks {
			spec.Corrupt = corruptHook(corruptTarget{dv.regs[ci].Field("v"), subset})
		}
		p.batch(spec)
	})
	p.flushBatch()
}

// Copy performs dst ← src componentwise.
func (p *Planner) Copy(dst, src VecID) {
	p.mustBeFinalized()
	if dst == src {
		return
	}
	dc, dv, sv := p.checkCompatible(dst, src)
	sdc, hooks := p.sdcOn(), p.faultHooks()
	var chkD, chkS []float64
	var mon *SDCMonitor
	var tol float64
	if sdc {
		chkD, chkS = p.chkData(dst), p.chkData(src)
		mon, tol = p.sdc.mon, p.sdc.tol
	}
	slot := 0
	eachPiece(dc, func(ci, color int, subset index.IntervalSet, proc int) {
		mySlot := slot
		slot++
		var run func() float64
		if !p.virtual {
			d, s := dv.regs[ci].Field("v"), sv.regs[ci].Field("v")
			run = func() float64 {
				if !sdc {
					subset.EachInterval(func(iv index.Interval) {
						copy(d[iv.Lo:iv.Hi+1], s[iv.Lo:iv.Hi+1])
					})
					return 0
				}
				var sum, abs float64
				subset.EachInterval(func(iv index.Interval) {
					for i := iv.Lo; i <= iv.Hi; i++ {
						v := s[i]
						d[i] = v
						sum += v
						abs += math.Abs(v)
					}
				})
				verifySlot(mon, tol, "copy", src, mySlot, chkS, sum, abs)
				chkD[mySlot] = sum
				return 0
			}
		}
		spec := taskrt.TaskSpec{
			Name: "copy", Proc: proc, Piece: mySlot + 1,
			Cost: p.mach.CopyCost(subset.Size()),
			Refs: []region.Ref{
				pieceRef(dv.regs[ci], subset, region.WriteDiscard),
				pieceRef(sv.regs[ci], subset, region.ReadOnly),
			},
			Run: run, Retryable: true,
		}
		if sdc {
			spec.Refs = append(spec.Refs,
				p.chkRef(dst, mySlot, region.WriteDiscard),
				p.chkRef(src, mySlot, region.ReadWrite))
		}
		if hooks {
			spec.Corrupt = corruptHook(corruptTarget{dv.regs[ci].Field("v"), subset})
		}
		p.batch(spec)
	})
	p.flushBatch()
}

// Scal performs dst ← α·dst.
func (p *Planner) Scal(dst VecID, alpha *Scalar) {
	p.mustBeFinalized()
	dv, dc := p.vecComps(dst)
	sdc, hooks := p.sdcOn(), p.faultHooks()
	var chkD []float64
	var mon *SDCMonitor
	var tol float64
	if sdc {
		chkD = p.chkData(dst)
		mon, tol = p.sdc.mon, p.sdc.tol
	}
	slot := 0
	eachPiece(dc, func(ci, color int, subset index.IntervalSet, proc int) {
		mySlot := slot
		slot++
		var run func() float64
		if !p.virtual {
			d := dv.regs[ci].Field("v")
			a := alpha.reg.Field("s")
			run = func() float64 {
				av := a[0]
				if !sdc {
					subset.EachInterval(func(iv index.Interval) {
						for i := iv.Lo; i <= iv.Hi; i++ {
							d[i] *= av
						}
					})
					return 0
				}
				var sum, abs float64
				subset.EachInterval(func(iv index.Interval) {
					for i := iv.Lo; i <= iv.Hi; i++ {
						v := d[i]
						sum += v
						abs += math.Abs(v)
						d[i] = av * v
					}
				})
				verifySlot(mon, tol, "scal", dst, mySlot, chkD, sum, abs)
				chkD[mySlot] = av * sum
				return 0
			}
		}
		spec := taskrt.TaskSpec{
			Name: "scal", Proc: proc, Piece: mySlot + 1,
			Cost: p.mach.ScalCost(subset.Size()),
			Refs: []region.Ref{
				pieceRef(dv.regs[ci], subset, region.ReadWrite),
				alpha.ref(region.ReadOnly),
			},
			Run: run,
		}
		if sdc {
			spec.Refs = append(spec.Refs, p.chkRef(dst, mySlot, region.ReadWrite))
		}
		if hooks {
			spec.Corrupt = corruptHook(corruptTarget{dv.regs[ci].Field("v"), subset})
		}
		p.batch(spec)
	})
	p.flushBatch()
}

// Axpy performs dst ← dst + α·src.
func (p *Planner) Axpy(dst VecID, alpha *Scalar, src VecID) {
	p.mustBeFinalized()
	dc, dv, sv := p.checkCompatible(dst, src)
	sdc, hooks := p.sdcOn(), p.faultHooks()
	var chkD, chkS []float64
	var mon *SDCMonitor
	var tol float64
	if sdc {
		chkD, chkS = p.chkData(dst), p.chkData(src)
		mon, tol = p.sdc.mon, p.sdc.tol
	}
	slot := 0
	eachPiece(dc, func(ci, color int, subset index.IntervalSet, proc int) {
		mySlot := slot
		slot++
		var run func() float64
		if !p.virtual {
			d, s := dv.regs[ci].Field("v"), sv.regs[ci].Field("v")
			a := alpha.reg.Field("s")
			run = func() float64 {
				av := a[0]
				if !sdc {
					subset.EachInterval(func(iv index.Interval) {
						for i := iv.Lo; i <= iv.Hi; i++ {
							d[i] += av * s[i]
						}
					})
					return 0
				}
				var sumD, absD, sumS, absS float64
				subset.EachInterval(func(iv index.Interval) {
					for i := iv.Lo; i <= iv.Hi; i++ {
						dv0, sv0 := d[i], s[i]
						sumD += dv0
						absD += math.Abs(dv0)
						sumS += sv0
						absS += math.Abs(sv0)
						d[i] = dv0 + av*sv0
					}
				})
				verifySlot(mon, tol, "axpy", dst, mySlot, chkD, sumD, absD)
				verifySlot(mon, tol, "axpy", src, mySlot, chkS, sumS, absS)
				chkD[mySlot] = sumD + av*sumS
				return 0
			}
		}
		spec := taskrt.TaskSpec{
			Name: "axpy", Proc: proc, Piece: mySlot + 1,
			Cost: p.mach.AxpyCost(subset.Size()),
			Refs: []region.Ref{
				pieceRef(dv.regs[ci], subset, region.ReadWrite),
				pieceRef(sv.regs[ci], subset, region.ReadOnly),
				alpha.ref(region.ReadOnly),
			},
			Run: run,
		}
		if sdc {
			spec.Refs = append(spec.Refs, p.chkRef(dst, mySlot, region.ReadWrite))
			if src != dst {
				spec.Refs = append(spec.Refs, p.chkRef(src, mySlot, region.ReadWrite))
			}
		}
		if hooks {
			spec.Corrupt = corruptHook(corruptTarget{dv.regs[ci].Field("v"), subset})
		}
		p.batch(spec)
	})
	p.flushBatch()
}

// Xpay performs dst ← src + α·dst.
func (p *Planner) Xpay(dst VecID, alpha *Scalar, src VecID) {
	p.mustBeFinalized()
	dc, dv, sv := p.checkCompatible(dst, src)
	sdc, hooks := p.sdcOn(), p.faultHooks()
	var chkD, chkS []float64
	var mon *SDCMonitor
	var tol float64
	if sdc {
		chkD, chkS = p.chkData(dst), p.chkData(src)
		mon, tol = p.sdc.mon, p.sdc.tol
	}
	slot := 0
	eachPiece(dc, func(ci, color int, subset index.IntervalSet, proc int) {
		mySlot := slot
		slot++
		var run func() float64
		if !p.virtual {
			d, s := dv.regs[ci].Field("v"), sv.regs[ci].Field("v")
			a := alpha.reg.Field("s")
			run = func() float64 {
				av := a[0]
				if !sdc {
					subset.EachInterval(func(iv index.Interval) {
						for i := iv.Lo; i <= iv.Hi; i++ {
							d[i] = s[i] + av*d[i]
						}
					})
					return 0
				}
				var sumD, absD, sumS, absS float64
				subset.EachInterval(func(iv index.Interval) {
					for i := iv.Lo; i <= iv.Hi; i++ {
						dv0, sv0 := d[i], s[i]
						sumD += dv0
						absD += math.Abs(dv0)
						sumS += sv0
						absS += math.Abs(sv0)
						d[i] = sv0 + av*dv0
					}
				})
				verifySlot(mon, tol, "xpay", dst, mySlot, chkD, sumD, absD)
				verifySlot(mon, tol, "xpay", src, mySlot, chkS, sumS, absS)
				chkD[mySlot] = sumS + av*sumD
				return 0
			}
		}
		spec := taskrt.TaskSpec{
			Name: "xpay", Proc: proc, Piece: mySlot + 1,
			Cost: p.mach.AxpyCost(subset.Size()),
			Refs: []region.Ref{
				pieceRef(dv.regs[ci], subset, region.ReadWrite),
				pieceRef(sv.regs[ci], subset, region.ReadOnly),
				alpha.ref(region.ReadOnly),
			},
			Run: run,
		}
		if sdc {
			spec.Refs = append(spec.Refs, p.chkRef(dst, mySlot, region.ReadWrite))
			if src != dst {
				spec.Refs = append(spec.Refs, p.chkRef(src, mySlot, region.ReadWrite))
			}
		}
		if hooks {
			spec.Corrupt = corruptHook(corruptTarget{dv.regs[ci].Field("v"), subset})
		}
		p.batch(spec)
	})
	p.flushBatch()
}

// Dot computes the inner product v·w as a deferred scalar. Per-piece
// partial dots run on the piece owners; a reduction task on processor 0
// then combines the partials in deterministic (color) order, paying the
// machine's allreduce cost. This is the global synchronization point of
// every Krylov iteration.
func (p *Planner) Dot(v, w VecID) *Scalar {
	p.mustBeFinalized()
	vc, vv, wv := p.checkCompatible(v, w)
	sdc, hooks := p.sdcOn(), p.faultHooks()
	var chkV, chkW []float64
	var mon *SDCMonitor
	var tol float64
	if sdc {
		chkV, chkW = p.chkData(v), p.chkData(w)
		mon, tol = p.sdc.mon, p.sdc.tol
	}

	// Count total pieces for the scratch region.
	total := 0
	for _, c := range vc {
		total += c.part.NumColors()
	}
	var scratch *region.Region
	if p.virtual {
		scratch = region.NewVirtual("dotscratch", index.NewSpace("P", int64(total)))
	} else {
		scratch = region.New("dotscratch", index.NewSpace("P", int64(total)), "s")
	}

	slot := 0
	eachPiece(vc, func(ci, color int, subset index.IntervalSet, proc int) {
		mySlot := slot
		slot++
		var run func() float64
		if !p.virtual {
			a, b := vv.regs[ci].Field("v"), wv.regs[ci].Field("v")
			out := scratch.Field("s")
			run = func() float64 {
				var sum float64
				if !sdc {
					subset.EachInterval(func(iv index.Interval) {
						for i := iv.Lo; i <= iv.Hi; i++ {
							sum += a[i] * b[i]
						}
					})
					out[mySlot] = sum
					return sum
				}
				var sumV, absV, sumW, absW float64
				subset.EachInterval(func(iv index.Interval) {
					for i := iv.Lo; i <= iv.Hi; i++ {
						x, y := a[i], b[i]
						sum += x * y
						sumV += x
						absV += math.Abs(x)
						sumW += y
						absW += math.Abs(y)
					}
				})
				verifySlot(mon, tol, "dot.partial", v, mySlot, chkV, sumV, absV)
				if w != v {
					verifySlot(mon, tol, "dot.partial", w, mySlot, chkW, sumW, absW)
				}
				out[mySlot] = sum
				return sum
			}
		}
		spec := taskrt.TaskSpec{
			Name: "dot.partial", Proc: proc, Piece: mySlot + 1,
			Cost: p.mach.DotCost(subset.Size()),
			Refs: []region.Ref{
				pieceRef(vv.regs[ci], subset, region.ReadOnly),
				pieceRef(wv.regs[ci], subset, region.ReadOnly),
				{Region: scratch.ID(), Field: "s", Subset: index.Span(int64(mySlot), int64(mySlot)), Priv: region.WriteDiscard},
			},
			Run: run, Retryable: true,
		}
		if sdc {
			spec.Refs = append(spec.Refs, p.chkRef(v, mySlot, region.ReadWrite))
			if w != v {
				spec.Refs = append(spec.Refs, p.chkRef(w, mySlot, region.ReadWrite))
			}
		}
		if hooks {
			spec.Corrupt = corruptHook(corruptTarget{scratch.Field("s"), index.Span(int64(mySlot), int64(mySlot))})
		}
		p.batch(spec)
	})
	p.flushBatch()

	out := p.newScalar("dot", 0)
	var run func() float64
	if !p.virtual {
		in := scratch.Field("s")
		dst := out.reg.Field("s")
		run = func() float64 {
			var sum float64
			for _, v := range in {
				sum += v
			}
			dst[0] = sum
			return sum
		}
	}
	out.fut = p.sess.Launch(taskrt.TaskSpec{
		Name: "dot.reduce", Proc: 0,
		// The reduce models the MPI_Allreduce tree the real machine pays.
		Cost: p.mach.AllReduceTime(),
		Refs: []region.Ref{
			{Region: scratch.ID(), Field: "s", Subset: index.Span(0, int64(total)-1), Priv: region.ReadOnly},
			out.ref(region.WriteDiscard),
		},
		Run: run, Retryable: true,
	})
	return out
}

// Norm2 returns the Euclidean norm of v as a deferred scalar.
func (p *Planner) Norm2(v VecID) *Scalar {
	return p.Sqrt(p.Dot(v, v))
}

// AxpyConst and friends are conveniences over constant scalars.

// AxpyConst performs dst ← dst + α·src for a compile-time α.
func (p *Planner) AxpyConst(dst VecID, alpha float64, src VecID) {
	p.Axpy(dst, p.Constant(alpha), src)
}

// ScalConst performs dst ← α·dst for a compile-time α.
func (p *Planner) ScalConst(dst VecID, alpha float64) {
	p.Scal(dst, p.Constant(alpha))
}

// vectorCostElems reports the total element count of a shape, used by
// benchmarks for sanity checks.
func (p *Planner) vectorCostElems(shape Shape) int64 {
	var n int64
	for _, c := range p.comps(shape) {
		n += c.space.Size()
	}
	return n
}

// TotalUnknowns returns the size of the total domain space D_total.
func (p *Planner) TotalUnknowns() int64 { return p.vectorCostElems(SolShape) }
