package core

import (
	"math"
	"math/rand"
	"testing"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sim"
	"kdrsolvers/internal/sparse"
)

// newTestPlanner builds a real-mode planner for Ax = b with the given
// number of vector pieces.
func newTestPlanner(t *testing.T, a sparse.Matrix, x, b []float64, pieces int) *Planner {
	t.Helper()
	p := NewPlanner(Config{Machine: machine.Lassen(2)})
	n := int64(len(x))
	si := p.AddSolVector(x, index.EqualPartition(index.NewSpace("D", n), pieces))
	ri := p.AddRHSVector(b, index.EqualPartition(index.NewSpace("R", n), pieces))
	p.AddOperator(a, si, ri)
	p.Finalize()
	return p
}

func randVec(r *rand.Rand, n int64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func vecsClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestMatmulMatchesSpMV(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := sparse.Laplacian2D(6, 6)
	x := randVec(r, 36)
	want := make([]float64, 36)
	sparse.SpMV(a, want, x)

	for _, pieces := range []int{1, 2, 3, 7} {
		xc := make([]float64, 36)
		copy(xc, x)
		p := newTestPlanner(t, a, xc, make([]float64, 36), pieces)
		y := p.AllocateWorkspace(RhsShape)
		p.Matmul(y, SOL)
		p.Drain()
		if !vecsClose(p.VecData(y, 0), want, 1e-12) {
			t.Errorf("pieces=%d: Matmul != SpMV", pieces)
		}
	}
}

func TestMatmulAllFormats(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	csr := sparse.Laplacian2D(4, 4)
	x := randVec(r, 16)
	want := make([]float64, 16)
	sparse.SpMV(csr, want, x)
	for _, f := range append(append([]string(nil), sparse.Formats...), "Auto") {
		m := sparse.Convert(csr, f)
		xc := make([]float64, 16)
		copy(xc, x)
		p := newTestPlanner(t, m, xc, make([]float64, 16), 3)
		y := p.AllocateWorkspace(RhsShape)
		p.Matmul(y, SOL)
		p.Drain()
		if !vecsClose(p.VecData(y, 0), want, 1e-12) {
			t.Errorf("format %s: planner Matmul wrong", f)
		}
	}
}

func TestMatmulMatrixFree(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	op := sparse.NewStencilOperator(sparse.Stencil2D5, index.NewGrid(5, 5))
	ref := sparse.Laplacian2D(5, 5)
	x := randVec(r, 25)
	want := make([]float64, 25)
	sparse.SpMV(ref, want, x)
	xc := make([]float64, 25)
	copy(xc, x)
	p := newTestPlanner(t, op, xc, make([]float64, 25), 4)
	y := p.AllocateWorkspace(RhsShape)
	p.Matmul(y, SOL)
	p.Drain()
	if !vecsClose(p.VecData(y, 0), want, 1e-12) {
		t.Error("matrix-free Matmul wrong")
	}
}

func TestMultiOperatorEqualsAssembled(t *testing.T) {
	// The Figure 9 formulation: a 2D Laplacian on a grid split into two
	// halves D1, D2 with four block operators must equal the
	// single-operator system.
	r := rand.New(rand.NewSource(4))
	const nx, ny = 6, 4
	n := int64(nx * ny)
	full := sparse.Laplacian2D(nx, ny)
	x := randVec(r, n)
	want := make([]float64, n)
	sparse.SpMV(full, want, x)

	// Split rows/cols at the midpoint (row-block halves of the grid).
	half := n / 2
	var blocks [2][2][]sparse.Coord
	for _, c := range sparse.CoordsFromCSR(full) {
		bi, bj := c.Row/half, c.Col/half
		blocks[bi][bj] = append(blocks[bi][bj],
			sparse.Coord{Row: c.Row % half, Col: c.Col % half, Val: c.Val})
	}

	p := NewPlanner(Config{Machine: machine.Lassen(2)})
	x1, x2 := make([]float64, half), make([]float64, half)
	copy(x1, x[:half])
	copy(x2, x[half:])
	d1 := p.AddSolVector(x1, index.EqualPartition(index.NewSpace("D1", half), 2))
	d2 := p.AddSolVector(x2, index.EqualPartition(index.NewSpace("D2", half), 2))
	r1 := p.AddRHSVector(make([]float64, half), index.EqualPartition(index.NewSpace("R1", half), 2))
	r2 := p.AddRHSVector(make([]float64, half), index.EqualPartition(index.NewSpace("R2", half), 2))
	sols := []int{d1, d2}
	rhss := []int{r1, r2}
	for bi := 0; bi < 2; bi++ {
		for bj := 0; bj < 2; bj++ {
			m := sparse.CSRFromCoords(half, half, blocks[bi][bj])
			p.AddOperator(m, sols[bj], rhss[bi])
		}
	}
	p.Finalize()
	if p.NumOperators() != 4 || p.NumSolComponents() != 2 {
		t.Fatal("system shape wrong")
	}
	if !p.IsSquare() {
		t.Fatal("system should be square")
	}
	y := p.AllocateWorkspace(RhsShape)
	p.Matmul(y, SOL)
	p.Drain()
	got := append(append([]float64{}, p.VecData(y, 0)...), p.VecData(y, 1)...)
	if !vecsClose(got, want, 1e-12) {
		t.Error("multi-operator product != assembled product")
	}
}

func TestAliasedOperatorDoubles(t *testing.T) {
	// Section 4.2: adding the same matrix twice must double the product
	// without duplicating storage.
	r := rand.New(rand.NewSource(5))
	a := sparse.Laplacian1D(12)
	x := randVec(r, 12)
	want := make([]float64, 12)
	sparse.SpMV(a, want, x)
	for i := range want {
		want[i] *= 2
	}
	p := NewPlanner(Config{Machine: machine.Lassen(1)})
	si := p.AddSolVector(x, index.EqualPartition(index.NewSpace("D", 12), 3))
	ri := p.AddRHSVector(make([]float64, 12), index.EqualPartition(index.NewSpace("R", 12), 3))
	p.AddOperator(a, si, ri)
	p.AddOperator(a, si, ri) // aliased: same physical matrix
	p.Finalize()
	y := p.AllocateWorkspace(RhsShape)
	p.Matmul(y, SOL)
	p.Drain()
	if !vecsClose(p.VecData(y, 0), want, 1e-12) {
		t.Error("aliased operators should sum")
	}
}

func TestMatmulTMatchesTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	// Non-symmetric rectangular-free test: use an asymmetric square matrix.
	coords := []sparse.Coord{}
	for i := int64(0); i < 10; i++ {
		coords = append(coords, sparse.Coord{Row: i, Col: i, Val: 2})
		if i+1 < 10 {
			coords = append(coords, sparse.Coord{Row: i, Col: i + 1, Val: -3})
		}
	}
	a := sparse.CSRFromCoords(10, 10, coords)
	x := randVec(r, 10)
	want := make([]float64, 10)
	sparse.SpMVT(a, want, x)

	xc := make([]float64, 10)
	p := newTestPlanner(t, a, xc, x, 2)
	y := p.AllocateWorkspace(SolShape)
	p.MatmulT(y, RHS)
	p.Drain()
	if !vecsClose(p.VecData(y, 0), want, 1e-12) {
		t.Error("MatmulT != transpose SpMV")
	}
}

func TestVectorOps(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := sparse.Laplacian1D(20)
	x := randVec(r, 20)
	b := randVec(r, 20)
	xs := append([]float64{}, x...)
	p := newTestPlanner(t, a, xs, b, 3)

	w := p.AllocateWorkspace(SolShape)
	p.Copy(w, SOL)
	p.Axpy(w, p.Constant(2), RHS)  // w = x + 2b
	p.Xpay(w, p.Constant(-1), SOL) // w = x - (x + 2b) = -2b
	p.Scal(w, p.Constant(-0.5))    // w = b
	p.Drain()
	if !vecsClose(p.VecData(w, 0), b, 1e-12) {
		t.Error("vector op chain wrong")
	}

	p.Zero(w)
	p.Drain()
	if !vecsClose(p.VecData(w, 0), make([]float64, 20), 0) {
		t.Error("Zero failed")
	}

	// Copy to itself is a no-op.
	p.Copy(w, w)
	p.Drain()
}

func TestDotAndScalars(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := sparse.Laplacian1D(15)
	x := randVec(r, 15)
	b := randVec(r, 15)
	var want float64
	for i := range x {
		want += x[i] * b[i]
	}
	xs := append([]float64{}, x...)
	p := newTestPlanner(t, a, xs, b, 4)
	d := p.Dot(SOL, RHS)
	if math.Abs(d.Value()-want) > 1e-12 {
		t.Errorf("Dot = %g, want %g", d.Value(), want)
	}
	// Scalar expression tree.
	q := p.Div(p.Mul(d, p.Constant(3)), p.Constant(2))
	if math.Abs(q.Value()-1.5*want) > 1e-12 {
		t.Errorf("scalar expr = %g", q.Value())
	}
	if v := p.Neg(d).Value(); math.Abs(v+want) > 1e-12 {
		t.Errorf("Neg = %g", v)
	}
	if v := p.Sub(d, d).Value(); v != 0 {
		t.Errorf("Sub = %g", v)
	}
	nrm := p.Norm2(RHS)
	var bb float64
	for _, v := range b {
		bb += v * v
	}
	if math.Abs(nrm.Value()-math.Sqrt(bb)) > 1e-12 {
		t.Errorf("Norm2 = %g", nrm.Value())
	}
	p.Drain()
}

func TestDotDeterminism(t *testing.T) {
	// Partial-dot reduction must be bitwise deterministic across runs.
	r := rand.New(rand.NewSource(9))
	x := randVec(r, 501)
	var first float64
	for trial := 0; trial < 5; trial++ {
		a := sparse.Laplacian1D(501)
		xc := append([]float64{}, x...)
		p := newTestPlanner(t, a, xc, make([]float64, 501), 7)
		v := p.Dot(SOL, SOL).Value()
		p.Drain()
		if trial == 0 {
			first = v
		} else if v != first {
			t.Fatalf("dot changed across runs: %g vs %g", v, first)
		}
	}
}

func TestPSolveJacobi(t *testing.T) {
	// A diagonal preconditioner: PSolve must scale componentwise.
	r := rand.New(rand.NewSource(10))
	a := sparse.Laplacian1D(8)
	b := randVec(r, 8)
	p := NewPlanner(Config{Machine: machine.Lassen(1)})
	si := p.AddSolVector(make([]float64, 8), index.EqualPartition(index.NewSpace("D", 8), 2))
	ri := p.AddRHSVector(b, index.EqualPartition(index.NewSpace("R", 8), 2))
	p.AddOperator(a, si, ri)
	// Jacobi: P = diag(A)^-1 = diag(1/2).
	diag := make([]sparse.Coord, 8)
	for i := range diag {
		diag[i] = sparse.Coord{Row: int64(i), Col: int64(i), Val: 0.5}
	}
	p.AddPreconditioner(sparse.CSRFromCoords(8, 8, diag), si, ri)
	p.Finalize()
	if !p.HasPreconditioner() {
		t.Fatal("HasPreconditioner = false")
	}
	z := p.AllocateWorkspace(SolShape)
	p.PSolve(z, RHS)
	p.Drain()
	want := make([]float64, 8)
	for i := range want {
		want[i] = b[i] / 2
	}
	if !vecsClose(p.VecData(z, 0), want, 1e-12) {
		t.Error("PSolve wrong")
	}
}

func TestPSolveWithoutPreconditionerPanics(t *testing.T) {
	p := newTestPlanner(t, sparse.Laplacian1D(4), make([]float64, 4), make([]float64, 4), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.PSolve(SOL, RHS)
}

func TestVirtualPlannerGraph(t *testing.T) {
	// Virtual planners record the same graph structure without storage.
	m := machine.Lassen(4)
	op := sparse.NewStencilOperator(sparse.Stencil2D5, index.NewGrid(1<<12, 1<<12))
	n := op.Domain().Size()
	p := NewPlanner(Config{Machine: m, Virtual: true})
	si := p.AddSolVectorVirtual(n, index.EqualPartition(index.NewSpace("D", n), 16))
	ri := p.AddRHSVectorVirtual(n, index.EqualPartition(index.NewSpace("R", n), 16))
	p.AddOperator(op, si, ri)
	p.Finalize()
	y := p.AllocateWorkspace(RhsShape)
	p.Matmul(y, SOL)
	d := p.Dot(y, y)
	_ = d.Value() // virtual scalars resolve to zero
	p.Drain()

	g := p.Runtime().Graph()
	if err := sim.Validate(g); err != nil {
		t.Fatal(err)
	}
	// 16 matmul (first-writer tasks zero inline) + 16 partial dots +
	// 1 reduce = 33 tasks.
	if g.Len() != 33 {
		t.Fatalf("graph has %d tasks, want 33", g.Len())
	}
	res := sim.Simulate(g, m, sim.Options{TaskOverhead: 15e-6})
	if res.Makespan <= 0 {
		t.Fatal("makespan must be positive")
	}
	if res.CommBytes == 0 {
		t.Fatal("a 16-piece stencil matmul must exchange halos across nodes")
	}
	if p.TotalUnknowns() != n {
		t.Fatalf("TotalUnknowns = %d", p.TotalUnknowns())
	}
}

func TestGraphHasScalarDataflow(t *testing.T) {
	// The axpy tasks must depend (transitively) on the dot.reduce task
	// through the scalar region, so the simulator charges the reduction
	// barrier.
	a := sparse.Laplacian1D(16)
	p := newTestPlanner(t, a, make([]float64, 16), make([]float64, 16), 2)
	d := p.Dot(SOL, RHS)
	p.Axpy(SOL, d, RHS)
	p.Drain()
	g := p.Runtime().Graph()
	// Find the reduce node and an axpy node.
	reduce, axpy := int64(-1), int64(-1)
	for _, n := range g.Nodes {
		switch n.Name {
		case "dot.reduce":
			reduce = n.ID
		case "axpy":
			axpy = n.ID
		}
	}
	if reduce < 0 || axpy < 0 {
		t.Fatal("expected dot.reduce and axpy tasks")
	}
	found := false
	for _, dep := range g.Nodes[axpy].Deps {
		if dep == reduce {
			found = true
		}
	}
	if !found {
		t.Fatal("axpy does not depend on dot.reduce — scalar dataflow missing from graph")
	}
}

func TestPlannerValidation(t *testing.T) {
	m := machine.Lassen(1)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("finalize empty", func() {
		NewPlanner(Config{Machine: m}).Finalize()
	})
	mustPanic("op before vectors", func() {
		p := NewPlanner(Config{Machine: m})
		p.AddOperator(sparse.Laplacian1D(4), 0, 0)
	})
	mustPanic("operator shape", func() {
		p := NewPlanner(Config{Machine: m})
		si := p.AddSolVector(make([]float64, 4), index.Partition{})
		ri := p.AddRHSVector(make([]float64, 4), index.Partition{})
		p.AddOperator(sparse.Laplacian1D(5), si, ri)
	})
	mustPanic("use before finalize", func() {
		p := NewPlanner(Config{Machine: m})
		p.AddSolVector(make([]float64, 4), index.Partition{})
		p.Zero(SOL)
	})
	mustPanic("double finalize", func() {
		p := NewPlanner(Config{Machine: m})
		p.AddSolVector(make([]float64, 4), index.Partition{})
		p.AddRHSVector(make([]float64, 4), index.Partition{})
		p.AddOperator(sparse.Laplacian1D(4), 0, 0)
		p.Finalize()
		p.Finalize()
	})
	mustPanic("aliased partition", func() {
		p := NewPlanner(Config{Machine: m})
		sp := index.NewSpace("D", 4)
		bad := index.NewPartition(sp, []index.IntervalSet{index.Span(0, 2), index.Span(2, 3)})
		p.AddSolVector(make([]float64, 4), bad)
	})
	mustPanic("virtual add on real planner", func() {
		p := NewPlanner(Config{Machine: m})
		p.AddSolVectorVirtual(4, index.Partition{})
	})
}

func TestNotSquare(t *testing.T) {
	p := NewPlanner(Config{Machine: machine.Lassen(1)})
	p.AddSolVector(make([]float64, 4), index.Partition{})
	p.AddRHSVector(make([]float64, 6), index.Partition{})
	coords := []sparse.Coord{{Row: 5, Col: 3, Val: 1}}
	p.AddOperator(sparse.CSRFromCoords(6, 4, coords), 0, 0)
	p.Finalize()
	if p.IsSquare() {
		t.Fatal("4x6 system reported square")
	}
}
