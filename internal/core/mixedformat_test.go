package core

import (
	"math/rand"
	"testing"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sparse"
)

// The paper's Section 7 closes with "multi-operator systems allow
// KDRSolvers to process pieces of a matrix stored in multiple formats
// within a single linear system". These tests exercise exactly that: one
// logical operator assembled from components in different storage
// formats, including a matrix-free one.

// splitByBand splits a CSR matrix into its tridiagonal band and the
// remainder, as coordinates.
func splitByBand(a *sparse.CSR) (band, rest []sparse.Coord) {
	for _, c := range sparse.CoordsFromCSR(a) {
		d := c.Col - c.Row
		if d >= -1 && d <= 1 {
			band = append(band, c)
		} else {
			rest = append(rest, c)
		}
	}
	return band, rest
}

func TestMixedFormatOperatorSum(t *testing.T) {
	// A = DIA(tridiagonal part) + COO(remainder): two operators in two
	// formats on the same component pair must reproduce A·x.
	r := rand.New(rand.NewSource(11))
	full := sparse.Laplacian2D(6, 5)
	n := full.Domain().Size()
	band, rest := splitByBand(full)
	diaPart := sparse.DIAFromCSR(sparse.CSRFromCoords(n, n, band))
	cooPart := sparse.COOFromCoords(n, n, rest)

	x := randVec(r, n)
	want := make([]float64, n)
	sparse.SpMV(full, want, x)

	p := NewPlanner(Config{Machine: machine.Lassen(2)})
	xc := append([]float64{}, x...)
	si := p.AddSolVector(xc, index.EqualPartition(index.NewSpace("D", n), 3))
	ri := p.AddRHSVector(make([]float64, n), index.EqualPartition(index.NewSpace("R", n), 3))
	p.AddOperator(diaPart, si, ri)
	p.AddOperator(cooPart, si, ri)
	p.Finalize()
	y := p.AllocateWorkspace(RhsShape)
	p.Matmul(y, SOL)
	p.Drain()
	if !vecsClose(p.VecData(y, 0), want, 1e-12) {
		t.Fatal("mixed DIA+COO operator != assembled operator")
	}
}

func TestMixedFormatWithMatrixFree(t *testing.T) {
	// A logical operator = matrix-free stencil + a stored low-rank-ish
	// correction in CSR: the planner composes them transparently.
	r := rand.New(rand.NewSource(12))
	grid := index.NewGrid(4, 8)
	stencil := sparse.NewStencilOperator(sparse.Stencil2D5, grid)
	n := grid.Size()
	var corr []sparse.Coord
	for i := int64(0); i < n; i += 5 {
		corr = append(corr, sparse.Coord{Row: i, Col: (i + 3) % n, Val: 0.25})
	}
	correction := sparse.CSRFromCoords(n, n, corr)

	x := randVec(r, n)
	want := make([]float64, n)
	sparse.SpMV(stencil, want, x)
	tmp := make([]float64, n)
	sparse.SpMV(correction, tmp, x)
	for i := range want {
		want[i] += tmp[i]
	}

	p := NewPlanner(Config{Machine: machine.Lassen(2)})
	xc := append([]float64{}, x...)
	si := p.AddSolVector(xc, index.EqualPartition(index.NewSpace("D", n), 4))
	ri := p.AddRHSVector(make([]float64, n), index.EqualPartition(index.NewSpace("R", n), 4))
	p.AddOperator(stencil, si, ri)
	p.AddOperator(correction, si, ri)
	p.Finalize()
	y := p.AllocateWorkspace(RhsShape)
	p.Matmul(y, SOL)
	p.Drain()
	if !vecsClose(p.VecData(y, 0), want, 1e-12) {
		t.Fatal("matrix-free + stored correction != sum")
	}
}

func TestMixedFormatEveryPair(t *testing.T) {
	// Every pair of formats can share a component pair.
	full := sparse.Laplacian2D(4, 4)
	n := full.Domain().Size()
	band, rest := splitByBand(full)
	bandCSR := sparse.CSRFromCoords(n, n, band)
	restCSR := sparse.CSRFromCoords(n, n, rest)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	want := make([]float64, n)
	sparse.SpMV(full, want, x)

	for _, f1 := range append(append([]string(nil), sparse.Formats...), "Auto") {
		for _, f2 := range []string{"COO", "ELL", "Dense", "Auto"} {
			p := NewPlanner(Config{Machine: machine.Lassen(1)})
			xc := append([]float64{}, x...)
			si := p.AddSolVector(xc, index.EqualPartition(index.NewSpace("D", n), 2))
			ri := p.AddRHSVector(make([]float64, n), index.EqualPartition(index.NewSpace("R", n), 2))
			p.AddOperator(sparse.Convert(bandCSR, f1), si, ri)
			p.AddOperator(sparse.Convert(restCSR, f2), si, ri)
			p.Finalize()
			y := p.AllocateWorkspace(RhsShape)
			p.Matmul(y, SOL)
			p.Drain()
			if !vecsClose(p.VecData(y, 0), want, 1e-12) {
				t.Fatalf("%s + %s mixed product wrong", f1, f2)
			}
		}
	}
}
