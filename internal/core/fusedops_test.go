package core

import (
	"sync"
	"testing"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sparse"
)

// fusedTestPlanner builds a real single-operator planner over a 2D
// stencil with deterministic non-trivial vector contents and two
// workspaces to update.
func fusedTestPlanner(n int64, pieces int) (p *Planner, a, b VecID) {
	sol := make([]float64, n)
	rhs := make([]float64, n)
	for i := range sol {
		sol[i] = float64(i%13)/7 - 0.5
		rhs[i] = float64((i*11)%17)/5 + 0.25
	}
	p = NewPlanner(Config{Machine: machine.Lassen(2)})
	si := p.AddSolVector(sol, index.EqualPartition(index.NewSpace("D", n), pieces))
	ri := p.AddRHSVector(rhs, index.EqualPartition(index.NewSpace("R", n), pieces))
	p.AddOperator(sparse.Laplacian2D(n/8, 8), si, ri)
	p.Finalize()
	a = p.AllocateWorkspace(SolShape)
	b = p.AllocateWorkspace(RhsShape)
	p.Copy(a, SOL)
	p.Copy(b, RHS)
	return p, a, b
}

// bitwiseEqual reports whether two slices are identical bit for bit
// (no tolerance: fused sweeps must reproduce the unfused arithmetic
// exactly).
func bitwiseEqual(x, y []float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

func TestFusedUpdateBitwiseMatchesUnfused(t *testing.T) {
	// The same chained update sequence — axpy into a, then an xpay on a
	// reading the axpy's result, then an independent axpy into b — run
	// as separate launches and as one fused sweep.
	const n, pieces = 64, 4
	pu, au, bu := fusedTestPlanner(n, pieces)
	alpha, gamma := pu.Constant(0.75), pu.Constant(-1.25)
	pu.Axpy(au, alpha, RHS)
	pu.Xpay(au, gamma, SOL)
	pu.Axpy(bu, pu.Neg(alpha), SOL)
	pu.Drain()

	pf, af, bf := fusedTestPlanner(n, pieces)
	alpha, gamma = pf.Constant(0.75), pf.Constant(-1.25)
	pf.FusedUpdate(
		VecUpdate{Kind: UpdAxpy, Dst: af, Alpha: alpha, Src: RHS},
		VecUpdate{Kind: UpdXpay, Dst: af, Alpha: gamma, Src: SOL},
		VecUpdate{Kind: UpdAxpy, Dst: bf, Alpha: alpha, Neg: true, Src: SOL},
	)
	pf.Drain()

	if !bitwiseEqual(pu.VecData(au, 0), pf.VecData(af, 0)) {
		t.Error("fused chained axpy/xpay differs bitwise from unfused launches")
	}
	if !bitwiseEqual(pu.VecData(bu, 0), pf.VecData(bf, 0)) {
		t.Error("fused negated axpy differs bitwise from Axpy(Neg(alpha))")
	}
}

func TestDotBatchMatchesIndividualDots(t *testing.T) {
	const n, pieces = 96, 3
	pu, au, bu := fusedTestPlanner(n, pieces)
	want := []float64{
		pu.Dot(au, bu).Value(),
		pu.Dot(au, au).Value(),
		pu.Dot(bu, RHS).Value(),
	}
	pu.Drain()

	pf, af, bf := fusedTestPlanner(n, pieces)
	got := pf.DotBatch(DotPair{af, bf}, DotPair{af, af}, DotPair{bf, RHS})
	pf.Drain()
	for i, w := range want {
		g := got[i].Value()
		// Partials accumulate per piece and combine in piece order on
		// both paths, so the batch is exact here; the contract only
		// promises 1e-10 relative for reordered reductions.
		if relDiff(g, w) > 1e-10 {
			t.Errorf("dot %d: batch %g vs individual %g", i, g, w)
		}
		if err := got[i].Err(); err != nil {
			t.Errorf("dot %d: unexpected error %v", i, err)
		}
	}
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := 1.0
	if b > m || -b > m {
		m = b
		if m < 0 {
			m = -m
		}
	}
	return d / m
}

func TestAxpyDotAndXpayDotMatchUnfused(t *testing.T) {
	const n, pieces = 64, 4
	pu, au, bu := fusedTestPlanner(n, pieces)
	alpha := pu.Constant(-0.375)
	pu.Axpy(au, alpha, RHS)
	wantAxpy := pu.Dot(au, au).Value()
	pu.Xpay(bu, alpha, SOL)
	wantXpay := pu.Dot(bu, au).Value()
	pu.Drain()

	pf, af, bf := fusedTestPlanner(n, pieces)
	alpha = pf.Constant(-0.375)
	gotAxpy := pf.AxpyDot(af, alpha, RHS, af, af).Value()
	gotXpay := pf.XpayDot(bf, alpha, SOL, bf, af).Value()
	pf.Drain()

	if !bitwiseEqual(pu.VecData(au, 0), pf.VecData(af, 0)) ||
		!bitwiseEqual(pu.VecData(bu, 0), pf.VecData(bf, 0)) {
		t.Error("AxpyDot/XpayDot updates differ bitwise from unfused launches")
	}
	if relDiff(gotAxpy, wantAxpy) > 1e-10 || relDiff(gotXpay, wantXpay) > 1e-10 {
		t.Errorf("fused dots differ: axpy %g vs %g, xpay %g vs %g",
			gotAxpy, wantAxpy, gotXpay, wantXpay)
	}
}

func TestFusedVirtualRealGraphEquivalence(t *testing.T) {
	// The virtual-mode contract extends to fused kernels: identical
	// graphs with and without real storage.
	real, virt := buildBoth(t, func(p *Planner) {
		setupSystem(p, 64, 4)
		w := p.AllocateWorkspace(SolShape)
		alpha := p.Constant(2)
		p.FusedUpdate(
			VecUpdate{Kind: UpdAxpy, Dst: w, Alpha: alpha, Src: RHS},
			VecUpdate{Kind: UpdXpay, Dst: w, Alpha: alpha, Neg: true, Src: SOL},
		)
		d := p.DotBatch(DotPair{w, w}, DotPair{w, RHS})
		_ = p.AxpyDot(w, d[0], SOL, w, RHS)
	})
	if !graphsEqual(t, real, virt) {
		t.Fatal("fused-op graphs differ between real and virtual planners")
	}
}

func TestFusedSweepLaunchCounts(t *testing.T) {
	// The headline accounting: k updates and d dots over P pieces launch
	// P + 1 tasks fused (P sweeps + one combine), versus k·P + d·(P+1)
	// unfused.
	const pieces = 4
	p, a, b := fusedTestPlanner(64, pieces)
	p.Drain()
	before := p.Runtime().Stats().Launched
	p.FusedSweep([]VecUpdate{
		{Kind: UpdAxpy, Dst: a, Alpha: p.Constant(1), Src: RHS},
		{Kind: UpdAxpy, Dst: b, Alpha: p.Constant(2), Src: SOL},
	}, []DotPair{{a, a}, {a, b}, {b, b}})
	p.Drain()
	if got := p.Runtime().Stats().Launched - before; got != pieces+1 {
		t.Fatalf("fused sweep launched %d tasks, want %d", got, pieces+1)
	}
}

func TestFusedSweepValidation(t *testing.T) {
	p, a, _ := fusedTestPlanner(32, 2)
	for name, fn := range map[string]func(){
		"empty":     func() { p.FusedSweep(nil, nil) },
		"nil alpha": func() { p.FusedUpdate(VecUpdate{Kind: UpdAxpy, Dst: a, Src: RHS}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	p.Drain()
}

func TestConcurrentDotBatchLaunches(t *testing.T) {
	// Many DotBatch rounds launched back to back without draining: the
	// partial tasks of round i+1 must be correctly ordered against round
	// i's combine through the shared vectors, and the shared-future
	// scalars must be race-free under the -race CI run. Several planners
	// run concurrently to exercise cross-runtime isolation too.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, a, b := fusedTestPlanner(64, 4)
			var batches [][]*Scalar
			for i := 0; i < 20; i++ {
				d := p.DotBatch(DotPair{a, b}, DotPair{b, b})
				// Interleave an update so later batches see new values.
				p.FusedUpdate(VecUpdate{Kind: UpdAxpy, Dst: a, Alpha: d[0], Src: b})
				batches = append(batches, d)
			}
			p.Drain()
			prev := batches[0][0].Value()
			changed := false
			for _, d := range batches[1:] {
				if v := d[0].Value(); v != prev {
					changed = true
					prev = v
				}
			}
			if !changed {
				t.Error("interleaved updates never changed the batched dots")
			}
		}()
	}
	wg.Wait()
}
