package core

import (
	"math"
	"testing"

	"kdrsolvers/internal/fault"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sparse"
)

// sdcTestPlanner builds a real single-operator planner over a 2D stencil
// with detection enabled and two workspaces.
func sdcTestPlanner(t *testing.T, n int64, pieces int) (p *Planner, mon *SDCMonitor, a, b VecID) {
	t.Helper()
	sol := make([]float64, n)
	rhs := make([]float64, n)
	for i := range sol {
		sol[i] = float64(i%13)/7 - 0.5
		rhs[i] = float64((i*11)%17)/5 + 0.25
	}
	p = NewPlanner(Config{Machine: machine.Lassen(2)})
	si := p.AddSolVector(sol, index.EqualPartition(index.NewSpace("D", n), pieces))
	ri := p.AddRHSVector(rhs, index.EqualPartition(index.NewSpace("R", n), pieces))
	p.AddOperator(sparse.Laplacian2D(n/8, 8), si, ri)
	p.Finalize()
	mon = p.EnableSDCDetection(0)
	a = p.AllocateWorkspace(SolShape)
	b = p.AllocateWorkspace(RhsShape)
	p.Copy(a, SOL)
	p.Copy(b, RHS)
	return p, mon, a, b
}

// A clean run through every checksummed kernel must raise no alarms:
// recurrence maintenance plus verify-refresh keeps drift far under the
// tolerance over many iterations.
func TestSDCCleanRunNoFalseAlarms(t *testing.T) {
	const n, pieces = 512, 4
	p, mon, a, b := sdcTestPlanner(t, n, pieces)
	alpha := p.Constant(0.01)
	for it := 0; it < 100; it++ {
		p.Matmul(b, a)                // checksummed SpMV
		d := p.Dot(b, b)              // unfused dot verifies operands
		p.Scal(a, p.Constant(0.999))  // scal maintains + verifies
		p.Axpy(a, alpha, SOL)         // axpy maintains + verifies both
		p.Xpay(b, p.Neg(alpha), RHS)  // xpay too
		p.FusedSweep(                 // fused path with guard slot
			[]VecUpdate{{Kind: UpdAxpy, Dst: a, Alpha: alpha, Src: SOL}},
			[]DotPair{{V: a, W: a}, {V: a, W: SOL}})
		_ = d.Value()
	}
	p.LaunchChecksumCheck(SOL, RHS, a, b)
	p.Drain()
	if c := mon.Count(); c != 0 {
		t.Fatalf("clean run raised %d alarms: %v", c, mon.Alarms())
	}
}

// A bit flip planted in a vector between operations must alarm at the
// next consumer, through every detection path: the explicit checksum
// scan, the fused-sweep pre-update verify, and the unfused kernels.
func TestSDCPlantedFlipDetected(t *testing.T) {
	const n, pieces = 256, 4
	flip := func(p *Planner, id VecID, i int) {
		p.Drain()
		d := p.VecData(id, 0)
		d[i] = fault.FlipBit(d[i], 52) // exponent bit: large perturbation
	}

	t.Run("vec.checksum", func(t *testing.T) {
		p, mon, a, _ := sdcTestPlanner(t, n, pieces)
		flip(p, a, 37)
		if got := p.VerifyChecksums(a); got != 1 {
			t.Fatalf("checksum scan raised %d alarms, want 1: %v", got, mon.Alarms())
		}
		al := mon.Take()
		if al[0].Vec != a || al[0].Slot != 0 {
			t.Errorf("alarm = %+v, want vec %d slot 0", al[0], a)
		}
		// The scan refreshed the slot, so a second scan is clean.
		if got := p.VerifyChecksums(a); got != 0 {
			t.Errorf("second scan raised %d alarms, want 0", got)
		}
	})

	t.Run("fused.verify", func(t *testing.T) {
		p, mon, a, _ := sdcTestPlanner(t, n, pieces)
		flip(p, a, n/2+3) // lands in a later piece
		p.FusedUpdate(VecUpdate{Kind: UpdAxpy, Dst: a, Alpha: p.Constant(0.5), Src: SOL})
		p.Drain()
		if c := mon.Count(); c != 1 {
			t.Fatalf("fused sweep raised %d alarms, want 1: %v", c, mon.Alarms())
		}
	})

	t.Run("dot.partial", func(t *testing.T) {
		p, mon, _, b := sdcTestPlanner(t, n, pieces)
		flip(p, b, 5)
		_ = p.Dot(b, RHS).Value()
		if c := mon.Count(); c != 1 {
			t.Fatalf("dot raised %d alarms, want 1: %v", c, mon.Alarms())
		}
	})

	t.Run("axpy", func(t *testing.T) {
		p, mon, a, _ := sdcTestPlanner(t, n, pieces)
		flip(p, SOL, 11)
		p.Axpy(a, p.Constant(2), SOL)
		p.Drain()
		if c := mon.Count(); c != 1 {
			t.Fatalf("axpy raised %d alarms, want 1: %v", c, mon.Alarms())
		}
	})
}

// Corrupting the reduction scratch between partial and combine trips the
// bitwise guard-slot comparison. The injector targets the dot.batch
// task's scratch span via the planner-installed corruption hook.
func TestSDCDotBatchGuard(t *testing.T) {
	const n, pieces = 256, 4
	sol := make([]float64, n)
	rhs := make([]float64, n)
	for i := range sol {
		sol[i] = float64(i%7) - 3
		rhs[i] = float64(i%5) + 1
	}
	p := NewPlanner(Config{Machine: machine.Lassen(2)})
	si := p.AddSolVector(sol, index.EqualPartition(index.NewSpace("D", n), pieces))
	ri := p.AddRHSVector(rhs, index.EqualPartition(index.NewSpace("R", n), pieces))
	p.AddOperator(sparse.Laplacian2D(n/8, 8), si, ri)
	p.Finalize()
	mon := p.EnableSDCDetection(0)
	// Corrupt every dot.batch task's output with certainty: the hook
	// targets the scratch span (data + guard), and the flip of a low
	// exponent bit shifts a partial enough to break the exact guard.
	p.Runtime().SetFaultInjector(fault.NewInjector(fault.Plan{Seed: 3, BitFlipRate: 1, Bit: 52, Names: []string{"dot.batch"}}))
	p.DotBatch(DotPair{V: SOL, W: RHS}, DotPair{V: RHS, W: RHS})
	p.Drain()
	if c := mon.Count(); c == 0 {
		t.Fatal("corrupted reduction scratch raised no guard alarm")
	}
	for _, a := range mon.Take() {
		if a.Task != "dot.batchreduce" {
			t.Errorf("alarm task = %q, want dot.batchreduce", a.Task)
		}
	}
}

// The checksummed SpMV's in-task ABFT cross-check: corrupting the
// matmul task's own output (post-run, the injector's model) must be
// caught by the NEXT reader, and the maintained checksum stays
// consistent with the column-checksum prediction on clean pieces.
func TestSDCChecksumSpMV(t *testing.T) {
	const n, pieces = 256, 4
	p, mon, a, b := sdcTestPlanner(t, n, pieces)
	p.Runtime().SetFaultInjector(fault.NewInjector(fault.Plan{Seed: 9, BitFlipRate: 1, Bit: 54, Names: []string{"matmul"}, Pieces: []int{2}}))
	p.ChecksumSpMV(b, a)
	p.Drain()
	if c := mon.Count(); c != 0 {
		// Post-run corruption is invisible to the producing task itself.
		t.Fatalf("matmul self-check alarmed on post-run corruption (%d alarms) — corruption model violated", c)
	}
	if got := p.VerifyChecksums(b); got != 1 {
		t.Fatalf("scan after corrupted SpMV raised %d alarms, want 1: %v", got, mon.Alarms())
	}
}

// RestoreSolPieces restores only the named pieces and reseeds their
// checksums; untouched pieces keep their (newer) state.
func TestSDCRestoreSolPieces(t *testing.T) {
	const n, pieces = 256, 4
	p, mon, _, _ := sdcTestPlanner(t, n, pieces)
	p.Drain()
	ckpt := p.CheckpointSol()
	// Advance the solution, then corrupt piece 1.
	p.Axpy(SOL, p.Constant(1), RHS)
	p.Drain()
	advanced := append([]float64(nil), p.SolData(0)...)
	per := int64(n / pieces)
	d := p.SolData(0)
	d[per+7] = fault.FlipBit(d[per+7], 52)

	p.RestoreSolPieces(ckpt, []int{1})
	if got := p.VerifyChecksums(SOL); got != 0 {
		t.Fatalf("restored solution failed verification: %v", mon.Alarms())
	}
	for i := int64(0); i < n; i++ {
		want := advanced[i]
		if i >= per && i < 2*per {
			want = ckpt[0][i]
		}
		if d[i] != want {
			t.Fatalf("sol[%d] = %g, want %g (piece %d)", i, d[i], want, i/per)
		}
	}
}

func TestNthPoint(t *testing.T) {
	s := index.Span(3, 5).Union(index.Span(10, 10)).Union(index.Span(20, 22))
	want := []int64{3, 4, 5, 10, 20, 21, 22}
	for k, w := range want {
		if got := nthPoint(s, int64(k)); got != w {
			t.Errorf("nthPoint(%d) = %d, want %d", k, got, w)
		}
	}
}

// Low-mantissa-bit flips are below the summation-ABFT detection floor by
// design: the relative perturbation is ~1e-16, far under any tolerance
// that survives honest rounding. Document the floor as a test.
func TestSDCDetectionFloor(t *testing.T) {
	const n, pieces = 256, 4
	p, mon, a, _ := sdcTestPlanner(t, n, pieces)
	p.Drain()
	d := p.VecData(a, 0)
	d[3] = fault.FlipBit(d[3], 0) // lowest mantissa bit
	if got := p.VerifyChecksums(a); got != 0 {
		t.Fatalf("low-bit flip unexpectedly alarmed (%v) — detection floor moved", mon.Alarms())
	}
	if math.IsNaN(d[3]) {
		t.Fatal("flip produced NaN")
	}
}
