package core

import (
	"fmt"
	"math"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/region"
	"kdrsolvers/internal/taskrt"
)

// A Scalar is a deferred scalar value, the planner's analogue of a Legion
// future. It is backed by a one-element region so that scalar dataflow —
// a dot product feeding an axpy coefficient, say — appears in the task
// graph and is ordered and costed like any other dependence.
type Scalar struct {
	p   *Planner
	reg *region.Region
	fut *taskrt.Future
	// proc is the processor that produced (or holds) the value.
	proc int
	// read, when set, extracts this scalar's value from its backing
	// region after fut resolves. Scalars of a batched reduction share
	// one producing task (and future) but hold distinct values.
	read func() float64
}

// scalarRef is the region reference a task uses to touch a scalar.
func (s *Scalar) ref(priv region.Privilege) region.Ref {
	return region.Ref{Region: s.reg.ID(), Field: "s", Subset: index.Span(0, 0), Priv: priv}
}

// Value blocks until the scalar is computed and returns it. On virtual
// planners the value is whatever the recorded (skipped) computation
// returned, normally zero; virtual callers should drive iteration counts,
// not convergence tests, from scalars.
func (s *Scalar) Value() float64 {
	v, err := s.fut.Result()
	if err == nil && s.read != nil {
		return s.read()
	}
	return v // NaN when the producing task failed or was poisoned
}

// Err blocks until the scalar is computed and returns its error state:
// nil on success, the producing task's failure otherwise (including
// taskrt.ErrPoisoned cancellations).
func (s *Scalar) Err() error { return s.fut.Err() }

// newScalar allocates the backing region for a scalar produced on proc.
func (p *Planner) newScalar(name string, proc int) *Scalar {
	p.scalarSeq++
	full := fmt.Sprintf("%s#%d", name, p.scalarSeq)
	var reg *region.Region
	if p.virtual {
		reg = region.NewVirtual(full, index.NewSpace("S", 1))
	} else {
		reg = region.New(full, index.NewSpace("S", 1), "s")
	}
	return &Scalar{p: p, reg: reg, proc: proc}
}

// Constant returns a scalar holding a compile-time constant. No task is
// launched; readers see the value immediately.
func (p *Planner) Constant(v float64) *Scalar {
	s := p.newScalar("const", 0)
	if !p.virtual {
		s.reg.Field("s")[0] = v
	}
	s.fut = taskrt.Resolved(v)
	return s
}

// ScalarExpr launches a task computing fn over the values of args,
// returning the result as a new scalar. The task runs on the processor of
// the first argument (scalar arithmetic is negligible; placement only
// affects simulated dataflow).
func (p *Planner) ScalarExpr(name string, fn func(vals []float64) float64, args ...*Scalar) *Scalar {
	p.mustBeFinalized()
	proc := 0
	if len(args) > 0 {
		proc = args[0].proc
	}
	out := p.newScalar(name, proc)
	refs := make([]region.Ref, 0, len(args)+1)
	for _, a := range args {
		refs = append(refs, a.ref(region.ReadOnly))
	}
	refs = append(refs, out.ref(region.WriteDiscard))

	var run func() float64
	if !p.virtual {
		srcs := make([][]float64, len(args))
		for i, a := range args {
			srcs[i] = a.reg.Field("s")
		}
		dst := out.reg.Field("s")
		run = func() float64 {
			vals := make([]float64, len(srcs))
			for i, s := range srcs {
				vals[i] = s[0]
			}
			v := fn(vals)
			dst[0] = v
			return v
		}
	}
	// Scalar expressions read their arguments and overwrite their output:
	// idempotent, hence retryable.
	out.fut = p.sess.Launch(taskrt.TaskSpec{
		Name: name, Proc: proc, Cost: 0, Refs: refs, Run: run, Host: true,
		Retryable: true,
	})
	return out
}

// Div returns a/b as a deferred scalar.
func (p *Planner) Div(a, b *Scalar) *Scalar {
	return p.ScalarExpr("div", func(v []float64) float64 { return v[0] / v[1] }, a, b)
}

// Mul returns a*b as a deferred scalar.
func (p *Planner) Mul(a, b *Scalar) *Scalar {
	return p.ScalarExpr("mul", func(v []float64) float64 { return v[0] * v[1] }, a, b)
}

// Sub returns a-b as a deferred scalar.
func (p *Planner) Sub(a, b *Scalar) *Scalar {
	return p.ScalarExpr("sub", func(v []float64) float64 { return v[0] - v[1] }, a, b)
}

// Neg returns -a as a deferred scalar.
func (p *Planner) Neg(a *Scalar) *Scalar {
	return p.ScalarExpr("neg", func(v []float64) float64 { return -v[0] }, a)
}

// Sqrt returns sqrt(a) as a deferred scalar.
func (p *Planner) Sqrt(a *Scalar) *Scalar {
	return p.ScalarExpr("sqrt", func(v []float64) float64 { return math.Sqrt(v[0]) }, a)
}
