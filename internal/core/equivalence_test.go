package core

import (
	"testing"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/sparse"
	"kdrsolvers/internal/taskrt"
)

// The virtual-mode contract: a virtual planner must record exactly the
// same task graph as a real planner running the same program — same
// tasks, same dependences, same costs, same placement. This is what
// makes simulated measurements of virtual (paper-scale) runs meaningful.

// graphsEqual compares every field of every node.
func graphsEqual(t *testing.T, a, b taskrt.Graph) bool {
	t.Helper()
	if a.Len() != b.Len() {
		t.Logf("lengths differ: %d vs %d", a.Len(), b.Len())
		return false
	}
	for i := range a.Nodes {
		x, y := a.Nodes[i], b.Nodes[i]
		if x.Name != y.Name || x.Proc != y.Proc || x.Cost != y.Cost ||
			x.Traced != y.Traced || x.Host != y.Host ||
			len(x.Deps) != len(y.Deps) {
			t.Logf("node %d differs: %+v vs %+v", i, x, y)
			return false
		}
		for d := range x.Deps {
			if x.Deps[d] != y.Deps[d] || x.DepBytes[d] != y.DepBytes[d] {
				t.Logf("node %d edge differs: %+v vs %+v", i, x, y)
				return false
			}
		}
	}
	return true
}

// buildBoth runs the same program on a real and a virtual planner and
// returns both graphs.
func buildBoth(t *testing.T, program func(p *Planner)) (real, virt taskrt.Graph) {
	t.Helper()
	m := machine.Lassen(2)
	pr := NewPlanner(Config{Machine: m})
	pv := NewPlanner(Config{Machine: m, Virtual: true})
	program(pr)
	program(pv)
	pr.Drain()
	pv.Drain()
	return pr.Runtime().Graph(), pv.Runtime().Graph()
}

// setupSystem adds a 2D stencil system to either kind of planner.
func setupSystem(p *Planner, n int64, pieces int) {
	op := sparse.NewStencilOperator(sparse.Stencil2D5, index.NewGrid(n/8, 8))
	if p.Virtual() {
		si := p.AddSolVectorVirtual(n, index.EqualPartition(index.NewSpace("D", n), pieces))
		ri := p.AddRHSVectorVirtual(n, index.EqualPartition(index.NewSpace("R", n), pieces))
		p.AddOperator(op, si, ri)
	} else {
		si := p.AddSolVector(make([]float64, n), index.EqualPartition(index.NewSpace("D", n), pieces))
		ri := p.AddRHSVector(make([]float64, n), index.EqualPartition(index.NewSpace("R", n), pieces))
		p.AddOperator(op, si, ri)
	}
	p.Finalize()
}

func TestVirtualRealGraphEquivalenceVectorOps(t *testing.T) {
	real, virt := buildBoth(t, func(p *Planner) {
		setupSystem(p, 64, 4)
		w := p.AllocateWorkspace(SolShape)
		p.Copy(w, SOL)
		p.Axpy(w, p.Constant(2), RHS)
		p.Scal(w, p.Constant(0.5))
		p.Xpay(w, p.Constant(-1), SOL)
		p.Zero(w)
		_ = p.Dot(w, RHS)
	})
	if !graphsEqual(t, real, virt) {
		t.Fatal("vector-op graphs differ between real and virtual planners")
	}
}

func TestVirtualRealGraphEquivalenceMatmul(t *testing.T) {
	real, virt := buildBoth(t, func(p *Planner) {
		setupSystem(p, 64, 4)
		y := p.AllocateWorkspace(RhsShape)
		p.Matmul(y, SOL)
		p.MatmulT(y, RHS)
	})
	if !graphsEqual(t, real, virt) {
		t.Fatal("matmul graphs differ between real and virtual planners")
	}
}

func TestVirtualRealGraphEquivalenceScalars(t *testing.T) {
	real, virt := buildBoth(t, func(p *Planner) {
		setupSystem(p, 32, 2)
		d := p.Dot(SOL, RHS)
		e := p.Div(d, p.Constant(3))
		f := p.Mul(p.Neg(e), p.Sqrt(p.Sub(d, e)))
		p.Axpy(SOL, f, RHS)
	})
	if !graphsEqual(t, real, virt) {
		t.Fatal("scalar graphs differ between real and virtual planners")
	}
}

func TestVirtualRealGraphEquivalenceTraced(t *testing.T) {
	real, virt := buildBoth(t, func(p *Planner) {
		setupSystem(p, 64, 4)
		y := p.AllocateWorkspace(RhsShape)
		for i := 0; i < 3; i++ {
			p.Runtime().BeginTrace("iter")
			p.Matmul(y, SOL)
			p.Axpy(SOL, p.Dot(y, RHS), y)
			p.Runtime().EndTrace()
		}
	})
	if !graphsEqual(t, real, virt) {
		t.Fatal("traced graphs differ between real and virtual planners")
	}
}

// windowShape captures the structure of one iteration's subgraph with
// deps rebased to the window start (external deps normalized to -1-lag).
type shapeNode struct {
	name  string
	proc  int
	cost  float64
	deps  []int64
	bytes []int64
}

func windowShape(g taskrt.Graph, lo, hi int) []shapeNode {
	out := make([]shapeNode, 0, hi-lo)
	for _, n := range g.Nodes[lo:hi] {
		sn := shapeNode{name: n.Name, proc: n.Proc, cost: n.Cost}
		for i, d := range n.Deps {
			rel := d - int64(lo)
			if rel < 0 {
				rel = -1 // external producer: position-independent marker
			}
			sn.deps = append(sn.deps, rel)
			sn.bytes = append(sn.bytes, n.DepBytes[i])
		}
		out = append(out, sn)
	}
	return out
}

func shapesEqual(a, b []shapeNode) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.name != y.name || x.proc != y.proc || x.cost != y.cost ||
			len(x.deps) != len(y.deps) {
			return false
		}
		for d := range x.deps {
			if x.deps[d] != y.deps[d] || x.bytes[d] != y.bytes[d] {
				return false
			}
		}
	}
	return true
}

func TestTraceReplayGraphsAreStructurallyIdentical(t *testing.T) {
	// The dynamic-tracing model (DESIGN.md): replayed iterations must
	// produce graphs identical in structure to the recorded one, which is
	// what justifies charging them the memoized overhead.
	p := NewPlanner(Config{Machine: machine.Lassen(2), Virtual: true})
	op := sparse.NewStencilOperator(sparse.Stencil2D5, index.NewGrid(32, 32))
	si := p.AddSolVectorVirtual(1024, index.EqualPartition(index.NewSpace("D", 1024), 4))
	ri := p.AddRHSVectorVirtual(1024, index.EqualPartition(index.NewSpace("R", 1024), 4))
	p.AddOperator(op, si, ri)
	p.Finalize()
	y := p.AllocateWorkspace(RhsShape)

	marks := []int{}
	for i := 0; i < 4; i++ {
		marks = append(marks, p.Runtime().Graph().Len())
		p.Runtime().BeginTrace("iter")
		p.Matmul(y, SOL)
		d := p.Dot(y, RHS)
		p.Axpy(SOL, d, y)
		p.Xpay(y, p.Neg(d), RHS)
		p.Runtime().EndTrace()
	}
	p.Drain()
	g := p.Runtime().Graph()
	marks = append(marks, g.Len())

	// Steady state begins at iteration 1: iteration 0 reads vectors that
	// have no prior writers, so it carries fewer anti-dependence edges
	// (exactly why warmup iterations precede timing in the protocol).
	base := windowShape(g, marks[1], marks[2])
	for i := 2; i+1 < len(marks); i++ {
		if !shapesEqual(base, windowShape(g, marks[i], marks[i+1])) {
			t.Fatalf("iteration %d window differs structurally from iteration 1", i)
		}
	}
	// Task counts agree even for the recorded iteration.
	if marks[1]-marks[0] != marks[2]-marks[1] {
		t.Fatalf("iteration task counts differ: %d vs %d",
			marks[1]-marks[0], marks[2]-marks[1])
	}
}
