package core

import (
	"fmt"
	"sort"

	"kdrsolvers/internal/dpart"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/machine"
	"kdrsolvers/internal/obs"
	"kdrsolvers/internal/region"
	"kdrsolvers/internal/sparse"
	"kdrsolvers/internal/taskrt"
)

// VecID names a logical vector managed by the planner.
type VecID int

// The two vectors every linear system starts with, as in Figure 7.
const (
	// SOL is the multi-component solution vector assembled by
	// AddSolVector calls.
	SOL VecID = 0
	// RHS is the multi-component right-hand-side vector assembled by
	// AddRHSVector calls.
	RHS VecID = 1
)

// Shape says whether a vector is laid out over the domain components
// (solution-shaped) or the range components (right-hand-side-shaped).
type Shape int

const (
	// SolShape vectors live in R^(D_total).
	SolShape Shape = iota
	// RhsShape vectors live in R^(R_total).
	RhsShape
)

// Config configures a planner.
type Config struct {
	// Machine provides the cost model for simulated task costs. Required.
	Machine machine.Machine
	// Mapper assigns vector pieces (and by default compute tasks) to
	// processors. Defaults to a round-robin over the machine's
	// processors.
	Mapper taskrt.Mapper
	// Virtual disables physical storage and real arithmetic: tasks are
	// recorded with costs for the simulator but perform no work. Virtual
	// planners scale to the paper's 2^32-unknown problems.
	Virtual bool
	// MatmulProc, if non-nil, overrides the processor for the
	// multiply-add task of operator op and output color c. This is the
	// hook the dynamic load balancer of Section 6.3 uses to migrate
	// matrix tiles between nodes. Returning a negative value keeps the
	// default placement (the owner of the output piece).
	MatmulProc func(op, color int) int
	// Session, if non-nil, makes the planner launch into the given
	// session of an existing shared runtime instead of creating a fresh
	// runtime of its own. Every launch, phase label, trace scope, fault
	// injector, and recorder the planner touches goes through the
	// session, so many planners — one per concurrent solve — can
	// multiplex one runtime's worker pool without sharing failure state.
	Session *taskrt.Session
}

// component is one domain or range component with its canonical partition
// and the processor owning each piece.
type component struct {
	space index.Space
	part  index.Partition
	procs []int
}

// vec is one logical vector: one region per component.
type vec struct {
	shape Shape
	regs  []*region.Region
}

// opEntry is one (K_ℓ, A_ℓ, i_ℓ, j_ℓ) quadruple with its derived
// co-partitions.
type opEntry struct {
	mat    sparse.Matrix
	solIdx int // i_ℓ: domain component the operator reads (forward)
	rhsIdx int // j_ℓ: range component the operator writes (forward)

	// Forward product partitions, derived from the output component's
	// canonical partition: kpart[c] is the kernel piece writing output
	// piece c, inHalo[c] is the input data it reads, and outImage[c] is
	// the true write set (the row-relation image of the kernel piece) —
	// operators writing disjoint parts of one component stay parallel.
	kpart, inHalo, outImage index.Partition
	// Adjoint product partitions, derived from the input component's
	// canonical partition.
	kpartT, inHaloT, outImageT index.Partition
}

// Planner assembles a multi-operator system and exposes the mathematical
// operations KSMs are written against. Methods are not safe for
// concurrent use; the expected client is one solver goroutine (the tasks
// it launches run concurrently under the runtime).
type Planner struct {
	rt      *taskrt.Runtime
	sess    *taskrt.Session
	mach    machine.Machine
	mapper  taskrt.Mapper
	virtual bool
	mmProc  func(op, color int) int

	sol, rhs  []component
	ops, pre  []opEntry
	vecs      []vec
	finalized bool
	colorBase int
	scalarSeq int
	tracing   bool
	traceOpen bool

	// specBuf collects the per-piece specs of one logical operation so
	// they submit through a single LaunchBatch (one runtime-lock round
	// trip per sweep instead of per task). The buffer is reused across
	// operations; Planner methods are single-goroutine, so no launch can
	// interleave with an open batch.
	specBuf []taskrt.TaskSpec

	// sdc holds the checksummed-kernel state when EnableSDCDetection has
	// been called; nil means every kernel runs its plain form.
	sdc *sdcState
}

// NewPlanner returns an empty planner running on a fresh task runtime,
// or — when cfg.Session is set — launching into that session of a
// shared runtime.
func NewPlanner(cfg Config) *Planner {
	mapper := cfg.Mapper
	if mapper == nil {
		mapper = taskrt.RoundRobinMapper{NumProcs: cfg.Machine.NumProcs()}
	}
	sess := cfg.Session
	if sess == nil {
		sess = taskrt.New().DefaultSession()
	}
	return &Planner{
		rt:      sess.Runtime(),
		sess:    sess,
		mach:    cfg.Machine,
		mapper:  mapper,
		virtual: cfg.Virtual,
		mmProc:  cfg.MatmulProc,
		vecs:    make([]vec, 2), // SOL and RHS, filled by Add*Vector
	}
}

// Runtime returns the underlying task runtime (for Graph, Stats, and
// runtime-wide configuration). With a shared runtime, prefer Session
// for anything scoped to this planner's solve.
func (p *Planner) Runtime() *taskrt.Runtime { return p.rt }

// Session returns the session the planner launches into — the default
// session of its own runtime unless Config.Session bound it elsewhere.
func (p *Planner) Session() *taskrt.Session { return p.sess }

// BeginPhase tags every task launched from here on with a solver-phase
// label ("cg.step", "gmres.arnoldi", ...). Labels flow into the recorded
// graph and any attached obs.Recorder, giving profiles and traces a
// solver-level grouping on top of task names. An empty label clears the
// tag.
func (p *Planner) BeginPhase(label string) { p.sess.SetPhase(label) }

// SetTracing turns trace memoization on or off for solvers driving this
// planner: when on, solver iteration loops bracket each iteration (or
// GMRES restart cycle) in a runtime trace scope, so the dependence
// analysis of repeated launch sequences is memoized and replayed. Off by
// default; flipping it costs nothing for correctness either way — a
// wrongly scoped trace falls back to full analysis automatically.
func (p *Planner) SetTracing(on bool) { p.tracing = on }

// Tracing reports whether trace memoization is enabled.
func (p *Planner) Tracing() bool { return p.tracing }

// TraceBegin opens a runtime trace scope under the given key when
// tracing is enabled, reporting whether it did. Solvers call it at the
// top of a repeated launch sequence and hand the result to TraceEnd:
//
//	in := p.TraceBegin("cg.step")
//	defer p.TraceEnd(in)
//
// A scope still open from an abandoned sequence — a GMRES solve that
// converged mid-restart-cycle — is closed first; the runtime treats the
// short instance as a miss and re-records, so abandonment costs only
// performance.
func (p *Planner) TraceBegin(key string) bool {
	if !p.tracing {
		return false
	}
	if p.traceOpen {
		p.sess.EndTrace()
	}
	p.sess.BeginTrace(key)
	p.traceOpen = true
	return true
}

// TraceEnd closes the trace scope TraceBegin opened, if it opened one.
func (p *Planner) TraceEnd(began bool) {
	if began && p.traceOpen {
		p.sess.EndTrace()
		p.traceOpen = false
	}
}

// EnableProfiling attaches a fresh observability recorder to the
// runtime and returns it: from now on every executed task records real
// wall-clock timing (launch, start, end, worker) alongside the
// simulated costs already in the graph.
func (p *Planner) EnableProfiling() *obs.Recorder {
	rec := obs.NewRecorder()
	p.sess.SetRecorder(rec)
	return rec
}

// Machine returns the machine model used for task costs.
func (p *Planner) Machine() machine.Machine { return p.mach }

// Virtual reports whether the planner skips real arithmetic.
func (p *Planner) Virtual() bool { return p.virtual }

// addComponent registers a component with its canonical partition and
// assigns piece owners through the mapper.
func (p *Planner) addComponent(name string, n int64, part index.Partition, data []float64) (component, *region.Region) {
	space := index.NewSpace(name, n)
	if part.NumColors() == 0 {
		part = index.EqualPartition(space, 1)
	}
	if part.Space.Size() != n {
		panic(fmt.Sprintf("core: canonical partition covers %d points, component has %d",
			part.Space.Size(), n))
	}
	if !part.Complete() || !part.Disjoint() {
		panic("core: canonical partitions must be complete and disjoint")
	}
	procs := make([]int, part.NumColors())
	for c := range procs {
		procs[c] = p.mapper.SelectProc("vector", p.colorBase+c)
	}
	p.colorBase += part.NumColors()

	var reg *region.Region
	if p.virtual {
		reg = region.NewVirtual(name, space)
	} else if data != nil {
		reg = region.Adopt(name, space, "v", data)
	} else {
		reg = region.New(name, space, "v")
	}
	return component{space: space, part: part, procs: procs}, reg
}

// AddSolVector supplies one component of the initial solution vector,
// adopting the caller's storage in place (no copy). An empty partition
// means a single piece. It returns the component's index i for use in
// AddOperator. Real-mode planners require data; virtual planners ignore
// it and only need its length via n.
func (p *Planner) AddSolVector(data []float64, part index.Partition) int {
	p.mustNotBeFinalized()
	comp, reg := p.addComponent(fmt.Sprintf("sol%d", len(p.sol)), int64(len(data)), part, data)
	p.sol = append(p.sol, comp)
	p.vecs[SOL].shape = SolShape
	p.vecs[SOL].regs = append(p.vecs[SOL].regs, reg)
	return len(p.sol) - 1
}

// AddSolVectorVirtual is AddSolVector for virtual planners, where no real
// storage exists: only the component's size is needed.
func (p *Planner) AddSolVectorVirtual(n int64, part index.Partition) int {
	p.mustNotBeFinalized()
	if !p.virtual {
		panic("core: AddSolVectorVirtual requires a virtual planner")
	}
	comp, reg := p.addComponent(fmt.Sprintf("sol%d", len(p.sol)), n, part, nil)
	p.sol = append(p.sol, comp)
	p.vecs[SOL].shape = SolShape
	p.vecs[SOL].regs = append(p.vecs[SOL].regs, reg)
	return len(p.sol) - 1
}

// AddRHSVector supplies one component of the right-hand-side vector,
// adopting the caller's storage in place. It returns the component's
// index j for use in AddOperator.
func (p *Planner) AddRHSVector(data []float64, part index.Partition) int {
	p.mustNotBeFinalized()
	comp, reg := p.addComponent(fmt.Sprintf("rhs%d", len(p.rhs)), int64(len(data)), part, data)
	p.rhs = append(p.rhs, comp)
	p.vecs[RHS].shape = RhsShape
	p.vecs[RHS].regs = append(p.vecs[RHS].regs, reg)
	return len(p.rhs) - 1
}

// AddRHSVectorVirtual is AddRHSVector for virtual planners.
func (p *Planner) AddRHSVectorVirtual(n int64, part index.Partition) int {
	p.mustNotBeFinalized()
	if !p.virtual {
		panic("core: AddRHSVectorVirtual requires a virtual planner")
	}
	comp, reg := p.addComponent(fmt.Sprintf("rhs%d", len(p.rhs)), n, part, nil)
	p.rhs = append(p.rhs, comp)
	p.vecs[RHS].shape = RhsShape
	p.vecs[RHS].regs = append(p.vecs[RHS].regs, reg)
	return len(p.rhs) - 1
}

// AddOperator adds the quadruple (K, A, i, j): matrix mat maps solution
// component solIdx to right-hand-side component rhsIdx. Any number of
// operators may share a (solIdx, rhsIdx) pair, and the same matrix may be
// added several times (aliasing); overlapping writes are summed
// (equation 8).
func (p *Planner) AddOperator(mat sparse.Matrix, solIdx, rhsIdx int) {
	p.mustNotBeFinalized()
	if solIdx < 0 || solIdx >= len(p.sol) || rhsIdx < 0 || rhsIdx >= len(p.rhs) {
		panic("core: AddOperator component index out of range")
	}
	if mat.Domain().Size() != p.sol[solIdx].space.Size() {
		panic(fmt.Sprintf("core: operator domain %d != component %d size %d",
			mat.Domain().Size(), solIdx, p.sol[solIdx].space.Size()))
	}
	if mat.Range().Size() != p.rhs[rhsIdx].space.Size() {
		panic(fmt.Sprintf("core: operator range %d != component %d size %d",
			mat.Range().Size(), rhsIdx, p.rhs[rhsIdx].space.Size()))
	}
	p.ops = append(p.ops, opEntry{mat: mat, solIdx: solIdx, rhsIdx: rhsIdx})
}

// AddOperatorAuto adds a CSR operator after adaptive format tuning: the
// matrix's row bands are taken from the range component's canonical
// partition (so every task piece computes over a single tile), each band
// is profiled, and each is converted to the format the calibrated model
// predicts fastest for its local structure. It returns the tuned
// composite so callers can report the chosen formats.
func (p *Planner) AddOperatorAuto(a *sparse.CSR, solIdx, rhsIdx int) *sparse.Auto {
	p.mustNotBeFinalized()
	if rhsIdx < 0 || rhsIdx >= len(p.rhs) {
		panic("core: AddOperatorAuto component index out of range")
	}
	pieces := p.rhs[rhsIdx].part.Pieces()
	starts := make([]int64, 0, len(pieces))
	for _, pc := range pieces {
		if !pc.Empty() {
			starts = append(starts, pc.Bounds().Lo)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	tuned := sparse.AutoSelectBands(a, starts)
	p.AddOperator(tuned, solIdx, rhsIdx)
	return tuned
}

// AddPreconditioner adds a component of the preconditioner P_total, a map
// from the range space back to the domain space: mat maps right-hand-side
// component rhsIdx to solution component solIdx.
func (p *Planner) AddPreconditioner(mat sparse.Matrix, solIdx, rhsIdx int) {
	p.mustNotBeFinalized()
	if solIdx < 0 || solIdx >= len(p.sol) || rhsIdx < 0 || rhsIdx >= len(p.rhs) {
		panic("core: AddPreconditioner component index out of range")
	}
	if mat.Domain().Size() != p.rhs[rhsIdx].space.Size() {
		panic("core: preconditioner domain must match the range component")
	}
	if mat.Range().Size() != p.sol[solIdx].space.Size() {
		panic("core: preconditioner range must match the domain component")
	}
	p.pre = append(p.pre, opEntry{mat: mat, solIdx: solIdx, rhsIdx: rhsIdx})
}

// Finalize derives the co-partitions of every operator from the canonical
// partitions using the universal projection operators, after which the
// mathematical operations become available. Finalize must be called
// exactly once, after all Add* calls.
func (p *Planner) Finalize() {
	p.mustNotBeFinalized()
	if len(p.sol) == 0 || len(p.rhs) == 0 {
		panic("core: a system needs at least one solution and one right-hand-side component")
	}
	for i := range p.ops {
		op := &p.ops[i]
		row, col := op.mat.RowRelation(), op.mat.ColRelation()
		// Forward: partition the kernel by the output (range) partition,
		// then project to the input halo (Section 3.1).
		outPart := p.rhs[op.rhsIdx].part
		op.kpart = dpart.PreimagePartition(row, outPart)
		op.inHalo = dpart.ImagePartition(col, op.kpart)
		op.outImage = intersectPieces(dpart.ImagePartition(row, op.kpart), outPart)
		// Adjoint: the roles of the relations swap.
		inPart := p.sol[op.solIdx].part
		op.kpartT = dpart.PreimagePartition(col, inPart)
		op.inHaloT = dpart.ImagePartition(row, op.kpartT)
		op.outImageT = intersectPieces(dpart.ImagePartition(col, op.kpartT), inPart)
	}
	for i := range p.pre {
		op := &p.pre[i]
		row, col := op.mat.RowRelation(), op.mat.ColRelation()
		// A preconditioner writes a solution component: its output
		// partition is the domain component's canonical partition.
		outPart := p.sol[op.solIdx].part
		op.kpart = dpart.PreimagePartition(row, outPart)
		op.inHalo = dpart.ImagePartition(col, op.kpart)
		op.outImage = intersectPieces(dpart.ImagePartition(row, op.kpart), outPart)
	}
	p.finalized = true
}

// intersectPieces clips each piece of an image partition to the
// corresponding canonical piece (padding entries in some formats can
// image onto rows outside the piece that derived the kernel).
func intersectPieces(img, canon index.Partition) index.Partition {
	pieces := make([]index.IntervalSet, img.NumColors())
	for c := range pieces {
		pieces[c] = img.Piece(c).Intersect(canon.Piece(c))
	}
	return index.NewPartition(img.Space, pieces)
}

// IsSquare reports whether every solution component matches the
// same-indexed right-hand-side component in count and size, so that
// solution- and range-shaped vectors are interchangeable (required by CG,
// BiCGStab, and friends).
func (p *Planner) IsSquare() bool {
	if len(p.sol) != len(p.rhs) {
		return false
	}
	for i := range p.sol {
		if p.sol[i].space.Size() != p.rhs[i].space.Size() {
			return false
		}
	}
	return true
}

// HasPreconditioner reports whether any preconditioner component was
// added.
func (p *Planner) HasPreconditioner() bool { return len(p.pre) > 0 }

// AllocateWorkspace creates a zeroed workspace vector with the given
// shape and returns its ID.
func (p *Planner) AllocateWorkspace(shape Shape) VecID {
	p.mustBeFinalized()
	comps := p.comps(shape)
	v := vec{shape: shape}
	for i, c := range comps {
		name := fmt.Sprintf("ws%d.%d", len(p.vecs), i)
		if p.virtual {
			v.regs = append(v.regs, region.NewVirtual(name, c.space))
		} else {
			v.regs = append(v.regs, region.New(name, c.space, "v"))
		}
	}
	p.vecs = append(p.vecs, v)
	id := VecID(len(p.vecs) - 1)
	if p.sdcOn() {
		p.sdcAddVec(id)
	}
	return id
}

// comps returns the component list for a shape.
func (p *Planner) comps(shape Shape) []component {
	if shape == SolShape {
		return p.sol
	}
	return p.rhs
}

// vecComps returns a vector's regions and matching components.
func (p *Planner) vecComps(id VecID) (vec, []component) {
	v := p.vecs[id]
	return v, p.comps(v.shape)
}

// SolData returns the storage of solution component i, through which
// callers observe the computed solution after Drain. Real planners only.
func (p *Planner) SolData(i int) []float64 {
	return p.vecs[SOL].regs[i].Field("v")
}

// VecData returns the storage of component comp of any vector, for tests
// and examples. Real planners only.
func (p *Planner) VecData(id VecID, comp int) []float64 {
	return p.vecs[id].regs[comp].Field("v")
}

// Drain blocks until all tasks launched through this planner's session
// complete. Other sessions sharing the runtime are not waited on.
func (p *Planner) Drain() { p.sess.Drain() }

// CheckpointSol deep-copies the storage of every solution component,
// the planner-level checkpoint a resilient driver restarts from. Call
// Drain first so no task is mid-write. Real planners only.
func (p *Planner) CheckpointSol() [][]float64 {
	if p.virtual {
		panic("core: checkpointing requires a real planner")
	}
	out := make([][]float64, len(p.vecs[SOL].regs))
	for i, reg := range p.vecs[SOL].regs {
		out[i] = append([]float64(nil), reg.Field("v")...)
	}
	return out
}

// RestoreSol writes a checkpoint taken by CheckpointSol back into the
// solution vector's storage. The runtime must be quiescent (Drain first):
// the write happens host-side, outside the dependence analysis, and is
// safe only when no task is in flight. Real planners only.
func (p *Planner) RestoreSol(ckpt [][]float64) {
	if p.virtual {
		panic("core: checkpointing requires a real planner")
	}
	if len(ckpt) != len(p.vecs[SOL].regs) {
		panic("core: checkpoint component count mismatch")
	}
	for i, reg := range p.vecs[SOL].regs {
		dst := reg.Field("v")
		if len(ckpt[i]) != len(dst) {
			panic("core: checkpoint component size mismatch")
		}
		copy(dst, ckpt[i])
	}
	if p.sdcOn() {
		p.seedChecksum(SOL)
	}
}

// NumSolComponents returns the number of solution components.
func (p *Planner) NumSolComponents() int { return len(p.sol) }

// NumRHSComponents returns the number of right-hand-side components.
func (p *Planner) NumRHSComponents() int { return len(p.rhs) }

// NumOperators returns the number of operator quadruples.
func (p *Planner) NumOperators() int { return len(p.ops) }

// OperatorFingerprint identifies the planner's operator set by the
// concrete matrix values backing it. Two planners built over the same
// matrix objects — the repeated-operator workloads recycling solvers
// target — report the same fingerprint; planners over different (even
// structurally identical) matrices do not.
func (p *Planner) OperatorFingerprint() string {
	var s string
	for i := range p.ops {
		s += fmt.Sprintf("%T@%p;", p.ops[i].mat, p.ops[i].mat)
	}
	return s
}

func (p *Planner) mustBeFinalized() {
	if !p.finalized {
		panic("core: call Finalize before using planner operations")
	}
}

func (p *Planner) mustNotBeFinalized() {
	if p.finalized {
		panic("core: planner already finalized")
	}
}

// batch appends one piece task to the planner's pending detached batch.
// The bulk per-piece launches of vector sweeps and products never read
// their futures, so the whole batch runs detached — LaunchBatch then
// returns nil and the launch path allocates no futures at all.
func (p *Planner) batch(spec taskrt.TaskSpec) {
	spec.Detached = true
	p.specBuf = append(p.specBuf, spec)
}

// flushBatch submits the pending piece tasks as one fused LaunchBatch
// and resets the buffer for reuse. Entries are scrubbed so the buffer
// does not retain task closures past the launch.
func (p *Planner) flushBatch() {
	if len(p.specBuf) == 0 {
		return
	}
	p.sess.LaunchBatch(p.specBuf)
	for i := range p.specBuf {
		p.specBuf[i] = taskrt.TaskSpec{}
	}
	p.specBuf = p.specBuf[:0]
}

// checkShapes panics unless both vectors exist and have compatible
// component structure for an elementwise operation. Square systems make
// SolShape and RhsShape interchangeable.
func (p *Planner) checkCompatible(dst, src VecID) ([]component, vec, vec) {
	dv, dc := p.vecComps(dst)
	sv, sc := p.vecComps(src)
	if len(dc) != len(sc) {
		panic("core: vectors have different component counts")
	}
	for i := range dc {
		if dc[i].space.Size() != sc[i].space.Size() {
			panic(fmt.Sprintf("core: component %d size mismatch: %d vs %d",
				i, dc[i].space.Size(), sc[i].space.Size()))
		}
	}
	return dc, dv, sv
}
