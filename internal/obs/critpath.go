package obs

import (
	"fmt"
	"sort"
	"strings"
)

// NameStat aggregates the spans of one task name (or phase label).
type NameStat struct {
	Name  string
	Count int
	// Total, Mean, Max are execution-time aggregates in seconds.
	Total, Mean, Max float64
	// Queue is the total queue latency in seconds.
	Queue float64
	// CritCount and CritTotal cover only the spans on the critical path.
	CritCount int
	CritTotal float64
}

// WorkerStat is one executor's occupancy over the recorded window.
type WorkerStat struct {
	Worker int
	// Busy is total execution time in seconds; Tasks the span count.
	Busy  float64
	Tasks int
	// Utilization is Busy divided by the observed wall time.
	Utilization float64
}

// Report is a critical-path analysis of one recorded execution.
type Report struct {
	// Tasks is the number of analyzed spans.
	Tasks int
	// WallTime is the observed end-to-end time: max End − min Launch.
	WallTime float64
	// TotalBusy is the sum of all execution times (serial-equivalent).
	TotalBusy float64
	// CriticalPathTime is the longest duration-weighted dependence path.
	CriticalPathTime float64
	// CriticalPath lists the task IDs along that path, in launch order.
	CriticalPath []int64
	// Slack[i] is how much task i could stretch without lengthening the
	// critical path (CPM slack, seconds), indexed by task ID.
	Slack []float64
	// ByName and ByPhase aggregate spans per task name / phase label,
	// sorted by Total descending.
	ByName, ByPhase []NameStat
	// Workers reports per-executor occupancy, sorted by worker ID.
	Workers []WorkerStat
}

// Analyze runs critical-path analysis (CPM) over recorded spans using
// the dependence lists of the recorded graph: deps[id] are the task IDs
// that must finish before task id starts. Edge weights are the measured
// execution times, so the result reflects where wall-clock time actually
// went rather than the modeled costs. Spans with IDs outside deps, or
// graph nodes that never executed, contribute zero duration.
func Analyze(spans []Span, deps [][]int64) Report {
	n := len(deps)
	byID := make([]*Span, n)
	rep := Report{Tasks: len(spans)}
	first, last := 0.0, 0.0
	for i := range spans {
		s := &spans[i]
		if s.ID >= 0 && s.ID < int64(n) {
			byID[s.ID] = s
		}
		if i == 0 || s.Launch < first {
			first = s.Launch
		}
		if s.End > last {
			last = s.End
		}
		rep.TotalBusy += s.Duration()
	}
	if len(spans) > 0 {
		rep.WallTime = last - first
	}

	// Forward pass: earliest start/finish with measured durations.
	dur := make([]float64, n)
	for id, s := range byID {
		if s != nil {
			dur[id] = s.Duration()
		}
	}
	ef := make([]float64, n) // earliest finish
	var best int64 = -1
	for i := 0; i < n; i++ {
		var es float64
		for _, d := range deps[i] {
			if ef[d] > es {
				es = ef[d]
			}
		}
		ef[i] = es + dur[i]
		if best < 0 || ef[i] > ef[best] {
			best = int64(i)
		}
	}
	if best >= 0 {
		rep.CriticalPathTime = ef[best]
	}

	// Backward pass: latest finish, slack = lf − ef.
	lf := make([]float64, n)
	for i := range lf {
		lf[i] = rep.CriticalPathTime
	}
	for i := n - 1; i >= 0; i-- {
		ls := lf[i] - dur[i]
		for _, d := range deps[i] {
			if ls < lf[d] {
				lf[d] = ls
			}
		}
	}
	rep.Slack = make([]float64, n)
	for i := range rep.Slack {
		rep.Slack[i] = lf[i] - ef[i]
	}

	// Walk the critical path back from the last-finishing task through
	// the dependence whose finish gated each start.
	onPath := make([]bool, n)
	for at := best; at >= 0; {
		onPath[at] = true
		rep.CriticalPath = append(rep.CriticalPath, at)
		// The gating dependence is the one whose finish equals this
		// task's earliest start (the max over ef of its deps).
		var next int64 = -1
		var gate float64
		for _, d := range deps[at] {
			if ef[d] > gate {
				gate = ef[d]
			}
		}
		for _, d := range deps[at] {
			if ef[d] == gate && (next < 0 || d < next) {
				next = d
			}
		}
		if next < 0 || gate == 0 {
			break
		}
		at = next
	}
	for i, j := 0, len(rep.CriticalPath)-1; i < j; i, j = i+1, j-1 {
		rep.CriticalPath[i], rep.CriticalPath[j] = rep.CriticalPath[j], rep.CriticalPath[i]
	}

	// Aggregates.
	names := map[string]*NameStat{}
	phases := map[string]*NameStat{}
	workers := map[int]*WorkerStat{}
	accum := func(m map[string]*NameStat, key string, s *Span, crit bool) {
		st := m[key]
		if st == nil {
			st = &NameStat{Name: key}
			m[key] = st
		}
		d := s.Duration()
		st.Count++
		st.Total += d
		if d > st.Max {
			st.Max = d
		}
		st.Queue += s.QueueLatency()
		if crit {
			st.CritCount++
			st.CritTotal += d
		}
	}
	for i := range spans {
		s := &spans[i]
		crit := s.ID >= 0 && s.ID < int64(n) && onPath[s.ID]
		accum(names, s.Name, s, crit)
		if s.Phase != "" {
			accum(phases, s.Phase, s, crit)
		}
		w := workers[s.Worker]
		if w == nil {
			w = &WorkerStat{Worker: s.Worker}
			workers[s.Worker] = w
		}
		w.Busy += s.Duration()
		w.Tasks++
	}
	rep.ByName = sortStats(names)
	rep.ByPhase = sortStats(phases)
	for _, w := range workers {
		if rep.WallTime > 0 {
			w.Utilization = w.Busy / rep.WallTime
		}
		rep.Workers = append(rep.Workers, *w)
	}
	sort.Slice(rep.Workers, func(i, j int) bool { return rep.Workers[i].Worker < rep.Workers[j].Worker })
	return rep
}

func sortStats(m map[string]*NameStat) []NameStat {
	out := make([]NameStat, 0, len(m))
	for _, st := range m {
		st.Mean = st.Total / float64(st.Count)
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// String formats the report as the -profile breakdown: per-task-name
// timing, the critical-path summary, and worker occupancy.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tasks: %d, wall %.4gs, busy %.4gs", r.Tasks, r.WallTime, r.TotalBusy)
	if len(r.Workers) > 0 {
		fmt.Fprintf(&b, " on %d workers", len(r.Workers))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "critical path: %.4gs across %d tasks", r.CriticalPathTime, len(r.CriticalPath))
	if r.WallTime > 0 {
		fmt.Fprintf(&b, " (%.0f%% of wall)", 100*r.CriticalPathTime/r.WallTime)
	}
	b.WriteByte('\n')
	writeStats := func(title string, stats []NameStat) {
		if len(stats) == 0 {
			return
		}
		fmt.Fprintf(&b, "%-22s %8s %7s %10s %10s %10s %14s\n",
			title, "total", "count", "mean", "max", "queue", "on-crit-path")
		for _, st := range stats {
			fmt.Fprintf(&b, "  %-20s %8.3gs %7d %9.3gs %9.3gs %9.3gs %7.3gs (%d)\n",
				st.Name, st.Total, st.Count, st.Mean, st.Max, st.Queue, st.CritTotal, st.CritCount)
		}
	}
	writeStats("by task name", r.ByName)
	writeStats("by phase", r.ByPhase)
	if len(r.Workers) > 0 {
		b.WriteString("worker occupancy:")
		for _, w := range r.Workers {
			fmt.Fprintf(&b, " w%d %.0f%%", w.Worker, 100*w.Utilization)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
