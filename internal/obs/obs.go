package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one executed task: what it was, where it ran, and when. Launch
// is when the task was submitted, Start when a worker picked it up, End
// when it finished; Start−Launch is the queue latency (dependence wait
// plus scheduling delay), End−Start the execution time.
type Span struct {
	// ID is the task's graph ID (dense, matching taskrt.Node.ID).
	ID int64
	// Name labels the task kind ("matmul", "dot.partial", ...).
	Name string
	// Phase is the solver-phase label active at launch ("cg.step", ...).
	Phase string
	// Proc is the simulated processor the mapper assigned.
	Proc int
	// Worker identifies the executor: the goroutine-pool slot for real
	// spans, the simulated processor for simulated spans.
	Worker int
	// Launch, Start, End are seconds since the recorder's epoch.
	Launch, Start, End float64
	// Outcome classifies how the task ended: OutcomeOK (empty) for a
	// clean run, OutcomeRetried for success after re-execution,
	// OutcomeFailed for a permanent failure, OutcomePoisoned for a task
	// cancelled because an upstream task failed (zero-duration span).
	Outcome string
}

// Span outcome values.
const (
	OutcomeOK       = ""
	OutcomeRetried  = "retried"
	OutcomeFailed   = "failed"
	OutcomePoisoned = "poisoned"
)

// Duration returns the span's execution time in seconds.
func (s Span) Duration() float64 { return s.End - s.Start }

// QueueLatency returns the time the task spent between launch and
// execution in seconds.
func (s Span) QueueLatency() float64 { return s.Start - s.Launch }

// Failure records one task-failure event for telemetry: a panicked
// attempt, a straggler flag, or a poisoned cancellation.
type Failure struct {
	// Task is the graph ID of the failed task.
	Task int64
	// Name and Phase identify what failed.
	Name, Phase string
	// Msg is the event detail (the recovered panic value for panics).
	Msg string
	// Kind classifies the event: FailurePanic (default for legacy
	// records), FailureStraggler, or FailureCancelled.
	Kind string
	// Attempt is the zero-based execution attempt the event belongs to.
	Attempt int
	// Final marks the event that made the failure permanent (the attempt
	// that exhausted the retry budget, or a cancellation).
	Final bool
}

// Failure kinds.
const (
	FailurePanic     = "panic"
	FailureStraggler = "straggler"
	FailureCancelled = "cancelled"
	// FailureSDC records a silent-data-corruption checksum alarm (raised
	// by core's ABFT verification, not by the failing task itself).
	FailureSDC = "sdc"
)

// Recorder collects spans and failures from a concurrent execution. All
// methods are safe for concurrent use; recording is one short critical
// section per task.
type Recorder struct {
	epoch time.Time

	mu       sync.Mutex
	spans    []Span
	failures []Failure
}

// NewRecorder returns an empty recorder whose epoch is now.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now()}
}

// Now returns seconds elapsed since the recorder's epoch.
func (r *Recorder) Now() float64 {
	return time.Since(r.epoch).Seconds()
}

// Record appends one completed span.
func (r *Recorder) Record(s Span) {
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// RecordFailure appends one task failure.
func (r *Recorder) RecordFailure(f Failure) {
	r.mu.Lock()
	r.failures = append(r.failures, f)
	r.mu.Unlock()
}

// Spans returns a snapshot of the recorded spans, sorted by task ID.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	out := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Failures returns a snapshot of the recorded failures, in record order.
func (r *Recorder) Failures() []Failure {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Failure(nil), r.failures...)
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Counter is a lightweight atomic event counter.
type Counter struct{ n atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.n.Load() }

// Timer accumulates elapsed wall time across concurrent sections.
type Timer struct {
	ns    atomic.Int64
	count atomic.Int64
}

// Observe adds one completed section of duration d.
func (t *Timer) Observe(d time.Duration) {
	t.ns.Add(int64(d))
	t.count.Add(1)
}

// ObserveN adds n sections totalling duration d, so a batched code path
// can attribute one measured wall time across its members with two
// atomic adds instead of 2n.
func (t *Timer) ObserveN(d time.Duration, n int64) {
	t.ns.Add(int64(d))
	t.count.Add(n)
}

// Time runs fn and observes its duration.
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.Observe(time.Since(start))
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.ns.Load()) }

// Count returns the number of observed sections.
func (t *Timer) Count() int64 { return t.count.Load() }

// TimerSnapshot is a point-in-time copy of a Timer, safe to pass around
// after the timer keeps accumulating.
type TimerSnapshot struct {
	Total time.Duration
	Count int64
}

// Snapshot returns the timer's current totals.
func (t *Timer) Snapshot() TimerSnapshot {
	return TimerSnapshot{Total: time.Duration(t.ns.Load()), Count: t.count.Load()}
}

// Mean returns the average observed duration, or 0 with no observations.
func (s TimerSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}
