package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterAndTimer(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	c.Add(10)
	if got := c.Load(); got != 810 {
		t.Fatalf("Counter = %d, want 810", got)
	}

	var tm Timer
	tm.Observe(3 * time.Millisecond)
	tm.Time(func() {})
	if tm.Count() != 2 {
		t.Fatalf("Timer count = %d", tm.Count())
	}
	if tm.Total() < 3*time.Millisecond {
		t.Fatalf("Timer total = %v", tm.Total())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		g := g
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := int64(g*25 + i)
				now := r.Now()
				r.Record(Span{ID: id, Name: "t", Launch: now, Start: now, End: now})
			}
		}()
	}
	wg.Wait()
	spans := r.Spans()
	if len(spans) != 100 || r.Len() != 100 {
		t.Fatalf("spans = %d", len(spans))
	}
	for i, s := range spans {
		if s.ID != int64(i) {
			t.Fatalf("spans not sorted by ID: %d at %d", s.ID, i)
		}
	}
	r.RecordFailure(Failure{Task: 3, Name: "t", Msg: "boom"})
	if f := r.Failures(); len(f) != 1 || f[0].Msg != "boom" {
		t.Fatalf("failures = %+v", f)
	}
}

// diamond builds the spans and deps of a 4-task diamond:
//
//	0 (1s) → {1 (2s), 2 (5s)} → 3 (1s)
//
// Critical path 0→2→3, length 7.
func diamond() ([]Span, [][]int64) {
	spans := []Span{
		{ID: 0, Name: "init", Phase: "setup", Worker: 0, Launch: 0, Start: 0, End: 1},
		{ID: 1, Name: "fast", Phase: "iter", Worker: 1, Launch: 0, Start: 1, End: 3},
		{ID: 2, Name: "slow", Phase: "iter", Worker: 0, Launch: 0, Start: 1, End: 6},
		{ID: 3, Name: "join", Phase: "iter", Worker: 0, Launch: 0, Start: 6, End: 7},
	}
	deps := [][]int64{nil, {0}, {0}, {1, 2}}
	return spans, deps
}

func TestAnalyzeCriticalPath(t *testing.T) {
	spans, deps := diamond()
	rep := Analyze(spans, deps)
	if rep.Tasks != 4 {
		t.Fatalf("Tasks = %d", rep.Tasks)
	}
	if rep.WallTime != 7 {
		t.Fatalf("WallTime = %g, want 7", rep.WallTime)
	}
	if rep.TotalBusy != 9 {
		t.Fatalf("TotalBusy = %g, want 9", rep.TotalBusy)
	}
	if rep.CriticalPathTime != 7 {
		t.Fatalf("CriticalPathTime = %g, want 7", rep.CriticalPathTime)
	}
	wantPath := []int64{0, 2, 3}
	if len(rep.CriticalPath) != 3 {
		t.Fatalf("CriticalPath = %v, want %v", rep.CriticalPath, wantPath)
	}
	for i, id := range wantPath {
		if rep.CriticalPath[i] != id {
			t.Fatalf("CriticalPath = %v, want %v", rep.CriticalPath, wantPath)
		}
	}
	// Task 1 (2s) can slip 3s before it gates the join.
	wantSlack := []float64{0, 3, 0, 0}
	for i, s := range wantSlack {
		if math.Abs(rep.Slack[i]-s) > 1e-12 {
			t.Fatalf("Slack = %v, want %v", rep.Slack, wantSlack)
		}
	}
	if len(rep.ByName) != 4 || rep.ByName[0].Name != "slow" || rep.ByName[0].CritCount != 1 {
		t.Fatalf("ByName = %+v", rep.ByName)
	}
	if len(rep.ByPhase) != 2 || rep.ByPhase[0].Name != "iter" || rep.ByPhase[0].Count != 3 {
		t.Fatalf("ByPhase = %+v", rep.ByPhase)
	}
	if len(rep.Workers) != 2 || rep.Workers[0].Busy != 7 || rep.Workers[1].Busy != 2 {
		t.Fatalf("Workers = %+v", rep.Workers)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestAnalyzeEmptyAndPartial(t *testing.T) {
	rep := Analyze(nil, nil)
	if rep.Tasks != 0 || rep.WallTime != 0 || rep.CriticalPathTime != 0 {
		t.Fatalf("empty analysis: %+v", rep)
	}
	// A graph node with no span (never executed) contributes zero.
	spans := []Span{{ID: 0, Name: "only", Start: 0, End: 2}}
	rep = Analyze(spans, [][]int64{nil, {0}})
	if rep.CriticalPathTime != 2 {
		t.Fatalf("partial analysis CPM = %g", rep.CriticalPathTime)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	spans, _ := diamond()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", decoded.DisplayTimeUnit)
	}
	var events, meta int
	for _, e := range decoded.TraceEvents {
		switch e.Ph {
		case "X":
			events++
			if e.Dur <= 0 {
				t.Fatalf("event %q has non-positive duration", e.Name)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	if events != len(spans) {
		t.Fatalf("%d duration events for %d spans", events, len(spans))
	}
	// process_name + one thread_name per worker (2 workers).
	if meta != 3 {
		t.Fatalf("%d metadata events, want 3", meta)
	}
	// The slow task: 5 s = 5e6 µs.
	found := false
	for _, e := range decoded.TraceEvents {
		if e.Name == "slow" && e.Ph == "X" {
			found = true
			if e.Ts != 1e6 || e.Dur != 5e6 {
				t.Fatalf("slow event ts=%g dur=%g", e.Ts, e.Dur)
			}
		}
	}
	if !found {
		t.Fatal("slow event missing")
	}
}
