// Package obs is the runtime observability layer: lightweight counters
// and timers, a wall-clock span recorder the task runtime feeds, a
// critical-path analyzer over recorded executions, and a Chrome-trace
// (chrome://tracing / Perfetto) exporter.
//
// The package deliberately depends on nothing but the standard library,
// so both the real runtime (package taskrt) and the discrete-event
// simulator (package sim) can produce Spans without an import cycle:
// taskrt records real wall-clock spans, sim records simulated-schedule
// spans, and the same analysis and export code consumes either.
//
// Times are float64 seconds on a common epoch — time since the
// Recorder's creation for real spans, simulated time zero for simulated
// spans.
package obs
