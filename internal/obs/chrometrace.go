package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome-trace export: the JSON object format understood by
// chrome://tracing and by Perfetto's legacy importer
// (https://ui.perfetto.dev — drag the file in). Each span becomes one
// complete ("X") duration event on the row of its executor; timestamps
// are microseconds.

type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	// Dur must not be omitempty: poisoned/cancelled tasks record
	// zero-duration "X" events, and an X event without a dur field is
	// rendered as garbage (or dropped) by Chrome-trace consumers.
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace writes spans as Chrome-trace JSON. One row (thread)
// per worker; each event carries the task's phase label, mapped
// processor, and queue latency in its args for inspection in the UI.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	const usec = 1e6
	tf := traceFile{DisplayTimeUnit: "ms"}
	workers := map[int]bool{}
	for _, s := range spans {
		workers[s.Worker] = true
		cat := s.Phase
		if cat == "" {
			cat = "task"
		}
		args := map[string]any{
			"task":     s.ID,
			"phase":    s.Phase,
			"proc":     s.Proc,
			"queue_us": s.QueueLatency() * usec,
		}
		if s.Outcome != OutcomeOK {
			args["outcome"] = s.Outcome
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: s.Name, Cat: cat, Ph: "X",
			Ts: s.Start * usec, Dur: s.Duration() * usec,
			Pid: 0, Tid: s.Worker,
			Args: args,
		})
	}
	// Name the process and each worker row.
	ids := make([]int, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	meta := []traceEvent{{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "kdrsolvers"},
	}}
	for _, id := range ids {
		// Worker -1 is the synthetic row for tasks cancelled by poison
		// propagation — they never ran on a real worker.
		name := fmt.Sprintf("worker %d", id)
		if id < 0 {
			name = "cancelled"
		}
		meta = append(meta, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: id,
			Args: map[string]any{"name": name},
		})
	}
	tf.TraceEvents = append(meta, tf.TraceEvents...)

	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}
