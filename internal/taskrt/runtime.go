package taskrt

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/obs"
	"kdrsolvers/internal/region"
)

// TaskSpec describes one task launch.
type TaskSpec struct {
	// Name labels the task kind for diagnostics and the recorded graph.
	Name string
	// Phase optionally labels the solver phase the task belongs to; an
	// empty Phase inherits the runtime's current phase (SetPhase).
	Phase string
	// Proc is the simulated processor the mapper chose for the task.
	Proc int
	// Cost is the task's simulated compute time in seconds.
	Cost float64
	// Refs declares every piece of data the task touches. The runtime
	// derives dependences from these; a task must not touch data it does
	// not declare.
	Refs []region.Ref
	// Run performs the task's real computation and returns its scalar
	// result (delivered through the launch's Future). A nil Run records
	// the task in the graph without any real work.
	Run func() float64
	// Host marks the task as host-side future arithmetic (see Node.Host).
	Host bool
}

// Stats counts runtime activity, exposed for tests and ablation studies.
type Stats struct {
	// Launched is the number of tasks launched.
	Launched int64
	// DepEdges is the number of dependence edges discovered.
	DepEdges int64
	// AnalysisScans is the number of history entries examined by the
	// interference analysis.
	AnalysisScans int64
	// TraceReplays is the number of tasks launched inside a memoized
	// trace.
	TraceReplays int64
	// Failed is the number of tasks whose body panicked. The first
	// failure's detail is in Err; per-task failure records go to the
	// attached obs.Recorder.
	Failed int64
}

// histKey identifies one field of one region in the dependence history.
type histKey struct {
	region region.ID
	field  string
}

// histEntry is one prior access recorded for interference analysis.
type histEntry struct {
	task   int64
	subset index.IntervalSet
	priv   region.Privilege
}

// taskState tracks an incomplete task's scheduling state. Name, phase,
// proc, and the recorder are copied out of the spec at launch so that
// execution and failure reporting never need the runtime lock.
type taskState struct {
	id      int64
	name    string
	phase   string
	proc    int
	run     func() float64
	future  *Future
	pending int
	succs   []*taskState
	rec     *obs.Recorder
	launch  float64 // recorder time at launch (valid when rec != nil)
}

// Runtime launches tasks, derives their dependence graph from region
// references, executes them concurrently on a goroutine pool, and records
// the annotated graph for the simulator. The zero value is not usable;
// call New.
//
// Launch, Drain, BeginTrace, EndTrace, and Graph are safe for concurrent
// use, though the usual client is a single solver goroutine.
type Runtime struct {
	mu      sync.Mutex
	hist    map[histKey][]histEntry
	tasks   map[int64]*taskState // incomplete tasks only
	graph   Graph
	stats   Stats
	wg      sync.WaitGroup
	workers chan int // pool of worker IDs; len = concurrency limit
	traces  map[string]bool
	replay  bool
	tracing bool
	err     error
	rec     *obs.Recorder
	phase   string
}

// New returns an empty runtime executing up to GOMAXPROCS tasks
// concurrently.
func New() *Runtime {
	nw := runtime.GOMAXPROCS(0)
	workers := make(chan int, nw)
	for w := 0; w < nw; w++ {
		workers <- w
	}
	return &Runtime{
		hist:    make(map[histKey][]histEntry),
		tasks:   make(map[int64]*taskState),
		workers: workers,
		traces:  make(map[string]bool),
	}
}

// SetRecorder attaches an observability recorder: every task executed
// from now on records a wall-clock span (launch, start, end, worker)
// and failures are reported as telemetry. A nil recorder disables
// recording. Tasks launched before the call are not back-filled.
func (rt *Runtime) SetRecorder(r *obs.Recorder) {
	rt.mu.Lock()
	rt.rec = r
	rt.mu.Unlock()
}

// Recorder returns the attached recorder, or nil.
func (rt *Runtime) Recorder() *obs.Recorder {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.rec
}

// SetPhase labels subsequently launched tasks with a solver-phase name
// (recorded on Node.Phase and in spans). Specs carrying their own Phase
// override it.
func (rt *Runtime) SetPhase(label string) {
	rt.mu.Lock()
	rt.phase = label
	rt.mu.Unlock()
}

// Launch submits a task. Dependence analysis against previously launched
// tasks happens immediately; execution happens asynchronously once all
// dependences complete. The returned future delivers Run's result.
func (rt *Runtime) Launch(spec TaskSpec) *Future {
	fut := newFuture()

	rt.mu.Lock()
	id := int64(len(rt.graph.Nodes))
	depBytes := make(map[int64]int64)
	for _, ref := range spec.Refs {
		rt.analyze(id, ref, depBytes)
	}

	deps := make([]int64, 0, len(depBytes))
	for d := range depBytes {
		deps = append(deps, d)
	}
	sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
	bytes := make([]int64, len(deps))
	for i, d := range deps {
		bytes[i] = depBytes[d]
	}
	phase := spec.Phase
	if phase == "" {
		phase = rt.phase
	}
	rt.graph.Nodes = append(rt.graph.Nodes, Node{
		ID: id, Name: spec.Name, Phase: phase, Proc: spec.Proc, Cost: spec.Cost,
		Deps: deps, DepBytes: bytes, Traced: rt.replay, Host: spec.Host,
	})
	rt.stats.Launched++
	rt.stats.DepEdges += int64(len(deps))
	if rt.replay {
		rt.stats.TraceReplays++
	}

	ts := &taskState{
		id: id, name: spec.Name, phase: phase, proc: spec.Proc,
		run: spec.Run, future: fut, rec: rt.rec,
	}
	if ts.rec != nil {
		ts.launch = ts.rec.Now()
	}
	for _, d := range deps {
		if pred, live := rt.tasks[d]; live {
			pred.succs = append(pred.succs, ts)
			ts.pending++
		}
	}
	rt.tasks[id] = ts
	rt.wg.Add(1)
	ready := ts.pending == 0
	rt.mu.Unlock()

	if ready {
		go rt.execute(ts)
	}
	return fut
}

// analyze records dependences of a new reference against the history and
// updates the history, all under rt.mu.
func (rt *Runtime) analyze(id int64, ref region.Ref, depBytes map[int64]int64) {
	key := histKey{ref.Region, ref.Field}
	entries := rt.hist[key]
	kept := entries[:0]
	for _, e := range entries {
		rt.stats.AnalysisScans++
		if e.task == id {
			// Another reference of the task being launched; a task never
			// depends on itself.
			kept = append(kept, e)
			continue
		}
		if region.Conflicts(e.priv, ref.Priv) && e.subset.Overlaps(ref.Subset) {
			n := depBytes[e.task]
			// Data flows along the edge only when the predecessor wrote
			// and the successor actually reads (RO/RW); WriteDiscard and
			// ReduceSum need ordering but no incoming accumulator data.
			if e.priv.Writes() && (ref.Priv == region.ReadOnly || ref.Priv == region.ReadWrite) {
				n += region.VectorBytesOf(e.subset.Intersect(ref.Subset))
			}
			depBytes[e.task] = n
		}
		// A new writer shadows the covered part of every older entry:
		// any later task conflicting there also conflicts with the new
		// writer, and ordering through it is transitive (and the new
		// writer holds the covered part's current data). Shrinking —
		// rather than only dropping fully-covered entries — keeps the
		// history bounded when writers touch pieces of a region that
		// long-lived readers span, and routes each future read to the
		// writer that actually produced each part.
		if ref.Priv.Writes() && e.subset.Overlaps(ref.Subset) {
			e.subset = e.subset.Subtract(ref.Subset)
			if e.subset.Empty() {
				continue // fully shadowed
			}
		}
		kept = append(kept, e)
	}
	rt.hist[key] = append(kept, histEntry{task: id, subset: ref.Subset, priv: ref.Priv})
}

// execute runs one ready task and then releases its successors.
func (rt *Runtime) execute(ts *taskState) {
	w := <-rt.workers
	var start float64
	if ts.rec != nil {
		start = ts.rec.Now()
	}
	val := rt.runGuarded(ts)
	if ts.rec != nil {
		ts.rec.Record(obs.Span{
			ID: ts.id, Name: ts.name, Phase: ts.phase, Proc: ts.proc,
			Worker: w, Launch: ts.launch, Start: start, End: ts.rec.Now(),
		})
	}
	rt.workers <- w
	ts.future.set(val)

	rt.mu.Lock()
	delete(rt.tasks, ts.id)
	var ready []*taskState
	for _, s := range ts.succs {
		s.pending--
		if s.pending == 0 {
			ready = append(ready, s)
		}
	}
	rt.mu.Unlock()

	for _, s := range ready {
		go rt.execute(s)
	}
	rt.wg.Done()
}

// runGuarded executes the task body, converting a panic into a recorded
// runtime error so one faulty kernel cannot crash the process or
// deadlock future waiters. Failed tasks deliver NaN.
func (rt *Runtime) runGuarded(ts *taskState) (val float64) {
	if ts.run == nil {
		return 0
	}
	defer func() {
		if r := recover(); r != nil {
			val = math.NaN()
			if ts.rec != nil {
				ts.rec.RecordFailure(obs.Failure{
					Task: ts.id, Name: ts.name, Phase: ts.phase,
					Msg: fmt.Sprint(r),
				})
			}
			rt.mu.Lock()
			rt.stats.Failed++
			if rt.err == nil {
				rt.err = fmt.Errorf("taskrt: task %d (%s) panicked: %v", ts.id, ts.name, r)
			}
			rt.mu.Unlock()
		}
	}()
	return ts.run()
}

// Drain blocks until every launched task has completed.
func (rt *Runtime) Drain() { rt.wg.Wait() }

// Err returns the first task failure, if any. Successors of a failed task
// still run (typically on NaN-poisoned data); callers that care should
// check Err after Drain.
func (rt *Runtime) Err() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.err
}

// Graph returns a snapshot of the recorded task graph. Call Drain first
// if the graph must reflect a quiescent state. The snapshot is O(1):
// nodes are immutable once recorded, so the returned graph shares their
// storage (callers must not modify it) and is unaffected by later
// launches.
func (rt *Runtime) Graph() Graph {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := len(rt.graph.Nodes)
	return Graph{Nodes: rt.graph.Nodes[:n:n]}
}

// Stats returns a snapshot of the runtime counters.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stats
}

// BeginTrace opens a trace scope. The first execution of a given key
// records the trace; later executions replay it, marking their tasks as
// memoized (lower launch overhead in the simulator). Traces must not
// nest.
func (rt *Runtime) BeginTrace(key string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.tracing {
		panic("taskrt: traces must not nest")
	}
	rt.tracing = true
	rt.replay = rt.traces[key]
	rt.traces[key] = true
}

// EndTrace closes the current trace scope.
func (rt *Runtime) EndTrace() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !rt.tracing {
		panic("taskrt: EndTrace without BeginTrace")
	}
	rt.tracing = false
	rt.replay = false
}

// String summarizes the runtime state.
func (rt *Runtime) String() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return fmt.Sprintf("runtime(%d tasks, %d edges)", rt.stats.Launched, rt.stats.DepEdges)
}

// IndexLaunch launches one point task per color of a color space
// [0, n), the runtime analogue of Legion's index task launches (Soi et
// al., SC'21): a single logical operation over a partition becomes n
// point tasks whose dependences the runtime derives individually. point
// builds the spec for one color. The returned futures are in color
// order.
func (rt *Runtime) IndexLaunch(n int, point func(color int) TaskSpec) []*Future {
	futs := make([]*Future, n)
	for c := 0; c < n; c++ {
		futs[c] = rt.Launch(point(c))
	}
	return futs
}
