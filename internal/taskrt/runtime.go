package taskrt

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"kdrsolvers/internal/fault"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/obs"
	"kdrsolvers/internal/region"
)

// ErrPoisoned marks a task that never executed because a task it
// transitively depends on failed permanently. Its future resolves to NaN
// with an error wrapping ErrPoisoned and naming the root failure.
var ErrPoisoned = errors.New("taskrt: task cancelled: upstream task failed")

// TaskSpec describes one task launch.
type TaskSpec struct {
	// Name labels the task kind for diagnostics and the recorded graph.
	Name string
	// Phase optionally labels the solver phase the task belongs to; an
	// empty Phase inherits the runtime's current phase (SetPhase).
	Phase string
	// Proc is the simulated processor the mapper chose for the task.
	Proc int
	// Cost is the task's simulated compute time in seconds.
	Cost float64
	// Refs declares every piece of data the task touches. The runtime
	// derives dependences from these; a task must not touch data it does
	// not declare.
	Refs []region.Ref
	// Run performs the task's real computation and returns its scalar
	// result (delivered through the launch's Future). A nil Run records
	// the task in the graph without any real work.
	Run func() float64
	// Host marks the task as host-side future arithmetic (see Node.Host).
	Host bool
	// Retryable declares the body idempotent: it fully overwrites its
	// outputs and reads nothing it writes, so re-executing a failed
	// attempt is safe. Only retryable tasks participate in the runtime's
	// retry policy; a non-retryable failure is immediately permanent.
	Retryable bool
}

// RetryPolicy bounds re-execution of retryable task bodies.
type RetryPolicy struct {
	// MaxAttempts is the total number of execution attempts per retryable
	// task (first run included). Values below 2 disable retry.
	MaxAttempts int
	// Backoff is the delay before re-execution, doubled each further
	// attempt. Zero retries immediately.
	Backoff time.Duration
}

// Stats counts runtime activity, exposed for tests and ablation studies.
type Stats struct {
	// Launched is the number of tasks launched.
	Launched int64
	// DepEdges is the number of dependence edges discovered.
	DepEdges int64
	// AnalysisScans is the number of history entries examined by the
	// interference analysis.
	AnalysisScans int64
	// TraceReplays is the number of tasks launched inside a memoized
	// trace.
	TraceReplays int64
	// Failed is the number of tasks that failed permanently (the body
	// panicked and the retry budget, if any, was exhausted). Every
	// permanent failure is aggregated into Err; per-attempt records go to
	// the attached obs.Recorder.
	Failed int64
	// Retries is the number of re-execution attempts of retryable tasks.
	Retries int64
	// Poisoned is the number of tasks cancelled without executing because
	// an upstream task failed permanently.
	Poisoned int64
	// Stragglers is the number of tasks flagged by the watchdog for
	// exceeding the wall-clock budget.
	Stragglers int64
}

// histKey identifies one field of one region in the dependence history.
type histKey struct {
	region region.ID
	field  string
}

// histEntry is one prior access recorded for interference analysis.
type histEntry struct {
	task   int64
	subset index.IntervalSet
	priv   region.Privilege
}

// taskState tracks an incomplete task's scheduling state. Name, phase,
// proc, and the recorder are copied out of the spec at launch so that
// execution and failure reporting never need the runtime lock.
type taskState struct {
	id        int64
	name      string
	phase     string
	proc      int
	run       func() float64
	future    *Future
	pending   int
	succs     []*taskState
	rec       *obs.Recorder
	launch    float64 // recorder time at launch (valid when rec != nil)
	retryable bool
	inj       fault.Injection
	poison    error // set under rt.mu before the task becomes ready
}

// Runtime launches tasks, derives their dependence graph from region
// references, executes them concurrently on a goroutine pool, and records
// the annotated graph for the simulator. The zero value is not usable;
// call New.
//
// Launch, Drain, BeginTrace, EndTrace, and Graph are safe for concurrent
// use, though the usual client is a single solver goroutine.
type Runtime struct {
	mu       sync.Mutex
	hist     map[histKey][]histEntry
	tasks    map[int64]*taskState // incomplete tasks only
	graph    Graph
	stats    Stats
	wg       sync.WaitGroup
	workers  chan int // pool of worker IDs; len = concurrency limit
	traces   map[string]bool
	replay   bool
	tracing  bool
	errs     []error // permanent task failures, in completion order
	rec      *obs.Recorder
	phase    string
	retry    RetryPolicy
	injector *fault.Injector
	watchdog time.Duration
}

// New returns an empty runtime executing up to GOMAXPROCS tasks
// concurrently.
func New() *Runtime {
	nw := runtime.GOMAXPROCS(0)
	workers := make(chan int, nw)
	for w := 0; w < nw; w++ {
		workers <- w
	}
	return &Runtime{
		hist:    make(map[histKey][]histEntry),
		tasks:   make(map[int64]*taskState),
		workers: workers,
		traces:  make(map[string]bool),
	}
}

// SetRecorder attaches an observability recorder: every task executed
// from now on records a wall-clock span (launch, start, end, worker,
// outcome) and failures are reported as telemetry. A nil recorder
// disables recording. Tasks launched before the call are not back-filled.
func (rt *Runtime) SetRecorder(r *obs.Recorder) {
	rt.mu.Lock()
	rt.rec = r
	rt.mu.Unlock()
}

// Recorder returns the attached recorder, or nil.
func (rt *Runtime) Recorder() *obs.Recorder {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.rec
}

// SetRetryPolicy bounds re-execution of retryable task bodies: a task
// whose body panics is re-run (after backoff) until it succeeds or the
// attempt cap is reached, at which point the failure becomes permanent.
// The policy applies to tasks executed after the call.
func (rt *Runtime) SetRetryPolicy(p RetryPolicy) {
	rt.mu.Lock()
	rt.retry = p
	rt.mu.Unlock()
}

// SetFaultInjector installs a fault injector consulted once per launch,
// under the launch lock, so a single-threaded launcher gets a
// deterministic fault schedule. A nil injector disables injection.
func (rt *Runtime) SetFaultInjector(in *fault.Injector) {
	rt.mu.Lock()
	rt.injector = in
	rt.mu.Unlock()
}

// SetWatchdog flags tasks whose execution exceeds budget: Stats.Stragglers
// is incremented and a "straggler" failure record goes to the attached
// recorder. The task itself is not interrupted (goroutines cannot be
// killed safely); the flag is the signal a scheduler or operator acts on.
// A zero budget disables the watchdog.
func (rt *Runtime) SetWatchdog(budget time.Duration) {
	rt.mu.Lock()
	rt.watchdog = budget
	rt.mu.Unlock()
}

// SetPhase labels subsequently launched tasks with a solver-phase name
// (recorded on Node.Phase and in spans). Specs carrying their own Phase
// override it.
func (rt *Runtime) SetPhase(label string) {
	rt.mu.Lock()
	rt.phase = label
	rt.mu.Unlock()
}

// Launch submits a task. Dependence analysis against previously launched
// tasks happens immediately; execution happens asynchronously once all
// dependences complete. The returned future delivers Run's result.
func (rt *Runtime) Launch(spec TaskSpec) *Future {
	fut := newFuture()

	rt.mu.Lock()
	id := int64(len(rt.graph.Nodes))
	depBytes := make(map[int64]int64)
	for _, ref := range spec.Refs {
		rt.analyze(id, ref, depBytes)
	}

	deps := make([]int64, 0, len(depBytes))
	for d := range depBytes {
		deps = append(deps, d)
	}
	sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
	bytes := make([]int64, len(deps))
	for i, d := range deps {
		bytes[i] = depBytes[d]
	}
	phase := spec.Phase
	if phase == "" {
		phase = rt.phase
	}
	rt.graph.Nodes = append(rt.graph.Nodes, Node{
		ID: id, Name: spec.Name, Phase: phase, Proc: spec.Proc, Cost: spec.Cost,
		Deps: deps, DepBytes: bytes, Traced: rt.replay, Host: spec.Host,
	})
	rt.stats.Launched++
	rt.stats.DepEdges += int64(len(deps))
	if rt.replay {
		rt.stats.TraceReplays++
	}

	ts := &taskState{
		id: id, name: spec.Name, phase: phase, proc: spec.Proc,
		run: spec.Run, future: fut, rec: rt.rec, retryable: spec.Retryable,
	}
	if rt.injector != nil {
		ts.inj = rt.injector.Decide(spec.Name, phase)
	}
	if ts.rec != nil {
		ts.launch = ts.rec.Now()
	}
	for _, d := range deps {
		if pred, live := rt.tasks[d]; live {
			pred.succs = append(pred.succs, ts)
			ts.pending++
		}
	}
	rt.tasks[id] = ts
	rt.wg.Add(1)
	ready := ts.pending == 0
	rt.mu.Unlock()

	if ready {
		go rt.execute(ts)
	}
	return fut
}

// analyze records dependences of a new reference against the history and
// updates the history, all under rt.mu.
func (rt *Runtime) analyze(id int64, ref region.Ref, depBytes map[int64]int64) {
	key := histKey{ref.Region, ref.Field}
	entries := rt.hist[key]
	kept := entries[:0]
	for _, e := range entries {
		rt.stats.AnalysisScans++
		if e.task == id {
			// Another reference of the task being launched; a task never
			// depends on itself.
			kept = append(kept, e)
			continue
		}
		if region.Conflicts(e.priv, ref.Priv) && e.subset.Overlaps(ref.Subset) {
			n := depBytes[e.task]
			// Data flows along the edge only when the predecessor wrote
			// and the successor actually reads (RO/RW); WriteDiscard and
			// ReduceSum need ordering but no incoming accumulator data.
			if e.priv.Writes() && (ref.Priv == region.ReadOnly || ref.Priv == region.ReadWrite) {
				n += region.VectorBytesOf(e.subset.Intersect(ref.Subset))
			}
			depBytes[e.task] = n
		}
		// A new writer shadows the covered part of every older entry:
		// any later task conflicting there also conflicts with the new
		// writer, and ordering through it is transitive (and the new
		// writer holds the covered part's current data). Shrinking —
		// rather than only dropping fully-covered entries — keeps the
		// history bounded when writers touch pieces of a region that
		// long-lived readers span, and routes each future read to the
		// writer that actually produced each part.
		if ref.Priv.Writes() && e.subset.Overlaps(ref.Subset) {
			e.subset = e.subset.Subtract(ref.Subset)
			if e.subset.Empty() {
				continue // fully shadowed
			}
		}
		kept = append(kept, e)
	}
	rt.hist[key] = append(kept, histEntry{task: id, subset: ref.Subset, priv: ref.Priv})
}

// execute runs one ready task — or skips it when poisoned — and then
// releases its successors.
func (rt *Runtime) execute(ts *taskState) {
	rt.mu.Lock()
	poison := ts.poison
	policy := rt.retry
	budget := rt.watchdog
	rt.mu.Unlock()

	if poison != nil {
		// Cancelled: the body never runs on garbage data. Record a
		// zero-duration span so traces show the hole where the task
		// would have been.
		rt.mu.Lock()
		rt.stats.Poisoned++
		rt.mu.Unlock()
		if ts.rec != nil {
			now := ts.rec.Now()
			ts.rec.Record(obs.Span{
				ID: ts.id, Name: ts.name, Phase: ts.phase, Proc: ts.proc,
				Worker: -1, Launch: ts.launch, Start: now, End: now,
				Outcome: obs.OutcomePoisoned,
			})
			ts.rec.RecordFailure(obs.Failure{
				Task: ts.id, Name: ts.name, Phase: ts.phase,
				Kind: obs.FailureCancelled, Msg: poison.Error(), Final: true,
			})
		}
		rt.complete(ts, math.NaN(), poison)
		return
	}

	w := <-rt.workers
	var start float64
	if ts.rec != nil {
		start = ts.rec.Now()
	}

	var wd *time.Timer
	if budget > 0 {
		wd = time.AfterFunc(budget, func() { rt.flagStraggler(ts, budget) })
	}

	maxAttempts := 1
	if ts.retryable && policy.MaxAttempts > 1 {
		maxAttempts = policy.MaxAttempts
	}
	var val float64
	var err error
	outcome := obs.OutcomeOK
	for attempt := 0; ; attempt++ {
		val, err = rt.runGuarded(ts, attempt)
		if err == nil {
			if attempt > 0 {
				outcome = obs.OutcomeRetried
			}
			break
		}
		final := attempt+1 >= maxAttempts
		if ts.rec != nil {
			ts.rec.RecordFailure(obs.Failure{
				Task: ts.id, Name: ts.name, Phase: ts.phase,
				Kind: obs.FailurePanic, Msg: err.Error(),
				Attempt: attempt, Final: final,
			})
		}
		if final {
			outcome = obs.OutcomeFailed
			val = math.NaN()
			err = fmt.Errorf("taskrt: task %d (%s) failed after %d attempt(s): %v",
				ts.id, ts.name, attempt+1, err)
			rt.mu.Lock()
			rt.stats.Failed++
			rt.errs = append(rt.errs, err)
			rt.mu.Unlock()
			break
		}
		rt.mu.Lock()
		rt.stats.Retries++
		rt.mu.Unlock()
		if policy.Backoff > 0 {
			time.Sleep(policy.Backoff << attempt)
		}
	}
	if wd != nil {
		wd.Stop()
	}
	if ts.rec != nil {
		ts.rec.Record(obs.Span{
			ID: ts.id, Name: ts.name, Phase: ts.phase, Proc: ts.proc,
			Worker: w, Launch: ts.launch, Start: start, End: ts.rec.Now(),
			Outcome: outcome,
		})
	}
	rt.workers <- w
	rt.complete(ts, val, err)
}

// complete resolves the task's future, poisons and releases its
// successors, and retires the task. A non-nil err marks the task as a
// permanent failure (or an already-poisoned cancellation): every direct
// successor is poisoned, and poison flows transitively because poisoned
// successors complete with their own non-nil error.
func (rt *Runtime) complete(ts *taskState, val float64, err error) {
	ts.future.resolve(val, err)

	rt.mu.Lock()
	delete(rt.tasks, ts.id)
	var ready []*taskState
	for _, s := range ts.succs {
		if err != nil && s.poison == nil {
			if errors.Is(err, ErrPoisoned) {
				s.poison = err // keep the root failure visible transitively
			} else {
				s.poison = fmt.Errorf("%w (root: task %d %s: %v)",
					ErrPoisoned, ts.id, ts.name, err)
			}
		}
		s.pending--
		if s.pending == 0 {
			ready = append(ready, s)
		}
	}
	rt.mu.Unlock()

	for _, s := range ready {
		go rt.execute(s)
	}
	rt.wg.Done()
}

// flagStraggler records that a task blew its wall-clock budget. It runs
// on the watchdog timer's goroutine, concurrently with the task.
func (rt *Runtime) flagStraggler(ts *taskState, budget time.Duration) {
	rt.mu.Lock()
	rt.stats.Stragglers++
	rt.mu.Unlock()
	if ts.rec != nil {
		ts.rec.RecordFailure(obs.Failure{
			Task: ts.id, Name: ts.name, Phase: ts.phase,
			Kind: obs.FailureStraggler,
			Msg:  fmt.Sprintf("running past the %v wall-clock budget", budget),
		})
	}
}

// runGuarded executes one attempt of the task body, applying any injected
// fault and converting a panic into an error so one faulty kernel cannot
// crash the process or deadlock future waiters.
func (rt *Runtime) runGuarded(ts *taskState, attempt int) (val float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			val, err = math.NaN(), fmt.Errorf("panic: %v", r)
		}
	}()
	inj := ts.inj
	if attempt > 0 && !inj.Sticky {
		inj = fault.Injection{} // transient fault: the retry runs clean
	}
	switch inj.Kind {
	case fault.Stall:
		time.Sleep(inj.Stall)
	case fault.Panic:
		panic(fmt.Sprintf("fault injected (task %d %s, attempt %d)", ts.id, ts.name, attempt))
	}
	if ts.run != nil {
		val = ts.run()
	}
	if inj.Kind == fault.NaN {
		val = math.NaN() // silent result corruption; no error is raised
	}
	return val, nil
}

// Drain blocks until every launched task has completed, executed,
// retried, or been cancelled. After Drain, Err reports the aggregate
// failure state of everything launched so far — "Drain then Err" is the
// runtime's postcondition check.
func (rt *Runtime) Drain() { rt.wg.Wait() }

// Err returns every distinct permanent task failure joined into one error
// (errors.Join), or nil if nothing has failed. Failures recovered by
// retry do not appear; cancelled successors are counted in
// Stats.Poisoned but not repeated here — the root failure already is.
// Call Drain first for a complete picture.
func (rt *Runtime) Err() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return errors.Join(rt.errs...)
}

// Graph returns a snapshot of the recorded task graph. Call Drain first
// if the graph must reflect a quiescent state. The snapshot is O(1):
// nodes are immutable once recorded, so the returned graph shares their
// storage (callers must not modify it) and is unaffected by later
// launches.
func (rt *Runtime) Graph() Graph {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := len(rt.graph.Nodes)
	return Graph{Nodes: rt.graph.Nodes[:n:n]}
}

// Stats returns a snapshot of the runtime counters.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stats
}

// BeginTrace opens a trace scope. The first execution of a given key
// records the trace; later executions replay it, marking their tasks as
// memoized (lower launch overhead in the simulator). Traces must not
// nest.
func (rt *Runtime) BeginTrace(key string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.tracing {
		panic("taskrt: traces must not nest")
	}
	rt.tracing = true
	rt.replay = rt.traces[key]
	rt.traces[key] = true
}

// EndTrace closes the current trace scope.
func (rt *Runtime) EndTrace() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !rt.tracing {
		panic("taskrt: EndTrace without BeginTrace")
	}
	rt.tracing = false
	rt.replay = false
}

// String summarizes the runtime state.
func (rt *Runtime) String() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return fmt.Sprintf("runtime(%d tasks, %d edges)", rt.stats.Launched, rt.stats.DepEdges)
}

// IndexLaunch launches one point task per color of a color space
// [0, n), the runtime analogue of Legion's index task launches (Soi et
// al., SC'21): a single logical operation over a partition becomes n
// point tasks whose dependences the runtime derives individually. point
// builds the spec for one color. The returned futures are in color
// order.
func (rt *Runtime) IndexLaunch(n int, point func(color int) TaskSpec) []*Future {
	futs := make([]*Future, n)
	for c := 0; c < n; c++ {
		futs[c] = rt.Launch(point(c))
	}
	return futs
}
