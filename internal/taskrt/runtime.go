package taskrt

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"kdrsolvers/internal/fault"
	"kdrsolvers/internal/index"
	"kdrsolvers/internal/obs"
	"kdrsolvers/internal/region"
)

// ErrPoisoned marks a task that never executed because a task it
// transitively depends on failed permanently. Its future resolves to NaN
// with an error wrapping ErrPoisoned and naming the root failure.
var ErrPoisoned = errors.New("taskrt: task cancelled: upstream task failed")

// TaskSpec describes one task launch.
type TaskSpec struct {
	// Name labels the task kind for diagnostics and the recorded graph.
	Name string
	// Phase optionally labels the solver phase the task belongs to; an
	// empty Phase inherits the runtime's current phase (SetPhase).
	Phase string
	// Proc is the simulated processor the mapper chose for the task.
	Proc int
	// Cost is the task's simulated compute time in seconds.
	Cost float64
	// Refs declares every piece of data the task touches. The runtime
	// derives dependences from these; a task must not touch data it does
	// not declare.
	Refs []region.Ref
	// Run performs the task's real computation and returns its scalar
	// result (delivered through the launch's Future). A nil Run records
	// the task in the graph without any real work.
	Run func() float64
	// Host marks the task as host-side future arithmetic (see Node.Host).
	Host bool
	// Retryable declares the body idempotent: it fully overwrites its
	// outputs and reads nothing it writes, so re-executing a failed
	// attempt is safe. Only retryable tasks participate in the runtime's
	// retry policy; a non-retryable failure is immediately permanent.
	Retryable bool
	// Detached skips creating a Future for the launch: the task's scalar
	// result is discarded on completion and Launch returns nil (a fully
	// detached LaunchBatch returns a nil slice). The bulk vector-update
	// launches of a solver iteration never read their futures; detaching
	// them removes the last allocation on the trace-replay launch path.
	Detached bool
	// Piece is 1 + the task's piece index for tasks that operate on one
	// piece of a partitioned vector, or 0 for tasks not associated with
	// one piece. The fault injector's piece filter keys on it.
	Piece int
	// Corrupt, when set, is invoked after a successful body run if the
	// injector chose a data-corruption fault (bitflip, scale) for this
	// launch: it applies the corruption to the task's output region data.
	// Tasks without the hook have their scalar result corrupted instead.
	Corrupt func(fault.Injection)
}

// RetryPolicy bounds re-execution of retryable task bodies.
type RetryPolicy struct {
	// MaxAttempts is the total number of execution attempts per retryable
	// task (first run included). Values below 2 disable retry.
	MaxAttempts int
	// Backoff is the delay before re-execution, doubled each further
	// attempt. Zero retries immediately. The doubling is clamped (see
	// backoffDelay) so a large attempt budget cannot overflow the delay
	// into a huge or negative sleep.
	Backoff time.Duration
}

// maxBackoffDelay caps one retry sleep. Doubling stops here; an
// explicitly larger configured base Backoff is honored as-is.
const maxBackoffDelay = 30 * time.Second

// backoffDelay returns the clamped exponential-backoff delay before
// re-executing attempt+1: base doubled per completed attempt, capped so
// the shift can neither overflow time.Duration nor grow past
// maxBackoffDelay (or past the configured base, whichever is larger).
func backoffDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	cap := maxBackoffDelay
	if base > cap {
		cap = base
	}
	// 2^30 × 1ns is already over a second; anything beyond the cap — and
	// any overflowed (non-positive) shift — clamps.
	if attempt > 30 {
		return cap
	}
	d := base << uint(attempt)
	if d <= 0 || d > cap {
		return cap
	}
	return d
}

// Stats counts runtime activity, exposed for tests and ablation studies.
type Stats struct {
	// Launched is the number of tasks launched.
	Launched int64
	// DepEdges is the number of dependence edges discovered.
	DepEdges int64
	// AnalysisScans is the number of history entries examined by the
	// interference analysis. Launches spliced from a memoized trace
	// perform no interference analysis and contribute nothing here.
	AnalysisScans int64
	// TraceReplays is the number of task launches spliced from a
	// memoized trace template instead of analyzed.
	TraceReplays int64
	// TraceHits counts trace instances replayed end to end from a
	// memoized template; TraceMisses counts instances that ran under
	// full analysis (recording, calibrating, or after a gap), and
	// TraceFallbacks counts instances that started replaying but hit a
	// fingerprint mismatch and fell back to analysis mid-instance.
	TraceHits, TraceMisses, TraceFallbacks int64
	// Failed is the number of tasks that failed permanently (the body
	// panicked and the retry budget, if any, was exhausted). Every
	// permanent failure is aggregated into Err; per-attempt records go to
	// the attached obs.Recorder.
	Failed int64
	// Retries is the number of re-execution attempts of retryable tasks.
	Retries int64
	// Poisoned is the number of tasks cancelled without executing because
	// an upstream task failed permanently.
	Poisoned int64
	// Stragglers is the number of tasks flagged by the watchdog for
	// exceeding the wall-clock budget.
	Stragglers int64
	// Corrupted is the number of tasks whose output data was silently
	// corrupted by an injected bitflip/scale fault. No error is raised for
	// these; the counter exists so chaos tests can assert the corruption
	// actually landed.
	Corrupted int64
}

// histKey identifies one field of one region in the dependence history.
type histKey struct {
	region region.ID
	field  string
}

// histEntry is one prior access recorded for interference analysis.
type histEntry struct {
	task   int64
	subset index.IntervalSet
	priv   region.Privilege
	// buf is the entry's private interval storage, reused every time a
	// writer shadow shrinks the subset so steady-state shrinking never
	// allocates.
	buf []index.Interval
}

// histShard holds one histKey's slice of the dependence history behind
// its own lock, so the interval-set work of concurrent launches on
// different keys proceeds in parallel instead of serializing on the
// global runtime mutex. Per-key work must still happen in task-ID order
// (dependences may only point backward); tickets enforce that: Launch
// enqueues the task's ID under the runtime lock (so queue order is ID
// order) and the analysis phase waits until its ticket reaches the
// head. A task waits only on smaller IDs, which never wait on larger
// ones, so the protocol cannot deadlock.
type histShard struct {
	mu      sync.Mutex
	cond    sync.Cond
	tickets []int64
	head    int // index of the current head ticket within tickets
	entries []histEntry
	scratch []index.Interval // subtraction workspace, reused per shrink
}

// enqueue appends a ticket. Caller holds rt.mu (ordering) but not sh.mu.
func (sh *histShard) enqueue(id int64) {
	sh.mu.Lock()
	sh.tickets = append(sh.tickets, id)
	sh.mu.Unlock()
}

// acquire blocks until id is at the head of the ticket queue and returns
// with sh.mu held.
func (sh *histShard) acquire(id int64) {
	sh.mu.Lock()
	for sh.tickets[sh.head] != id {
		sh.cond.Wait()
	}
}

// release pops the head ticket and releases sh.mu. The queue is a
// head-indexed slice rather than tickets[1:] reslicing: once it drains
// it resets to the front of the same backing array, so a steady launch
// rate enqueues forever without reallocating.
func (sh *histShard) release() {
	sh.head++
	if sh.head == len(sh.tickets) {
		sh.tickets = sh.tickets[:0]
		sh.head = 0
	}
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

// shrinkWriterShadow subtracts a new writer's subset from an older
// entry, reporting whether the entry is now fully shadowed (and should
// be dropped). The subtraction runs into the shard's scratch buffer and
// the result is copied into the entry's own reused storage, so the
// steady-state shrink — including the common full-shadow case, which
// produces nothing and copies nothing — is allocation-free. Caller
// holds sh.mu.
func (sh *histShard) shrinkWriterShadow(e *histEntry, by index.IntervalSet) bool {
	res, scratch := e.subset.SubtractInto(by, sh.scratch[:0])
	sh.scratch = scratch
	ivs := res.Intervals()
	if len(ivs) == 0 {
		return true
	}
	if cap(e.buf) < len(ivs) {
		e.buf = make([]index.Interval, len(ivs), len(ivs)+4)
	}
	e.buf = append(e.buf[:0], ivs...)
	e.subset = index.WrapIntervals(e.buf)
	return false
}

// analyze records dependences of one reference of task id against the
// shard's history and updates the history. Caller holds sh.mu via
// acquire. Returns the number of entries scanned.
func (sh *histShard) analyze(id int64, ref region.Ref, depBytes map[int64]int64) int {
	entries := sh.entries
	kept := entries[:0]
	scans := 0
	for _, e := range entries {
		scans++
		if e.task == id {
			// Another reference of the task being launched; a task never
			// depends on itself.
			kept = append(kept, e)
			continue
		}
		if region.Conflicts(e.priv, ref.Priv) && e.subset.Overlaps(ref.Subset) {
			n := depBytes[e.task]
			// Data flows along the edge only when the predecessor wrote
			// and the successor actually reads (RO/RW); WriteDiscard and
			// ReduceSum need ordering but no incoming accumulator data.
			if e.priv.Writes() && (ref.Priv == region.ReadOnly || ref.Priv == region.ReadWrite) {
				n += region.VectorBytesOf(e.subset.Intersect(ref.Subset))
			}
			depBytes[e.task] = n
		}
		// A new writer shadows the covered part of every older entry:
		// any later task conflicting there also conflicts with the new
		// writer, and ordering through it is transitive (and the new
		// writer holds the covered part's current data). Shrinking —
		// rather than only dropping fully-covered entries — keeps the
		// history bounded when writers touch pieces of a region that
		// long-lived readers span, and routes each future read to the
		// writer that actually produced each part.
		if ref.Priv.Writes() && e.subset.Overlaps(ref.Subset) {
			if sh.shrinkWriterShadow(&e, ref.Subset) {
				continue // fully shadowed
			}
		}
		kept = append(kept, e)
	}
	sh.entries = append(kept, histEntry{task: id, subset: ref.Subset, priv: ref.Priv})
	return scans
}

// record appends one reference of a trace-replayed task to the shard's
// history, applying the same writer-shadowing shrink as analyze but
// skipping the interference scan entirely — replay already knows the
// edges. Keeping the history current is what makes mid-instance
// fallback and post-trace launches see exactly the state a fully
// analyzed execution would have left. Caller holds sh.mu via acquire.
func (sh *histShard) record(id int64, ref region.Ref) {
	if ref.Priv.Writes() {
		entries := sh.entries
		kept := entries[:0]
		for _, e := range entries {
			if e.task != id && e.subset.Overlaps(ref.Subset) {
				if sh.shrinkWriterShadow(&e, ref.Subset) {
					continue
				}
			}
			kept = append(kept, e)
		}
		sh.entries = kept
	}
	sh.entries = append(sh.entries, histEntry{task: id, subset: ref.Subset, priv: ref.Priv})
}

// taskState tracks an incomplete task's scheduling state. Name, phase,
// proc, and the recorder are copied out of the spec at launch so that
// execution and failure reporting never need the runtime lock.
//
// taskStates are pooled: complete() recycles the state (and its owned
// scratch slices — deps, bytes, groups, ready — whose capacity survives
// the round trip) unless noRecycle pins it for an async reader. A state
// is safe to recycle at the end of its own complete(): every successor
// was handed off under rt.mu, the ID was unregistered, and execute()
// touches nothing after complete() returns.
type taskState struct {
	id        int64
	name      string
	phase     string
	proc      int
	run       func() float64
	future    *Future // nil for detached launches
	pending   int
	succs     []*taskState
	wired     bool // dependence wiring finished; eligible to run at pending==0
	rec       *obs.Recorder
	sess      *Session // the session that launched the task
	launch    float64  // recorder time at launch (valid when rec != nil)
	retryable bool
	inj       fault.Injection
	corrupt   func(fault.Injection)
	poison    error // set under rt.mu before the task becomes ready
	noRecycle bool  // an async reader (watchdog) may outlive complete()

	// exec is the state's pre-bound executor thunk, created once when the
	// state is first pooled. Spawning `go ts.exec()` passes a zero-argument
	// func value, which the compiler hands to the scheduler as-is; the
	// equivalent `go rt.execute(ts)` would heap-allocate a closure per
	// spawn to carry its arguments.
	exec func()

	// Per-launch scratch, owned by the state and reused across pool
	// round trips.
	groups  []keyGroup   // history keys of this launch's refs
	deps    []int64      // discovered or spliced dependence edges
	bytes   []int64      // bytes flowing along deps (parallel slice)
	ready   []*taskState // successors released by this task's completion
	splice  bool         // deps came from a trace template
	scans   int          // history entries examined by analysis
	atEpoch int64        // trace-scope epoch at launch (at != nil)
	trPos   int          // position within the trace instance
	at      *activeTrace // the trace scope observed at launch, if any
}

// keyGroup is one distinct history key of a launch. The refs mapping to
// the key are not stored — the analysis phase re-walks the spec's refs
// per group, which for the tiny ref lists of real launches is cheaper
// than materializing per-group ref slices and keeps the launch path
// allocation-free.
type keyGroup struct {
	shard *histShard
	key   histKey
}

// launchScratch is the per-launch transient workspace, pooled on the
// runtime so neither Launch nor LaunchBatch allocates it.
type launchScratch struct {
	depBytes map[int64]int64
	states   []*taskState
	ready    []*taskState
}

// Runtime launches tasks, derives their dependence graph from region
// references, executes them concurrently on a goroutine pool, and records
// the annotated graph for the simulator. The zero value is not usable;
// call New.
//
// Launch, LaunchBatch, Drain, and Graph are safe for concurrent use.
// Trace scopes (BeginTrace/EndTrace) assume a single launching goroutine
// between them — the usual solver client; concurrent launchers may be
// used outside trace scopes.
type Runtime struct {
	mu        sync.Mutex
	hist      map[histKey]*histShard
	tasks     map[int64]*taskState // incomplete tasks only
	graph     Graph
	nextID    int64          // next task ID to assign
	nextFlush int64          // next task ID to append to graph.Nodes
	held      map[int64]Node // finalized nodes waiting on smaller IDs
	stats     Stats
	wg      sync.WaitGroup
	workers chan int // pool of worker IDs; len = concurrency limit
	// def is the built-in session the runtime-level session-scoped
	// methods (SetPhase, Err, BeginTrace, SetFaultInjector, ...) operate
	// on; sessions lists every live session, def first. The error
	// window, poison ledger, quiescence tracking, phase label, trace
	// state, injector, and recorder all live per session — see Session.
	def      *Session
	sessions []*Session

	// retain controls graph retention (on by default): when off, launches
	// skip Node construction entirely — the zero-allocation configuration
	// for replay-dominated hot loops that never call Graph.
	retain bool
	// depArena chunk-allocates Node dep-edge storage so graph retention
	// costs one allocation per ~arenaChunk edges instead of two per task.
	depArena []int64

	tsPool sync.Pool // *taskState
	scPool sync.Pool // *launchScratch

	// Launch-path timers: wall time spent in Launch for analyzed versus
	// trace-spliced launches, surfaced through LaunchTiming.
	tAnalyzed, tSpliced obs.Timer
}

// arenaChunk is the dep-arena chunk size in int64 entries.
const arenaChunk = 4096

// New returns an empty runtime executing up to GOMAXPROCS tasks
// concurrently.
func New() *Runtime {
	nw := runtime.GOMAXPROCS(0)
	workers := make(chan int, nw)
	for w := 0; w < nw; w++ {
		workers <- w
	}
	rt := &Runtime{
		hist:    make(map[histKey]*histShard),
		tasks:   make(map[int64]*taskState),
		held:    make(map[int64]Node),
		workers: workers,
		retain:  true,
	}
	rt.def = &Session{
		rt:     rt,
		failed: make(map[int64]error),
		traces: make(map[string]*traceTmpl),
	}
	rt.sessions = []*Session{rt.def}
	rt.tsPool.New = func() any {
		ts := &taskState{}
		ts.exec = func() { rt.execute(ts) }
		return ts
	}
	rt.scPool.New = func() any {
		return &launchScratch{depBytes: make(map[int64]int64)}
	}
	return rt
}

// SetRecorder attaches an observability recorder to the default
// session: every task it executes from now on records a wall-clock span
// (launch, start, end, worker, outcome) and failures are reported as
// telemetry. A nil recorder disables recording. Tasks launched before
// the call are not back-filled.
func (rt *Runtime) SetRecorder(r *obs.Recorder) { rt.def.SetRecorder(r) }

// Recorder returns the default session's recorder, or nil.
func (rt *Runtime) Recorder() *obs.Recorder { return rt.def.Recorder() }

// SetRetryPolicy bounds re-execution of the default session's retryable
// task bodies: a task whose body panics is re-run (after backoff) until
// it succeeds or the attempt cap is reached, at which point the failure
// becomes permanent. The policy applies to tasks executed after the
// call.
func (rt *Runtime) SetRetryPolicy(p RetryPolicy) { rt.def.SetRetryPolicy(p) }

// SetFaultInjector installs a fault injector on the default session,
// consulted once per launch, under the launch lock, so a
// single-threaded launcher gets a deterministic fault schedule. A nil
// injector disables injection.
func (rt *Runtime) SetFaultInjector(in *fault.Injector) { rt.def.SetFaultInjector(in) }

// FaultsActive reports whether the default session has a fault
// injector. Planner layers use it to skip building per-launch
// corruption hooks on clean runs.
func (rt *Runtime) FaultsActive() bool { return rt.def.FaultsActive() }

// SetWatchdog flags the default session's tasks whose execution exceeds
// budget: Stats.Stragglers is incremented and a "straggler" failure
// record goes to the attached recorder. The task itself is not
// interrupted (goroutines cannot be killed safely); the flag is the
// signal a scheduler or operator acts on. The budget covers one
// execution attempt: it is re-armed per retry, so backoff sleeps between
// attempts do not count against it. A zero budget disables the watchdog.
func (rt *Runtime) SetWatchdog(budget time.Duration) { rt.def.SetWatchdog(budget) }

// SetPhase labels the default session's subsequently launched tasks
// with a solver-phase name (recorded on Node.Phase and in spans). Specs
// carrying their own Phase override it.
func (rt *Runtime) SetPhase(label string) { rt.def.SetPhase(label) }

// SetGraphRetention enables or disables recording of launched tasks into
// the Graph (on by default). Retention off removes the last per-launch
// allocations of the replay path — Node construction and its dep-slice
// copies — for hot loops that never inspect the graph. Call it while the
// runtime is quiescent (no launches in flight): re-enabling resumes
// recording from the next task ID, and Graph() then reflects only the
// retained eras.
func (rt *Runtime) SetGraphRetention(on bool) {
	rt.mu.Lock()
	if on && !rt.retain {
		rt.nextFlush = rt.nextID // skip the unrecorded era
	}
	rt.retain = on
	rt.mu.Unlock()
}

// LaunchTiming returns accumulated wall time spent inside Launch, split
// into fully analyzed launches and launches spliced from a memoized
// trace — the direct measurement of what memoization saves.
func (rt *Runtime) LaunchTiming() (analyzed, spliced obs.TimerSnapshot) {
	return rt.tAnalyzed.Snapshot(), rt.tSpliced.Snapshot()
}

// shardFor returns (creating if needed) the history shard of a key.
// Caller holds rt.mu.
func (rt *Runtime) shardFor(key histKey) *histShard {
	sh := rt.hist[key]
	if sh == nil {
		sh = &histShard{}
		sh.cond.L = &sh.mu
		rt.hist[key] = sh
	}
	return sh
}

// groupKeys collects a spec's distinct history keys in first-appearance
// order into the task's reused group buffer and enqueues one ticket per
// key. Distinctness is a linear scan over the groups found so far —
// launches reference a handful of keys, where the scan beats a map and
// allocates nothing. Caller holds rt.mu.
func (rt *Runtime) groupKeys(id int64, refs []region.Ref, groups []keyGroup) []keyGroup {
	groups = groups[:0]
	for _, ref := range refs {
		key := histKey{ref.Region, ref.Field}
		seen := false
		for i := range groups {
			if groups[i].key == key {
				seen = true
				break
			}
		}
		if !seen {
			groups = append(groups, keyGroup{shard: rt.shardFor(key), key: key})
		}
	}
	for i := range groups {
		groups[i].shard.enqueue(id)
	}
	return groups
}

// newTaskState takes a pooled state and copies the spec fields execution
// needs. Needs no lock.
func (rt *Runtime) newTaskState(spec *TaskSpec) *taskState {
	ts := rt.tsPool.Get().(*taskState)
	ts.name = spec.Name
	ts.proc = spec.Proc
	ts.run = spec.Run
	ts.retryable = spec.Retryable
	ts.corrupt = spec.Corrupt
	if !spec.Detached {
		ts.future = newFuture()
	}
	return ts
}

// recycle scrubs a completed task state and returns it to the pool.
func (rt *Runtime) recycle(ts *taskState) {
	ts.run = nil
	ts.future = nil
	ts.rec = nil
	ts.sess = nil
	ts.poison = nil
	ts.at = nil
	ts.inj = fault.Injection{}
	ts.corrupt = nil
	ts.pending = 0
	ts.wired = false
	ts.splice = false
	ts.scans = 0
	for i := range ts.succs {
		ts.succs[i] = nil
	}
	ts.succs = ts.succs[:0]
	for i := range ts.ready {
		ts.ready[i] = nil
	}
	ts.ready = ts.ready[:0]
	ts.deps = ts.deps[:0]
	ts.bytes = ts.bytes[:0]
	ts.groups = ts.groups[:0]
	rt.tsPool.Put(ts)
}

// prepLocked is launch phase 1: assign the ID, consult the session's
// tracer, enqueue per-key tickets, and register the task so later
// launches can wire onto it. Caller holds rt.mu.
func (rt *Runtime) prepLocked(sess *Session, spec *TaskSpec, ts *taskState) {
	id := rt.nextID
	rt.nextID++
	ts.id = id
	ts.sess = sess
	ts.phase = spec.Phase
	if ts.phase == "" {
		ts.phase = sess.phase
	}
	ts.splice = false
	ts.scans = 0
	ts.at = nil
	if sess.trace != nil {
		ts.at = sess.trace
		ts.atEpoch = sess.atEpoch
		ts.trPos = sess.trace.n
		sess.traceObserve(*spec, ts)
	}
	ts.groups = rt.groupKeys(id, spec.Refs, ts.groups)
	if sess.injector != nil {
		ts.inj = sess.injector.Decide(spec.Name, ts.phase, spec.Piece-1)
	}
	ts.rec = sess.rec
	if ts.rec != nil {
		ts.launch = ts.rec.Now()
	}
	rt.tasks[id] = ts
	sess.inflight++
	rt.wg.Add(1)
	sess.wg.Add(1)
}

// resolveDeps is launch phase 2 (per-key shard locks, in ticket order):
// the interval-set work — interference analysis for analyzed launches,
// the history shadow update for spliced ones. Runs without rt.mu.
func (rt *Runtime) resolveDeps(spec *TaskSpec, ts *taskState, sc *launchScratch) {
	if ts.splice {
		for _, g := range ts.groups {
			g.shard.acquire(ts.id)
			for i := range spec.Refs {
				ref := &spec.Refs[i]
				if (histKey{ref.Region, ref.Field}) == g.key {
					g.shard.record(ts.id, *ref)
				}
			}
			g.shard.release()
		}
		return
	}
	depBytes := sc.depBytes
	clear(depBytes)
	scans := 0
	for _, g := range ts.groups {
		g.shard.acquire(ts.id)
		for i := range spec.Refs {
			ref := &spec.Refs[i]
			if (histKey{ref.Region, ref.Field}) == g.key {
				scans += g.shard.analyze(ts.id, *ref, depBytes)
			}
		}
		g.shard.release()
	}
	ts.scans = scans
	ts.deps = ts.deps[:0]
	for d := range depBytes {
		ts.deps = append(ts.deps, d)
	}
	deps := ts.deps
	sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
	ts.bytes = ts.bytes[:0]
	for _, d := range ts.deps {
		ts.bytes = append(ts.bytes, depBytes[d])
	}
}

// arenaCopy copies a dep slice into the chunked graph arena, amortizing
// Node storage to one allocation per arenaChunk edges. Caller holds
// rt.mu.
func (rt *Runtime) arenaCopy(xs []int64) []int64 {
	if len(xs) == 0 {
		return nil
	}
	if len(rt.depArena)+len(xs) > cap(rt.depArena) {
		sz := arenaChunk
		if len(xs) > sz {
			sz = len(xs)
		}
		rt.depArena = make([]int64, 0, sz)
	}
	n := len(rt.depArena)
	rt.depArena = append(rt.depArena, xs...)
	return rt.depArena[n : n+len(xs) : n+len(xs)]
}

// finishLocked is launch phase 3: record the node, update stats, capture
// template edges when calibrating, and wire the dependences. Returns
// whether the task is immediately ready to execute. Caller holds rt.mu.
func (rt *Runtime) finishLocked(spec *TaskSpec, ts *taskState) bool {
	rt.stats.Launched++
	rt.stats.DepEdges += int64(len(ts.deps))
	rt.stats.AnalysisScans += int64(ts.scans)
	ts.sess.stats.Launched++
	ts.sess.stats.DepEdges += int64(len(ts.deps))
	if ts.splice {
		rt.stats.TraceReplays++
	} else if ts.at != nil && ts.sess.trace == ts.at && ts.sess.atEpoch == ts.atEpoch {
		ts.sess.traceRecordAnalyzed(ts.trPos, ts.deps, ts.bytes)
	}
	ts.at = nil
	if rt.retain {
		rt.held[ts.id] = Node{
			ID: ts.id, Name: spec.Name, Phase: ts.phase, Proc: spec.Proc, Cost: spec.Cost,
			Deps: rt.arenaCopy(ts.deps), DepBytes: rt.arenaCopy(ts.bytes),
			Traced: ts.splice, Host: spec.Host,
		}
		for {
			n, ok := rt.held[rt.nextFlush]
			if !ok {
				break
			}
			delete(rt.held, rt.nextFlush)
			rt.graph.Nodes = append(rt.graph.Nodes, n)
			rt.nextFlush++
		}
	}
	for _, d := range ts.deps {
		if pred, live := rt.tasks[d]; live {
			pred.succs = append(pred.succs, ts)
			ts.pending++
		} else if perr, ok := ts.sess.failed[d]; ok && ts.poison == nil {
			// The predecessor completed in failure while this launch was
			// still in flight — in a batch's unlocked resolve phase, or
			// racing another goroutine's launch. The client cannot have
			// observed that failure yet (no Drain happened between the
			// failure and this launch), so the task must be poisoned, not
			// run on a garbage region. The ledger is per session and
			// clears at the session's quiescence (sess.inflight == 0 in
			// complete): a failure the session's client could have
			// drained is a handled failure (seen via Err and recovered,
			// e.g. SolveResilient's checkpoint restore), so tasks launched
			// after that start from a clean slate — independent of
			// whether other tenants keep the runtime busy forever.
			ts.poison = perr
		}
	}
	ts.wired = true
	return ts.pending == 0
}

// Launch submits a task under the default session. Dependence analysis
// against previously launched tasks happens immediately — in parallel
// across history keys for concurrent launchers, or spliced from a
// memoized trace template when the launch replays a recorded trace —
// and execution happens asynchronously once all dependences complete.
// The returned future delivers Run's result (nil for a Detached spec).
func (rt *Runtime) Launch(spec TaskSpec) *Future { return rt.launch(rt.def, spec) }

func (rt *Runtime) launch(sess *Session, spec TaskSpec) *Future {
	start := time.Now()
	sc := rt.scPool.Get().(*launchScratch)
	ts := rt.newTaskState(&spec)
	fut := ts.future

	rt.mu.Lock()
	rt.prepLocked(sess, &spec, ts)
	rt.mu.Unlock()

	rt.resolveDeps(&spec, ts, sc)

	rt.mu.Lock()
	ready := rt.finishLocked(&spec, ts)
	// Once wired, a predecessor's completion may ready, run, and recycle
	// ts at any moment — read everything needed from it before unlocking.
	spliced := ts.splice
	rt.mu.Unlock()
	rt.scPool.Put(sc)

	if ready {
		go ts.exec()
	}
	if spliced {
		rt.tSpliced.Observe(time.Since(start))
	} else {
		rt.tAnalyzed.Observe(time.Since(start))
	}
	return fut
}

// LaunchBatch submits a slice of tasks as one fused sweep under the
// default session: the runtime lock is taken once for the whole batch's
// registration and once for its wiring, instead of twice per task, and
// the per-key ticket protocol still sees strictly ascending IDs because
// the batch registers in slice order under a single lock acquisition.
// Dependences among batch members work exactly as under individual
// launches. Returns the futures in spec order, or a nil slice when
// every spec is Detached — the zero-allocation fast path for solver
// sweeps that never read their futures.
func (rt *Runtime) LaunchBatch(specs []TaskSpec) []*Future { return rt.launchBatch(rt.def, specs) }

func (rt *Runtime) launchBatch(sess *Session, specs []TaskSpec) []*Future {
	if len(specs) == 0 {
		return nil
	}
	start := time.Now()
	sc := rt.scPool.Get().(*launchScratch)
	states := sc.states[:0]

	var futs []*Future
	for i := range specs {
		if !specs[i].Detached {
			futs = make([]*Future, len(specs))
			break
		}
	}

	// Phase 1: one runtime-lock acquisition registers the whole batch.
	rt.mu.Lock()
	for i := range specs {
		ts := rt.newTaskState(&specs[i])
		rt.prepLocked(sess, &specs[i], ts)
		states = append(states, ts)
		if futs != nil {
			futs[i] = ts.future
		}
	}
	rt.mu.Unlock()

	// Phase 2: per-spec interval work in launch (= ID) order. A single
	// goroutine acquiring its own tickets in ascending order never waits
	// on itself, so sequential resolution cannot deadlock.
	nSpliced := int64(0)
	for i, ts := range states {
		rt.resolveDeps(&specs[i], ts, sc)
		if ts.splice {
			nSpliced++
		}
	}

	// Phase 3: one lock acquisition wires and records the whole batch.
	ready := sc.ready[:0]
	rt.mu.Lock()
	for i, ts := range states {
		if rt.finishLocked(&specs[i], ts) {
			ready = append(ready, ts)
		}
	}
	rt.mu.Unlock()

	// Attribute the batch's wall time to the two launch-path timers in
	// proportion to the split, before any spawned task can recycle.
	dur := time.Since(start)
	n := int64(len(specs))
	if nSpliced > 0 {
		rt.tSpliced.ObserveN(dur*time.Duration(nSpliced)/time.Duration(n), nSpliced)
	}
	if nA := n - nSpliced; nA > 0 {
		rt.tAnalyzed.ObserveN(dur*time.Duration(nA)/time.Duration(n), nA)
	}
	for i, ts := range ready {
		go ts.exec()
		ready[i] = nil
	}
	sc.ready = ready[:0]
	for i := range states {
		states[i] = nil
	}
	sc.states = states[:0]
	rt.scPool.Put(sc)
	return futs
}

// execute runs one ready task — or skips it when poisoned — and then
// releases its successors.
func (rt *Runtime) execute(ts *taskState) {
	rt.mu.Lock()
	poison := ts.poison
	policy := ts.sess.retry
	budget := ts.sess.watchdog
	rt.mu.Unlock()

	if poison != nil {
		// Cancelled: the body never runs on garbage data. Record a
		// zero-duration span so traces show the hole where the task
		// would have been.
		rt.mu.Lock()
		rt.stats.Poisoned++
		ts.sess.stats.Poisoned++
		rt.mu.Unlock()
		if ts.rec != nil {
			now := ts.rec.Now()
			ts.rec.Record(obs.Span{
				ID: ts.id, Name: ts.name, Phase: ts.phase, Proc: ts.proc,
				Worker: -1, Launch: ts.launch, Start: now, End: now,
				Outcome: obs.OutcomePoisoned,
			})
			ts.rec.RecordFailure(obs.Failure{
				Task: ts.id, Name: ts.name, Phase: ts.phase,
				Kind: obs.FailureCancelled, Msg: poison.Error(), Final: true,
			})
		}
		rt.complete(ts, math.NaN(), poison)
		return
	}

	if budget > 0 {
		// The watchdog's AfterFunc goroutine reads ts asynchronously —
		// possibly after completion — so a watched state must never be
		// recycled.
		ts.noRecycle = true
	}

	w := <-rt.workers
	var start float64
	if ts.rec != nil {
		start = ts.rec.Now()
	}

	maxAttempts := 1
	if ts.retryable && policy.MaxAttempts > 1 {
		maxAttempts = policy.MaxAttempts
	}
	var val float64
	var err error
	outcome := obs.OutcomeOK
	for attempt := 0; ; attempt++ {
		// The watchdog budget covers one attempt's execution, re-armed
		// here so retry backoff sleeps do not count against it and a
		// transiently failing task is not falsely flagged a straggler.
		var wd *time.Timer
		if budget > 0 {
			wd = time.AfterFunc(budget, func() { rt.flagStraggler(ts, budget) })
		}
		val, err = rt.runGuarded(ts, attempt)
		if wd != nil {
			wd.Stop()
		}
		if err == nil {
			if attempt > 0 {
				outcome = obs.OutcomeRetried
			}
			break
		}
		final := attempt+1 >= maxAttempts
		if ts.rec != nil {
			ts.rec.RecordFailure(obs.Failure{
				Task: ts.id, Name: ts.name, Phase: ts.phase,
				Kind: obs.FailurePanic, Msg: err.Error(),
				Attempt: attempt, Final: final,
			})
		}
		if final {
			outcome = obs.OutcomeFailed
			val = math.NaN()
			err = fmt.Errorf("taskrt: task %d (%s) failed after %d attempt(s): %v",
				ts.id, ts.name, attempt+1, err)
			rt.mu.Lock()
			rt.stats.Failed++
			ts.sess.stats.Failed++
			ts.sess.pushErr(err)
			rt.mu.Unlock()
			break
		}
		rt.mu.Lock()
		rt.stats.Retries++
		ts.sess.stats.Retries++
		rt.mu.Unlock()
		if policy.Backoff > 0 {
			time.Sleep(backoffDelay(policy.Backoff, attempt))
		}
	}
	if ts.rec != nil {
		ts.rec.Record(obs.Span{
			ID: ts.id, Name: ts.name, Phase: ts.phase, Proc: ts.proc,
			Worker: w, Launch: ts.launch, Start: start, End: ts.rec.Now(),
			Outcome: outcome,
		})
	}
	rt.workers <- w
	rt.complete(ts, val, err)
}

// complete resolves the task's future, poisons and releases its
// successors, retires the task, and recycles its state. A non-nil err
// marks the task as a permanent failure (or an already-poisoned
// cancellation): every direct successor is poisoned, poison flows
// transitively because poisoned successors complete with their own
// non-nil error, and the failure is remembered so tasks wired after this
// completion are poisoned too.
func (rt *Runtime) complete(ts *taskState, val float64, err error) {
	if ts.future != nil {
		ts.future.resolve(val, err)
	}

	rt.mu.Lock()
	delete(rt.tasks, ts.id)
	var poisonErr error
	if err != nil {
		if errors.Is(err, ErrPoisoned) {
			poisonErr = err // keep the root failure visible transitively
		} else {
			poisonErr = fmt.Errorf("%w (root: task %d %s: %v)",
				ErrPoisoned, ts.id, ts.name, err)
		}
	}
	if poisonErr != nil {
		// Remember the failure for launches still in flight: a consumer
		// registered before this completion but not yet wired (a batch's
		// unlocked resolve phase, or a concurrent launcher) finds no live
		// predecessor in rt.tasks and must pick the poison up from this
		// ledger instead of silently running on a failed region. The
		// ledger is per session so one tenant's failure never poisons
		// another tenant's launches.
		ts.sess.failed[ts.id] = poisonErr
	}
	ready := ts.ready[:0]
	for _, s := range ts.succs {
		if poisonErr != nil && s.poison == nil {
			s.poison = poisonErr
		}
		s.pending--
		if s.pending == 0 && s.wired {
			ready = append(ready, s)
		}
	}
	ts.ready = ready
	sess := ts.sess
	sess.inflight--
	if sess.inflight == 0 {
		// Session quiescence: every task the session registered has
		// completed, so any failure recorded above has been observable via
		// its Err. Clear the ledger so recovery launches (checkpoint
		// restore and the like) start clean — independent of whether other
		// sessions keep the runtime busy forever.
		clear(sess.failed)
	}
	rt.mu.Unlock()

	for i, s := range ts.ready {
		go s.exec()
		ts.ready[i] = nil
	}
	ts.ready = ts.ready[:0]
	noRecycle := ts.noRecycle
	sess.wg.Done()
	rt.wg.Done()
	if !noRecycle {
		rt.recycle(ts)
	}
}

// flagStraggler records that a task blew its wall-clock budget. It runs
// on the watchdog timer's goroutine, concurrently with the task.
func (rt *Runtime) flagStraggler(ts *taskState, budget time.Duration) {
	rt.mu.Lock()
	rt.stats.Stragglers++
	rt.mu.Unlock()
	if ts.rec != nil {
		ts.rec.RecordFailure(obs.Failure{
			Task: ts.id, Name: ts.name, Phase: ts.phase,
			Kind: obs.FailureStraggler,
			Msg:  fmt.Sprintf("running past the %v wall-clock budget", budget),
		})
	}
}

// runGuarded executes one attempt of the task body, applying any injected
// fault and converting a panic into an error so one faulty kernel cannot
// crash the process or deadlock future waiters.
func (rt *Runtime) runGuarded(ts *taskState, attempt int) (val float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			val, err = math.NaN(), fmt.Errorf("panic: %v", r)
		}
	}()
	inj := ts.inj
	if attempt > 0 && !inj.Sticky {
		inj = fault.Injection{} // transient fault: the retry runs clean
	}
	switch inj.Kind {
	case fault.Stall:
		time.Sleep(inj.Stall)
	case fault.Panic:
		panic(fmt.Sprintf("fault injected (task %d %s, attempt %d)", ts.id, ts.name, attempt))
	}
	if ts.run != nil {
		val = ts.run()
	}
	switch inj.Kind {
	case fault.NaN:
		val = math.NaN() // silent result corruption; no error is raised
	case fault.BitFlip, fault.Scale:
		// Silent data corruption lands after the body completes, so no
		// in-task self-check can see it — only downstream checksums can.
		if ts.corrupt != nil {
			ts.corrupt(inj)
		} else {
			val = inj.CorruptValue(val)
		}
		rt.mu.Lock()
		rt.stats.Corrupted++
		ts.sess.stats.Corrupted++
		rt.mu.Unlock()
	}
	return val, nil
}

// Drain blocks until every launched task has completed, executed,
// retried, or been cancelled. After Drain, Err reports the aggregate
// failure state of everything launched so far — "Drain then Err" is the
// runtime's postcondition check.
func (rt *Runtime) Drain() { rt.wg.Wait() }

// Err returns every live session's permanent task failures joined into
// one error (errors.Join), or nil if nothing has failed. Failures
// recovered by retry do not appear; cancelled successors are counted in
// Stats.Poisoned but not repeated here — the root failure already is.
// Call Drain first for a complete picture. Failures a session has
// cleared (Session.ClearErrs) or aged out of its bounded window do not
// appear either; servers wanting per-tenant failure state should use
// Session.Err instead.
func (rt *Runtime) Err() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var all []error
	for _, s := range rt.sessions {
		all = append(all, s.errs...)
	}
	return errors.Join(all...)
}

// Graph returns a snapshot of the recorded task graph. Call Drain first
// if the graph must reflect a quiescent state. The snapshot is O(1):
// nodes are immutable once recorded, so the returned graph shares their
// storage (callers must not modify it) and is unaffected by later
// launches. With concurrent launchers the snapshot is always a
// consistent prefix: a node appears only once its dependence analysis —
// and that of every smaller-ID task — has finished. Launches made while
// graph retention is off (SetGraphRetention) do not appear.
func (rt *Runtime) Graph() Graph {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := len(rt.graph.Nodes)
	return Graph{Nodes: rt.graph.Nodes[:n:n]}
}

// Stats returns a snapshot of the runtime counters.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stats
}

// BeginTrace opens a trace scope on the default session: the launches
// up to the matching EndTrace form one instance of the trace key. The
// first instance records a fingerprint, the second (if launched back to
// back with the first) validates it and captures dependence edges, and
// later back-to-back instances replay those edges without any
// dependence analysis. Any gap, mismatch, or differently-shaped
// instance falls back to full analysis automatically — a wrong trace
// scope costs performance, never correctness. Traces must not nest, and
// the launches inside a scope must come from a single goroutine.
func (rt *Runtime) BeginTrace(key string) { rt.def.BeginTrace(key) }

// EndTrace closes the default session's current trace scope and files
// the instance's outcome: a full replay counts as a trace hit;
// everything else — the recording and calibrating instances, gaps,
// fallbacks, short instances — counts as a miss.
func (rt *Runtime) EndTrace() { rt.def.EndTrace() }

// String summarizes the runtime state.
func (rt *Runtime) String() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return fmt.Sprintf("runtime(%d tasks, %d edges)", rt.stats.Launched, rt.stats.DepEdges)
}

// IndexLaunch launches one point task per color of a color space
// [0, n), the runtime analogue of Legion's index task launches (Soi et
// al., SC'21): a single logical operation over a partition becomes n
// point tasks whose dependences the runtime derives individually, as one
// batch under the fused LaunchBatch locking. point builds the spec for
// one color. The returned futures are in color order (nil when every
// point is Detached).
func (rt *Runtime) IndexLaunch(n int, point func(color int) TaskSpec) []*Future {
	specs := make([]TaskSpec, n)
	for c := 0; c < n; c++ {
		specs[c] = point(c)
	}
	return rt.LaunchBatch(specs)
}
