package taskrt

import (
	"testing"

	"kdrsolvers/internal/index"
	"kdrsolvers/internal/region"
)

// TestReplayLaunchAllocs pins the allocation count of the spliced launch
// hot path: with graph retention off, stable regions, detached specs,
// and a calibrated trace, a whole replayed iteration (BeginTrace,
// LaunchBatch, EndTrace, Drain) must average under one allocation per
// launch — the pooled futures, recycled task states, interval-set
// scratch, and arena'd dependence storage leave nothing to allocate per
// task. The budget of 1 absorbs scheduler-level noise from the executing
// goroutines (stack growth, timer wheels), not launch-path work.
func TestReplayLaunchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the pin only means something without it")
	}
	rt := New()
	rt.SetGraphRetention(false)
	sp := index.NewSpace("D", 256)
	a := region.New("a", sp, "x")
	b := region.New("b", sp, "x")
	ref := func(r *region.Region, priv region.Privilege) region.Ref {
		return region.Ref{Region: r.ID(), Field: "x", Subset: index.Span(0, 255), Priv: priv}
	}
	noop := func() float64 { return 0 }
	specs := []TaskSpec{
		{Name: "produce", Refs: []region.Ref{ref(a, region.WriteDiscard)}, Run: noop, Detached: true},
		{Name: "transform", Refs: []region.Ref{ref(a, region.ReadOnly), ref(b, region.WriteDiscard)}, Run: noop, Detached: true},
		{Name: "consume", Refs: []region.Ref{ref(b, region.ReadWrite)}, Run: noop, Detached: true},
	}
	iter := func() {
		rt.BeginTrace("alloc")
		rt.LaunchBatch(specs)
		rt.EndTrace()
		rt.Drain()
	}
	// Record, calibrate, then enough replays to warm every pool and the
	// goroutine free list.
	for i := 0; i < 8; i++ {
		iter()
	}
	before := rt.Stats().TraceReplays

	const rounds = 100
	allocs := testing.AllocsPerRun(rounds, iter)
	perLaunch := allocs / float64(len(specs))

	// AllocsPerRun runs the body rounds+1 times; every one must have hit
	// the replay path or the measurement is of the wrong code path.
	replays := rt.Stats().TraceReplays - before
	if want := int64(rounds+1) * int64(len(specs)); replays != want {
		t.Fatalf("replayed %d launches during measurement, want %d", replays, want)
	}
	if perLaunch >= 1 {
		t.Errorf("replay path allocates %.2f allocs/launch (%.1f per iteration), want < 1",
			perLaunch, allocs)
	}
	t.Logf("replay path: %.3f allocs/launch", perLaunch)
}

// BenchmarkReplayIteration is the wall-clock companion of the alloc
// test: one replayed three-task iteration, end to end. benchlaunch
// reports the same quantity for BENCH_pr6.json.
func BenchmarkReplayIteration(b *testing.B) {
	rt := New()
	rt.SetGraphRetention(false)
	sp := index.NewSpace("D", 256)
	ra := region.New("bra", sp, "x")
	rb := region.New("brb", sp, "x")
	ref := func(r *region.Region, priv region.Privilege) region.Ref {
		return region.Ref{Region: r.ID(), Field: "x", Subset: index.Span(0, 255), Priv: priv}
	}
	noop := func() float64 { return 0 }
	specs := []TaskSpec{
		{Name: "produce", Refs: []region.Ref{ref(ra, region.WriteDiscard)}, Run: noop, Detached: true},
		{Name: "transform", Refs: []region.Ref{ref(ra, region.ReadOnly), ref(rb, region.WriteDiscard)}, Run: noop, Detached: true},
		{Name: "consume", Refs: []region.Ref{ref(rb, region.ReadWrite)}, Run: noop, Detached: true},
	}
	iter := func() {
		rt.BeginTrace("bench")
		rt.LaunchBatch(specs)
		rt.EndTrace()
		rt.Drain()
	}
	for i := 0; i < 8; i++ {
		iter()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter()
	}
}

// TestAnalyzedLaunchAllocsBounded keeps the untraced path honest too: it
// may allocate (fresh analysis walks the history), but the pooled
// storage should hold it to a small constant, not O(history).
func TestAnalyzedLaunchAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the pin only means something without it")
	}
	rt := New()
	rt.SetGraphRetention(false)
	sp := index.NewSpace("D", 256)
	a := region.New("ua", sp, "x")
	ref := region.Ref{Region: a.ID(), Field: "x", Subset: index.Span(0, 255), Priv: region.ReadWrite}
	spec := TaskSpec{Name: "rmw", Refs: []region.Ref{ref}, Run: func() float64 { return 0 }, Detached: true}
	iter := func() {
		rt.Launch(spec)
		rt.Drain()
	}
	for i := 0; i < 8; i++ {
		iter()
	}
	allocs := testing.AllocsPerRun(100, iter)
	if allocs > 8 {
		t.Errorf("analyzed path allocates %.1f allocs/launch, want <= 8", allocs)
	}
	t.Logf("analyzed path: %.3f allocs/launch", allocs)
}
